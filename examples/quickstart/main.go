// Quickstart: simulate one benchmark under the baseline release policy and
// under physical register inlining, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"prisim"
)

func main() {
	bench := "mcf" // the paper's most register-starved integer benchmark

	base, err := prisim.Simulate(prisim.Options{Benchmark: bench, Width: 8})
	if err != nil {
		log.Fatal(err)
	}
	pri, err := prisim.Simulate(prisim.Options{
		Benchmark: bench,
		Width:     8,
		Policy:    prisim.PolicyPRI,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark           %s (8-wide machine, 64+64 physical registers)\n", bench)
	fmt.Printf("baseline IPC        %.3f\n", base.IPC)
	fmt.Printf("PRI IPC             %.3f  (%+.1f%%)\n", pri.IPC, 100*(pri.IPC/base.IPC-1))
	fmt.Printf("occupancy           %.1f -> %.1f integer registers\n",
		base.IntOccupancy, pri.IntOccupancy)
	fmt.Printf("register lifetime   %.0f -> %.0f cycles (alloc->release)\n",
		base.AllocToWrite+base.WriteToRead+base.ReadToRelease,
		pri.AllocToWrite+pri.WriteToRead+pri.ReadToRelease)
	fmt.Printf("inlined operands    %.1f%% of source reads came from the map\n",
		100*pri.InlineFraction)

	fmt.Println("\navailable benchmarks:")
	for _, b := range prisim.Benchmarks() {
		fmt.Printf("  %-9s %s\n", b.Name, b.Description)
	}
}
