// Deadhint demonstrates the paper's Section 6 future-work idea: with PRI in
// the pipeline, a compiler can kill a dead register in a binary-compatible
// way by writing a narrow immediate to it — the rename stage inlines the
// value and never allocates (or quickly frees) a physical register.
//
// The example builds a loop that carries several dead wide values across a
// long-latency region, then rebuilds it with explicit load-immediate "dead
// hints" and compares, with the extension off and on.
//
//	go run ./examples/deadhint
package main

import (
	"fmt"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/isa"
	"prisim/internal/ooo"
)

func buildLoop(hints bool) *asm.Program {
	b := asm.NewBuilder()
	n := 1 << 15
	ring := make([]uint64, n)
	base := uint64(asm.DefaultDataBase)
	for i := range ring {
		ring[i] = base + 8*((uint64(i)+4099)%uint64(n))
	}
	b.Words("ring", ring)
	b.Label("main")
	b.La(isa.IntReg(1), "ring")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 3000)
	b.Label("loop")
	// A handful of wide temporaries die immediately but hold registers
	// across the miss unless hinted dead.
	for i := 4; i < 12; i++ {
		b.RR(isa.OpMUL, isa.IntReg(i), isa.IntReg(1), isa.IntReg(2)) // wide
	}
	if hints {
		// The compiler knows r4..r11 are dead: overwrite each with a
		// narrow immediate, which PRI turns into a map-entry immediate
		// and a freed register.
		for i := 4; i < 12; i++ {
			b.RI(isa.OpADDI, isa.IntReg(i), isa.RZero, int64(i))
		}
	}
	b.Load(isa.OpLDQ, isa.IntReg(1), isa.IntReg(1), 0) // pointer chase: misses
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	return b.MustFinish()
}

func run(prog *asm.Program, inlineAtRename bool) *ooo.Stats {
	cfg := ooo.Width4().WithPolicy(core.PolicyPRIRcLazy).WithPRs(48)
	cfg.InlineAtRename = inlineAtRename
	p := ooo.New(cfg, prog)
	p.Run(2_000_000)
	return p.Stats()
}

func main() {
	plain := run(buildLoop(false), false)
	hinted := run(buildLoop(true), false)
	hintedInline := run(buildLoop(true), true)

	fmt.Println("pointer-chase loop carrying 8 dead wide temporaries (48 PRs):")
	fmt.Printf("  no hints                      IPC %.3f\n", plain.IPC())
	fmt.Printf("  dead hints (retire inlining)  IPC %.3f (%+.1f%%)\n",
		hinted.IPC(), 100*(hinted.IPC()/plain.IPC()-1))
	fmt.Printf("  dead hints + rename inlining  IPC %.3f (%+.1f%%), %d never allocated\n",
		hintedInline.IPC(), 100*(hintedInline.IPC()/plain.IPC()-1),
		hintedInline.RenameInlines)
	fmt.Println("\nthe hint instructions are ordinary load-immediates: on any")
	fmt.Println("machine without PRI they are harmless, which is the binary-")
	fmt.Println("compatible register-kill mechanism the paper proposes.")
}
