// Inspect: the observability tour. One small program is (1) captured as a
// compact binary instruction trace and analyzed, and (2) run through the
// timing pipeline with the O3PipeView stream enabled, summarizing where its
// instructions spent their time.
//
//	go run ./examples/inspect
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	"prisim/internal/asm"
	"prisim/internal/emu"
	"prisim/internal/ooo"
	"prisim/internal/trace"
)

const program = `
.data
tbl: .space 2048
.text
main:
  la   r1, tbl
  li   r2, 300
  li   r8, 0          ; checksum accumulator
loop:
  andi r3, r2, 255
  slli r4, r3, 3
  add  r5, r1, r4
  ldq  r6, 0(r5)
  addi r6, r6, 1
  stq  r6, 0(r5)
  mul  r7, r6, r3
  add  r8, r8, r7
  addi r2, r2, -1
  bnez r2, loop
  halt
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Trace capture + analysis.
	var buf bytes.Buffer
	tw, err := trace.NewWriter(&buf)
	if err != nil {
		log.Fatal(err)
	}
	n, err := trace.Capture(emu.New(prog), 1_000_000, tw)
	if err != nil {
		log.Fatal(err)
	}
	tw.Flush()
	tr, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	mix, err := trace.AnalyzeMix(tr, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d instructions in %d bytes (%.1f B/instr)\n",
		n, buf.Len(), float64(buf.Len())/float64(n))
	fmt.Printf("mix: %.0f%% alu, %.0f%% loads, %.0f%% stores, %.0f%% branches (%.0f%% taken)\n",
		100*float64(mix.IntALU+mix.IntMul)/float64(mix.Total),
		100*float64(mix.Loads)/float64(mix.Total),
		100*float64(mix.Stores)/float64(mix.Total),
		100*float64(mix.Branches)/float64(mix.Total),
		100*mix.TakenFrac)
	fmt.Printf("narrowness: %.0f%% of results fit the 8-wide inline budget\n\n", 100*mix.NarrowFrac)

	// 2. Pipeline visualization: run with the O3PipeView stream and derive
	// a stage-residency summary from it.
	p := ooo.New(ooo.Width4(), prog)
	var pv strings.Builder
	p.SetPipeView(&pv)
	p.Run(1_000_000)
	fmt.Printf("timing: %d instructions, %d cycles, IPC %.2f\n",
		p.Stats().Committed, p.Stats().Cycles, p.Stats().IPC())

	type rec struct{ fetch, rename, issue, complete, retire int }
	var recs []rec
	var cur rec
	for _, line := range strings.Split(pv.String(), "\n") {
		f := strings.Split(line, ":")
		if len(f) < 3 {
			continue
		}
		v, _ := strconv.Atoi(f[2])
		switch f[1] {
		case "fetch":
			cur = rec{fetch: v}
		case "rename":
			cur.rename = v
		case "issue":
			cur.issue = v
		case "complete":
			cur.complete = v
		case "retire":
			cur.retire = v
			if v != 0 { // committed (squashed records carry retire 0)
				recs = append(recs, cur)
			}
		}
	}
	waits := make([]int, 0, len(recs))
	for _, r := range recs {
		waits = append(waits, r.issue-r.rename)
	}
	sort.Ints(waits)
	if len(waits) > 0 {
		fmt.Printf("queue wait (rename->issue): median %d cycles, p95 %d cycles\n",
			waits[len(waits)/2], waits[len(waits)*95/100])
	}
	fmt.Printf("pipeview: %d committed-instruction records (feed the raw stream to\n", len(recs))
	fmt.Println("gem5's o3-pipeview or Konata via: prisim -pipeview out.txt)")
}
