// Regsweep: the paper's Figure 9 axis for one benchmark — how baseline IPC
// and the benefit of physical register inlining change with the size of the
// physical register file.
//
//	go run ./examples/regsweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"prisim"
)

func main() {
	bench := "twolf"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	fmt.Printf("%s, 8-wide machine: IPC vs physical register file size\n\n", bench)
	fmt.Printf("%6s  %10s  %10s  %8s\n", "PRs", "base IPC", "PRI IPC", "PRI gain")
	for _, prs := range []int{40, 48, 56, 64, 72, 80, 96, 128} {
		base, err := prisim.Simulate(prisim.Options{
			Benchmark: bench, Width: 8, PhysRegs: prs,
		})
		if err != nil {
			log.Fatal(err)
		}
		pri, err := prisim.Simulate(prisim.Options{
			Benchmark: bench, Width: 8, PhysRegs: prs, Policy: prisim.PolicyPRI,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %10.3f  %10.3f  %+7.1f%%\n",
			prs, base.IPC, pri.IPC, 100*(pri.IPC/base.IPC-1))
	}
	fmt.Println("\nPRI's benefit concentrates where the machine is register-")
	fmt.Println("constrained: small register files gain the most, and the")
	fmt.Println("gain fades as the file grows past the workload's appetite.")
}
