// Narrowness: run the paper's Figure 2 operand-significance analysis on a
// program written in PRISC-64 assembly, showing how many register operands
// would qualify for physical register inlining at each narrow budget.
//
//	go run ./examples/narrowness
package main

import (
	"fmt"
	"log"

	"prisim/internal/asm"
	"prisim/internal/emu"
	"prisim/internal/stats"
)

// A toy histogram/entropy kernel: byte loads, small counters, and a few
// wide address computations — a narrow-value-rich mix.
const src = `
.data
text:  .space 4096
hist:  .space 2048
.text
main:
  la   r1, text
  li   r2, 4096
  li   r3, 1        ; lcg state
fill:               ; synthesize "text" with a tiny LCG
  li   r4, 75
  mul  r3, r3, r4
  addi r3, r3, 74
  andi r5, r3, 127  ; narrow symbol
  stb  r5, 0(r1)
  addi r1, r1, 1
  addi r2, r2, -1
  bnez r2, fill

  la   r1, text
  la   r6, hist
  li   r2, 4096
count:
  ldbu r5, 0(r1)    ; narrow byte
  slli r7, r5, 2
  add  r8, r6, r7
  ldl  r9, 0(r8)    ; narrow counter
  addi r9, r9, 1
  stl  r9, 0(r8)
  addi r1, r1, 1
  addi r2, r2, -1
  bnez r2, count
  halt
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	m := emu.New(prog)
	sig := stats.Analyze(m, 1_000_000)

	fmt.Printf("analyzed %d integer operands\n\n", sig.IntOperands)
	fmt.Println("cumulative fraction of operands representable in N bits")
	fmt.Println("(the paper's Figure 2; 7 bits is the 4-wide inline budget,")
	fmt.Println(" 10 bits the 8-wide budget)")
	for _, n := range []int{1, 2, 4, 7, 8, 10, 12, 16, 24, 32, 48, 64} {
		frac := sig.IntFracWithin(n)
		bar := ""
		for i := 0; i < int(frac*50); i++ {
			bar += "#"
		}
		fmt.Printf("  <=%2d bits  %6.1f%%  %s\n", n, 100*frac, bar)
	}
	fmt.Printf("\nmean operand width: %.1f bits\n", sig.IntBits.Mean())
}
