# prisim build/test/lint entry points. CI runs the same commands; see
# .github/workflows/ci.yml.

GO ?= go

# Pinned external linter versions (installed on demand in CI's lint job;
# locally they are used only if already on PATH — the dev container has no
# network, so `make lint` degrades gracefully to prilint + vet).
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test race bench benchgate sweepgate fuzz lint prilint lintprog staticcheck govulncheck

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 20m . ./internal/harness ./internal/ooo ./internal/service ./internal/fabric

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...

# fuzz is the frontend fuzz smoke CI runs on every push: the lexer/parser
# must never panic and every failure must carry positioned diagnostics,
# and the priscan analyzers must never panic or produce findings outside
# the code segment on anything the assembler accepts. FUZZTIME=5m for a
# longer local soak.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/asm -run '^$$' -fuzz '^FuzzAssemble$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm/analysis -run '^$$' -fuzz '^FuzzAnalyze$$' -fuzztime $(FUZZTIME)

# benchgate is the kernel throughput regression gate: the steady-state
# kernel benchmark must sustain at least 80% of the floor recorded in
# BENCH_kernel.json (best of 3 runs, so shared-machine jitter doesn't flake).
benchgate:
	$(GO) test ./internal/ooo -run '^$$' -bench BenchmarkKernelSteadyState \
		-benchtime 2s -count 3 | $(GO) run ./cmd/benchgate -frac 0.8

# sweepgate is the cross-run sweep throughput gate: a cold fig8-mix sweep
# (every integer workload × 8 policy points, default fast-forward, snapshot
# layer on) must sustain at least 70% of the points/s floor recorded in
# BENCH_harness.json (best of 3 sweeps). It catches the snapshot cache
# silently degrading to per-point fast-forward replay.
sweepgate:
	$(GO) test ./internal/harness -run '^$$' -bench BenchmarkSweepFig8Mix \
		-benchtime 1x -count 3 | $(GO) run ./cmd/benchgate \
		-baseline BENCH_harness.json -bench BenchmarkSweepFig8Mix \
		-metric points/s -floorkey sweep_points_per_sec_floor -frac 0.7

# lint runs the project's own analyzer suite (always available: it is part
# of this module) plus vet, then the pinned external linters when present.
lint: prilint
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI installs $(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI installs $(GOVULNCHECK_VERSION))"; \
	fi

prilint:
	$(GO) run ./cmd/prilint ./...

# lintprog runs priscan — the guest-program static analyzer — over every
# built-in workload image and every example program the repo ships. The
# workload sweep is warn-only (four reasoned dead-write findings are pinned
# by TestWorkloadSweep; the images cannot change without invalidating the
# fig8 golden hashes), but the user-facing fixture programs must be clean.
lintprog:
	$(GO) run ./cmd/priscan -workloads
	$(GO) run ./cmd/priscan -Werror internal/asm/testdata/*.s

staticcheck:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

govulncheck:
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	govulncheck ./...
