// Package prisimclient is the Go client for prisimd, the simulation
// service: the wire types of its HTTP/JSON API (shared with the server
// implementation in internal/service) and a Client that submits jobs,
// polls or streams their progress, and fetches results.
package prisimclient

import (
	"errors"
	"fmt"
	"time"

	"prisim"
)

// Job kinds accepted by the service.
const (
	KindSimulate   = "simulate"   // one benchmark at one machine point
	KindExperiment = "experiment" // one of the paper's tables/figures
)

// JobState is a job's lifecycle state.
type JobState string

// The job lifecycle: Queued -> Running -> one of the terminal states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether a job in state s will never change state again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the body of POST /api/v1/jobs.
type JobRequest struct {
	Kind string `json:"kind"` // KindSimulate or KindExperiment

	// Simulate parameters (Kind == KindSimulate).
	Benchmark         string `json:"benchmark,omitempty"`
	Width             int    `json:"width,omitempty"`
	Policy            string `json:"policy,omitempty"`
	PhysRegs          int    `json:"phys_regs,omitempty"`
	RenameInline      bool   `json:"rename_inline,omitempty"`
	DelayedAllocation bool   `json:"delayed_allocation,omitempty"`

	// Experiment name (Kind == KindExperiment), e.g. "fig8".
	Experiment string `json:"experiment,omitempty"`

	// Per-run measurement budget; zero fields take the server defaults.
	FastForward uint64 `json:"fast_forward,omitempty"`
	Run         uint64 `json:"run,omitempty"`
}

// Validate checks the request shape without consulting the engine (the
// server additionally validates names against its benchmark/experiment
// lists at submit time).
func (r JobRequest) Validate() error {
	switch r.Kind {
	case KindSimulate:
		if r.Benchmark == "" {
			return errors.New("simulate job requires a benchmark")
		}
		if r.Experiment != "" {
			return errors.New("simulate job must not set experiment")
		}
	case KindExperiment:
		if r.Experiment == "" {
			return errors.New("experiment job requires an experiment name")
		}
		if r.Benchmark != "" {
			return errors.New("experiment job must not set benchmark")
		}
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", r.Kind, KindSimulate, KindExperiment)
	}
	return nil
}

// Options converts the request's simulation parameters to engine options.
func (r JobRequest) Options() prisim.Options {
	return prisim.Options{
		Benchmark:         r.Benchmark,
		Width:             r.Width,
		Policy:            prisim.Policy(r.Policy),
		PhysRegs:          r.PhysRegs,
		RenameInline:      r.RenameInline,
		DelayedAllocation: r.DelayedAllocation,
		FastForward:       r.FastForward,
		Run:               r.Run,
	}
}

// Progress is a job's run-completion counter: Done of Total simulation
// points requested so far have resolved (Total grows as an experiment's
// matrix is submitted).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Job is the service's view of one submitted job, returned by the submit,
// status, list, and cancel endpoints.
type Job struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Progress Progress   `json:"progress"`

	// Started and Finished are the zero time until the job reaches the
	// corresponding state.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

// JobResult is the body of GET /api/v1/jobs/{id}/result: exactly one of
// Result (simulate jobs) or Tables (experiment jobs) is set.
type JobResult struct {
	ID     string         `json:"id"`
	Result *prisim.Result `json:"result,omitempty"`
	Tables []prisim.Table `json:"tables,omitempty"`
}

// Text renders an experiment result as the aligned fixed-width tables the
// priexp CLI prints (empty for simulate jobs).
func (r JobResult) Text() string {
	var out string
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	return out
}

// Event is one SSE message on GET /api/v1/jobs/{id}/events.
type Event struct {
	Type     string   `json:"type"` // "state" or "progress"
	JobID    string   `json:"job_id"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
}

// apiError is the JSON error body every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}
