// Package prisimclient is the Go client for prisimd, the simulation
// service: the wire types of its HTTP/JSON API (shared with the server
// implementation in internal/service) and a Client that submits jobs,
// polls or streams their progress, and fetches results.
//
// The wire surface is versioned: every endpoint lives under /api/v1 (the
// client's default base path). The unversioned paths prisimd also serves
// are deprecated aliases kept for one release; select them with
// WithBasePath(""). Wire type v1 additions over the original v0 shapes are
// strictly additive — CacheKey on requests, KernelVersion / CacheKey /
// ComputedBy on responses — so recorded v0 payloads keep decoding.
package prisimclient

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"prisim"
)

// Job kinds accepted by the service.
const (
	KindSimulate   = "simulate"   // one benchmark at one machine point
	KindExperiment = "experiment" // one of the paper's tables/figures
	KindProgram    = "program"    // a user-submitted assembly program
)

// JobState is a job's lifecycle state.
type JobState string

// The job lifecycle: Queued -> Running -> one of the terminal states.
const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// Terminal reports whether a job in state s will never change state again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobRequest is the body of POST /api/v1/jobs.
type JobRequest struct {
	Kind string `json:"kind"` // KindSimulate or KindExperiment

	// Simulate parameters (Kind == KindSimulate).
	Benchmark         string `json:"benchmark,omitempty"`
	Width             int    `json:"width,omitempty"`
	Policy            string `json:"policy,omitempty"`
	PhysRegs          int    `json:"phys_regs,omitempty"`
	RenameInline      bool   `json:"rename_inline,omitempty"`
	DelayedAllocation bool   `json:"delayed_allocation,omitempty"`

	// Experiment name (Kind == KindExperiment), e.g. "fig8".
	Experiment string `json:"experiment,omitempty"`

	// Source is the PRISC-64 assembly text of a program job (Kind ==
	// KindProgram), transported base64-encoded by encoding/json. The server
	// assembles it inside a sandbox (source-size, instruction-budget, and
	// memory caps); assembly failures reject the submission with 422 and
	// positioned diagnostics. The machine-selection fields (Width, Policy,
	// PhysRegs, extension flags) apply as for simulate jobs; FastForward and
	// Run are taken verbatim, with Run 0 meaning "to completion" up to the
	// server's instruction cap.
	Source []byte `json:"source,omitempty"`

	// Per-run measurement budget; zero fields take the server defaults.
	FastForward uint64 `json:"fast_forward,omitempty"`
	Run         uint64 `json:"run,omitempty"`

	// CacheKey is the optional client-computed content hash of the point
	// (CacheKeyFor). When set on a simulate request, the server verifies it
	// against its own hash and rejects a mismatch with 409 — which is how
	// the fabric coordinator detects kernel-version skew on a worker before
	// trusting its results. Experiment requests must leave it empty.
	CacheKey string `json:"cache_key,omitempty"`
}

// Validate checks the request shape without consulting the engine (the
// server additionally validates names against its benchmark/experiment
// lists at submit time).
func (r JobRequest) Validate() error {
	switch r.Kind {
	case KindSimulate:
		if r.Benchmark == "" {
			return errors.New("simulate job requires a benchmark")
		}
		if r.Experiment != "" {
			return errors.New("simulate job must not set experiment")
		}
		if len(r.Source) > 0 {
			return errors.New("simulate job must not set source")
		}
	case KindExperiment:
		if r.Experiment == "" {
			return errors.New("experiment job requires an experiment name")
		}
		if r.Benchmark != "" {
			return errors.New("experiment job must not set benchmark")
		}
		if len(r.Source) > 0 {
			return errors.New("experiment job must not set source")
		}
	case KindProgram:
		if len(r.Source) == 0 {
			return errors.New("program job requires source")
		}
		if r.Benchmark != "" || r.Experiment != "" {
			return errors.New("program job must not set benchmark or experiment")
		}
	default:
		return fmt.Errorf("unknown job kind %q (want %q, %q, or %q)", r.Kind, KindSimulate, KindExperiment, KindProgram)
	}
	if r.Kind == KindExperiment && r.CacheKey != "" {
		return errors.New("experiment job must not set cache_key (experiments are not single content-addressed points)")
	}
	return nil
}

// CacheKeySchema names the content-hash schema CacheKeyFor implements; it
// is folded into the hash so a future schema change can never collide with
// v1 keys.
const CacheKeySchema = "prisim-point-v1"

// CacheKeyFor returns the SHA-256 content hash (hex) that addresses one
// simulate point: a deterministic digest of (kernel version, workload,
// policy, machine parameters, measurement budget). Because prilint's
// determinism analyzer guarantees a simulation is a pure function of
// exactly those inputs, the key is valid forever — it is how the fabric's
// durable store and cross-node coalescing identify results.
//
// Defaulted fields are normalized before hashing (width 0 -> 4, empty
// policy -> "base", zero budget -> prisim.DefaultFastForward/DefaultRun;
// PhysRegs 0 means "machine default" and hashes as 0), so a request and
// its explicit-default spelling share a key. Servers normalize a zero
// budget to their own configured default before hashing, which is why the
// fabric always dispatches points with an explicit budget.
func CacheKeyFor(kernelVersion string, r JobRequest) string {
	width := r.Width
	if width == 0 {
		width = 4
	}
	policy := r.Policy
	if policy == "" {
		policy = string(prisim.PolicyBase)
	}
	ff := r.FastForward
	if ff == 0 {
		ff = prisim.DefaultFastForward
	}
	run := r.Run
	if run == 0 {
		run = prisim.DefaultRun
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nkernel=%s\nbench=%s\nwidth=%d\npolicy=%s\nphys_regs=%d\nrename_inline=%t\ndelayed_alloc=%t\nfast_forward=%d\nrun=%d\n",
		CacheKeySchema, kernelVersion, r.Benchmark, width, policy, r.PhysRegs,
		r.RenameInline, r.DelayedAllocation, ff, run)
	return hex.EncodeToString(h.Sum(nil))
}

// ProgramCacheKeySchema names the content-hash schema CacheKeyForProgram
// implements; it is folded into the hash so program keys can never collide
// with simulate-point keys or a future schema revision.
const ProgramCacheKeySchema = "prisim-prog-v1"

// CacheKeyForProgram returns the SHA-256 content hash (hex) addressing one
// program run: kernel version, the assembled image's content hash (the
// asm.Program SHA-256, which excludes symbol names), the machine parameters,
// and the measurement budget taken verbatim. Source text is deliberately
// absent — two sources assembling to the same image (renamed labels, macro
// spellings, comments) share a key and therefore a stored result. Sandbox
// limits like the memory cap are excluded too: they bound resources, never
// change a successful run's outcome. Callers must pass the effective
// budget, with defaults already resolved, because unlike simulate points a
// program's Run 0 means "to completion" and the server caps it.
func CacheKeyForProgram(kernelVersion, imageSHA256 string, r JobRequest) string {
	width := r.Width
	if width == 0 {
		width = 4
	}
	policy := r.Policy
	if policy == "" {
		policy = string(prisim.PolicyBase)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\nkernel=%s\nimage=%s\nwidth=%d\npolicy=%s\nphys_regs=%d\nrename_inline=%t\ndelayed_alloc=%t\nfast_forward=%d\nrun=%d\n",
		ProgramCacheKeySchema, kernelVersion, imageSHA256, width, policy, r.PhysRegs,
		r.RenameInline, r.DelayedAllocation, r.FastForward, r.Run)
	return hex.EncodeToString(h.Sum(nil))
}

// Diagnostic is one positioned assembly error or static-analysis finding,
// carried by 422 responses to program submissions (see
// APIError.Diagnostics) and, for warnings, by accepted jobs and
// program-check responses. Line and Col are 1-based and rune-accurate;
// Excerpt is the offending source line. The Analyzer, Severity, and Addr
// fields are additive: assembler diagnostics leave them empty, priscan
// findings fill them (Severity "warning" or "error"; Addr the instruction
// address, which positions findings whose source line is unknown).
type Diagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
	Excerpt  string `json:"excerpt,omitempty"`
	Analyzer string `json:"analyzer,omitempty"`
	Severity string `json:"severity,omitempty"`
	Addr     uint64 `json:"addr,omitempty"`
}

// String renders "file:line:col: msg" (with the severity prefixed and the
// analyzer appended when the server set them) followed, when the server
// included the source excerpt, by the offending line with a caret under
// the column — the same shape the assembler and priscan print locally.
// Findings with no source position render by instruction address.
func (d Diagnostic) String() string {
	var sb strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&sb, "%s:%d:%d: ", d.File, d.Line, d.Col)
	} else {
		fmt.Fprintf(&sb, "%s: %#06x: ", d.File, d.Addr)
	}
	if d.Severity != "" {
		fmt.Fprintf(&sb, "%s: ", d.Severity)
	}
	sb.WriteString(d.Msg)
	if d.Analyzer != "" {
		fmt.Fprintf(&sb, " [%s]", d.Analyzer)
	}
	if d.Excerpt != "" {
		display := strings.ReplaceAll(d.Excerpt, "\t", " ")
		fmt.Fprintf(&sb, "\n    %s", display)
		if d.Col >= 1 && d.Col <= len([]rune(display))+1 {
			fmt.Fprintf(&sb, "\n    %s^", strings.Repeat(" ", d.Col-1))
		}
	}
	return sb.String()
}

// ProgramCheckRequest is the body of POST /api/v1/programs: assemble-check a
// source without running it.
type ProgramCheckRequest struct {
	Source []byte `json:"source"`
}

// ProgramInfo describes a successfully assembled program. SHA256 is the
// image content hash that CacheKeyForProgram folds into program cache
// keys. Warnings and Inlinability are additive v1 fields filled by the
// priscan static analysis that runs before a program is accepted: warnings
// never block a program (provable errors reject it with 422 instead), and
// the inlinability summary is the static analogue of the simulator's
// measured PRI inlining rate.
type ProgramInfo struct {
	SHA256       string        `json:"sha256"`
	Entry        uint64        `json:"entry"`
	CodeWords    int           `json:"code_words"`
	DataSegments int           `json:"data_segments"`
	DataBytes    int           `json:"data_bytes"`
	Warnings     []Diagnostic  `json:"warnings,omitempty"`
	Inlinability *Inlinability `json:"inlinability,omitempty"`
}

// Inlinability is the static narrowness summary priscan computes for a
// program: of its register defs, how many provably produce values fitting
// the PRI inline width (narrow), provably do not (wide), or are unknown.
// WeightedFrac weights each def by an estimate of its execution frequency
// from the loop trip-count analysis.
type Inlinability struct {
	NarrowBits   int     `json:"narrow_bits"`
	Defs         int     `json:"defs"`
	Narrow       int     `json:"narrow"`
	Wide         int     `json:"wide"`
	Unknown      int     `json:"unknown"`
	FPDefs       int     `json:"fp_defs"`
	StaticFrac   float64 `json:"static_frac"`
	WeightedFrac float64 `json:"weighted_frac"`
}

// Options converts the request's simulation parameters to engine options.
func (r JobRequest) Options() prisim.Options {
	return prisim.Options{
		Benchmark:         r.Benchmark,
		Width:             r.Width,
		Policy:            prisim.Policy(r.Policy),
		PhysRegs:          r.PhysRegs,
		RenameInline:      r.RenameInline,
		DelayedAllocation: r.DelayedAllocation,
		FastForward:       r.FastForward,
		Run:               r.Run,
	}
}

// Progress is a job's run-completion counter: Done of Total simulation
// points requested so far have resolved (Total grows as an experiment's
// matrix is submitted).
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Job is the service's view of one submitted job, returned by the submit,
// status, list, and cancel endpoints.
type Job struct {
	ID       string     `json:"id"`
	Request  JobRequest `json:"request"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Progress Progress   `json:"progress"`

	// Started and Finished are the zero time until the job reaches the
	// corresponding state.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`

	// Content-addressing metadata (v1 additions). KernelVersion is the
	// server's build; CacheKey is the server-computed content hash of a
	// simulate point (empty for experiments); ComputedBy identifies the
	// node whose engine produced — or, for a durable-store hit, originally
	// produced — the result.
	KernelVersion string `json:"kernel_version,omitempty"`
	CacheKey      string `json:"cache_key,omitempty"`
	ComputedBy    string `json:"computed_by,omitempty"`

	// Warnings are the priscan static-analysis findings recorded when a
	// program job was accepted (additive v1 field; always empty for
	// simulate and experiment jobs). Provable errors reject the submission
	// with 422 instead, so an accepted job carries warnings only.
	Warnings []Diagnostic `json:"warnings,omitempty"`
}

// JobResult is the body of GET /api/v1/jobs/{id}/result: exactly one of
// Result (simulate and program jobs) or Tables (experiment jobs) is set.
// Program jobs additionally carry the program's console output.
type JobResult struct {
	ID     string         `json:"id"`
	Result *prisim.Result `json:"result,omitempty"`
	Tables []prisim.Table `json:"tables,omitempty"`
	Output []byte         `json:"output,omitempty"` // program console output (putc)

	// Content-addressing metadata (v1 additions); see Job.
	KernelVersion string `json:"kernel_version,omitempty"`
	CacheKey      string `json:"cache_key,omitempty"`
	ComputedBy    string `json:"computed_by,omitempty"`
}

// Text renders an experiment result as the aligned fixed-width tables the
// priexp CLI prints (empty for simulate jobs).
func (r JobResult) Text() string {
	var out string
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	return out
}

// Event is one SSE message on GET /api/v1/jobs/{id}/events.
type Event struct {
	Type     string   `json:"type"` // "state" or "progress"
	JobID    string   `json:"job_id"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Progress Progress `json:"progress"`
}

// Matrix is an experiment matrix for the fabric coordinator (the body of
// POST /api/v1/fabric/matrices): the cross product of Benchmarks x Policies
// x Widths x PhysRegs at one measurement budget. The coordinator expands it
// into content-addressed simulate points, serves warm points from its
// durable store, and shards cold points across registered workers.
type Matrix struct {
	Benchmarks []string `json:"benchmarks"`
	Policies   []string `json:"policies"`
	Widths     []int    `json:"widths,omitempty"`    // empty = [4]
	PhysRegs   []int    `json:"phys_regs,omitempty"` // empty = [0] (machine default)

	// Per-run measurement budget; zero fields take the universal defaults
	// (prisim.DefaultFastForward / prisim.DefaultRun), never a node-local
	// override, so a matrix names the same points on every coordinator.
	FastForward uint64 `json:"fast_forward,omitempty"`
	Run         uint64 `json:"run,omitempty"`
}

// Validate checks the matrix's shape without consulting the engine (the
// coordinator additionally validates benchmark and policy names at submit).
func (m Matrix) Validate() error {
	if len(m.Benchmarks) == 0 {
		return errors.New("matrix requires at least one benchmark")
	}
	if len(m.Policies) == 0 {
		return errors.New("matrix requires at least one policy")
	}
	for _, w := range m.Widths {
		if w != 4 && w != 8 {
			return fmt.Errorf("matrix width must be 4 or 8, got %d", w)
		}
	}
	for _, n := range m.PhysRegs {
		if n != 0 && n < 32 {
			return fmt.Errorf("matrix phys_regs must be 0 (machine default) or at least 32, got %d", n)
		}
	}
	for name, vals := range map[string][]string{"benchmarks": m.Benchmarks, "policies": m.Policies} {
		seen := make(map[string]bool, len(vals))
		for _, v := range vals {
			if seen[v] {
				return fmt.Errorf("duplicate %s entry %q", name, v)
			}
			seen[v] = true
		}
	}
	return nil
}

// MatrixStatus is a matrix's lifecycle view, returned by the fabric submit,
// status, and list endpoints. Points = StoreHits + Executed + Coalesced
// once the matrix is done: every point was served from the durable store,
// computed for this matrix, or joined another matrix's in-flight point.
type MatrixStatus struct {
	ID            string   `json:"id"` // content-derived: identical specs share an ID
	Spec          Matrix   `json:"spec"`
	State         JobState `json:"state"`
	Error         string   `json:"error,omitempty"`
	Points        int      `json:"points"`
	Done          int      `json:"done"`
	StoreHits     int      `json:"store_hits"`
	Executed      int      `json:"executed"`
	Coalesced     int      `json:"coalesced"`
	KernelVersion string   `json:"kernel_version"`

	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished"`
}

// PointResult is one resolved point of a finished matrix.
type PointResult struct {
	CacheKey   string        `json:"cache_key"`
	Request    JobRequest    `json:"request"`
	Result     prisim.Result `json:"result"`
	ComputedBy string        `json:"computed_by,omitempty"`
}

// MatrixResult is the body of GET /api/v1/fabric/matrices/{id}/result:
// the assembled experiment tables plus every point's result and provenance,
// so clients can re-derive the content addressing end to end.
type MatrixResult struct {
	ID            string         `json:"id"`
	KernelVersion string         `json:"kernel_version"`
	Tables        []prisim.Table `json:"tables"`
	Points        []PointResult  `json:"points,omitempty"`
}

// Text renders the matrix result as aligned fixed-width tables.
func (r MatrixResult) Text() string {
	var out string
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	return out
}

// WorkerInfo is the coordinator's view of one registered worker daemon.
type WorkerInfo struct {
	ID         string    `json:"id"`
	URL        string    `json:"url"`
	Version    string    `json:"version"`
	Healthy    bool      `json:"healthy"`
	InFlight   int       `json:"in_flight"`
	Completed  uint64    `json:"completed"`
	Failures   uint64    `json:"failures"`
	Registered time.Time `json:"registered"`
	LastError  string    `json:"last_error,omitempty"`
}

// RegisterWorkerRequest is the body of POST /api/v1/fabric/workers. URL is
// the worker daemon's externally reachable base URL; the coordinator probes
// it and refuses registration on kernel-version skew.
type RegisterWorkerRequest struct {
	URL string `json:"url"`
}

// apiError is the JSON error body every non-2xx response carries; 422
// responses to program submissions additionally carry the collected
// assembly diagnostics.
type apiError struct {
	Error       string       `json:"error"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}
