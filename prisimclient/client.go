package prisimclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"prisim"
)

// Sentinel errors matched (via errors.Is) by the *APIError values Client
// methods return for the corresponding HTTP statuses.
var (
	// ErrQueueFull matches 429 responses: the server's job queue is at
	// capacity and suggests a retry delay via Retry-After.
	ErrQueueFull = errors.New("job queue full")
	// ErrJobNotFound matches 404 responses: the server does not remember
	// the requested job (or matrix/worker) ID.
	ErrJobNotFound = errors.New("no such job")
	// ErrCacheKeyMismatch matches 409 responses to submits that carried a
	// client-computed CacheKey the server disagrees with — almost always
	// kernel-version skew between client and server builds.
	ErrCacheKeyMismatch = errors.New("cache key mismatch")
	// ErrAssembly matches 422 responses: a submitted program failed to
	// assemble, or the priscan static analysis found a provable error
	// (e.g. a store whose every possible address lies outside the program
	// image). The *APIError carries every positioned diagnostic the
	// frontend collected in Diagnostics; analysis findings additionally
	// fill the Analyzer and Severity fields.
	ErrAssembly = errors.New("program failed to assemble")
)

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration // from Retry-After on 429/503, else 0
	// Diagnostics carries the positioned assembly errors of a 422 response
	// to a program submission or check; empty otherwise.
	Diagnostics []Diagnostic
}

func (e *APIError) Error() string {
	return fmt.Sprintf("prisimd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is maps HTTP statuses onto the package sentinels: errors.Is(err,
// ErrQueueFull) matches 429s, ErrJobNotFound matches 404s, and
// ErrCacheKeyMismatch matches 409s whose message names a cache key.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrQueueFull:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrJobNotFound:
		return e.StatusCode == http.StatusNotFound
	case ErrCacheKeyMismatch:
		return e.StatusCode == http.StatusConflict && strings.Contains(e.Message, "cache key")
	case ErrAssembly:
		return e.StatusCode == http.StatusUnprocessableEntity
	}
	return false
}

// DefaultBasePath is where the versioned v1 API lives on a prisimd server.
const DefaultBasePath = "/api/v1"

// Client talks to one prisimd server. The zero value is not usable; create
// one with NewClient. A Client is safe for concurrent use.
type Client struct {
	base      string
	basePath  string
	hc        *http.Client
	auth      string // Authorization header value, "" = none
	userAgent string
}

// Option configures a Client built by NewClient.
type Option func(*Client)

// WithHTTPClient selects the *http.Client used for every request (nil
// keeps http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithBasePath overrides the API base path mounted under the server URL.
// The default is DefaultBasePath ("/api/v1"); the empty string selects the
// deprecated unversioned alias paths kept for one release.
func WithBasePath(p string) Option {
	return func(c *Client) { c.basePath = strings.TrimRight(p, "/") }
}

// WithAuthHeader sets the Authorization header sent with every request,
// e.g. WithAuthHeader("Bearer " + token). Empty disables it.
func WithAuthHeader(value string) Option {
	return func(c *Client) { c.auth = value }
}

// WithUserAgent overrides the User-Agent header (default
// "prisimclient/<version>").
func WithUserAgent(ua string) Option {
	return func(c *Client) { c.userAgent = ua }
}

// NewClient returns a Client for the server at baseURL (e.g.
// "http://localhost:8064") with the options applied.
func NewClient(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		basePath:  DefaultBasePath,
		hc:        http.DefaultClient,
		userAgent: "prisimclient/" + prisim.Version,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// New returns a Client for the server at baseURL. hc nil selects
// http.DefaultClient.
//
// Deprecated: New is the v0 constructor. Use NewClient, which takes
// functional options (WithHTTPClient, WithBasePath, WithAuthHeader,
// WithUserAgent).
func New(baseURL string, hc *http.Client) *Client {
	return NewClient(baseURL, WithHTTPClient(hc))
}

// url joins the server URL, the API base path, and an endpoint path.
func (c *Client) url(path string) string { return c.base + c.basePath + path }

// newRequest builds a request with the client's standing headers applied.
func (c *Client) newRequest(ctx context.Context, method, url string, rd io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if c.userAgent != "" {
		req.Header.Set("User-Agent", c.userAgent)
	}
	if c.auth != "" {
		req.Header.Set("Authorization", c.auth)
	}
	return req, nil
}

// do issues one request against the API base path and decodes a JSON
// response into out (out nil discards the body). Non-2xx responses decode
// into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := c.newRequest(ctx, method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var body apiError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err == nil && body.Error != "" {
		apiErr.Message = body.Error
		apiErr.Diagnostics = body.Diagnostics
	} else {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit enqueues a job and returns its accepted view (state queued).
// A full queue surfaces as an error matching errors.Is(err, ErrQueueFull)
// whose *APIError carries the server's suggested RetryAfter.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/jobs", req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// SubmitProgram enqueues a program job: src is PRISC-64 assembly text the
// server assembles and runs under its sandbox limits, with the machine
// parameters and budget taken from opts (Kind and Source are overwritten).
// Assembly failures surface as an error matching errors.Is(err,
// ErrAssembly) whose *APIError carries the positioned diagnostics.
func (c *Client) SubmitProgram(ctx context.Context, src []byte, opts JobRequest) (*Job, error) {
	opts.Kind = KindProgram
	opts.Source = src
	return c.Submit(ctx, opts)
}

// CheckProgram assembles src on the server without running it, returning
// the assembled image's identity. Assembly failures surface as an error
// matching errors.Is(err, ErrAssembly) whose *APIError carries the
// positioned diagnostics.
func (c *Client) CheckProgram(ctx context.Context, src []byte) (*ProgramInfo, error) {
	var info ProgramInfo
	if err := c.do(ctx, http.MethodPost, "/programs", ProgramCheckRequest{Source: src}, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Job fetches one job's current state.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job the server still remembers, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var js []Job
	if err := c.do(ctx, http.MethodGet, "/jobs", nil, &js); err != nil {
		return nil, err
	}
	return js, nil
}

// Result fetches a finished job's result. It fails with an *APIError
// (409) while the job is still queued or running.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var r JobResult
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/result", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Cancel requests cancellation of a queued or running job and returns the
// job's view. Cancelling a terminal job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Benchmarks lists the server's workload names.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/benchmarks", nil, &names)
	return names, err
}

// Experiments lists the server's experiment names.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/experiments", nil, &names)
	return names, err
}

// Version reports the server's build version.
func (c *Client) Version(ctx context.Context) (string, error) {
	var v struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/version", nil, &v)
	return v.Version, err
}

// Metrics fetches the raw Prometheus-format metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := c.newRequest(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Stream subscribes to a job's SSE event feed and calls fn for every event
// until the job reaches a terminal state, ctx is cancelled, or the
// connection drops. It returns the job's final event when the stream ended
// because the job finished.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event)) (*Event, error) {
	req, err := c.newRequest(ctx, http.MethodGet, c.url("/jobs/"+id+"/events"), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var ev Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return nil, fmt.Errorf("prisimd: bad event payload: %w", err)
			}
			data = data[:0]
			if fn != nil {
				fn(ev)
			}
			if ev.Type == "state" && ev.State.Terminal() {
				return &ev, nil
			}
		default:
			// comments (heartbeats) and event: lines need no handling;
			// the payload type rides inside the JSON.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// Wait blocks until the job reaches a terminal state and returns its final
// view. It prefers the SSE stream — one long-lived connection instead of a
// poll loop — and falls back to polling every pollEvery (0 selects 200ms)
// only when streaming is unavailable (proxy stripped the stream, server
// without SSE). A job the server does not remember fails fast with an error
// matching errors.Is(err, ErrJobNotFound) instead of entering the poll
// loop.
func (c *Client) Wait(ctx context.Context, id string, pollEvery time.Duration) (*Job, error) {
	if _, err := c.Stream(ctx, id, nil); err == nil {
		return c.Job(ctx, id)
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	} else if errors.Is(err, ErrJobNotFound) {
		return nil, err
	}
	if pollEvery <= 0 {
		pollEvery = 200 * time.Millisecond
	}
	t := time.NewTicker(pollEvery)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// --- Fabric endpoints (coordinator mode) ---

// SubmitMatrix submits an experiment matrix to a fabric coordinator and
// returns its status view. Matrix identity is content-derived: submitting
// an identical spec — from this or any other client — returns the same
// matrix ID and never recomputes a point that is warm in the coordinator's
// durable store or already in flight.
func (c *Client) SubmitMatrix(ctx context.Context, m Matrix) (*MatrixStatus, error) {
	var st MatrixStatus
	if err := c.do(ctx, http.MethodPost, "/fabric/matrices", m, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// MatrixStatus fetches one matrix's current status.
func (c *Client) MatrixStatus(ctx context.Context, id string) (*MatrixStatus, error) {
	var st MatrixStatus
	if err := c.do(ctx, http.MethodGet, "/fabric/matrices/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Matrices lists every matrix the coordinator tracks, oldest first.
func (c *Client) Matrices(ctx context.Context) ([]MatrixStatus, error) {
	var sts []MatrixStatus
	if err := c.do(ctx, http.MethodGet, "/fabric/matrices", nil, &sts); err != nil {
		return nil, err
	}
	return sts, nil
}

// MatrixResult fetches a finished matrix's assembled tables and per-point
// results. It fails with an *APIError (409) while the matrix is still
// running.
func (c *Client) MatrixResult(ctx context.Context, id string) (*MatrixResult, error) {
	var r MatrixResult
	if err := c.do(ctx, http.MethodGet, "/fabric/matrices/"+id+"/result", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// WaitMatrix polls until the matrix reaches a terminal state and returns
// its final status. pollEvery 0 selects 200ms.
func (c *Client) WaitMatrix(ctx context.Context, id string, pollEvery time.Duration) (*MatrixStatus, error) {
	if pollEvery <= 0 {
		pollEvery = 200 * time.Millisecond
	}
	t := time.NewTicker(pollEvery)
	defer t.Stop()
	for {
		st, err := c.MatrixStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// RegisterWorker registers a worker daemon (by its externally reachable
// base URL) with a fabric coordinator. Registration probes the worker and
// fails on kernel-version skew; re-registering a known URL refreshes it and
// clears its unhealthy state.
func (c *Client) RegisterWorker(ctx context.Context, url string) (*WorkerInfo, error) {
	var w WorkerInfo
	if err := c.do(ctx, http.MethodPost, "/fabric/workers", RegisterWorkerRequest{URL: url}, &w); err != nil {
		return nil, err
	}
	return &w, nil
}

// Workers lists the coordinator's registered workers.
func (c *Client) Workers(ctx context.Context) ([]WorkerInfo, error) {
	var ws []WorkerInfo
	if err := c.do(ctx, http.MethodGet, "/fabric/workers", nil, &ws); err != nil {
		return nil, err
	}
	return ws, nil
}

// DeregisterWorker removes a worker from the coordinator's pool by ID.
func (c *Client) DeregisterWorker(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/fabric/workers/"+id, nil, nil)
}
