package prisimclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrQueueFull is returned (wrapped in *APIError) when the server's job
// queue is at capacity; the server suggests a retry delay via Retry-After.
var ErrQueueFull = errors.New("job queue full")

// APIError is a non-2xx response from the service.
type APIError struct {
	StatusCode int
	Message    string
	RetryAfter time.Duration // from Retry-After on 429/503, else 0
}

func (e *APIError) Error() string {
	return fmt.Sprintf("prisimd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is lets errors.Is(err, ErrQueueFull) match 429 responses.
func (e *APIError) Is(target error) bool {
	return target == ErrQueueFull && e.StatusCode == http.StatusTooManyRequests
}

// Client talks to one prisimd server. The zero value is not usable; create
// one with New. A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a Client for the server at baseURL (e.g.
// "http://localhost:8064"). hc nil selects http.DefaultClient.
func New(baseURL string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// do issues one request and decodes a JSON response into out (out nil
// discards the body). Non-2xx responses decode into *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError.
func decodeError(resp *http.Response) error {
	apiErr := &APIError{StatusCode: resp.StatusCode}
	var body apiError
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
		apiErr.Message = body.Error
	} else {
		apiErr.Message = http.StatusText(resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// Submit enqueues a job and returns its accepted view (state queued).
// A full queue surfaces as an error matching errors.Is(err, ErrQueueFull)
// whose *APIError carries the server's suggested RetryAfter.
func (c *Client) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Job fetches one job's current state.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Jobs lists every job the server still remembers, oldest first.
func (c *Client) Jobs(ctx context.Context) ([]Job, error) {
	var js []Job
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &js); err != nil {
		return nil, err
	}
	return js, nil
}

// Result fetches a finished job's result. It fails with an *APIError
// (409) while the job is still queued or running.
func (c *Client) Result(ctx context.Context, id string) (*JobResult, error) {
	var r JobResult
	if err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/result", nil, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Cancel requests cancellation of a queued or running job and returns the
// job's view. Cancelling a terminal job is a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Benchmarks lists the server's workload names.
func (c *Client) Benchmarks(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/api/v1/benchmarks", nil, &names)
	return names, err
}

// Experiments lists the server's experiment names.
func (c *Client) Experiments(ctx context.Context) ([]string, error) {
	var names []string
	err := c.do(ctx, http.MethodGet, "/api/v1/experiments", nil, &names)
	return names, err
}

// Version reports the server's build version.
func (c *Client) Version(ctx context.Context) (string, error) {
	var v struct {
		Version string `json:"version"`
	}
	err := c.do(ctx, http.MethodGet, "/api/v1/version", nil, &v)
	return v.Version, err
}

// Metrics fetches the raw Prometheus-format metrics page.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Stream subscribes to a job's SSE event feed and calls fn for every event
// until the job reaches a terminal state, ctx is cancelled, or the
// connection drops. It returns the job's final event when the stream ended
// because the job finished.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event)) (*Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		case line == "" && len(data) > 0:
			var ev Event
			if err := json.Unmarshal(data, &ev); err != nil {
				return nil, fmt.Errorf("prisimd: bad event payload: %w", err)
			}
			data = data[:0]
			if fn != nil {
				fn(ev)
			}
			if ev.Type == "state" && ev.State.Terminal() {
				return &ev, nil
			}
		default:
			// comments (heartbeats) and event: lines need no handling;
			// the payload type rides inside the JSON.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, io.ErrUnexpectedEOF
}

// Wait blocks until the job reaches a terminal state and returns its final
// view. It prefers the SSE stream and falls back to polling every pollEvery
// (0 selects 200ms) if streaming is unavailable.
func (c *Client) Wait(ctx context.Context, id string, pollEvery time.Duration) (*Job, error) {
	if _, err := c.Stream(ctx, id, nil); err == nil {
		return c.Job(ctx, id)
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if pollEvery <= 0 {
		pollEvery = 200 * time.Millisecond
	}
	t := time.NewTicker(pollEvery)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
