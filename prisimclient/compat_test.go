package prisimclient

import (
	"encoding/json"
	"strings"
	"testing"
)

// The v1 wire redesign is additive: every v0 field name must keep decoding
// and re-encoding unchanged, so a v0 client and a v1 server (or the
// reverse) interoperate during the alias window. The payloads below are
// verbatim recordings of v0 traffic.

const v0JobRequest = `{
  "kind": "simulate",
  "benchmark": "gzip",
  "width": 8,
  "policy": "pri-rc-ckpt",
  "phys_regs": 48,
  "rename_inline": true,
  "fast_forward": 300,
  "run": 1500
}`

const v0Job = `{
  "id": "job-7",
  "request": {"kind": "experiment", "experiment": "fig8"},
  "state": "running",
  "progress": {"done": 3, "total": 40},
  "created": "2026-08-01T12:00:00Z",
  "started": "2026-08-01T12:00:01Z",
  "finished": "0001-01-01T00:00:00Z"
}`

const v0JobResult = `{
  "id": "job-3",
  "result": {"Benchmark": "gzip", "IPC": 1.234, "Committed": 1500}
}`

func TestV0JobRequestRoundTrip(t *testing.T) {
	var req JobRequest
	if err := json.Unmarshal([]byte(v0JobRequest), &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindSimulate || req.Benchmark != "gzip" || req.Width != 8 ||
		req.Policy != "pri-rc-ckpt" || req.PhysRegs != 48 || !req.RenameInline ||
		req.FastForward != 300 || req.Run != 1500 {
		t.Fatalf("v0 request decoded wrong: %+v", req)
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// Every v0 field name survives re-encoding, and the new optional field
	// stays absent when unset (a v0 server never sees it).
	for _, name := range []string{`"kind"`, `"benchmark"`, `"width"`, `"policy"`, `"phys_regs"`, `"rename_inline"`, `"fast_forward"`, `"run"`} {
		if !strings.Contains(string(out), name) {
			t.Errorf("re-encoded request lost v0 field %s: %s", name, out)
		}
	}
	if strings.Contains(string(out), "cache_key") {
		t.Errorf("unset cache_key must not appear on the wire: %s", out)
	}
}

func TestV0JobDecodes(t *testing.T) {
	var j Job
	if err := json.Unmarshal([]byte(v0Job), &j); err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-7" || j.State != StateRunning || j.Progress.Done != 3 || j.Progress.Total != 40 {
		t.Fatalf("v0 job decoded wrong: %+v", j)
	}
	if j.Request.Kind != KindExperiment || j.Request.Experiment != "fig8" {
		t.Fatalf("v0 nested request decoded wrong: %+v", j.Request)
	}
	// v1 additions default to empty on v0 payloads.
	if j.KernelVersion != "" || j.CacheKey != "" || j.ComputedBy != "" {
		t.Errorf("v1 fields must be zero on a v0 payload: %+v", j)
	}
}

func TestV0JobResultDecodes(t *testing.T) {
	var r JobResult
	if err := json.Unmarshal([]byte(v0JobResult), &r); err != nil {
		t.Fatal(err)
	}
	if r.ID != "job-3" || r.Result == nil || r.Result.IPC != 1.234 || r.Result.Committed != 1500 {
		t.Fatalf("v0 result decoded wrong: %+v", r)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"id"`, `"result"`} {
		if !strings.Contains(string(out), name) {
			t.Errorf("re-encoded result lost v0 field %s: %s", name, out)
		}
	}
}

// The payloads below are verbatim recordings of pre-priscan v1 traffic
// (the program-job wire surface as it shipped): the Warnings,
// Inlinability, Analyzer, Severity, and Addr additions must decode them
// unchanged and stay off the wire when unset.

const preLintProgramInfo = `{
  "sha256": "3f786850e387550fdab836ed7e6dc881de23001b1a6e1b4c1b5e9f1f8e2a0b3c",
  "entry": 65536,
  "code_words": 21,
  "data_segments": 2,
  "data_bytes": 24
}`

const preLintDiagnostic = `{
  "file": "program.s",
  "line": 2,
  "col": 8,
  "msg": "unknown register r99",
  "excerpt": "  addi r1, r99, 1"
}`

func TestPreLintProgramInfoDecodes(t *testing.T) {
	var info ProgramInfo
	if err := json.Unmarshal([]byte(preLintProgramInfo), &info); err != nil {
		t.Fatal(err)
	}
	if info.Entry != 65536 || info.CodeWords != 21 || info.DataSegments != 2 || info.DataBytes != 24 {
		t.Fatalf("pre-lint program info decoded wrong: %+v", info)
	}
	if info.Warnings != nil || info.Inlinability != nil {
		t.Errorf("lint fields must be zero on a pre-lint payload: %+v", info)
	}
	out, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"sha256"`, `"entry"`, `"code_words"`, `"data_segments"`, `"data_bytes"`} {
		if !strings.Contains(string(out), name) {
			t.Errorf("re-encoded info lost field %s: %s", name, out)
		}
	}
	for _, name := range []string{"warnings", "inlinability"} {
		if strings.Contains(string(out), name) {
			t.Errorf("unset %s must not appear on the wire: %s", name, out)
		}
	}
}

func TestPreLintDiagnosticDecodes(t *testing.T) {
	var d Diagnostic
	if err := json.Unmarshal([]byte(preLintDiagnostic), &d); err != nil {
		t.Fatal(err)
	}
	if d.File != "program.s" || d.Line != 2 || d.Col != 8 || d.Msg != "unknown register r99" {
		t.Fatalf("pre-lint diagnostic decoded wrong: %+v", d)
	}
	if d.Analyzer != "" || d.Severity != "" || d.Addr != 0 {
		t.Errorf("analysis fields must be zero on a pre-lint payload: %+v", d)
	}
	// An assembler diagnostic (no severity) renders exactly as before the
	// analysis fields existed.
	if got := d.String(); !strings.HasPrefix(got, "program.s:2:8: unknown register r99") {
		t.Errorf("pre-lint rendering changed: %q", got)
	}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"analyzer", "severity", "addr"} {
		if strings.Contains(string(out), name) {
			t.Errorf("unset %s must not appear on the wire: %s", name, out)
		}
	}
}

func TestPreLintJobDecodes(t *testing.T) {
	// A pre-lint job payload has no warnings array; the field must decode
	// to nil and stay off the wire on re-encode.
	var j Job
	if err := json.Unmarshal([]byte(v0Job), &j); err != nil {
		t.Fatal(err)
	}
	if j.Warnings != nil {
		t.Errorf("warnings must be nil on a pre-lint payload: %+v", j.Warnings)
	}
	out, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "warnings") {
		t.Errorf("unset warnings must not appear on the wire: %s", out)
	}
}

func TestCacheKeyForNormalizesDefaults(t *testing.T) {
	// A defaulted request and its explicit-default spelling are the same
	// point, so they must hash identically; the key must be sensitive to
	// the kernel version and to every hashed dimension.
	a := JobRequest{Kind: KindSimulate, Benchmark: "gzip"}
	b := JobRequest{Kind: KindSimulate, Benchmark: "gzip", Width: 4, Policy: "base", FastForward: 20_000, Run: 80_000}
	if CacheKeyFor("v1", a) != CacheKeyFor("v1", b) {
		t.Error("defaulted and explicit-default requests must share a cache key")
	}
	if CacheKeyFor("v1", a) == CacheKeyFor("v2", a) {
		t.Error("kernel version must change the cache key")
	}
	c := a
	c.PhysRegs = 48
	if CacheKeyFor("v1", a) == CacheKeyFor("v1", c) {
		t.Error("phys_regs must change the cache key")
	}
}
