package prisimclient

import (
	"encoding/json"
	"strings"
	"testing"
)

// The v1 wire redesign is additive: every v0 field name must keep decoding
// and re-encoding unchanged, so a v0 client and a v1 server (or the
// reverse) interoperate during the alias window. The payloads below are
// verbatim recordings of v0 traffic.

const v0JobRequest = `{
  "kind": "simulate",
  "benchmark": "gzip",
  "width": 8,
  "policy": "pri-rc-ckpt",
  "phys_regs": 48,
  "rename_inline": true,
  "fast_forward": 300,
  "run": 1500
}`

const v0Job = `{
  "id": "job-7",
  "request": {"kind": "experiment", "experiment": "fig8"},
  "state": "running",
  "progress": {"done": 3, "total": 40},
  "created": "2026-08-01T12:00:00Z",
  "started": "2026-08-01T12:00:01Z",
  "finished": "0001-01-01T00:00:00Z"
}`

const v0JobResult = `{
  "id": "job-3",
  "result": {"Benchmark": "gzip", "IPC": 1.234, "Committed": 1500}
}`

func TestV0JobRequestRoundTrip(t *testing.T) {
	var req JobRequest
	if err := json.Unmarshal([]byte(v0JobRequest), &req); err != nil {
		t.Fatal(err)
	}
	if req.Kind != KindSimulate || req.Benchmark != "gzip" || req.Width != 8 ||
		req.Policy != "pri-rc-ckpt" || req.PhysRegs != 48 || !req.RenameInline ||
		req.FastForward != 300 || req.Run != 1500 {
		t.Fatalf("v0 request decoded wrong: %+v", req)
	}
	out, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// Every v0 field name survives re-encoding, and the new optional field
	// stays absent when unset (a v0 server never sees it).
	for _, name := range []string{`"kind"`, `"benchmark"`, `"width"`, `"policy"`, `"phys_regs"`, `"rename_inline"`, `"fast_forward"`, `"run"`} {
		if !strings.Contains(string(out), name) {
			t.Errorf("re-encoded request lost v0 field %s: %s", name, out)
		}
	}
	if strings.Contains(string(out), "cache_key") {
		t.Errorf("unset cache_key must not appear on the wire: %s", out)
	}
}

func TestV0JobDecodes(t *testing.T) {
	var j Job
	if err := json.Unmarshal([]byte(v0Job), &j); err != nil {
		t.Fatal(err)
	}
	if j.ID != "job-7" || j.State != StateRunning || j.Progress.Done != 3 || j.Progress.Total != 40 {
		t.Fatalf("v0 job decoded wrong: %+v", j)
	}
	if j.Request.Kind != KindExperiment || j.Request.Experiment != "fig8" {
		t.Fatalf("v0 nested request decoded wrong: %+v", j.Request)
	}
	// v1 additions default to empty on v0 payloads.
	if j.KernelVersion != "" || j.CacheKey != "" || j.ComputedBy != "" {
		t.Errorf("v1 fields must be zero on a v0 payload: %+v", j)
	}
}

func TestV0JobResultDecodes(t *testing.T) {
	var r JobResult
	if err := json.Unmarshal([]byte(v0JobResult), &r); err != nil {
		t.Fatal(err)
	}
	if r.ID != "job-3" || r.Result == nil || r.Result.IPC != 1.234 || r.Result.Committed != 1500 {
		t.Fatalf("v0 result decoded wrong: %+v", r)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{`"id"`, `"result"`} {
		if !strings.Contains(string(out), name) {
			t.Errorf("re-encoded result lost v0 field %s: %s", name, out)
		}
	}
}

func TestCacheKeyForNormalizesDefaults(t *testing.T) {
	// A defaulted request and its explicit-default spelling are the same
	// point, so they must hash identically; the key must be sensitive to
	// the kernel version and to every hashed dimension.
	a := JobRequest{Kind: KindSimulate, Benchmark: "gzip"}
	b := JobRequest{Kind: KindSimulate, Benchmark: "gzip", Width: 4, Policy: "base", FastForward: 20_000, Run: 80_000}
	if CacheKeyFor("v1", a) != CacheKeyFor("v1", b) {
		t.Error("defaulted and explicit-default requests must share a cache key")
	}
	if CacheKeyFor("v1", a) == CacheKeyFor("v2", a) {
		t.Error("kernel version must change the cache key")
	}
	c := a
	c.PhysRegs = 48
	if CacheKeyFor("v1", a) == CacheKeyFor("v1", c) {
		t.Error("phys_regs must change the cache key")
	}
}
