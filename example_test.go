package prisim_test

import (
	"fmt"
	"log"
	"strings"

	"prisim"
)

// ExampleSimulate runs the paper's most register-starved integer benchmark
// under physical register inlining and prints stable facts about the run.
func ExampleSimulate() {
	res, err := prisim.Simulate(prisim.Options{
		Benchmark:   "mcf",
		Width:       8,
		Policy:      prisim.PolicyPRI,
		FastForward: 1000,
		Run:         5000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Benchmark)
	fmt.Println(res.IPC > 0 && res.IPC < 4)
	fmt.Println(res.IntOccupancy <= 64)
	// Output:
	// mcf
	// true
	// true
}

// ExampleBenchmarks enumerates the workload suite.
func ExampleBenchmarks() {
	bs := prisim.Benchmarks()
	fp := 0
	for _, b := range bs {
		if b.FP {
			fp++
		}
	}
	fmt.Printf("%d benchmarks (%d integer, %d floating point)\n", len(bs), len(bs)-fp, fp)
	// Output:
	// 27 benchmarks (13 integer, 14 floating point)
}

// ExampleExperiment regenerates one of the paper's tables.
func ExampleExperiment() {
	out, err := prisim.Experiment("table1", prisim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(strings.Contains(out, "scheduler entries"))
	// Output:
	// true
}

// ExamplePolicies lists the evaluated release schemes.
func ExamplePolicies() {
	fmt.Println(len(prisim.Policies()))
	// Output:
	// 8
}
