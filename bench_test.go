package prisim

// One benchmark per table and figure in the paper's evaluation. Each bench
// regenerates its experiment end to end (simulating every benchmark x
// machine x policy point it needs) at a reduced per-run budget so the
// harness itself is what is being measured; use cmd/priexp for full-budget
// reproduction output.
//
//	go test -bench=. -benchmem
//
// Shape notes are in EXPERIMENTS.md.

import (
	"testing"

	"prisim/internal/core"
	"prisim/internal/harness"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

// benchBudget keeps testing.B iterations affordable; experiments run every
// (benchmark, machine, policy) cell they need at this budget.
var benchBudget = harness.Budget{FastForward: 2000, Run: 6000}

func newRunner() *harness.Runner { return harness.NewRunner(benchBudget) }

func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2BaseIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Table2().Rows) != 27 {
			b.Fatal("table 2 incomplete")
		}
	}
}

func BenchmarkFig1RegisterLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig1().Rows) != 13 {
			b.Fatal("fig 1 incomplete")
		}
	}
}

func BenchmarkFig2OperandSignificance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		intT, fpT := r.Fig2()
		if len(intT.Rows) != 13 || len(fpT.Rows) != 14 {
			b.Fatal("fig 2 incomplete")
		}
	}
}

func BenchmarkFig8LifetimeReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig8().Rows) != 13 {
			b.Fatal("fig 8 incomplete")
		}
	}
}

func BenchmarkFig9RegisterSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig9(4).Rows) != 27 {
			b.Fatal("fig 9 incomplete")
		}
	}
}

func BenchmarkFig10IntSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig10(4).Rows) != 14 {
			b.Fatal("fig 10 incomplete")
		}
	}
}

func BenchmarkFig11Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig11(4).Rows) != 13 {
			b.Fatal("fig 11 incomplete")
		}
	}
}

func BenchmarkFig12FPSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Fig12(4).Rows) != 15 {
			b.Fatal("fig 12 incomplete")
		}
	}
}

func BenchmarkAblationRenameInline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.AblationRenameInline(4).Rows) != 13 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationDisambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.AblationDisambiguation(4).Rows) != 13 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per wall-clock second) on the baseline 4-wide machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("gzip")
	prog := w.Build(0)
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		p := ooo.New(ooo.Width4(), prog)
		total += p.Run(5000)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSchemeOverhead compares the simulator's own cost across release
// policies (the PRI machinery's bookkeeping is part of what this library
// implements, so its overhead is worth tracking).
func BenchmarkSchemeOverhead(b *testing.B) {
	w, _ := workloads.ByName("bzip2")
	prog := w.Build(0)
	for _, pol := range []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER} {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := ooo.New(ooo.Width4().WithPolicy(pol), prog)
				p.Run(5000)
			}
		})
	}
}

func BenchmarkAblationDelayedAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.AblationDelayedAllocation(4).Rows) != 13 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.AblationMSHR(4).Rows) != 13 {
			b.Fatal("ablation incomplete")
		}
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.AblationPrefetch(4).Rows) != 13 {
			b.Fatal("ablation incomplete")
		}
	}
}
