package prisim

// One benchmark per table and figure in the paper's evaluation. Each bench
// regenerates its experiment end to end (simulating every benchmark x
// machine x policy point it needs) at a reduced per-run budget so the
// harness itself is what is being measured; use cmd/priexp for full-budget
// reproduction output.
//
//	go test -bench=. -benchmem
//
// Shape notes are in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"prisim/internal/core"
	"prisim/internal/harness"
	"prisim/internal/ooo"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// benchBudget keeps testing.B iterations affordable; experiments run every
// (benchmark, machine, policy) cell they need at this budget.
var benchBudget = harness.Budget{FastForward: 2000, Run: 6000}

var benchCtx = context.Background()

func newRunner() *harness.Runner { return harness.NewRunner(benchBudget) }

// rows fails the benchmark unless the driver succeeded and produced n rows.
func rows(b *testing.B, t *stats.Table, err error, n int) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	if len(t.Rows) != n {
		b.Fatalf("incomplete: %d rows, want %d", len(t.Rows), n)
	}
}

func BenchmarkTable1Machines(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if harness.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2BaseIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Table2(benchCtx)
		rows(b, t, err, 27)
	}
}

func BenchmarkFig1RegisterLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig1(benchCtx)
		rows(b, t, err, 13)
	}
}

func BenchmarkFig2OperandSignificance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		intT, fpT, err := newRunner().Fig2(benchCtx)
		if err != nil {
			b.Fatal(err)
		}
		if len(intT.Rows) != 13 || len(fpT.Rows) != 14 {
			b.Fatal("fig 2 incomplete")
		}
	}
}

func BenchmarkFig8LifetimeReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig8(benchCtx)
		rows(b, t, err, 13)
	}
}

func BenchmarkFig9RegisterSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig9(benchCtx, 4)
		rows(b, t, err, 27)
	}
}

func BenchmarkFig10IntSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig10(benchCtx, 4)
		rows(b, t, err, 14)
	}
}

func BenchmarkFig11Occupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig11(benchCtx, 4)
		rows(b, t, err, 13)
	}
}

func BenchmarkFig12FPSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().Fig12(benchCtx, 4)
		rows(b, t, err, 15)
	}
}

func BenchmarkAblationRenameInline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().AblationRenameInline(benchCtx, 4)
		rows(b, t, err, 13)
	}
}

func BenchmarkAblationDisambiguation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().AblationDisambiguation(benchCtx, 4)
		rows(b, t, err, 13)
	}
}

// BenchmarkFig8Parallel measures the same experiment on a worker pool sized
// by GOMAXPROCS (cold cache each iteration) — the wall-clock win the v2
// harness exists for.
func BenchmarkFig8Parallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := harness.NewParallelRunner(benchBudget, 0).Fig8(benchCtx)
		rows(b, t, err, 13)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per wall-clock second) on the baseline 4-wide machine.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("gzip")
	prog := w.Build(0)
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		p := ooo.New(ooo.Width4(), prog)
		total += p.Run(5000)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSchemeOverhead compares the simulator's own cost across release
// policies (the PRI machinery's bookkeeping is part of what this library
// implements, so its overhead is worth tracking).
func BenchmarkSchemeOverhead(b *testing.B) {
	w, _ := workloads.ByName("bzip2")
	prog := w.Build(0)
	for _, pol := range []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER} {
		b.Run(pol.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := ooo.New(ooo.Width4().WithPolicy(pol), prog)
				p.Run(5000)
			}
		})
	}
}

func BenchmarkAblationDelayedAllocation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().AblationDelayedAllocation(benchCtx, 4)
		rows(b, t, err, 13)
	}
}

func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().AblationMSHR(benchCtx, 4)
		rows(b, t, err, 13)
	}
}

func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := newRunner().AblationPrefetch(benchCtx, 4)
		rows(b, t, err, 13)
	}
}
