package prisim

import (
	"prisim/internal/harness"
	"strings"
	"testing"
)

var tiny = Options{FastForward: 500, Run: 3000}

func simulate(t *testing.T, o Options) Result {
	t.Helper()
	o.FastForward, o.Run = tiny.FastForward, tiny.Run
	res, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSimulateDefaults(t *testing.T) {
	res := simulate(t, Options{Benchmark: "gzip"})
	if res.IPC <= 0 || res.Committed == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if res.Benchmark != "gzip" {
		t.Errorf("benchmark = %q", res.Benchmark)
	}
}

func TestSimulateAllPolicies(t *testing.T) {
	for _, pol := range Policies() {
		res := simulate(t, Options{Benchmark: "bzip2", Policy: pol, Width: 8})
		if res.IPC <= 0 {
			t.Errorf("%s: IPC %v", pol, res.IPC)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Options{Benchmark: "nope"}); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Simulate(Options{Benchmark: "gzip", Policy: "bogus"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Simulate(Options{Benchmark: "gzip", Width: 6}); err == nil {
		t.Error("width 6 accepted")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := simulate(t, Options{Benchmark: "twolf", Policy: PolicyPRI})
	b := simulate(t, Options{Benchmark: "twolf", Policy: PolicyPRI})
	if a != b {
		t.Errorf("nondeterministic simulation:\n%+v\n%+v", a, b)
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 27 {
		t.Fatalf("have %d benchmarks, want 27", len(bs))
	}
	fp := 0
	for _, b := range bs {
		if b.Name == "" || b.Description == "" || b.PaperIPC4 <= 0 {
			t.Errorf("incomplete benchmark %+v", b)
		}
		if b.FP {
			fp++
		}
	}
	if fp != 14 {
		t.Errorf("%d fp benchmarks, want 14", fp)
	}
}

func TestExperimentAPI(t *testing.T) {
	out, err := Experiment("table1", tiny)
	if err != nil || !strings.Contains(out, "ROB") {
		t.Errorf("table1: %v\n%s", err, out)
	}
	if _, err := Experiment("nope", tiny); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestExperimentFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	out, err := Experiment("fig2", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "ammp") {
		t.Errorf("fig2 output:\n%s", out)
	}
}

func TestSimulateRejectsTinyRegisterFile(t *testing.T) {
	if _, err := Simulate(Options{Benchmark: "gzip", PhysRegs: 16}); err == nil {
		t.Error("16 physical registers accepted")
	}
}

// TestDefaultBudgetConstantsMatchHarness pins the exported budget constants
// to the harness defaults they document: the content-hash schema
// (prisimclient.CacheKeyFor) folds these values in for zero budget fields,
// so drifting apart would silently re-key every cached result.
func TestDefaultBudgetConstantsMatchHarness(t *testing.T) {
	if DefaultFastForward != harness.DefaultBudget.FastForward {
		t.Errorf("DefaultFastForward = %d, harness default = %d", DefaultFastForward, harness.DefaultBudget.FastForward)
	}
	if DefaultRun != harness.DefaultBudget.Run {
		t.Errorf("DefaultRun = %d, harness default = %d", DefaultRun, harness.DefaultBudget.Run)
	}
}
