// Package prisim is the public facade over the physical register inlining
// reproduction: a cycle-level out-of-order PRISC-64 simulator whose rename
// stage implements the ISCA 2004 "Physical Register Inlining" scheme, the
// prior-work early-release scheme, and their combination, plus the
// SPEC2000-like synthetic workload suite and the experiment harness that
// regenerates the paper's tables and figures.
//
// Quick start:
//
//	res := prisim.Simulate(prisim.Options{
//		Benchmark: "mcf",
//		Width:     4,
//		Policy:    prisim.PolicyPRI,
//	})
//	fmt.Printf("IPC %.3f\n", res.IPC)
//
// Deeper control (custom programs, per-cycle inspection) is available
// through the internal packages for code living in this module; external
// users drive the simulator through Options and the cmd/ tools.
package prisim

import (
	"fmt"

	"prisim/internal/core"
	"prisim/internal/harness"
	"prisim/internal/ooo"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// Policy names a register release scheme.
type Policy string

// The eight schemes evaluated in the paper.
const (
	PolicyBase         Policy = "base"
	PolicyER           Policy = "er"
	PolicyPRI          Policy = "pri-rc-ckpt" // the paper's headline PRI configuration
	PolicyPRIRcLazy    Policy = "pri-rc-lazy"
	PolicyPRIIdealCkpt Policy = "pri-ideal-ckpt"
	PolicyPRIIdealLazy Policy = "pri-ideal-lazy"
	PolicyPRIPlusER    Policy = "pri+er"
	PolicyInfinite     Policy = "infpr"
)

var policyMap = map[Policy]core.Policy{
	PolicyBase:         core.PolicyBase,
	PolicyER:           core.PolicyER,
	PolicyPRI:          core.PolicyPRIRcCkpt,
	PolicyPRIRcLazy:    core.PolicyPRIRcLazy,
	PolicyPRIIdealCkpt: core.PolicyPRIIdealCkpt,
	PolicyPRIIdealLazy: core.PolicyPRIIdealLazy,
	PolicyPRIPlusER:    core.PolicyPRIPlusER,
	PolicyInfinite:     core.PolicyInfinite,
}

// Policies lists every available policy name.
func Policies() []Policy {
	return []Policy{PolicyBase, PolicyER, PolicyPRI, PolicyPRIRcLazy,
		PolicyPRIIdealCkpt, PolicyPRIIdealLazy, PolicyPRIPlusER, PolicyInfinite}
}

// Options selects a simulation point.
type Options struct {
	Benchmark string // a workload name (see Benchmarks)
	Width     int    // 4 or 8 (Table 1 machines); default 4
	Policy    Policy // default PolicyBase
	PhysRegs  int    // per-class physical registers; 0 = Table 1 default (64)

	FastForward uint64 // instructions skipped before measurement (default 20k)
	Run         uint64 // instructions measured (default 80k)

	// RenameInline enables the paper's Section 6 rename-time inlining
	// extension (narrow load-immediates never allocate a register).
	RenameInline bool
	// DelayedAllocation enables the Section 6 virtual-physical extension
	// (registers bind at writeback instead of rename).
	DelayedAllocation bool
}

// Result summarizes one simulation.
type Result struct {
	Benchmark string
	IPC       float64
	Cycles    uint64
	Committed uint64

	IntOccupancy float64 // mean allocated integer physical registers
	FPOccupancy  float64

	// Register lifetime phases (cycles, averaged per released register of
	// the benchmark's dominant class).
	AllocToWrite, WriteToRead, ReadToRelease float64

	InlineFraction float64 // source operands served from inlined map entries
	MispredictRate float64
	DL1MissRate    float64
	L2MissRate     float64
}

// Benchmark describes one available workload.
type Benchmark struct {
	Name        string
	FP          bool
	Description string
	PaperIPC4   float64
}

// Benchmarks lists the 27 available workloads.
func Benchmarks() []Benchmark {
	var out []Benchmark
	for _, w := range workloads.All() {
		out = append(out, Benchmark{
			Name:        w.Name,
			FP:          w.Class == workloads.FP,
			Description: w.Description,
			PaperIPC4:   w.PaperIPC4,
		})
	}
	return out
}

// Simulate runs one benchmark at one machine point and returns the result.
func Simulate(o Options) (Result, error) {
	w, ok := workloads.ByName(o.Benchmark)
	if !ok {
		return Result{}, fmt.Errorf("prisim: unknown benchmark %q", o.Benchmark)
	}
	pol := core.PolicyBase
	if o.Policy != "" {
		p, ok := policyMap[o.Policy]
		if !ok {
			return Result{}, fmt.Errorf("prisim: unknown policy %q", o.Policy)
		}
		pol = p
	}
	cfg := ooo.Width4()
	switch o.Width {
	case 0, 4:
	case 8:
		cfg = ooo.Width8()
	default:
		return Result{}, fmt.Errorf("prisim: width must be 4 or 8, got %d", o.Width)
	}
	cfg = cfg.WithPolicy(pol)
	if o.PhysRegs > 0 {
		if o.PhysRegs < 32 {
			return Result{}, fmt.Errorf("prisim: PhysRegs must be at least 32 (one per architected register), got %d", o.PhysRegs)
		}
		cfg = cfg.WithPRs(o.PhysRegs)
	}
	cfg.InlineAtRename = o.RenameInline
	cfg.DelayedAllocation = o.DelayedAllocation

	ff, run := o.FastForward, o.Run
	if ff == 0 {
		ff = harness.DefaultBudget.FastForward
	}
	if run == 0 {
		run = harness.DefaultBudget.Run
	}
	p := ooo.New(cfg, w.Build(0))
	p.FastForward(ff)
	p.Run(run)

	st := p.Stats()
	life := p.Renamer().IntStats()
	if w.Class == workloads.FP {
		life = p.Renamer().FPStats()
	}
	aw, wr, rr := life.AvgPhases()
	return Result{
		Benchmark:      w.Name,
		IPC:            st.IPC(),
		Cycles:         st.Cycles,
		Committed:      st.Committed,
		IntOccupancy:   st.AvgIntOccupancy(),
		FPOccupancy:    st.AvgFPOccupancy(),
		AllocToWrite:   aw,
		WriteToRead:    wr,
		ReadToRelease:  rr,
		InlineFraction: st.InlineFraction(),
		MispredictRate: st.MispredictRate(),
		DL1MissRate:    p.Mem().DL1.MissRate(),
		L2MissRate:     p.Mem().L2.MissRate(),
	}, nil
}

// Experiment regenerates one of the paper's tables or figures as rendered
// text. Valid names: table1, table2, fig1, fig2, fig8, fig9, fig10, fig11,
// fig12, ablation-inline, ablation-mem, ablation-delayed, ablation-mshr,
// ablation-prefetch.
func Experiment(name string, budget Options) (string, error) {
	b := harness.Budget{FastForward: budget.FastForward, Run: budget.Run}
	r := harness.NewRunner(b)
	var tables []*stats.Table
	switch name {
	case "table1":
		tables = append(tables, harness.Table1())
	case "table2":
		tables = append(tables, r.Table2())
	case "fig1":
		tables = append(tables, r.Fig1())
	case "fig2":
		a, bb := r.Fig2()
		tables = append(tables, a, bb)
	case "fig8":
		tables = append(tables, r.Fig8())
	case "fig9":
		tables = append(tables, r.Fig9(4), r.Fig9(8))
	case "fig10":
		tables = append(tables, r.Fig10(4), r.Fig10(8))
	case "fig11":
		tables = append(tables, r.Fig11(4), r.Fig11(8))
	case "fig12":
		tables = append(tables, r.Fig12(4), r.Fig12(8))
	case "ablation-inline":
		tables = append(tables, r.AblationRenameInline(4))
	case "ablation-mem":
		tables = append(tables, r.AblationDisambiguation(4))
	case "ablation-delayed":
		tables = append(tables, r.AblationDelayedAllocation(4))
	case "ablation-mshr":
		tables = append(tables, r.AblationMSHR(4))
	case "ablation-prefetch":
		tables = append(tables, r.AblationPrefetch(4))
	default:
		return "", fmt.Errorf("prisim: unknown experiment %q", name)
	}
	out := ""
	for _, t := range tables {
		out += t.String() + "\n"
	}
	return out, nil
}
