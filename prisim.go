// Package prisim is the public facade over the physical register inlining
// reproduction: a cycle-level out-of-order PRISC-64 simulator whose rename
// stage implements the ISCA 2004 "Physical Register Inlining" scheme, the
// prior-work early-release scheme, and their combination, plus the
// SPEC2000-like synthetic workload suite and the experiment harness that
// regenerates the paper's tables and figures.
//
// The v2 entry point is a long-lived, concurrency-safe Engine:
//
//	eng := prisim.NewEngine()
//	res, err := eng.Simulate(ctx, prisim.Options{
//		Benchmark: "mcf",
//		Width:     4,
//		Policy:    prisim.PolicyPRI,
//	})
//	fmt.Printf("IPC %.3f\n", res.IPC)
//
// An Engine memoizes timing runs and executes experiment run matrices on a
// bounded worker pool (see WithParallelism), deduplicates concurrent
// requests for the same simulation point, honours context cancellation, and
// reports failures with errors.Is-able sentinels (ErrUnknownBenchmark,
// ErrUnknownPolicy, ErrUnknownExperiment, ErrInvalidOptions).
//
// The package-level Simulate and Experiment functions are the deprecated v1
// API; they delegate to a shared default Engine.
package prisim

import (
	"context"
	"io"
	"sync"

	"prisim/internal/core"
	"prisim/internal/workloads"
)

// Policy names a register release scheme.
type Policy string

// The eight schemes evaluated in the paper.
const (
	PolicyBase         Policy = "base"
	PolicyER           Policy = "er"
	PolicyPRI          Policy = "pri-rc-ckpt" // the paper's headline PRI configuration
	PolicyPRIRcLazy    Policy = "pri-rc-lazy"
	PolicyPRIIdealCkpt Policy = "pri-ideal-ckpt"
	PolicyPRIIdealLazy Policy = "pri-ideal-lazy"
	PolicyPRIPlusER    Policy = "pri+er"
	PolicyInfinite     Policy = "infpr"
)

var policyMap = map[Policy]core.Policy{
	PolicyBase:         core.PolicyBase,
	PolicyER:           core.PolicyER,
	PolicyPRI:          core.PolicyPRIRcCkpt,
	PolicyPRIRcLazy:    core.PolicyPRIRcLazy,
	PolicyPRIIdealCkpt: core.PolicyPRIIdealCkpt,
	PolicyPRIIdealLazy: core.PolicyPRIIdealLazy,
	PolicyPRIPlusER:    core.PolicyPRIPlusER,
	PolicyInfinite:     core.PolicyInfinite,
}

// Policies lists every available policy name.
func Policies() []Policy {
	return []Policy{PolicyBase, PolicyER, PolicyPRI, PolicyPRIRcLazy,
		PolicyPRIIdealCkpt, PolicyPRIIdealLazy, PolicyPRIPlusER, PolicyInfinite}
}

// IsPRI reports whether p is one of the physical-register-inlining schemes
// (for which Result's PRI activity counters are meaningful).
func (p Policy) IsPRI() bool {
	cp, ok := policyMap[p]
	return ok && cp.PRI
}

// The paper-methodology per-run measurement budget defaults: every zero
// FastForward/Run field — in Options, in service requests, and in fabric
// matrices — resolves to these values. They are part of the content-hash
// schema (prisimclient.CacheKeyFor), so they are exported constants rather
// than tunables.
const (
	DefaultFastForward = 20_000
	DefaultRun         = 80_000
)

// Options selects a simulation point.
type Options struct {
	Benchmark string // a workload name (see Benchmarks)
	Width     int    // 4 or 8 (Table 1 machines); default 4
	Policy    Policy // default PolicyBase
	PhysRegs  int    // per-class physical registers; 0 = Table 1 default (64)

	FastForward uint64 // instructions skipped before measurement (default 20k)
	Run         uint64 // instructions measured (default 80k)

	// RenameInline enables the paper's Section 6 rename-time inlining
	// extension (narrow load-immediates never allocate a register).
	RenameInline bool
	// DelayedAllocation enables the Section 6 virtual-physical extension
	// (registers bind at writeback instead of rename).
	DelayedAllocation bool

	// MemLimit, when nonzero, caps the simulated machine's resident memory
	// footprint in bytes for SimulateProgram runs (the service's program
	// sandbox); exceeding it fails the run with an error matching
	// errors.Is(err, ErrMemLimit). Ignored by Simulate: the named workloads
	// are compiled in and have known footprints.
	MemLimit uint64

	// MachineJSON, when non-empty, overrides the Width-selected machine
	// with a JSON configuration (the format MachineJSON produces); Policy,
	// PhysRegs, and the extension flags still apply on top. Runs with a
	// custom machine bypass the Engine's memoization cache.
	MachineJSON []byte
	// PipeView, when non-nil, receives a gem5 O3PipeView-format pipeline
	// trace of the run. Traced runs bypass the memoization cache so the
	// trace is always produced.
	PipeView io.Writer
}

// Result summarizes one simulation.
type Result struct {
	Benchmark string
	Machine   string // machine configuration name ("4wide" / "8wide")
	IntPRs    int    // integer physical register file size simulated
	FPPRs     int    // floating-point physical register file size simulated

	IPC       float64
	Cycles    uint64
	Committed uint64

	IntOccupancy float64 // mean allocated integer physical registers
	FPOccupancy  float64

	// Register lifetime phases (cycles, averaged per released register of
	// the benchmark's dominant class).
	AllocToWrite, WriteToRead, ReadToRelease float64

	InlineFraction float64 // source operands served from inlined map entries
	MispredictRate float64
	BranchResolved uint64
	DL1MissRate    float64
	L2MissRate     float64
	Replays        uint64 // scheduler latency mis-speculation replays

	// PRI activity counters for the benchmark's dominant register class
	// (zero under non-PRI policies; see Policy.IsPRI).
	InlinedResults uint64
	WAWSuppressed  uint64
	DeferredFrees  uint64
	EarlyFrees     uint64
}

// Benchmark describes one available workload.
type Benchmark struct {
	Name        string
	FP          bool
	Description string
	PaperIPC4   float64
}

// Benchmarks lists the 27 available workloads.
func Benchmarks() []Benchmark {
	var out []Benchmark
	for _, w := range workloads.All() {
		out = append(out, Benchmark{
			Name:        w.Name,
			FP:          w.Class == workloads.FP,
			Description: w.Description,
			PaperIPC4:   w.PaperIPC4,
		})
	}
	return out
}

// defaultEngine backs the deprecated package-level API: one shared Engine,
// built on first use, so legacy callers still benefit from memoization.
var defaultEngine = sync.OnceValue(func() *Engine { return NewEngine() })

// Simulate runs one benchmark at one machine point and returns the result.
//
// Deprecated: Simulate is the v1 entry point; it delegates to a shared
// default Engine with a background context. Use NewEngine and
// Engine.Simulate for context cancellation, parallelism control, and
// progress reporting.
func Simulate(o Options) (Result, error) {
	//lint:ignore ctxcheck deprecated v1 compatibility shim: its documented contract is exactly "background context"
	return defaultEngine().Simulate(context.Background(), o)
}

// Experiment regenerates one of the paper's tables or figures as rendered
// text. Valid names are listed by ExperimentNames.
//
// Deprecated: Experiment is the v1 entry point; it delegates to a shared
// default Engine with a background context. Use NewEngine and
// Engine.Experiment, which add cancellation and run the experiment's whole
// simulation matrix on a worker pool.
func Experiment(name string, budget Options) (string, error) {
	//lint:ignore ctxcheck deprecated v1 compatibility shim: its documented contract is exactly "background context"
	return defaultEngine().Experiment(context.Background(), name, budget)
}
