package prisim

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastOpts keeps Engine tests quick; shapes, not paper numbers, are asserted.
func fastEngine(extra ...EngineOption) *Engine {
	return NewEngine(append([]EngineOption{WithBudget(500, 4000)}, extra...)...)
}

func TestEngineSimulate(t *testing.T) {
	eng := fastEngine()
	res, err := eng.Simulate(context.Background(), Options{Benchmark: "gzip"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != "gzip" || res.IPC <= 0 || res.Committed == 0 {
		t.Errorf("bad result: %+v", res)
	}
	if res.Machine == "" || res.IntPRs == 0 {
		t.Errorf("machine fields unset: %q, %d PRs", res.Machine, res.IntPRs)
	}
	// Second call is a cache hit: no new simulation.
	if _, err := eng.Simulate(context.Background(), Options{Benchmark: "gzip"}); err != nil {
		t.Fatal(err)
	}
	if got := eng.RunsExecuted(); got != 1 {
		t.Errorf("RunsExecuted = %d, want 1", got)
	}
}

func TestEngineErrorSentinels(t *testing.T) {
	eng := fastEngine()
	ctx := context.Background()
	cases := []struct {
		name string
		do   func() error
		want error
	}{
		{"unknown benchmark", func() error {
			_, err := eng.Simulate(ctx, Options{Benchmark: "quake3"})
			return err
		}, ErrUnknownBenchmark},
		{"unknown policy", func() error {
			_, err := eng.Simulate(ctx, Options{Benchmark: "gzip", Policy: "magic"})
			return err
		}, ErrUnknownPolicy},
		{"bad width", func() error {
			_, err := eng.Simulate(ctx, Options{Benchmark: "gzip", Width: 6})
			return err
		}, ErrInvalidOptions},
		{"bad phys regs", func() error {
			_, err := eng.Simulate(ctx, Options{Benchmark: "gzip", PhysRegs: 8})
			return err
		}, ErrInvalidOptions},
		{"bad machine json", func() error {
			_, err := eng.Simulate(ctx, Options{Benchmark: "gzip", MachineJSON: []byte("{")})
			return err
		}, ErrInvalidOptions},
		{"unknown experiment", func() error {
			_, err := eng.Experiment(ctx, "fig99", Options{})
			return err
		}, ErrUnknownExperiment},
		{"program with benchmark set", func() error {
			p, err := Assemble(".text\nmain:\n  halt\n")
			if err != nil {
				return err
			}
			_, err = eng.SimulateProgram(ctx, p, Options{Benchmark: "gzip"})
			return err
		}, ErrInvalidOptions},
	}
	for _, tc := range cases {
		err := tc.do()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: errors.Is(%v, %v) = false", tc.name, err, tc.want)
		}
		if !strings.HasPrefix(err.Error(), "prisim: ") {
			t.Errorf("%s: error not prefixed: %v", tc.name, err)
		}
	}
}

func TestExperimentNameDispatch(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 14 || names[0] != "table1" {
		t.Fatalf("ExperimentNames() = %v", names)
	}
	eng := fastEngine()
	out, err := eng.Experiment(context.Background(), "table1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ROB") {
		t.Errorf("table1 output missing ROB:\n%s", out)
	}
	tables, err := eng.ExperimentTables(context.Background(), "fig8", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 13 {
		t.Errorf("fig8 shape: %d tables", len(tables))
	}
	if tables[0].String() == "" {
		t.Error("Table.String empty")
	}
}

func TestExperimentCancellation(t *testing.T) {
	// Pre-cancelled context fails fast without simulating.
	eng := fastEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Experiment(ctx, "fig8", Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Experiment error = %v", err)
	}
	if eng.RunsExecuted() != 0 {
		t.Error("cancelled sweep still simulated")
	}

	// Cancellation mid-sweep: large budget, cancel shortly after kickoff.
	slow := NewEngine(WithBudget(2000, 50_000))
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := slow.Experiment(ctx2, "fig8", Options{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel2()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-sweep cancellation error = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled sweep did not return")
	}
}

// TestEngineStress hammers one Engine from 16 goroutines mixing Simulate
// calls over a small point set and asserts singleflight deduplication:
// every distinct point simulated exactly once. Meaningful under -race.
func TestEngineStress(t *testing.T) {
	var mu sync.Mutex
	maxTotal := 0
	eng := NewEngine(WithBudget(200, 1000), WithProgress(func(done, total int) {
		mu.Lock()
		if total > maxTotal {
			maxTotal = total
		}
		mu.Unlock()
	}))
	points := []Options{
		{Benchmark: "gzip"},
		{Benchmark: "gzip", Policy: PolicyPRI},
		{Benchmark: "mcf", Width: 8},
		{Benchmark: "parser", PhysRegs: 48},
	}
	const goroutines = 16
	var wg sync.WaitGroup
	results := make([][]Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, o := range points {
					res, err := eng.Simulate(context.Background(), o)
					if err != nil {
						t.Error(err)
						return
					}
					results[g] = append(results[g], res)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := eng.RunsExecuted(); got != len(points) {
		t.Errorf("RunsExecuted = %d for %d unique points under %d goroutines, want %d",
			got, len(points), goroutines, len(points))
	}
	if maxTotal != len(points) {
		t.Errorf("progress reported %d submissions, want %d", maxTotal, len(points))
	}
	// All goroutines observed identical values for identical points.
	for g := 1; g < goroutines; g++ {
		for i, r := range results[g] {
			if r != results[0][i] {
				t.Fatalf("goroutine %d result %d diverged", g, i)
			}
		}
	}
}

func TestEngineExperimentDeterminism(t *testing.T) {
	// Same experiment on a serial and a parallel Engine: byte-identical text.
	serial, err := NewEngine(WithBudget(300, 1500), WithParallelism(1)).
		Experiment(context.Background(), "fig8", Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(WithBudget(300, 1500), WithParallelism(8)).
		Experiment(context.Background(), "fig8", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if serial != par {
		t.Errorf("parallel output differs from serial:\n--- serial ---\n%s--- parallel ---\n%s", serial, par)
	}
}

func TestSimulateProgram(t *testing.T) {
	p, err := Assemble(`
.text
main:
  li r1, 72          ; 'H'
  putc r1
  li r1, 10
  putc r1
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Disassemble() == "" {
		t.Error("empty disassembly")
	}
	res, err := fastEngine().SimulateProgram(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "H\n" {
		t.Errorf("program output = %q, want \"H\\n\"", res.Output)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Errorf("empty timing result: %+v", res.Result)
	}
}

func TestMachineJSONRoundTrip(t *testing.T) {
	data, err := MachineJSON(Options{Policy: PolicyPRI, PhysRegs: 48})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "48") {
		t.Errorf("machine JSON missing PR count:\n%s", data)
	}
	// Feeding the JSON back selects the same machine (uncached path).
	eng := fastEngine()
	res, err := eng.Simulate(context.Background(), Options{Benchmark: "gzip", MachineJSON: data, Policy: PolicyPRI, PhysRegs: 48})
	if err != nil {
		t.Fatal(err)
	}
	if res.IntPRs != 48 {
		t.Errorf("IntPRs = %d, want 48", res.IntPRs)
	}
}

func TestDeprecatedWrappers(t *testing.T) {
	res, err := Simulate(Options{Benchmark: "gzip", FastForward: 500, Run: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("wrapper IPC = %v", res.IPC)
	}
	out, err := Experiment("table1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ROB") {
		t.Error("wrapper Experiment output wrong")
	}
	if _, err := Experiment("nope", Options{}); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("wrapper error = %v", err)
	}
}
