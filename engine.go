package prisim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/harness"
	"prisim/internal/ooo"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// Sentinel errors returned (wrapped, with detail) by Engine methods; test
// with errors.Is.
var (
	ErrUnknownBenchmark  = errors.New("unknown benchmark")
	ErrUnknownPolicy     = errors.New("unknown policy")
	ErrUnknownExperiment = errors.New("unknown experiment")
	ErrInvalidOptions    = errors.New("invalid options")
)

// Engine is the long-lived v2 entry point. It owns a memoizing, singleflight
// simulation cache and a bounded worker pool: concurrent Simulate calls for
// the same point share one run, and Experiment submits its whole run matrix
// to the pool before assembling rows, so output is byte-identical to serial
// execution while wall-clock scales with cores. An Engine is safe for use
// from multiple goroutines and is meant to be created once and reused.
type Engine struct {
	budget harness.Budget
	runner *harness.Runner
}

type engineSettings struct {
	budget       harness.Budget
	workers      int
	onProgress   func(done, total int)
	log          io.Writer
	snapshotsOff bool
}

// EngineOption configures NewEngine.
type EngineOption func(*engineSettings)

// WithBudget sets the default per-run measurement budget: fastForward
// instructions skipped, then run instructions measured. Zero fields keep
// the paper-methodology defaults (20k + 80k). Options.FastForward/Run
// override this per call.
func WithBudget(fastForward, run uint64) EngineOption {
	return func(s *engineSettings) {
		s.budget = harness.Budget{FastForward: fastForward, Run: run}
	}
}

// WithParallelism bounds how many simulations run concurrently; n <= 0
// (the default) selects GOMAXPROCS. n == 1 reproduces serial execution.
func WithParallelism(n int) EngineOption {
	return func(s *engineSettings) { s.workers = n }
}

// WithProgress registers fn to be called after every completed simulation
// with the number of runs finished and submitted so far, letting CLIs
// stream completion counts. Calls are serialized; fn must be fast and must
// not call back into the Engine.
func WithProgress(fn func(done, total int)) EngineOption {
	return func(s *engineSettings) { s.onProgress = fn }
}

// WithRunLog directs a one-line-per-completed-run text log to w.
func WithRunLog(w io.Writer) EngineOption {
	return func(s *engineSettings) { s.log = w }
}

// WithSnapshots enables or disables the fast-forward snapshot cache
// (enabled by default): each workload's functional fast-forward executes
// once and every later run for that workload starts from a copy-on-write
// clone of the warm state. Results are byte-identical either way; disable
// it only to measure the replay cost it removes.
func WithSnapshots(enabled bool) EngineOption {
	return func(s *engineSettings) { s.snapshotsOff = !enabled }
}

// NewEngine returns an Engine with the given options applied.
func NewEngine(opts ...EngineOption) *Engine {
	var s engineSettings
	for _, o := range opts {
		o(&s)
	}
	r := harness.NewParallelRunner(s.budget, s.workers)
	if s.onProgress != nil {
		r.OnProgress(s.onProgress)
	}
	if s.log != nil {
		r.SetProgress(s.log)
	}
	if s.snapshotsOff {
		r.SetSnapshots(false)
	}
	return &Engine{budget: r.Budget, runner: r}
}

// runnerFor returns the Engine's runner viewed at o's per-call budget
// (zero fields fall back to the Engine default). All views share one cache
// and worker pool.
func (e *Engine) runnerFor(o Options) *harness.Runner {
	return e.runner.WithBudget(harness.Budget{FastForward: o.FastForward, Run: o.Run})
}

// resolveMachine validates the machine-selection half of o and builds the
// pipeline configuration.
func resolveMachine(o Options) (ooo.Config, error) {
	cfg := ooo.Width4()
	switch o.Width {
	case 0, 4:
	case 8:
		cfg = ooo.Width8()
	default:
		return cfg, fmt.Errorf("prisim: %w: width must be 4 or 8, got %d", ErrInvalidOptions, o.Width)
	}
	if len(o.MachineJSON) > 0 {
		// The JSON is the base machine; the remaining options still win.
		if err := json.Unmarshal(o.MachineJSON, &cfg); err != nil {
			return cfg, fmt.Errorf("prisim: %w: MachineJSON: %v", ErrInvalidOptions, err)
		}
	}
	return cfg, nil
}

// resolveOptions validates o and returns the workload plus the fully
// configured machine.
func resolveOptions(o Options) (workloads.Workload, ooo.Config, error) {
	w, ok := workloads.ByName(o.Benchmark)
	if !ok {
		return w, ooo.Config{}, fmt.Errorf("prisim: %w: %q", ErrUnknownBenchmark, o.Benchmark)
	}
	cfg, err := machineFor(o)
	return w, cfg, err
}

// machineFor builds the complete machine configuration o selects.
func machineFor(o Options) (ooo.Config, error) {
	cfg, err := resolveMachine(o)
	if err != nil {
		return cfg, err
	}
	pol := core.PolicyBase
	if o.Policy != "" {
		p, ok := policyMap[o.Policy]
		if !ok {
			return cfg, fmt.Errorf("prisim: %w: %q", ErrUnknownPolicy, o.Policy)
		}
		pol = p
	}
	cfg = cfg.WithPolicy(pol)
	if o.PhysRegs > 0 {
		if o.PhysRegs < 32 {
			return cfg, fmt.Errorf("prisim: %w: PhysRegs must be at least 32 (one per architected register), got %d", ErrInvalidOptions, o.PhysRegs)
		}
		cfg = cfg.WithPRs(o.PhysRegs)
	}
	cfg.InlineAtRename = o.RenameInline
	cfg.DelayedAllocation = o.DelayedAllocation
	return cfg, nil
}

// toResult converts a harness result into the public form.
func toResult(hr *harness.Result, cfg ooo.Config) Result {
	return Result{
		Benchmark:      hr.Bench,
		Machine:        cfg.Name,
		IntPRs:         cfg.Rename.IntPRs,
		FPPRs:          cfg.Rename.FPPRs,
		IPC:            hr.IPC,
		Cycles:         hr.Cycles,
		Committed:      hr.Committed,
		IntOccupancy:   hr.IntOccupancy,
		FPOccupancy:    hr.FPOccupancy,
		AllocToWrite:   hr.AllocToWrite,
		WriteToRead:    hr.WriteToRead,
		ReadToRelease:  hr.ReadToRelease,
		InlineFraction: hr.InlineFraction,
		MispredictRate: hr.Mispredict,
		BranchResolved: hr.BranchResolved,
		DL1MissRate:    hr.DL1Miss,
		L2MissRate:     hr.L2Miss,
		Replays:        hr.Replays,
		InlinedResults: hr.InlinedResults,
		WAWSuppressed:  hr.WAWSuppressed,
		DeferredFrees:  hr.DeferredFrees,
		EarlyFrees:     hr.EarlyFrees,
	}
}

// Simulate runs one benchmark at one machine point and returns the result.
// Identical concurrent calls share a single simulation; repeated calls hit
// the Engine's cache. The run aborts with ctx's error if the context is
// cancelled. Runs with PipeView or MachineJSON set bypass the cache.
func (e *Engine) Simulate(ctx context.Context, o Options) (Result, error) {
	w, cfg, err := resolveOptions(o)
	if err != nil {
		return Result{}, err
	}
	rr := e.runnerFor(o)
	var hr *harness.Result
	if o.PipeView != nil || len(o.MachineJSON) > 0 {
		hr, _, err = harness.RunProgram(ctx, cfg, w.Build(0), w.Class == workloads.FP, rr.Budget, 0, o.PipeView)
		if hr != nil {
			hr.Bench = w.Name
		}
	} else {
		hr, err = rr.RunCtx(ctx, w, cfg)
	}
	if err != nil {
		return Result{}, err
	}
	return toResult(hr, cfg), nil
}

// ErrMemLimit matches (via errors.Is) the failure of a SimulateProgram run
// whose simulated machine footprint exceeded Options.MemLimit.
var ErrMemLimit = harness.ErrMemLimit

// Program is an assembled PRISC-64 program runnable by SimulateProgram.
type Program struct {
	prog *asm.Program
}

// Assemble assembles PRISC-64 assembly text into a Program. On failure the
// error carries every diagnostic the frontend collected; extract them with
// AssembleDiagnostics.
func Assemble(src string) (*Program, error) {
	return AssembleFile("<input>", src)
}

// AssembleFile is Assemble with a file name for diagnostics.
func AssembleFile(name, src string) (*Program, error) {
	p, err := asm.AssembleFile(name, src)
	if err != nil {
		return nil, fmt.Errorf("prisim: %w", err)
	}
	return &Program{prog: p}, nil
}

// Diagnostic is one positioned assembly error: file, 1-based rune-accurate
// line/column, message, and the offending source line.
type Diagnostic = asm.Diagnostic

// AssembleDiagnostics extracts the collected diagnostics from an error
// returned by Assemble/AssembleFile, or nil if err did not come from the
// assembler frontend. The frontend collects every error it finds (capped),
// not just the first.
func AssembleDiagnostics(err error) []Diagnostic { return asm.Diagnostics(err) }

// SHA256 returns the hex content hash of the assembled image (symbols
// excluded): the identity program-job cache keys are derived from.
func (p *Program) SHA256() string { return p.prog.SHA256() }

// NewProgram wraps an already-assembled image (built with the in-module
// internal/asm builder API) for SimulateProgram. External users assemble
// text with Assemble instead.
func NewProgram(p *asm.Program) *Program { return &Program{prog: p} }

// Disassemble renders the program's code segment as assembly text.
func (p *Program) Disassemble() string { return p.prog.Disassemble() }

// ProgramResult is SimulateProgram's outcome: the usual timing statistics
// plus whatever the program wrote to its console.
type ProgramResult struct {
	Result
	Output []byte
}

// SimulateProgram runs an assembled program through the timing pipeline.
// Unlike Simulate, the budget in o is taken verbatim: FastForward 0 skips
// nothing and Run 0 runs until the program halts. o.Benchmark must be
// empty; the run is never cached.
func (e *Engine) SimulateProgram(ctx context.Context, p *Program, o Options) (ProgramResult, error) {
	if o.Benchmark != "" {
		return ProgramResult{}, fmt.Errorf("prisim: %w: Benchmark must be empty when simulating an assembled program", ErrInvalidOptions)
	}
	cfg, err := machineFor(o)
	if err != nil {
		return ProgramResult{}, err
	}
	run := o.Run
	if run == 0 {
		run = math.MaxUint64 / 2 // run to halt
	}
	b := harness.Budget{FastForward: o.FastForward, Run: run}
	hr, out, err := harness.RunProgram(ctx, cfg, p.prog, false, b, o.MemLimit, o.PipeView)
	if err != nil {
		return ProgramResult{}, err
	}
	return ProgramResult{Result: toResult(hr, cfg), Output: out}, nil
}

// MachineJSON renders the machine configuration o selects as JSON — the
// format Options.MachineJSON and prisim's -machine flag accept.
func MachineJSON(o Options) ([]byte, error) {
	cfg, err := machineFor(o)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(cfg, "", "  ")
}

// Table is a rendered experiment table: the title, column headers, and row
// cells of one of the paper's figures or tables.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// String renders the table as aligned fixed-width text.
func (t Table) String() string {
	st := &stats.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
	return st.String()
}

// experimentOrder lists the valid experiment names in canonical order.
var experimentOrder = []string{
	"table1", "table2", "fig1", "fig2", "fig8", "fig9", "fig10", "fig11",
	"fig12", "ablation-inline", "ablation-mem", "ablation-delayed",
	"ablation-mshr", "ablation-prefetch",
}

// experimentFuncs maps each experiment name to its harness driver.
var experimentFuncs = map[string]func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error){
	"table1": func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error) {
		return []*stats.Table{harness.Table1()}, nil
	},
	"table2": one((*harness.Runner).Table2),
	"fig1":   one((*harness.Runner).Fig1),
	"fig2": func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error) {
		a, b, err := r.Fig2(ctx)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{a, b}, nil
	},
	"fig8":              one((*harness.Runner).Fig8),
	"fig9":              widths((*harness.Runner).Fig9),
	"fig10":             widths((*harness.Runner).Fig10),
	"fig11":             widths((*harness.Runner).Fig11),
	"fig12":             widths((*harness.Runner).Fig12),
	"ablation-inline":   at4((*harness.Runner).AblationRenameInline),
	"ablation-mem":      at4((*harness.Runner).AblationDisambiguation),
	"ablation-delayed":  at4((*harness.Runner).AblationDelayedAllocation),
	"ablation-mshr":     at4((*harness.Runner).AblationMSHR),
	"ablation-prefetch": at4((*harness.Runner).AblationPrefetch),
}

// one adapts a single-table driver.
func one(fn func(*harness.Runner, context.Context) (*stats.Table, error)) func(context.Context, *harness.Runner) ([]*stats.Table, error) {
	return func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error) {
		t, err := fn(r, ctx)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
}

// widths adapts a per-width driver run at both machine widths.
func widths(fn func(*harness.Runner, context.Context, int) (*stats.Table, error)) func(context.Context, *harness.Runner) ([]*stats.Table, error) {
	return func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error) {
		t4, err := fn(r, ctx, 4)
		if err != nil {
			return nil, err
		}
		t8, err := fn(r, ctx, 8)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t4, t8}, nil
	}
}

// at4 adapts a per-width driver run at the 4-wide machine only (the
// ablations).
func at4(fn func(*harness.Runner, context.Context, int) (*stats.Table, error)) func(context.Context, *harness.Runner) ([]*stats.Table, error) {
	return func(ctx context.Context, r *harness.Runner) ([]*stats.Table, error) {
		t, err := fn(r, ctx, 4)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
}

// ExperimentNames lists the valid Experiment names in canonical order.
func ExperimentNames() []string {
	out := make([]string, len(experimentOrder))
	copy(out, experimentOrder)
	return out
}

// ExperimentTables regenerates one of the paper's tables or figures and
// returns its tables in structured form. The experiment's whole run matrix
// executes on the Engine's worker pool; rows are assembled serially, so
// repeated calls produce identical tables regardless of parallelism.
// o supplies the per-run budget (other Options fields are ignored).
func (e *Engine) ExperimentTables(ctx context.Context, name string, o Options) ([]Table, error) {
	fn, ok := experimentFuncs[name]
	if !ok {
		return nil, fmt.Errorf("prisim: %w: %q (have: %s)",
			ErrUnknownExperiment, name, strings.Join(experimentOrder, " "))
	}
	ts, err := fn(ctx, e.runnerFor(o))
	if err != nil {
		return nil, err
	}
	out := make([]Table, 0, len(ts))
	for _, t := range ts {
		out = append(out, Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows})
	}
	return out, nil
}

// Experiment regenerates one of the paper's tables or figures as rendered
// text. Valid names are listed by ExperimentNames; o supplies the per-run
// budget.
func (e *Engine) Experiment(ctx context.Context, name string, o Options) (string, error) {
	ts, err := e.ExperimentTables(ctx, name, o)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, t := range ts {
		sb.WriteString(t.String())
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// WriteReport regenerates the full experiment suite — every table plus the
// executable shape checklist — as a self-contained markdown report on w.
// o supplies the per-run budget.
func (e *Engine) WriteReport(ctx context.Context, w io.Writer, o Options) error {
	return e.runnerFor(o).WriteReport(ctx, w)
}

// RunsExecuted reports how many distinct simulations the Engine has
// performed since creation; cache hits and deduplicated concurrent requests
// do not count. It exists so callers (and the race tests) can observe
// singleflight behaviour.
func (e *Engine) RunsExecuted() int { return e.runner.RunsExecuted() }

// CacheStats is a snapshot of the Engine's memoization counters.
type CacheStats struct {
	Executed  int // simulations actually performed
	Hits      int // requests answered instantly from a completed cache entry
	Coalesced int // requests that waited on another caller's in-flight run

	// Fast-forward snapshot cache counters (see WithSnapshots).
	SnapshotBuilds int    // functional fast-forwards executed to fill the snapshot cache
	SnapshotHits   int    // runs constructed from a cached warm state instead of replaying
	SnapshotBytes  uint64 // resident bytes of cached warm states
}

// CacheStats reports how the Engine's singleflight run cache has been used
// since creation, across every view of the Engine. Services built on a
// shared Engine export these counters to show request coalescing.
func (e *Engine) CacheStats() CacheStats {
	cs := e.runner.CacheStats()
	return CacheStats{
		Executed:       cs.Executed,
		Hits:           cs.Hits,
		Coalesced:      cs.Coalesced,
		SnapshotBuilds: cs.SnapshotBuilds,
		SnapshotHits:   cs.SnapshotHits,
		SnapshotBytes:  cs.SnapshotBytes,
	}
}

// ProgressView returns a view of the Engine that reports per-view progress
// to fn while sharing the parent's cache and worker pool. fn is called
// after each simulation point requested through the view resolves — by the
// view's own run or by joining another caller's in-flight run — with the
// points resolved and requested so far; points answered instantly from the
// cache do not fire it. Calls are serialized; fn must be fast and must not
// call back into the Engine. This is how a server streams per-request
// progress while every request shares one Engine.
func (e *Engine) ProgressView(fn func(done, total int)) *Engine {
	return &Engine{budget: e.budget, runner: e.runner.ProgressView(fn)}
}
