// Command prias is the PRISC-64 assembler tool: it assembles a source file
// and disassembles it, runs it functionally, or runs it through the timing
// pipeline (via the public prisim Engine API).
//
// Usage:
//
//	prias -d prog.s          # assemble and disassemble
//	prias -run prog.s        # assemble and execute functionally
//	prias -time prog.s       # assemble and run on the 4-wide timing model
//	prias -o img.json prog.s # assemble and write the image as JSON
//	prias -lint prog.s       # assemble and run the priscan static analyzers
//
// Assembly failures print every diagnostic, one per line, as
// file:line:col: message, and exit 2. With -lint, analyzer findings print
// the same way: exit 0 when clean, 1 when only warnings were found and
// -Werror is set, 2 on provable errors (the cmd/priscan convention).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"prisim"
	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
	"prisim/internal/emu"
	"prisim/internal/trace"
)

// fatal prints err once under the command prefix and exits — status 2 for
// usage errors (bad option values), 1 for runtime failures, matching
// prisim and priexp.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prias:", err)
	code := 1
	for _, usage := range []error{prisim.ErrUnknownBenchmark, prisim.ErrUnknownPolicy, prisim.ErrInvalidOptions} {
		if errors.Is(err, usage) {
			code = 2
		}
	}
	os.Exit(code)
}

// usageFatal is fatal for input the user got wrong (a source file that
// does not assemble): always exit 2.
func usageFatal(err error) {
	fmt.Fprintln(os.Stderr, "prias:", err)
	os.Exit(2)
}

// assemblyFatal prints every positioned diagnostic, one per line, then
// exits 2. The frontend collects multiple errors per pass, so the user
// fixes them in one edit instead of replaying the assembler error by error.
func assemblyFatal(err error) {
	diags := asm.Diagnostics(err)
	if len(diags) == 0 {
		usageFatal(err)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	os.Exit(2)
}

// image is the -o serialization: the assembled program plus enough identity
// metadata (assembler version, content hash) to audit what produced it.
type image struct {
	Format  string `json:"format"`
	Version string `json:"version"`
	SHA256  string `json:"sha256"`
	*asm.Program
}

// writeImage writes the assembled image to path as indented JSON.
func writeImage(path string, prog *asm.Program) error {
	data, err := json.MarshalIndent(image{
		Format:  "prisim-image-v1",
		Version: prisim.Version,
		SHA256:  prog.SHA256(),
		Program: prog,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	dis := flag.Bool("d", false, "disassemble")
	run := flag.Bool("run", false, "execute functionally and print output")
	timeIt := flag.Bool("time", false, "run on the 4-wide timing model")
	traceOut := flag.String("trace", "", "capture a binary instruction trace to this file")
	mix := flag.Bool("mix", false, "print the instruction mix after a functional run")
	out := flag.String("o", "", "write the assembled image to this file as JSON")
	limit := flag.Uint64("limit", 100_000_000, "instruction limit")
	lint := flag.Bool("lint", false, "run the priscan static analyzers over the assembled program")
	werror := flag.Bool("Werror", false, "with -lint, exit 1 when any warning is reported")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("prias", prisim.Version)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: prias [-d|-run|-time|-mix|-trace out|-o img.json] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := asm.AssembleFile(flag.Arg(0), string(src))
	if err != nil {
		assemblyFatal(err)
	}
	if *lint {
		rep := analysis.Analyze(prog, analysis.Options{})
		diags := rep.Diagnostics(prog, flag.Arg(0), string(src))
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		s := rep.Inlinability
		fmt.Printf("%s: %d instructions, %d loops, %d/%d defs provably narrow (%d-bit), %d wide, %d unknown\n",
			flag.Arg(0), len(prog.Code), len(rep.Loops), s.Narrow, s.Defs, s.NarrowBits, s.Wide, s.Unknown)
		if code := analysis.ExitCode(diags, *werror); code != 0 {
			os.Exit(code)
		}
		return
	}
	if *out != "" {
		if err := writeImage(*out, prog); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d instructions, sha256 %.12s...)\n", *out, len(prog.Code), prog.SHA256())
		if !*dis && !*run && !*timeIt && !*mix && *traceOut == "" {
			return
		}
	}
	switch {
	case *traceOut != "":
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw, err := trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		n, err := trace.Capture(emu.New(prog), *limit, tw)
		if err == nil {
			err = tw.Flush()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("captured %d instructions to %s\n", n, *traceOut)
	case *mix:
		m := emu.New(prog)
		var buf bytes.Buffer
		tw, _ := trace.NewWriter(&buf)
		trace.Capture(m, *limit, tw)
		tw.Flush()
		tr, _ := trace.NewReader(bytes.NewReader(buf.Bytes()))
		mx, err := trace.AnalyzeMix(tr, 10)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("total      %d\n", mx.Total)
		fmt.Printf("loads      %d (%.1f%%)\n", mx.Loads, pct(mx.Loads, mx.Total))
		fmt.Printf("stores     %d (%.1f%%)\n", mx.Stores, pct(mx.Stores, mx.Total))
		fmt.Printf("branches   %d (%.1f%%), %.1f%% taken\n", mx.Branches, pct(mx.Branches, mx.Total), 100*mx.TakenFrac)
		fmt.Printf("jumps      %d\n", mx.Jumps)
		fmt.Printf("int alu    %d, int mul/div %d, fp %d\n", mx.IntALU, mx.IntMul, mx.FP)
		fmt.Printf("narrow     %.1f%% of results fit 10 bits\n", 100*mx.NarrowFrac)
	case *dis:
		fmt.Print(prog.Disassemble())
	case *timeIt:
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		res, err := prisim.NewEngine().SimulateProgram(ctx, prisim.NewProgram(prog),
			prisim.Options{Run: *limit})
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(res.Output)
		fmt.Printf("\n%d instructions, %d cycles, IPC %.3f\n", res.Committed, res.Cycles, res.IPC)
	case *run:
		m := emu.New(prog)
		n := m.Run(*limit)
		os.Stdout.Write(m.Output())
		fmt.Printf("\n%d instructions executed, halted=%v\n", n, m.Halted())
	default:
		fmt.Printf("assembled %d instructions, %d data segments, entry %#x\n",
			len(prog.Code), len(prog.Data), prog.Entry)
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
