// Command prisim runs one benchmark on one machine configuration and prints
// the detailed statistics (IPC, occupancy, lifetime phases, PRI activity).
//
// Usage:
//
//	prisim -bench mcf -width 4 -policy pri-rc-ckpt -prs 64
//	prisim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"prisim/internal/core"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

var policies = map[string]core.Policy{
	"base":           core.PolicyBase,
	"er":             core.PolicyER,
	"pri-rc-ckpt":    core.PolicyPRIRcCkpt,
	"pri-rc-lazy":    core.PolicyPRIRcLazy,
	"pri-ideal-ckpt": core.PolicyPRIIdealCkpt,
	"pri-ideal-lazy": core.PolicyPRIIdealLazy,
	"pri+er":         core.PolicyPRIPlusER,
	"infpr":          core.PolicyInfinite,
}

func main() {
	bench := flag.String("bench", "gzip", "workload name")
	width := flag.Int("width", 4, "machine width (4 or 8)")
	policy := flag.String("policy", "base", "release policy: "+strings.Join(policyNames(), " "))
	prs := flag.Int("prs", 0, "physical registers per class (0 = Table 1 default)")
	ff := flag.Uint64("ff", 20_000, "fast-forward instructions")
	run := flag.Uint64("run", 80_000, "measured instructions")
	inline := flag.Bool("rename-inline", false, "enable rename-time inlining extension")
	delayed := flag.Bool("delayed-alloc", false, "enable virtual-physical delayed register allocation")
	pipeview := flag.String("pipeview", "", "write an O3PipeView trace (gem5 pipeline-viewer format) to this file")
	machineFile := flag.String("machine", "", "load the machine configuration from this JSON file (see -dump-machine)")
	dumpMachine := flag.Bool("dump-machine", false, "print the selected machine configuration as JSON and exit")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-9s %-4s paperIPC(4w)=%.2f  %s\n", w.Name, w.Class, w.PaperIPC4, w.Description)
		}
		return
	}
	w, ok := workloads.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "prisim: unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	pol, ok := policies[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "prisim: unknown policy %q (have: %s)\n", *policy, strings.Join(policyNames(), " "))
		os.Exit(2)
	}
	cfg := ooo.Width4()
	if *width == 8 {
		cfg = ooo.Width8()
	}
	if *machineFile != "" {
		// The JSON file is the base machine; explicit flags still win.
		data, err := os.ReadFile(*machineFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prisim:", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			fmt.Fprintf(os.Stderr, "prisim: %s: %v\n", *machineFile, err)
			os.Exit(1)
		}
	}
	cfg = cfg.WithPolicy(pol)
	if *prs > 0 {
		if *prs < 32 {
			fmt.Fprintf(os.Stderr, "prisim: -prs must be at least 32 (one per architected register), got %d\n", *prs)
			os.Exit(2)
		}
		cfg = cfg.WithPRs(*prs)
	}
	cfg.InlineAtRename = *inline
	cfg.DelayedAllocation = *delayed
	if *dumpMachine {
		out, err := json.MarshalIndent(cfg, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "prisim:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		return
	}

	p := ooo.New(cfg, w.Build(0))
	var viewFile *os.File
	if *pipeview != "" {
		f, err := os.Create(*pipeview)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prisim:", err)
			os.Exit(1)
		}
		defer f.Close()
		viewFile = f
		p.SetPipeView(f)
	}
	p.FastForward(*ff)
	p.Run(*run)
	if viewFile != nil {
		p.FlushPipeView()
		fmt.Fprintf(os.Stderr, "pipeline trace written to %s\n", *pipeview)
	}

	st := p.Stats()
	fmt.Printf("benchmark    %s (%s)\n", w.Name, w.Description)
	fmt.Printf("machine      %s, policy %s, %d int PRs\n", cfg.Name, pol.Name(), cfg.Rename.IntPRs)
	fmt.Printf("committed    %d in %d cycles\n", st.Committed, st.Cycles)
	fmt.Printf("IPC          %.3f (paper baseline %.2f)\n", st.IPC(), w.PaperIPC4)
	fmt.Printf("occupancy    int %.1f / %d, fp %.1f / %d\n",
		st.AvgIntOccupancy(), cfg.Rename.IntPRs, st.AvgFPOccupancy(), cfg.Rename.FPPRs)
	fmt.Printf("mispredict   %.2f%% of %d resolved\n", 100*st.MispredictRate(), st.BranchResolved)
	fmt.Printf("DL1/L2 miss  %.2f%% / %.2f%%\n", 100*p.Mem().DL1.MissRate(), 100*p.Mem().L2.MissRate())
	fmt.Printf("replays      %d (latency mis-speculation)\n", st.Replays)

	class := p.Renamer().IntStats()
	if w.Class == workloads.FP {
		class = p.Renamer().FPStats()
	}
	aw, wr, rr := class.AvgPhases()
	fmt.Printf("lifetime     alloc->write %.1f, write->lastread %.1f, lastread->release %.1f cycles\n", aw, wr, rr)
	if pol.PRI {
		fmt.Printf("PRI          %d results inlined, %d WAW-suppressed, %d deferred frees, %d early frees\n",
			class.InlinedResults, class.WAWSuppressed, class.DeferredFrees, class.EarlyFrees)
		fmt.Printf("operands     %.1f%% of source reads served from inlined map entries\n", 100*st.InlineFraction())
	}
}

func policyNames() []string {
	out := make([]string, 0, len(policies))
	for n := range policies {
		out = append(out, n)
	}
	return out
}
