// Command prisim runs one benchmark on one machine configuration and prints
// the detailed statistics (IPC, occupancy, lifetime phases, PRI activity).
// It is a thin shell over the public prisim Engine API.
//
// Usage:
//
//	prisim -bench mcf -width 4 -policy pri-rc-ckpt -prs 64
//	prisim -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"prisim"
)

func main() {
	bench := flag.String("bench", "gzip", "workload name")
	width := flag.Int("width", 4, "machine width (4 or 8)")
	policy := flag.String("policy", "base", "release policy: "+strings.Join(policyNames(), " "))
	prs := flag.Int("prs", 0, "physical registers per class (0 = Table 1 default)")
	ff := flag.Uint64("ff", prisim.DefaultFastForward, "fast-forward instructions")
	run := flag.Uint64("run", prisim.DefaultRun, "measured instructions")
	inline := flag.Bool("rename-inline", false, "enable rename-time inlining extension")
	delayed := flag.Bool("delayed-alloc", false, "enable virtual-physical delayed register allocation")
	pipeview := flag.String("pipeview", "", "write an O3PipeView trace (gem5 pipeline-viewer format) to this file")
	machineFile := flag.String("machine", "", "load the machine configuration from this JSON file (see -dump-machine)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken after the simulation to this file")
	dumpMachine := flag.Bool("dump-machine", false, "print the selected machine configuration as JSON and exit")
	list := flag.Bool("list", false, "list workloads and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println("prisim", prisim.Version)
		return
	}
	if *list {
		for _, b := range prisim.Benchmarks() {
			class := "int"
			if b.FP {
				class = "fp"
			}
			fmt.Printf("%-9s %-4s paperIPC(4w)=%.2f  %s\n", b.Name, class, b.PaperIPC4, b.Description)
		}
		return
	}

	o := prisim.Options{
		Benchmark:         *bench,
		Width:             *width,
		Policy:            prisim.Policy(*policy),
		PhysRegs:          *prs,
		FastForward:       *ff,
		Run:               *run,
		RenameInline:      *inline,
		DelayedAllocation: *delayed,
	}
	if *machineFile != "" {
		// The JSON file is the base machine; explicit flags still win.
		data, err := os.ReadFile(*machineFile)
		if err != nil {
			fatal(err)
		}
		o.MachineJSON = data
	}
	if *dumpMachine {
		out, err := prisim.MachineJSON(o)
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	var viewFile *os.File
	if *pipeview != "" {
		f, err := os.Create(*pipeview)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		viewFile = f
		o.PipeView = f
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := prisim.NewEngine().Simulate(ctx, o)
	if err != nil {
		fatal(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // flush accumulated allocation records
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatal(err)
		}
	}
	if viewFile != nil {
		fmt.Fprintf(os.Stderr, "pipeline trace written to %s\n", *pipeview)
	}

	var info prisim.Benchmark
	for _, b := range prisim.Benchmarks() {
		if b.Name == res.Benchmark {
			info = b
		}
	}
	fmt.Printf("benchmark    %s (%s)\n", res.Benchmark, info.Description)
	fmt.Printf("machine      %s, policy %s, %d int PRs\n", res.Machine, o.Policy, res.IntPRs)
	fmt.Printf("committed    %d in %d cycles\n", res.Committed, res.Cycles)
	fmt.Printf("IPC          %.3f (paper baseline %.2f)\n", res.IPC, info.PaperIPC4)
	fmt.Printf("occupancy    int %.1f / %d, fp %.1f / %d\n",
		res.IntOccupancy, res.IntPRs, res.FPOccupancy, res.FPPRs)
	fmt.Printf("mispredict   %.2f%% of %d resolved\n", 100*res.MispredictRate, res.BranchResolved)
	fmt.Printf("DL1/L2 miss  %.2f%% / %.2f%%\n", 100*res.DL1MissRate, 100*res.L2MissRate)
	fmt.Printf("replays      %d (latency mis-speculation)\n", res.Replays)
	fmt.Printf("lifetime     alloc->write %.1f, write->lastread %.1f, lastread->release %.1f cycles\n",
		res.AllocToWrite, res.WriteToRead, res.ReadToRelease)
	if o.Policy.IsPRI() {
		fmt.Printf("PRI          %d results inlined, %d WAW-suppressed, %d deferred frees, %d early frees\n",
			res.InlinedResults, res.WAWSuppressed, res.DeferredFrees, res.EarlyFrees)
		fmt.Printf("operands     %.1f%% of source reads served from inlined map entries\n", 100*res.InlineFraction)
	}
}

// fatal prints err once under the command prefix and exits — status 2 for
// usage errors (bad flag values), 1 for runtime failures, matching v1.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prisim: %s\n", strings.TrimPrefix(err.Error(), "prisim: "))
	code := 1
	for _, usage := range []error{prisim.ErrUnknownBenchmark, prisim.ErrUnknownPolicy, prisim.ErrInvalidOptions} {
		if errors.Is(err, usage) {
			code = 2
		}
	}
	os.Exit(code)
}

func policyNames() []string {
	out := make([]string, 0, len(prisim.Policies()))
	for _, p := range prisim.Policies() {
		out = append(out, string(p))
	}
	return out
}
