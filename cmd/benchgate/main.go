// Command benchgate is the CI benchmark-regression gate. It reads `go test
// -bench` output (stdin or -in), extracts a named per-op metric of one
// benchmark, and fails if the best observed value falls below -frac of the
// floor recorded under a baseline JSON's acceptance object. The defaults
// gate the kernel's steady-state throughput:
//
//	go test ./internal/ooo -run '^$' -bench BenchmarkKernelSteadyState \
//	    -benchtime 2s -count 3 | go run ./cmd/benchgate -frac 0.8
//
// and the sweep-throughput gate reuses the same binary against the harness
// record:
//
//	go test ./internal/harness -run '^$' -bench BenchmarkSweepFig8Mix \
//	    -benchtime 1x -count 3 | go run ./cmd/benchgate \
//	    -baseline BENCH_harness.json -bench BenchmarkSweepFig8Mix \
//	    -metric points/s -floorkey sweep_points_per_sec_floor -frac 0.7
//
// Taking the best of -count runs and gating at a fraction of the recorded
// floor keeps the gate meaningful on noisy shared CI machines: it catches
// order-of-magnitude regressions (an allocation sneaking back into the hot
// loop, the uop cache silently disabled, the snapshot cache no longer
// sharing fast-forwards) without flaking on scheduler jitter. Floors are
// updated only by regenerating the baseline record from a measured run.
//
// Exit codes: 0 pass, 1 regression or malformed input, 2 usage error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run())
}

func run() int {
	baseline := flag.String("baseline", "BENCH_kernel.json", "benchmark record holding the floor")
	in := flag.String("in", "-", "benchmark output to parse (- for stdin)")
	bench := flag.String("bench", "BenchmarkKernelSteadyState", "benchmark name to gate on")
	metric := flag.String("metric", "instr/s", "per-op metric unit to extract from benchmark lines")
	floorKey := flag.String("floorkey", "steady_state_instr_per_sec_floor", "acceptance field holding the floor in the baseline record")
	frac := flag.Float64("frac", 0.8, "minimum fraction of the recorded floor that must be sustained")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate [-baseline file] [-in file] [-bench name] [-metric unit] [-floorkey key] [-frac f] < bench-output\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 || *frac <= 0 || *frac > 1 {
		flag.Usage()
		return 2
	}

	floor, err := loadFloor(*baseline, *floorKey)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	best, runs, err := bestRate(r, *bench, *metric)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		return 1
	}

	need := *frac * floor
	fmt.Printf("benchgate: %s best %.0f %s over %d run(s); floor %.0f, gate %.0f (%.0f%%)\n",
		*bench, best, *metric, runs, floor, need, 100**frac)
	if best < need {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: %.0f %s < %.0f (%.0f%% of recorded floor %.0f)\n",
			best, *metric, need, 100**frac, floor)
		return 1
	}
	fmt.Println("benchgate: PASS")
	return 0
}

// loadFloor pulls the named acceptance field out of the benchmark record.
func loadFloor(path, key string) (float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		Acceptance map[string]json.RawMessage `json:"acceptance"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	var floor float64
	if raw, ok := doc.Acceptance[key]; ok {
		if err := json.Unmarshal(raw, &floor); err != nil {
			return 0, fmt.Errorf("%s: acceptance.%s: %v", path, key, err)
		}
	}
	if floor <= 0 {
		return 0, fmt.Errorf("%s: acceptance.%s missing or non-positive", path, key)
	}
	return floor, nil
}

// bestRate scans `go test -bench` output for lines of the named benchmark
// and returns the highest value of the named metric seen and how many runs
// matched. Benchmark lines look like:
//
//	BenchmarkKernelSteadyState  	1527	1998848 ns/op	4990 instr/op	2496608 instr/s	...
func bestRate(r io.Reader, bench, metric string) (best float64, runs int, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		// -cpu suffixes append "-N" to the name; match the bare name too.
		name := fields[0]
		if name != bench && !strings.HasPrefix(name, bench+"-") {
			continue
		}
		for i := 1; i < len(fields); i++ {
			if fields[i] != metric {
				continue
			}
			v, perr := strconv.ParseFloat(fields[i-1], 64)
			if perr != nil {
				return 0, 0, fmt.Errorf("bad %s value %q: %v", metric, fields[i-1], perr)
			}
			runs++
			if v > best {
				best = v
			}
			break
		}
	}
	if err := sc.Err(); err != nil {
		return 0, 0, err
	}
	if runs == 0 {
		return 0, 0, fmt.Errorf("no %s lines with a %s metric found in input", bench, metric)
	}
	return best, runs, nil
}
