// Command priscan runs the static dataflow analyzers from
// internal/asm/analysis over guest PRISC-64 programs without simulating
// them. It accepts assembly source files and/or the built-in workload
// kernels:
//
//	priscan prog.s              # analyze one source file
//	priscan -Werror prog.s      # warnings fail the scan
//	priscan -workloads          # analyze every built-in workload image
//	priscan -json prog.s        # machine-readable report per program
//	priscan -analyzers          # list the analyzers and exit
//
// Findings print to stderr as file:line:col: severity: msg [analyzer]
// with a caret excerpt (builder-built workloads, which carry no source
// positions, print by instruction address instead); a one-line
// inlinability summary per program prints to stdout. Exit status is 0
// when every program is clean, 1 when only warnings were found and
// -Werror is set, 2 on provable errors, bad usage, or assembly failure —
// the same convention as prias -lint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"prisim"
	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
	"prisim/internal/workloads"
)

// jsonReport is the -json serialization for one analyzed program.
type jsonReport struct {
	Name         string                `json:"name"`
	Instructions int                   `json:"instructions"`
	Findings     []analysis.Diag       `json:"findings"`
	Inlinability analysis.Inlinability `json:"inlinability"`
	Loops        []analysis.Loop       `json:"loops"`
}

func main() {
	werror := flag.Bool("Werror", false, "exit 1 when any warning is reported")
	jsonOut := flag.Bool("json", false, "print one JSON report per program to stdout")
	bits := flag.Int("bits", 0, "inline width in bits for the narrowness analyzer (0 = simulator default)")
	allWorkloads := flag.Bool("workloads", false, "also analyze every built-in workload kernel")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("priscan", prisim.Version)
		return
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 && !*allWorkloads {
		fmt.Fprintln(os.Stderr, "usage: priscan [-Werror] [-json] [-bits n] [-workloads] [prog.s ...]")
		os.Exit(2)
	}
	opts := analysis.Options{NarrowBits: *bits}

	exit := 0
	raise := func(code int) {
		if code > exit {
			exit = code
		}
	}
	scan := func(name string, prog *asm.Program, src string) {
		rep := analysis.Analyze(prog, opts)
		diags := rep.Diagnostics(prog, name, src)
		if *jsonOut {
			data, err := json.MarshalIndent(jsonReport{
				Name:         name,
				Instructions: len(prog.Code),
				Findings:     diags,
				Inlinability: rep.Inlinability,
				Loops:        rep.Loops,
			}, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "priscan:", err)
				os.Exit(2)
			}
			fmt.Println(string(data))
		} else {
			for _, d := range diags {
				fmt.Fprintln(os.Stderr, d)
			}
			s := rep.Inlinability
			fmt.Printf("%s: %d instructions, %d loops, %d/%d defs provably narrow (%d-bit), %d wide, %d unknown\n",
				name, len(prog.Code), len(rep.Loops), s.Narrow, s.Defs, s.NarrowBits, s.Wide, s.Unknown)
		}
		raise(analysis.ExitCode(diags, *werror))
	}

	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "priscan:", err)
			os.Exit(2)
		}
		prog, err := asm.AssembleFile(path, string(src))
		if err != nil {
			for _, d := range asm.Diagnostics(err) {
				fmt.Fprintln(os.Stderr, d.String())
			}
			os.Exit(2)
		}
		scan(path, prog, string(src))
	}
	if *allWorkloads {
		for _, w := range workloads.All() {
			scan("workload:"+w.Name, w.Build(0), "")
		}
	}
	os.Exit(exit)
}
