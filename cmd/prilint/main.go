// Command prilint runs the prisim analyzer suite over Go package patterns:
//
//	go run ./cmd/prilint ./...
//
// It loads and type-checks the matched packages, applies the five analyzers
// (genguard, hotpathalloc, determinism, lockcheck, ctxcheck — see
// internal/analysis and DESIGN.md §11), honors //lint:ignore suppressions,
// and prints surviving findings as file:line:col: analyzer: message.
//
// Exit codes: 0 clean, 1 findings or load failure, 2 usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"prisim"
	"prisim/internal/analysis"
	"prisim/internal/analysis/ctxcheck"
	"prisim/internal/analysis/determinism"
	"prisim/internal/analysis/genguard"
	"prisim/internal/analysis/hotpathalloc"
	"prisim/internal/analysis/load"
	"prisim/internal/analysis/lockcheck"
)

var analyzers = []*analysis.Analyzer{
	ctxcheck.Analyzer,
	determinism.Analyzer,
	genguard.Analyzer,
	hotpathalloc.Analyzer,
	lockcheck.Analyzer,
}

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("prilint", flag.ExitOnError) // bad flags exit 2
	showVersion := fs.Bool("version", false, "print version and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: prilint [-version] packages...\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *showVersion {
		fmt.Println("prilint", prisim.Version)
		return 0
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "prilint:", err)
		return 1
	}
	pkgs, err := load.Packages(dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prilint:", err)
		return 1
	}
	units := make([]*analysis.Unit, len(pkgs))
	for i, p := range pkgs {
		units[i] = p.Unit
	}
	diags, err := analysis.Run(units, analyzers, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prilint:", err)
		return 1
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
