// Command prisimd serves simulations over HTTP: a bounded job queue with
// backpressure (429 + Retry-After), a worker pool over one shared prisim
// Engine (identical requests coalesce in its singleflight cache), per-job
// cancellation and timeout, SSE progress streaming, Prometheus-format
// metrics, and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	prisimd -addr :8064 -queue 32 -workers 0 -job-timeout 10m
//	curl -s localhost:8064/api/v1/jobs -d '{"kind":"simulate","benchmark":"mcf"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"prisim"
	"prisim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8064", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queue depth before 429 (0 = 4x workers)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution limit (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM before in-flight jobs are cancelled")
	ff := flag.Uint64("ff", 0, "default fast-forward instructions per run (0 = engine default 20k)")
	run := flag.Uint64("run", 0, "default measured instructions per run (0 = engine default 80k)")
	quiet := flag.Bool("quiet", false, "suppress request/job logging")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("prisimd", prisim.Version)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: prisimd [flags] (run 'prisimd -h' for flags)")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "prisimd: ", log.LstdFlags|log.Lmsgprefix)
	cfg := service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
	}
	cfg.Budget.FastForward = *ff
	cfg.Budget.Run = *run
	if !*quiet {
		cfg.Logger = logger
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	effQueue := *queue
	if effQueue <= 0 {
		effQueue = 4 * effWorkers
	}
	logger.Printf("version=%s addr=%s workers=%d queue=%d job-timeout=%s drain-timeout=%s",
		prisim.Version, ln.Addr(), effWorkers, effQueue, *jobTimeout, *drainTimeout)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		logger.Printf("signal=%s draining (deadline %s)", sig, *drainTimeout)
	case err := <-errCh:
		logger.Printf("serve: %v", err)
		srv.Close()
		os.Exit(1)
	}

	// Stop intake first (readyz flips to 503 and new submits get 503),
	// then drain jobs, then close the HTTP listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	} else {
		logger.Printf("drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("exit")
}
