// Command prisimd serves simulations over HTTP: a bounded job queue with
// backpressure (429 + Retry-After), a worker pool over one shared prisim
// Engine (identical requests coalesce in its singleflight cache), per-job
// cancellation and timeout, SSE progress streaming, Prometheus-format
// metrics, and graceful drain on SIGTERM/SIGINT.
//
// With -store the daemon keeps a durable content-addressed result store:
// jobs whose point is already recorded resolve from disk without an engine
// run, and the store survives restarts. With -coordinator it additionally
// runs the experiment fabric control plane (/api/v1/fabric/...): matrix
// submissions expand into content-hashed points, warm points serve from the
// store, and cold points shard across registered worker daemons. A worker
// joins a coordinator with -join.
//
// Usage:
//
//	prisimd -addr :8064 -queue 32 -workers 0 -job-timeout 10m
//	prisimd -addr :8070 -coordinator -store /var/lib/prisim/results.log
//	prisimd -addr :8071 -join http://coordinator:8070
//	curl -s localhost:8064/api/v1/jobs -d '{"kind":"simulate","benchmark":"mcf"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"prisim"
	"prisim/internal/fabric"
	"prisim/internal/service"
	"prisim/prisimclient"
)

func main() {
	addr := flag.String("addr", ":8064", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "queue depth before 429 (0 = 4x workers)")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job execution limit (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful drain deadline on SIGTERM before in-flight jobs are cancelled")
	ff := flag.Uint64("ff", 0, fmt.Sprintf("default fast-forward instructions per run (0 = engine default %d)", prisim.DefaultFastForward))
	run := flag.Uint64("run", 0, fmt.Sprintf("default measured instructions per run (0 = engine default %d)", prisim.DefaultRun))
	storePath := flag.String("store", "", "durable content-addressed result store (append-only log file; empty = none)")
	progSource := flag.Int("program-max-source", 0, fmt.Sprintf("max program source bytes per submission (0 = %d)", service.DefaultMaxProgramSource))
	progRun := flag.Uint64("program-max-run", 0, fmt.Sprintf("max committed instructions per program job; larger requests are rejected (0 = %d)", service.DefaultMaxProgramRun))
	progMem := flag.Uint64("program-max-memory", 0, fmt.Sprintf("max simulated memory footprint bytes per program job (0 = %d)", service.DefaultMaxProgramMemory))
	coordinator := flag.Bool("coordinator", false, "run the experiment fabric control plane (/api/v1/fabric/...)")
	localSlots := flag.Int("local-slots", 0, "matrix points the coordinator executes on its own engine when no worker is free (0 = workers only)")
	join := flag.String("join", "", "coordinator URL to register this daemon with as a worker")
	advertise := flag.String("advertise", "", "URL the coordinator should reach this daemon at (default http://127.0.0.1:PORT)")
	nodeID := flag.String("node-id", "", "node name stamped on computed results (default host-pid)")
	quiet := flag.Bool("quiet", false, "suppress request/job logging")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println("prisimd", prisim.Version)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: prisimd [flags] (run 'prisimd -h' for flags)")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "prisimd: ", log.LstdFlags|log.Lmsgprefix)
	if *nodeID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "prisimd"
		}
		*nodeID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	if *coordinator && *storePath == "" {
		logger.Printf("warning: -coordinator without -store: results and matrix state will not survive a restart")
	}
	var store *fabric.Store
	if *storePath != "" || *coordinator {
		var err error
		if store, err = fabric.OpenStore(*storePath); err != nil {
			logger.Printf("%v", err)
			os.Exit(1)
		}
	}

	var coord *fabric.Coordinator
	if *coordinator {
		fcfg := fabric.Config{Store: store, NodeID: *nodeID, LocalSlots: *localSlots}
		if !*quiet {
			fcfg.Logger = logger
		}
		var err error
		if coord, err = fabric.New(fcfg); err != nil {
			logger.Printf("coordinator: %v", err)
			os.Exit(1)
		}
	}

	cfg := service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		JobTimeout:  *jobTimeout,
		NodeID:      *nodeID,
		Store:       store,
		Coordinator: coord,
		Programs: service.ProgramLimits{
			MaxSourceBytes: *progSource,
			MaxRun:         *progRun,
			MaxMemoryBytes: *progMem,
		},
	}
	cfg.Budget.FastForward = *ff
	cfg.Budget.Run = *run
	if !*quiet {
		cfg.Logger = logger
	}
	srv := service.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	effQueue := *queue
	if effQueue <= 0 {
		effQueue = 4 * effWorkers
	}
	logger.Printf("version=%s node=%s addr=%s workers=%d queue=%d job-timeout=%s drain-timeout=%s coordinator=%t store=%q",
		prisim.Version, *nodeID, ln.Addr(), effWorkers, effQueue, *jobTimeout, *drainTimeout, *coordinator, *storePath)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	joinCtx, joinStop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer joinStop()
	if *join != "" {
		go registerWithCoordinator(joinCtx, logger, *join, advertiseURL(*advertise, ln.Addr()))
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case sig := <-sigCh:
		logger.Printf("signal=%s draining (deadline %s)", sig, *drainTimeout)
	case err := <-errCh:
		logger.Printf("serve: %v", err)
		srv.Close()
		os.Exit(1)
	}

	// Stop intake first (readyz flips to 503 and new submits get 503),
	// then drain jobs, then close the HTTP listener, then release the
	// fabric state: coordinator before store, because the coordinator
	// appends to the store until it stops.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Printf("drain: %v", err)
	} else {
		logger.Printf("drained cleanly")
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if coord != nil {
		coord.Close()
	}
	if store != nil {
		if err := store.Close(); err != nil {
			logger.Printf("store close: %v", err)
		}
	}
	logger.Printf("exit")
}

// advertiseURL resolves the URL a coordinator should reach this daemon at:
// the -advertise flag verbatim, else http://127.0.0.1:PORT from the bound
// listener (an unspecified listen host is not routable from elsewhere, so
// loopback is the only safe default).
func advertiseURL(flagVal string, bound net.Addr) string {
	if flagVal != "" {
		if !strings.Contains(flagVal, "://") {
			return "http://" + flagVal
		}
		return flagVal
	}
	host, port := "127.0.0.1", ""
	if tcp, ok := bound.(*net.TCPAddr); ok {
		port = fmt.Sprintf("%d", tcp.Port)
		if tcp.IP != nil && !tcp.IP.IsUnspecified() && !tcp.IP.IsLoopback() {
			host = tcp.IP.String()
		}
	}
	return fmt.Sprintf("http://%s:%s", host, port)
}

// registerWithCoordinator announces this daemon as a fabric worker,
// retrying while the coordinator comes up. Registration is idempotent on
// the coordinator side, so retrying after a transient failure is safe.
func registerWithCoordinator(ctx context.Context, logger *log.Logger, coordURL, selfURL string) {
	if !strings.Contains(coordURL, "://") {
		coordURL = "http://" + coordURL
	}
	c := prisimclient.NewClient(coordURL)
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		info, err := c.RegisterWorker(ctx, selfURL)
		if err == nil {
			logger.Printf("joined coordinator=%s as worker=%s advertise=%s", coordURL, info.ID, selfURL)
			return
		}
		lastErr = err
		select {
		case <-ctx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
	logger.Printf("join %s failed: %v", coordURL, lastErr)
}
