// Command prisimctl is the CLI client for prisimd.
//
// Usage:
//
//	prisimctl [-addr URL] <command> [args]
//
// Commands:
//
//	simulate <bench> [-width N] [-policy P] [-prs N] [-ff N] [-run N] [-wait]
//	experiment <name> [-ff N] [-run N] [-wait]
//	run-program <file.s> [-width N] [-policy P] [-prs N] [-ff N] [-run N] [-wait]
//	check-program <file.s> [-Werror]
//	status <job-id>
//	result <job-id>
//	wait <job-id>
//	watch <job-id>        stream SSE progress events
//	cancel <job-id>
//	jobs                  list jobs
//	benchmarks            list workload names
//	experiments           list experiment names
//	metrics               dump the /metrics page
//	version               client and server versions
//
// Fabric commands (against a coordinator daemon):
//
//	submit-matrix -benchmarks a,b -policies p,q [-widths 4,8] [-prs N,M] [-ff N] [-run N] [-wait]
//	matrix-status <matrix-id>
//	matrix-result <matrix-id>
//	matrices              list matrices
//	workers               list registered workers
//	register-worker <url>
//	deregister-worker <worker-id>
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"prisim"
	"prisim/prisimclient"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: prisimctl [-addr URL] <command> [args]
commands:
  simulate <bench> [-width N] [-policy P] [-prs N] [-ff N] [-run N] [-wait]
  experiment <name> [-ff N] [-run N] [-wait]
  run-program <file.s> [-width N] [-policy P] [-prs N] [-ff N] [-run N] [-wait]
  check-program <file.s> [-Werror]
  status|result|wait|watch|cancel <job-id>
  jobs | benchmarks | experiments | metrics | version
fabric commands (against a coordinator):
  submit-matrix -benchmarks a,b -policies p,q [-widths 4,8] [-prs N,M] [-ff N] [-run N] [-wait]
  matrix-status|matrix-result <matrix-id>
  matrices | workers
  register-worker <url> | deregister-worker <worker-id>`)
}

func main() {
	addr := flag.String("addr", "http://localhost:8064", "prisimd base URL")
	version := flag.Bool("version", false, "print client version and exit")
	flag.Usage = func() { usage(); flag.PrintDefaults() }
	flag.Parse()
	if *version {
		fmt.Println("prisimctl", prisim.Version)
		return
	}
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr // tolerate a bare host:port
	}
	c := prisimclient.NewClient(*addr)
	cmd, args := flag.Arg(0), flag.Args()[1:]

	var err error
	switch cmd {
	case "simulate":
		err = submit(ctx, c, prisimclient.KindSimulate, args)
	case "experiment":
		err = submit(ctx, c, prisimclient.KindExperiment, args)
	case "run-program":
		err = runProgram(ctx, c, args)
	case "check-program":
		err = checkProgram(ctx, c, args)
	case "status":
		err = withJobID(args, func(id string) error {
			j, err := c.Job(ctx, id)
			return printJSON(j, err)
		})
	case "result":
		err = withJobID(args, func(id string) error { return printResult(ctx, c, id) })
	case "wait":
		err = withJobID(args, func(id string) error {
			j, err := c.Wait(ctx, id, 0)
			if err != nil {
				return err
			}
			return printJSON(j, nil)
		})
	case "watch":
		err = withJobID(args, func(id string) error {
			_, err := c.Stream(ctx, id, func(ev prisimclient.Event) {
				fmt.Printf("%-8s state=%-9s progress=%d/%d %s\n",
					ev.Type, ev.State, ev.Progress.Done, ev.Progress.Total, ev.Error)
			})
			return err
		})
	case "cancel":
		err = withJobID(args, func(id string) error {
			j, err := c.Cancel(ctx, id)
			return printJSON(j, err)
		})
	case "jobs":
		js, jerr := c.Jobs(ctx)
		if jerr == nil {
			for _, j := range js {
				fmt.Printf("%-8s %-10s %-10s %-9s %d/%d %s\n",
					j.ID, j.Request.Kind, j.Request.Benchmark+j.Request.Experiment,
					j.State, j.Progress.Done, j.Progress.Total, j.Error)
			}
		}
		err = jerr
	case "benchmarks":
		err = printList(c.Benchmarks(ctx))
	case "experiments":
		err = printList(c.Experiments(ctx))
	case "submit-matrix":
		err = submitMatrix(ctx, c, args)
	case "matrix-status":
		err = withJobID(args, func(id string) error {
			st, serr := c.MatrixStatus(ctx, id)
			return printJSON(st, serr)
		})
	case "matrix-result":
		err = withJobID(args, func(id string) error { return printMatrixResult(ctx, c, id) })
	case "matrices":
		ms, merr := c.Matrices(ctx)
		if merr == nil {
			for _, m := range ms {
				fmt.Printf("%-20s %-9s points=%d done=%d hits=%d executed=%d coalesced=%d %s\n",
					m.ID, m.State, m.Points, m.Done, m.StoreHits, m.Executed, m.Coalesced, m.Error)
			}
		}
		err = merr
	case "workers":
		ws, werr := c.Workers(ctx)
		if werr == nil {
			for _, w := range ws {
				health := "healthy"
				if !w.Healthy {
					health = "unhealthy"
				}
				fmt.Printf("%-6s %-28s %-9s inflight=%d completed=%d failures=%d %s\n",
					w.ID, w.URL, health, w.InFlight, w.Completed, w.Failures, w.LastError)
			}
		}
		err = werr
	case "register-worker":
		err = withJobID(args, func(url string) error {
			info, rerr := c.RegisterWorker(ctx, url)
			return printJSON(info, rerr)
		})
	case "deregister-worker":
		err = withJobID(args, func(id string) error { return c.DeregisterWorker(ctx, id) })
	case "metrics":
		var page string
		if page, err = c.Metrics(ctx); err == nil {
			fmt.Print(page)
		}
	case "version":
		fmt.Println("client", prisim.Version)
		var v string
		if v, err = c.Version(ctx); err == nil {
			fmt.Println("server", v)
		}
	default:
		fmt.Fprintf(os.Stderr, "prisimctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
}

// fatal prints the error and exits: 2 for usage-class errors (bad request,
// unknown name, a program that does not assemble — HTTP 4xx other than
// 409/410/429), 1 otherwise. Assembly rejections (422) print every
// positioned diagnostic the server returned, one per line.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prisimctl: %s\n", err)
	var apiErr *prisimclient.APIError
	if errors.As(err, &apiErr) {
		for _, d := range apiErr.Diagnostics {
			fmt.Fprintln(os.Stderr, d.String())
		}
		if apiErr.StatusCode == 400 || apiErr.StatusCode == 404 || apiErr.StatusCode == 422 {
			os.Exit(2)
		}
	}
	if errors.Is(err, errUsage) {
		os.Exit(2)
	}
	os.Exit(1)
}

var errUsage = errors.New("expected exactly one argument")

func withJobID(args []string, fn func(id string) error) error {
	if len(args) != 1 {
		return errUsage
	}
	return fn(args[0])
}

func printJSON(v any, err error) error {
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func printList(names []string, err error) error {
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

// printResult renders a finished job: tables as text, simulate results as
// JSON.
func printResult(ctx context.Context, c *prisimclient.Client, id string) error {
	res, err := c.Result(ctx, id)
	if err != nil {
		return err
	}
	if len(res.Tables) > 0 {
		fmt.Print(res.Text())
		return nil
	}
	return printJSON(res.Result, nil)
}

// printMatrixResult renders a finished matrix's tables as text.
func printMatrixResult(ctx context.Context, c *prisimclient.Client, id string) error {
	res, err := c.MatrixResult(ctx, id)
	if err != nil {
		return err
	}
	fmt.Print(res.Text())
	return nil
}

// splitInts parses a comma-separated integer list flag.
func splitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &v); err != nil {
			return nil, fmt.Errorf("bad integer %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitNames parses a comma-separated name list flag.
func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// submitMatrix parses the submit-matrix flags, submits the matrix to the
// coordinator, and either prints the accepted status or (with -wait)
// blocks for the assembled tables.
func submitMatrix(ctx context.Context, c *prisimclient.Client, args []string) error {
	fs := flag.NewFlagSet("submit-matrix", flag.ExitOnError)
	benches := fs.String("benchmarks", "", "comma-separated workload names (required)")
	policies := fs.String("policies", "", "comma-separated release policies (required)")
	widths := fs.String("widths", "", "comma-separated machine widths (default 4)")
	prs := fs.String("prs", "", "comma-separated physical-register counts (default machine default)")
	ff := fs.Uint64("ff", 0, "fast-forward instructions per point")
	run := fs.Uint64("run", 0, "measured instructions per point")
	wait := fs.Bool("wait", false, "wait for the matrix and print its tables")
	fs.Parse(args)
	ws, err := splitInts(*widths)
	if err != nil {
		return err
	}
	ps, err := splitInts(*prs)
	if err != nil {
		return err
	}
	m := prisimclient.Matrix{
		Benchmarks:  splitNames(*benches),
		Policies:    splitNames(*policies),
		Widths:      ws,
		PhysRegs:    ps,
		FastForward: *ff,
		Run:         *run,
	}
	st, err := c.SubmitMatrix(ctx, m)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(st, nil)
	}
	final, err := c.WaitMatrix(ctx, st.ID, 0)
	if err != nil {
		return err
	}
	if final.State != prisimclient.StateDone {
		return fmt.Errorf("matrix %s %s: %s", final.ID, final.State, final.Error)
	}
	return printMatrixResult(ctx, c, final.ID)
}

// checkProgram assemble-checks a source file on the server without
// running it: the image identity and inlinability summary print as JSON
// on stdout, priscan warnings print with carets on stderr. Exit status
// follows the prias -lint convention: 0 clean, 1 when warnings were
// reported and -Werror is set, 2 when the server rejected the program
// (assembly failure or a provable static-analysis error — both 422 with
// positioned diagnostics, rendered by fatal).
func checkProgram(ctx context.Context, c *prisimclient.Client, args []string) error {
	fs := flag.NewFlagSet("check-program", flag.ExitOnError)
	werror := fs.Bool("Werror", false, "exit 1 when the server reported warnings")
	if len(args) < 1 || args[0] == "" || args[0][0] == '-' {
		fmt.Fprintln(os.Stderr, "usage: prisimctl check-program <file.s> [-Werror]")
		os.Exit(2)
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	fs.Parse(args[1:])
	info, err := c.CheckProgram(ctx, src)
	if err != nil {
		return err
	}
	for _, d := range info.Warnings {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if err := printJSON(info, nil); err != nil {
		return err
	}
	if *werror && len(info.Warnings) > 0 {
		os.Exit(1)
	}
	return nil
}

// runProgram assembles nothing locally: it reads the source file, submits
// it as a program job, and either prints the accepted job or (with -wait)
// blocks for the result, writing the program's console output to stdout
// before the timing statistics.
func runProgram(ctx context.Context, c *prisimclient.Client, args []string) error {
	fs := flag.NewFlagSet("run-program", flag.ExitOnError)
	width := fs.Int("width", 0, "machine width (4 or 8)")
	policy := fs.String("policy", "", "release policy")
	prs := fs.Int("prs", 0, "physical registers per class")
	ff := fs.Uint64("ff", 0, "fast-forward instructions")
	run := fs.Uint64("run", 0, "measured instructions (0 = server cap, halt stops early)")
	inline := fs.Bool("rename-inline", false, "rename-time inlining extension")
	delayed := fs.Bool("delayed-alloc", false, "delayed register allocation")
	wait := fs.Bool("wait", false, "wait for the job and print output + result")
	if len(args) < 1 || args[0] == "" || args[0][0] == '-' {
		fmt.Fprintln(os.Stderr, "usage: prisimctl run-program <file.s> [flags]")
		os.Exit(2)
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	fs.Parse(args[1:])

	j, err := c.SubmitProgram(ctx, src, prisimclient.JobRequest{
		Width:             *width,
		Policy:            *policy,
		PhysRegs:          *prs,
		FastForward:       *ff,
		Run:               *run,
		RenameInline:      *inline,
		DelayedAllocation: *delayed,
	})
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(j, nil)
	}
	final, err := c.Wait(ctx, j.ID, 100*time.Millisecond)
	if err != nil {
		return err
	}
	if final.State != prisimclient.StateDone {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	res, err := c.Result(ctx, j.ID)
	if err != nil {
		return err
	}
	if len(res.Output) > 0 {
		os.Stdout.Write(res.Output)
		if res.Output[len(res.Output)-1] != '\n' {
			fmt.Println()
		}
	}
	return printJSON(res.Result, nil)
}

// submit parses a simulate/experiment subcommand, submits it, and either
// prints the accepted job or (with -wait) blocks for the result.
func submit(ctx context.Context, c *prisimclient.Client, kind string, args []string) error {
	fs := flag.NewFlagSet(kind, flag.ExitOnError)
	width := fs.Int("width", 0, "machine width (4 or 8)")
	policy := fs.String("policy", "", "release policy")
	prs := fs.Int("prs", 0, "physical registers per class")
	ff := fs.Uint64("ff", 0, "fast-forward instructions")
	run := fs.Uint64("run", 0, "measured instructions")
	inline := fs.Bool("rename-inline", false, "rename-time inlining extension")
	delayed := fs.Bool("delayed-alloc", false, "delayed register allocation")
	wait := fs.Bool("wait", false, "wait for the job and print its result")
	if len(args) < 1 || args[0] == "" || args[0][0] == '-' {
		fmt.Fprintf(os.Stderr, "usage: prisimctl %s <name> [flags]\n", kind)
		os.Exit(2)
	}
	name := args[0]
	fs.Parse(args[1:])

	req := prisimclient.JobRequest{
		Kind:              kind,
		Width:             *width,
		Policy:            *policy,
		PhysRegs:          *prs,
		FastForward:       *ff,
		Run:               *run,
		RenameInline:      *inline,
		DelayedAllocation: *delayed,
	}
	if kind == prisimclient.KindSimulate {
		req.Benchmark = name
	} else {
		req.Experiment = name
	}
	j, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	if !*wait {
		return printJSON(j, nil)
	}
	final, err := c.Wait(ctx, j.ID, 100*time.Millisecond)
	if err != nil {
		return err
	}
	if final.State != prisimclient.StateDone {
		return fmt.Errorf("job %s %s: %s", final.ID, final.State, final.Error)
	}
	return printResult(ctx, c, final.ID)
}
