package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"prisim"
	"prisim/internal/plot"
	"prisim/internal/stats"
)

// writeSVGs renders the figure-shaped experiments as SVG files in dir.
// Table-shaped output (table1) has no chart form and is skipped.
func writeSVGs(dir, name string, tables []prisim.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range tables {
		chart, err := chartFor(name, toStats(t))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if chart == nil {
			continue
		}
		file := name
		if len(tables) > 1 {
			file = fmt.Sprintf("%s-%d", name, i+1)
		}
		path := filepath.Join(dir, file+".svg")
		if err := os.WriteFile(path, []byte(chart.SVG()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	return nil
}

// toStats rebuilds the plot-facing table form from the public API's table.
func toStats(t prisim.Table) *stats.Table {
	return &stats.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows}
}

func chartFor(name string, t *stats.Table) (*plot.Chart, error) {
	switch name {
	case "table1":
		return nil, nil
	case "table2":
		ft := filterCols(t, 0, 2, 3, 4, 5) // drop the class column
		c, err := plot.FromTable(ft, "IPC", false, false)
		if err != nil {
			return nil, err
		}
		c.YMin = 0
		return c, nil
	case "fig1", "fig8":
		// Stack the 4-wide phase columns (the 8-wide half mirrors them).
		ft := filterCols(t, 0, 1, 2, 3)
		c, err := plot.FromTable(ft, "cycles", false, true)
		if err != nil {
			return nil, err
		}
		c.YMin = 0
		return c, nil
	case "fig2":
		// Rows are benchmarks, columns are widths: transpose so the x axis
		// is the bit budget and each benchmark is a line, as in the paper.
		c, err := plot.FromTable(transpose(t), "cumulative % of operands", true, false)
		if err != nil {
			return nil, err
		}
		c.YMin = 0
		return c, nil
	case "fig9":
		c, err := plot.FromTable(transpose(t), "speedup vs PR=40", true, false)
		if err != nil {
			return nil, err
		}
		c.YMin = 1
		return c, nil
	case "fig10", "fig12":
		c, err := plot.FromTable(t, "IPC / base IPC", false, false)
		if err != nil {
			return nil, err
		}
		c.YMin = 0.9
		return c, nil
	case "fig11":
		c, err := plot.FromTable(t, "avg occupied registers", false, false)
		if err != nil {
			return nil, err
		}
		c.YMin = 30
		return c, nil
	default: // ablations: simple grouped bars
		c, err := plot.FromTable(t, "", false, false)
		if err != nil {
			return nil, err
		}
		c.YMin = math.NaN()
		return c, nil
	}
}

// filterCols builds a new table keeping only the named column indices.
func filterCols(t *stats.Table, keep ...int) *stats.Table {
	out := &stats.Table{Title: t.Title}
	for _, k := range keep {
		out.Columns = append(out.Columns, t.Columns[k])
	}
	for _, row := range t.Rows {
		cells := make([]string, 0, len(keep))
		for _, k := range keep {
			if k < len(row) {
				cells = append(cells, row[k])
			} else {
				cells = append(cells, "")
			}
		}
		out.AddRow(cells...)
	}
	return out
}

// transpose swaps rows and columns: row labels become column headers.
func transpose(t *stats.Table) *stats.Table {
	out := &stats.Table{Title: t.Title, Columns: []string{t.Columns[0]}}
	for _, row := range t.Rows {
		out.Columns = append(out.Columns, row[0])
	}
	for c := 1; c < len(t.Columns); c++ {
		cells := []string{strings.TrimSpace(t.Columns[c])}
		for _, row := range t.Rows {
			if c < len(row) {
				cells = append(cells, row[c])
			} else {
				cells = append(cells, "")
			}
		}
		out.AddRow(cells...)
	}
	return out
}
