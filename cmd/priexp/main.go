// Command priexp regenerates the paper's tables and figures through the
// public prisim Engine API: every experiment's run matrix executes on a
// worker pool sized by GOMAXPROCS (override with -j), output tables are
// byte-identical to a serial run, and ^C cancels mid-sweep.
//
// Usage:
//
//	priexp [flags] [experiment ...]
//
// Experiments: table1 table2 fig1 fig2 fig8 fig9 fig10 fig11 fig12
// ablation-inline ablation-mem (default: all paper experiments).
//
// Absolute numbers depend on the synthetic workloads and scaled-down run
// budgets; the shapes (who wins, by roughly what factor) are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"time"

	"prisim"
)

func main() {
	ff := flag.Uint64("ff", 0, fmt.Sprintf("fast-forward instructions per run (0 = default %d)", prisim.DefaultFastForward))
	run := flag.Uint64("run", 0, fmt.Sprintf("measured instructions per run (0 = default %d)", prisim.DefaultRun))
	workers := flag.Int("j", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	verbose := flag.Bool("v", false, "print per-run progress")
	svgDir := flag.String("svg", "", "also render each figure as SVG into this directory")
	report := flag.String("report", "", "write a full markdown report (all experiments + shape checklist) to this file and exit")
	timing := flag.String("timing", "", "benchmark serial vs parallel fig8 wall-clock, write JSON to this file, and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: priexp [flags] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(prisim.ExperimentNames(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Println("priexp", prisim.Version)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []prisim.EngineOption{
		prisim.WithBudget(*ff, *run),
		prisim.WithParallelism(*workers),
	}
	if *verbose {
		opts = append(opts, prisim.WithProgress(func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d runs complete", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	eng := prisim.NewEngine(opts...)

	if *timing != "" {
		if err := writeTiming(ctx, *timing, *ff, *run); err != nil {
			fatal(err)
		}
		return
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := eng.WriteReport(ctx, f, prisim.Options{}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *report)
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"table1", "table2", "fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12"}
	}
	for _, name := range args {
		tables, err := eng.ExperimentTables(ctx, name, prisim.Options{})
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			fmt.Println(t.String())
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, name, tables); err != nil {
				fmt.Fprintf(os.Stderr, "priexp: svg: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// fatal prints err once under the command prefix and exits — status 2 for
// usage errors (bad experiment or option values), 1 for runtime failures,
// matching prisim and prias.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "priexp: %s\n", strings.TrimPrefix(err.Error(), "prisim: "))
	code := 1
	for _, usage := range []error{prisim.ErrUnknownExperiment, prisim.ErrUnknownBenchmark,
		prisim.ErrUnknownPolicy, prisim.ErrInvalidOptions} {
		if errors.Is(err, usage) {
			code = 2
		}
	}
	os.Exit(code)
}

// timingRecord is the -timing output: one serial and one parallel fig8
// regeneration from cold caches, whether their tables matched byte for
// byte, the raw kernel throughput of a single simulation (committed
// instructions per wall-clock second, the number BENCH_kernel.json tracks),
// and the snapshot-layer sweep comparison (the numbers BENCH_harness.json
// tracks and `make sweepgate` gates on).
type timingRecord struct {
	Experiment        string  `json:"experiment"`
	NumCPU            int     `json:"num_cpu"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	ParallelWorkers   int     `json:"parallel_workers"`
	SerialSeconds     float64 `json:"serial_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	ByteIdentical     bool    `json:"byte_identical"`
	KernelInstrPerSec float64 `json:"kernel_instr_per_sec"`
	FastForward       uint64  `json:"fast_forward_per_run"`
	Run               uint64  `json:"run_per_run"`

	Sweep      sweepRecord      `json:"sweep"`
	Acceptance acceptanceRecord `json:"acceptance"`
}

// sweepRecord compares one cold fig8-mix sweep — every integer workload at
// 8 policy points, default fast-forward — with the snapshot layer off
// (every point replays its workload's fast-forward) and on (one functional
// fast-forward per workload, every sibling point clones the warm state).
type sweepRecord struct {
	Workloads         int     `json:"workloads"`
	Points            int     `json:"points"`
	PointsPerWorkload int     `json:"points_per_workload"`
	FastForward       uint64  `json:"fast_forward_per_point"`
	Run               uint64  `json:"run_per_point"`
	ReplaySeconds     float64 `json:"replay_seconds"`
	SnapshotSeconds   float64 `json:"snapshot_seconds"`
	Speedup           float64 `json:"speedup"`
	SnapshotBuilds    int     `json:"snapshot_builds"`
	SnapshotHits      int     `json:"snapshot_hits"`
	SnapshotBytes     uint64  `json:"snapshot_resident_bytes"`
	ByteIdentical     bool    `json:"byte_identical"`
}

// acceptanceRecord holds the CI floors derived from this record (see
// cmd/benchgate -floorkey).
type acceptanceRecord struct {
	// SweepPointsPerSecFloor is the snapshot-enabled sweep's measured
	// throughput; BenchmarkSweepFig8Mix must sustain a fraction of it.
	SweepPointsPerSecFloor float64 `json:"sweep_points_per_sec_floor"`
}

// writeTiming regenerates fig8 on a fresh single-worker Engine and a fresh
// multi-worker Engine, records both wall-clocks, and asserts the rendered
// tables are identical. The worker count is GOMAXPROCS but at least 2, so
// the race-safety claim (parallel == serial output) is exercised even on a
// single-core host where no wall-clock speedup is possible.
func writeTiming(ctx context.Context, path string, ff, run uint64) error {
	time1 := func(workers int) (string, float64, error) {
		eng := prisim.NewEngine(prisim.WithBudget(ff, run), prisim.WithParallelism(workers))
		start := time.Now()
		out, err := eng.Experiment(ctx, "fig8", prisim.Options{})
		return out, time.Since(start).Seconds(), err
	}
	serialOut, serialSec, err := time1(1)
	if err != nil {
		return err
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	parOut, parSec, err := time1(workers)
	if err != nil {
		return err
	}
	kernelIPS, err := kernelThroughput(ctx, ff, run)
	if err != nil {
		return err
	}
	sweep, err := sweepComparison(ctx)
	if err != nil {
		return err
	}
	// Record the budgets the runs actually used: flag value 0 means the
	// engine defaults, not a zero-instruction fast-forward.
	recFF, recRun := ff, run
	if recFF == 0 {
		recFF = prisim.DefaultFastForward
	}
	if recRun == 0 {
		recRun = prisim.DefaultRun
	}
	rec := timingRecord{
		Experiment:        "fig8",
		NumCPU:            runtime.NumCPU(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		ParallelWorkers:   workers,
		SerialSeconds:     serialSec,
		ParallelSeconds:   parSec,
		Speedup:           serialSec / parSec,
		ByteIdentical:     serialOut == parOut,
		KernelInstrPerSec: kernelIPS,
		FastForward:       recFF,
		Run:               recRun,
		Sweep:             sweep,
		Acceptance: acceptanceRecord{
			SweepPointsPerSecFloor: float64(sweep.Points) / sweep.SnapshotSeconds,
		},
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "timing written to %s (serial %.2fs, parallel %.2fs on %d workers, identical=%v, kernel %.0f instr/s)\n",
		path, serialSec, parSec, workers, rec.ByteIdentical, kernelIPS)
	fmt.Fprintf(os.Stderr, "sweep: %d points / %d workloads, replay %.2fs vs snapshot %.2fs (%.2fx), %d builds + %d hits, identical=%v\n",
		sweep.Points, sweep.Workloads, sweep.ReplaySeconds, sweep.SnapshotSeconds,
		sweep.Speedup, sweep.SnapshotBuilds, sweep.SnapshotHits, sweep.ByteIdentical)
	return nil
}

// sweepRunPerPoint is the measured budget per sweep-comparison point. Keep
// in sync with internal/harness's BenchmarkSweepFig8Mix, which is gated
// against the floor this run records.
const sweepRunPerPoint = 8000

// sweepOptions is the fig8-shaped comparison matrix: every integer
// workload at 8 policy points (4 rename policies × both widths), run at
// the real default fast-forward so the record measures exactly the work
// the snapshot layer removes.
func sweepOptions() []prisim.Options {
	pols := []prisim.Policy{prisim.PolicyBase, prisim.PolicyER, prisim.PolicyPRI, prisim.PolicyPRIPlusER}
	var opts []prisim.Options
	for _, b := range prisim.Benchmarks() {
		if b.FP {
			continue
		}
		for _, width := range []int{4, 8} {
			for _, pol := range pols {
				opts = append(opts, prisim.Options{Benchmark: b.Name, Width: width, Policy: pol})
			}
		}
	}
	return opts
}

// sweepOnce runs the comparison matrix on a fresh Engine and returns the
// wall-clock, the engine's cache counters, and a fingerprint of every
// result in matrix order (so on/off runs can be compared byte for byte).
func sweepOnce(ctx context.Context, snapshots bool) (float64, prisim.CacheStats, string, error) {
	eng := prisim.NewEngine(
		prisim.WithBudget(prisim.DefaultFastForward, sweepRunPerPoint),
		prisim.WithSnapshots(snapshots))
	opts := sweepOptions()
	results := make([]prisim.Result, len(opts))
	errs := make([]error, len(opts))
	start := time.Now()
	var wg sync.WaitGroup
	for i := range opts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Simulate(ctx, opts[i])
		}(i)
	}
	wg.Wait()
	sec := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, prisim.CacheStats{}, "", err
		}
	}
	h := sha256.New()
	for i := range results {
		fmt.Fprintf(h, "%+v\n", results[i])
	}
	return sec, eng.CacheStats(), fmt.Sprintf("%x", h.Sum(nil)), nil
}

// sweepComparison measures the fig8-mix sweep cold with the snapshot layer
// off, then cold again with it on, and checks the results matched exactly.
func sweepComparison(ctx context.Context) (sweepRecord, error) {
	replaySec, _, replayFP, err := sweepOnce(ctx, false)
	if err != nil {
		return sweepRecord{}, err
	}
	snapSec, cs, snapFP, err := sweepOnce(ctx, true)
	if err != nil {
		return sweepRecord{}, err
	}
	points := len(sweepOptions())
	workloads := cs.SnapshotBuilds // one snapshot build per workload
	return sweepRecord{
		Workloads:         workloads,
		Points:            points,
		PointsPerWorkload: points / workloads,
		FastForward:       prisim.DefaultFastForward,
		Run:               sweepRunPerPoint,
		ReplaySeconds:     replaySec,
		SnapshotSeconds:   snapSec,
		Speedup:           replaySec / snapSec,
		SnapshotBuilds:    cs.SnapshotBuilds,
		SnapshotHits:      cs.SnapshotHits,
		SnapshotBytes:     cs.SnapshotBytes,
		ByteIdentical:     replayFP == snapFP,
	}, nil
}

// kernelThroughput times one mcf simulation (the fig8 matrix's dominant
// workload) on the baseline machine and returns committed instructions per
// second — a construction-free view of the simulation kernel's speed.
func kernelThroughput(ctx context.Context, ff, run uint64) (float64, error) {
	eng := prisim.NewEngine(prisim.WithBudget(ff, run))
	start := time.Now()
	res, err := eng.Simulate(ctx, prisim.Options{Benchmark: "mcf"})
	if err != nil {
		return 0, err
	}
	return float64(res.Committed) / time.Since(start).Seconds(), nil
}
