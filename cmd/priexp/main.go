// Command priexp regenerates the paper's tables and figures.
//
// Usage:
//
//	priexp [flags] [experiment ...]
//
// Experiments: table1 table2 fig1 fig2 fig8 fig9 fig10 fig11 fig12
// ablation-inline ablation-mem (default: all paper experiments).
//
// Absolute numbers depend on the synthetic workloads and scaled-down run
// budgets; the shapes (who wins, by roughly what factor) are the
// reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"prisim/internal/harness"
	"prisim/internal/stats"
)

func main() {
	ff := flag.Uint64("ff", harness.DefaultBudget.FastForward, "fast-forward instructions per run")
	run := flag.Uint64("run", harness.DefaultBudget.Run, "measured instructions per run")
	verbose := flag.Bool("v", false, "print per-run progress")
	svgDir := flag.String("svg", "", "also render each figure as SVG into this directory")
	report := flag.String("report", "", "write a full markdown report (all experiments + shape checklist) to this file and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: priexp [flags] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: %s\n", strings.Join(names(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()

	r := harness.NewRunner(harness.Budget{FastForward: *ff, Run: *run})
	if *verbose {
		r.Progress = os.Stderr
	}
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			fmt.Fprintln(os.Stderr, "priexp:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := r.WriteReport(f); err != nil {
			fmt.Fprintln(os.Stderr, "priexp:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *report)
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"table1", "table2", "fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12"}
	}
	for _, name := range args {
		tables, ok := experiments(r)[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "priexp: unknown experiment %q (have: %s)\n",
				name, strings.Join(names(), " "))
			os.Exit(2)
		}
		ts := tables()
		for _, t := range ts {
			fmt.Println(t.String())
		}
		if *svgDir != "" {
			if err := writeSVGs(*svgDir, name, ts); err != nil {
				fmt.Fprintf(os.Stderr, "priexp: svg: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func experiments(r *harness.Runner) map[string]func() []*stats.Table {
	one := func(t *stats.Table) []*stats.Table { return []*stats.Table{t} }
	return map[string]func() []*stats.Table{
		"table1": func() []*stats.Table { return one(harness.Table1()) },
		"table2": func() []*stats.Table { return one(r.Table2()) },
		"fig1":   func() []*stats.Table { return one(r.Fig1()) },
		"fig2": func() []*stats.Table {
			a, b := r.Fig2()
			return []*stats.Table{a, b}
		},
		"fig8": func() []*stats.Table { return one(r.Fig8()) },
		"fig9": func() []*stats.Table {
			return []*stats.Table{r.Fig9(4), r.Fig9(8)}
		},
		"fig10": func() []*stats.Table {
			return []*stats.Table{r.Fig10(4), r.Fig10(8)}
		},
		"fig11": func() []*stats.Table {
			return []*stats.Table{r.Fig11(4), r.Fig11(8)}
		},
		"fig12": func() []*stats.Table {
			return []*stats.Table{r.Fig12(4), r.Fig12(8)}
		},
		"ablation-inline":   func() []*stats.Table { return one(r.AblationRenameInline(4)) },
		"ablation-mem":      func() []*stats.Table { return one(r.AblationDisambiguation(4)) },
		"ablation-delayed":  func() []*stats.Table { return one(r.AblationDelayedAllocation(4)) },
		"ablation-mshr":     func() []*stats.Table { return one(r.AblationMSHR(4)) },
		"ablation-prefetch": func() []*stats.Table { return one(r.AblationPrefetch(4)) },
	}
}

func names() []string {
	return []string{"table1", "table2", "fig1", "fig2", "fig8", "fig9",
		"fig10", "fig11", "fig12", "ablation-inline", "ablation-mem", "ablation-delayed", "ablation-mshr", "ablation-prefetch"}
}
