module prisim

go 1.22
