package prisim

// Version identifies the build of the prisim module and its binaries
// (prisim, priexp, prias, prisimd, prisimctl). Release builds override it
// with:
//
//	go build -ldflags "-X prisim.Version=v0.4.0" ./cmd/...
var Version = "v0.4.0-dev"
