package trace

import (
	"bytes"
	"io"
	"testing"

	"prisim/internal/emu"
	"prisim/internal/fuzzprog"
	"prisim/internal/isa"
	"prisim/internal/workloads"
)

func TestRoundTrip(t *testing.T) {
	prog := fuzzprog.Generate(fuzzprog.Config{Seed: 3, OuterTrips: 5})
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(prog)
	n, err := Capture(m, 5000, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n == 0 || w.Count() != n {
		t.Fatalf("captured %d, writer says %d", n, w.Count())
	}

	// Replaying the reference machine step by step must match the trace.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ref := emu.New(prog)
	var got uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pc := ref.PC
		info := ref.Step()
		if rec.PC != pc || rec.Inst != info.Inst || rec.Taken != info.Taken {
			t.Fatalf("record %d mismatch: %+v vs pc=%#x %v taken=%v",
				got, rec, pc, info.Inst, info.Taken)
		}
		if info.IsMem && rec.MemAddr != info.MemAddr {
			t.Fatalf("record %d address mismatch", got)
		}
		if info.Inst.Op.WritesRd() && rec.Result != info.Result {
			t.Fatalf("record %d result mismatch", got)
		}
		got++
	}
	if got != n {
		t.Fatalf("read %d records, wrote %d", got, n)
	}
}

func TestCompactness(t *testing.T) {
	// Sequential code should cost only a few bytes per instruction.
	w2, _ := workloads.ByName("gzip")
	prog := w2.Build(50)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	m := emu.New(prog)
	n, _ := Capture(m, 20000, w)
	w.Flush()
	perInst := float64(buf.Len()) / float64(n)
	if perInst > 10 {
		t.Errorf("trace costs %.1f bytes/instruction", perInst)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	m := emu.New(fuzzprog.Generate(fuzzprog.Config{Seed: 1}))
	Capture(m, 100, w)
	w.Flush()
	// Chop the tail; the reader must fail cleanly, not hang or panic.
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err := r.Next()
		if err == io.EOF {
			break // acceptable: truncation fell on a record boundary prefix
		}
		if err != nil {
			return // clean error: good
		}
	}
}

func TestAnalyzeMix(t *testing.T) {
	w2, _ := workloads.ByName("bzip2")
	prog := w2.Build(20)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	m := emu.New(prog)
	Capture(m, 30000, w)
	w.Flush()
	r, _ := NewReader(bytes.NewReader(buf.Bytes()))
	mix, err := AnalyzeMix(r, 10)
	if err != nil {
		t.Fatal(err)
	}
	if mix.Total == 0 || mix.Loads == 0 || mix.Branches == 0 || mix.Stores == 0 {
		t.Errorf("mix incomplete: %+v", mix)
	}
	if mix.TakenFrac <= 0 || mix.TakenFrac > 1 {
		t.Errorf("taken fraction %v", mix.TakenFrac)
	}
	if mix.NarrowFrac <= 0.05 {
		t.Errorf("mcf narrow fraction %v suspiciously low", mix.NarrowFrac)
	}
	if mix.IntALU == 0 {
		t.Error("no ALU ops classified")
	}
}

func TestUnencodableRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	err := w.Write(Record{Inst: isa.Inst{Op: isa.OpADDI, Rd: isa.IntReg(1), Ra: isa.IntReg(2), Imm: 1 << 40}})
	if err == nil {
		t.Error("unencodable instruction accepted")
	}
}
