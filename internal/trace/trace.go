// Package trace provides dynamic instruction traces: capture from the
// functional emulator into a compact varint-encoded binary stream, read them
// back, and compute stream-level analyses (instruction mix, operand
// significance) without re-executing the program. Traces make workload
// behaviour inspectable and diffable, and give the test suite a way to
// assert that kernels exercise what their descriptions claim.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"prisim/internal/emu"
	"prisim/internal/isa"
)

// Record is one dynamic instruction.
type Record struct {
	PC      uint64
	Inst    isa.Inst
	Taken   bool
	MemAddr uint64 // valid when the op is a load or store
	Result  uint64 // destination value when the op writes one
}

// magic identifies the trace format; version bumps on layout changes.
const magic = "PRITRACE\x01"

// Writer encodes records to a stream.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	n      uint64
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

// Write appends one record. PCs are delta-encoded (signed zig-zag against
// the previous PC), which collapses sequential execution to one byte.
func (t *Writer) Write(r Record) error {
	w, err := r.Inst.Encode()
	if err != nil {
		return fmt.Errorf("trace: unencodable instruction %v: %w", r.Inst, err)
	}
	delta := int64(r.PC - t.lastPC)
	putUvarint(t.w, uint64((delta<<1)^(delta>>63))) // zig-zag
	t.lastPC = r.PC

	flags := uint64(0)
	if r.Taken {
		flags |= 1
	}
	if r.Inst.Op.IsMem() {
		flags |= 2
	}
	if r.Inst.Op.WritesRd() {
		flags |= 4
	}
	putUvarint(t.w, uint64(w)<<3|flags)
	if flags&2 != 0 {
		putUvarint(t.w, r.MemAddr)
	}
	if flags&4 != 0 {
		putUvarint(t.w, r.Result)
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader decodes a trace stream.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(hdr) != magic {
		return nil, errors.New("trace: bad magic")
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at the end of the trace.
func (t *Reader) Next() (Record, error) {
	zz, err := binary.ReadUvarint(t.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("trace: %w", err)
	}
	delta := int64(zz>>1) ^ -int64(zz&1)
	pc := t.lastPC + uint64(delta)
	t.lastPC = pc

	packed, err := binary.ReadUvarint(t.r)
	if err != nil {
		return Record{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	flags := packed & 7
	rec := Record{PC: pc, Inst: isa.Decode(uint32(packed >> 3)), Taken: flags&1 != 0}
	if flags&2 != 0 {
		if rec.MemAddr, err = binary.ReadUvarint(t.r); err != nil {
			return Record{}, fmt.Errorf("trace: truncated address: %w", err)
		}
	}
	if flags&4 != 0 {
		if rec.Result, err = binary.ReadUvarint(t.r); err != nil {
			return Record{}, fmt.Errorf("trace: truncated result: %w", err)
		}
	}
	return rec, nil
}

// Capture runs up to n instructions on m, writing each to w, and returns
// the number captured.
func Capture(m *emu.Machine, n uint64, w *Writer) (uint64, error) {
	var count uint64
	for count < n && !m.Halted() {
		pc := m.PC
		info := m.Step()
		rec := Record{
			PC:     pc,
			Inst:   info.Inst,
			Taken:  info.Taken,
			Result: info.Result,
		}
		if info.IsMem {
			rec.MemAddr = info.MemAddr
		}
		if err := w.Write(rec); err != nil {
			return count, err
		}
		count++
	}
	return count, nil
}

// Mix is an instruction-class breakdown of a trace.
type Mix struct {
	Total      uint64
	Loads      uint64
	Stores     uint64
	Branches   uint64
	Jumps      uint64
	IntALU     uint64
	IntMul     uint64
	FP         uint64
	TakenFrac  float64
	NarrowFrac float64 // results that fit the given narrow budget
}

// AnalyzeMix consumes the reader and classifies every record. narrowBits is
// the inline budget used for NarrowFrac (e.g. 7 or 10).
func AnalyzeMix(r *Reader, narrowBits int) (Mix, error) {
	var m Mix
	var taken, results, narrow uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return m, err
		}
		m.Total++
		op := rec.Inst.Op
		switch {
		case op.IsLoad():
			m.Loads++
		case op.IsStore():
			m.Stores++
		case op.IsBranch():
			m.Branches++
			if rec.Taken {
				taken++
			}
		case op.IsJump():
			m.Jumps++
		case op.Class() == isa.FUFPAdd || op.Class() == isa.FUFPMulDiv:
			m.FP++
		case op.Class() == isa.FUIntMulDiv:
			m.IntMul++
		default:
			m.IntALU++
		}
		if op.WritesRd() {
			results++
			if dst, ok := rec.Inst.Dest(); ok {
				if dst.IsFP() {
					if isa.FPTrivial(rec.Result) {
						narrow++
					}
				} else if isa.FitsSigned(rec.Result, narrowBits) {
					narrow++
				}
			}
		}
	}
	if m.Branches > 0 {
		m.TakenFrac = float64(taken) / float64(m.Branches)
	}
	if results > 0 {
		m.NarrowFrac = float64(narrow) / float64(results)
	}
	return m, nil
}
