package stats

import (
	"math"
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int{1, 2, 2, 3, 100, -5} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if got := h.CumulativeFrac(2); got != 4.0/6 {
		t.Errorf("cum(2) = %v", got)
	}
	if got := h.CumulativeFrac(10); got != 1.0 {
		t.Errorf("cum(max) = %v", got)
	}
	if got := h.CumulativeFrac(100); got != 1.0 {
		t.Errorf("cum clamped = %v", got)
	}
	var empty Histogram
	if empty.CumulativeFrac(1) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram not zero")
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(10)
	h.Add(2)
	h.Add(4)
	if h.Mean() != 3 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestSignificanceObserve(t *testing.T) {
	s := NewSignificance()
	s.Observe(isa.IntReg(1), 5)              // 4 bits
	s.Observe(isa.IntReg(2), 0xFFFFFFFFFFFF) // wide
	s.Observe(isa.FPReg(1), 0)               // trivial
	s.Observe(isa.FPReg(2), math.Float64bits(1.5))
	if s.IntOperands != 2 || s.FPOperands != 2 || s.FPTrivial != 1 {
		t.Errorf("counts: %d int %d fp %d trivial", s.IntOperands, s.FPOperands, s.FPTrivial)
	}
	if got := s.IntFracWithin(4); got != 0.5 {
		t.Errorf("IntFracWithin(4) = %v", got)
	}
	if got := s.FPTrivialFrac(); got != 0.5 {
		t.Errorf("FPTrivialFrac = %v", got)
	}
	var z Significance
	if z.FPTrivialFrac() != 0 {
		t.Error("zero significance not zero")
	}
}

func TestAnalyzeProgram(t *testing.T) {
	prog, err := asm.Assemble(`
.text
main:
  li   r1, 3
  li   r2, 5
loop:
  add  r3, r1, r2     ; reads two narrow operands
  addi r2, r2, -1
  bnez r2, loop
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(emu.New(prog), 10_000)
	if s.IntOperands == 0 {
		t.Fatal("no operands observed")
	}
	if s.IntFracWithin(7) < 0.9 {
		t.Errorf("narrow loop: only %v within 7 bits", s.IntFracWithin(7))
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "demo", Columns: []string{"name", "value"}}
	tb.AddRow("alpha", "1.00")
	tb.AddRow("b", "222.5")
	out := tb.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "alpha") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("table has %d lines", len(lines))
	}
	if F(1.234, 2) != "1.23" || Pct(0.5) != "50.0%" {
		t.Error("formatters wrong")
	}
}
