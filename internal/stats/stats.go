// Package stats provides the measurement helpers behind the paper's
// figures: cumulative histograms and the operand-significance analyzer that
// reproduces Figure 2 (how many bits integer and floating-point operands
// actually need).
package stats

import (
	"fmt"
	"strings"
	"sync"

	"prisim/internal/emu"
	"prisim/internal/isa"
)

// Histogram is a fixed-range integer histogram with cumulative queries.
type Histogram struct {
	counts []uint64
	total  uint64
}

// NewHistogram covers values 0..max (values above max clamp into the last
// bucket).
func NewHistogram(max int) *Histogram {
	return &Histogram{counts: make([]uint64, max+1)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.total++
}

// Total returns the observation count.
func (h *Histogram) Total() uint64 { return h.total }

// CumulativeFrac returns the fraction of observations <= v.
func (h *Histogram) CumulativeFrac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	var sum uint64
	for i := 0; i <= v; i++ {
		sum += h.counts[i]
	}
	return float64(sum) / float64(h.total)
}

// Mean returns the average observation.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum uint64
	for v, c := range h.counts {
		sum += uint64(v) * c
	}
	return float64(sum) / float64(h.total)
}

// Significance aggregates the paper's Figure 2 measurements over a dynamic
// instruction stream: the two's-complement width of every integer register
// operand read, and the compressed exponent/significand widths of every
// floating-point operand read.
type Significance struct {
	IntBits     *Histogram // 1..64 significant bits per integer operand
	ExpBits     *Histogram // 0..11 exponent bits per FP operand
	SigBits     *Histogram // 0..52 significand bits per FP operand
	FPTrivial   uint64     // FP operands whose whole pattern is zeroes/ones
	IntOperands uint64
	FPOperands  uint64
}

// NewSignificance returns an empty analyzer.
func NewSignificance() *Significance {
	return &Significance{
		IntBits: NewHistogram(64),
		ExpBits: NewHistogram(11),
		SigBits: NewHistogram(52),
	}
}

// Observe records one source operand value.
func (s *Significance) Observe(reg isa.Reg, value uint64) {
	if reg.IsFP() {
		s.FPOperands++
		if isa.FPTrivial(value) {
			s.FPTrivial++
		}
		s.ExpBits.Add(isa.FPExponentBits(value))
		s.SigBits.Add(isa.FPSignificandBits(value))
		return
	}
	s.IntOperands++
	s.IntBits.Add(isa.SignificantBits(value))
}

// Analyze runs prog functionally for limit instructions, observing every
// source register operand, and returns the aggregate.
func Analyze(m *emu.Machine, limit uint64) *Significance {
	s := NewSignificance()
	var srcs [3]isa.Reg
	for i := uint64(0); i < limit && !m.Halted(); i++ {
		in := m.PeekInst()
		for _, r := range in.Sources(srcs[:0]) {
			s.Observe(r, m.Reg(r))
		}
		m.Step()
	}
	return s
}

// IntFracWithin returns the fraction of integer operands representable in n
// bits (the paper's headline: ~half of operands fit in 10 bits).
func (s *Significance) IntFracWithin(n int) float64 { return s.IntBits.CumulativeFrac(n) }

// FPTrivialFrac returns the fraction of FP operands that are all zeroes or
// all ones.
func (s *Significance) FPTrivialFrac() float64 {
	if s.FPOperands == 0 {
		return 0
	}
	return float64(s.FPTrivial) / float64(s.FPOperands)
}

// Table renders a fixed-width text table: the harness uses it for every
// figure and table reproduction. AddRow and String are safe to call from
// multiple goroutines, so parallel experiment drivers can assemble one
// table concurrently; Title and Columns are set once before sharing.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string

	mu sync.Mutex
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.mu.Lock()
	t.Rows = append(t.Rows, cells)
	t.mu.Unlock()
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}

// F formats a float at the given precision (table cell helper).
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
