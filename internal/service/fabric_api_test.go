package service

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"prisim/internal/fabric"
	"prisim/prisimclient"
)

// TestFabricEndpointsRoundTrip drives every /api/v1/fabric endpoint through
// prisimclient against a coordinator daemon with one registered worker
// daemon, over real HTTP.
func TestFabricEndpointsRoundTrip(t *testing.T) {
	workerSrv := New(Config{Workers: 2, NodeID: "peer"})
	workerTS := httptest.NewServer(workerSrv.Handler())
	t.Cleanup(func() {
		workerSrv.Close()
		workerTS.Close()
	})

	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fabric.New(fabric.Config{Store: st, NodeID: "coord"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	coordSrv := New(Config{Workers: 1, NodeID: "coord", Store: st, Coordinator: coord})
	coordTS := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(func() {
		coordSrv.Close()
		coordTS.Close()
	})
	c := prisimclient.NewClient(coordTS.URL)

	info, err := c.RegisterWorker(bg, workerTS.URL)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := c.Workers(bg)
	if err != nil || len(ws) != 1 || ws[0].ID != info.ID {
		t.Fatalf("Workers = %+v, %v; want the one just registered", ws, err)
	}

	spec := prisimclient.Matrix{
		Benchmarks: []string{"gzip"}, Policies: []string{"base", "er"},
		FastForward: tinyFF, Run: tinyRun,
	}
	status, err := c.SubmitMatrix(bg, spec)
	if err != nil {
		t.Fatal(err)
	}
	if status.Points != 2 {
		t.Fatalf("matrix points = %d, want 2", status.Points)
	}
	// A result fetch before completion is a 409 (conflict), not a 404. The
	// matrix may legitimately already be done on a fast machine, so only a
	// wrong error classification fails the test.
	if _, rerr := c.MatrixResult(bg, status.ID); rerr != nil {
		var apiErr *prisimclient.APIError
		if !errors.As(rerr, &apiErr) || apiErr.StatusCode != 409 {
			t.Errorf("early result fetch: %v, want HTTP 409", rerr)
		}
	}

	final, err := c.WaitMatrix(bg, status.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("matrix state = %s (%s)", final.State, final.Error)
	}
	got, err := c.MatrixStatus(bg, status.ID)
	if err != nil || got.State != prisimclient.StateDone {
		t.Fatalf("MatrixStatus = %+v, %v", got, err)
	}
	ms, err := c.Matrices(bg)
	if err != nil || len(ms) != 1 {
		t.Fatalf("Matrices = %+v, %v; want exactly one", ms, err)
	}
	res, err := c.MatrixResult(bg, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) == 0 || len(res.Points) != 2 {
		t.Fatalf("MatrixResult: %d tables, %d points; want tables and 2 points", len(res.Tables), len(res.Points))
	}
	for _, p := range res.Points {
		if p.ComputedBy != "peer" {
			t.Errorf("point %s computed by %q, want the worker daemon peer", p.Request.Policy, p.ComputedBy)
		}
	}

	if err := c.DeregisterWorker(bg, info.ID); err != nil {
		t.Fatal(err)
	}
	ws, err = c.Workers(bg)
	if err != nil || len(ws) != 0 {
		t.Fatalf("Workers after deregister = %+v, %v; want none", ws, err)
	}
	// Unknown matrix IDs are 404s.
	if _, err := c.MatrixStatus(bg, "mx-nope"); err == nil {
		t.Error("unknown matrix id must 404")
	}
}
