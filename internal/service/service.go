// Package service implements prisimd: simulation-as-a-service over the
// public prisim Engine. One shared Engine backs every job, so identical
// simulation points submitted by different clients coalesce in the
// harness's singleflight cache; a bounded queue applies backpressure (429 +
// Retry-After) instead of collapsing under load; a worker pool sized to
// GOMAXPROCS executes jobs with per-job timeout, panic isolation, and
// context-propagated cancellation; and every job streams progress over SSE.
// The wire types live in prisim/prisimclient so external clients get a
// fully public API.
package service

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"prisim"
	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
	"prisim/internal/fabric"
	"prisim/prisimclient"
)

// Submission errors surfaced by Submit (the HTTP layer maps them to 429,
// 503, and 409).
var (
	ErrQueueFull = errors.New("job queue full")
	ErrDraining  = errors.New("server is draining")
	// ErrCacheKeyMismatch rejects a simulate request whose client-computed
	// cache key disagrees with the server's — almost always kernel-version
	// skew between the submitting node and this one.
	ErrCacheKeyMismatch = errors.New("cache key mismatch")
)

// AssemblyError rejects a program submission whose source failed to
// assemble; the HTTP layer maps it to 422 with the structured diagnostics
// in the body.
type AssemblyError struct {
	Diags []prisimclient.Diagnostic
	err   error
}

// Error keeps the message itself short — the structured diagnostics carry
// the positions and excerpts, so repeating the assembler's full rendering
// here would print everything twice on the client.
func (e *AssemblyError) Error() string {
	n := len(e.Diags)
	if n == 1 {
		return "program failed to assemble: 1 error"
	}
	return fmt.Sprintf("program failed to assemble: %d errors", n)
}

// Unwrap exposes the underlying assembler error.
func (e *AssemblyError) Unwrap() error { return e.err }

// LintError rejects a program submission whose static analysis found a
// provable defect (e.g. a store whose every possible address lies outside
// the program image). The HTTP layer maps it to 422 with the full
// diagnostic list — errors and the accompanying warnings — so the client
// sees everything in one round trip. Warning-only findings never produce
// a LintError; they ride along on the accepted job instead.
type LintError struct {
	Diags []prisimclient.Diagnostic
}

func (e *LintError) Error() string {
	n := 0
	for _, d := range e.Diags {
		if d.Severity == "error" {
			n++
		}
	}
	if n == 1 {
		return "program rejected by static analysis: 1 error"
	}
	return fmt.Sprintf("program rejected by static analysis: %d errors", n)
}

// ProgramLimits is the sandbox for user-submitted program jobs. Zero fields
// select the defaults; the limits bound resources only and never change a
// successful run's outcome, so they are excluded from program cache keys.
type ProgramLimits struct {
	// MaxSourceBytes bounds the assembly source size (default 1MB).
	MaxSourceBytes int
	// MaxRun caps measured instructions per program run (default 50M). A
	// request's Run 0 ("to completion") becomes exactly this cap; an
	// explicit Run above it is rejected at submit rather than clamped, so a
	// request never silently measures less than it asked for.
	MaxRun uint64
	// MaxMemoryBytes caps the simulated machine's resident footprint
	// (default 256MB), checked between instruction chunks.
	MaxMemoryBytes uint64
}

// Default program sandbox limits.
const (
	DefaultMaxProgramSource = 1 << 20   // 1MB of assembly text
	DefaultMaxProgramRun    = 50 << 20  // ~50M instructions
	DefaultMaxProgramMemory = 256 << 20 // 256MB simulated footprint
)

// withDefaults fills zero fields.
func (l ProgramLimits) withDefaults() ProgramLimits {
	if l.MaxSourceBytes <= 0 {
		l.MaxSourceBytes = DefaultMaxProgramSource
	}
	if l.MaxRun == 0 {
		l.MaxRun = DefaultMaxProgramRun
	}
	if l.MaxMemoryBytes == 0 {
		l.MaxMemoryBytes = DefaultMaxProgramMemory
	}
	return l
}

// Config sizes a Server. The zero value selects sane defaults.
type Config struct {
	// Workers bounds concurrent job execution; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting to run; <= 0 selects 4x Workers.
	// Submissions beyond queued+running capacity get 429 + Retry-After.
	QueueDepth int
	// JobTimeout bounds one job's execution (0 = no limit).
	JobTimeout time.Duration
	// Budget is the default per-run measurement budget (zero fields keep
	// the engine defaults); requests may override per job.
	Budget struct{ FastForward, Run uint64 }
	// Logger receives structured request/job logs; nil discards them.
	Logger *log.Logger
	// Engine overrides the server-built engine (tests); normally nil.
	Engine *prisim.Engine

	// Programs is the sandbox for user-submitted program jobs; zero fields
	// take the defaults (see ProgramLimits).
	Programs ProgramLimits

	// NodeID stamps ComputedBy on results this node executes; "" selects
	// "local".
	NodeID string
	// Store, when non-nil, is the durable content-addressed result store:
	// simulate jobs whose point is already recorded resolve from it without
	// touching the engine, and fresh results are appended to it.
	Store *fabric.Store
	// Coordinator, when non-nil, mounts the fabric control plane
	// (/api/v1/fabric/...) on this server's handler.
	Coordinator *fabric.Coordinator
}

// Server owns the job queue, worker pool, job registry, and metrics. Create
// one with New, expose Handler over HTTP, and stop it with Drain or Close.
type Server struct {
	cfg     Config
	engine  *prisim.Engine
	logger  *log.Logger
	metrics *metrics
	nodeID  string
	store   *fabric.Store // nil when the server runs without durability
	coord   *fabric.Coordinator

	rootCtx  context.Context // parent of every job context
	rootStop context.CancelFunc

	queue chan *job
	wg    sync.WaitGroup // workers

	mu       sync.Mutex
	jobs     map[string]*job // guarded by mu
	order    []string        // guarded by mu; insertion order for listing
	nextID   uint64          // guarded by mu
	nextReq  uint64          // guarded by mu
	running  int             // guarded by mu
	draining bool            // guarded by mu
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	cfg.Programs = cfg.Programs.withDefaults()
	eng := cfg.Engine
	if eng == nil {
		eng = prisim.NewEngine(
			prisim.WithBudget(cfg.Budget.FastForward, cfg.Budget.Run),
			prisim.WithParallelism(cfg.Workers),
		)
	}
	//lint:ignore ctxcheck the server owns this lifecycle root: every job context derives from it and Close/Drain cancel it
	ctx, stop := context.WithCancel(context.Background())
	nodeID := cfg.NodeID
	if nodeID == "" {
		nodeID = "local"
	}
	s := &Server{
		cfg:      cfg,
		engine:   eng,
		logger:   cfg.Logger,
		metrics:  newMetrics(),
		nodeID:   nodeID,
		store:    cfg.Store,
		coord:    cfg.Coordinator,
		rootCtx:  ctx,
		rootStop: stop,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Engine exposes the shared engine (tests compare service results against
// direct calls on the very same cache).
func (s *Server) Engine() *prisim.Engine { return s.engine }

// logf writes one structured log line if a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// Submit validates req, registers a job, and enqueues it. It returns
// ErrQueueFull when the queue is at capacity and ErrDraining after Drain or
// Close began.
func (s *Server) Submit(req prisimclient.JobRequest) (*job, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Validate names up front so a bad request fails at submit, not inside
	// a worker.
	var checked *checkedProgram
	if req.Kind == prisimclient.KindProgram {
		var err error
		if checked, err = s.assembleRequest(&req); err != nil {
			return nil, err
		}
	}
	if req.Kind == prisimclient.KindSimulate {
		if _, err := prisim.MachineJSON(req.Options()); err != nil {
			return nil, err
		}
		found := false
		for _, b := range prisim.Benchmarks() {
			if b.Name == req.Benchmark {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown benchmark %q", req.Benchmark)
		}
	} else if req.Kind == prisimclient.KindExperiment {
		found := false
		for _, name := range prisim.ExperimentNames() {
			if name == req.Experiment {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown experiment %q", req.Experiment)
		}
	}

	// Content-address the point: resolve the effective budget (request, then
	// server config, then the universal defaults inside CacheKeyFor) and hash
	// it. A client-supplied key must agree — a mismatch means the client
	// hashed different inputs than this node will simulate, almost always
	// kernel-version skew, and trusting it would poison every store keyed on
	// the hash.
	var cacheKey, imageHash string
	switch req.Kind {
	case prisimclient.KindSimulate:
		eff := req
		if eff.FastForward == 0 {
			eff.FastForward = s.cfg.Budget.FastForward
		}
		if eff.Run == 0 {
			eff.Run = s.cfg.Budget.Run
		}
		cacheKey = prisimclient.CacheKeyFor(prisim.Version, eff)
		if req.CacheKey != "" && req.CacheKey != cacheKey {
			return nil, fmt.Errorf("%w: client sent %.12s..., server (kernel %s) computes %.12s...",
				ErrCacheKeyMismatch, req.CacheKey, prisim.Version, cacheKey)
		}
	case prisimclient.KindProgram:
		// Programs key on the assembled image's content hash, not the
		// source text, with the budget resolved to what will actually run
		// (Run 0 = the sandbox instruction cap).
		imageHash = checked.prog.SHA256()
		eff := req
		if eff.Run == 0 {
			eff.Run = s.cfg.Programs.MaxRun
		}
		cacheKey = prisimclient.CacheKeyForProgram(prisim.Version, imageHash, eff)
		if req.CacheKey != "" && req.CacheKey != cacheKey {
			return nil, fmt.Errorf("%w: client sent %.12s..., server (kernel %s) computes %.12s...",
				ErrCacheKeyMismatch, req.CacheKey, prisim.Version, cacheKey)
		}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, req, s.rootCtx, time.Now())
	j.cacheKey = cacheKey
	j.imageHash = imageHash
	if checked != nil {
		j.prog = checked.prog
		j.warnings = checked.warnings
	}
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		j.cancel()
		s.metrics.incRejected()
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.metrics.incSubmitted()
	s.logf("job=%s state=queued kind=%s bench=%q experiment=%q", id, req.Kind, req.Benchmark, req.Experiment)
	return j, nil
}

// checkedProgram is a program submission that survived assembly and the
// priscan static analysis: the image plus the warning-severity findings
// and the inlinability summary, all computed once at submit time.
type checkedProgram struct {
	prog         *asm.Program
	warnings     []prisimclient.Diagnostic
	inlinability prisimclient.Inlinability
}

// assembleRequest enforces the program sandbox's submit-time limits,
// assembles the source, and runs the priscan analyzers over the image,
// recording the outcomes in the program metrics. An assembly failure
// returns *AssemblyError and an analysis finding of error severity
// returns *LintError, so the HTTP layer can answer 422 with every
// positioned diagnostic; in both cases no engine run is ever dispatched.
// Warning findings never reject: they come back on the checkedProgram.
func (s *Server) assembleRequest(req *prisimclient.JobRequest) (*checkedProgram, error) {
	lim := s.cfg.Programs
	if len(req.Source) > lim.MaxSourceBytes {
		return nil, fmt.Errorf("program source is %d bytes; limit %d", len(req.Source), lim.MaxSourceBytes)
	}
	if req.Run > lim.MaxRun {
		return nil, fmt.Errorf("program run budget %d exceeds the server cap %d", req.Run, lim.MaxRun)
	}
	if _, err := prisim.MachineJSON(req.Options()); err != nil {
		return nil, err
	}
	prog, err := asm.AssembleFile("program.s", string(req.Source))
	if err != nil {
		s.metrics.incProgramAssemblyError()
		return nil, &AssemblyError{Diags: wireDiags(asm.Diagnostics(err)), err: err}
	}
	s.metrics.incProgramAssembled()

	rep := analysis.Analyze(prog, analysis.Options{})
	diags := rep.Diagnostics(prog, "program.s", string(req.Source))
	nerrors := 0
	for _, d := range diags {
		if d.Severity == analysis.SevError.String() {
			nerrors++
		}
	}
	if nerrors > 0 {
		s.metrics.incProgramLintRejected()
		return nil, &LintError{Diags: wireLintDiags(diags)}
	}
	s.metrics.addProgramLintWarnings(len(diags))
	inl := rep.Inlinability
	return &checkedProgram{
		prog:     prog,
		warnings: wireLintDiags(diags),
		inlinability: prisimclient.Inlinability{
			NarrowBits:   inl.NarrowBits,
			Defs:         inl.Defs,
			Narrow:       inl.Narrow,
			Wide:         inl.Wide,
			Unknown:      inl.Unknown,
			FPDefs:       inl.FPDefs,
			StaticFrac:   inl.StaticFrac,
			WeightedFrac: inl.WeightedFrac,
		},
	}, nil
}

// wireDiags converts assembler diagnostics to the client wire type.
func wireDiags(ds []asm.Diagnostic) []prisimclient.Diagnostic {
	out := make([]prisimclient.Diagnostic, len(ds))
	for i, d := range ds {
		out[i] = prisimclient.Diagnostic{File: d.File, Line: d.Line, Col: d.Col, Msg: d.Msg, Excerpt: d.Excerpt}
	}
	return out
}

// wireLintDiags converts priscan diagnostics to the client wire type.
func wireLintDiags(ds []analysis.Diag) []prisimclient.Diagnostic {
	out := make([]prisimclient.Diagnostic, len(ds))
	for i, d := range ds {
		out[i] = prisimclient.Diagnostic{
			File: d.File, Line: d.Line, Col: d.Col, Msg: d.Msg, Excerpt: d.Excerpt,
			Analyzer: d.Analyzer, Severity: d.Severity, Addr: d.Addr,
		}
	}
	return out
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// listJobs snapshots every tracked job, oldest first.
func (s *Server) listJobs() []prisimclient.Job {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]prisimclient.Job, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// worker pulls jobs until the queue closes (Drain) or the root context dies
// (Close).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation: a panicking simulation
// fails the job, not the process.
func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil || !j.start(time.Now()) {
		// Cancelled while queued (requestCancel already resolved it), or
		// the server is shutting down hard.
		j.finish(prisimclient.StateCancelled, "cancelled while queued", time.Now())
		s.settle(j)
		return
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
		if p := recover(); p != nil {
			s.metrics.incPanics()
			s.logf("job=%s panic=%v\n%s", j.id, p, debug.Stack())
			j.finish(prisimclient.StateFailed, fmt.Sprintf("internal error: panic: %v", p), time.Now())
			s.settle(j)
		}
	}()

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	eng := s.engine.ProgressView(j.setProgress)

	var err error
	started := time.Now()
	switch j.req.Kind {
	case prisimclient.KindSimulate:
		if s.store != nil {
			if e, ok := s.store.Get(j.cacheKey); ok {
				// Warm in the durable store: the result is a pure function of
				// the hashed inputs, so serve it without touching the engine.
				res := e.Result
				j.setComputedBy(e.ComputedBy)
				j.setProgress(1, 1)
				j.setResult(&res, nil)
				s.metrics.incStoreHit()
				break
			}
		}
		var res prisim.Result
		res, err = eng.Simulate(ctx, j.req.Options())
		if err == nil {
			j.setComputedBy(s.nodeID)
			j.setResult(&res, nil)
			s.metrics.observeSimulate(res.Committed, time.Since(started))
			if s.store != nil {
				if perr := s.store.Put(fabric.Entry{
					Key: j.cacheKey, Kernel: prisim.Version, ComputedBy: s.nodeID,
					Created: time.Now(), Request: j.req, Result: res,
				}); perr != nil {
					s.logf("job=%s store append failed: %v", j.id, perr)
				}
			}
		}
	case prisimclient.KindExperiment:
		var tables []prisim.Table
		tables, err = eng.ExperimentTables(ctx, j.req.Experiment, j.req.Options())
		if err == nil {
			j.setResult(nil, tables)
		}
	case prisimclient.KindProgram:
		if s.store != nil {
			if e, ok := s.store.Get(j.cacheKey); ok {
				res := e.Result
				j.setComputedBy(e.ComputedBy)
				j.setProgress(1, 1)
				j.setResult(&res, nil)
				j.setOutput(e.Output)
				s.metrics.incStoreHit()
				break
			}
		}
		opts := j.req.Options()
		if opts.Run == 0 {
			opts.Run = s.cfg.Programs.MaxRun
		}
		opts.MemLimit = s.cfg.Programs.MaxMemoryBytes
		var pres prisim.ProgramResult
		pres, err = s.engine.SimulateProgram(ctx, prisim.NewProgram(j.prog), opts)
		if err == nil {
			j.setComputedBy(s.nodeID)
			j.setProgress(1, 1)
			j.setResult(&pres.Result, nil)
			j.setOutput(pres.Output)
			s.metrics.observeSimulate(pres.Committed, time.Since(started))
			if s.store != nil {
				if perr := s.store.Put(fabric.Entry{
					Key: j.cacheKey, Kernel: prisim.Version, ComputedBy: s.nodeID,
					Created: time.Now(), Request: j.req, Result: pres.Result, Output: pres.Output,
				}); perr != nil {
					s.logf("job=%s store append failed: %v", j.id, perr)
				}
			}
		}
	default:
		err = fmt.Errorf("unknown job kind %q", j.req.Kind)
	}

	now := time.Now()
	switch {
	case err == nil:
		j.finish(prisimclient.StateDone, "", now)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(prisimclient.StateFailed, fmt.Sprintf("job exceeded timeout %s", s.cfg.JobTimeout), now)
	case errors.Is(err, context.Canceled):
		reason := "cancelled"
		if !j.cancelRequested() {
			reason = "cancelled by server shutdown"
		}
		j.finish(prisimclient.StateCancelled, reason, now)
	default:
		j.finish(prisimclient.StateFailed, err.Error(), now)
	}
	s.settle(j)
}

// settle records terminal-state metrics and the job log line once.
func (s *Server) settle(j *job) {
	v := j.view()
	if !v.State.Terminal() {
		return
	}
	s.metrics.observeTerminal(v.State, v.Finished.Sub(v.Created))
	s.logf("job=%s state=%s latency=%s error=%q", j.id, v.State, v.Finished.Sub(v.Created).Round(time.Millisecond), v.Error)
}

// Draining reports whether Drain/Close has begun (readyz turns 503).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// beginDrain idempotently stops intake and closes the queue so workers exit
// once it empties.
func (s *Server) beginDrain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
}

// Drain gracefully shuts the worker pool down: new submissions are refused,
// queued and running jobs keep executing, and when ctx expires every
// remaining job's context is cancelled (jobs observe it between instruction
// chunks and resolve as cancelled). Drain returns once all workers exited;
// the error reports whether the deadline forced cancellation.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll("cancelled by drain deadline")
		<-done
		return fmt.Errorf("drain deadline reached: in-flight jobs were cancelled: %w", ctx.Err())
	}
}

// Close shuts down immediately: intake stops and every live job is
// cancelled. It blocks until the workers exit.
func (s *Server) Close() {
	s.beginDrain()
	s.cancelAll("cancelled by server shutdown")
	s.rootStop()
	s.wg.Wait()
}

// cancelAll cancels every non-terminal job's context.
func (s *Server) cancelAll(reason string) {
	s.mu.Lock()
	live := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		live = append(live, j)
	}
	s.mu.Unlock()
	for _, j := range live {
		if !j.stateNow().Terminal() {
			s.logf("job=%s %s", j.id, reason)
			j.cancel()
		}
	}
}
