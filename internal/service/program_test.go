package service

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"prisim"
	"prisim/internal/fabric"
	"prisim/prisimclient"
)

// e2eProgram exercises the whole v2 frontend in one source: equated
// constant expressions, a parameterized macro with a local label (\@),
// interleaved .data/.text sections, and console output via putc.
const e2eProgram = `; end-to-end service test program
.equ COUNT, 2*3+1          ; 7 letters
.equ BASE, 65              ; 'A'

.data
greet: .asciz "prisim:"

.macro emitc val
  li r9, \val
  putc r9
.endm

.text
main:
  la   r1, greet
strloop:
  ldbu r2, 0(r1)
  beqz r2, letters

.data
pad: .space 16             ; interleaved data between text runs

.text
  putc r2
  addi r1, r1, 1
  j strloop
letters:
  li   r3, 0
lloop:
  addi r4, r3, BASE
  putc r4
  addi r3, r3, 1
  li   r5, COUNT
  bne  r3, r5, lloop
  emitc 10                 ; newline
  halt
`

// TestEndToEndProgramByteIdentical submits a user program over HTTP,
// follows its SSE stream to completion, and requires the result and console
// output to be byte-identical to Engine.SimulateProgram run locally on the
// same source.
func TestEndToEndProgramByteIdentical(t *testing.T) {
	srv, c := boot(t, Config{Workers: 2})

	j, err := c.SubmitProgram(bg, []byte(e2eProgram), prisimclient.JobRequest{Run: tinyRun})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Stream(bg, j.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	res, err := c.Result(bg, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result == nil {
		t.Fatal("program job finished without a result")
	}

	prog, err := prisim.AssembleFile("program.s", e2eProgram)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Engine().SimulateProgram(bg, prog, prisim.Options{
		Run:      tinyRun,
		MemLimit: DefaultMaxProgramMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*res.Result, want.Result) {
		t.Errorf("service result = %+v, want %+v", *res.Result, want.Result)
	}
	if !bytes.Equal(res.Output, want.Output) {
		t.Errorf("service output = %q, want %q", res.Output, want.Output)
	}
	if !bytes.HasPrefix(res.Output, []byte("prisim:ABCDEFG\n")) {
		t.Errorf("console output = %q, want prefix %q", res.Output, "prisim:ABCDEFG\n")
	}
}

// TestProgramResubmissionServedFromStore pins the caching contract: a warm
// resubmission of the same image + budget must resolve from the durable
// store with zero new engine runs, preserving the original provenance.
func TestProgramResubmissionServedFromStore(t *testing.T) {
	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	_, c := boot(t, Config{Workers: 1, NodeID: "prog-node", Store: st})

	run := func() *prisimclient.JobResult {
		t.Helper()
		j, err := c.SubmitProgram(bg, []byte(e2eProgram), prisimclient.JobRequest{Run: tinyRun})
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Wait(bg, j.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != prisimclient.StateDone {
			t.Fatalf("job state = %s (%s)", final.State, final.Error)
		}
		res, err := c.Result(bg, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run()
	// prisimd_sim_committed_instructions_total only advances when a job
	// actually dispatches the engine, so a frozen counter across the second
	// run proves the store answered it without simulating.
	page1, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	committedAfterFirst := metricValue(t, page1, "prisimd_sim_committed_instructions_total")
	second := run()

	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, page, "prisimd_sim_committed_instructions_total"); got != committedAfterFirst {
		t.Errorf("warm resubmission dispatched the engine: committed %g -> %g", committedAfterFirst, got)
	}
	if first.ComputedBy != "prog-node" || second.ComputedBy != "prog-node" {
		t.Errorf("ComputedBy = (%q, %q), want provenance preserved on both", first.ComputedBy, second.ComputedBy)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Error("store-served result differs from the computed one")
	}
	if !bytes.Equal(first.Output, second.Output) {
		t.Errorf("store-served output %q differs from computed %q", second.Output, first.Output)
	}
	if st.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", st.Len())
	}
	if got := metricValue(t, page, "prisimd_jobs_store_served_total"); got != 1 {
		t.Errorf("prisimd_jobs_store_served_total = %g, want 1", got)
	}
	if got := metricValue(t, page, "prisimd_programs_assembled_total"); got != 2 {
		t.Errorf("prisimd_programs_assembled_total = %g, want 2", got)
	}
}

// badProgram fails to assemble with (at least) two independent errors on
// different lines, so the 422 body must carry both diagnostics.
const badProgram = `main:
  addi r1, r99, 1        ; bad register
  frob r1, r2            ; unknown mnemonic
  halt
`

// TestProgramSubmit422Diagnostics requires assembly failures to answer 422
// with every positioned diagnostic, on both the submit and check paths.
func TestProgramSubmit422Diagnostics(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	checkDiags := func(t *testing.T, err error) {
		t.Helper()
		if !errors.Is(err, prisimclient.ErrAssembly) {
			t.Fatalf("err = %v, want ErrAssembly (422)", err)
		}
		var apiErr *prisimclient.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v, want *APIError", err)
		}
		if len(apiErr.Diagnostics) < 2 {
			t.Fatalf("got %d diagnostics, want >= 2: %v", len(apiErr.Diagnostics), apiErr.Diagnostics)
		}
		for i, d := range apiErr.Diagnostics {
			if d.File != "program.s" || d.Line <= 0 || d.Col <= 0 || d.Msg == "" {
				t.Errorf("diagnostic %d = %+v, want positioned program.s:line:col with a message", i, d)
			}
		}
		if apiErr.Diagnostics[0].Line == apiErr.Diagnostics[1].Line {
			t.Errorf("both diagnostics on line %d, want independent errors", apiErr.Diagnostics[0].Line)
		}
	}

	_, err := c.SubmitProgram(bg, []byte(badProgram), prisimclient.JobRequest{})
	checkDiags(t, err)

	_, err = c.CheckProgram(bg, []byte(badProgram))
	checkDiags(t, err)
}

// TestProgramCheckEndpoint verifies the dry-run endpoint reports the image
// identity a submission would be keyed on.
func TestProgramCheckEndpoint(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	info, err := c.CheckProgram(bg, []byte(e2eProgram))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.SHA256) != 64 || strings.Trim(info.SHA256, "0123456789abcdef") != "" {
		t.Errorf("SHA256 = %q, want 64 hex chars", info.SHA256)
	}
	if info.CodeWords == 0 || info.DataSegments == 0 || info.DataBytes == 0 {
		t.Errorf("info = %+v, want nonzero code and data", info)
	}

	prog, err := prisim.AssembleFile("program.s", e2eProgram)
	if err != nil {
		t.Fatal(err)
	}
	if prog.SHA256() != info.SHA256 {
		t.Errorf("check SHA256 = %s, local assembly = %s", info.SHA256, prog.SHA256())
	}
}

// TestProgramRunBudgetCap pins the sandbox rule: a run budget above the
// server cap is rejected outright (400), never silently clamped.
func TestProgramRunBudgetCap(t *testing.T) {
	_, c := boot(t, Config{Workers: 1, Programs: ProgramLimits{MaxRun: 1000}})

	_, err := c.SubmitProgram(bg, []byte(e2eProgram), prisimclient.JobRequest{Run: 2000})
	var apiErr *prisimclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "cap") {
		t.Errorf("error %q does not mention the cap", apiErr.Message)
	}

	// At or below the cap the job runs; Run 0 resolves to the cap.
	j, err := c.SubmitProgram(bg, []byte(e2eProgram), prisimclient.JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
}

// TestProgramMemLimitFails pins the footprint sandbox: a program that
// touches more simulated memory than the server allows fails cleanly.
func TestProgramMemLimitFails(t *testing.T) {
	_, c := boot(t, Config{Workers: 1, Programs: ProgramLimits{MaxMemoryBytes: 64 << 10}})

	// Walk stores across 16 MiB so the footprint blows the 64 KiB cap.
	const hog = `main:
  li r1, 4096
  li r2, 16777216
loop:
  stq r1, 0(r2)
  addi r2, r2, 8192
  addi r1, r1, -1
  bnez r1, loop
  halt
`
	j, err := c.SubmitProgram(bg, []byte(hog), prisimclient.JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateFailed {
		t.Fatalf("job state = %s, want failed (mem limit)", final.State)
	}
	if !strings.Contains(final.Error, "memory limit") {
		t.Errorf("error %q does not mention the memory limit", final.Error)
	}
}
