package service

import (
	"context"
	"sync"
	"time"

	"prisim"
	"prisim/internal/asm"
	"prisim/prisimclient"
)

// job is the server-side state of one submitted request. The exported view
// (prisimclient.Job) is produced under the job's lock by view().
type job struct {
	id       string
	req      prisimclient.JobRequest
	cacheKey string // content hash of a simulate point or program run; "" for experiments; set before enqueue, immutable after

	// Program jobs only; assembled and analyzed at submit, immutable after.
	prog      *asm.Program
	imageHash string
	warnings  []prisimclient.Diagnostic // priscan warning findings

	ctx    context.Context    // derived from the server's root context
	cancel context.CancelFunc // DELETE and drain-deadline both land here

	mu        sync.Mutex
	state     prisimclient.JobState // guarded by mu
	errMsg    string                // guarded by mu
	done, tot int                   // guarded by mu; progress: resolved / requested simulation points
	created   time.Time             // guarded by mu
	started   time.Time             // guarded by mu
	finished  time.Time             // guarded by mu
	result     *prisim.Result // guarded by mu; simulate and program jobs
	tables     []prisim.Table // guarded by mu; experiment jobs
	output     []byte         // guarded by mu; program console output
	computedBy string         // guarded by mu; node that produced the result
	subs      map[chan prisimclient.Event]struct{} // guarded by mu
	doneCh    chan struct{} // closed when the job reaches a terminal state
	cancelAsk bool          // guarded by mu; DELETE arrived (distinguishes cancel from timeout)
}

func newJob(id string, req prisimclient.JobRequest, parent context.Context, now time.Time) *job {
	ctx, cancel := context.WithCancel(parent)
	return &job{
		id:      id,
		req:     req,
		ctx:     ctx,
		cancel:  cancel,
		state:   prisimclient.StateQueued,
		created: now,
		subs:    make(map[chan prisimclient.Event]struct{}),
		doneCh:  make(chan struct{}),
	}
}

// view snapshots the job for JSON responses.
func (j *job) view() prisimclient.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *job) viewLocked() prisimclient.Job {
	return prisimclient.Job{
		ID:            j.id,
		Request:       j.req,
		State:         j.state,
		Error:         j.errMsg,
		Progress:      prisimclient.Progress{Done: j.done, Total: j.tot},
		Created:       j.created,
		Started:       j.started,
		Finished:      j.finished,
		KernelVersion: prisim.Version,
		CacheKey:      j.cacheKey,
		ComputedBy:    j.computedBy,
		Warnings:      j.warnings,
	}
}

// event builds an SSE event for the job's current state. Callers hold j.mu.
func (j *job) eventLocked(typ string) prisimclient.Event {
	return prisimclient.Event{
		Type:     typ,
		JobID:    j.id,
		State:    j.state,
		Error:    j.errMsg,
		Progress: prisimclient.Progress{Done: j.done, Total: j.tot},
	}
}

// publishLocked fans an event out to subscribers without blocking: a
// subscriber whose buffer is full misses intermediate events but never the
// final state, because SSE streams watch doneCh as well.
func (j *job) publishLocked(ev prisimclient.Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers an SSE listener and returns its channel, a snapshot
// event to send first, and an unsubscribe func.
func (j *job) subscribe() (ch chan prisimclient.Event, first prisimclient.Event, unsub func()) {
	ch = make(chan prisimclient.Event, 64)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	first = j.eventLocked("state")
	j.mu.Unlock()
	return ch, first, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// setProgress updates the run counters and notifies subscribers.
func (j *job) setProgress(done, total int) {
	j.mu.Lock()
	j.done, j.tot = done, total
	j.publishLocked(j.eventLocked("progress"))
	j.mu.Unlock()
}

// start moves queued -> running; it fails if the job was cancelled while
// queued.
func (j *job) start(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != prisimclient.StateQueued {
		return false
	}
	j.state = prisimclient.StateRunning
	j.started = now
	j.publishLocked(j.eventLocked("state"))
	return true
}

// finish moves the job to a terminal state exactly once; later calls are
// ignored (e.g. a cancel racing the worker's own completion).
func (j *job) finish(state prisimclient.JobState, errMsg string, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = now
	j.publishLocked(j.eventLocked("state"))
	close(j.doneCh)
	return true
}

// requestCancel is the DELETE path: cancel the context and, if the job is
// still queued, resolve it to cancelled immediately (a worker that later
// pops it will skip it).
func (j *job) requestCancel(now time.Time) {
	j.mu.Lock()
	j.cancelAsk = true
	queued := j.state == prisimclient.StateQueued
	j.mu.Unlock()
	j.cancel()
	if queued {
		j.finish(prisimclient.StateCancelled, "cancelled while queued", now)
	}
}

// cancelRequested reports whether a DELETE arrived for the job.
func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelAsk
}

// setComputedBy records which node's engine produced the job's result.
func (j *job) setComputedBy(node string) {
	j.mu.Lock()
	j.computedBy = node
	j.mu.Unlock()
}

// setResult stores a finished job's payload (before finish flips the state).
func (j *job) setResult(res *prisim.Result, tables []prisim.Table) {
	j.mu.Lock()
	j.result = res
	j.tables = tables
	j.mu.Unlock()
}

// setOutput stores a program job's console output.
func (j *job) setOutput(out []byte) {
	j.mu.Lock()
	j.output = out
	j.mu.Unlock()
}

// payload returns the stored result, output, and provenance (valid once
// state == done).
func (j *job) payload() (*prisim.Result, []prisim.Table, []byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.tables, j.output, j.computedBy
}

// stateNow returns the current state.
func (j *job) stateNow() prisimclient.JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
