package service

import (
	"errors"
	"strings"
	"testing"

	"prisim/prisimclient"
)

// oobProgram stores through a constant address that is provably outside
// every region of the image — the one class of finding priscan grades as
// an error and the submit path must reject.
const oobProgram = `main:
  li  r1, 0x500000
  stq r1, 0(r1)          ; lost: 0x500000 is no code, data, or stack
  halt
`

// warnProgram reads r1 before any write (a warning-severity finding) but
// is otherwise a perfectly runnable program.
const warnProgram = `main:
  add r3, r1, r0
  stq r3, 0(sp)
  halt
`

// TestLintRejectsProvableError pins the gate: a program with a provable
// out-of-image store is rejected at submit with 422 and a positioned
// error diagnostic, and the engine is never dispatched.
func TestLintRejectsProvableError(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	checkReject := func(t *testing.T, err error) {
		t.Helper()
		if !errors.Is(err, prisimclient.ErrAssembly) {
			t.Fatalf("err = %v, want 422 (ErrAssembly)", err)
		}
		var apiErr *prisimclient.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v, want *APIError", err)
		}
		if !strings.Contains(apiErr.Message, "static analysis") {
			t.Errorf("message %q does not name static analysis", apiErr.Message)
		}
		found := false
		for _, d := range apiErr.Diagnostics {
			if d.Analyzer == "membounds" && d.Severity == "error" {
				found = true
				if d.File != "program.s" || d.Line != 3 || d.Col <= 0 {
					t.Errorf("diagnostic %+v, want positioned at program.s:3", d)
				}
				if !strings.Contains(d.Msg, "outside the program image") {
					t.Errorf("msg %q does not explain the lost store", d.Msg)
				}
			}
		}
		if !found {
			t.Fatalf("no membounds error diagnostic in %v", apiErr.Diagnostics)
		}
	}

	_, err := c.SubmitProgram(bg, []byte(oobProgram), prisimclient.JobRequest{})
	checkReject(t, err)

	// The dry-run endpoint rejects identically.
	_, err = c.CheckProgram(bg, []byte(oobProgram))
	checkReject(t, err)

	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, page, "prisimd_programs_lint_rejected_total"); got != 2 {
		t.Errorf("prisimd_programs_lint_rejected_total = %g, want 2", got)
	}
	if got := metricValue(t, page, "prisimd_jobs_submitted_total"); got != 0 {
		t.Errorf("rejected program was enqueued: submitted = %g, want 0", got)
	}
	if got := metricValue(t, page, "prisimd_sim_committed_instructions_total"); got != 0 {
		t.Errorf("rejected program dispatched the engine: committed = %g", got)
	}
}

// TestLintWarningsRideAlong pins the warn path: a program with only
// warning findings runs to completion, and the warnings appear on the
// accepted job, on its status view, and on the dry-run response together
// with the inlinability summary.
func TestLintWarningsRideAlong(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	wantWarning := func(t *testing.T, ws []prisimclient.Diagnostic) {
		t.Helper()
		if len(ws) != 1 {
			t.Fatalf("warnings = %v, want exactly 1", ws)
		}
		w := ws[0]
		if w.Analyzer != "defuse" || w.Severity != "warning" || w.Line != 2 {
			t.Errorf("warning = %+v, want defuse warning at line 2", w)
		}
		if !strings.Contains(w.Msg, "read before it is written") {
			t.Errorf("msg %q does not describe the uninitialized read", w.Msg)
		}
	}

	j, err := c.SubmitProgram(bg, []byte(warnProgram), prisimclient.JobRequest{})
	if err != nil {
		t.Fatal(err)
	}
	wantWarning(t, j.Warnings)
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("job state = %s (%s), want done despite warnings", final.State, final.Error)
	}
	wantWarning(t, final.Warnings)

	info, err := c.CheckProgram(bg, []byte(warnProgram))
	if err != nil {
		t.Fatal(err)
	}
	wantWarning(t, info.Warnings)
	if info.Inlinability == nil || info.Inlinability.Defs == 0 || info.Inlinability.NarrowBits == 0 {
		t.Errorf("inlinability = %+v, want a populated summary", info.Inlinability)
	}

	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, page, "prisimd_programs_lint_warnings_total"); got != 2 {
		t.Errorf("prisimd_programs_lint_warnings_total = %g, want 2 (submit + check)", got)
	}
	if got := metricValue(t, page, "prisimd_programs_lint_rejected_total"); got != 0 {
		t.Errorf("prisimd_programs_lint_rejected_total = %g, want 0", got)
	}
}

// TestLintSuppressionOverTheWire pins that a ;lint:ignore annotation in
// submitted source suppresses the finding server-side — including an
// error finding, which converts a rejection into an accepted job (the
// author has explicitly taken responsibility for the store).
func TestLintSuppressionOverTheWire(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	const suppressedWarn = `main:
  add r3, r1, r0 ;lint:ignore defuse r1 is the loader's zero on purpose
  stq r3, 0(sp)
  halt
`
	info, err := c.CheckProgram(bg, []byte(suppressedWarn))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Warnings) != 0 {
		t.Errorf("warnings = %v, want suppressed", info.Warnings)
	}

	const suppressedErr = `main:
  li  r1, 0x500000
  stq r1, 0(r1) ;lint:ignore membounds deliberately writing to the void
  halt
`
	j, err := c.SubmitProgram(bg, []byte(suppressedErr), prisimclient.JobRequest{})
	if err != nil {
		t.Fatalf("suppressed error still rejected: %v", err)
	}
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
}
