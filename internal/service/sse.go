package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"prisim/prisimclient"
)

// heartbeatEvery keeps idle SSE connections alive through proxies.
const heartbeatEvery = 15 * time.Second

// handleEvents streams a job's lifecycle as Server-Sent Events: an initial
// "state" snapshot, "progress" events as simulation points resolve, and a
// final "state" event at the terminal state, after which the stream closes.
// Dropped intermediate events are tolerated by design — the final state is
// delivered via the job's done channel, never the subscriber buffer.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ch, first, unsub := j.subscribe()
	defer unsub()

	send := func(ev prisimclient.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send(first) {
		return
	}
	if first.Type == "state" && first.State.Terminal() {
		return
	}

	hb := time.NewTicker(heartbeatEvery)
	defer hb.Stop()
	for {
		select {
		case ev := <-ch:
			if !send(ev) {
				return
			}
			if ev.Type == "state" && ev.State.Terminal() {
				return
			}
		case <-j.doneCh:
			// Drain anything buffered, then emit the authoritative final
			// snapshot.
			for {
				select {
				case ev := <-ch:
					if ev.Type == "state" && ev.State.Terminal() {
						send(ev)
						return
					}
					if !send(ev) {
						return
					}
				default:
					j.mu.Lock()
					final := j.eventLocked("state")
					j.mu.Unlock()
					send(final)
					return
				}
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
