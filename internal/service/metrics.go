package service

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"prisim"
	"prisim/prisimclient"
)

// latencyWindow bounds the job-latency sample ring the quantiles are
// computed over; old samples age out once the window wraps.
const latencyWindow = 1024

// metrics is the server's observability state. All methods are safe for
// concurrent use; rendering takes one snapshot under the lock.
type metrics struct {
	mu sync.Mutex

	submitted    uint64 // guarded by mu
	rejected     uint64 // guarded by mu; 429: queue full
	httpRequests uint64 // guarded by mu

	terminal map[prisimclient.JobState]uint64 // guarded by mu; done/failed/cancelled counts
	panics   uint64                           // guarded by mu
	storeHit uint64                           // guarded by mu; simulate/program jobs served from the durable store

	programsAssembled     uint64 // guarded by mu; program sources that assembled cleanly
	programAssemblyErrors uint64 // guarded by mu; program sources rejected with diagnostics
	programLintWarnings   uint64 // guarded by mu; priscan warning findings on accepted programs
	programLintRejected   uint64 // guarded by mu; programs rejected by priscan error findings

	latencies []time.Duration // guarded by mu; ring of recent terminal job latencies
	latNext   int             // guarded by mu

	simSeconds   float64 // guarded by mu; wall-clock spent inside completed simulate jobs
	simCommitted uint64  // guarded by mu; instructions committed by completed simulate jobs
}

func newMetrics() *metrics {
	return &metrics{terminal: make(map[prisimclient.JobState]uint64)}
}

func (m *metrics) incSubmitted()   { m.mu.Lock(); m.submitted++; m.mu.Unlock() }
func (m *metrics) incRejected()    { m.mu.Lock(); m.rejected++; m.mu.Unlock() }
func (m *metrics) incHTTPRequest() { m.mu.Lock(); m.httpRequests++; m.mu.Unlock() }
func (m *metrics) incPanics()      { m.mu.Lock(); m.panics++; m.mu.Unlock() }
func (m *metrics) incStoreHit()    { m.mu.Lock(); m.storeHit++; m.mu.Unlock() }

func (m *metrics) incProgramAssembled()     { m.mu.Lock(); m.programsAssembled++; m.mu.Unlock() }
func (m *metrics) incProgramAssemblyError() { m.mu.Lock(); m.programAssemblyErrors++; m.mu.Unlock() }
func (m *metrics) incProgramLintRejected()  { m.mu.Lock(); m.programLintRejected++; m.mu.Unlock() }

func (m *metrics) addProgramLintWarnings(n int) {
	m.mu.Lock()
	m.programLintWarnings += uint64(n)
	m.mu.Unlock()
}

// observeTerminal records a job reaching a terminal state after latency
// (measured from submit so queueing delay counts — that is what a client
// experiences under backpressure).
func (m *metrics) observeTerminal(state prisimclient.JobState, latency time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.terminal[state]++
	if len(m.latencies) < latencyWindow {
		m.latencies = append(m.latencies, latency)
	} else {
		m.latencies[m.latNext] = latency
		m.latNext = (m.latNext + 1) % latencyWindow
	}
}

// observeSimulate feeds the throughput gauge from one finished simulate job.
func (m *metrics) observeSimulate(committed uint64, busy time.Duration) {
	m.mu.Lock()
	m.simCommitted += committed
	m.simSeconds += busy.Seconds()
	m.mu.Unlock()
}

// quantile returns the q-quantile (0..1) of the recorded latencies, in
// seconds, using the nearest-rank method on a sorted copy.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// storeSample is a point-in-time snapshot of the durable result store for
// the metrics page; present is false on servers running without one.
type storeSample struct {
	present      bool
	entries      int
	hits, misses uint64
}

// render writes the metrics page in Prometheus text exposition format.
// queueDepth/queueCap/running/jobsTracked/store are sampled by the caller;
// cache comes from the shared Engine.
func (m *metrics) render(sb *strings.Builder, cache prisim.CacheStats, queueDepth, queueCap, running, jobsTracked int, draining bool, store storeSample) {
	m.mu.Lock()
	submitted, rejected, httpReqs, panics := m.submitted, m.rejected, m.httpRequests, m.panics
	storeHit := m.storeHit
	progOK, progErr := m.programsAssembled, m.programAssemblyErrors
	lintWarn, lintRej := m.programLintWarnings, m.programLintRejected
	terminal := make(map[prisimclient.JobState]uint64, len(m.terminal))
	for k, v := range m.terminal {
		terminal[k] = v
	}
	lats := make([]float64, len(m.latencies))
	for i, d := range m.latencies {
		lats[i] = d.Seconds()
	}
	simCommitted, simSeconds := m.simCommitted, m.simSeconds
	m.mu.Unlock()

	sort.Float64s(lats)
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gaugeF := func(name, help string, v float64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(sb, "# HELP prisimd_build_info Build metadata.\n# TYPE prisimd_build_info gauge\nprisimd_build_info{version=%q} 1\n", prisim.Version)
	counter("prisimd_jobs_submitted_total", "Jobs accepted into the queue.", submitted)
	counter("prisimd_jobs_rejected_total", "Submissions rejected with 429 (queue full).", rejected)
	sb.WriteString("# HELP prisimd_jobs_total Jobs that reached a terminal state, by state.\n# TYPE prisimd_jobs_total counter\n")
	for _, st := range []prisimclient.JobState{prisimclient.StateDone, prisimclient.StateFailed, prisimclient.StateCancelled} {
		fmt.Fprintf(sb, "prisimd_jobs_total{state=%q} %d\n", st, terminal[st])
	}
	counter("prisimd_worker_panics_total", "Worker panics recovered into job failures.", panics)
	counter("prisimd_programs_assembled_total", "User-submitted program sources that assembled cleanly.", progOK)
	counter("prisimd_program_assembly_errors_total", "User-submitted program sources rejected with diagnostics (422).", progErr)
	counter("prisimd_programs_lint_warnings_total", "Priscan warning findings reported on accepted programs.", lintWarn)
	counter("prisimd_programs_lint_rejected_total", "Programs rejected with 422 by priscan error findings.", lintRej)
	gauge("prisimd_queue_depth", "Jobs waiting in the queue.", queueDepth)
	gauge("prisimd_queue_capacity", "Queue capacity.", queueCap)
	gauge("prisimd_jobs_running", "Jobs currently executing.", running)
	gauge("prisimd_jobs_tracked", "Jobs the server still remembers.", jobsTracked)
	d := 0
	if draining {
		d = 1
	}
	gauge("prisimd_draining", "1 while the server is draining (readyz fails).", d)

	if store.present {
		gauge("prisimd_store_entries", "Results in the durable content-addressed store.", store.entries)
		counter("prisimd_store_hits_total", "Store lookups that found an entry.", store.hits)
		counter("prisimd_store_misses_total", "Store lookups that found nothing.", store.misses)
		counter("prisimd_jobs_store_served_total", "Simulate jobs resolved from the durable store without an engine run.", storeHit)
	}

	counter("prisimd_cache_runs_executed_total", "Distinct simulations executed by the shared engine.", uint64(cache.Executed))
	counter("prisimd_cache_hits_total", "Requests answered from the completed-run cache.", uint64(cache.Hits))
	counter("prisimd_cache_coalesced_total", "Requests coalesced onto another caller's in-flight run.", uint64(cache.Coalesced))
	ratio := 0.0
	if tot := cache.Executed + cache.Hits + cache.Coalesced; tot > 0 {
		ratio = float64(cache.Hits+cache.Coalesced) / float64(tot)
	}
	gaugeF("prisimd_cache_hit_ratio", "Fraction of simulation requests served without a fresh run.", ratio)

	counter("prisimd_snapshot_builds_total", "Fast-forwards executed to fill the warm-state snapshot cache.", uint64(cache.SnapshotBuilds))
	counter("prisimd_snapshot_hits_total", "Simulations constructed from a cached warm state instead of replaying the fast-forward.", uint64(cache.SnapshotHits))
	gaugeF("prisimd_snapshot_resident_bytes", "Resident bytes of cached warm fast-forward states.", float64(cache.SnapshotBytes))

	counter("prisimd_sim_committed_instructions_total", "Instructions committed by finished simulate jobs.", simCommitted)
	ips := 0.0
	if simSeconds > 0 {
		ips = float64(simCommitted) / simSeconds
	}
	gaugeF("prisimd_sim_instr_per_second", "Committed instructions per wall-clock second across finished simulate jobs.", ips)

	sb.WriteString("# HELP prisimd_job_latency_seconds Submit-to-terminal job latency quantiles over the recent window.\n# TYPE prisimd_job_latency_seconds gauge\n")
	fmt.Fprintf(sb, "prisimd_job_latency_seconds{quantile=\"0.5\"} %g\n", quantile(lats, 0.5))
	fmt.Fprintf(sb, "prisimd_job_latency_seconds{quantile=\"0.99\"} %g\n", quantile(lats, 0.99))
	counter("prisimd_http_requests_total", "HTTP requests served.", httpReqs)
}
