package service

import (
	"context"
	"errors"
	"net/http/httptest"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"prisim"
	"prisim/prisimclient"
)

var bg = context.Background()

// tiny keeps test jobs fast; shape is asserted, not paper-grade numbers.
const (
	tinyFF  = 300
	tinyRun = 1500
)

// boot builds a Server plus an HTTP front and a client, torn down with the
// test.
func boot(t *testing.T, cfg Config) (*Server, *prisimclient.Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return srv, prisimclient.NewClient(ts.URL)
}

// waitState polls until the job reaches want (or any terminal state) and
// returns its view.
func waitState(t *testing.T, c *prisimclient.Client, id string, want prisimclient.JobState) *prisimclient.Job {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, err := c.Job(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State == want || j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return nil
}

// TestEndToEndExperimentByteIdentical is the headline acceptance test: a
// fig8-style policy sweep submitted over HTTP must render byte-identically
// to the same experiment run directly on an Engine.
func TestEndToEndExperimentByteIdentical(t *testing.T) {
	_, c := boot(t, Config{Workers: 4})

	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindExperiment, Experiment: "fig8",
		FastForward: tinyFF, Run: tinyRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	res, err := c.Result(bg, j.ID)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := prisim.NewEngine().ExperimentTables(bg, "fig8",
		prisim.Options{FastForward: tinyFF, Run: tinyRun})
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	for _, tb := range direct {
		want.WriteString(tb.String())
		want.WriteString("\n")
	}
	if got := res.Text(); got != want.String() {
		t.Errorf("service result differs from direct Engine call:\n--- service ---\n%s--- direct ---\n%s", got, want.String())
	}
	if final.Progress.Done == 0 || final.Progress.Done != final.Progress.Total {
		t.Errorf("final progress = %d/%d, want complete and nonzero", final.Progress.Done, final.Progress.Total)
	}
}

// TestEndToEndSimulateMatchesEngine checks a single simulate job against a
// direct Engine call.
func TestEndToEndSimulateMatchesEngine(t *testing.T) {
	_, c := boot(t, Config{Workers: 2})
	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip",
		Policy: "pri-rc-ckpt", FastForward: tinyFF, Run: tinyRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(bg, j.ID, 0); err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(bg, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prisim.NewEngine().Simulate(bg, prisim.Options{
		Benchmark: "gzip", Policy: prisim.PolicyPRI, FastForward: tinyFF, Run: tinyRun,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result == nil || *res.Result != want {
		t.Errorf("service result = %+v, want %+v", res.Result, want)
	}
}

// metricValue extracts one un-labelled metric value from the /metrics page.
func metricValue(t *testing.T, page, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(page)
	if m == nil {
		t.Fatalf("metric %s missing from page:\n%s", name, page)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s = %q: %v", name, m[1], err)
	}
	return v
}

// TestConcurrentIdenticalSubmissionsCoalesce submits the same experiment
// twice concurrently and asserts the shared engine's singleflight cache
// reported coalescing (in-flight joins and/or completed-entry hits) in
// /metrics — the second job must not have re-simulated its matrix.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	srv, c := boot(t, Config{Workers: 4})

	var wg sync.WaitGroup
	ids := make([]string, 2)
	errs := make([]error, 2)
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := c.Submit(bg, prisimclient.JobRequest{
				Kind: prisimclient.KindExperiment, Experiment: "fig1",
				FastForward: tinyFF, Run: tinyRun,
			})
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = j.ID
			_, errs[i] = c.Wait(bg, j.ID, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}

	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	hits := metricValue(t, page, "prisimd_cache_hits_total")
	coalesced := metricValue(t, page, "prisimd_cache_coalesced_total")
	if hits+coalesced < 1 {
		t.Errorf("identical concurrent submissions produced no cache reuse: hits=%v coalesced=%v\n%s", hits, coalesced, page)
	}
	// The engine must not have executed the matrix twice: fig1 is 13 int
	// benchmarks x 2 widths = 26 unique points.
	if got := srv.Engine().RunsExecuted(); got != 26 {
		t.Errorf("RunsExecuted = %d for two identical fig1 jobs, want 26", got)
	}
	// Both jobs produced results.
	for _, id := range ids {
		if _, err := c.Result(bg, id); err != nil {
			t.Errorf("result %s: %v", id, err)
		}
	}
}

// TestQueueBackpressure fills a depth-1 queue and asserts the overflow
// submission is rejected with 429 + Retry-After rather than queued or hung.
func TestQueueBackpressure(t *testing.T) {
	_, c := boot(t, Config{Workers: 1, QueueDepth: 1})

	slow := prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "mcf",
		FastForward: 100, Run: 500_000_000, // effectively forever; cancelled at teardown
	}
	running, err := c.Submit(bg, slow)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, running.ID, prisimclient.StateRunning)

	queued, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip",
		FastForward: 100, Run: 500_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gcc",
		FastForward: 100, Run: 500_000_000,
	})
	if !errors.Is(err, prisimclient.ErrQueueFull) {
		t.Fatalf("overflow submission error = %v, want ErrQueueFull", err)
	}
	var apiErr *prisimclient.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 429 || apiErr.RetryAfter <= 0 {
		t.Errorf("overflow error = %#v, want 429 with Retry-After", apiErr)
	}

	// Cancel both; the queued one resolves instantly, the running one
	// observes its context between chunks.
	for _, id := range []string{queued.ID, running.ID} {
		j, err := c.Cancel(bg, id)
		if err != nil {
			t.Fatal(err)
		}
		if j.State != prisimclient.StateCancelled {
			j = waitState(t, c, id, prisimclient.StateCancelled)
		}
		if j.State != prisimclient.StateCancelled {
			t.Errorf("job %s state = %s after cancel", id, j.State)
		}
	}
}

// TestSSEStream subscribes to a job's event feed and asserts it sees
// progress events and a terminal state event.
func TestSSEStream(t *testing.T) {
	_, c := boot(t, Config{Workers: 2})
	// A budget big enough that the job is still running when the SSE
	// stream connects (26 points x ~50k instructions).
	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindExperiment, Experiment: "fig1",
		FastForward: 2000, Run: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	final, err := c.Stream(bg, j.ID, func(ev prisimclient.Event) {
		if ev.Type == "progress" {
			progress++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Errorf("final event state = %s (%s)", final.State, final.Error)
	}
	if progress == 0 {
		t.Error("stream delivered no progress events")
	}
}

// TestSubmitValidation asserts malformed submissions are rejected with 400
// at submit time, before any worker runs.
func TestSubmitValidation(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})
	for _, req := range []prisimclient.JobRequest{
		{Kind: "nonsense"},
		{Kind: prisimclient.KindSimulate}, // no benchmark
		{Kind: prisimclient.KindSimulate, Benchmark: "no-such-bench"},             // unknown name
		{Kind: prisimclient.KindSimulate, Benchmark: "mcf", Width: 5},             // bad width
		{Kind: prisimclient.KindSimulate, Benchmark: "mcf", Policy: "no-policy"},  // bad policy
		{Kind: prisimclient.KindExperiment},                                       // no experiment
		{Kind: prisimclient.KindExperiment, Experiment: "fig99"},                  // unknown experiment
		{Kind: prisimclient.KindExperiment, Experiment: "fig8", Benchmark: "mcf"}, // mixed
	} {
		_, err := c.Submit(bg, req)
		var apiErr *prisimclient.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Errorf("Submit(%+v) error = %v, want HTTP 400", req, err)
		}
	}
	if _, err := c.Job(bg, "job-404"); err == nil {
		t.Error("unknown job id did not error")
	}
}

// TestDrainGraceful starts a job, begins a drain (what SIGTERM triggers in
// prisimd), and asserts the in-flight job finishes, intake is refused with
// 503, readyz flips, and no goroutines leak.
func TestDrainGraceful(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	c := prisimclient.NewClient(ts.URL)

	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "mcf",
		FastForward: 1000, Run: 400_000, // long enough to still be running at drain
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, j.ID, prisimclient.StateRunning)

	drainCtx, cancel := context.WithTimeout(bg, 60*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(drainCtx) }()

	// Intake must be refused while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit(bg, prisimclient.JobRequest{
			Kind: prisimclient.KindSimulate, Benchmark: "gzip", FastForward: 100, Run: 1000,
		})
		var apiErr *prisimclient.APIError
		if errors.As(err, &apiErr) && apiErr.StatusCode == 503 {
			break
		}
		if err == nil && time.Now().After(deadline) {
			t.Fatal("submission accepted while draining")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if resp, err := ts.Client().Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != 503 {
			t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
		}
	}

	if err := <-drainDone; err != nil {
		t.Fatalf("drain was not graceful: %v", err)
	}
	final, err := c.Job(bg, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Errorf("in-flight job state after graceful drain = %s (%s), want done", final.State, final.Error)
	}

	srv.Close()
	ts.Close()
	// Everything the server started must unwind (run with -race in CI).
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+2 {
		buf := make([]byte, 1<<20)
		t.Errorf("goroutines after drain+close = %d, was %d before:\n%s", got, before, buf[:runtime.Stack(buf, true)])
	}
}

// TestDrainDeadlineCancelsInFlight asserts the other half of the drain
// contract: a job that cannot finish by the deadline is cancelled, the
// drain still completes, and the job reports cancelled.
func TestDrainDeadlineCancelsInFlight(t *testing.T) {
	srv, c := boot(t, Config{Workers: 1})
	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "mcf",
		FastForward: 100, Run: 2_000_000_000, // cannot finish
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, j.ID, prisimclient.StateRunning)

	drainCtx, cancel := context.WithTimeout(bg, 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.Drain(drainCtx)
	if err == nil {
		t.Error("deadline-forced drain reported graceful")
	}
	if took := time.Since(start); took > 20*time.Second {
		t.Errorf("drain took %s after a 150ms deadline", took)
	}
	final, err := c.Job(bg, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateCancelled {
		t.Errorf("job state after forced drain = %s, want cancelled", final.State)
	}
}

// TestJobTimeout asserts a job exceeding the configured limit fails with a
// timeout error instead of wedging a worker.
func TestJobTimeout(t *testing.T) {
	_, c := boot(t, Config{Workers: 1, JobTimeout: 100 * time.Millisecond})
	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "mcf",
		FastForward: 100, Run: 2_000_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(bg, j.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateFailed || !strings.Contains(final.Error, "timeout") {
		t.Errorf("job = %s (%q), want failed with timeout", final.State, final.Error)
	}
}

// TestWorkerPanicIsolated injects a panic via a poisoned engine call and
// asserts the job fails while the server keeps serving.
func TestWorkerPanicIsolated(t *testing.T) {
	srv, c := boot(t, Config{Workers: 1})
	// Reach into the server to panic a worker: run a job whose execution
	// panics. There is no natural panicking request, so exercise runJob
	// directly with a corrupted kind that bypasses Submit validation.
	j := newJob("job-x", prisimclient.JobRequest{Kind: "explode"}, bg, time.Now())
	func() {
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("runJob let a panic escape: %v", p)
			}
		}()
		srv.runJob(j) // unknown kind fails cleanly (no panic path reachable from HTTP)
	}()
	if j.stateNow() != prisimclient.StateFailed {
		t.Errorf("bad-kind job state = %s, want failed", j.stateNow())
	}
	// The pool is still alive: a real job still completes.
	ok, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip", FastForward: 100, Run: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(bg, ok.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Errorf("post-failure job state = %s", final.State)
	}
}

// TestMetricsPage sanity-checks the Prometheus exposition format.
func TestMetricsPage(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})
	j, err := c.Submit(bg, prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip", FastForward: 100, Run: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(bg, j.ID, 0); err != nil {
		t.Fatal(err)
	}
	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"prisimd_build_info{version=",
		`prisimd_jobs_total{state="done"} 1`,
		"prisimd_queue_capacity 4",
		"prisimd_cache_runs_executed_total 1",
		"prisimd_snapshot_builds_total 1",
		"prisimd_snapshot_hits_total 0",
		"prisimd_snapshot_resident_bytes",
		"prisimd_sim_committed_instructions_total",
		`prisimd_job_latency_seconds{quantile="0.5"}`,
		`prisimd_job_latency_seconds{quantile="0.99"}`,
		"prisimd_http_requests_total",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	if v := metricValue(t, page, "prisimd_jobs_running"); v != 0 {
		t.Errorf("jobs_running = %v at idle", v)
	}
}

// TestListAndVersionEndpoints covers the small read-only endpoints.
func TestListAndVersionEndpoints(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})
	bs, err := c.Benchmarks(bg)
	if err != nil || len(bs) != 27 {
		t.Errorf("Benchmarks = %d names, err %v; want 27", len(bs), err)
	}
	es, err := c.Experiments(bg)
	if err != nil || len(es) == 0 {
		t.Errorf("Experiments = %v, err %v", es, err)
	}
	v, err := c.Version(bg)
	if err != nil || v != prisim.Version {
		t.Errorf("Version = %q, err %v; want %q", v, err, prisim.Version)
	}
	js, err := c.Jobs(bg)
	if err != nil || len(js) != 0 {
		t.Errorf("Jobs = %v, err %v", js, err)
	}
}

// TestQuantile pins the nearest-rank quantile helper.
func TestQuantile(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("quantile(nil) = %v", q)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(s, 0.5); q != 5 {
		t.Errorf("p50 = %v", q)
	}
	if q := quantile(s, 0.99); q != 9 {
		t.Errorf("p99 = %v", q)
	}
	if q := quantile(s, 1); q != 10 {
		t.Errorf("p100 = %v", q)
	}
}
