package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"prisim"
	"prisim/prisimclient"
)

// maxBodyBytes bounds a submit body; requests are tiny JSON documents.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /api/v1/jobs             submit (202, or 429 + Retry-After)
//	GET    /api/v1/jobs             list jobs
//	GET    /api/v1/jobs/{id}        job status
//	GET    /api/v1/jobs/{id}/result finished job's result
//	GET    /api/v1/jobs/{id}/events SSE progress stream
//	DELETE /api/v1/jobs/{id}        cancel
//	POST   /api/v1/programs         assemble-check a program (200, or 422 + diagnostics)
//	GET    /api/v1/benchmarks       workload names
//	GET    /api/v1/experiments      experiment names
//	GET    /api/v1/version          build version
//	GET    /metrics                 Prometheus text format
//	GET    /healthz, /readyz        liveness / readiness
//
// Every /api/v1 route is also served at its legacy unversioned path
// (e.g. POST /jobs) for one release; legacy responses carry a
// "Deprecation: true" header so callers can find themselves before the
// aliases disappear. When a fabric Coordinator is configured, the control
// plane mounts under /api/v1/fabric:
//
//	POST   /api/v1/fabric/matrices             submit a matrix (202/200)
//	GET    /api/v1/fabric/matrices             list matrices
//	GET    /api/v1/fabric/matrices/{id}        matrix status
//	GET    /api/v1/fabric/matrices/{id}/result finished matrix's tables+points
//	POST   /api/v1/fabric/workers              register a worker daemon
//	GET    /api/v1/fabric/workers              list workers
//	DELETE /api/v1/fabric/workers/{id}         deregister
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// handle registers one route under /api/v1 and, for the legacy-alias
	// release window, under its old unversioned path with a Deprecation
	// header.
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /api/v1"+path, h)
		mux.HandleFunc(method+" "+path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", `</api/v1`+path+`>; rel="successor-version"`)
			h(w, r)
		})
	}
	handle("POST", "/jobs", s.handleSubmit)
	handle("GET", "/jobs", s.handleList)
	handle("GET", "/jobs/{id}", s.handleStatus)
	handle("GET", "/jobs/{id}/result", s.handleResult)
	handle("GET", "/jobs/{id}/events", s.handleEvents)
	handle("DELETE", "/jobs/{id}", s.handleCancel)
	handle("POST", "/programs", s.handleProgramCheck)
	handle("GET", "/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		names := []string{}
		for _, b := range prisim.Benchmarks() {
			names = append(names, b.Name)
		}
		writeJSON(w, http.StatusOK, names)
	})
	handle("GET", "/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, prisim.ExperimentNames())
	})
	handle("GET", "/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"version": prisim.Version})
	})
	if s.coord != nil {
		// The fabric control plane is v1-native: no legacy aliases.
		mux.HandleFunc("POST /api/v1/fabric/matrices", s.handleMatrixSubmit)
		mux.HandleFunc("GET /api/v1/fabric/matrices", s.handleMatrixList)
		mux.HandleFunc("GET /api/v1/fabric/matrices/{id}", s.handleMatrixStatus)
		mux.HandleFunc("GET /api/v1/fabric/matrices/{id}/result", s.handleMatrixResult)
		mux.HandleFunc("POST /api/v1/fabric/workers", s.handleWorkerRegister)
		mux.HandleFunc("GET /api/v1/fabric/workers", s.handleWorkerList)
		mux.HandleFunc("DELETE /api/v1/fabric/workers/{id}", s.handleWorkerDeregister)
	}
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	})
	return s.logMiddleware(mux)
}

// reqID numbers requests for log correlation.
var reqID atomic.Uint64

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes so SSE works through the middleware.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logMiddleware assigns a request ID and writes one structured line per
// request.
func (s *Server) logMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := reqID.Add(1)
		s.metrics.incHTTPRequest()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		w.Header().Set("X-Request-Id", "r"+itoa(id))
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.logf("req=r%d method=%s path=%s status=%d dur=%s", id, r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Microsecond))
	})
}

// itoa avoids pulling strconv into the hot logging path signature churn.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// writeJSON writes a JSON response with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req prisimclient.JobRequest
	// Submit bodies are tiny JSON documents except program jobs, whose
	// base64 source may approach the sandbox's source cap (4/3 overhead).
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes+2*int64(s.cfg.Programs.MaxSourceBytes))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	j, err := s.Submit(req)
	switch {
	case err == nil:
		w.Header().Set("Location", "/api/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.view())
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, ErrCacheKeyMismatch):
		writeError(w, http.StatusConflict, err.Error())
	default:
		if code, body := rejectionBody(err); body != nil {
			writeJSON(w, code, body)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// rejectionBody maps an assembly or static-analysis rejection to its 422
// response body (nil when err is neither).
func rejectionBody(err error) (int, map[string]any) {
	var ae *AssemblyError
	if errors.As(err, &ae) {
		return http.StatusUnprocessableEntity, map[string]any{
			"error":       ae.Error(),
			"diagnostics": ae.Diags,
		}
	}
	var le *LintError
	if errors.As(err, &le) {
		return http.StatusUnprocessableEntity, map[string]any{
			"error":       le.Error(),
			"diagnostics": le.Diags,
		}
	}
	return 0, nil
}

// handleProgramCheck assembles a program without running it: 200 with the
// image identity on success, 422 with every positioned diagnostic on
// assembly failure.
func (s *Server) handleProgramCheck(w http.ResponseWriter, r *http.Request) {
	var req prisimclient.ProgramCheckRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes+2*int64(s.cfg.Programs.MaxSourceBytes))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Source) == 0 {
		writeError(w, http.StatusBadRequest, "source is required")
		return
	}
	jr := prisimclient.JobRequest{Kind: prisimclient.KindProgram, Source: req.Source}
	checked, err := s.assembleRequest(&jr)
	if err != nil {
		if code, body := rejectionBody(err); body != nil {
			writeJSON(w, code, body)
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	prog := checked.prog
	dataBytes := 0
	for _, seg := range prog.Data {
		dataBytes += len(seg.Bytes)
	}
	inl := checked.inlinability
	writeJSON(w, http.StatusOK, prisimclient.ProgramInfo{
		SHA256:       prog.SHA256(),
		Entry:        prog.Entry,
		CodeWords:    len(prog.Code),
		DataSegments: len(prog.Data),
		DataBytes:    dataBytes,
		Warnings:     checked.warnings,
		Inlinability: &inl,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listJobs())
}

// pathJob resolves the {id} wildcard, writing 404 when unknown.
func (s *Server) pathJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	id := r.PathValue("id")
	j, ok := s.jobByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job "+id)
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.pathJob(w, r); ok {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	v := j.view()
	switch v.State {
	case prisimclient.StateDone:
		res, tables, output, by := j.payload()
		writeJSON(w, http.StatusOK, prisimclient.JobResult{
			ID: j.id, Result: res, Tables: tables, Output: output,
			KernelVersion: prisim.Version, CacheKey: j.cacheKey, ComputedBy: by,
		})
	case prisimclient.StateFailed, prisimclient.StateCancelled:
		writeError(w, http.StatusGone, "job "+string(v.State)+": "+v.Error)
	default:
		writeError(w, http.StatusConflict, "job is "+string(v.State)+"; result not ready")
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.pathJob(w, r)
	if !ok {
		return
	}
	j.requestCancel(time.Now())
	// Wait briefly so the common case returns the terminal view; a job that
	// takes longer to unwind still reports its current state.
	select {
	case <-j.doneCh:
	case <-time.After(2 * time.Second):
	case <-r.Context().Done():
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth := len(s.queue)
	capacity := cap(s.queue)
	running := s.running
	tracked := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	var store storeSample
	if s.store != nil {
		store.present = true
		store.entries, store.hits, store.misses = s.store.Stats()
	}
	var sb strings.Builder
	s.metrics.render(&sb, s.engine.CacheStats(), depth, capacity, running, tracked, draining, store)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(sb.String()))
}
