package service

import (
	"encoding/json"
	"errors"
	"net/http"

	"prisim/internal/fabric"
	"prisim/prisimclient"
)

// The fabric control plane: thin HTTP bindings over the Coordinator,
// mounted by Handler when Config.Coordinator is set. Error mapping follows
// the job API's conventions — 404 unknown, 409 not-ready, uniform JSON
// error bodies.

func (s *Server) handleMatrixSubmit(w http.ResponseWriter, r *http.Request) {
	var spec prisimclient.Matrix
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	st, created, err := s.coord.SubmitMatrix(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusOK // duplicate submission coalesced onto the existing matrix
	if created {
		code = http.StatusAccepted
	}
	w.Header().Set("Location", "/api/v1/fabric/matrices/"+st.ID)
	writeJSON(w, code, st)
}

func (s *Server) handleMatrixList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Matrices())
}

func (s *Server) handleMatrixStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.coord.MatrixStatus(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMatrixResult(w http.ResponseWriter, r *http.Request) {
	res, err := s.coord.MatrixResult(r.PathValue("id"))
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, res)
	case errors.Is(err, fabric.ErrNoSuchMatrix):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, fabric.ErrMatrixNotDone):
		writeError(w, http.StatusConflict, err.Error())
	default:
		// The matrix failed; its result is gone for good.
		writeError(w, http.StatusGone, err.Error())
	}
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req prisimclient.RegisterWorkerRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.URL == "" {
		writeError(w, http.StatusBadRequest, "worker registration requires a url")
		return
	}
	info, err := s.coord.RegisterWorker(r.Context(), req.URL)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, info)
	case errors.Is(err, fabric.ErrVersionSkew):
		writeError(w, http.StatusConflict, err.Error())
	default:
		writeError(w, http.StatusBadGateway, err.Error())
	}
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.coord.Workers())
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.coord.DeregisterWorker(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
