package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"prisim/prisimclient"
)

// benchConfigResult is one saturation run in BENCH_service.json.
type benchConfigResult struct {
	QueueDepth    int     `json:"queue_depth"`
	Workers       int     `json:"workers"`
	Jobs          int     `json:"jobs_completed"`
	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerSecond float64 `json:"jobs_per_second"`
	P50Ms         float64 `json:"p50_latency_ms"`
	P99Ms         float64 `json:"p99_latency_ms"`
	Rejected429   int     `json:"rejected_429"`
	Retries       int     `json:"submit_retries"`
}

type benchRecord struct {
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Submitters  int                 `json:"concurrent_submitters"`
	JobShape    string              `json:"job_shape"`
	Configs     []benchConfigResult `json:"configs"`
	Demonstrate string              `json:"demonstrates"`
}

// TestRecordServiceBench saturates an in-process service with small unique
// simulate jobs at queue depth 1x and 4x the worker count and writes
// throughput plus latency quantiles to the path in PRISIM_SERVICE_BENCH.
// The point is backpressure: overflow submissions get 429 and are retried
// by the client, and throughput holds instead of collapsing. Skipped unless
// the env var is set (CI and local runs record it explicitly).
func TestRecordServiceBench(t *testing.T) {
	out := os.Getenv("PRISIM_SERVICE_BENCH")
	if out == "" {
		t.Skip("set PRISIM_SERVICE_BENCH=<output path> to record BENCH_service.json")
	}
	workers := runtime.GOMAXPROCS(0)
	const jobs = 150
	submitters := 4 * workers

	rec := benchRecord{
		GOMAXPROCS: workers,
		Submitters: submitters,
		JobShape:   "simulate, unique (bench, prs) points, ff=200 run=1000",
		Demonstrate: "bounded queue sheds load with 429 + Retry-After at depth 1x; " +
			"throughput and tail latency hold rather than collapse as depth grows to 4x",
	}
	for _, depth := range []int{workers, 4 * workers} {
		rec.Configs = append(rec.Configs, saturate(t, workers, depth, jobs, submitters))
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("service bench written to %s", out)
}

// saturate pushes `jobs` unique simulate jobs through a fresh server with
// `submitters` concurrent clients retrying on 429, and measures the run.
func saturate(t *testing.T, workers, depth, jobs, submitters int) benchConfigResult {
	t.Helper()
	srv := New(Config{Workers: workers, QueueDepth: depth})
	defer srv.Close()

	benches := []string{"gzip", "gcc", "mcf", "crafty", "parser", "gap", "vortex", "bzip2", "twolf", "vpr", "eon", "perlbmk", "gzip"}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		retries   int
	)
	next := make(chan int, jobs)
	for i := 0; i < jobs; i++ {
		next <- i
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				req := prisimclient.JobRequest{
					Kind:        prisimclient.KindSimulate,
					Benchmark:   benches[i%len(benches)],
					PhysRegs:    33 + i%60, // unique points: no cache flattening
					FastForward: 200, Run: 1000,
				}
				t0 := time.Now()
				var j *job
				for {
					var err error
					j, err = srv.Submit(req)
					if err == nil {
						break
					}
					if errors.Is(err, ErrQueueFull) {
						mu.Lock()
						rejected++
						retries++
						mu.Unlock()
						time.Sleep(2 * time.Millisecond) // honour backpressure
						continue
					}
					t.Error(err)
					return
				}
				<-j.doneCh
				if st := j.stateNow(); st != prisimclient.StateDone {
					t.Errorf("job %s ended %s", j.id, st)
				}
				mu.Lock()
				latencies = append(latencies, time.Since(t0))
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	ms := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		return float64(latencies[int(q*float64(len(latencies)-1))]) / float64(time.Millisecond)
	}
	res := benchConfigResult{
		QueueDepth:    depth,
		Workers:       workers,
		Jobs:          len(latencies),
		WallSeconds:   wall.Seconds(),
		JobsPerSecond: float64(len(latencies)) / wall.Seconds(),
		P50Ms:         ms(0.5),
		P99Ms:         ms(0.99),
		Rejected429:   rejected,
		Retries:       retries,
	}
	t.Logf("depth=%d: %s", depth, fmt.Sprintf("%.1f jobs/s, p50 %.1fms, p99 %.1fms, %d rejected",
		res.JobsPerSecond, res.P50Ms, res.P99Ms, res.Rejected429))
	return res
}
