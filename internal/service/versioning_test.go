package service

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"prisim"
	"prisim/internal/fabric"
	"prisim/prisimclient"
)

// TestAPIv1AndLegacyAliases round-trips every job-API endpoint through the
// client twice: once against /api/v1 (the default base path) and once
// against the legacy unversioned aliases (WithBasePath("")).
func TestAPIv1AndLegacyAliases(t *testing.T) {
	srv := New(Config{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})

	clients := map[string]*prisimclient.Client{
		"v1":     prisimclient.NewClient(ts.URL),
		"legacy": prisimclient.NewClient(ts.URL, prisimclient.WithBasePath("")),
	}
	for name, c := range clients {
		t.Run(name, func(t *testing.T) {
			benches, err := c.Benchmarks(bg)
			if err != nil || len(benches) == 0 {
				t.Fatalf("Benchmarks = %v, %v", benches, err)
			}
			exps, err := c.Experiments(bg)
			if err != nil || len(exps) == 0 {
				t.Fatalf("Experiments = %v, %v", exps, err)
			}
			ver, err := c.Version(bg)
			if err != nil || ver != prisim.Version {
				t.Fatalf("Version = %q, %v; want %q", ver, err, prisim.Version)
			}

			j, err := c.Submit(bg, prisimclient.JobRequest{
				Kind: prisimclient.KindSimulate, Benchmark: "gzip",
				FastForward: tinyFF, Run: tinyRun,
			})
			if err != nil {
				t.Fatal(err)
			}
			final, err := c.Wait(bg, j.ID, 0) // exercises the SSE events route
			if err != nil {
				t.Fatal(err)
			}
			if final.State != prisimclient.StateDone {
				t.Fatalf("job state = %s (%s)", final.State, final.Error)
			}
			res, err := c.Result(bg, j.ID)
			if err != nil || res.Result == nil {
				t.Fatalf("Result = %+v, %v", res, err)
			}
			if res.KernelVersion != prisim.Version || res.CacheKey == "" {
				t.Errorf("result metadata = (%q, %q), want kernel version and a cache key", res.KernelVersion, res.CacheKey)
			}
			jobs, err := c.Jobs(bg)
			if err != nil || len(jobs) == 0 {
				t.Fatalf("Jobs = %v, %v", jobs, err)
			}

			j2, err := c.Submit(bg, prisimclient.JobRequest{
				Kind: prisimclient.KindSimulate, Benchmark: "mcf",
				FastForward: tinyFF, Run: tinyRun,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Cancel(bg, j2.ID); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLegacyPathsCarryDeprecationHeader pins the alias contract: legacy
// unversioned paths answer with "Deprecation: true" and a successor link;
// /api/v1 paths answer with neither.
func TestLegacyPathsCarryDeprecationHeader(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})

	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "true" {
		t.Error("legacy path missing Deprecation: true header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/api/v1/version") {
		t.Errorf("legacy path Link header = %q, want successor-version pointer", link)
	}

	resp, err = http.Get(ts.URL + "/api/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("Deprecation") != "" {
		t.Error("/api/v1 path must not be marked deprecated")
	}
}

// TestSubmitVerifiesClientCacheKey pins the cache-key handshake: a correct
// client-computed key is accepted and echoed; a wrong one (kernel-version
// skew) is refused with 409 and the ErrCacheKeyMismatch sentinel.
func TestSubmitVerifiesClientCacheKey(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})

	req := prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip",
		FastForward: tinyFF, Run: tinyRun,
	}
	req.CacheKey = prisimclient.CacheKeyFor(prisim.Version, req)
	j, err := c.Submit(bg, req)
	if err != nil {
		t.Fatalf("correct cache key refused: %v", err)
	}
	if j.CacheKey != req.CacheKey {
		t.Errorf("job echoes cache key %q, want %q", j.CacheKey, req.CacheKey)
	}

	req.CacheKey = prisimclient.CacheKeyFor("v0.0.0-skewed", req)
	if _, err := c.Submit(bg, req); !errors.Is(err, prisimclient.ErrCacheKeyMismatch) {
		t.Fatalf("skewed cache key: err = %v, want ErrCacheKeyMismatch", err)
	}
}

// TestStoreBackedSimulateSkipsEngine pins the durable-store fast path: the
// second submission of a point resolves from the store (counted in
// prisimd_jobs_store_served_total) and preserves the original producer's
// ComputedBy stamp.
func TestStoreBackedSimulateSkipsEngine(t *testing.T) {
	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	_, c := boot(t, Config{Workers: 1, NodeID: "node-under-test", Store: st})

	req := prisimclient.JobRequest{
		Kind: prisimclient.KindSimulate, Benchmark: "gzip",
		FastForward: tinyFF, Run: tinyRun,
	}
	run := func() *prisimclient.JobResult {
		t.Helper()
		j, err := c.Submit(bg, req)
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Wait(bg, j.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != prisimclient.StateDone {
			t.Fatalf("job state = %s (%s)", final.State, final.Error)
		}
		res, err := c.Result(bg, j.ID)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	second := run()
	if first.ComputedBy != "node-under-test" || second.ComputedBy != "node-under-test" {
		t.Errorf("ComputedBy = (%q, %q), want the executing node on both", first.ComputedBy, second.ComputedBy)
	}
	if *first.Result != *second.Result {
		t.Error("store-served result differs from the computed one")
	}
	if st.Len() != 1 {
		t.Errorf("store holds %d entries, want 1", st.Len())
	}
	page, err := c.Metrics(bg)
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(t, page, "prisimd_jobs_store_served_total"); got != 1 {
		t.Errorf("prisimd_jobs_store_served_total = %g, want 1 (second job served from the store)", got)
	}
}

// TestWaitFailsFastOnUnknownJob pins the Wait fix: an unknown job ID must
// surface ErrJobNotFound promptly instead of polling forever.
func TestWaitFailsFastOnUnknownJob(t *testing.T) {
	_, c := boot(t, Config{Workers: 1})
	start := time.Now()
	_, err := c.Wait(bg, "job-999", 10*time.Millisecond)
	if !errors.Is(err, prisimclient.ErrJobNotFound) {
		t.Fatalf("err = %v, want ErrJobNotFound", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Wait took %s to fail on an unknown job", elapsed)
	}
}
