package asm_test

import (
	"os"
	"path/filepath"
	"testing"

	"prisim/internal/asm"
)

// fuzzSeeds exercises every frontend feature plus the malformed shapes that
// have bitten line-oriented assemblers: unterminated strings, operators at
// EOF, macro recursion, label/comment interactions.
var fuzzSeeds = []string{
	"",
	"\n\n\n",
	"; just a comment\n# and another",
	".text\nmain: halt\n",
	".data\nv: .word 1, 2, 3\n.text\nla r1, v\nldq r2, 0(r1)\nhalt\n",
	".equ N, 8\n.data\nbuf: .space N*8\n.text\nli r1, N*2+1\nhalt\n",
	".data\nmsg: .asciz \"hi;#()\\n\"\n.text\nhalt\n",
	".macro inc r\naddi \\r, \\r, 1\n.endm\n.text\ninc r4\nhalt\n",
	".macro sp2\nloop\\@: addi r1, r1, -1\nbnez r1, loop\\@\n.endm\n.text\nsp2\nsp2\nhalt\n",
	".align 64\n.data\nx: .float 1.5, -2e3\n.text\nhalt\n",
	".text\nldq r2, (8+4)(r1)\nhalt\n",
	// malformed
	".data\ns: .ascii \"unterminated",
	".text\naddi r1, r2,",
	".text\nbogus r1, r2\n",
	".text\nli r1, 1 << \n",
	".macro a\na\n.endm\n.text\na\n",
	".macro b x\n.endm\n.text\nb\n",
	".word 5\n",
	".data\nlonely:\n.text\nhalt\n",
	".text\nmain:\nmain: halt\n",
	".text\nbeq r1, r2, nowhere\n",
	".text\nli r1, 0xzz\n",
	".text\nj main\n",
	"\\@\n",
	".equ X, X\n",
	".text\nldq r1, )(\n",
	".endm\n",
	"label with spaces: halt\n",
	".text\naddi r1, r2, 9999999999999999999999\n",
	".data\nv: .byte 1,\n",
	".text\nhalt ; comment\nx: # label then comment\nhalt\n",
}

// FuzzAssemble asserts the frontend never panics and that every failure
// carries at least one positioned diagnostic (line and column > 0). Run
// longer with: go test ./internal/asm -fuzz FuzzAssemble -fuzztime 30s
func FuzzAssemble(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	if files, _ := filepath.Glob(filepath.Join("testdata", "*.s")); files != nil {
		for _, file := range files {
			if src, err := os.ReadFile(file); err == nil {
				f.Add(string(src))
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble(src)
		if err == nil {
			if p == nil {
				t.Fatal("nil program without error")
			}
			return
		}
		if p != nil {
			t.Fatal("program returned alongside error")
		}
		diags := asm.Diagnostics(err)
		if len(diags) == 0 {
			t.Fatalf("error %v carries no diagnostics", err)
		}
		for _, d := range diags {
			if d.Line <= 0 || d.Col <= 0 {
				t.Fatalf("diagnostic not positioned: %+v", d)
			}
			if d.Msg == "" {
				t.Fatalf("diagnostic without message: %+v", d)
			}
		}
	})
}

// TestAsciiCommentChars pins the fix for ';' and '#' inside string
// literals: the old line-splitting frontend truncated the line at the
// first comment character even mid-string.
func TestAsciiCommentChars(t *testing.T) {
	p, err := asm.Assemble(".data\nmsg: .asciz \"a;b#c\"\n.text\nmain: halt\n")
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if len(p.Data) != 1 {
		t.Fatalf("want 1 data segment, got %d", len(p.Data))
	}
	if got := string(p.Data[0].Bytes); got != "a;b#c\x00" {
		t.Fatalf("string bytes %q, want %q", got, "a;b#c\x00")
	}
	// A real comment after the closing quote is still stripped.
	p2, err := asm.Assemble(".data\nmsg: .ascii \"x\" ; trailing comment\n.text\nmain: halt\n")
	if err != nil {
		t.Fatalf("assemble with trailing comment: %v", err)
	}
	if got := string(p2.Data[0].Bytes); got != "x" {
		t.Fatalf("string bytes %q, want %q", got, "x")
	}
}
