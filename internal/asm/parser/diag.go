package parser

import (
	"fmt"
	"sort"
	"strings"
)

// Diagnostic is one positioned assembly error. Line and Col are 1-based and
// rune-accurate; Excerpt is the offending source line (empty when the
// position falls outside the input, e.g. for file-level errors).
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Msg     string `json:"msg"`
	Excerpt string `json:"excerpt,omitempty"`
}

// String renders "file:line:col: msg" followed by the source excerpt with a
// caret under the offending column.
func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:%d:%d: %s", d.File, d.Line, d.Col, d.Msg)
	if d.Excerpt != "" {
		// Tabs would break caret alignment; display them as single spaces.
		display := strings.ReplaceAll(d.Excerpt, "\t", " ")
		fmt.Fprintf(&sb, "\n    %s", display)
		if d.Col >= 1 && d.Col <= len([]rune(display))+1 {
			fmt.Fprintf(&sb, "\n    %s^", strings.Repeat(" ", d.Col-1))
		}
	}
	return sb.String()
}

// Error is the collected result of a failed assembly: every diagnostic
// found, not just the first, ordered by source position.
type Error struct {
	Diags []Diagnostic
}

func (e *Error) Error() string {
	if len(e.Diags) == 0 {
		return "asm: assembly failed"
	}
	parts := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

// maxDiagnostics bounds error collection so a pathological input cannot
// produce an unbounded report. The cap is noted in the final diagnostic.
const maxDiagnostics = 100

func sortDiags(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
}
