// Package parser assembles PRISC-64 assembly text into a linked program
// image. It sits on internal/asm/lexer's token stream and is wrapped by
// internal/asm, whose Assemble converts the Image into an asm.Program.
//
// Compared with the old line-splitting frontend it adds constant
// expressions (.word 3*N+1, ldq r2, (OFF+8)(r1)), .equ/.set constants,
// .macro/.endm with parameters and \@ unique-label counters, .align,
// .ascii/.asciz, and forward references from code to data declared in a
// later .data block. Diagnostics carry file:line:col plus a source excerpt
// and are collected (up to a cap) rather than first-error-wins.
//
// Assembly is two passes over the statement list (after macro expansion).
// Pass one lays out data and defines every data symbol and constant in
// textual order — data sizes never depend on code — then sizes the code,
// defining code labels as it goes; li/la expansions need their value at
// sizing time, which is why their operands may name any data symbol or
// constant but only already-defined code labels. Pass two evaluates the
// remaining expressions (all symbols now known), resolves branch and jump
// targets, and encodes.
//
//prisim:deterministic
package parser

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"prisim/internal/asm/lexer"
	"prisim/internal/isa"
)

// Config parameterizes one assembly.
type Config struct {
	// File is the name used in diagnostics; "<input>" when empty.
	File string
	// CodeBase and DataBase set the memory layout. internal/asm passes its
	// package defaults.
	CodeBase uint64
	DataBase uint64
}

// Segment is a contiguous run of initialized memory.
type Segment struct {
	Base  uint64
	Bytes []byte
}

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

// Image is a fully linked program: the parser's output.
type Image struct {
	Entry    uint64
	CodeBase uint64
	Code     []uint32
	Data     []Segment
	// Symbols holds labels and data symbols. .equ/.set constants are not
	// included: they are values, not addresses, and would pollute
	// address-keyed disassembly annotations.
	Symbols map[string]uint64
	// Lines maps each code word to the source position of the statement
	// that emitted it (li/la expansion words share their statement's
	// position). len(Lines) == len(Code).
	Lines []Pos
	// DataEnd is the first address past the laid-out data section,
	// including .space reservations, which materialize no Segment.
	DataEnd uint64
}

// Parse assembles src. On failure the returned error is an *Error carrying
// every collected Diagnostic in source order.
func Parse(src string, cfg Config) (*Image, error) {
	if cfg.File == "" {
		cfg.File = "<input>"
	}
	p := &parser{
		cfg:      cfg,
		srcLines: strings.Split(src, "\n"),
		symbols:  make(map[string]uint64),
		consts:   make(map[string]uint64),
		macros:   make(map[string]*macro),
		dataNext: cfg.DataBase,
	}
	lines := p.scanLines(src)
	lines = p.expandMacros(lines, 0)
	for _, line := range lines {
		if s, ok := p.parseStmt(line); ok {
			p.process(s)
		}
	}
	p.flushOrphanLabels()
	units := p.sizeCode()
	code, codeLines := p.encodeCode(units)
	data := p.fillData()
	if len(p.diags) > 0 {
		sortDiags(p.diags)
		return nil, &Error{Diags: p.diags}
	}
	entry := cfg.CodeBase
	if addr, ok := p.symbols["main"]; ok {
		entry = addr
	}
	return &Image{
		Entry:    entry,
		CodeBase: cfg.CodeBase,
		Code:     code,
		Data:     data,
		Symbols:  p.symbols,
		Lines:    codeLines,
		DataEnd:  p.dataNext,
	}, nil
}

const (
	secText = iota
	secData
)

type parser struct {
	cfg      Config
	srcLines []string

	diags      []Diagnostic
	diagsFull  bool // cap reached; suppress further reports
	symbols    map[string]uint64
	consts     map[string]uint64
	macros     map[string]*macro
	expansions int // \@ counter, bumped once per macro invocation

	section       int
	pendingLabels []lexer.Token // data labels awaiting a sized directive
	dataNext      uint64
	items         []dataItem
	code          []stmt
}

// errorf records one diagnostic at tok's position.
func (p *parser) errorf(tok lexer.Token, format string, args ...any) {
	if p.diagsFull {
		return
	}
	if len(p.diags) >= maxDiagnostics {
		p.diags = append(p.diags, Diagnostic{
			File: p.cfg.File, Line: tok.Line, Col: tok.Col,
			Msg: fmt.Sprintf("too many errors (stopping after %d)", maxDiagnostics),
		})
		p.diagsFull = true
		return
	}
	excerpt := ""
	if tok.Line >= 1 && tok.Line <= len(p.srcLines) {
		excerpt = strings.TrimRight(p.srcLines[tok.Line-1], " \t\r")
	}
	p.diags = append(p.diags, Diagnostic{
		File: p.cfg.File, Line: tok.Line, Col: tok.Col,
		Msg: fmt.Sprintf(format, args...), Excerpt: excerpt,
	})
}

// lookup resolves a symbol or constant by name.
func (p *parser) lookup(name string) (uint64, bool) {
	if v, ok := p.consts[name]; ok {
		return v, true
	}
	v, ok := p.symbols[name]
	return v, ok
}

func (p *parser) defined(name string) bool {
	_, c := p.consts[name]
	_, s := p.symbols[name]
	return c || s
}

// scanLines tokenizes src into logical lines (newline tokens stripped).
// Lexing errors become diagnostics and the offending token is dropped so
// scanning continues.
func (p *parser) scanLines(src string) [][]lexer.Token {
	var lines [][]lexer.Token
	var cur []lexer.Token
	l := lexer.New(src)
	for {
		t := l.Next()
		switch t.Kind {
		case lexer.EOF:
			if len(cur) > 0 {
				lines = append(lines, cur)
			}
			return lines
		case lexer.Newline:
			if len(cur) > 0 {
				lines = append(lines, cur)
				cur = nil
			}
		case lexer.Illegal:
			p.errorf(t, "%s", t.Text)
		default:
			cur = append(cur, t)
		}
	}
}

// --- macros ---

type macro struct {
	nameTok lexer.Token
	params  []string
	body    [][]lexer.Token
}

// maxMacroDepth bounds recursive expansion (macros invoking macros).
const maxMacroDepth = 32

func isDirective(line []lexer.Token, name string) bool {
	return len(line) > 0 && line[0].Kind == lexer.Directive &&
		strings.EqualFold(line[0].Text, name)
}

// expandMacros processes .macro/.endm definitions and splices macro
// invocations, recursively expanding bodies that invoke other macros.
func (p *parser) expandMacros(lines [][]lexer.Token, depth int) [][]lexer.Token {
	if depth > maxMacroDepth {
		if len(lines) > 0 && len(lines[0]) > 0 {
			p.errorf(lines[0][0], "macro expansion exceeds depth %d (recursive macro?)", maxMacroDepth)
		}
		return nil
	}
	var out [][]lexer.Token
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if isDirective(line, ".macro") {
			i = p.defineMacro(lines, i)
			continue
		}
		if isDirective(line, ".endm") {
			p.errorf(line[0], ".endm without a matching .macro")
			continue
		}
		// Peel any leading labels, then test for a macro invocation.
		j := 0
		for j+1 < len(line) && line[j].Kind == lexer.Ident && line[j+1].Kind == lexer.Colon {
			j += 2
		}
		m := (*macro)(nil)
		if j < len(line) && line[j].Kind == lexer.Ident {
			m = p.macros[strings.ToLower(line[j].Text)]
		}
		if m == nil {
			out = append(out, line)
			continue
		}
		if j > 0 {
			out = append(out, line[:j]) // labels bind at the expansion site
		}
		args := p.splitOperands(line[j+1:])
		if len(args) != len(m.params) {
			p.errorf(line[j], "macro %q takes %d argument(s), got %d",
				m.nameTok.Text, len(m.params), len(args))
			continue
		}
		counter := p.expansions
		p.expansions++
		expanded := make([][]lexer.Token, 0, len(m.body))
		for _, bodyLine := range m.body {
			expanded = append(expanded, p.substLine(bodyLine, m, args, counter))
		}
		out = append(out, p.expandMacros(expanded, depth+1)...)
	}
	return out
}

// defineMacro records the definition starting at lines[i] (the .macro
// line) and returns the index of its .endm line.
func (p *parser) defineMacro(lines [][]lexer.Token, i int) int {
	head := lines[i]
	m := &macro{}
	if len(head) < 2 || head[1].Kind != lexer.Ident {
		p.errorf(head[0], ".macro needs a name")
	} else {
		m.nameTok = head[1]
		for _, t := range head[2:] {
			switch t.Kind {
			case lexer.Ident:
				m.params = append(m.params, t.Text)
			case lexer.Comma:
				// separators are optional
			default:
				p.errorf(t, "expected macro parameter name, found %s", t)
			}
		}
	}
	for i++; i < len(lines); i++ {
		line := lines[i]
		if isDirective(line, ".endm") {
			p.registerMacro(m)
			return i
		}
		if isDirective(line, ".macro") {
			p.errorf(line[0], "nested macro definitions are not supported")
		}
		m.body = append(m.body, line)
	}
	if m.nameTok.Kind == lexer.Ident {
		p.errorf(m.nameTok, "missing .endm for macro %q", m.nameTok.Text)
	} else if len(head) > 0 {
		p.errorf(head[0], "missing .endm")
	}
	return len(lines)
}

func (p *parser) registerMacro(m *macro) {
	if m.nameTok.Kind != lexer.Ident {
		return
	}
	name := strings.ToLower(m.nameTok.Text)
	if _, dup := p.macros[name]; dup {
		p.errorf(m.nameTok, "duplicate macro %q", m.nameTok.Text)
		return
	}
	if _, isOp := isa.OpByName(name); isOp || isPseudo(name) {
		p.errorf(m.nameTok, "macro %q shadows an instruction mnemonic", m.nameTok.Text)
		return
	}
	p.macros[name] = m
}

func isPseudo(mnem string) bool {
	switch mnem {
	case "li", "la", "mov", "beqz", "bnez", "ret":
		return true
	}
	return false
}

// adjacent reports whether b starts exactly where a ends on the same line,
// i.e. the two tokens were pasted together in the source (loop\@).
func adjacent(a, b lexer.Token) bool {
	return a.Line == b.Line && a.Col+a.Width() == b.Col
}

// substLine substitutes macro arguments into one body line. \param splices
// the invocation's tokens (positioned at the call site); \@ becomes the
// per-expansion counter. A one-token substitution adjacent to a preceding
// identifier pastes into it, so "loop\@:" yields a unique label per
// expansion.
func (p *parser) substLine(body []lexer.Token, m *macro, args [][]lexer.Token, counter int) []lexer.Token {
	var out []lexer.Token
	for k, t := range body {
		if t.Kind != lexer.MacroArg {
			out = append(out, t)
			continue
		}
		var repl []lexer.Token
		if t.Text == "@" {
			repl = []lexer.Token{{Kind: lexer.Int, Text: strconv.Itoa(counter), Line: t.Line, Col: t.Col}}
		} else {
			idx := -1
			for pi, name := range m.params {
				if name == t.Text {
					idx = pi
					break
				}
			}
			if idx < 0 {
				p.errorf(t, `unknown macro parameter \%s in macro %q`, t.Text, m.nameTok.Text)
				continue
			}
			repl = args[idx]
		}
		if len(repl) == 1 && (repl[0].Kind == lexer.Ident || repl[0].Kind == lexer.Int) &&
			len(out) > 0 && k > 0 && adjacent(body[k-1], t) &&
			out[len(out)-1].Kind == lexer.Ident {
			out[len(out)-1].Text += repl[0].Text
			continue
		}
		out = append(out, repl...)
	}
	return out
}

// --- statements ---

// stmt is one parsed logical line: leading labels, an optional head
// (directive or mnemonic), and its comma-separated operands.
type stmt struct {
	labels []lexer.Token
	head   lexer.Token // Kind==EOF for a label-only line
	ops    [][]lexer.Token
}

func (s *stmt) hasHead() bool { return s.head.Kind != lexer.EOF }

func (p *parser) parseStmt(line []lexer.Token) (stmt, bool) {
	var s stmt
	i := 0
	for i+1 < len(line) && line[i].Kind == lexer.Ident && line[i+1].Kind == lexer.Colon {
		s.labels = append(s.labels, line[i])
		i += 2
	}
	if i >= len(line) {
		return s, true
	}
	head := line[i]
	if head.Kind != lexer.Ident && head.Kind != lexer.Directive {
		p.errorf(head, "expected mnemonic or directive, found %s", head)
		return s, false
	}
	s.head = head
	s.ops = p.splitOperands(line[i+1:])
	return s, true
}

// splitOperands splits toks on top-level commas (commas inside parentheses
// separate nothing, so "(a, b)" stays one operand — not that any construct
// needs it; the depth tracking is what keeps "(OFF+8)(r1)" whole).
func (p *parser) splitOperands(toks []lexer.Token) [][]lexer.Token {
	if len(toks) == 0 {
		return nil
	}
	var ops [][]lexer.Token
	depth, start := 0, 0
	for i, t := range toks {
		switch t.Kind {
		case lexer.LParen:
			depth++
		case lexer.RParen:
			depth--
		case lexer.Comma:
			if depth == 0 {
				if i == start {
					p.errorf(t, "empty operand")
				} else {
					ops = append(ops, toks[start:i])
				}
				start = i + 1
			}
		}
	}
	if start < len(toks) {
		ops = append(ops, toks[start:])
	} else {
		p.errorf(toks[len(toks)-1], "trailing comma after operand")
	}
	return ops
}

func (p *parser) requireOps(s stmt, n int) bool {
	if len(s.ops) != n {
		p.errorf(s.head, "%s: want %d operand(s), got %d", s.head.Text, n, len(s.ops))
		return false
	}
	return true
}

// --- pass one: sections, data layout, constants ---

func (p *parser) process(s stmt) {
	if p.section == secData {
		p.processData(s)
	} else {
		p.processText(s)
	}
}

func (p *parser) flushOrphanLabels() {
	for _, l := range p.pendingLabels {
		p.errorf(l, "data label %q has no directive", l.Text)
	}
	p.pendingLabels = nil
}

func (p *parser) processData(s stmt) {
	p.pendingLabels = append(p.pendingLabels, s.labels...)
	if !s.hasHead() {
		return
	}
	if s.head.Kind == lexer.Ident {
		p.errorf(s.head, "instruction %q in .data section (missing .text?)", s.head.Text)
		return
	}
	switch strings.ToLower(s.head.Text) {
	case ".data":
		p.requireOps(s, 0)
	case ".text":
		p.requireOps(s, 0)
		p.flushOrphanLabels()
		p.section = secText
	case ".equ", ".set":
		p.defineConst(s)
	case ".align":
		p.alignDirective(s)
	case ".space":
		if !p.requireOps(s, 1) {
			p.bindPendingLabels(p.alignData(8))
			return
		}
		n, ok := p.evalToks(s.ops[0])
		if !ok {
			n = 0
		}
		base := p.alignData(8)
		p.bindPendingLabels(base)
		p.dataNext = base + n
	case ".word":
		p.layoutData(s, itemWord, 8*uint64(len(s.ops)))
	case ".float":
		p.layoutData(s, itemFloat, 8*uint64(len(s.ops)))
	case ".byte":
		p.layoutData(s, itemByte, uint64(len(s.ops)))
	case ".ascii":
		p.layoutData(s, itemAscii, p.stringSize(s, 0))
	case ".asciz":
		p.layoutData(s, itemAsciz, p.stringSize(s, 1))
	default:
		p.errorf(s.head, "unknown directive %q", s.head.Text)
	}
}

func (p *parser) processText(s stmt) {
	if s.hasHead() && s.head.Kind == lexer.Directive {
		// Labels on a directive line still bind at the current pc.
		if len(s.labels) > 0 {
			p.code = append(p.code, stmt{labels: s.labels})
		}
		switch strings.ToLower(s.head.Text) {
		case ".data":
			p.requireOps(s, 0)
			p.section = secData
		case ".text":
			p.requireOps(s, 0)
		case ".equ", ".set":
			p.defineConst(s)
		case ".word", ".byte", ".float", ".ascii", ".asciz", ".space", ".align":
			p.errorf(s.head, "%s is only valid in the .data section", s.head.Text)
		default:
			p.errorf(s.head, "unknown directive %q", s.head.Text)
		}
		return
	}
	p.code = append(p.code, s)
}

// defineConst handles ".equ name, expr". The expression is evaluated
// immediately, so it may reference only constants and data symbols defined
// earlier in the file. Constants are single-assignment: with deferred
// data-initializer evaluation, redefinition would make a .word's value
// depend on which definition "won", so it is rejected outright.
func (p *parser) defineConst(s stmt) {
	if !p.requireOps(s, 2) {
		return
	}
	if len(s.ops[0]) != 1 || s.ops[0][0].Kind != lexer.Ident {
		p.errorf(s.ops[0][0], "%s: expected constant name", s.head.Text)
		return
	}
	nameTok := s.ops[0][0]
	if p.defined(nameTok.Text) {
		p.errorf(nameTok, "duplicate symbol %q", nameTok.Text)
		return
	}
	v, ok := p.evalToks(s.ops[1])
	if !ok {
		return
	}
	p.consts[nameTok.Text] = v
}

func (p *parser) alignDirective(s stmt) {
	if !p.requireOps(s, 1) {
		return
	}
	n, ok := p.evalToks(s.ops[0])
	if !ok {
		return
	}
	if n == 0 || n > 1<<20 || n&(n-1) != 0 {
		p.errorf(s.head, ".align needs a power-of-two byte count up to 2^20, got %d", n)
		return
	}
	// Pending labels stay pending: they bind at the next sized directive,
	// which re-aligns to 8 anyway.
	p.dataNext = (p.dataNext + n - 1) &^ (n - 1)
}

// alignData rounds the cursor up to n (a power of two) and returns it.
func (p *parser) alignData(n uint64) uint64 {
	p.dataNext = (p.dataNext + n - 1) &^ (n - 1)
	return p.dataNext
}

func (p *parser) bindPendingLabels(addr uint64) {
	for _, l := range p.pendingLabels {
		p.defineSymbol(l, addr)
	}
	p.pendingLabels = nil
}

func (p *parser) defineSymbol(tok lexer.Token, addr uint64) {
	if p.defined(tok.Text) {
		p.errorf(tok, "duplicate symbol %q", tok.Text)
		return
	}
	p.symbols[tok.Text] = addr
}

type itemKind uint8

const (
	itemWord itemKind = iota
	itemByte
	itemFloat
	itemAscii
	itemAsciz
)

// dataItem is one sized data directive whose bytes are filled in pass two.
type dataItem struct {
	s    stmt
	kind itemKind
	base uint64
	size uint64
}

func (p *parser) layoutData(s stmt, kind itemKind, size uint64) {
	base := p.alignData(8)
	p.bindPendingLabels(base)
	p.dataNext = base + size
	p.items = append(p.items, dataItem{s: s, kind: kind, base: base, size: size})
}

// stringSize sums the decoded lengths of a string directive's operands
// (plus pad bytes per string for .asciz), reporting non-string operands.
func (p *parser) stringSize(s stmt, pad int) uint64 {
	var n uint64
	for _, op := range s.ops {
		if len(op) != 1 || op[0].Kind != lexer.Str {
			p.errorf(op[0], "%s: expected string literal", s.head.Text)
			continue
		}
		n += uint64(len(op[0].Text) + pad)
	}
	return n
}

// fillData evaluates every deferred data initializer (all symbols are
// defined by now, so forward references into code or later data resolve)
// and materializes one Segment per directive, mirroring the old frontend's
// layout exactly.
func (p *parser) fillData() []Segment {
	segs := make([]Segment, 0, len(p.items))
	for _, it := range p.items {
		buf := make([]byte, 0, it.size)
		for _, op := range it.s.ops {
			switch it.kind {
			case itemWord:
				v, _ := p.evalToks(op)
				var w [8]byte
				binary.LittleEndian.PutUint64(w[:], v)
				buf = append(buf, w[:]...)
			case itemByte:
				v, _ := p.evalToks(op)
				buf = append(buf, byte(v))
			case itemFloat:
				f, _ := p.floatOperand(op)
				var w [8]byte
				binary.LittleEndian.PutUint64(w[:], math.Float64bits(f))
				buf = append(buf, w[:]...)
			case itemAscii, itemAsciz:
				if len(op) != 1 || op[0].Kind != lexer.Str {
					continue // reported at layout
				}
				buf = append(buf, op[0].Text...)
				if it.kind == itemAsciz {
					buf = append(buf, 0)
				}
			}
		}
		segs = append(segs, Segment{Base: it.base, Bytes: buf})
	}
	return segs
}

// floatOperand parses "[+-]? literal" where the literal is a Float or Int
// token. General expressions are integer-only; .float takes literals.
func (p *parser) floatOperand(toks []lexer.Token) (float64, bool) {
	neg := false
	if len(toks) > 0 && (toks[0].Kind == lexer.Minus || toks[0].Kind == lexer.Plus) {
		neg = toks[0].Kind == lexer.Minus
		toks = toks[1:]
	}
	if len(toks) != 1 || (toks[0].Kind != lexer.Float && toks[0].Kind != lexer.Int) {
		at := lexer.Token{Line: 1, Col: 1}
		if len(toks) > 0 {
			at = toks[0]
		}
		p.errorf(at, ".float: expected floating-point literal")
		return 0, false
	}
	var v float64
	if toks[0].Kind == lexer.Float {
		f, err := strconv.ParseFloat(toks[0].Text, 64)
		if err != nil {
			p.errorf(toks[0], "bad float literal %q", toks[0].Text)
			return 0, false
		}
		v = f
	} else {
		u, err := strconv.ParseUint(toks[0].Text, 0, 64)
		if err != nil {
			p.errorf(toks[0], "bad float literal %q", toks[0].Text)
			return 0, false
		}
		v = float64(int64(u))
	}
	if neg {
		v = -v
	}
	return v, true
}
