package parser

import (
	"strings"

	"prisim/internal/asm/lexer"
	"prisim/internal/isa"
)

// unit is one code statement after sizing: its pc, how many words it
// emits, and — for li/la — the fully lowered expansion (their value must
// be known at sizing time, so lowering happens there too).
type unit struct {
	s    stmt
	mnem string
	pc   uint64
	n    int
	li   []isa.Inst // non-nil for li/la
	bad  bool       // sizing already reported a diagnostic; emit nops
}

// sizeCode walks the text-section statements in order, defining code
// labels at their final addresses and fixing every instruction's size.
// Only li/la are variable-length; their operand expressions are evaluated
// here, which is why they may reference any data symbol or constant but
// only code labels defined earlier in the file.
func (p *parser) sizeCode() []unit {
	units := make([]unit, 0, len(p.code))
	pc := p.cfg.CodeBase
	for _, s := range p.code {
		for _, l := range s.labels {
			p.defineSymbol(l, pc)
		}
		if !s.hasHead() {
			continue
		}
		u := unit{s: s, mnem: strings.ToLower(s.head.Text), pc: pc, n: 1}
		switch u.mnem {
		case "li", "la":
			u.li, u.bad = p.lowerLi(s, u.mnem)
			if !u.bad {
				u.n = len(u.li)
			}
		default:
			if _, ok := isa.OpByName(u.mnem); !ok && !isPseudo(u.mnem) {
				p.errorf(s.head, "unknown mnemonic %q", s.head.Text)
				u.bad = true
			}
		}
		pc += 4 * uint64(u.n)
		units = append(units, u)
	}
	return units
}

// lowerLi lowers "li rd, expr" (and la, its alias for address-valued
// expressions) into the shortest standard expansion: 1 instruction for a
// 16-bit signed value, lui+ori for 32-bit, ori/slli 16-bit chunks in
// general.
func (p *parser) lowerLi(s stmt, mnem string) ([]isa.Inst, bool) {
	if !p.requireOps(s, 2) {
		return nil, true
	}
	rd, ok := p.regOperand(s.ops[0])
	if !ok {
		return nil, true
	}
	uv, ok := p.evalToks(s.ops[1])
	if !ok {
		return nil, true
	}
	v := int64(uv)
	var insts []isa.Inst
	ri := func(op isa.Op, rd, ra isa.Reg, imm int64) {
		insts = append(insts, isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
	}
	switch {
	case v >= -(1<<15) && v < 1<<15:
		ri(isa.OpADDI, rd, isa.RZero, v)
	case v >= -(1<<31) && v < 1<<31:
		ri(isa.OpLUI, rd, isa.RZero, int64(int16(v>>16)))
		if lo := v & 0xFFFF; lo != 0 {
			ri(isa.OpORI, rd, rd, lo)
		}
	default:
		// 16-bit chunks, most significant first, skipping leading zeros.
		started := false
		for shift := 48; shift >= 0; shift -= 16 {
			chunk := int64((uv >> uint(shift)) & 0xFFFF)
			if !started {
				if chunk == 0 {
					continue
				}
				ri(isa.OpORI, rd, isa.RZero, chunk)
				started = true
				continue
			}
			ri(isa.OpSLLI, rd, rd, 16)
			if chunk != 0 {
				ri(isa.OpORI, rd, rd, chunk)
			}
		}
		if !started {
			ri(isa.OpADDI, rd, isa.RZero, 0)
		}
	}
	return insts, false
}

// encodeCode is pass two over the code: every operand expression is
// evaluated (all symbols are defined now, so forward branch targets and
// references into later .data blocks resolve), targets are range-checked,
// and the instructions are encoded. Statements that already failed emit
// nops to keep subsequent addresses aligned with the sizing pass; once any
// diagnostic exists no image is produced, so the filler is never observed.
func (p *parser) encodeCode(units []unit) ([]uint32, []Pos) {
	var code []uint32
	var lines []Pos
	nop := isa.Inst{Op: isa.OpNOP}
	for _, u := range units {
		at := Pos{Line: u.s.head.Line, Col: u.s.head.Col}
		insts := u.li
		if insts == nil && !u.bad {
			in, ok := p.encodeInst(u)
			if !ok {
				u.bad = true
			} else {
				insts = []isa.Inst{in}
			}
		}
		if u.bad {
			for i := 0; i < u.n; i++ {
				w, _ := nop.Encode()
				code = append(code, w)
				lines = append(lines, at)
			}
			continue
		}
		for _, in := range insts {
			w, err := in.Encode()
			if err != nil {
				p.errorf(u.s.head, "cannot encode %s: %v", in, err)
				w, _ = nop.Encode()
			}
			code = append(code, w)
			lines = append(lines, at)
		}
	}
	return code, lines
}

// regOperand requires op to be a single register token.
func (p *parser) regOperand(op []lexer.Token) (isa.Reg, bool) {
	if len(op) != 1 || op[0].Kind != lexer.Ident {
		p.errorf(op[0], "expected register, found %s", op[0])
		return 0, false
	}
	r, err := isa.ParseReg(op[0].Text)
	if err != nil {
		p.errorf(op[0], "expected register, found %q", op[0].Text)
		return 0, false
	}
	return r, true
}

// memOperand parses "expr(reg)" or "(reg)". The base register is found by
// matching the trailing parenthesis pair, so a parenthesized offset
// expression like "(OFF+8)(r1)" parses cleanly.
func (p *parser) memOperand(op []lexer.Token) (int64, isa.Reg, bool) {
	if len(op) < 3 || op[len(op)-1].Kind != lexer.RParen {
		p.errorf(op[0], `expected memory operand "off(base)"`)
		return 0, 0, false
	}
	open := -1
	depth := 0
	for i := len(op) - 1; i >= 0; i-- {
		switch op[i].Kind {
		case lexer.RParen:
			depth++
		case lexer.LParen:
			depth--
			if depth == 0 {
				open = i
			}
		}
		if open >= 0 {
			break
		}
	}
	if open < 0 {
		p.errorf(op[len(op)-1], "unbalanced parentheses in memory operand")
		return 0, 0, false
	}
	inner := op[open+1 : len(op)-1]
	if len(inner) != 1 || inner[0].Kind != lexer.Ident {
		p.errorf(op[open], "expected base register inside parentheses")
		return 0, 0, false
	}
	base, err := isa.ParseReg(inner[0].Text)
	if err != nil {
		p.errorf(inner[0], "expected base register, found %q", inner[0].Text)
		return 0, 0, false
	}
	off := int64(0)
	if open > 0 {
		v, ok := p.evalToks(op[:open])
		if !ok {
			return 0, 0, false
		}
		off = int64(v)
	}
	return off, base, true
}

// target evaluates a branch/jump target operand to an absolute address.
func (p *parser) target(op []lexer.Token) (uint64, bool) {
	return p.evalToks(op)
}

// encodeInst lowers one sized statement (everything except li/la) to a
// single instruction.
func (p *parser) encodeInst(u unit) (isa.Inst, bool) {
	s := u.s
	ops := s.ops
	bad := isa.Inst{}

	reg := func(i int) (isa.Reg, bool) {
		if i >= len(ops) {
			p.errorf(s.head, "%s: missing operand %d", u.mnem, i+1)
			return 0, false
		}
		return p.regOperand(ops[i])
	}
	imm := func(i int) (int64, bool) {
		if i >= len(ops) {
			p.errorf(s.head, "%s: missing operand %d", u.mnem, i+1)
			return 0, false
		}
		v, ok := p.evalToks(ops[i])
		return int64(v), ok
	}
	need := func(n int) bool { return p.requireOps(s, n) }

	// Pseudo-instructions first (li/la were lowered during sizing).
	switch u.mnem {
	case "mov":
		if !need(2) {
			return bad, false
		}
		rd, ok1 := reg(0)
		ra, ok2 := reg(1)
		if !ok1 || !ok2 {
			return bad, false
		}
		if rd.IsFP() || ra.IsFP() {
			return isa.Inst{Op: isa.OpFMOV, Rd: rd, Ra: ra}, true
		}
		return isa.Inst{Op: isa.OpADD, Rd: rd, Ra: ra, Rb: isa.RZero}, true
	case "beqz", "bnez":
		if !need(2) {
			return bad, false
		}
		ra, ok := reg(0)
		if !ok {
			return bad, false
		}
		op := isa.OpBEQ
		if u.mnem == "bnez" {
			op = isa.OpBNE
		}
		return p.branch(u, op, ra, isa.RZero, ops[1])
	case "ret":
		if !need(0) {
			return bad, false
		}
		return isa.Inst{Op: isa.OpJR, Ra: isa.RLR}, true
	}

	op, _ := isa.OpByName(u.mnem) // known: sizing rejected unknown mnemonics
	switch op.Format() {
	case isa.FmtR:
		switch op {
		case isa.OpNOP, isa.OpHALT:
			if !need(0) {
				return bad, false
			}
			return isa.Inst{Op: op}, true
		case isa.OpPUTC, isa.OpJR:
			if !need(1) {
				return bad, false
			}
			ra, ok := reg(0)
			if !ok {
				return bad, false
			}
			return isa.Inst{Op: op, Ra: ra}, true
		case isa.OpJALR:
			// "jalr ra" (link to lr) or "jalr rd, ra".
			switch len(ops) {
			case 1:
				ra, ok := reg(0)
				if !ok {
					return bad, false
				}
				return isa.Inst{Op: op, Rd: isa.RLR, Ra: ra}, true
			case 2:
				rd, ok1 := reg(0)
				ra, ok2 := reg(1)
				if !ok1 || !ok2 {
					return bad, false
				}
				return isa.Inst{Op: op, Rd: rd, Ra: ra}, true
			default:
				p.errorf(s.head, "jalr: want 1 or 2 operands, got %d", len(ops))
				return bad, false
			}
		case isa.OpFSQRT, isa.OpFMOV, isa.OpFNEG, isa.OpFABS, isa.OpCVTIF, isa.OpCVTFI:
			if !need(2) {
				return bad, false
			}
			rd, ok1 := reg(0)
			ra, ok2 := reg(1)
			if !ok1 || !ok2 {
				return bad, false
			}
			return isa.Inst{Op: op, Rd: rd, Ra: ra}, true
		default:
			if !need(3) {
				return bad, false
			}
			rd, ok1 := reg(0)
			ra, ok2 := reg(1)
			rb, ok3 := reg(2)
			if !ok1 || !ok2 || !ok3 {
				return bad, false
			}
			return isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}, true
		}
	case isa.FmtI:
		if op == isa.OpLUI {
			if !need(2) {
				return bad, false
			}
			rd, ok1 := reg(0)
			v, ok2 := imm(1)
			if !ok1 || !ok2 {
				return bad, false
			}
			return isa.Inst{Op: op, Rd: rd, Ra: isa.RZero, Imm: v}, true
		}
		if !need(3) {
			return bad, false
		}
		rd, ok1 := reg(0)
		ra, ok2 := reg(1)
		v, ok3 := imm(2)
		if !ok1 || !ok2 || !ok3 {
			return bad, false
		}
		return isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: v}, true
	case isa.FmtLS:
		if !need(2) {
			return bad, false
		}
		rd, ok := reg(0)
		if !ok {
			return bad, false
		}
		off, base, ok := p.memOperand(ops[1])
		if !ok {
			return bad, false
		}
		return isa.Inst{Op: op, Rd: rd, Ra: base, Imm: off}, true
	case isa.FmtB:
		if !need(3) {
			return bad, false
		}
		ra, ok1 := reg(0)
		rb, ok2 := reg(1)
		if !ok1 || !ok2 {
			return bad, false
		}
		return p.branch(u, op, ra, rb, ops[2])
	case isa.FmtJ:
		if !need(1) {
			return bad, false
		}
		addr, ok := p.target(ops[0])
		if !ok {
			return bad, false
		}
		at := ops[0][0]
		if addr%4 != 0 {
			p.errorf(at, "jump target %#x is not instruction-aligned", addr)
			return bad, false
		}
		if addr>>28 != (u.pc+4)>>28 {
			p.errorf(at, "jump target %#x crosses a 256MB region", addr)
			return bad, false
		}
		return isa.Inst{Op: op, Imm: int64((addr >> 2) & (1<<26 - 1))}, true
	}
	p.errorf(s.head, "unknown mnemonic %q", s.head.Text)
	return bad, false
}

// branch resolves a conditional-branch target to a word displacement.
func (p *parser) branch(u unit, op isa.Op, ra, rb isa.Reg, targetOp []lexer.Token) (isa.Inst, bool) {
	addr, ok := p.target(targetOp)
	if !ok {
		return isa.Inst{}, false
	}
	at := targetOp[0]
	delta := int64(addr) - int64(u.pc) - 4
	if delta%4 != 0 {
		p.errorf(at, "branch target %#x is not instruction-aligned", addr)
		return isa.Inst{}, false
	}
	disp := delta / 4
	if disp < -(1<<15) || disp >= 1<<15 {
		p.errorf(at, "branch target out of range (%d instructions away)", disp)
		return isa.Inst{}, false
	}
	return isa.Inst{Op: op, Ra: ra, Rb: rb, Imm: disp}, true
}
