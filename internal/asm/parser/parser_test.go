package parser

import (
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"

	"prisim/internal/isa"
)

const (
	testCodeBase = 0x0001_0000
	testDataBase = 0x0100_0000
)

func parse(t *testing.T, src string) *Image {
	t.Helper()
	img, err := Parse(src, Config{CodeBase: testCodeBase, DataBase: testDataBase})
	if err != nil {
		t.Fatalf("Parse failed:\n%v", err)
	}
	return img
}

func parseErr(t *testing.T, src string) *Error {
	t.Helper()
	_, err := Parse(src, Config{CodeBase: testCodeBase, DataBase: testDataBase})
	if err == nil {
		t.Fatalf("Parse(%q) succeeded, want error", src)
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *Error", err)
	}
	return pe
}

func decode(img *Image, i int) isa.Inst { return isa.Decode(img.Code[i]) }

func TestConstantExpressions(t *testing.T) {
	img := parse(t, `
.equ N, 8
.data
tbl: .word 3*N+1, (N+2)*4, 1<<N, N-10, ~0, 100/N, -100/4, 0xFF&0x0F, 1|2|4, 7^5, 100%N
.text
main: halt
`)
	want := []uint64{25, 40, 256, ^uint64(1), ^uint64(0), 12, ^uint64(24), 0x0F, 7, 2, 4}
	if len(img.Data) != 1 || len(img.Data[0].Bytes) != 8*len(want) {
		t.Fatalf("data = %+v", img.Data)
	}
	for i, w := range want {
		got := binary.LittleEndian.Uint64(img.Data[0].Bytes[8*i:])
		if got != w {
			t.Errorf("word %d = %d (%#x), want %d", i, got, got, w)
		}
	}
}

func TestExprPrecedenceAndParens(t *testing.T) {
	img := parse(t, `
.data
v: .word 2+3*4, (2+3)*4, 16>>2+2, 1<<2*2
.text
main: halt
`)
	// <<,>> bind looser than +,*: 16>>(2+2)=1, 1<<(2*2)=16.
	want := []uint64{14, 20, 1, 16}
	for i, w := range want {
		if got := binary.LittleEndian.Uint64(img.Data[0].Bytes[8*i:]); got != w {
			t.Errorf("word %d = %d, want %d", i, got, w)
		}
	}
}

func TestMemOperandExpression(t *testing.T) {
	img := parse(t, `
.equ OFF, 8
.data
d: .word 1, 2, 3
.text
main:
  la  r1, d
  ldq r2, (OFF+8)(r1)
  ldq r3, OFF(r1)
  ldq r4, (r1)
  halt
`)
	find := func(imm int64) bool {
		for _, w := range img.Code {
			in := isa.Decode(w)
			if in.Op == isa.OpLDQ && in.Imm == imm {
				return true
			}
		}
		return false
	}
	for _, imm := range []int64{16, 8, 0} {
		if !find(imm) {
			t.Errorf("no ldq with offset %d", imm)
		}
	}
}

func TestImmediateExpression(t *testing.T) {
	img := parse(t, `
.equ STEP, 3
.text
main:
  addi r1, zero, STEP*4-2
  halt
`)
	if in := decode(img, 0); in.Op != isa.OpADDI || in.Imm != 10 {
		t.Errorf("inst 0 = %v", in)
	}
}

func TestEquSetAndRedefinition(t *testing.T) {
	parse(t, ".equ A, 1\n.set B, A+1\n.text\nmain: addi r1, zero, B\nhalt")
	pe := parseErr(t, ".equ A, 1\n.equ A, 2\nhalt")
	if !strings.Contains(pe.Error(), "duplicate symbol") {
		t.Errorf("error = %v", pe)
	}
}

func TestMacroWithParamsAndLocalLabels(t *testing.T) {
	img := parse(t, `
.macro countdown reg, start
  li \reg, \start
loop\@:
  addi \reg, \reg, -1
  bnez \reg, loop\@
.endm
.text
main:
  countdown r1, 3
  countdown r2, 5
  halt
`)
	// Two expansions, each 3 instructions, plus halt.
	if len(img.Code) != 7 {
		t.Fatalf("len(code) = %d, want 7", len(img.Code))
	}
	// Both branches must be backward by one instruction (disp -2).
	for _, i := range []int{2, 5} {
		if in := decode(img, i); in.Op != isa.OpBNE || in.Imm != -2 {
			t.Errorf("inst %d = %v, want bne disp -2", i, in)
		}
	}
	if _, ok := img.Symbols["loop0"]; !ok {
		t.Error("loop0 not defined")
	}
	if _, ok := img.Symbols["loop1"]; !ok {
		t.Error("loop1 not defined")
	}
}

func TestMacroInvokingMacro(t *testing.T) {
	img := parse(t, `
.macro twice reg
  addi \reg, \reg, 2
.endm
.macro quad reg
  twice \reg
  twice \reg
.endm
.text
main:
  quad r3
  halt
`)
	if len(img.Code) != 3 {
		t.Fatalf("len(code) = %d, want 3", len(img.Code))
	}
	for i := 0; i < 2; i++ {
		if in := decode(img, i); in.Op != isa.OpADDI || in.Imm != 2 {
			t.Errorf("inst %d = %v", i, in)
		}
	}
}

func TestMacroExpressionArgument(t *testing.T) {
	img := parse(t, `
.equ N, 4
.macro addk rd, k
  addi \rd, \rd, \k
.endm
.text
main:
  addk r1, N*2+1
  halt
`)
	if in := decode(img, 0); in.Imm != 9 {
		t.Errorf("inst 0 = %v, want imm 9", in)
	}
}

func TestMacroErrors(t *testing.T) {
	cases := map[string]string{
		".macro m\nnop\n.endm\n.macro m\nnop\n.endm\nhalt": "duplicate macro",
		".macro add\nnop\n.endm\nhalt":                     "shadows an instruction",
		".macro m a\nnop\n.endm\n.text\nm 1, 2\nhalt":      "takes 1 argument(s), got 2",
		".macro m\naddi r1, r1, \\k\n.endm\n.text\nm\nhalt": `unknown macro parameter \k`,
		".macro m\nnop\nhalt":                              "missing .endm",
		".endm\nhalt":                                      ".endm without",
		".macro r\nr\n.endm\n.text\nr\nhalt":               "exceeds depth",
	}
	for src, want := range cases {
		pe := parseErr(t, src)
		if !strings.Contains(pe.Error(), want) {
			t.Errorf("Parse(%q) error = %v, want substring %q", src, pe, want)
		}
	}
}

func TestForwardReferenceToLaterData(t *testing.T) {
	// The old frontend required data before la; the new one resolves
	// references into later .data blocks.
	img := parse(t, `
.text
main:
  la  r1, later
  ldq r2, 0(r1)
  halt
.data
later: .word 99
`)
	if img.Symbols["later"] == 0 {
		t.Fatal("later not defined")
	}
	if got := binary.LittleEndian.Uint64(img.Data[0].Bytes); got != 99 {
		t.Errorf("data = %d", got)
	}
}

func TestForwardBranchAndDataRefInWord(t *testing.T) {
	img := parse(t, `
.data
ptrs: .word main, end
.text
main:
  beq zero, zero, end
  nop
end:
  halt
`)
	if got := binary.LittleEndian.Uint64(img.Data[0].Bytes); got != img.Symbols["main"] {
		t.Errorf("ptrs[0] = %#x, want main %#x", got, img.Symbols["main"])
	}
	if got := binary.LittleEndian.Uint64(img.Data[0].Bytes[8:]); got != img.Symbols["end"] {
		t.Errorf("ptrs[1] = %#x, want end %#x", got, img.Symbols["end"])
	}
	if in := decode(img, 0); in.Op != isa.OpBEQ || in.Imm != 1 {
		t.Errorf("inst 0 = %v, want beq disp 1", in)
	}
}

func TestAlignDirective(t *testing.T) {
	img := parse(t, `
.data
a: .byte 1
.align 64
b: .byte 2
.text
main: halt
`)
	if img.Symbols["b"]%64 != 0 {
		t.Errorf("b = %#x, not 64-aligned", img.Symbols["b"])
	}
	if img.Symbols["b"] <= img.Symbols["a"] {
		t.Errorf("b = %#x not after a = %#x", img.Symbols["b"], img.Symbols["a"])
	}
	pe := parseErr(t, ".data\n.align 3\n.text\nhalt")
	if !strings.Contains(pe.Error(), "power-of-two") {
		t.Errorf("error = %v", pe)
	}
}

func TestAsciiAsciz(t *testing.T) {
	img := parse(t, `
.data
a: .ascii "ab", "cd"
z: .asciz "x"
.text
main: halt
`)
	if string(img.Data[0].Bytes) != "abcd" {
		t.Errorf(".ascii bytes = %q", img.Data[0].Bytes)
	}
	if string(img.Data[1].Bytes) != "x\x00" {
		t.Errorf(".asciz bytes = %q", img.Data[1].Bytes)
	}
}

func TestFloatData(t *testing.T) {
	img := parse(t, `
.data
v: .float 2.5, -1.5, 3, 1e2
.text
main: halt
`)
	want := []float64{2.5, -1.5, 3, 100}
	for i, w := range want {
		got := math.Float64frombits(binary.LittleEndian.Uint64(img.Data[0].Bytes[8*i:]))
		if got != w {
			t.Errorf("float %d = %v, want %v", i, got, w)
		}
	}
}

func TestDiagnosticsCollectedAndPositioned(t *testing.T) {
	pe := parseErr(t, `.text
main:
  frobnicate r1, r2
  addi r1, r2, bogus_sym
  halt
`)
	if len(pe.Diags) < 2 {
		t.Fatalf("got %d diagnostics, want >= 2:\n%v", len(pe.Diags), pe)
	}
	for _, d := range pe.Diags {
		if d.Line <= 0 || d.Col <= 0 {
			t.Errorf("diagnostic without position: %+v", d)
		}
		if d.File != "<input>" {
			t.Errorf("diagnostic file = %q", d.File)
		}
	}
	if pe.Diags[0].Line > pe.Diags[1].Line {
		t.Error("diagnostics not sorted by position")
	}
	if !strings.Contains(pe.Diags[0].Msg, "frobnicate") {
		t.Errorf("first diagnostic = %+v", pe.Diags[0])
	}
	if pe.Diags[0].Excerpt == "" || !strings.Contains(pe.Diags[0].Excerpt, "frobnicate") {
		t.Errorf("excerpt missing: %+v", pe.Diags[0])
	}
}

func TestDiagnosticRendering(t *testing.T) {
	pe := parseErr(t, "  zork r1\nhalt")
	s := pe.Error()
	if !strings.Contains(s, "<input>:1:3:") {
		t.Errorf("rendered error missing position: %q", s)
	}
	if !strings.Contains(s, "^") {
		t.Errorf("rendered error missing caret: %q", s)
	}
}

func TestDiagnosticCap(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".text\n")
	for i := 0; i < 300; i++ {
		sb.WriteString("bogus r1\n")
	}
	pe := parseErr(t, sb.String())
	if len(pe.Diags) > maxDiagnostics+1 {
		t.Fatalf("got %d diagnostics, cap is %d", len(pe.Diags), maxDiagnostics)
	}
	last := pe.Diags[len(pe.Diags)-1]
	if !strings.Contains(last.Msg, "too many errors") {
		t.Errorf("missing cap notice, last = %+v", last)
	}
}

func TestFileNameInDiagnostics(t *testing.T) {
	_, err := Parse("zork", Config{File: "prog.s", CodeBase: testCodeBase, DataBase: testDataBase})
	var pe *Error
	if !errors.As(err, &pe) || pe.Diags[0].File != "prog.s" {
		t.Fatalf("err = %v", err)
	}
}

func TestErrorsNeverPanicOnBadInput(t *testing.T) {
	bad := []string{
		"", "\n", ":", "::", "x:", "(", ")", ",", "li", "li r1", "li r1,",
		".word", ".data\n.word (", ".data\n.word 1+", ".data\n.word ()",
		".macro", ".macro 1", `\a`, `\@`, ".data\nx: .space", ".align",
		".equ", ".equ x", "beq r1, r2", "j", "1+2", `.ascii 5`,
		".data\n.float x", "ldq r1, 8(", "ldq r1, 8()", "ldq r1, )8(r1)",
		"addi r1, zero, 0x10000000000000000",
	}
	for _, src := range bad {
		img, err := Parse(src, Config{CodeBase: testCodeBase, DataBase: testDataBase})
		// Empty-ish inputs may legitimately produce an empty image; what
		// matters is no panic and positioned diagnostics when they fail.
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Errorf("Parse(%q): error is %T", src, err)
				continue
			}
			for _, d := range pe.Diags {
				if d.Line <= 0 || d.Col <= 0 {
					t.Errorf("Parse(%q): unpositioned diagnostic %+v", src, d)
				}
			}
		} else if img == nil {
			t.Errorf("Parse(%q): nil image without error", src)
		}
	}
}

func TestImmEncodeRangeError(t *testing.T) {
	pe := parseErr(t, ".text\nmain: addi r1, zero, 70000\nhalt")
	if !strings.Contains(pe.Error(), "cannot encode") {
		t.Errorf("error = %v", pe)
	}
}

func TestBranchRangeError(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(".text\nmain: beq zero, zero, far\n")
	for i := 0; i < 1<<15+10; i++ {
		sb.WriteString("nop\n")
	}
	sb.WriteString("far: halt\n")
	pe := parseErr(t, sb.String())
	if !strings.Contains(pe.Error(), "out of range") {
		t.Errorf("error = %v", pe)
	}
}

func TestEntryIsMainElseCodeBase(t *testing.T) {
	img := parse(t, ".text\nnop\nmain: halt")
	if img.Entry != img.Symbols["main"] {
		t.Errorf("entry = %#x, want main", img.Entry)
	}
	img = parse(t, ".text\nhalt")
	if img.Entry != testCodeBase {
		t.Errorf("entry = %#x, want code base", img.Entry)
	}
}

func TestOrphanDataLabel(t *testing.T) {
	for _, src := range []string{
		".data\norphan:\n.text\nhalt",
		".data\norphan:",
	} {
		pe := parseErr(t, src)
		if !strings.Contains(pe.Error(), "has no directive") {
			t.Errorf("Parse(%q) error = %v", src, pe)
		}
	}
}

func TestCommentCharsInStringLiteral(t *testing.T) {
	img := parse(t, `
.data
msg: .asciz "semi;hash#done"
.text
main: halt
`)
	if string(img.Data[0].Bytes) != "semi;hash#done\x00" {
		t.Errorf("bytes = %q", img.Data[0].Bytes)
	}
}

func TestConstExcludedFromSymbols(t *testing.T) {
	img := parse(t, ".equ N, 65536\n.text\nmain: addi r1, zero, N/65536\nhalt")
	if _, ok := img.Symbols["N"]; ok {
		t.Error(".equ constant leaked into Symbols")
	}
}
