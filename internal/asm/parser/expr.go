package parser

import (
	"strconv"

	"prisim/internal/asm/lexer"
)

// Constant expressions are evaluated in the uint64 domain with wraparound,
// so ".word -1" and ".word 0xFFFFFFFFFFFFFFFF" both mean the same bit
// pattern, matching the old frontend's ParseInt/ParseUint fallback.
// Addition, subtraction, multiplication, and the bitwise operators act on
// the raw 64-bit pattern; division and modulo are signed; ">>" is logical.
//
// The parser is Pratt-style: every operator token carries a left binding
// power; unary operators bind tighter than any binary one.

type exprNode interface {
	pos() lexer.Token
}

type litNode struct {
	tok lexer.Token
	val uint64
}

type symNode struct {
	tok lexer.Token
}

type unaryNode struct {
	tok lexer.Token // the operator
	x   exprNode
}

type binNode struct {
	tok  lexer.Token // the operator
	x, y exprNode
}

func (n *litNode) pos() lexer.Token   { return n.tok }
func (n *symNode) pos() lexer.Token   { return n.tok }
func (n *unaryNode) pos() lexer.Token { return n.tok }
func (n *binNode) pos() lexer.Token   { return n.tok }

// binaryBP returns the left binding power of a binary operator token, or 0
// if the kind is not a binary operator. C-like precedence.
func binaryBP(k lexer.Kind) int {
	switch k {
	case lexer.Pipe:
		return 10
	case lexer.Caret:
		return 20
	case lexer.Amp:
		return 30
	case lexer.Shl, lexer.Shr:
		return 40
	case lexer.Plus, lexer.Minus:
		return 50
	case lexer.Star, lexer.Slash, lexer.Percent:
		return 60
	}
	return 0
}

const unaryBP = 70

// exprParser walks one operand's token slice.
type exprParser struct {
	p    *parser
	toks []lexer.Token
	pos  int
	bad  bool // a diagnostic was already reported; stay quiet
}

func (e *exprParser) peek() lexer.Token {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	// Synthesize an EOF-ish token positioned just past the last real one.
	if len(e.toks) > 0 {
		last := e.toks[len(e.toks)-1]
		return lexer.Token{Kind: lexer.EOF, Line: last.Line, Col: last.Col + last.Width()}
	}
	return lexer.Token{Kind: lexer.EOF, Line: 1, Col: 1}
}

func (e *exprParser) next() lexer.Token {
	t := e.peek()
	if e.pos < len(e.toks) {
		e.pos++
	}
	return t
}

func (e *exprParser) errorf(tok lexer.Token, format string, args ...any) {
	if !e.bad {
		e.p.errorf(tok, format, args...)
		e.bad = true
	}
}

// parseExpr parses a complete expression from toks, requiring all tokens to
// be consumed. Returns nil after reporting a diagnostic.
func (p *parser) parseExpr(toks []lexer.Token) exprNode {
	e := &exprParser{p: p, toks: toks}
	if len(toks) == 0 {
		p.errorf(lexer.Token{Line: 1, Col: 1}, "missing expression")
		return nil
	}
	n := e.parseBP(0)
	if n == nil {
		return nil
	}
	if rest := e.peek(); rest.Kind != lexer.EOF {
		e.errorf(rest, "unexpected %s after expression", rest)
		return nil
	}
	return n
}

func (e *exprParser) parseBP(minBP int) exprNode {
	var left exprNode
	tok := e.next()
	switch tok.Kind {
	case lexer.Int:
		v, err := strconv.ParseUint(tok.Text, 0, 64)
		if err != nil {
			// Out-of-range positive literals; negatives arrive via unary
			// minus, so only overflow lands here.
			e.errorf(tok, "integer literal %s overflows 64 bits", tok.Text)
			return nil
		}
		left = &litNode{tok: tok, val: v}
	case lexer.Ident:
		left = &symNode{tok: tok}
	case lexer.LParen:
		inner := e.parseBP(0)
		if inner == nil {
			return nil
		}
		if close := e.next(); close.Kind != lexer.RParen {
			e.errorf(close, "expected %q to close %q, found %s", ")", "(", close)
			return nil
		}
		left = inner
	case lexer.Minus, lexer.Plus, lexer.Tilde:
		x := e.parseBP(unaryBP)
		if x == nil {
			return nil
		}
		left = &unaryNode{tok: tok, x: x}
	case lexer.Float:
		e.errorf(tok, "floating-point literal %s in integer expression (floats are only valid in .float)", tok.Text)
		return nil
	case lexer.MacroArg:
		e.errorf(tok, `macro argument \%s outside a macro body`, tok.Text)
		return nil
	default:
		e.errorf(tok, "expected expression, found %s", tok)
		return nil
	}

	for {
		op := e.peek()
		bp := binaryBP(op.Kind)
		if bp == 0 || bp <= minBP {
			return left
		}
		e.next()
		right := e.parseBP(bp) // left-associative
		if right == nil {
			return nil
		}
		left = &binNode{tok: op, x: left, y: right}
	}
}

// eval computes the expression value over the parser's symbol tables.
// Undefined symbols and division by zero report a diagnostic and return
// ok=false.
func (p *parser) eval(n exprNode) (uint64, bool) {
	switch n := n.(type) {
	case *litNode:
		return n.val, true
	case *symNode:
		v, ok := p.lookup(n.tok.Text)
		if !ok {
			p.errorf(n.tok, "undefined symbol %q", n.tok.Text)
			return 0, false
		}
		return v, true
	case *unaryNode:
		x, ok := p.eval(n.x)
		if !ok {
			return 0, false
		}
		switch n.tok.Kind {
		case lexer.Minus:
			return -x, true
		case lexer.Tilde:
			return ^x, true
		default: // unary plus
			return x, true
		}
	case *binNode:
		x, ok := p.eval(n.x)
		if !ok {
			return 0, false
		}
		y, ok := p.eval(n.y)
		if !ok {
			return 0, false
		}
		switch n.tok.Kind {
		case lexer.Plus:
			return x + y, true
		case lexer.Minus:
			return x - y, true
		case lexer.Star:
			return x * y, true
		case lexer.Slash:
			if y == 0 {
				p.errorf(n.tok, "division by zero in constant expression")
				return 0, false
			}
			// Signed division so "-8/2" means -4; INT64_MIN / -1 would
			// panic in Go, so it wraps to the two's-complement negate.
			if int64(y) == -1 {
				return -x, true
			}
			return uint64(int64(x) / int64(y)), true
		case lexer.Percent:
			if y == 0 {
				p.errorf(n.tok, "modulo by zero in constant expression")
				return 0, false
			}
			if int64(y) == -1 {
				return 0, true
			}
			return uint64(int64(x) % int64(y)), true
		case lexer.Amp:
			return x & y, true
		case lexer.Pipe:
			return x | y, true
		case lexer.Caret:
			return x ^ y, true
		case lexer.Shl:
			if y >= 64 {
				return 0, true
			}
			return x << y, true
		case lexer.Shr:
			if y >= 64 {
				return 0, true
			}
			return x >> y, true
		}
	}
	return 0, false
}

// evalToks parses and evaluates one operand as an integer expression.
func (p *parser) evalToks(toks []lexer.Token) (uint64, bool) {
	n := p.parseExpr(toks)
	if n == nil {
		return 0, false
	}
	return p.eval(n)
}
