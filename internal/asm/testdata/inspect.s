.data
tbl: .space 2048
.text
main:
  la   r1, tbl
  li   r2, 300
  li   r8, 0          ; checksum accumulator
loop:
  andi r3, r2, 255
  slli r4, r3, 3
  add  r5, r1, r4
  ldq  r6, 0(r5)
  addi r6, r6, 1
  stq  r6, 0(r5)
  mul  r7, r6, r3
  add  r8, r8, r7
  addi r2, r2, -1
  bnez r2, loop
  halt
