.data
text:  .space 4096
hist:  .space 2048
.text
main:
  la   r1, text
  li   r2, 4096
  li   r3, 1        ; lcg state
fill:               ; synthesize "text" with a tiny LCG
  li   r4, 75
  mul  r3, r3, r4
  addi r3, r3, 74
  andi r5, r3, 127  ; narrow symbol
  stb  r5, 0(r1)
  addi r1, r1, 1
  addi r2, r2, -1
  bnez r2, fill

  la   r1, text
  la   r6, hist
  li   r2, 4096
count:
  ldbu r5, 0(r1)    ; narrow byte
  slli r7, r5, 2
  add  r8, r6, r7
  ldl  r9, 0(r8)    ; narrow counter
  addi r9, r9, 1
  stl  r9, 0(r8)
  addi r1, r1, 1
  addi r2, r2, -1
  bnez r2, count
  halt
