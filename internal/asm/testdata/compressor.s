.data
input:  .ascii "aaaabbbcccccccddaaaaaaaabbbbcdeffffffffggggggghhhhhhhhhiiiijjjjjjjjjkkkkklllllllm"
inlen:  .word 81
output: .space 256
outlen: .space 8
.text
main:
  la   r1, input
  la   r2, output
  la   r3, inlen
  ldq  r3, 0(r3)
  add  r4, r1, r3    ; end of input
  li   r10, 0        ; output length
loop:
  ldbu r5, 0(r1)     ; current symbol
  li   r6, 1         ; run length
run:
  addi r7, r1, 1
  bgeu r7, r4, emit  ; end of input?
  ldbu r8, 0(r7)
  bne  r8, r5, emit
  mov  r1, r7
  addi r6, r6, 1
  j    run
emit:
  stb  r5, 0(r2)     ; symbol
  addi r6, r6, 48    ; run length as an ASCII digit (runs < 10 assumed per digit)
  stb  r6, 1(r2)
  addi r2, r2, 2
  addi r10, r10, 2
  addi r1, r1, 1
  bltu r1, r4, loop
  la   r9, outlen
  stq  r10, 0(r9)
  ; print the compressed form
  la   r2, output
print:
  beqz r10, done
  ldbu r5, 0(r2)
  putc r5
  addi r2, r2, 1
  addi r10, r10, -1
  j    print
done:
  halt
