package asm

import (
	"encoding/binary"
	"fmt"
	"math"

	"prisim/internal/isa"
)

// Builder assembles a program from Go code. Data is declared first (each
// declaration returns its concrete address, so address materialization via
// Li needs no relocation machinery); code follows, with labels resolved when
// Finish is called.
//
// The builder panics on misuse (bad registers, duplicate labels); Finish
// returns an error for anything only detectable at link time (undefined
// labels, displacement overflow). Panics are appropriate here because the
// builder's callers are compiled-in kernel generators, not user input.
type Builder struct {
	codeBase uint64
	dataBase uint64
	dataNext uint64

	insts   []isa.Inst
	fixups  []fixup // branch/jump label references
	labels  map[string]int
	symbols map[string]uint64
	data    []Segment
	err     error
}

type fixup struct {
	inst  int // index into insts
	label string
}

// NewBuilder returns a Builder using the default memory layout.
func NewBuilder() *Builder {
	return &Builder{
		codeBase: DefaultCodeBase,
		dataBase: DefaultDataBase,
		dataNext: DefaultDataBase,
		labels:   make(map[string]int),
		symbols:  make(map[string]uint64),
	}
}

// PC returns the address of the next instruction to be emitted.
func (b *Builder) PC() uint64 { return b.codeBase + 4*uint64(len(b.insts)) }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q", name))
	}
	b.labels[name] = len(b.insts)
	b.symbols[name] = b.PC()
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Inst) { b.insts = append(b.insts, in) }

// RR emits a register-register operation: op rd, ra, rb.
func (b *Builder) RR(op isa.Op, rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
}

// R1 emits a one-source register operation (fmov, fneg, fsqrt, cvt*).
func (b *Builder) R1(op isa.Op, rd, ra isa.Reg) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra})
}

// RI emits an immediate operation: op rd, ra, imm.
func (b *Builder) RI(op isa.Op, rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// Load emits: op rd, off(base).
func (b *Builder) Load(op isa.Op, rd, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: off})
}

// Store emits: op data, off(base).
func (b *Builder) Store(op isa.Op, data, base isa.Reg, off int64) {
	b.Emit(isa.Inst{Op: op, Rd: data, Ra: base, Imm: off})
}

// Br emits a conditional branch to a label.
func (b *Builder) Br(op isa.Op, ra, rb isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Emit(isa.Inst{Op: op, Ra: ra, Rb: rb})
}

// Beqz and Bnez are the common single-operand branch forms.
func (b *Builder) Beqz(ra isa.Reg, label string) { b.Br(isa.OpBEQ, ra, isa.RZero, label) }

// Bnez branches to label when ra is nonzero.
func (b *Builder) Bnez(ra isa.Reg, label string) { b.Br(isa.OpBNE, ra, isa.RZero, label) }

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Emit(isa.Inst{Op: isa.OpJ})
}

// Call emits jal label.
func (b *Builder) Call(label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.Emit(isa.Inst{Op: isa.OpJAL})
}

// Ret emits jr lr.
func (b *Builder) Ret() { b.Emit(isa.Inst{Op: isa.OpJR, Ra: isa.RLR}) }

// Mov emits rd = ra.
func (b *Builder) Mov(rd, ra isa.Reg) { b.RR(isa.OpADD, rd, ra, isa.RZero) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNOP}) }

// Halt emits the program-stop instruction.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHALT}) }

// Li loads the 64-bit constant v into rd using the shortest of the standard
// expansions (1 instruction for 16-bit signed, 2 for 32-bit signed, up to 7
// in the general case).
func (b *Builder) Li(rd isa.Reg, v int64) {
	switch {
	case v >= -(1<<15) && v < 1<<15:
		b.RI(isa.OpADDI, rd, isa.RZero, v)
	case v >= -(1<<31) && v < 1<<31:
		b.RI(isa.OpLUI, rd, isa.RZero, int64(int16(v>>16)))
		if lo := v & 0xFFFF; lo != 0 {
			b.RI(isa.OpORI, rd, rd, lo)
		}
	default:
		// General form: assemble from 16-bit chunks, most significant
		// first, via ori/slli. Skipping leading zero chunks keeps common
		// 48-bit addresses at 5 instructions.
		u := uint64(v)
		started := false
		for shift := 48; shift >= 0; shift -= 16 {
			chunk := int64((u >> uint(shift)) & 0xFFFF)
			if !started {
				if chunk == 0 {
					continue
				}
				b.RI(isa.OpORI, rd, isa.RZero, chunk)
				started = true
				continue
			}
			b.RI(isa.OpSLLI, rd, rd, 16)
			if chunk != 0 {
				b.RI(isa.OpORI, rd, rd, chunk)
			}
		}
		if !started {
			b.RI(isa.OpADDI, rd, isa.RZero, 0)
		}
	}
}

// La loads the address of a previously declared data symbol.
func (b *Builder) La(rd isa.Reg, symbol string) {
	addr, ok := b.symbols[symbol]
	if !ok {
		panic(fmt.Sprintf("asm: La of undeclared symbol %q (declare data before code)", symbol))
	}
	b.Li(rd, int64(addr))
}

// align rounds the data cursor up to a multiple of n (a power of two).
func (b *Builder) align(n uint64) { b.dataNext = (b.dataNext + n - 1) &^ (n - 1) }

// Bytes declares an initialized byte array in the data segment and returns
// its address. The name is recorded as a symbol (empty name allowed).
func (b *Builder) Bytes(name string, data []byte) uint64 {
	b.align(8)
	addr := b.dataNext
	seg := Segment{Base: addr, Bytes: append([]byte(nil), data...)}
	b.data = append(b.data, seg)
	b.dataNext += uint64(len(data))
	if name != "" {
		b.defineDataSymbol(name, addr)
	}
	return addr
}

// Words declares an initialized array of 64-bit words and returns its address.
func (b *Builder) Words(name string, words []uint64) uint64 {
	buf := make([]byte, 8*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return b.Bytes(name, buf)
}

// Floats declares an initialized array of float64 values and returns its address.
func (b *Builder) Floats(name string, vals []float64) uint64 {
	words := make([]uint64, len(vals))
	for i, v := range vals {
		words[i] = math.Float64bits(v)
	}
	return b.Words(name, words)
}

// Space reserves n zeroed bytes and returns their address. Zeroed space
// costs nothing in the image: the emulator's memory reads as zero by
// default, so only the symbol and layout advance are recorded.
func (b *Builder) Space(name string, n uint64) uint64 {
	b.align(8)
	addr := b.dataNext
	b.dataNext += n
	if name != "" {
		b.defineDataSymbol(name, addr)
	}
	return addr
}

func (b *Builder) defineDataSymbol(name string, addr uint64) {
	if _, dup := b.symbols[name]; dup {
		panic(fmt.Sprintf("asm: duplicate symbol %q", name))
	}
	b.symbols[name] = addr
}

// Finish resolves labels and encodes the program. The entry point is the
// label "main" if defined, otherwise the first instruction.
func (b *Builder) Finish() (*Program, error) {
	for _, f := range b.fixups {
		idx, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		in := &b.insts[f.inst]
		pc := b.codeBase + 4*uint64(f.inst)
		target := b.codeBase + 4*uint64(idx)
		switch in.Op.Format() {
		case isa.FmtB:
			disp := (int64(target) - int64(pc) - 4) / 4
			if disp < -(1<<15) || disp >= 1<<15 {
				return nil, fmt.Errorf("asm: branch to %q out of range (%d instructions)", f.label, disp)
			}
			in.Imm = disp
		case isa.FmtJ:
			if target>>28 != (pc+4)>>28 {
				return nil, fmt.Errorf("asm: jump to %q crosses a 256MB region", f.label)
			}
			in.Imm = int64((target >> 2) & (1<<26 - 1))
		default:
			return nil, fmt.Errorf("asm: label fixup on non-control %s", in.Op)
		}
	}
	code := make([]uint32, len(b.insts))
	for i, in := range b.insts {
		w, err := in.Encode()
		if err != nil {
			return nil, fmt.Errorf("asm: instruction %d (%s): %w", i, in, err)
		}
		code[i] = w
	}
	entry := b.codeBase
	if idx, ok := b.labels["main"]; ok {
		entry = b.codeBase + 4*uint64(idx)
	}
	syms := make(map[string]uint64, len(b.symbols))
	for k, v := range b.symbols {
		syms[k] = v
	}
	return &Program{
		Entry:    entry,
		CodeBase: b.codeBase,
		Code:     code,
		Data:     append([]Segment(nil), b.data...),
		Symbols:  syms,
		DataEnd:  b.dataNext,
	}, nil
}

// MustFinish is Finish for programs known valid by construction.
func (b *Builder) MustFinish() *Program {
	p, err := b.Finish()
	if err != nil {
		panic(err)
	}
	return p
}
