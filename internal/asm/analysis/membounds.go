package analysis

import (
	"fmt"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

var memboundsAnalyzer = &Analyzer{
	Name: "membounds",
	Doc: "constant-propagates load/store addresses and flags accesses " +
		"provably outside the image's code/data/stack regions (stores are " +
		"errors, loads read zero and warn), stores into the code segment, " +
		"and misaligned constant addresses",
	run: runMembounds,
}

// region is one half-open address range the program may legitimately touch.
type region struct {
	name   string
	lo, hi int64 // [lo, hi)
}

func accessRegions(prog *asm.Program, opts Options) []region {
	var regs []region
	if len(prog.Code) > 0 {
		regs = append(regs, region{"code", int64(prog.CodeBase), int64(prog.CodeEnd())})
	}
	dataBase := int64(asm.DefaultDataBase)
	if limit := prog.DataLimit(); int64(limit) > dataBase {
		lo := dataBase
		for _, seg := range prog.Data {
			if int64(seg.Base) < lo {
				lo = int64(seg.Base)
			}
		}
		regs = append(regs, region{"data", lo, int64(limit)})
	}
	// The loader parks SP at the stack top with a little headroom above;
	// a window below it is legitimate stack.
	top := int64(asm.DefaultStackTop)
	regs = append(regs, region{"stack", top - int64(opts.StackWindow), top + 0x100})
	return regs
}

func accessSize(op isa.Op) int64 {
	switch op {
	case isa.OpLDB, isa.OpLDBU, isa.OpSTB:
		return 1
	case isa.OpLDL, isa.OpSTL:
		return 4
	default: // ldq, stq, fld, fst
		return 8
	}
}

func runMembounds(p *pass) {
	g := p.cfg
	regions := accessRegions(p.prog, p.opts)
	codeLo, codeHi := int64(p.prog.CodeBase), int64(p.prog.CodeEnd())
	for bi := range g.blocks {
		if !p.reachable[bi] {
			continue
		}
		p.consts.walk(bi, func(i int, in isa.Inst, st *regState) {
			if !in.Op.IsLoad() && !in.Op.IsStore() {
				return
			}
			addr := addIval(st.get(in.Ra), cst(in.Imm))
			if addr.bot || addr.isTop() {
				return
			}
			size := accessSize(in.Op)
			last := addIval(addr, cst(size-1))
			// The full byte span the access can touch; an access is only
			// flagged when this provably misses every region.
			span := ival{lo: addr.lo, hi: last.hi}
			if last.bot || last.isTop() {
				span = top()
			}
			inside := false
			for _, r := range regions {
				if !span.outside(r.lo, r.hi-1) {
					inside = true
					break
				}
			}
			kind := "load"
			if in.Op.IsStore() {
				kind = "store"
			}
			if !inside {
				sev := SevWarn
				verb := "reads zero"
				if in.Op.IsStore() {
					sev = SevError
					verb = "is lost"
				}
				p.reportf(sev, i,
					"%d-byte %s at %s is outside the program image (%s) and %s",
					size, kind, describeAddr(addr), describeRegions(regions), verb)
				return
			}
			if in.Op.IsStore() && addr.within(codeLo, codeHi-1) {
				p.reportf(SevWarn, i,
					"store at %s writes into the code segment (self-modifying code is not refetched)",
					describeAddr(addr))
			}
			if v, ok := addr.constVal(); ok && size > 1 && v%size != 0 {
				p.reportf(SevWarn, i,
					"%d-byte %s at %#x is not %d-byte aligned", size, kind, uint64(v), size)
			}
		})
	}
}

func describeAddr(a ival) string {
	if v, ok := a.constVal(); ok {
		return fmt.Sprintf("%#x", uint64(v))
	}
	return fmt.Sprintf("addresses %#x..%#x", uint64(a.lo), uint64(a.hi))
}

func describeRegions(regs []region) string {
	out := ""
	for i, r := range regs {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %#x-%#x", r.name, uint64(r.lo), uint64(r.hi))
	}
	return out
}
