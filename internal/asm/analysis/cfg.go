package analysis

import (
	"sort"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// block is one basic block: a maximal straight-line run of code words.
type block struct {
	start, end int   // code-word index range [start, end)
	succs      []int // successor block indices, deterministic order
	preds      []int
	// indirect marks blocks whose successor set was over-approximated
	// through a register jump (jr/jalr).
	indirect bool
	// fallsOff marks blocks from which control can leave the code
	// segment: a final instruction that falls through past the last
	// word, or a direct branch/jump target outside the segment.
	fallsOff bool
}

// graph is the control-flow graph over a program's code segment. Every
// code word belongs to exactly one block; unreachable words still get
// blocks so analyzers can report on them.
type graph struct {
	prog    *asm.Program
	insts   []isa.Inst
	blocks  []block
	blockOf []int // code-word index -> block index
	entry   int   // block index of the program entry, -1 if out of range
}

func (g *graph) addrOf(i int) uint64 { return g.prog.CodeBase + 4*uint64(i) }

// indexOf maps a code address to its word index, or -1 when the address
// lies outside the code segment or is misaligned.
func (g *graph) indexOf(addr uint64) int {
	if addr < g.prog.CodeBase || addr%4 != 0 {
		return -1
	}
	i := (addr - g.prog.CodeBase) / 4
	if i >= uint64(len(g.insts)) {
		return -1
	}
	return int(i)
}

// terminator returns the last instruction of block b.
func (g *graph) terminator(b *block) isa.Inst { return g.insts[b.end-1] }

// blockEnder reports whether control cannot implicitly continue past in.
func blockEnder(in isa.Inst) bool {
	return in.Op.IsControl() || in.Op == isa.OpHALT || in.Op == isa.OpInvalid
}

func buildCFG(prog *asm.Program) *graph {
	g := &graph{prog: prog, entry: -1}
	g.insts = make([]isa.Inst, len(prog.Code))
	for i, w := range prog.Code {
		g.insts[i] = isa.Decode(w)
	}
	if len(g.insts) == 0 {
		g.blockOf = []int{}
		return g
	}

	// Leaders: the first word, the entry, every direct control target,
	// everything after a control transfer, every labeled code address
	// (indirect-jump candidates), and every call return site.
	leader := make([]bool, len(g.insts))
	leader[0] = true
	entryIdx := g.indexOf(prog.Entry)
	if entryIdx >= 0 {
		leader[entryIdx] = true
	}
	var labeled, retSites []int
	names := make([]string, 0, len(prog.Symbols))
	//lint:ignore determinism the keys are collected and sorted before any use, so iteration order cannot leak
	for name := range prog.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	seenLabel := make(map[int]bool)
	for _, name := range names {
		if t := g.indexOf(prog.Symbols[name]); t >= 0 && !seenLabel[t] {
			leader[t] = true
			seenLabel[t] = true
			labeled = append(labeled, t)
		}
	}
	sort.Ints(labeled)
	for i, in := range g.insts {
		if blockEnder(in) && i+1 < len(g.insts) {
			leader[i+1] = true
		}
		switch in.Op.Format() {
		case isa.FmtB, isa.FmtJ:
			if t := g.indexOf(in.BranchTarget(g.addrOf(i))); t >= 0 {
				leader[t] = true
			}
		}
		if in.Op.IsCall() && i+1 < len(g.insts) {
			retSites = append(retSites, i+1)
		}
	}

	// Partition into blocks.
	g.blockOf = make([]int, len(g.insts))
	for i := range g.insts {
		if leader[i] {
			g.blocks = append(g.blocks, block{start: i})
		}
		g.blockOf[i] = len(g.blocks) - 1
	}
	for bi := range g.blocks {
		if bi+1 < len(g.blocks) {
			g.blocks[bi].end = g.blocks[bi+1].start
		} else {
			g.blocks[bi].end = len(g.insts)
		}
	}
	if entryIdx >= 0 {
		g.entry = g.blockOf[entryIdx]
	}
	labeledBlocks := uniqueBlocks(g, labeled)
	retBlocks := uniqueBlocks(g, retSites)

	// Edges.
	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := b.end - 1
		in := g.insts[last]
		addEdge := func(t int) {
			if t < 0 {
				b.fallsOff = true
				return
			}
			b.succs = append(b.succs, g.blockOf[t])
		}
		fallsThrough := func() {
			if last+1 < len(g.insts) {
				addEdge(last + 1)
			} else {
				b.fallsOff = true
			}
		}
		switch {
		case in.Op == isa.OpHALT, in.Op == isa.OpInvalid:
			// Exit (HALT) or fault (Invalid): no successors.
		case in.Op.Format() == isa.FmtB:
			addEdge(g.indexOf(in.BranchTarget(g.addrOf(last))))
			fallsThrough()
		case in.Op.Format() == isa.FmtJ: // j, jal
			addEdge(g.indexOf(in.BranchTarget(g.addrOf(last))))
		case in.Op == isa.OpJR && in.IsReturn():
			// jr lr: over-approximate to every call return site. With no
			// calls in the program this is an exit.
			b.succs = append(b.succs, retBlocks...)
			b.indirect = true
		case in.Op == isa.OpJR:
			// Computed jump: any labeled block or return site.
			b.succs = mergeSorted(labeledBlocks, retBlocks)
			b.indirect = true
		case in.Op == isa.OpJALR:
			// Indirect call: any labeled block.
			b.succs = append(b.succs, labeledBlocks...)
			b.indirect = true
		default:
			fallsThrough()
		}
		b.succs = dedupSorted(b.succs)
	}
	for bi := range g.blocks {
		for _, s := range g.blocks[bi].succs {
			g.blocks[s].preds = append(g.blocks[s].preds, bi)
		}
	}
	return g
}

// uniqueBlocks maps sorted instruction indices to their sorted, deduped
// block indices.
func uniqueBlocks(g *graph, idxs []int) []int {
	out := make([]int, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, g.blockOf[i])
	}
	return dedupSorted(out)
}

func dedupSorted(s []int) []int {
	sort.Ints(s)
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func mergeSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return dedupSorted(out)
}

// reach returns the blocks reachable from the entry.
func (g *graph) reach() []bool {
	seen := make([]bool, len(g.blocks))
	if g.entry < 0 {
		return seen
	}
	work := []int{g.entry}
	seen[g.entry] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range g.blocks[b].succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}
