package analysis

import (
	"prisim/internal/isa"
)

var defuseAnalyzer = &Analyzer{
	Name: "defuse",
	Doc: "flags registers read before any write along some path from the " +
		"entry (they read the loader's zero, which is rarely what was " +
		"meant) and register writes whose value no path ever reads",
	run: runDefuse,
}

// regMask is a register set over the unified 0..63 space.
type regMask uint64

func (m regMask) has(r isa.Reg) bool { return m&(1<<uint(r)) != 0 }
func (m *regMask) add(r isa.Reg)     { *m |= 1 << uint(r) }
func (m *regMask) remove(r isa.Reg)  { *m &^= 1 << uint(r) }

const allRegs = ^regMask(0)

// entryWritten is what the loader initializes: the hardwired zero and the
// stack pointer.
const entryWritten = regMask(1<<uint(isa.RZero) | 1<<uint(isa.RSP))

func runDefuse(p *pass) {
	g := p.cfg
	mustIn := mustWritten(p)
	liveOut := liveness(p)

	var srcs []isa.Reg
	for bi := range g.blocks {
		if !p.reachable[bi] {
			continue
		}
		b := &g.blocks[bi]
		written := mustIn[bi]
		live := liveOut[bi]
		// Forward pass: maybe-uninitialized reads.
		for i := b.start; i < b.end; i++ {
			in := g.insts[i]
			srcs = in.Sources(srcs[:0])
			for _, r := range srcs {
				if !written.has(r) {
					p.reportf(SevWarn, i,
						"register %s may be read before it is written (registers start at zero)", r)
				}
			}
			if rd, ok := in.Dest(); ok {
				written.add(rd)
			}
		}
		// Backward pass: dead register writes.
		for i := b.end - 1; i >= b.start; i-- {
			in := g.insts[i]
			if rd, ok := in.Dest(); ok {
				if !live.has(rd) && !in.Op.IsCall() {
					p.reportf(SevWarn, i,
						"value written to %s is never read", rd)
				}
				live.remove(rd)
			}
			srcs = in.Sources(srcs[:0])
			for _, r := range srcs {
				live.add(r)
			}
		}
	}
}

// mustWritten solves the forward must-be-written dataflow: a register is
// in the set only if every path from the entry writes it first.
func mustWritten(p *pass) []regMask {
	g := p.cfg
	mustIn := make([]regMask, len(g.blocks))
	for i := range mustIn {
		mustIn[i] = allRegs // ⊤ for intersection; unreached stays ⊤
	}
	if g.entry < 0 {
		return mustIn
	}
	mustIn[g.entry] = entryWritten
	work := []int{g.entry}
	inWork := make([]bool, len(g.blocks))
	inWork[g.entry] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		out := mustIn[bi]
		b := &g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			if rd, ok := g.insts[i].Dest(); ok {
				out.add(rd)
			}
		}
		for _, s := range g.blocks[bi].succs {
			// The entry starts at entryWritten (not ⊤), so the virtual
			// program-start edge is already part of its meet.
			next := mustIn[s] & out
			if next != mustIn[s] {
				mustIn[s] = next
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return mustIn
}

// liveness solves backward may-be-read liveness per block. Exit blocks
// (halt, invalid) end with nothing live; blocks from which control leaves
// the analyzed code (falls off the end, or an indirect jump that resolved
// to no successor) conservatively keep everything live so nothing
// downstream of them is called dead.
func liveness(p *pass) []regMask {
	g := p.cfg
	liveOut := make([]regMask, len(g.blocks))
	work := make([]int, 0, len(g.blocks))
	inWork := make([]bool, len(g.blocks))
	var srcs []isa.Reg
	for bi := range g.blocks {
		b := &g.blocks[bi]
		if b.fallsOff || (len(b.succs) == 0 && g.terminator(b).Op.IsIndirect()) {
			liveOut[bi] = allRegs
		}
		work = append(work, bi)
		inWork[bi] = true
	}
	liveIn := func(bi int) regMask {
		live := liveOut[bi]
		b := &g.blocks[bi]
		for i := b.end - 1; i >= b.start; i-- {
			in := g.insts[i]
			if rd, ok := in.Dest(); ok {
				live.remove(rd)
			}
			srcs = in.Sources(srcs[:0])
			for _, r := range srcs {
				live.add(r)
			}
		}
		return live
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		in := liveIn(bi)
		for _, pr := range g.blocks[bi].preds {
			next := liveOut[pr] | in
			if next != liveOut[pr] {
				liveOut[pr] = next
				if !inWork[pr] {
					inWork[pr] = true
					work = append(work, pr)
				}
			}
		}
	}
	return liveOut
}
