package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
)

// fuzzSeeds mirrors the assembler's fuzz corpus shapes plus programs that
// stress the CFG and lattice: register jumps, self-loops, branches at the
// segment boundary, macro-generated labels.
var fuzzSeeds = []string{
	"",
	".text\nmain: halt\n",
	".text\nmain:\n  li r1, 8\nspin:\n  addi r1, r1, -1\n  bnez r1, spin\n  halt\n",
	".text\nmain:\n  j main\n",
	".text\nmain:\n  jr lr\n",
	".text\nmain:\n  la r1, main\n  jr r1\n",
	".text\nmain:\n  jal sub\n  halt\nsub:\n  jr lr\n",
	".text\nmain:\n  beqz r1, main\n",
	".data\nv: .space 8\n.text\nmain:\n  la r1, v\n  stq r1, -8(r1)\n  halt\n",
	".macro cnt\nloop\\@:\n  addi r1, r1, -1\n  bnez r1, loop\\@\n.endm\n.text\nmain:\n  li r1, 4\n  cnt\n  cnt\n  halt\n",
	".text\nmain:\n  slli r1, r1, 63\n  srai r2, r1, 1\n  mul r3, r1, r2\n  stq r3, 0(sp)\n  halt\n",
	".text\nmain:\n  fadd f1, f2, f3\n  cvtif f4, r0\n  fmov f5, f4\n  halt\n",
}

// FuzzAnalyze asserts the analyzers never panic and always terminate on
// any program the assembler accepts, and that every finding stays within
// the program's code segment. Run longer with:
// go test ./internal/asm/analysis -fuzz FuzzAnalyze -fuzztime 30s
func FuzzAnalyze(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	for _, dir := range []string{"testdata", filepath.Join("..", "testdata")} {
		if files, _ := filepath.Glob(filepath.Join(dir, "*.s")); files != nil {
			for _, file := range files {
				if src, err := os.ReadFile(file); err == nil {
					f.Add(string(src))
				}
			}
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := asm.Assemble(src)
		if err != nil {
			return // the assembler's own fuzzer covers rejection paths
		}
		rep := analysis.Analyze(prog, analysis.Options{})
		for _, fd := range rep.Findings {
			if fd.Index < -1 || fd.Index >= len(prog.Code) {
				t.Fatalf("finding index %d outside code segment of %d words", fd.Index, len(prog.Code))
			}
			if fd.Msg == "" || fd.Analyzer == "" {
				t.Fatalf("finding without message or analyzer: %+v", fd)
			}
		}
		// Positioning and suppression parsing must not panic either.
		_ = rep.Diagnostics(prog, "fuzz.s", src)
	})
}
