package analysis

import "prisim/internal/isa"

var reachAnalyzer = &Analyzer{
	Name: "reachability",
	Doc: "flags code the entry can never reach (dead blocks, code after " +
		"unconditional jumps), reachable invalid instruction words, direct " +
		"control targets outside the code segment, and paths where control " +
		"can run off the end of the code into zeroed memory",
	run: runReach,
}

func runReach(p *pass) {
	g := p.cfg
	// Merge consecutive unreachable words into one finding each.
	runStart, runLen := -1, 0
	flush := func() {
		if runStart >= 0 {
			plural := ""
			if runLen > 1 {
				plural = "s"
			}
			p.reportf(SevWarn, runStart,
				"unreachable code (%d instruction%s)", runLen, plural)
		}
		runStart, runLen = -1, 0
	}
	for i := range g.insts {
		if !p.reachable[g.blockOf[i]] {
			if runStart < 0 {
				runStart = i
			}
			runLen++
			continue
		}
		flush()
	}
	flush()

	for bi := range g.blocks {
		if !p.reachable[bi] {
			continue
		}
		b := &g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			if g.insts[i].Op == isa.OpInvalid {
				p.reportf(SevWarn, i,
					"reachable invalid instruction word %#08x", p.prog.Code[i])
			}
		}
		if !b.fallsOff {
			continue
		}
		last := b.end - 1
		in := g.insts[last]
		isDirect := in.Op.Format() == isa.FmtB || in.Op.Format() == isa.FmtJ
		if isDirect {
			if t := in.BranchTarget(g.addrOf(last)); g.indexOf(t) < 0 {
				p.reportf(SevWarn, last,
					"control target %#x lies outside the code segment", t)
			}
		}
		// A conditional branch (or any non-jump) at the very end of the
		// code can also fall through past the last word.
		if in.Op.Format() != isa.FmtJ && last+1 >= len(g.insts) &&
			in.Op != isa.OpHALT && in.Op != isa.OpInvalid && !in.Op.IsIndirect() {
			p.reportf(SevWarn, last,
				"control can run off the end of the code segment into zeroed memory")
		}
	}
}
