package analysis_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
	"prisim/internal/workloads"
)

// workloadAllow is the builder-program analogue of a ;lint:ignore
// annotation: the built-in kernels are pinned by the fig8 golden image
// hashes, so these four real (and harmless) dead-write findings cannot be
// fixed without invalidating every recorded result. Each entry keys
// workload/address/analyzer and carries the mandatory reason.
var workloadAllow = map[string]string{
	"applu/0x0001002c/defuse":  "builder seeds f10 before the loop; the body reloads it before any read — fixing it would change the pinned image hash",
	"mesa/0x000100c8/defuse":   "builder seeds f13 before the loop; the body reloads it before any read — fixing it would change the pinned image hash",
	"swim/0x00010020/defuse":   "builder seeds f10 before the loop; the body reloads it before any read — fixing it would change the pinned image hash",
	"crafty/0x00010148/defuse": "builder computes r17 in the epilogue spice sequence without a later read — fixing it would change the pinned image hash",
}

// TestWorkloadSweep runs the analyzers over every built-in workload image
// and pins a clean sweep: no error findings anywhere, and no warnings
// beyond the reasoned allowlist above (exactly — a fixed finding must be
// removed from the list).
func TestWorkloadSweep(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range workloads.All() {
		prog := w.Build(0)
		rep := analysis.Analyze(prog, analysis.Options{})
		for _, f := range rep.Findings {
			if f.Severity == analysis.SevError {
				t.Errorf("workload %s: error finding %s at %#x: %s", w.Name, f.Analyzer, f.Addr, f.Msg)
				continue
			}
			key := fmt.Sprintf("%s/%#08x/%s", w.Name, f.Addr, f.Analyzer)
			if _, ok := workloadAllow[key]; !ok {
				t.Errorf("workload %s: unexpected finding %s: %s", w.Name, key, f.Msg)
			}
			seen[key] = true
		}
		if rep.Inlinability.Defs == 0 {
			t.Errorf("workload %s: narrowness saw no defs", w.Name)
		}
	}
	for key := range workloadAllow {
		if !seen[key] {
			t.Errorf("allowlist entry %s no longer fires; remove it", key)
		}
	}
}

// TestExampleProgramsClean sweeps every assembly program the repo ships as
// user-facing material — the assembler's testdata fixtures and the
// programs embedded in examples/*/main.go — and requires zero findings:
// what we tell users to start from must lint clean.
func TestExampleProgramsClean(t *testing.T) {
	sweep := func(name, src string) {
		t.Helper()
		prog, err := asm.AssembleFile(name, src)
		if err != nil {
			t.Errorf("%s does not assemble: %v", name, err)
			return
		}
		rep := analysis.Analyze(prog, analysis.Options{})
		for _, d := range rep.Diagnostics(prog, name, src) {
			t.Errorf("%s: %s", name, d)
		}
	}
	files, err := filepath.Glob(filepath.Join("..", "testdata", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no assembler fixtures found: %v", err)
	}
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		sweep(file, string(raw))
	}

	// Example programs are raw-string consts inside the example mains.
	rawStr := regexp.MustCompile("`[^`]*`")
	exampleFiles, err := filepath.Glob(filepath.Join("..", "..", "..", "examples", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	programs := 0
	for _, file := range exampleFiles {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, lit := range rawStr.FindAllString(string(raw), -1) {
			src := strings.Trim(lit, "`")
			if !strings.Contains(src, ".text") || !strings.Contains(src, "halt") {
				continue
			}
			programs++
			sweep(file, src)
		}
	}
	if programs == 0 {
		t.Fatal("no embedded example programs found; the sweep lost its subjects")
	}
}
