package analysis_test

import (
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
)

// analyzeSrc assembles src and returns the positioned diagnostics.
func analyzeSrc(t *testing.T, src string) []analysis.Diag {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return analysis.Analyze(prog, analysis.Options{}).Diagnostics(prog, "test.s", src)
}

// TestSuppression pins the ;lint:ignore contract: the directive covers
// its own line and the line below, needs a mandatory reason, and matches
// by analyzer name or "all".
func TestSuppression(t *testing.T) {
	const base = "  add  r3, r1, r0\n  stq  r3, 0(sp)\n  halt\n"
	cases := []struct {
		name string
		src  string
		want int // defuse findings surviving
	}{
		{"unsuppressed", ".text\nmain:\n" + base, 1},
		{"same line", ".text\nmain:\n  add  r3, r1, r0 ;lint:ignore defuse r1 is zero on purpose\n  stq  r3, 0(sp)\n  halt\n", 0},
		{"line above", ".text\nmain:\n  ;lint:ignore defuse r1 is zero on purpose\n  add  r3, r1, r0\n  stq  r3, 0(sp)\n  halt\n", 0},
		{"all matches", ".text\nmain:\n  add  r3, r1, r0 ;lint:ignore all r1 is zero on purpose\n  stq  r3, 0(sp)\n  halt\n", 0},
		{"wrong analyzer", ".text\nmain:\n  add  r3, r1, r0 ;lint:ignore membounds wrong name\n  stq  r3, 0(sp)\n  halt\n", 1},
		{"no reason is void", ".text\nmain:\n  add  r3, r1, r0 ;lint:ignore defuse\n  stq  r3, 0(sp)\n  halt\n", 1},
		{"hash comment", ".text\nmain:\n  add  r3, r1, r0 #lint:ignore defuse r1 is zero on purpose\n  stq  r3, 0(sp)\n  halt\n", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := 0
			for _, d := range analyzeSrc(t, tc.src) {
				if d.Analyzer == "defuse" {
					got++
				}
			}
			if got != tc.want {
				t.Errorf("defuse findings = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestExitCode pins the shared CLI convention: 0 clean, 1 warnings under
// -Werror, 2 on any error regardless of -Werror.
func TestExitCode(t *testing.T) {
	warn := analysis.Diag{Severity: "warning"}
	errd := analysis.Diag{Severity: "error"}
	cases := []struct {
		diags  []analysis.Diag
		werror bool
		want   int
	}{
		{nil, false, 0},
		{nil, true, 0},
		{[]analysis.Diag{warn}, false, 0},
		{[]analysis.Diag{warn}, true, 1},
		{[]analysis.Diag{errd}, false, 2},
		{[]analysis.Diag{warn, errd}, true, 2},
	}
	for i, tc := range cases {
		if got := analysis.ExitCode(tc.diags, tc.werror); got != tc.want {
			t.Errorf("case %d: ExitCode = %d, want %d", i, got, tc.want)
		}
	}
}

// TestDiagRendering pins the two positioning modes: source-positioned
// findings render file:line:col with a caret, builder images (no source
// positions) render by instruction address.
func TestDiagRendering(t *testing.T) {
	positioned := analysis.Diag{
		File: "p.s", Line: 3, Col: 3, Msg: "value written to r5 is never read",
		Excerpt: "  li r5, 7", Analyzer: "defuse", Severity: "warning",
	}
	got := positioned.String()
	for _, wantPart := range []string{"p.s:3:3: warning: value written to r5 is never read [defuse]", "  ^"} {
		if !strings.Contains(got, wantPart) {
			t.Errorf("rendering %q lacks %q", got, wantPart)
		}
	}
	byAddr := analysis.Diag{
		File: "workload:swim", Msg: "value written to f10 is never read",
		Analyzer: "defuse", Severity: "warning", Addr: 0x010020,
	}
	if got := byAddr.String(); got != "workload:swim: 0x010020: warning: value written to f10 is never read [defuse]" {
		t.Errorf("address rendering = %q", got)
	}
}

// TestErrorRequiresProof checks the soundness stance end to end: a store
// through an unknown register address must stay a warning at most, while
// a store whose every possible address is outside the image is an error.
func TestErrorRequiresProof(t *testing.T) {
	// r1 is loaded from memory: the analysis cannot know its value, so the
	// store through it must not be flagged at all.
	const unknown = ".data\nv: .word 1\n.text\nmain:\n  la r2, v\n  ldq r1, 0(r2)\n  stq r2, 0(r1)\n  halt\n"
	for _, d := range analyzeSrc(t, unknown) {
		if d.Analyzer == "membounds" {
			t.Errorf("store through unknown address flagged: %s", d)
		}
	}
	const provable = ".text\nmain:\n  li r1, 0x500000\n  stq r1, 0(r1)\n  halt\n"
	sawError := false
	for _, d := range analyzeSrc(t, provable) {
		if d.Analyzer == "membounds" && d.Severity == "error" {
			sawError = true
		}
	}
	if !sawError {
		t.Error("provably out-of-image store did not produce an error finding")
	}
}
