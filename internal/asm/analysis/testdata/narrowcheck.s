; narrowness fixture: four defs with exactly known classifications at the
; default 7-bit inline width. The companion test pins the Inlinability
; summary: r1 and r4 narrow, r2 and r3 wide.
.text
main:
  li   r1, 5
  li   r2, 1000
  li   r3, 100
  add  r4, r1, r1
  stq  r4, 0(sp)
  stq  r2, 8(sp)
  stq  r3, 16(sp)
  halt
