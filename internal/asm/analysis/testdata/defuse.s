; defuse fixture: a register read before any path writes it, and a write
; whose value no path ever reads.
.text
main:
  add  r3, r1, r0       ;want defuse "register r1 may be read before it is written"
  li   r5, 7            ;want defuse "value written to r5 is never read"
  add  r4, r3, r3
  stq  r4, 0(sp)
  halt
