; loopbudget fixture: a counted down-loop the trip analysis resolves to 8
; iterations (no finding), then a loop with no exit edge at all.
.text
main:
  li   r1, 8
spin:
  addi r1, r1, -1
  bnez r1, spin
  li   r3, 0
  li   r2, 1
forever:
  add  r3, r3, r2        ;want loopbudget "loop has no exit edge"
  j    forever
  halt                   ;want reachability "unreachable code (1 instruction)"
