; reachability fixture: dead code after an unconditional jump and a
; conditional branch sitting on the last code word, so control can fall
; off the end of the segment.
.text
main:
  li   r1, 2
  j    skip
  addi r1, r1, 1        ;want reachability "unreachable code (2 instructions)"
  addi r1, r1, 2
skip:
  beqz r1, main          ;want reachability "run off the end of the code segment"
