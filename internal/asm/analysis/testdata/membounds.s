; membounds fixture: a store whose only possible address lies outside
; every region of the image (a provable error), an out-of-image load
; (reads zero: warning), and a misaligned constant address.
.data
buf: .space 64
.text
main:
  la   r1, buf
  li   r2, 1
  stq  r2, -8(r1)       ;want membounds error "outside the program image"
  ldq  r4, -16(r1)      ;want membounds "reads zero"
  stq  r2, 3(r1)        ;want membounds "is not 8-byte aligned"
  add  r0, r4, r4
  halt
