// Package analysis — "priscan" — statically checks assembled PRISC-64
// program images before they are simulated. It builds a control-flow graph
// over the decoded code segment, runs a worklist constant-range
// (interval) propagation, and layers five analyzers on top, in the
// prilint mold:
//
//   - reachability: dead blocks, code after unconditional jumps, control
//     that can fall off the end of the code segment
//   - defuse: registers read before any write along some path, register
//     writes whose value is never read
//   - membounds: constant-propagated loads/stores provably outside the
//     image's code/data/stack regions, misaligned constant addresses
//   - loopbudget: back-edge detection with a trip-count lattice; loops
//     with no exit edge are flagged as run-cap burners
//   - narrowness: classifies every def as provably fitting the paper's
//     inline-in-map-entry width or not, producing a per-program static
//     inlinability summary comparable against the simulator's measured
//     PRI inlining rate
//
// Soundness stance: the analysis over-approximates control flow (indirect
// jumps may go to any labeled block or call return site) and
// under-approximates value knowledge, so findings are warnings by
// default; only provable errors — a reachable store whose every possible
// address lies outside the image — carry SevError and justify rejecting a
// program before dispatch.
//
//prisim:deterministic
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"prisim/internal/asm"
	"prisim/internal/core"
)

// Severity grades a finding. Warnings describe programs that run with
// well-defined (if probably unintended) behavior; errors are provable
// defects that justify rejecting the program before simulation.
type Severity uint8

const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Finding is one analyzer result, positioned by code-word index.
type Finding struct {
	Analyzer string
	Severity Severity
	Index    int    // code-word index; -1 for whole-program findings
	Addr     uint64 // instruction address (0 when Index < 0)
	Msg      string
}

// Analyzer is one named check, mirroring the prilint framework shape.
type Analyzer struct {
	Name string
	Doc  string
	run  func(*pass)
}

// All returns the analyzers in execution order.
func All() []*Analyzer {
	return []*Analyzer{
		reachAnalyzer,
		defuseAnalyzer,
		memboundsAnalyzer,
		loopbudgetAnalyzer,
		narrowAnalyzer,
	}
}

// Options parameterizes one analysis.
type Options struct {
	// NarrowBits is the inline-width the narrowness analyzer classifies
	// against; 0 means the core default (core.DefaultParams().IntNarrowBits).
	NarrowBits int
	// StackWindow is how many bytes below the initial stack pointer count
	// as valid stack for membounds; 0 means 1 MiB.
	StackWindow uint64
}

const defaultStackWindow = 1 << 20

func (o Options) withDefaults() Options {
	if o.NarrowBits == 0 {
		o.NarrowBits = core.DefaultParams().IntNarrowBits
	}
	if o.StackWindow == 0 {
		o.StackWindow = defaultStackWindow
	}
	return o
}

// Inlinability is the static narrowness summary: how many defs provably
// produce values that fit the PRI inline width.
type Inlinability struct {
	NarrowBits   int     `json:"narrow_bits"`
	Defs         int     `json:"defs"`
	Narrow       int     `json:"narrow"`
	Wide         int     `json:"wide"`
	Unknown      int     `json:"unknown"`
	FPDefs       int     `json:"fp_defs"`
	StaticFrac   float64 `json:"static_frac"`
	WeightedFrac float64 `json:"weighted_frac"`
}

// TripCount is the loopbudget lattice for how often a loop body runs.
type TripCount uint8

const (
	TripUnknown TripCount = iota
	TripBounded
	TripInfinite // no exit edge: runs until the run cap
)

// Loop describes one natural loop (or irreducible cycle) found by
// loopbudget.
type Loop struct {
	HeadAddr uint64
	Blocks   int
	Insts    int
	Trip     TripCount
	Trips    uint64 // iteration count when Trip == TripBounded
}

// Report is the result of analyzing one program.
type Report struct {
	Findings     []Finding
	Inlinability Inlinability
	Loops        []Loop
}

// pass is the shared state handed to each analyzer's run function.
type pass struct {
	prog            *asm.Program
	opts            Options
	cfg             *graph
	reachable       []bool // per block
	consts          *constFacts
	loops           []Loop
	loopOf          [][]int // per block: indices into loops containing it
	current         *Analyzer
	report          func(Finding)
	setInlinability func(Inlinability)
}

func (p *pass) reportf(sev Severity, index int, format string, args ...any) {
	f := Finding{Analyzer: p.current.Name, Severity: sev, Index: index, Msg: fmt.Sprintf(format, args...)}
	if index >= 0 {
		f.Addr = p.prog.CodeBase + 4*uint64(index)
	}
	p.report(f)
}

// Analyze runs every analyzer over prog and returns the combined report.
// Findings are ordered by code position, then analyzer, then message.
func Analyze(prog *asm.Program, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{}
	p := &pass{
		prog: prog,
		opts: opts,
		cfg:  buildCFG(prog),
		report: func(f Finding) {
			rep.Findings = append(rep.Findings, f)
		},
		setInlinability: func(s Inlinability) { rep.Inlinability = s },
	}
	p.reachable = p.cfg.reach()
	p.consts = solveConst(p.cfg, p.reachable, opts)
	for _, a := range All() {
		p.current = a
		a.run(p)
	}
	rep.Loops = p.loops
	sort.SliceStable(rep.Findings, func(i, j int) bool {
		a, b := rep.Findings[i], rep.Findings[j]
		if a.Index != b.Index {
			return a.Index < b.Index
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Msg < b.Msg
	})
	return rep
}

// Diag is a finding positioned against the original source. Line is 0 for
// images with no recorded positions (builder-generated programs); such
// findings render by address instead.
type Diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Msg      string `json:"msg"`
	Excerpt  string `json:"excerpt,omitempty"`
	Analyzer string `json:"analyzer,omitempty"`
	Severity string `json:"severity,omitempty"`
	Addr     uint64 `json:"addr,omitempty"`
}

// String renders "file:line:col: severity: msg [analyzer]" with a caret
// excerpt, matching the assembler's diagnostic style.
func (d Diag) String() string {
	var sb strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&sb, "%s:%d:%d: ", d.File, d.Line, d.Col)
	} else if d.File != "" {
		fmt.Fprintf(&sb, "%s: %#06x: ", d.File, d.Addr)
	} else {
		fmt.Fprintf(&sb, "%#06x: ", d.Addr)
	}
	fmt.Fprintf(&sb, "%s: %s", d.Severity, d.Msg)
	if d.Analyzer != "" {
		fmt.Fprintf(&sb, " [%s]", d.Analyzer)
	}
	if d.Excerpt != "" {
		display := strings.ReplaceAll(d.Excerpt, "\t", " ")
		fmt.Fprintf(&sb, "\n    %s", display)
		if d.Col >= 1 && d.Col <= len([]rune(display))+1 {
			fmt.Fprintf(&sb, "\n    %s^", strings.Repeat(" ", d.Col-1))
		}
	}
	return sb.String()
}

// Diagnostics positions the report's findings against the assembly source
// and filters the ones suppressed by ";lint:ignore analyzer reason"
// comments (same-line or line-above, reason mandatory — the prilint
// convention with assembly comment characters). src may be empty: then no
// excerpts are attached and no suppressions apply.
func (r *Report) Diagnostics(prog *asm.Program, file, src string) []Diag {
	var srcLines []string
	if src != "" {
		srcLines = strings.Split(src, "\n")
	}
	sup := parseSuppressions(srcLines)
	var out []Diag
	for _, f := range r.Findings {
		d := Diag{
			File:     file,
			Msg:      f.Msg,
			Analyzer: f.Analyzer,
			Severity: f.Severity.String(),
			Addr:     f.Addr,
		}
		if f.Index >= 0 && f.Index < len(prog.Lines) {
			pos := prog.Lines[f.Index]
			d.Line, d.Col = pos.Line, pos.Col
			if d.Line >= 1 && d.Line <= len(srcLines) {
				d.Excerpt = strings.TrimRight(srcLines[d.Line-1], " \t\r")
			}
		}
		if d.Line > 0 && sup.matches(d.Line, f.Analyzer) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// suppressions maps source line -> analyzer names suppressed there.
type suppressions map[int][]string

// parseSuppressions scans for "lint:ignore name1,name2 reason" directives
// inside ';' or '#' comments. A directive without a reason is ignored
// (and so suppresses nothing), matching prilint. The directive covers its
// own line and the line below.
func parseSuppressions(srcLines []string) suppressions {
	sup := suppressions{}
	for i, line := range srcLines {
		ci := strings.IndexAny(line, ";#")
		if ci < 0 {
			continue
		}
		comment := strings.TrimSpace(line[ci+1:])
		if !strings.HasPrefix(comment, "lint:ignore") {
			continue
		}
		fields := strings.Fields(comment)
		// fields[0] is "lint:ignore", fields[1] the analyzer list; a
		// reason (anything after) is mandatory.
		if len(fields) < 3 {
			continue
		}
		names := strings.Split(fields[1], ",")
		lineNo := i + 1
		sup[lineNo] = append(sup[lineNo], names...)
		sup[lineNo+1] = append(sup[lineNo+1], names...)
	}
	return sup
}

func (s suppressions) matches(line int, analyzer string) bool {
	for _, name := range s[line] {
		if name == analyzer || name == "all" {
			return true
		}
	}
	return false
}

// ExitCode maps lint output to the shared CLI convention: 0 clean, 1 when
// warnings were reported and -Werror is set, 2 when any error was found.
func ExitCode(diags []Diag, werror bool) int {
	code := 0
	for _, d := range diags {
		if d.Severity == SevError.String() {
			return 2
		}
		if werror {
			code = 1
		}
	}
	return code
}
