package analysis

import (
	"sort"

	"prisim/internal/isa"
)

var loopbudgetAnalyzer = &Analyzer{
	Name: "loopbudget",
	Doc: "detects back edges and natural loops, solves a trip-count " +
		"lattice (unknown / bounded(n) / infinite) per loop, and flags " +
		"loops with no exit edge — they run until the sandbox's " +
		"instruction cap and burn the whole budget",
	run: runLoopbudget,
}

// naturalLoop is one loop found via dominator back edges, plus the
// SCC-based fallback for irreducible cycles.
type naturalLoop struct {
	header int
	body   []int // block indices, sorted, header included
}

func runLoopbudget(p *pass) {
	g := p.cfg
	loops := findLoops(g, p.reachable)
	p.loopOf = make([][]int, len(g.blocks))
	for li, nl := range loops {
		info := Loop{HeadAddr: g.addrOf(g.blocks[nl.header].start), Blocks: len(nl.body)}
		inBody := make(map[int]bool, len(nl.body))
		for _, bi := range nl.body {
			inBody[bi] = true
			info.Insts += g.blocks[bi].end - g.blocks[bi].start
			p.loopOf[bi] = append(p.loopOf[bi], li)
		}
		hasExit := false
		for _, bi := range nl.body {
			if g.blocks[bi].fallsOff {
				hasExit = true // leaves the analyzed code entirely
			}
			for _, s := range g.blocks[bi].succs {
				if !inBody[s] {
					hasExit = true
				}
			}
		}
		if !hasExit {
			info.Trip = TripInfinite
			p.reportf(SevWarn, g.blocks[nl.header].start,
				"loop has no exit edge: it runs until the instruction cap and burns the whole run budget")
		} else if trips, ok := tripCount(p, nl, inBody); ok {
			info.Trip = TripBounded
			info.Trips = trips
		} else {
			checkInvariantExit(p, nl, inBody)
		}
		p.loops = append(p.loops, info)
	}
}

// findLoops returns the program's loops: natural loops of dominator back
// edges (merged per header), plus any irreducible SCC cycle that no
// natural loop covers. Results are ordered by header block.
func findLoops(g *graph, reachable []bool) []naturalLoop {
	idom := dominators(g, reachable)
	bodyOf := map[int]map[int]bool{}
	for bi := range g.blocks {
		if !reachable[bi] {
			continue
		}
		for _, s := range g.blocks[bi].succs {
			if dominates(idom, s, bi) {
				// Back edge bi -> s: the natural loop is everything that
				// reaches bi without passing through s.
				body := bodyOf[s]
				if body == nil {
					body = map[int]bool{s: true}
					bodyOf[s] = body
				}
				collectLoop(g, body, bi)
			}
		}
	}
	covered := make([]bool, len(g.blocks))
	var loops []naturalLoop
	headers := make([]int, 0, len(bodyOf))
	//lint:ignore determinism the headers are collected and sorted before any use, so iteration order cannot leak
	for h := range bodyOf {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	for _, h := range headers {
		nl := naturalLoop{header: h}
		//lint:ignore determinism body indices are sorted below and covered[] is a set, so iteration order cannot leak
		for bi := range bodyOf[h] {
			nl.body = append(nl.body, bi)
			covered[bi] = true
		}
		sort.Ints(nl.body)
		loops = append(loops, nl)
	}
	// Irreducible cycles (multi-entry loops) have no dominating header;
	// catch them as SCCs so a no-exit cycle can never hide.
	for _, scc := range stronglyConnected(g, reachable) {
		cyclic := len(scc) > 1
		if !cyclic {
			for _, s := range g.blocks[scc[0]].succs {
				if s == scc[0] {
					cyclic = true
				}
			}
		}
		if !cyclic {
			continue
		}
		all := true
		for _, bi := range scc {
			if !covered[bi] {
				all = false
			}
		}
		if all {
			continue
		}
		nl := naturalLoop{header: scc[0], body: append([]int(nil), scc...)}
		sort.Ints(nl.body)
		nl.header = nl.body[0]
		loops = append(loops, nl)
	}
	sort.Slice(loops, func(i, j int) bool { return loops[i].header < loops[j].header })
	return loops
}

func collectLoop(g *graph, body map[int]bool, from int) {
	if body[from] {
		return
	}
	body[from] = true
	work := []int{from}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, pr := range g.blocks[bi].preds {
			if !body[pr] {
				body[pr] = true
				work = append(work, pr)
			}
		}
	}
}

// dominators computes immediate dominators with the simple iterative
// algorithm (Cooper/Harvey/Kennedy) over reverse postorder.
func dominators(g *graph, reachable []bool) []int {
	idom := make([]int, len(g.blocks))
	for i := range idom {
		idom[i] = -1
	}
	if g.entry < 0 {
		return idom
	}
	rpo := postorder(g, reachable)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	rpoNum := make([]int, len(g.blocks))
	for i, b := range rpo {
		rpoNum[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	idom[g.entry] = g.entry
	for changed := true; changed; {
		changed = false
		for _, bi := range rpo {
			if bi == g.entry {
				continue
			}
			newIdom := -1
			for _, pr := range g.blocks[bi].preds {
				if !reachable[pr] || idom[pr] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = pr
				} else {
					newIdom = intersect(newIdom, pr)
				}
			}
			if newIdom >= 0 && idom[bi] != newIdom {
				idom[bi] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func dominates(idom []int, a, b int) bool {
	if idom[b] < 0 {
		return false
	}
	for {
		if b == a {
			return true
		}
		if idom[b] == b || idom[b] < 0 {
			return false
		}
		b = idom[b]
	}
}

func postorder(g *graph, reachable []bool) []int {
	var order []int
	seen := make([]bool, len(g.blocks))
	var visit func(int)
	visit = func(bi int) {
		seen[bi] = true
		for _, s := range g.blocks[bi].succs {
			if !seen[s] && reachable[s] {
				visit(s)
			}
		}
		order = append(order, bi)
	}
	if g.entry >= 0 {
		visit(g.entry)
	}
	return order
}

// stronglyConnected returns the SCCs of the reachable subgraph (iterative
// Tarjan), each sorted, in deterministic order.
func stronglyConnected(g *graph, reachable []bool) [][]int {
	const unvisited = -1
	index := make([]int, len(g.blocks))
	low := make([]int, len(g.blocks))
	onStack := make([]bool, len(g.blocks))
	for i := range index {
		index[i] = unvisited
	}
	var stack, sccsOrder []int
	var sccs [][]int
	next := 0
	type frame struct{ v, succIdx int }
	for root := range g.blocks {
		if !reachable[root] || index[root] != unvisited {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			b := &g.blocks[f.v]
			if f.succIdx < len(b.succs) {
				s := b.succs[f.succIdx]
				f.succIdx++
				if !reachable[s] {
					continue
				}
				if index[s] == unvisited {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{s, 0})
				} else if onStack[s] && index[s] < low[f.v] {
					low[f.v] = index[s]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if low[v] < low[frames[len(frames)-1].v] {
					low[frames[len(frames)-1].v] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
				sccsOrder = append(sccsOrder, scc[0])
			}
		}
	}
	sort.SliceStable(sccs, func(i, j int) bool { return sccsOrder[i] < sccsOrder[j] })
	return sccs
}

// tripCount recognizes the canonical counted loop: an exit branch
// beqz/bnez on a register whose only in-loop def is "addi r, r, ±step",
// entering the loop with a constant value. Anything fancier stays
// TripUnknown.
func tripCount(p *pass, nl naturalLoop, inBody map[int]bool) (uint64, bool) {
	g := p.cfg
	// Find the counter candidates: exit branches on (reg, rzero).
	var ctr isa.Reg
	found := false
	for _, bi := range nl.body {
		b := &g.blocks[bi]
		in := g.terminator(b)
		if in.Op != isa.OpBNE && in.Op != isa.OpBEQ {
			continue
		}
		exits := false
		t := g.indexOf(in.BranchTarget(g.addrOf(b.end - 1)))
		if t < 0 || !inBody[g.blockOf[t]] {
			exits = true
		}
		if b.end < len(g.insts) && !inBody[g.blockOf[b.end]] {
			exits = true
		}
		if !exits || in.Rb != isa.RZero || in.Ra == isa.RZero {
			continue
		}
		if found && ctr != in.Ra {
			return 0, false // two different exit counters: give up
		}
		ctr, found = in.Ra, true
	}
	if !found {
		return 0, false
	}
	// The counter must have exactly one def in the loop: addi ctr, ctr, step.
	var step int64
	defs := 0
	for _, bi := range nl.body {
		b := &g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			in := g.insts[i]
			if rd, ok := in.Dest(); ok && rd == ctr {
				defs++
				if in.Op == isa.OpADDI && in.Ra == ctr {
					step = in.Imm
				} else {
					return 0, false
				}
			}
		}
	}
	if defs != 1 || step >= 0 {
		return 0, false // only down-counters are recognized
	}
	// Entry value: join of the counter's interval along non-loop edges
	// into the header.
	init := bot()
	for _, pr := range g.blocks[nl.header].preds {
		if inBody[pr] {
			continue
		}
		out := p.consts.outState(pr)
		init = join(init, out.get(ctr))
	}
	if g.entry == nl.header {
		st := entryState()
		init = join(init, st.get(ctr))
	}
	n, ok := init.constVal()
	if !ok || n <= 0 || n%(-step) != 0 {
		return 0, false
	}
	return uint64(n / -step), true
}

// checkInvariantExit warns when every register an exit branch tests is
// never written inside the loop: the exit decision can never change, so
// the loop either exits immediately or never.
func checkInvariantExit(p *pass, nl naturalLoop, inBody map[int]bool) {
	g := p.cfg
	var written regMask
	for _, bi := range nl.body {
		b := &g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			if rd, ok := g.insts[i].Dest(); ok {
				written.add(rd)
			}
		}
	}
	var srcs []isa.Reg
	for _, bi := range nl.body {
		b := &g.blocks[bi]
		in := g.terminator(b)
		if !in.Op.IsBranch() {
			continue
		}
		exits := false
		if t := g.indexOf(in.BranchTarget(g.addrOf(b.end - 1))); t < 0 || !inBody[g.blockOf[t]] {
			exits = true
		}
		if b.end < len(g.insts) && !inBody[g.blockOf[b.end]] {
			exits = true
		}
		if !exits {
			continue
		}
		invariant := true
		srcs = in.Sources(srcs[:0])
		for _, r := range srcs {
			if written.has(r) {
				invariant = false
			}
		}
		if invariant {
			p.reportf(SevWarn, b.end-1,
				"loop exit condition never changes inside the loop: it either exits on the first test or never")
		}
	}
}
