package analysis_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/asm/analysis"
)

// want is one expected finding, parsed from a fixture annotation of the
// form
//
//	;want analyzer "substring of the message"
//	;want analyzer error "substring"
//
// on the source line the finding must anchor to. Severity defaults to
// warning when omitted.
type want struct {
	analyzer string
	severity string
	substr   string
	line     int
	matched  bool
}

var wantRe = regexp.MustCompile(`(\w+)(?:\s+(warning|error))?\s+"([^"]*)"`)

func parseWants(t *testing.T, src string) []*want {
	t.Helper()
	var wants []*want
	for i, line := range strings.Split(src, "\n") {
		_, rest, ok := strings.Cut(line, ";want ")
		if !ok {
			continue
		}
		ms := wantRe.FindAllStringSubmatch(rest, -1)
		if len(ms) == 0 {
			t.Fatalf("line %d: unparsable ;want annotation %q", i+1, rest)
		}
		for _, m := range ms {
			sev := m[2]
			if sev == "" {
				sev = "warning"
			}
			wants = append(wants, &want{analyzer: m[1], severity: sev, substr: m[3], line: i + 1})
		}
	}
	return wants
}

// TestFixtures runs the analyzers over every golden fixture and checks the
// findings against the in-file ;want annotations, both ways: every
// diagnostic must be annotated on its line, and every annotation must be
// hit.
func TestFixtures(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixtures found: %v", err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			raw, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			prog, err := asm.AssembleFile(file, src)
			if err != nil {
				t.Fatalf("fixture does not assemble: %v", err)
			}
			rep := analysis.Analyze(prog, analysis.Options{})
			diags := rep.Diagnostics(prog, file, src)
			wants := parseWants(t, src)
			for _, d := range diags {
				found := false
				for _, w := range wants {
					if w.line == d.Line && w.analyzer == d.Analyzer &&
						w.severity == d.Severity && strings.Contains(d.Msg, w.substr) {
						w.matched = true
						found = true
					}
				}
				if !found {
					t.Errorf("unannotated finding: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("line %d: want %s %s %q, but no such finding", w.line, w.analyzer, w.severity, w.substr)
				}
			}
		})
	}
}

// TestNarrownessSummary pins the static inlinability classification on a
// fixture whose four integer defs are exactly known: li 5 and 5+5 fit the
// 7-bit inline width, li 1000 and li 100 provably do not.
func TestNarrownessSummary(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "narrowcheck.s"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.AssembleFile("narrowcheck.s", string(raw))
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(prog, analysis.Options{})
	got := rep.Inlinability
	wantSum := analysis.Inlinability{
		NarrowBits: 7, Defs: 4, Narrow: 2, Wide: 2, Unknown: 0, FPDefs: 0,
		StaticFrac: 0.5, WeightedFrac: 0.5,
	}
	if got != wantSum {
		t.Errorf("inlinability = %+v, want %+v", got, wantSum)
	}
	if len(rep.Loops) != 0 {
		t.Errorf("loops = %d, want 0", len(rep.Loops))
	}
}

// TestLoopTripCounts pins the trip-count lattice on the loopbudget
// fixture: the counted loop resolves to 8 bounded trips, the second loop
// is infinite (no exit edge).
func TestLoopTripCounts(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "loopbudget.s"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := asm.AssembleFile("loopbudget.s", string(raw))
	if err != nil {
		t.Fatal(err)
	}
	rep := analysis.Analyze(prog, analysis.Options{})
	if len(rep.Loops) != 2 {
		t.Fatalf("loops = %+v, want 2", rep.Loops)
	}
	if rep.Loops[0].Trip != analysis.TripBounded || rep.Loops[0].Trips != 8 {
		t.Errorf("first loop = %+v, want bounded with 8 trips", rep.Loops[0])
	}
	if rep.Loops[1].Trip != analysis.TripInfinite {
		t.Errorf("second loop = %+v, want infinite", rep.Loops[1])
	}
}

// TestCFGThroughMacroLabels is a regression test for control flow routed
// through macro-generated \@ labels: each expansion mints a distinct loop
// label, and the CFG must resolve both back edges and both trip counts
// without spurious findings.
func TestCFGThroughMacroLabels(t *testing.T) {
	const src = `.macro cnt
loop\@:
  addi r1, r1, -1
  bnez r1, loop\@
.endm
.text
main:
  li   r1, 4
  cnt
  li   r1, 4
  cnt
  halt
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	rep := analysis.Analyze(prog, analysis.Options{})
	for _, f := range rep.Findings {
		t.Errorf("unexpected finding: %s: %s", f.Analyzer, f.Msg)
	}
	if len(rep.Loops) != 2 {
		t.Fatalf("loops = %+v, want 2", rep.Loops)
	}
	for i, l := range rep.Loops {
		if l.Trip != analysis.TripBounded || l.Trips != 4 {
			t.Errorf("loop %d = %+v, want bounded with 4 trips", i, l)
		}
	}
}
