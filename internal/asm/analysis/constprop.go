package analysis

import (
	"math"
	"math/bits"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// ival is a signed value interval [lo, hi]. The bottom element (unreached
// / no value) is bot; top is [MinInt64, MaxInt64].
type ival struct {
	lo, hi int64
	bot    bool
}

func top() ival            { return ival{lo: math.MinInt64, hi: math.MaxInt64} }
func cst(v int64) ival     { return ival{lo: v, hi: v} }
func bot() ival            { return ival{bot: true} }
func (a ival) isTop() bool { return !a.bot && a.lo == math.MinInt64 && a.hi == math.MaxInt64 }

func (a ival) constVal() (int64, bool) {
	if !a.bot && a.lo == a.hi {
		return a.lo, true
	}
	return 0, false
}

// within reports a ⊆ [lo, hi].
func (a ival) within(lo, hi int64) bool { return !a.bot && a.lo >= lo && a.hi <= hi }

// outside reports that a and [lo, hi] are provably disjoint.
func (a ival) outside(lo, hi int64) bool { return !a.bot && (a.hi < lo || a.lo > hi) }

func join(a, b ival) ival {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	return ival{lo: min64(a.lo, b.lo), hi: max64(a.hi, b.hi)}
}

// widen jumps any bound that still grows to infinity, guaranteeing the
// fixpoint terminates no matter how slowly a loop counter creeps.
func widen(old, next ival) ival {
	if old.bot {
		return next
	}
	w := next
	if next.lo < old.lo {
		w.lo = math.MinInt64
	}
	if next.hi > old.hi {
		w.hi = math.MaxInt64
	}
	return w
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// regState is one interval per architected register (unified 0..63 space).
type regState [isa.NumArchRegs]ival

func (s *regState) get(r isa.Reg) ival {
	if r == isa.RZero {
		return cst(0)
	}
	return s[r]
}

func (s *regState) set(r isa.Reg, v ival) {
	if r != isa.RZero {
		s[r] = v
	}
}

func joinState(a, b *regState) (regState, bool) {
	var out regState
	changed := false
	for i := range a {
		out[i] = join(a[i], b[i])
		if out[i] != a[i] {
			changed = true
		}
	}
	return out, changed
}

// widenJoins is how many times a block's in-state may grow by plain join
// before further growth is widened to infinity.
const widenJoins = 8

// constFacts is the solved interval analysis: the register state at entry
// to every reachable block.
type constFacts struct {
	g    *graph
	in   []regState
	seen []bool // block ever reached by propagation
	opts Options
}

// entryState is the architectural state the emulator guarantees at
// program start: every register zero except SP, which holds the stack
// top.
func entryState() regState {
	var st regState
	for i := range st {
		st[i] = cst(0)
	}
	st[isa.RSP] = cst(asm.DefaultStackTop)
	return st
}

func solveConst(g *graph, reachable []bool, opts Options) *constFacts {
	cf := &constFacts{
		g:    g,
		in:   make([]regState, len(g.blocks)),
		seen: make([]bool, len(g.blocks)),
		opts: opts,
	}
	for i := range cf.in {
		for r := range cf.in[i] {
			cf.in[i][r] = bot()
		}
	}
	if g.entry < 0 {
		return cf
	}
	cf.in[g.entry] = entryState()
	cf.seen[g.entry] = true
	joins := make([]int, len(g.blocks))
	work := []int{g.entry}
	inWork := make([]bool, len(g.blocks))
	inWork[g.entry] = true
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		out := cf.outState(bi)
		for _, s := range g.blocks[bi].succs {
			next, changed := joinState(&cf.in[s], &out)
			if !cf.seen[s] {
				cf.seen[s] = true
				changed = true
			}
			if !changed {
				continue
			}
			joins[s]++
			if joins[s] > widenJoins {
				for r := range next {
					next[r] = widen(cf.in[s][r], next[r])
				}
			}
			cf.in[s] = next
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return cf
}

// outState runs the block's transfer function over its in-state.
func (cf *constFacts) outState(bi int) regState {
	st := cf.in[bi]
	b := &cf.g.blocks[bi]
	for i := b.start; i < b.end; i++ {
		transfer(&st, cf.g.insts[i], cf.g.addrOf(i))
	}
	return st
}

// walk visits every instruction of block bi in order, passing the
// register state just before it executes.
func (cf *constFacts) walk(bi int, f func(i int, in isa.Inst, st *regState)) {
	st := cf.in[bi]
	b := &cf.g.blocks[bi]
	for i := b.start; i < b.end; i++ {
		in := cf.g.insts[i]
		f(i, in, &st)
		transfer(&st, in, cf.g.addrOf(i))
	}
}

// addIval adds two intervals, going to top on any overflow.
func addIval(a, b ival) ival {
	if a.bot || b.bot {
		return bot()
	}
	lo, ok1 := addOv(a.lo, b.lo)
	hi, ok2 := addOv(a.hi, b.hi)
	if !ok1 || !ok2 {
		return top()
	}
	return ival{lo: lo, hi: hi}
}

func addOv(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func negIval(a ival) ival {
	if a.bot {
		return bot()
	}
	if a.lo == math.MinInt64 {
		return top()
	}
	return ival{lo: -a.hi, hi: -a.lo}
}

// orMax bounds x|y for non-negative x ≤ a, y ≤ b: the result cannot set a
// bit above the highest bit of a|b.
func orMax(a, b int64) int64 {
	n := bits.Len64(uint64(a) | uint64(b))
	if n >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<n - 1
}

// transfer applies one instruction's effect on the register intervals.
// Anything not modeled precisely goes to top — the analysis only ever
// claims what it can prove.
func transfer(st *regState, in isa.Inst, pc uint64) {
	rd, writes := in.Dest()
	if !writes {
		return // stores, branches, putc, nop, halt: no register effect
	}
	a := st.get(in.Ra)
	b := st.get(in.Rb)
	res := top()
	switch in.Op {
	case isa.OpADD:
		res = addIval(a, b)
	case isa.OpSUB:
		res = addIval(a, negIval(b))
	case isa.OpADDI:
		res = addIval(a, cst(in.Imm))
	case isa.OpLUI:
		res = cst(in.Imm << 16)
	case isa.OpANDI:
		// Immediate is zero-extended: the result keeps only low bits of
		// the mask, so it lands in [0, imm] regardless of the operand.
		res = ival{lo: 0, hi: in.Imm}
	case isa.OpAND:
		switch {
		case a.within(0, math.MaxInt64) && b.within(0, math.MaxInt64):
			res = ival{lo: 0, hi: min64(a.hi, b.hi)}
		case a.within(0, math.MaxInt64):
			res = ival{lo: 0, hi: a.hi}
		case b.within(0, math.MaxInt64):
			res = ival{lo: 0, hi: b.hi}
		}
	case isa.OpORI:
		if a.within(0, math.MaxInt64) {
			res = ival{lo: 0, hi: orMax(a.hi, in.Imm)}
		}
	case isa.OpXORI:
		if a.within(0, math.MaxInt64) {
			res = ival{lo: 0, hi: orMax(a.hi, in.Imm)}
		}
	case isa.OpOR, isa.OpXOR:
		if a.within(0, math.MaxInt64) && b.within(0, math.MaxInt64) {
			res = ival{lo: 0, hi: orMax(a.hi, b.hi)}
		}
	case isa.OpSLT, isa.OpSLTU, isa.OpSLTI, isa.OpSEQ,
		isa.OpFCLT, isa.OpFCLE, isa.OpFCEQ:
		res = ival{lo: 0, hi: 1}
	case isa.OpSLLI:
		res = shlIval(a, uint(in.Imm)&63)
	case isa.OpSRLI:
		res = shrlIval(a, uint(in.Imm)&63)
	case isa.OpSRAI:
		res = shraIval(a, uint(in.Imm)&63)
	case isa.OpSLL:
		if sh, ok := b.constVal(); ok {
			res = shlIval(a, uint(sh)&63)
		}
	case isa.OpSRL:
		if sh, ok := b.constVal(); ok {
			res = shrlIval(a, uint(sh)&63)
		}
	case isa.OpSRA:
		if sh, ok := b.constVal(); ok {
			res = shraIval(a, uint(sh)&63)
		}
	case isa.OpMUL:
		res = mulIval(a, b)
	case isa.OpLDB:
		res = ival{lo: -128, hi: 127}
	case isa.OpLDBU:
		res = ival{lo: 0, hi: 255}
	case isa.OpLDL:
		res = ival{lo: math.MinInt32, hi: math.MaxInt32}
	case isa.OpJAL, isa.OpJALR:
		res = cst(int64(pc + 4))
	case isa.OpCMOVEQ, isa.OpCMOVNE:
		res = join(st.get(in.Rd), b)
	case isa.OpFMOV:
		res = a // bit-pattern copy
	case isa.OpCVTIF:
		// Converting integer zero yields +0.0, whose bit pattern is zero.
		if v, ok := a.constVal(); ok && v == 0 {
			res = cst(0)
		}
	}
	st.set(rd, res)
}

func shlIval(a ival, sh uint) ival {
	if a.bot {
		return bot()
	}
	lo, hi := a.lo<<sh, a.hi<<sh
	if lo>>sh != a.lo || hi>>sh != a.hi || lo > hi {
		return top()
	}
	return ival{lo: lo, hi: hi}
}

func shrlIval(a ival, sh uint) ival {
	if a.bot {
		return bot()
	}
	if sh == 0 {
		return a
	}
	if a.within(0, math.MaxInt64) {
		return ival{lo: a.lo >> sh, hi: a.hi >> sh}
	}
	// A negative operand shifts in zeros from a huge unsigned value: the
	// result is non-negative and below 2^(64-sh).
	return ival{lo: 0, hi: int64(^uint64(0) >> sh)}
}

func shraIval(a ival, sh uint) ival {
	if a.bot {
		return bot()
	}
	return ival{lo: a.lo >> sh, hi: a.hi >> sh}
}

// mulIval multiplies conservatively: exact only when all corner products
// stay comfortably inside 64 bits.
func mulIval(a, b ival) ival {
	if a.bot || b.bot {
		return bot()
	}
	const lim = math.MaxInt32
	if a.lo < -lim || a.hi > lim || b.lo < -lim || b.hi > lim {
		return top()
	}
	p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
	return ival{
		lo: min64(min64(p1, p2), min64(p3, p4)),
		hi: max64(max64(p1, p2), max64(p3, p4)),
	}
}
