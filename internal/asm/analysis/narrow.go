package analysis

import (
	"prisim/internal/isa"
)

var narrowAnalyzer = &Analyzer{
	Name: "narrowness",
	Doc: "classifies every reachable register def by whether its value " +
		"provably fits the PRI inline width (narrow), provably does not " +
		"(wide), or cannot be proven either way; the per-program summary " +
		"is comparable against the simulator's measured inlining rate",
	run: runNarrow,
}

// tripWeight caps and defaults the per-loop execution weight used for the
// weighted inlinability fraction: a loop with an unknown or huge trip
// count contributes this much per nesting level. It is a reporting
// heuristic, not a soundness claim.
const tripWeight = 64

func runNarrow(p *pass) {
	g := p.cfg
	bits := p.opts.NarrowBits
	lo := -(int64(1) << uint(bits-1))
	hi := int64(1)<<uint(bits-1) - 1
	sum := Inlinability{NarrowBits: bits}
	var weighted, weightedNarrow float64
	for bi := range g.blocks {
		if !p.reachable[bi] {
			continue
		}
		w := p.blockWeight(bi)
		p.consts.walk(bi, func(i int, in isa.Inst, st *regState) {
			rd, ok := in.Dest()
			if !ok {
				return
			}
			var res regState = *st
			transfer(&res, in, g.addrOf(i))
			v := res.get(rd)
			sum.Defs++
			weighted += w
			narrow := false
			switch {
			case rd.IsFP():
				sum.FPDefs++
				// The paper inlines an FP value only when its bit
				// pattern is all zeroes or all ones.
				if v.within(0, 0) || v.within(-1, -1) {
					narrow = true
					sum.Narrow++
				} else {
					sum.Unknown++
				}
			case v.within(lo, hi):
				narrow = true
				sum.Narrow++
			case v.outside(lo, hi):
				sum.Wide++
			default:
				sum.Unknown++
			}
			if narrow {
				weightedNarrow += w
			}
		})
	}
	if sum.Defs > 0 {
		sum.StaticFrac = float64(sum.Narrow) / float64(sum.Defs)
	}
	if weighted > 0 {
		sum.WeightedFrac = weightedNarrow / weighted
	}
	p.setInlinability(sum)
}

// blockWeight estimates how often a block executes relative to the entry:
// the product of the trip counts of every loop containing it, with
// unknown and unbounded loops weighted at tripWeight per level.
func (p *pass) blockWeight(bi int) float64 {
	w := 1.0
	if p.loopOf == nil {
		return w
	}
	for _, li := range p.loopOf[bi] {
		l := p.loops[li]
		if l.Trip == TripBounded && l.Trips > 0 && l.Trips < tripWeight {
			w *= float64(l.Trips)
		} else {
			w *= tripWeight
		}
	}
	return w
}
