package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func scan(t *testing.T, src string) []Token {
	t.Helper()
	toks := New(src).All()
	if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
		t.Fatalf("token stream not EOF-terminated: %v", toks)
	}
	return toks
}

func TestBasicLine(t *testing.T) {
	toks := scan(t, "main: addi r1, zero, 7")
	want := []Kind{Ident, Colon, Ident, Ident, Comma, Ident, Comma, Int, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (stream %v)", i, got[i], want[i], toks)
		}
	}
	if toks[0].Text != "main" || toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("label token = %+v", toks[0])
	}
	if toks[7].Text != "7" || toks[7].Col != 22 {
		t.Errorf("immediate token = %+v", toks[7])
	}
}

func TestPositionsAreRuneAccurate(t *testing.T) {
	// Multi-byte runes in a comment must not skew following positions.
	toks := scan(t, "; héllo wörld\nadd r1, r2, r3")
	if toks[0].Kind != Newline {
		t.Fatalf("first token %v", toks[0])
	}
	add := toks[1]
	if add.Text != "add" || add.Line != 2 || add.Col != 1 {
		t.Errorf("add token = %+v", add)
	}
}

func TestCommentsStripped(t *testing.T) {
	for _, src := range []string{"nop ; tail", "nop # tail", "nop;tail", "nop#tail"} {
		toks := scan(t, src)
		if len(toks) != 3 || toks[0].Text != "nop" || toks[1].Kind != Newline {
			t.Errorf("scan(%q) = %v", src, toks)
		}
	}
}

func TestCommentCharsInsideString(t *testing.T) {
	toks := scan(t, `.ascii "a;b#c"`)
	if toks[1].Kind != Str || toks[1].Text != "a;b#c" {
		t.Fatalf("string token = %+v (stream %v)", toks[1], toks)
	}
}

func TestStringEscapes(t *testing.T) {
	toks := scan(t, `.asciz "hi\n\t\"q\"\x41\0"`)
	want := "hi\n\t\"q\"A\x00"
	if toks[1].Kind != Str || toks[1].Text != want {
		t.Fatalf("decoded = %q, want %q", toks[1].Text, want)
	}
}

func TestStringErrors(t *testing.T) {
	cases := map[string]string{
		`.ascii "abc`:    "unterminated",
		`.ascii "a\q"`:   "unknown escape",
		`.ascii "a\x4"`:  "two hex digits",
		".ascii \"a\nb\"": "unterminated",
	}
	for src, wantSub := range cases {
		var ill []Token
		for _, tok := range scan(t, src) {
			if tok.Kind == Illegal {
				ill = append(ill, tok)
			}
		}
		if len(ill) == 0 {
			t.Errorf("scan(%q): no Illegal token", src)
			continue
		}
		if !strings.Contains(ill[0].Text, wantSub) {
			t.Errorf("scan(%q): error %q, want substring %q", src, ill[0].Text, wantSub)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", Int}, {"0", Int}, {"0x2A", Int}, {"0b1010", Int}, {"0o17", Int},
		{"2.5", Float}, {"1e-3", Float}, {"10E6", Float}, {"0.25", Float},
	}
	for _, c := range cases {
		toks := scan(t, c.src)
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("scan(%q) first token = %+v, want kind %v", c.src, toks[0], c.kind)
		}
	}
	for _, bad := range []string{"0xG", "12ab", "1e+"} {
		toks := scan(t, bad)
		if toks[0].Kind != Illegal {
			t.Errorf("scan(%q) = %+v, want Illegal", bad, toks[0])
		}
	}
}

func TestOperators(t *testing.T) {
	toks := scan(t, "1+2-3*4/5%6&7|8^9~0<<1>>2")
	want := []Kind{Int, Plus, Int, Minus, Int, Star, Int, Slash, Int, Percent,
		Int, Amp, Int, Pipe, Int, Caret, Int, Tilde, Int, Shl, Int, Shr, Int, Newline, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Single '<' is an error, not a silent Shl.
	toks = scan(t, "1 < 2")
	if toks[1].Kind != Illegal {
		t.Errorf("single '<' token = %+v, want Illegal", toks[1])
	}
}

func TestMacroArgs(t *testing.T) {
	toks := scan(t, `loop\@: addi \rd, \rd, 1`)
	if toks[0].Kind != Ident || toks[0].Text != "loop" {
		t.Fatalf("stream %v", toks)
	}
	if toks[1].Kind != MacroArg || toks[1].Text != "@" {
		t.Errorf("counter token = %+v", toks[1])
	}
	if toks[1].Col != 5 {
		t.Errorf("counter col = %d, want 5", toks[1].Col)
	}
	if toks[4].Kind != MacroArg || toks[4].Text != "rd" {
		t.Errorf("param token = %+v", toks[4])
	}
	// Adjacency: "loop" ends where "\@" starts.
	if toks[0].Col+toks[0].Width() != toks[1].Col {
		t.Errorf("adjacency broken: %+v then %+v", toks[0], toks[1])
	}
}

func TestDirectives(t *testing.T) {
	toks := scan(t, ".data\n.word 1, 2")
	if toks[0].Kind != Directive || toks[0].Text != ".data" {
		t.Fatalf("directive token = %+v", toks[0])
	}
	if toks[2].Kind != Directive || toks[2].Text != ".word" {
		t.Fatalf("directive token = %+v", toks[2])
	}
	toks = scan(t, ". word")
	if toks[0].Kind != Illegal {
		t.Errorf("bare dot = %+v, want Illegal", toks[0])
	}
}

func TestEOFSynthesizesNewline(t *testing.T) {
	toks := scan(t, "halt")
	if len(toks) != 3 || toks[1].Kind != Newline || toks[2].Kind != EOF {
		t.Fatalf("stream %v", toks)
	}
	// Next keeps returning EOF after exhaustion.
	l := New("x")
	for range [5]int{} {
		l.Next()
	}
	if tok := l.Next(); tok.Kind != EOF {
		t.Errorf("post-exhaustion token %v", tok)
	}
}

func TestBlankAndCommentOnlyLines(t *testing.T) {
	toks := scan(t, "\n  ; only a comment\n\t\nnop\n")
	var idents []Token
	for _, tok := range toks {
		if tok.Kind == Ident {
			idents = append(idents, tok)
		}
	}
	if len(idents) != 1 || idents[0].Text != "nop" || idents[0].Line != 4 {
		t.Fatalf("idents = %v", idents)
	}
}
