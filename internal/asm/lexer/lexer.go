// Package lexer tokenizes PRISC-64 assembly source. It is the bottom layer
// of the text frontend: internal/asm/parser consumes the token stream and
// internal/asm wraps the result into a Program image.
//
// The lexer is a DFA written in the state-function style: each state is a
// func(*Lexer) stateFn that consumes input and returns the next state, so
// the machine's current state is simply which function runs next. Tokens
// carry rune-accurate 1-based line/column positions for diagnostics.
//
// Comment handling is state-aware: ';' and '#' begin a comment everywhere
// except inside a string literal, where they are ordinary characters. The
// old line-splitting assembler got this wrong; the regression test for it
// lives in internal/asm.
//
//prisim:deterministic
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind classifies a token.
type Kind uint8

// Token kinds. Operator kinds exist for the parser's constant-expression
// grammar (.word 3*N+1, ldq r2, (OFF+8)(r1)).
const (
	EOF     Kind = iota
	Illegal      // lexing error; Text holds the message
	Newline      // statement separator
	Ident        // mnemonic, label, register, or symbol reference
	Directive    // .word, .text, ... (Text includes the dot)
	Int          // integer literal (Text verbatim: 42, 0x2A, 0b101010)
	Float        // floating literal (Text verbatim: 2.5, 1e-3)
	Str          // string literal (Text holds the decoded value)
	MacroArg     // \name or \@ inside a macro body (Text without the backslash)
	Colon
	Comma
	LParen
	RParen
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Shl
	Shr
)

var kindNames = [...]string{
	EOF:       "end of file",
	Illegal:   "illegal token",
	Newline:   "end of line",
	Ident:     "identifier",
	Directive: "directive",
	Int:       "integer",
	Float:     "float",
	Str:       "string",
	MacroArg:  "macro argument",
	Colon:     `":"`,
	Comma:     `","`,
	LParen:    `"("`,
	RParen:    `")"`,
	Plus:      `"+"`,
	Minus:     `"-"`,
	Star:      `"*"`,
	Slash:     `"/"`,
	Percent:   `"%"`,
	Amp:       `"&"`,
	Pipe:      `"|"`,
	Caret:     `"^"`,
	Tilde:     `"~"`,
	Shl:       `"<<"`,
	Shr:       `">>"`,
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Token is one lexeme with its source position. Line and Col are 1-based;
// Col counts runes, not bytes, so diagnostics stay accurate on multi-byte
// input.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case EOF, Newline, Colon, Comma, LParen, RParen,
		Plus, Minus, Star, Slash, Percent, Amp, Pipe, Caret, Tilde, Shl, Shr:
		return t.Kind.String()
	case Str:
		return fmt.Sprintf("string %q", t.Text)
	case MacroArg:
		return fmt.Sprintf(`macro argument "\%s"`, t.Text)
	default:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
}

// Width returns the token's display width in runes as it appeared in the
// source. Used by the parser's macro expander to decide whether two tokens
// were adjacent (loop\@ must paste into one identifier). Strings report the
// decoded length and must not be used for adjacency checks.
func (t Token) Width() int {
	switch t.Kind {
	case MacroArg:
		return 1 + utf8.RuneCountInString(t.Text) // leading backslash
	case Shl, Shr:
		return 2
	default:
		return utf8.RuneCountInString(t.Text)
	}
}

// stateFn is one DFA state; it consumes input and returns the next state,
// or nil when the input is exhausted.
type stateFn func(*Lexer) stateFn

// Lexer scans one source text. Create with New, pull tokens with Next;
// after the input ends Next returns EOF forever.
type Lexer struct {
	src   string
	pos   int // byte offset of the next unread rune
	line  int // 1-based line of the next unread rune
	col   int // 1-based rune column of the next unread rune
	state stateFn
	queue []Token // tokens emitted but not yet returned
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, state: lexLine}
}

// Next returns the next token. The final newline is synthesized if the
// source does not end with one, so every statement is newline-terminated.
func (l *Lexer) Next() Token {
	for len(l.queue) == 0 {
		if l.state == nil {
			return Token{Kind: EOF, Line: l.line, Col: l.col}
		}
		l.state = l.state(l)
	}
	t := l.queue[0]
	copy(l.queue, l.queue[1:])
	l.queue = l.queue[:len(l.queue)-1]
	return t
}

// All scans the remaining input and returns every token up to and
// including the final EOF.
func (l *Lexer) All() []Token {
	var out []Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}

const eof = rune(-1)

// peek returns the next rune without consuming it.
func (l *Lexer) peek() rune {
	if l.pos >= len(l.src) {
		return eof
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	return r
}

// next consumes and returns the next rune, tracking line/col.
func (l *Lexer) next() rune {
	if l.pos >= len(l.src) {
		return eof
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	l.pos += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) emit(k Kind, text string, line, col int) {
	l.queue = append(l.queue, Token{Kind: k, Text: text, Line: line, Col: col})
}

func (l *Lexer) errorf(line, col int, format string, args ...any) {
	l.emit(Illegal, fmt.Sprintf(format, args...), line, col)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexLine is the start state: between tokens on a line.
func lexLine(l *Lexer) stateFn {
	for {
		line, col := l.line, l.col
		r := l.peek()
		switch {
		case r == eof:
			// Synthesize a trailing newline so the parser sees every
			// statement terminated, then stop.
			l.emit(Newline, "\n", line, col)
			l.emit(EOF, "", line, col)
			return nil
		case r == ' ' || r == '\t' || r == '\r':
			l.next()
		case r == ';' || r == '#':
			for l.peek() != '\n' && l.peek() != eof {
				l.next()
			}
		case r == '\n':
			l.next()
			l.emit(Newline, "\n", line, col)
			return lexLine
		case r == '"':
			return lexString
		case r == '\\':
			return lexMacroArg
		case r == '.' || isIdentStart(r):
			return lexIdent
		case unicode.IsDigit(r):
			return lexNumber
		default:
			l.next()
			k, ok := punctKind(r)
			if !ok {
				l.errorf(line, col, "unexpected character %q", r)
				return lexLine
			}
			if k == Shl || k == Shr {
				// '<' and '>' are only valid doubled.
				want := byte('<')
				if k == Shr {
					want = '>'
				}
				if l.peek() != rune(want) {
					l.errorf(line, col, "unexpected character %q (did you mean %q?)", r, string(want)+string(want))
					return lexLine
				}
				l.next()
				l.emit(k, string(want)+string(want), line, col)
				return lexLine
			}
			l.emit(k, string(r), line, col)
			return lexLine
		}
	}
}

func punctKind(r rune) (Kind, bool) {
	switch r {
	case ':':
		return Colon, true
	case ',':
		return Comma, true
	case '(':
		return LParen, true
	case ')':
		return RParen, true
	case '+':
		return Plus, true
	case '-':
		return Minus, true
	case '*':
		return Star, true
	case '/':
		return Slash, true
	case '%':
		return Percent, true
	case '&':
		return Amp, true
	case '|':
		return Pipe, true
	case '^':
		return Caret, true
	case '~':
		return Tilde, true
	case '<':
		return Shl, true
	case '>':
		return Shr, true
	}
	return 0, false
}

// lexIdent scans an identifier or a dot-directive.
func lexIdent(l *Lexer) stateFn {
	line, col := l.line, l.col
	start := l.pos
	kind := Ident
	if l.peek() == '.' {
		kind = Directive
		l.next()
		if !isIdentStart(l.peek()) {
			l.errorf(line, col, "expected directive name after '.'")
			return lexLine
		}
	}
	for isIdentRune(l.peek()) {
		l.next()
	}
	l.emit(kind, l.src[start:l.pos], line, col)
	return lexLine
}

// lexNumber scans an integer or float literal. The text is kept verbatim;
// the parser converts it (strconv with base 0 understands 0x/0o/0b).
func lexNumber(l *Lexer) stateFn {
	line, col := l.line, l.col
	start := l.pos
	kind := Int
	digits := "0123456789"
	if l.peek() == '0' {
		l.next()
		switch l.peek() {
		case 'x', 'X':
			l.next()
			digits = "0123456789abcdefABCDEF"
		case 'b', 'B':
			l.next()
			digits = "01"
		case 'o', 'O':
			l.next()
			digits = "01234567"
		}
	}
	scan := func() {
		for strings.ContainsRune(digits, l.peek()) {
			l.next()
		}
	}
	scan()
	if digits[len(digits)-1] == '9' { // decimal: allow fraction/exponent
		if l.peek() == '.' {
			kind = Float
			l.next()
			scan()
		}
		if r := l.peek(); r == 'e' || r == 'E' {
			kind = Float
			l.next()
			if r := l.peek(); r == '+' || r == '-' {
				l.next()
			}
			if !unicode.IsDigit(l.peek()) {
				l.errorf(line, col, "malformed exponent in %q", l.src[start:l.pos])
				return lexLine
			}
			scan()
		}
	}
	// A trailing identifier rune means a malformed literal like 0xG or 12ab.
	if isIdentRune(l.peek()) {
		for isIdentRune(l.peek()) {
			l.next()
		}
		l.errorf(line, col, "malformed number %q", l.src[start:l.pos])
		return lexLine
	}
	l.emit(kind, l.src[start:l.pos], line, col)
	return lexLine
}

// lexString scans a double-quoted string literal with escapes. ';' and '#'
// inside the literal are plain characters, not comment starts.
func lexString(l *Lexer) stateFn {
	line, col := l.line, l.col
	l.next() // opening quote
	var sb strings.Builder
	for {
		r := l.peek()
		switch r {
		case eof, '\n':
			l.errorf(line, col, "unterminated string literal")
			return lexLine
		case '"':
			l.next()
			l.emit(Str, sb.String(), line, col)
			return lexLine
		case '\\':
			l.next()
			eline, ecol := l.line, l.col
			e := l.next()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			case '\\', '"':
				sb.WriteByte(byte(e))
			case 'x':
				hi, okHi := hexVal(l.peek())
				if okHi {
					l.next()
				}
				lo, okLo := hexVal(l.peek())
				if okLo {
					l.next()
				}
				if !okHi || !okLo {
					l.errorf(eline, ecol, `\x escape needs two hex digits`)
					continue
				}
				sb.WriteByte(byte(hi<<4 | lo))
			default:
				l.errorf(eline, ecol, "unknown escape %q in string", e)
			}
		default:
			l.next()
			sb.WriteRune(r)
		}
	}
}

func hexVal(r rune) (int, bool) {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0'), true
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10, true
	case r >= 'A' && r <= 'F':
		return int(r-'A') + 10, true
	}
	return 0, false
}

// lexMacroArg scans \name or \@ (macro parameter reference / unique-label
// counter). Outside a macro body the parser rejects these.
func lexMacroArg(l *Lexer) stateFn {
	line, col := l.line, l.col
	l.next() // backslash
	switch {
	case l.peek() == '@':
		l.next()
		l.emit(MacroArg, "@", line, col)
	case isIdentStart(l.peek()):
		start := l.pos
		for isIdentRune(l.peek()) {
			l.next()
		}
		l.emit(MacroArg, l.src[start:l.pos], line, col)
	default:
		l.errorf(line, col, `expected macro parameter name or '@' after '\'`)
	}
	return lexLine
}
