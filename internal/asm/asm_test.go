package asm

import (
	"strings"
	"testing"

	"prisim/internal/isa"
)

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 5)
	b.Label("loop")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.CodeBase {
		t.Errorf("entry = %#x, want code base %#x", p.Entry, p.CodeBase)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len(code) = %d", len(p.Code))
	}
	// The backward branch should have displacement -2.
	br := isa.Decode(p.Code[2])
	if br.Op != isa.OpBNE || br.Imm != -2 {
		t.Errorf("branch = %v", br)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Finish(); err == nil {
		t.Fatal("undefined label not reported")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate label did not panic")
		}
	}()
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
}

func TestBuilderDataLayout(t *testing.T) {
	b := NewBuilder()
	a1 := b.Words("tbl", []uint64{1, 2, 3})
	a2 := b.Bytes("bytes", []byte{9})
	a3 := b.Space("buf", 100)
	a4 := b.Floats("vec", []float64{1.5})
	if a1 != DefaultDataBase {
		t.Errorf("first data at %#x", a1)
	}
	if a2 != a1+24 {
		t.Errorf("bytes at %#x, want %#x", a2, a1+24)
	}
	if a3%8 != 0 || a3 <= a2 {
		t.Errorf("space at %#x", a3)
	}
	if a4 <= a3 || a4 < a3+100 {
		t.Errorf("floats at %#x overlaps space", a4)
	}
	b.Halt()
	p := b.MustFinish()
	if p.Symbols["tbl"] != a1 || p.Symbols["buf"] != a3 {
		t.Error("symbols not recorded")
	}
}

func TestBuilderLaBeforeDeclPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("La of undeclared symbol did not panic")
		}
	}()
	b := NewBuilder()
	b.La(isa.IntReg(1), "missing")
}

func TestProgramInstAtAndDisassemble(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 7)
	b.Halt()
	p := b.MustFinish()
	in, ok := p.InstAt(p.CodeBase)
	if !ok || in.Op != isa.OpADDI {
		t.Errorf("InstAt = %v, %v", in, ok)
	}
	if _, ok := p.InstAt(p.CodeEnd()); ok {
		t.Error("InstAt past end succeeded")
	}
	if _, ok := p.InstAt(p.CodeBase + 2); ok {
		t.Error("InstAt misaligned succeeded")
	}
	dis := p.Disassemble()
	if !strings.Contains(dis, "main:") || !strings.Contains(dis, "addi r1, zero, 7") {
		t.Errorf("disassembly:\n%s", dis)
	}
}

func TestAssembleTextProgram(t *testing.T) {
	src := `
; a complete program
.data
tbl:  .word 10, 20, 0x30
vec:  .float 2.5
msg:  .ascii "hi"
buf:  .space 64
.text
main:
  la   r1, tbl
  ldq  r2, 8(r1)      # r2 = 20
  li   r3, 1000000    ; needs lui
  mov  r4, r2
  beqz r4, done
  addi r4, r4, -20
done:
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["tbl"] == 0 || p.Symbols["buf"] == 0 {
		t.Error("data symbols missing")
	}
	if len(p.Code) == 0 {
		t.Fatal("no code")
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry %#x != main %#x", p.Entry, p.Symbols["main"])
	}
}

func TestAssembleAllFormats(t *testing.T) {
	src := `
.data
d: .word 1
.text
main:
  add r1, r2, r3
  addi r1, r2, -5
  lui r1, 12
  ldq r1, 16(r2)
  fld f1, 0(r2)
  fst f1, 8(r2)
  beq r1, r2, main
  j main
  jal sub
  putc r1
  fadd f1, f2, f3
  fsqrt f4, f1
  cvtif f5, r1
  cvtfi r6, f5
  fclt r7, f1, f2
  nop
sub:
  jalr r9
  jalr r8, r9
  jr r9
  ret
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	// Every encoded word must decode to a valid op.
	for i, w := range p.Code {
		if isa.Decode(w).Op == isa.OpInvalid {
			t.Errorf("instruction %d decodes invalid", i)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",                  // missing operand
		"addi r1, r2, notanum",        // bad immediate
		"ldq r1, r2",                  // bad memory operand
		"beq r1, r2, nowhere\n",       // undefined label
		".text\nla r1, nothing",       // undefined symbol
		".data\nx: .word zebra",       // bad data
		".data\nx: .bogus 1",          // bad directive
		".data\nx: .space nope",       // bad size
		"jalr r1, r2, r3",             // too many operands
		".data\norphan:\n.text\nhalt", // label with no directive
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestBranchRangeError(t *testing.T) {
	b := NewBuilder()
	b.Label("main")
	b.Br(isa.OpBEQ, isa.RZero, isa.RZero, "far")
	for i := 0; i < 1<<15+10; i++ {
		b.Nop()
	}
	b.Label("far")
	b.Halt()
	if _, err := b.Finish(); err == nil {
		t.Fatal("branch out of range not reported")
	}
}

func TestInterleavedSections(t *testing.T) {
	src := `
.data
a: .word 7
.text
main:
  la  r1, a
  ldq r2, 0(r1)
.data
b: .word 9
.text
  la  r3, b
  ldq r4, 0(r3)
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["a"] == p.Symbols["b"] {
		t.Error("data symbols collided")
	}
}

func TestMultipleLabelsOneDirective(t *testing.T) {
	src := `
.data
first: second: .word 42
.text
main:
  la r1, first
  la r2, second
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["first"] != p.Symbols["second"] {
		t.Error("aliased labels differ")
	}
}

func TestNegativeAndHexDataValues(t *testing.T) {
	src := `
.data
v: .word -1, 0xFFFFFFFFFFFFFFFF, 0x10
.text
main:
  halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) == 0 || len(p.Data[0].Bytes) != 24 {
		t.Fatalf("data segment wrong: %+v", p.Data)
	}
	for i := 0; i < 8; i++ {
		if p.Data[0].Bytes[i] != 0xFF {
			t.Fatalf("-1 encoded wrong at byte %d", i)
		}
	}
}

func TestBuilderPCTracksEmission(t *testing.T) {
	b := NewBuilder()
	start := b.PC()
	b.Nop()
	b.Nop()
	if b.PC() != start+8 {
		t.Errorf("PC = %#x, want %#x", b.PC(), start+8)
	}
}

func TestJumpRegionCheck(t *testing.T) {
	// A jump whose target lands in a different 256MB region must fail at
	// Finish rather than silently truncating. Labels are code-relative, so
	// trigger the error by the only reachable path: a huge code segment.
	// (Cheap approximation: assert the error message path exists by
	// exercising a branch fixup on a non-control op.)
	b := NewBuilder()
	b.fixups = append(b.fixups, fixup{0, "x"})
	b.RR(isa.OpADD, isa.IntReg(1), isa.IntReg(2), isa.IntReg(3))
	b.Label("x")
	if _, err := b.Finish(); err == nil {
		t.Fatal("label fixup on non-control instruction not rejected")
	}
}
