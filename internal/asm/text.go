package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"prisim/internal/isa"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }

// Assemble translates PRISC-64 assembly text into a program image.
//
// The syntax is conventional two-section assembly:
//
//	.data
//	tbl:    .word 1, 2, 0x10
//	vec:    .float 1.0, -2.5
//	msg:    .byte 104, 105, 10
//	buf:    .space 4096
//	.text
//	main:   la   r1, tbl
//	        ldq  r2, 8(r1)
//	loop:   addi r2, r2, -1
//	        bnez r2, loop
//	        halt
//
// Comments start with ';' or '#'. Pseudo-instructions: li, la, mov, beqz,
// bnez, ret, plus the bare forms of jalr (link register implied). Data must
// be declared before it is referenced by la; interleaving .data and .text
// blocks is allowed as long as that ordering holds.
func Assemble(src string) (*Program, error) {
	b := NewBuilder()
	type codeLine struct {
		no   int
		text string
	}
	var code []codeLine
	inData := false

	lines := strings.Split(src, "\n")
	// First sweep: handle sections, labels, and data declarations; queue
	// code lines so that data symbols exist before code references them.
	var dataLabels []string // labels awaiting the next data directive
	for no, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case line == ".data":
			inData = true
			continue
		case line == ".text":
			inData = false
			continue
		}
		// Peel off leading labels.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,()") {
				break
			}
			label := line[:i]
			line = strings.TrimSpace(line[i+1:])
			if inData {
				dataLabels = append(dataLabels, label)
			} else {
				code = append(code, codeLine{no + 1, label + ":"})
			}
		}
		if line == "" {
			continue
		}
		if inData {
			if err := assembleData(b, line, dataLabels, no+1); err != nil {
				return nil, err
			}
			dataLabels = nil
		} else {
			code = append(code, codeLine{no + 1, line})
		}
	}
	if len(dataLabels) > 0 {
		return nil, fmt.Errorf("asm: data label %q has no directive", dataLabels[0])
	}

	for _, cl := range code {
		if strings.HasSuffix(cl.text, ":") {
			label := strings.TrimSuffix(cl.text, ":")
			if _, dup := b.labels[label]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", cl.no, label)
			}
			b.Label(label)
			continue
		}
		if err := assembleInst(b, cl.text); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", cl.no, err)
		}
	}
	return b.Finish()
}

func assembleData(b *Builder, line string, labels []string, no int) error {
	fields := strings.SplitN(line, " ", 2)
	directive := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	name := ""
	if len(labels) > 0 {
		name = labels[0]
	}
	defineExtra := func(addr uint64) {
		for _, l := range labels[1:] {
			b.defineDataSymbol(l, addr)
		}
	}
	switch directive {
	case ".word":
		vals, err := parseInts(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: %w", no, err)
		}
		words := make([]uint64, len(vals))
		for i, v := range vals {
			words[i] = uint64(v)
		}
		defineExtra(b.Words(name, words))
	case ".byte":
		vals, err := parseInts(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: %w", no, err)
		}
		bytes := make([]byte, len(vals))
		for i, v := range vals {
			bytes[i] = byte(v)
		}
		defineExtra(b.Bytes(name, bytes))
	case ".float":
		var vals []float64
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("asm: line %d: bad float %q", no, f)
			}
			vals = append(vals, v)
		}
		defineExtra(b.Floats(name, vals))
	case ".space":
		n, err := strconv.ParseUint(rest, 0, 64)
		if err != nil {
			return fmt.Errorf("asm: line %d: bad .space size %q", no, rest)
		}
		defineExtra(b.Space(name, n))
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: bad .ascii string", no)
		}
		defineExtra(b.Bytes(name, []byte(s)))
	default:
		return fmt.Errorf("asm: line %d: unknown directive %q", no, directive)
	}
	return nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, f := range splitOperands(s) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			// Allow full-range unsigned hex like 0xFFFFFFFFFFFFFFFF.
			u, uerr := strconv.ParseUint(f, 0, 64)
			if uerr != nil {
				return nil, fmt.Errorf("bad integer %q", f)
			}
			v = int64(u)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func assembleInst(b *Builder, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(strings.TrimSpace(rest))

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		return isa.ParseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		v, err := strconv.ParseInt(ops[i], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad immediate %q", mnemonic, ops[i])
		}
		return v, nil
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch mnemonic {
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.Li(rd, v)
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		addr, ok := b.symbols[ops[1]]
		if !ok {
			return fmt.Errorf("la: undefined data symbol %q", ops[1])
		}
		b.Li(rd, int64(addr))
		return nil
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		if rd.IsFP() || ra.IsFP() {
			b.R1(isa.OpFMOV, rd, ra)
		} else {
			b.Mov(rd, ra)
		}
		return nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		ra, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.OpBEQ
		if mnemonic == "bnez" {
			op = isa.OpBNE
		}
		b.Br(op, ra, isa.RZero, ops[1])
		return nil
	case "ret":
		b.Ret()
		return nil
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	switch op.Format() {
	case isa.FmtR:
		switch op {
		case isa.OpNOP, isa.OpHALT:
			b.Emit(isa.Inst{Op: op})
		case isa.OpPUTC, isa.OpJR:
			ra, err := reg(0)
			if err != nil {
				return err
			}
			b.Emit(isa.Inst{Op: op, Ra: ra})
		case isa.OpJALR:
			// "jalr ra" (link to lr) or "jalr rd, ra".
			switch len(ops) {
			case 1:
				ra, err := reg(0)
				if err != nil {
					return err
				}
				b.Emit(isa.Inst{Op: op, Rd: isa.RLR, Ra: ra})
			case 2:
				rd, err := reg(0)
				if err != nil {
					return err
				}
				ra, err := reg(1)
				if err != nil {
					return err
				}
				b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra})
			default:
				return fmt.Errorf("jalr: want 1 or 2 operands")
			}
		case isa.OpFSQRT, isa.OpFMOV, isa.OpFNEG, isa.OpFABS, isa.OpCVTIF, isa.OpCVTFI:
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			ra, err := reg(1)
			if err != nil {
				return err
			}
			b.R1(op, rd, ra)
		default:
			if err := need(3); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			ra, err := reg(1)
			if err != nil {
				return err
			}
			rb, err := reg(2)
			if err != nil {
				return err
			}
			b.RR(op, rd, ra, rb)
		}
	case isa.FmtI:
		if op == isa.OpLUI {
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			v, err := imm(1)
			if err != nil {
				return err
			}
			b.RI(op, rd, isa.RZero, v)
			return nil
		}
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		b.RI(op, rd, ra, v)
	case isa.FmtLS:
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(ops[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: off})
	case isa.FmtB:
		if err := need(3); err != nil {
			return err
		}
		ra, err := reg(0)
		if err != nil {
			return err
		}
		rb, err := reg(1)
		if err != nil {
			return err
		}
		b.Br(op, ra, rb, ops[2])
	case isa.FmtJ:
		if err := need(1); err != nil {
			return err
		}
		if op == isa.OpJ {
			b.Jmp(ops[0])
		} else {
			b.Call(ops[0])
		}
	}
	return nil
}

// parseMemOperand parses "off(base)" or "(base)".
func parseMemOperand(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := strconv.ParseInt(s[:open], 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	base, err := isa.ParseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}
