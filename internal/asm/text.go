package asm

import (
	"errors"

	"prisim/internal/asm/parser"
)

// Diagnostic is one positioned assembly error: file, 1-based rune-accurate
// line/column, message, and a source excerpt. It is an alias for the
// parser's type so callers can consume diagnostics without importing the
// frontend packages.
type Diagnostic = parser.Diagnostic

// Diagnostics extracts the collected diagnostics from an error returned by
// Assemble, or nil if err did not come from the assembler frontend. The
// frontend collects every error it finds (capped), not just the first.
func Diagnostics(err error) []Diagnostic {
	var pe *parser.Error
	if errors.As(err, &pe) {
		return pe.Diags
	}
	return nil
}

// Assemble translates PRISC-64 assembly text into a program image.
//
// The syntax is conventional two-section assembly:
//
//	.equ    N, 8
//	.data
//	tbl:    .word 1, 2, 3*N+1
//	vec:    .float 1.0, -2.5
//	msg:    .asciz "hi;#()\n"
//	buf:    .space N*8
//	.text
//	main:   la   r1, tbl
//	        ldq  r2, (N)(r1)
//	loop:   addi r2, r2, -1
//	        bnez r2, loop
//	        halt
//
// Comments run from ';' or '#' to end of line (except inside string
// literals). Integer operands are constant expressions over literals,
// .equ/.set constants, and symbols, with C-like precedence. Directives:
// .data/.text (interleaving allowed; code may reference data declared in a
// later .data block), .word/.byte/.float/.ascii/.asciz/.space/.align,
// .equ/.set, and .macro/.endm with parameters (\name) and the \@
// unique-label counter. Pseudo-instructions: li, la, mov, beqz, bnez, ret,
// plus the bare form of jalr (link register implied).
//
// On failure the error carries every diagnostic found, each positioned
// file:line:col with a source excerpt; see Diagnostics.
func Assemble(src string) (*Program, error) {
	return AssembleFile("<input>", src)
}

// AssembleFile is Assemble with a file name for diagnostics.
func AssembleFile(name, src string) (*Program, error) {
	img, err := parser.Parse(src, parser.Config{
		File:     name,
		CodeBase: DefaultCodeBase,
		DataBase: DefaultDataBase,
	})
	if err != nil {
		return nil, err
	}
	data := make([]Segment, len(img.Data))
	for i, s := range img.Data {
		data[i] = Segment{Base: s.Base, Bytes: s.Bytes}
	}
	lines := make([]SrcPos, len(img.Lines))
	for i, pos := range img.Lines {
		lines[i] = SrcPos{Line: pos.Line, Col: pos.Col}
	}
	return &Program{
		Entry:    img.Entry,
		CodeBase: img.CodeBase,
		Code:     img.Code,
		Data:     data,
		Symbols:  img.Symbols,
		Lines:    lines,
		DataEnd:  img.DataEnd,
	}, nil
}
