// Package asm builds PRISC-64 program images. It provides two front ends
// over the same program representation: a Go builder API (Builder), which
// the synthetic workload kernels use to generate code, and a small text
// assembler (Assemble) with labels and data directives, used by cmd/prias
// and the examples.
package asm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"prisim/internal/isa"
)

// Default memory layout for assembled programs.
const (
	// DefaultCodeBase is where the code segment is loaded.
	DefaultCodeBase = 0x0001_0000
	// DefaultDataBase is where builder-declared data is laid out.
	DefaultDataBase = 0x0100_0000
	// DefaultStackTop is the initial stack pointer handed to programs.
	DefaultStackTop = 0x7FFF_FF00
)

// Segment is a contiguous run of initialized memory in a program image.
type Segment struct {
	Base  uint64
	Bytes []byte
}

// SrcPos is a 1-based source position for one code word; the zero value
// means "position unknown" (builder-generated programs carry no positions).
type SrcPos struct {
	Line int
	Col  int
}

// Program is a fully linked PRISC-64 program image.
//
// Lines and DataEnd are analysis metadata: like Symbols they do not affect
// execution and are excluded from the SHA256 identity.
type Program struct {
	Entry    uint64
	CodeBase uint64
	Code     []uint32 // encoded instructions, CodeBase-relative
	Data     []Segment
	Symbols  map[string]uint64
	// Lines, when non-nil, maps each code word to the source position of
	// the assembly statement that emitted it (len(Lines) == len(Code)).
	Lines []SrcPos
	// DataEnd is the first address past the laid-out data section,
	// including .space reservations, which materialize no Segment.
	// Zero when unknown (e.g. images decoded from old JSON dumps).
	DataEnd uint64
}

// CodeEnd returns the first address past the code segment.
func (p *Program) CodeEnd() uint64 { return p.CodeBase + 4*uint64(len(p.Code)) }

// DataLimit returns the first address past the valid data region: DataEnd
// when recorded, otherwise the highest initialized segment end.
func (p *Program) DataLimit() uint64 {
	limit := p.DataEnd
	for _, seg := range p.Data {
		if end := seg.Base + uint64(len(seg.Bytes)); end > limit {
			limit = end
		}
	}
	return limit
}

// PosAt returns the recorded source position for the code word at addr.
func (p *Program) PosAt(addr uint64) (SrcPos, bool) {
	if p.Lines == nil || addr < p.CodeBase || addr%4 != 0 {
		return SrcPos{}, false
	}
	i := (addr - p.CodeBase) / 4
	if i >= uint64(len(p.Lines)) {
		return SrcPos{}, false
	}
	return p.Lines[i], true
}

// SHA256 returns the hex digest of the canonical image serialization:
// schema tag, entry, code base, code words, and each data segment's base,
// length, and bytes, all little-endian. Symbols are excluded — they do not
// affect execution, so two images that run identically hash identically.
// The digest is the content-addressed identity used by program-job cache
// keys; changing the serialization is a cache-key schema change.
func (p *Program) SHA256() string {
	h := sha256.New()
	h.Write([]byte("prisim-image-v1\n"))
	var w [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		h.Write(w[:])
	}
	word(p.Entry)
	word(p.CodeBase)
	word(uint64(len(p.Code)))
	var iw [4]byte
	for _, c := range p.Code {
		binary.LittleEndian.PutUint32(iw[:], c)
		h.Write(iw[:])
	}
	word(uint64(len(p.Data)))
	for _, seg := range p.Data {
		word(seg.Base)
		word(uint64(len(seg.Bytes)))
		h.Write(seg.Bytes)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// InstAt decodes the instruction at addr, if addr lies in the code segment.
func (p *Program) InstAt(addr uint64) (isa.Inst, bool) {
	if addr < p.CodeBase || addr >= p.CodeEnd() || addr%4 != 0 {
		return isa.Inst{}, false
	}
	return isa.Decode(p.Code[(addr-p.CodeBase)/4]), true
}

// Disassemble renders the whole code segment, one instruction per line,
// annotated with addresses and any symbols that point at them.
func (p *Program) Disassemble() string {
	bySym := make(map[uint64][]string)
	for name, addr := range p.Symbols {
		bySym[addr] = append(bySym[addr], name)
	}
	for _, names := range bySym {
		sort.Strings(names)
	}
	out := make([]byte, 0, 32*len(p.Code))
	for i, w := range p.Code {
		addr := p.CodeBase + 4*uint64(i)
		for _, name := range bySym[addr] {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("  %08x:  %s\n", addr, isa.Decode(w))...)
	}
	return string(out)
}
