package asm_test

// This file pins old-vs-new assembler equivalence. oldAssemble is a
// faithful port of the pre-lexer/parser line-splitting frontend (the
// ~457-line text.go deleted when internal/asm/lexer and internal/asm/parser
// replaced it), rebuilt on the Builder's exported API so it can live in an
// external test package. Every workload kernel is textified into assembly
// the old syntax accepts and both frontends must produce byte-identical
// images — and match the original Builder output. The example programs in
// testdata/ are real old-syntax sources and get the same treatment.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/isa"
	"prisim/internal/workloads"
)

type oldAsm struct {
	b       *asm.Builder
	labels  map[string]bool
	symbols map[string]uint64
}

// oldAssemble is the old frontend: first sweep handles sections, labels,
// and data; the second assembles queued code lines.
func oldAssemble(src string) (p *asm.Program, err error) {
	defer func() {
		// The Builder panics on misuse the old Assemble pre-checked; any
		// escape becomes an error so the equivalence harness sees parity.
		if r := recover(); r != nil {
			p, err = nil, fmt.Errorf("asm: %v", r)
		}
	}()
	a := &oldAsm{b: asm.NewBuilder(), labels: make(map[string]bool), symbols: make(map[string]uint64)}
	type codeLine struct {
		no   int
		text string
	}
	var code []codeLine
	inData := false

	lines := strings.Split(src, "\n")
	var dataLabels []string
	for no, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case line == ".data":
			inData = true
			continue
		case line == ".text":
			inData = false
			continue
		}
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,()") {
				break
			}
			label := line[:i]
			line = strings.TrimSpace(line[i+1:])
			if inData {
				dataLabels = append(dataLabels, label)
			} else {
				code = append(code, codeLine{no + 1, label + ":"})
			}
		}
		if line == "" {
			continue
		}
		if inData {
			if err := a.assembleData(line, dataLabels, no+1); err != nil {
				return nil, err
			}
			dataLabels = nil
		} else {
			code = append(code, codeLine{no + 1, line})
		}
	}
	if len(dataLabels) > 0 {
		return nil, fmt.Errorf("asm: data label %q has no directive", dataLabels[0])
	}

	for _, cl := range code {
		if strings.HasSuffix(cl.text, ":") {
			label := strings.TrimSuffix(cl.text, ":")
			if a.labels[label] {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", cl.no, label)
			}
			a.labels[label] = true
			a.b.Label(label)
			continue
		}
		if err := a.assembleInst(cl.text); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", cl.no, err)
		}
	}
	return a.b.Finish()
}

func (a *oldAsm) define(name string, addr uint64) {
	if name != "" {
		a.symbols[name] = addr
	}
}

func (a *oldAsm) assembleData(line string, labels []string, no int) error {
	fields := strings.SplitN(line, " ", 2)
	directive := fields[0]
	rest := ""
	if len(fields) > 1 {
		rest = strings.TrimSpace(fields[1])
	}
	name := ""
	if len(labels) > 0 {
		name = labels[0]
	}
	defineAll := func(addr uint64) {
		for _, l := range labels {
			a.define(l, addr)
		}
	}
	switch directive {
	case ".word":
		vals, err := parseInts(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: %w", no, err)
		}
		words := make([]uint64, len(vals))
		for i, v := range vals {
			words[i] = uint64(v)
		}
		defineAll(a.b.Words(name, words))
	case ".byte":
		vals, err := parseInts(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: %w", no, err)
		}
		bytes := make([]byte, len(vals))
		for i, v := range vals {
			bytes[i] = byte(v)
		}
		defineAll(a.b.Bytes(name, bytes))
	case ".float":
		var vals []float64
		for _, f := range splitOperands(rest) {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("asm: line %d: bad float %q", no, f)
			}
			vals = append(vals, v)
		}
		defineAll(a.b.Floats(name, vals))
	case ".space":
		n, err := strconv.ParseUint(rest, 0, 64)
		if err != nil {
			return fmt.Errorf("asm: line %d: bad .space size %q", no, rest)
		}
		defineAll(a.b.Space(name, n))
	case ".ascii":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return fmt.Errorf("asm: line %d: bad .ascii string", no)
		}
		defineAll(a.b.Bytes(name, []byte(s)))
	default:
		return fmt.Errorf("asm: line %d: unknown directive %q", no, directive)
	}
	return nil
}

func parseInts(s string) ([]int64, error) {
	var out []int64
	for _, f := range splitOperands(s) {
		v, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(f, 0, 64)
			if uerr != nil {
				return nil, fmt.Errorf("bad integer %q", f)
			}
			v = int64(u)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitOperands(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func (a *oldAsm) assembleInst(line string) error {
	b := a.b
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(strings.TrimSpace(rest))

	reg := func(i int) (isa.Reg, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		return isa.ParseReg(ops[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(ops) {
			return 0, fmt.Errorf("%s: missing operand %d", mnemonic, i+1)
		}
		v, err := strconv.ParseInt(ops[i], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("%s: bad immediate %q", mnemonic, ops[i])
		}
		return v, nil
	}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s: want %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}

	switch mnemonic {
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.Li(rd, v)
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		addr, ok := a.symbols[ops[1]]
		if !ok {
			return fmt.Errorf("la: undefined data symbol %q", ops[1])
		}
		b.Li(rd, int64(addr))
		return nil
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		if rd.IsFP() || ra.IsFP() {
			b.R1(isa.OpFMOV, rd, ra)
		} else {
			b.Mov(rd, ra)
		}
		return nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		ra, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.OpBEQ
		if mnemonic == "bnez" {
			op = isa.OpBNE
		}
		b.Br(op, ra, isa.RZero, ops[1])
		return nil
	case "ret":
		b.Ret()
		return nil
	}

	op, ok := isa.OpByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	switch op.Format() {
	case isa.FmtR:
		switch op {
		case isa.OpNOP, isa.OpHALT:
			b.Emit(isa.Inst{Op: op})
		case isa.OpPUTC, isa.OpJR:
			ra, err := reg(0)
			if err != nil {
				return err
			}
			b.Emit(isa.Inst{Op: op, Ra: ra})
		case isa.OpJALR:
			switch len(ops) {
			case 1:
				ra, err := reg(0)
				if err != nil {
					return err
				}
				b.Emit(isa.Inst{Op: op, Rd: isa.RLR, Ra: ra})
			case 2:
				rd, err := reg(0)
				if err != nil {
					return err
				}
				ra, err := reg(1)
				if err != nil {
					return err
				}
				b.Emit(isa.Inst{Op: op, Rd: rd, Ra: ra})
			default:
				return fmt.Errorf("jalr: want 1 or 2 operands")
			}
		case isa.OpFSQRT, isa.OpFMOV, isa.OpFNEG, isa.OpFABS, isa.OpCVTIF, isa.OpCVTFI:
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			ra, err := reg(1)
			if err != nil {
				return err
			}
			b.R1(op, rd, ra)
		default:
			if err := need(3); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			ra, err := reg(1)
			if err != nil {
				return err
			}
			rb, err := reg(2)
			if err != nil {
				return err
			}
			b.RR(op, rd, ra, rb)
		}
	case isa.FmtI:
		if op == isa.OpLUI {
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			v, err := imm(1)
			if err != nil {
				return err
			}
			b.RI(op, rd, isa.RZero, v)
			return nil
		}
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		ra, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		b.RI(op, rd, ra, v)
	case isa.FmtLS:
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		off, base, err := parseMemOperand(ops[1])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Ra: base, Imm: off})
	case isa.FmtB:
		if err := need(3); err != nil {
			return err
		}
		ra, err := reg(0)
		if err != nil {
			return err
		}
		rb, err := reg(1)
		if err != nil {
			return err
		}
		b.Br(op, ra, rb, ops[2])
	case isa.FmtJ:
		if err := need(1); err != nil {
			return err
		}
		if op == isa.OpJ {
			b.Jmp(ops[0])
		} else {
			b.Call(ops[0])
		}
	}
	return nil
}

func parseMemOperand(s string) (int64, isa.Reg, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int64(0)
	if open > 0 {
		v, err := strconv.ParseInt(s[:open], 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
		off = v
	}
	base, err := isa.ParseReg(s[open+1 : len(s)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

// --- textifier: Program -> old-syntax source ---

// textify renders a Builder-produced program as assembly text both
// frontends accept: concrete instructions (li/la already expanded), data as
// .byte runs with .space padding between segments, and synthesized labels
// at every branch/jump target.
func textify(t *testing.T, p *asm.Program) string {
	t.Helper()
	var sb strings.Builder

	if len(p.Data) > 0 {
		sb.WriteString(".data\n")
		cur := uint64(asm.DefaultDataBase)
		for _, seg := range p.Data {
			aligned := (cur + 7) &^ 7
			if seg.Base < aligned {
				t.Fatalf("data segment at %#x overlaps cursor %#x", seg.Base, aligned)
			}
			if pad := seg.Base - aligned; pad > 0 {
				fmt.Fprintf(&sb, ".space %d\n", pad)
			}
			// Bulk as .word (8 LE bytes per operand), tail as .byte. Every
			// line consumes a multiple of 8 bytes, so the align-8 both
			// frontends apply before each directive never shifts layout.
			body := seg.Bytes
			off := 0
			for ; off+64 <= len(body); off += 64 {
				parts := make([]string, 8)
				for i := range parts {
					parts[i] = strconv.FormatUint(binary.LittleEndian.Uint64(body[off+8*i:]), 10)
				}
				fmt.Fprintf(&sb, ".word %s\n", strings.Join(parts, ", "))
			}
			for ; off+8 <= len(body); off += 8 {
				fmt.Fprintf(&sb, ".word %d\n", binary.LittleEndian.Uint64(body[off:]))
			}
			if off < len(body) {
				parts := make([]string, 0, 8)
				for _, bv := range body[off:] {
					parts = append(parts, strconv.Itoa(int(bv)))
				}
				fmt.Fprintf(&sb, ".byte %s\n", strings.Join(parts, ", "))
			}
			cur = seg.Base + uint64(len(seg.Bytes))
		}
	}

	sb.WriteString(".text\n")
	labeled := make([]bool, len(p.Code)+1)
	insts := make([]isa.Inst, len(p.Code))
	targetIdx := func(i int, in isa.Inst) int {
		pc := p.CodeBase + 4*uint64(i)
		target := in.BranchTarget(pc)
		if target < p.CodeBase || target > p.CodeEnd() || target%4 != 0 {
			t.Fatalf("inst %d (%s): target %#x outside code", i, in, target)
		}
		return int((target - p.CodeBase) / 4)
	}
	for i, w := range p.Code {
		in := isa.Decode(w)
		if in.Op == isa.OpInvalid {
			t.Fatalf("inst %d does not decode", i)
		}
		insts[i] = in
		if f := in.Op.Format(); f == isa.FmtB || f == isa.FmtJ {
			labeled[targetIdx(i, in)] = true
		}
	}
	entryIdx := int((p.Entry - p.CodeBase) / 4)
	for i, in := range insts {
		if i == entryIdx {
			sb.WriteString("main:\n")
		}
		if labeled[i] {
			fmt.Fprintf(&sb, "L%d:\n", i)
		}
		switch in.Op.Format() {
		case isa.FmtB:
			fmt.Fprintf(&sb, "  %s %s, %s, L%d\n", in.Op, in.Ra, in.Rb, targetIdx(i, in))
		case isa.FmtJ:
			fmt.Fprintf(&sb, "  %s L%d\n", in.Op, targetIdx(i, in))
		default:
			fmt.Fprintf(&sb, "  %s\n", in)
		}
	}
	if labeled[len(insts)] {
		fmt.Fprintf(&sb, "L%d:\n", len(insts))
	}
	return sb.String()
}

// mergedSegments normalizes a data image into maximal contiguous runs so
// programs that chunk the same bytes differently still compare equal.
func mergedSegments(p *asm.Program) []asm.Segment {
	var out []asm.Segment
	for _, seg := range p.Data {
		if len(seg.Bytes) == 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Base+uint64(len(out[n-1].Bytes)) == seg.Base {
			out[n-1].Bytes = append(out[n-1].Bytes, seg.Bytes...)
			continue
		}
		// Copy so amortized append growth never aliases the input image.
		out = append(out, asm.Segment{Base: seg.Base, Bytes: append([]byte(nil), seg.Bytes...)})
	}
	return out
}

func sameProgram(t *testing.T, what string, a, b *asm.Program) {
	t.Helper()
	if a.Entry != b.Entry {
		t.Errorf("%s: entry %#x != %#x", what, a.Entry, b.Entry)
	}
	if a.CodeBase != b.CodeBase {
		t.Errorf("%s: code base %#x != %#x", what, a.CodeBase, b.CodeBase)
	}
	if len(a.Code) != len(b.Code) {
		t.Fatalf("%s: code length %d != %d", what, len(a.Code), len(b.Code))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("%s: code[%d] %08x (%s) != %08x (%s)",
				what, i, a.Code[i], isa.Decode(a.Code[i]), b.Code[i], isa.Decode(b.Code[i]))
		}
	}
	sa, sb := mergedSegments(a), mergedSegments(b)
	if len(sa) != len(sb) {
		t.Fatalf("%s: %d data runs != %d", what, len(sa), len(sb))
	}
	for i := range sa {
		if sa[i].Base != sb[i].Base || string(sa[i].Bytes) != string(sb[i].Bytes) {
			t.Fatalf("%s: data run %d differs (%#x+%d vs %#x+%d)",
				what, i, sa[i].Base, len(sa[i].Bytes), sb[i].Base, len(sb[i].Bytes))
		}
	}
}

// TestOldNewEquivalenceWorkloads textifies all 27 workload kernels and
// checks old frontend, new frontend, and the original Builder image agree
// bit for bit.
func TestOldNewEquivalenceWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			orig := w.Build(0)
			src := textify(t, orig)
			oldP, err := oldAssemble(src)
			if err != nil {
				t.Fatalf("old frontend: %v", err)
			}
			newP, err := asm.Assemble(src)
			if err != nil {
				t.Fatalf("new frontend: %v", err)
			}
			sameProgram(t, "old vs new", oldP, newP)
			sameProgram(t, "new vs builder", newP, orig)
		})
	}
}

// TestOldNewEquivalenceExamples runs both frontends over the real example
// sources (old syntax: la/li, interleaved labels, comments).
func TestOldNewEquivalenceExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.s"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata sources (err=%v)", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			oldP, err := oldAssemble(string(src))
			if err != nil {
				t.Fatalf("old frontend: %v", err)
			}
			newP, err := asm.Assemble(string(src))
			if err != nil {
				t.Fatalf("new frontend: %v", err)
			}
			sameProgram(t, "old vs new", oldP, newP)
			if len(newP.Code) == 0 {
				t.Fatal("no code")
			}
		})
	}
}

// TestImageSHA256 pins the properties the program cache key relies on:
// stable across assemblies, insensitive to symbol names, sensitive to any
// code or data change.
func TestImageSHA256(t *testing.T) {
	src := ".data\nv: .word 7\n.text\nmain: la r1, v\nldq r2, 0(r1)\nhalt\n"
	p1, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := asm.Assemble(strings.ReplaceAll(src, "v", "renamed"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.SHA256() != p2.SHA256() {
		t.Error("hash depends on symbol names")
	}
	p3, err := asm.Assemble(strings.ReplaceAll(src, ".word 7", ".word 8"))
	if err != nil {
		t.Fatal(err)
	}
	if p1.SHA256() == p3.SHA256() {
		t.Error("hash insensitive to data change")
	}
	if len(p1.SHA256()) != 64 {
		t.Errorf("hash %q is not hex sha256", p1.SHA256())
	}
}
