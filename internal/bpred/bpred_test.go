package bpred

import (
	"testing"

	"prisim/internal/isa"
)

func branchAt(pc uint64) isa.Inst {
	return isa.Inst{Op: isa.OpBNE, Ra: isa.IntReg(1), Rb: isa.RZero, Imm: -4}
}

func TestAlwaysTakenBranchConverges(t *testing.T) {
	p := New(Default())
	in := branchAt(0x1000)
	miss := 0
	for i := 0; i < 100; i++ {
		pred := p.Predict(0x1000, in)
		if !pred.Taken {
			miss++
		}
		p.Update(0x1000, in, pred, true, in.BranchTarget(0x1000))
	}
	if miss > 2 {
		t.Errorf("always-taken branch mispredicted %d/100 times", miss)
	}
}

func TestAlternatingBranchGshareLearns(t *testing.T) {
	// A strictly alternating branch is perfectly predictable with history.
	p := New(Default())
	in := branchAt(0x2000)
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		pred := p.Predict(0x2000, in)
		if pred.Taken != taken {
			miss++
			p.Recover(0x2000, in, pred, taken)
		}
		p.Update(0x2000, in, pred, taken, in.BranchTarget(0x2000))
	}
	// The last 200 iterations should be nearly perfect.
	if miss > 60 {
		t.Errorf("alternating branch mispredicted %d/400 times", miss)
	}
}

func TestPredictionTargetForDirectBranch(t *testing.T) {
	p := New(Default())
	in := branchAt(0x3000)
	// Train taken.
	for i := 0; i < 8; i++ {
		pred := p.Predict(0x3000, in)
		p.Update(0x3000, in, pred, true, in.BranchTarget(0x3000))
	}
	pred := p.Predict(0x3000, in)
	if !pred.Taken || pred.Target != in.BranchTarget(0x3000) {
		t.Errorf("pred = %+v", pred)
	}
}

func TestRASCallReturn(t *testing.T) {
	p := New(Default())
	call := isa.Inst{Op: isa.OpJAL, Imm: 0x100}
	ret := isa.Inst{Op: isa.OpJR, Ra: isa.RLR}

	p.Predict(0x1000, call) // pushes 0x1004
	p.Predict(0x2000, call) // pushes 0x2004
	pr := p.Predict(0x3000, ret)
	if !pr.UsedRAS || pr.Target != 0x2004 {
		t.Errorf("first return predicted %#x, want 0x2004", pr.Target)
	}
	pr = p.Predict(0x3010, ret)
	if pr.Target != 0x1004 {
		t.Errorf("second return predicted %#x, want 0x1004", pr.Target)
	}
}

func TestRASRecovery(t *testing.T) {
	p := New(Default())
	call := isa.Inst{Op: isa.OpJAL, Imm: 0x100}
	ret := isa.Inst{Op: isa.OpJR, Ra: isa.RLR}
	br := branchAt(0x1100)

	p.Predict(0x1000, call) // RAS: [0x1004]
	pred := p.Predict(0x1100, br)
	// Wrong path executes a call and a return, perturbing the RAS.
	p.Predict(0x5000, call)
	p.Predict(0x6000, ret)
	p.Predict(0x6100, ret)
	// Squash back to the branch.
	p.Recover(0x1100, br, pred, !pred.Taken)
	got := p.Predict(0x1200, ret)
	if got.Target != 0x1004 {
		t.Errorf("post-recovery return predicted %#x, want 0x1004", got.Target)
	}
}

func TestBTBIndirectJumps(t *testing.T) {
	p := New(Default())
	jr := isa.Inst{Op: isa.OpJR, Ra: isa.IntReg(5)} // indirect, not a return
	pred := p.Predict(0x4000, jr)
	if pred.Target != 0x4004 {
		t.Errorf("cold BTB predicted %#x, want fallthrough", pred.Target)
	}
	p.Update(0x4000, jr, pred, true, 0x9000)
	pred = p.Predict(0x4000, jr)
	if pred.Target != 0x9000 {
		t.Errorf("trained BTB predicted %#x, want 0x9000", pred.Target)
	}
}

func TestBTBEvictionLRU(t *testing.T) {
	cfg := Default()
	cfg.BTBSets = 1
	cfg.BTBWays = 2
	p := New(cfg)
	jr := isa.Inst{Op: isa.OpJR, Ra: isa.IntReg(5)}
	// Three different PCs map to the single set; LRU keeps the two hottest.
	for i, pc := range []uint64{0x1000, 0x2000, 0x1000, 0x3000} {
		pred := p.Predict(pc, jr)
		p.Update(pc, jr, pred, true, 0x100*uint64(i+1))
	}
	// 0x2000 should be the evicted one.
	if got := p.Predict(0x2000, jr); got.Target != 0x2004 {
		t.Errorf("evicted entry still predicts %#x", got.Target)
	}
}

func TestUpdateTrainsSelector(t *testing.T) {
	p := New(Default())
	in := branchAt(0x7000)
	// Alternating outcome: gshare wins, selector should migrate to it.
	before := p.selector[p.selectorIdx(0x7000)]
	for i := 0; i < 200; i++ {
		taken := i%2 == 0
		pred := p.Predict(0x7000, in)
		if pred.Taken != taken {
			p.Recover(0x7000, in, pred, taken)
		}
		p.Update(0x7000, in, pred, taken, in.BranchTarget(0x7000))
	}
	after := p.selector[p.selectorIdx(0x7000)]
	if after < before {
		t.Errorf("selector moved away from gshare: %d -> %d", before, after)
	}
}

func TestStatsCounters(t *testing.T) {
	p := New(Default())
	in := branchAt(0x100)
	pred := p.Predict(0x100, in)
	p.Update(0x100, in, pred, !pred.Taken, in.BranchTarget(0x100))
	if p.Lookups != 1 || p.DirMiss != 1 {
		t.Errorf("lookups=%d dirmiss=%d", p.Lookups, p.DirMiss)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size did not panic")
		}
	}()
	cfg := Default()
	cfg.BimodalEntries = 1000
	New(cfg)
}

func TestPredictorDeterminism(t *testing.T) {
	run := func() uint64 {
		p := New(Default())
		in := branchAt(0x100)
		var hist uint64
		for i := 0; i < 500; i++ {
			taken := (i*7)%3 == 0
			pred := p.Predict(0x100+uint64(i%16)*4, in)
			if pred.Taken {
				hist = hist*31 + 1
			}
			if pred.Taken != taken {
				p.Recover(0x100+uint64(i%16)*4, in, pred, taken)
			}
			p.Update(0x100+uint64(i%16)*4, in, pred, taken, in.BranchTarget(0x100))
		}
		return hist
	}
	if run() != run() {
		t.Error("predictor nondeterministic")
	}
}

func TestRASWrapAround(t *testing.T) {
	cfg := Default()
	cfg.RASEntries = 4
	p := New(cfg)
	call := isa.Inst{Op: isa.OpJAL, Imm: 0x40}
	ret := isa.Inst{Op: isa.OpJR, Ra: isa.RLR}
	// Six calls overflow a 4-entry stack; the four most recent survive.
	for i := 0; i < 6; i++ {
		p.Predict(uint64(0x1000+0x100*i), call)
	}
	for i := 5; i >= 2; i-- {
		pr := p.Predict(0x9000, ret)
		want := uint64(0x1000 + 0x100*i + 4)
		if pr.Target != want {
			t.Fatalf("return %d predicted %#x, want %#x", 5-i, pr.Target, want)
		}
	}
}

func TestZeroSizedRAS(t *testing.T) {
	cfg := Default()
	cfg.RASEntries = 0
	p := New(cfg)
	ret := isa.Inst{Op: isa.OpJR, Ra: isa.RLR}
	pr := p.Predict(0x100, ret)
	if pr.Target != 0 {
		t.Errorf("no-RAS return predicted %#x", pr.Target)
	}
	// Recovery with no RAS must not panic.
	p.Recover(0x100, ret, pr, true)
}
