package bpred

import (
	"reflect"
	"testing"

	"prisim/internal/isa"
)

// TestPredictorCloneCompleteness pins the exact field set Predictor.Clone
// handles, so new state can't silently diverge between a clone and its
// source.
func TestPredictorCloneCompleteness(t *testing.T) {
	handled := []string{
		// cfg and scalar state copy by value via *p.
		"cfg", "history", "rasTop", "lruClock",
		// deep-copied tables.
		"bimodal", "gshare", "selector", "ras", "btb",
		// statistics, copied by value.
		"Lookups", "DirMiss", "TargetMiss", "RASPops", "RASMiss", "BTBHits", "BTBMisses",
	}
	typ := reflect.TypeOf(Predictor{})
	got := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		got[typ.Field(i).Name] = true
	}
	for _, f := range handled {
		if !got[f] {
			t.Errorf("bpred.Predictor: handled field %q no longer exists; update Clone and this list", f)
		}
		delete(got, f)
	}
	for f := range got {
		t.Errorf("bpred.Predictor: new field %q is not handled by Clone — update Clone, then add it here", f)
	}
}

// trainStream drives n pseudo-branches through the predictor so its tables,
// history, RAS, and BTB all pick up state.
func trainStream(p *Predictor, seed uint64, n int) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		pc := (x % 512) * 4
		br := isa.Inst{Op: isa.OpBNE, Imm: int64(4 * (1 + x%16))}
		pred := p.Predict(pc, br)
		taken := x&3 != 0
		if taken != pred.Taken {
			p.Recover(pc, br, pred, taken)
		}
		p.Update(pc, br, pred, taken, br.BranchTarget(pc))
		if i%7 == 0 {
			jr := isa.Inst{Op: isa.OpJALR, Rd: isa.RLR}
			jp := p.Predict(pc+4, jr)
			p.Update(pc+4, jr, jp, true, (x%1024)*4)
		}
	}
}

// fingerprint collapses all predictor state into a comparable value.
func fingerprint(p *Predictor) [7]uint64 {
	var sum [7]uint64
	for _, c := range p.bimodal {
		sum[0] = sum[0]*31 + uint64(c)
	}
	for _, c := range p.gshare {
		sum[1] = sum[1]*31 + uint64(c)
	}
	for _, c := range p.selector {
		sum[2] = sum[2]*31 + uint64(c)
	}
	for _, a := range p.ras {
		sum[3] = sum[3]*31 + a
	}
	for _, e := range p.btb {
		v := e.tag*3 + e.target*5 + e.lru*7
		if e.valid {
			v++
		}
		sum[4] = sum[4]*31 + v
	}
	sum[5] = p.history<<32 | uint64(uint32(p.rasTop))
	sum[6] = p.lruClock*31 + p.Lookups*7 + p.DirMiss*5 + p.BTBHits*3 + p.BTBMisses
	return sum
}

// TestCloneMatchesAndDiverges checks that a clone starts identical to its
// source, that training the clone doesn't leak into the source, and that the
// clone behaves exactly like a predictor that was warmed directly.
func TestCloneMatchesAndDiverges(t *testing.T) {
	warm := New(Default())
	trainStream(warm, 1, 500)

	ref := New(Default())
	trainStream(ref, 1, 500)

	c := warm.Clone()
	if fingerprint(c) != fingerprint(warm) {
		t.Fatal("clone state differs from source immediately after Clone")
	}

	before := fingerprint(warm)
	trainStream(c, 2, 300)
	if fingerprint(warm) != before {
		t.Fatal("training the clone mutated the source predictor")
	}

	// Clone-then-train must equal warm-then-train: continue the reference
	// with the same stream and compare.
	trainStream(ref, 2, 300)
	if fingerprint(c) != fingerprint(ref) {
		t.Fatal("clone trained differently from an equivalently warmed predictor")
	}
}
