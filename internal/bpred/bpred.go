// Package bpred implements the branch prediction hardware from the paper's
// Table 1: a combined predictor (4k-entry bimodal and 4k-entry gshare with a
// 4k-entry selector), a 16-entry return address stack, and a 1k-entry 4-way
// branch target buffer.
//
// Prediction state is deterministic: it is a pure function of the update
// stream, with no wall-clock, global randomness, or map-order dependence.
//
//prisim:deterministic
package bpred

import "prisim/internal/isa"

// Config sizes the predictor structures. The zero value is not useful; use
// Default for the paper's configuration.
type Config struct {
	BimodalEntries  int // direction predictor, PC-indexed
	GshareEntries   int // direction predictor, history-XOR-PC indexed
	SelectorEntries int // chooser between bimodal and gshare
	HistoryBits     int // global history length for gshare
	RASEntries      int
	BTBSets         int
	BTBWays         int
}

// Default is the paper's Table 1 predictor configuration.
func Default() Config {
	return Config{
		BimodalEntries:  4096,
		GshareEntries:   4096,
		SelectorEntries: 4096,
		HistoryBits:     12,
		RASEntries:      16,
		BTBSets:         256, // 1k entries, 4-way
		BTBWays:         4,
	}
}

// Prediction is the front end's view of one control instruction.
type Prediction struct {
	Taken   bool
	Target  uint64 // valid when Taken
	UsedRAS bool
	// Internal state snapshotted for checkpoint/recovery and update.
	history uint64
	rasTop  int
	rasTOS  uint64
}

type btbEntry struct {
	valid  bool
	tag    uint64
	target uint64
	lru    uint64
}

// Predictor is the complete front-end prediction unit. It is not safe for
// concurrent use; the pipeline owns one.
type Predictor struct {
	cfg      Config
	bimodal  []uint8 // 2-bit counters
	gshare   []uint8
	selector []uint8 // 2-bit: >=2 selects gshare
	history  uint64
	ras      []uint64
	rasTop   int // index of next push slot
	btb      []btbEntry
	lruClock uint64

	// Statistics.
	Lookups    uint64
	DirMiss    uint64
	TargetMiss uint64
	RASPops    uint64
	RASMiss    uint64
	BTBHits    uint64
	BTBMisses  uint64
}

// New builds a predictor. All table sizes must be powers of two.
func New(cfg Config) *Predictor {
	for _, n := range []int{cfg.BimodalEntries, cfg.GshareEntries, cfg.SelectorEntries, cfg.BTBSets} {
		if n <= 0 || n&(n-1) != 0 {
			panic("bpred: table sizes must be powers of two")
		}
	}
	p := &Predictor{
		cfg:      cfg,
		bimodal:  make([]uint8, cfg.BimodalEntries),
		gshare:   make([]uint8, cfg.GshareEntries),
		selector: make([]uint8, cfg.SelectorEntries),
		ras:      make([]uint64, cfg.RASEntries),
		btb:      make([]btbEntry, cfg.BTBSets*cfg.BTBWays),
	}
	// Weakly taken initial counters converge faster on loop code.
	for i := range p.bimodal {
		p.bimodal[i] = 2
	}
	for i := range p.gshare {
		p.gshare[i] = 2
	}
	for i := range p.selector {
		p.selector[i] = 1 // weakly prefer bimodal
	}
	return p
}

// Clone returns an independent deep copy of the predictor: warm tables,
// history, RAS, BTB, and statistics. The clone and the receiver train
// separately from the copy point on. Clone never mutates the receiver, so
// concurrent clones of one warm predictor are safe provided nothing is
// predicting on it.
//
// Every Predictor field must be handled here; TestPredictorCloneCompleteness
// fails when the struct gains a field Clone does not copy.
func (p *Predictor) Clone() *Predictor {
	c := *p
	c.bimodal = append([]uint8(nil), p.bimodal...)
	c.gshare = append([]uint8(nil), p.gshare...)
	c.selector = append([]uint8(nil), p.selector...)
	c.ras = append([]uint64(nil), p.ras...)
	c.btb = append([]btbEntry(nil), p.btb...)
	return &c
}

// FootprintBytes approximates the resident bytes of the predictor's tables.
func (p *Predictor) FootprintBytes() uint64 {
	return uint64(len(p.bimodal)) + uint64(len(p.gshare)) + uint64(len(p.selector)) +
		uint64(len(p.ras))*8 + uint64(len(p.btb))*32
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.BimodalEntries-1))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	return int(((pc >> 2) ^ p.history) & uint64(p.cfg.GshareEntries-1))
}

func (p *Predictor) selectorIdx(pc uint64) int {
	return int((pc >> 2) & uint64(p.cfg.SelectorEntries-1))
}

// Predict produces a prediction for the control instruction in at pc and
// speculatively updates front-end state (global history, RAS) exactly as the
// hardware would at fetch. The returned Prediction must be handed back to
// either Update (on resolution) or Recover (on squash).
func (p *Predictor) Predict(pc uint64, in isa.Inst) Prediction {
	p.Lookups++
	pred := Prediction{history: p.history, rasTop: p.rasTop}
	if p.cfg.RASEntries > 0 {
		pred.rasTOS = p.ras[(p.rasTop-1+p.cfg.RASEntries)%p.cfg.RASEntries]
	}

	switch {
	case in.Op.IsBranch():
		dir := p.direction(pc)
		pred.Taken = dir
		if dir {
			pred.Target = in.BranchTarget(pc)
		}
		// Speculative history update (repaired on misprediction).
		p.history = (p.history << 1) & (1<<uint(p.cfg.HistoryBits) - 1)
		if dir {
			p.history |= 1
		}
	case in.IsReturn():
		pred.Taken = true
		pred.UsedRAS = true
		pred.Target = p.pop()
		p.RASPops++
	case in.Op.IsIndirect():
		pred.Taken = true
		pred.Target = p.btbLookup(pc)
	default: // direct jump or call
		pred.Taken = true
		pred.Target = in.BranchTarget(pc)
	}
	if in.Op.IsCall() {
		p.push(pc + 4)
	}
	return pred
}

// direction consults the combined predictor without updating counters.
func (p *Predictor) direction(pc uint64) bool {
	if p.selector[p.selectorIdx(pc)] >= 2 {
		return p.gshare[p.gshareIdx(pc)] >= 2
	}
	return p.bimodal[p.bimodalIdx(pc)] >= 2
}

// Update trains the predictor with the resolved outcome of a control
// instruction previously predicted with pred. For mispredicted branches the
// caller must also call Recover first (restoring history/RAS), then Update.
func (p *Predictor) Update(pc uint64, in isa.Inst, pred Prediction, taken bool, target uint64) {
	if in.Op.IsBranch() {
		// Counters are indexed with the history in effect at prediction.
		savedHist := p.history
		p.history = pred.history
		gIdx, bIdx, sIdx := p.gshareIdx(pc), p.bimodalIdx(pc), p.selectorIdx(pc)
		p.history = savedHist

		gCorrect := (p.gshare[gIdx] >= 2) == taken
		bCorrect := (p.bimodal[bIdx] >= 2) == taken
		p.gshare[gIdx] = bump(p.gshare[gIdx], taken)
		p.bimodal[bIdx] = bump(p.bimodal[bIdx], taken)
		if gCorrect != bCorrect {
			p.selector[sIdx] = bump(p.selector[sIdx], gCorrect)
		}
		if pred.Taken != taken {
			p.DirMiss++
		} else if taken && pred.Target != target {
			p.TargetMiss++
		}
	} else if taken && pred.Target != target {
		p.TargetMiss++
		if pred.UsedRAS {
			p.RASMiss++
		}
	}
	if in.Op.IsIndirect() {
		p.btbInsert(pc, target)
	}
}

// Recover rewinds speculative front-end state (global history and RAS
// position) to the point just *after* the control instruction at pc, with
// its now-known outcome applied. The pipeline calls this when squashing the
// wrong path fetched beyond a mispredicted control instruction.
func (p *Predictor) Recover(pc uint64, in isa.Inst, pred Prediction, taken bool) {
	p.history = pred.history
	if in.Op.IsBranch() {
		p.history = (p.history << 1) & (1<<uint(p.cfg.HistoryBits) - 1)
		if taken {
			p.history |= 1
		}
	}
	// Restore the RAS pointer and the top entry the wrong path may have
	// clobbered, then replay this instruction's own pop/push.
	p.rasTop = pred.rasTop
	if p.cfg.RASEntries > 0 {
		p.ras[(p.rasTop-1+p.cfg.RASEntries)%p.cfg.RASEntries] = pred.rasTOS
	}
	if in.IsReturn() {
		p.pop()
	}
	if in.Op.IsCall() {
		p.push(pc + 4)
	}
}

func (p *Predictor) push(addr uint64) {
	if p.cfg.RASEntries == 0 {
		return
	}
	p.ras[p.rasTop] = addr
	p.rasTop = (p.rasTop + 1) % p.cfg.RASEntries
}

func (p *Predictor) pop() uint64 {
	if p.cfg.RASEntries == 0 {
		return 0
	}
	p.rasTop = (p.rasTop - 1 + p.cfg.RASEntries) % p.cfg.RASEntries
	return p.ras[p.rasTop]
}

func (p *Predictor) btbLookup(pc uint64) uint64 {
	set := int((pc >> 2) & uint64(p.cfg.BTBSets-1))
	tag := pc >> 2 / uint64(p.cfg.BTBSets)
	base := set * p.cfg.BTBWays
	for w := 0; w < p.cfg.BTBWays; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			p.lruClock++
			e.lru = p.lruClock
			p.BTBHits++
			return e.target
		}
	}
	p.BTBMisses++
	return pc + 4 // no target known: fall through (will mispredict)
}

func (p *Predictor) btbInsert(pc, target uint64) {
	set := int((pc >> 2) & uint64(p.cfg.BTBSets-1))
	tag := pc >> 2 / uint64(p.cfg.BTBSets)
	base := set * p.cfg.BTBWays
	victim := base
	for w := 0; w < p.cfg.BTBWays; w++ {
		e := &p.btb[base+w]
		if e.valid && e.tag == tag {
			e.target = target
			p.lruClock++
			e.lru = p.lruClock
			return
		}
		if !e.valid || e.lru < p.btb[victim].lru {
			victim = base + w
		}
	}
	p.lruClock++
	p.btb[victim] = btbEntry{valid: true, tag: tag, target: target, lru: p.lruClock}
}

func bump(c uint8, up bool) uint8 {
	if up {
		if c < 3 {
			return c + 1
		}
		return 3
	}
	if c > 0 {
		return c - 1
	}
	return 0
}
