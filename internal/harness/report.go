package harness

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"prisim/internal/core"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// ShapeCheck is one verifiable claim about the reproduction: a property the
// paper's evaluation exhibits that the regenerated data should too.
type ShapeCheck struct {
	Name string
	Pass bool
	Note string
}

// CheckShapes runs the experiment suite's cheap end of the paper's claims
// against live simulation data and reports which hold. These are the same
// properties EXPERIMENTS.md discusses; the harness makes them executable so
// regressions in the model or workloads surface mechanically.
func (r *Runner) CheckShapes(ctx context.Context) ([]ShapeCheck, error) {
	// The whole matrix the checks consult, submitted up front.
	pols := []core.Policy{core.PolicyBase, core.PolicyER, core.PolicyPRIRcLazy,
		core.PolicyPRIPlusER, core.PolicyInfinite}
	var pts []point
	for _, w := range workloads.All() {
		for _, width := range []int{4, 8} {
			for _, pol := range pols {
				pts = append(pts, point{w, machine(width).WithPolicy(pol)})
			}
		}
		pts = append(pts, point{w, machine(4).WithPRs(40)}, point{w, machine(4).WithPRs(96)})
	}
	for _, w := range suite(workloads.Int) {
		pts = append(pts, point{w, machine(4).WithPolicy(core.PolicyPRIPlusER)})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}

	var checks []ShapeCheck
	add := func(name string, pass bool, note string) {
		checks = append(checks, ShapeCheck{Name: name, Pass: pass, Note: note})
	}
	// Collect per-suite speedup averages for the three headline schemes.
	type avg struct{ er, pri, priER, inf float64 }
	averages := map[string]avg{}
	for _, class := range []workloads.Class{workloads.Int, workloads.FP} {
		for _, width := range []int{4, 8} {
			var a avg
			n := 0
			for _, w := range suite(class) {
				base, err := r.RunCtx(ctx, w, machine(width))
				if err != nil {
					return nil, err
				}
				er, err := r.RunCtx(ctx, w, machine(width).WithPolicy(core.PolicyER))
				if err != nil {
					return nil, err
				}
				pri, err := r.RunCtx(ctx, w, machine(width).WithPolicy(core.PolicyPRIRcLazy))
				if err != nil {
					return nil, err
				}
				priER, err := r.RunCtx(ctx, w, machine(width).WithPolicy(core.PolicyPRIPlusER))
				if err != nil {
					return nil, err
				}
				inf, err := r.RunCtx(ctx, w, machine(width).WithPolicy(core.PolicyInfinite))
				if err != nil {
					return nil, err
				}
				a.er += er.IPC / base.IPC
				a.pri += pri.IPC / base.IPC
				a.priER += priER.IPC / base.IPC
				a.inf += inf.IPC / base.IPC
				n++
			}
			f := float64(n)
			averages[key(class, width)] = avg{a.er / f, a.pri / f, a.priER / f, a.inf / f}
		}
	}

	for _, k := range []string{"int4", "int8", "fp4", "fp8"} {
		a := averages[k]
		add("every scheme gains on average ("+k+")",
			a.er > 1 && a.pri > 1 && a.priER > 1,
			fmt.Sprintf("ER %+.1f%%, PRI %+.1f%%, PRI+ER %+.1f%%",
				100*(a.er-1), 100*(a.pri-1), 100*(a.priER-1)))
		add("infinite registers bound every scheme ("+k+")",
			a.inf >= a.er && a.inf >= a.pri && a.inf >= a.priER,
			fmt.Sprintf("inf %+.1f%%", 100*(a.inf-1)))
		add("PRI+ER beats ER alone ("+k+")", a.priER > a.er,
			fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(a.priER-1), 100*(a.er-1)))
		add("PRI+ER beats PRI alone ("+k+")", a.priER > a.pri,
			fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(a.priER-1), 100*(a.pri-1)))
	}
	add("8-wide PRI gains exceed 4-wide (int)",
		averages["int8"].pri > averages["int4"].pri,
		fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(averages["int8"].pri-1), 100*(averages["int4"].pri-1)))

	// Lifetime phases: phase 3 dominates at baseline; PRI+ER shrinks totals.
	phase3Dominant, lifetimeShrinks := 0, 0
	for _, w := range suite(workloads.Int) {
		base, err := r.RunCtx(ctx, w, machine(4))
		if err != nil {
			return nil, err
		}
		if base.ReadToRelease >= base.AllocToWrite && base.ReadToRelease >= base.WriteToRead {
			phase3Dominant++
		}
		both, err := r.RunCtx(ctx, w, machine(4).WithPolicy(core.PolicyPRIPlusER))
		if err != nil {
			return nil, err
		}
		if both.AllocToWrite+both.WriteToRead+both.ReadToRelease <
			base.AllocToWrite+base.WriteToRead+base.ReadToRelease {
			lifetimeShrinks++
		}
	}
	add("phase 3 (dead time) dominates baseline lifetimes",
		phase3Dominant >= 8, fmt.Sprintf("%d/13 benchmarks", phase3Dominant))
	add("PRI+ER shrinks register lifetime",
		lifetimeShrinks >= 10, fmt.Sprintf("%d/13 benchmarks", lifetimeShrinks))

	// Figure 9 monotonicity at the extremes.
	monotone := 0
	for _, w := range workloads.All() {
		lo, err := r.RunCtx(ctx, w, machine(4).WithPRs(40))
		if err != nil {
			return nil, err
		}
		hi, err := r.RunCtx(ctx, w, machine(4).WithPRs(96))
		if err != nil {
			return nil, err
		}
		if hi.IPC >= lo.IPC {
			monotone++
		}
	}
	add("more registers never hurt (PR=96 vs PR=40)",
		monotone == len(workloads.All()), fmt.Sprintf("%d/%d benchmarks", monotone, len(workloads.All())))

	return checks, nil
}

func key(c workloads.Class, width int) string {
	return c.String() + strconv.Itoa(width)
}

// WriteReport regenerates the full experiment suite and writes a
// self-contained markdown report: every table plus the executable shape
// checklist. It is the machine-written sibling of EXPERIMENTS.md.
func (r *Runner) WriteReport(ctx context.Context, w io.Writer) error {
	fmt.Fprintf(w, "# prisim experiment report\n\n")
	fmt.Fprintf(w, "Budget: %d fast-forward + %d measured instructions per point.\n\n",
		r.Budget.FastForward, r.Budget.Run)

	section := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Fprintf(w, "```\n%s```\n\n", t.String())
		}
	}
	var firstErr error
	get := func(t *stats.Table, err error) *stats.Table {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if t == nil {
			t = &stats.Table{}
		}
		return t
	}
	section(Table1())
	section(get(r.Table2(ctx)))
	section(get(r.Fig1(ctx)))
	a, b, err := r.Fig2(ctx)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if a != nil && b != nil {
		section(a, b)
	}
	section(get(r.Fig8(ctx)))
	section(get(r.Fig9(ctx, 4)), get(r.Fig9(ctx, 8)))
	section(get(r.Fig10(ctx, 4)), get(r.Fig10(ctx, 8)))
	section(get(r.Fig11(ctx, 4)), get(r.Fig11(ctx, 8)))
	section(get(r.Fig12(ctx, 4)), get(r.Fig12(ctx, 8)))
	section(get(r.AblationRenameInline(ctx, 4)), get(r.AblationDisambiguation(ctx, 4)),
		get(r.AblationDelayedAllocation(ctx, 4)), get(r.AblationMSHR(ctx, 4)))
	if firstErr != nil {
		return firstErr
	}

	fmt.Fprintf(w, "## Shape checklist\n\n")
	pass := 0
	checks, err := r.CheckShapes(ctx)
	if err != nil {
		return err
	}
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "ok"
			pass++
		}
		fmt.Fprintf(w, "- [%s] %s — %s\n", mark, c.Name, c.Note)
	}
	fmt.Fprintf(w, "\n%d/%d checks passed.\n", pass, len(checks))
	return nil
}
