package harness

import (
	"fmt"
	"io"
	"strconv"

	"prisim/internal/core"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// ShapeCheck is one verifiable claim about the reproduction: a property the
// paper's evaluation exhibits that the regenerated data should too.
type ShapeCheck struct {
	Name string
	Pass bool
	Note string
}

// CheckShapes runs the experiment suite's cheap end of the paper's claims
// against live simulation data and reports which hold. These are the same
// properties EXPERIMENTS.md discusses; the harness makes them executable so
// regressions in the model or workloads surface mechanically.
func (r *Runner) CheckShapes() []ShapeCheck {
	var checks []ShapeCheck
	add := func(name string, pass bool, note string) {
		checks = append(checks, ShapeCheck{Name: name, Pass: pass, Note: note})
	}

	// Collect per-suite speedup averages for the three headline schemes.
	type avg struct{ er, pri, priER, inf float64 }
	averages := map[string]avg{}
	for _, class := range []workloads.Class{workloads.Int, workloads.FP} {
		for _, width := range []int{4, 8} {
			var a avg
			n := 0
			for _, w := range suite(class) {
				base := r.Run(w, machine(width))
				a.er += r.Run(w, machine(width).WithPolicy(core.PolicyER)).IPC / base.IPC
				a.pri += r.Run(w, machine(width).WithPolicy(core.PolicyPRIRcLazy)).IPC / base.IPC
				a.priER += r.Run(w, machine(width).WithPolicy(core.PolicyPRIPlusER)).IPC / base.IPC
				a.inf += r.Run(w, machine(width).WithPolicy(core.PolicyInfinite)).IPC / base.IPC
				n++
			}
			f := float64(n)
			averages[key(class, width)] = avg{a.er / f, a.pri / f, a.priER / f, a.inf / f}
		}
	}

	for _, k := range []string{"int4", "int8", "fp4", "fp8"} {
		a := averages[k]
		add("every scheme gains on average ("+k+")",
			a.er > 1 && a.pri > 1 && a.priER > 1,
			fmt.Sprintf("ER %+.1f%%, PRI %+.1f%%, PRI+ER %+.1f%%",
				100*(a.er-1), 100*(a.pri-1), 100*(a.priER-1)))
		add("infinite registers bound every scheme ("+k+")",
			a.inf >= a.er && a.inf >= a.pri && a.inf >= a.priER,
			fmt.Sprintf("inf %+.1f%%", 100*(a.inf-1)))
		add("PRI+ER beats ER alone ("+k+")", a.priER > a.er,
			fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(a.priER-1), 100*(a.er-1)))
		add("PRI+ER beats PRI alone ("+k+")", a.priER > a.pri,
			fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(a.priER-1), 100*(a.pri-1)))
	}
	add("8-wide PRI gains exceed 4-wide (int)",
		averages["int8"].pri > averages["int4"].pri,
		fmt.Sprintf("%+.1f%% vs %+.1f%%", 100*(averages["int8"].pri-1), 100*(averages["int4"].pri-1)))

	// Lifetime phases: phase 3 dominates at baseline; PRI+ER shrinks totals.
	phase3Dominant, lifetimeShrinks := 0, 0
	for _, w := range suite(workloads.Int) {
		base := r.Run(w, machine(4))
		if base.ReadToRelease >= base.AllocToWrite && base.ReadToRelease >= base.WriteToRead {
			phase3Dominant++
		}
		both := r.Run(w, machine(4).WithPolicy(core.PolicyPRIPlusER))
		if both.AllocToWrite+both.WriteToRead+both.ReadToRelease <
			base.AllocToWrite+base.WriteToRead+base.ReadToRelease {
			lifetimeShrinks++
		}
	}
	add("phase 3 (dead time) dominates baseline lifetimes",
		phase3Dominant >= 8, fmt.Sprintf("%d/13 benchmarks", phase3Dominant))
	add("PRI+ER shrinks register lifetime",
		lifetimeShrinks >= 10, fmt.Sprintf("%d/13 benchmarks", lifetimeShrinks))

	// Figure 9 monotonicity at the extremes.
	monotone := 0
	for _, w := range workloads.All() {
		lo := r.Run(w, machine(4).WithPRs(40))
		hi := r.Run(w, machine(4).WithPRs(96))
		if hi.IPC >= lo.IPC {
			monotone++
		}
	}
	add("more registers never hurt (PR=96 vs PR=40)",
		monotone == len(workloads.All()), fmt.Sprintf("%d/%d benchmarks", monotone, len(workloads.All())))

	return checks
}

func key(c workloads.Class, width int) string {
	return c.String() + strconv.Itoa(width)
}

// WriteReport regenerates the full experiment suite and writes a
// self-contained markdown report: every table plus the executable shape
// checklist. It is the machine-written sibling of EXPERIMENTS.md.
func (r *Runner) WriteReport(w io.Writer) error {
	fmt.Fprintf(w, "# prisim experiment report\n\n")
	fmt.Fprintf(w, "Budget: %d fast-forward + %d measured instructions per point.\n\n",
		r.Budget.FastForward, r.Budget.Run)

	section := func(tables ...*stats.Table) {
		for _, t := range tables {
			fmt.Fprintf(w, "```\n%s```\n\n", t.String())
		}
	}
	section(Table1())
	section(r.Table2())
	section(r.Fig1())
	a, b := r.Fig2()
	section(a, b)
	section(r.Fig8())
	section(r.Fig9(4), r.Fig9(8))
	section(r.Fig10(4), r.Fig10(8))
	section(r.Fig11(4), r.Fig11(8))
	section(r.Fig12(4), r.Fig12(8))
	section(r.AblationRenameInline(4), r.AblationDisambiguation(4),
		r.AblationDelayedAllocation(4), r.AblationMSHR(4))

	fmt.Fprintf(w, "## Shape checklist\n\n")
	pass := 0
	checks := r.CheckShapes()
	for _, c := range checks {
		mark := "FAIL"
		if c.Pass {
			mark = "ok"
			pass++
		}
		fmt.Fprintf(w, "- [%s] %s — %s\n", mark, c.Name, c.Note)
	}
	fmt.Fprintf(w, "\n%d/%d checks passed.\n", pass, len(checks))
	return nil
}
