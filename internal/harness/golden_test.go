package harness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"prisim/internal/core"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

// Golden determinism fingerprints, captured from the pre-event-wheel kernel
// (PR 2 head). The event wheel, dynInst recycling, the intrusive ready queue,
// and the page-translation cache are pure mechanical optimizations: every
// experiment table and every statistic must stay bit-identical. If a kernel
// change legitimately alters timing semantics, recapture with
//
//	go test ./internal/harness -run TestGolden -v
//
// and say so in the commit message.
const (
	goldenFig8Hash = "9bb0c24a2354f18b25ba333e0a3d5c25b4c50711d63c587300a69ef5b9eba2ff"

	goldenGzipBasePRI = "218670e9df333ee5751bd891caebf85040d8fc5d06bca4bb6c3489748aa234ae"
)

var goldenBudget = Budget{FastForward: 2000, Run: 8000}

// statsFingerprint renders every counter the simulator accumulates — pipeline
// stats, both register classes' lifetime stats, occupancy, and cache/predictor
// rates — into one canonical string.
func statsFingerprint(p *ooo.Pipeline) string {
	st := p.Stats()
	return fmt.Sprintf("stats=%+v\nint=%+v\nfp=%+v\ndl1=%v l2=%v\n",
		*st, *p.Renamer().IntStats(), *p.Renamer().FPStats(),
		p.Mem().DL1.MissRate(), p.Mem().L2.MissRate())
}

func sha(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// TestGoldenFig8Table regenerates the paper's Figure 8 table serially at a
// fixed budget and asserts the rendered output is bit-identical to the
// recorded pre-rewrite kernel.
func TestGoldenFig8Table(t *testing.T) {
	tbl, err := NewParallelRunner(goldenBudget, 1).Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := sha(tbl.String()); got != goldenFig8Hash {
		t.Errorf("fig8 table diverged from golden kernel output:\ngot  %s\nwant %s\ntable:\n%s",
			got, goldenFig8Hash, tbl.String())
	}
}

// TestGoldenFullStats runs one benchmark per machine/policy corner and checks
// the complete Stats structs (not just table-rounded values) bit for bit.
func TestGoldenFullStats(t *testing.T) {
	w, ok := workloads.ByName("gzip")
	if !ok {
		t.Fatal("gzip workload missing")
	}
	var fp string
	for _, cfg := range []ooo.Config{
		ooo.Width4(),
		ooo.Width4().WithPolicy(core.PolicyPRIRcCkpt),
		ooo.Width8().WithPolicy(core.PolicyPRIPlusER),
	} {
		p := ooo.New(cfg, w.Build(0))
		p.FastForward(goldenBudget.FastForward)
		p.Run(goldenBudget.Run)
		fp += cfg.Name + "/" + cfg.Rename.Policy.Name() + "\n" + statsFingerprint(p)
	}
	if got := sha(fp); got != goldenGzipBasePRI {
		t.Errorf("full-stats fingerprint diverged from golden kernel output:\ngot  %s\nwant %s\n%s",
			got, goldenGzipBasePRI, fp)
	}
}
