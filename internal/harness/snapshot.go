package harness

import (
	"context"

	"prisim/internal/bpred"
	"prisim/internal/memsys"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

// Fast-forward snapshot cache. Every point of a sweep replays the same
// functional fast-forward even though that warm-up state is provably
// independent of the rename policy under measurement (ooo.WarmState
// documents why). The Runner therefore fast-forwards each workload once,
// captures the warm machine/predictor/cache state, and constructs every
// later pipeline for that workload from a copy-on-write clone.
//
// Snapshots are keyed by (workload identity, fast-forward budget, memory
// config, predictor config) — everything FastForward's outcome depends on —
// and never by policy, width, or register-file size, so one snapshot serves
// a whole policy/width/PR sweep. The cache is singleflight-guarded: one
// caller builds while concurrent callers for the same key wait, and the
// build holds a worker-pool slot only while it runs (waiters hold nothing,
// so waiting cannot deadlock the pool).

// maxSnapshots bounds resident warm states; least-recently-used completed
// entries are evicted beyond it. An evicted snapshot still referenced by
// in-flight runs stays alive until they finish (it is immutable), so
// SnapshotBytes tracks the cache's view, not total process residency.
const maxSnapshots = 32

// snapKey identifies one warm fast-forward image.
type snapKey struct {
	bench string
	ff    uint64
	mem   memsys.Config
	bp    bpred.Config
}

// snapEntry is one singleflight slot of the snapshot cache: the first
// requester builds, everyone else blocks on done and shares the state.
type snapEntry struct {
	done    chan struct{}
	w       *ooo.WarmState
	err     error
	lastUse uint64 // LRU stamp, valid once done; the runner's shared mu serializes access
}

// snapshotKey derives the cache key for one run: the workload plus every
// configuration axis that influences fast-forward state.
func (r *Runner) snapshotKey(w workloads.Workload, cfg ooo.Config) snapKey {
	return snapKey{bench: w.Name, ff: r.Budget.FastForward, mem: cfg.Mem, bp: cfg.Bpred}
}

// SetSnapshots enables or disables the fast-forward snapshot cache (enabled
// by default). Disabling drops resident snapshots and makes subsequent runs
// replay their fast-forward; results are byte-identical either way.
func (r *Runner) SetSnapshots(enabled bool) {
	r.s.mu.Lock()
	r.s.snapsOff = !enabled
	if !enabled {
		r.s.snaps = make(map[snapKey]*snapEntry)
		r.s.snapBytes = 0
	}
	r.s.mu.Unlock()
}

// warmFor returns the warm fast-forward state for (w, cfg), building it on
// first request and sharing it afterwards. It returns (nil, nil) when
// snapshots are disabled or there is nothing to fast-forward; the caller
// then replays the fast-forward itself.
func (r *Runner) warmFor(ctx context.Context, w workloads.Workload, cfg ooo.Config) (*ooo.WarmState, error) {
	if r.Budget.FastForward == 0 {
		return nil, nil
	}
	key := r.snapshotKey(w, cfg)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.s.mu.Lock()
		if r.s.snapsOff {
			r.s.mu.Unlock()
			return nil, nil
		}
		if e, ok := r.s.snaps[key]; ok {
			select {
			case <-e.done:
				if e.err == nil {
					r.s.snapHits++
					r.s.snapClock++
					e.lastUse = r.s.snapClock
					r.s.mu.Unlock()
					return e.w, nil
				}
				// The building flight failed (cancelled) and evicted itself;
				// retry under our own context.
				r.s.mu.Unlock()
				continue
			default:
			}
			r.s.mu.Unlock()
			select {
			case <-e.done:
				if e.err != nil {
					continue
				}
				r.s.mu.Lock()
				r.s.snapHits++
				r.s.snapClock++
				e.lastUse = r.s.snapClock
				r.s.mu.Unlock()
				return e.w, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		e := &snapEntry{done: make(chan struct{})}
		r.s.snaps[key] = e
		r.s.mu.Unlock()

		e.w, e.err = r.buildSnapshot(ctx, w, cfg)

		r.s.mu.Lock()
		if e.err != nil {
			if r.s.snaps[key] == e {
				delete(r.s.snaps, key)
			}
		} else {
			r.s.snapBuilds++
			// SetSnapshots(false) may have dropped the map entry mid-build;
			// only account entries still resident.
			if r.s.snaps[key] == e {
				r.s.snapClock++
				e.lastUse = r.s.snapClock
				r.s.snapBytes += e.w.Bytes()
				r.evictSnapshotsLocked()
			}
		}
		r.s.mu.Unlock()
		close(e.done)
		return e.w, e.err
	}
}

// buildSnapshot fast-forwards one workload inside a worker-pool slot and
// captures the warm state. The slot is held only for the build; waiters in
// warmFor hold no slot.
func (r *Runner) buildSnapshot(ctx context.Context, w workloads.Workload, cfg ooo.Config) (*ooo.WarmState, error) {
	select {
	case r.s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-r.s.sem }()

	p := ooo.New(cfg, w.Build(0))
	if err := runChunked(ctx, p.FastForward, r.Budget.FastForward); err != nil {
		return nil, err
	}
	return p.CaptureWarm(), nil
}

// evictSnapshotsLocked drops least-recently-used completed snapshots until
// the cache is within maxSnapshots. In-flight builds are never evicted.
//
//prisim:locked
func (r *Runner) evictSnapshotsLocked() {
	for len(r.s.snaps) > maxSnapshots {
		var victimKey snapKey
		var victim *snapEntry
		//lint:ignore determinism LRU selection by minimal lastUse stamp is order-independent: stamps are unique, so the minimum is unique
		for k, e := range r.s.snaps {
			select {
			case <-e.done:
			default:
				continue // still building
			}
			if e.err != nil {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return // everything is in flight; nothing evictable
		}
		r.s.snapBytes -= victim.w.Bytes()
		delete(r.s.snaps, victimKey)
	}
}
