package harness

import (
	"context"
	"fmt"
	"testing"

	"prisim/internal/core"
	"prisim/internal/workloads"
)

// resultFingerprint flattens one Result for bytewise comparison.
func resultFingerprint(r *Result) string { return fmt.Sprintf("%+v", *r) }

// TestSnapshotsByteIdentical runs every policy family over two workloads
// with the snapshot cache on and off and demands identical Results — the
// clone-equals-replay contract at the harness level.
func TestSnapshotsByteIdentical(t *testing.T) {
	pols := []core.Policy{
		core.PolicyBase, core.PolicyER, core.PolicyPRIRcCkpt,
		core.PolicyPRIRcLazy, core.PolicyPRIPlusER,
	}
	ws := []string{"gzip", "mcf"}

	run := func(snapshots bool) map[string]string {
		r := NewParallelRunner(Budget{FastForward: 2000, Run: 8000}, 4)
		r.SetSnapshots(snapshots)
		out := make(map[string]string)
		for _, name := range ws {
			w, ok := workloads.ByName(name)
			if !ok {
				t.Fatalf("workload %s missing", name)
			}
			for _, pol := range pols {
				for _, width := range []int{4, 8} {
					res := r.Run(w, machine(width).WithPolicy(pol))
					out[fmt.Sprintf("%s/w%d/%s", name, width, pol.Name())] = resultFingerprint(res)
				}
			}
		}
		return out
	}

	cold, hot := run(false), run(true)
	for k, c := range cold {
		if hot[k] != c {
			t.Errorf("%s: snapshot run differs from replay run:\ncold: %s\nhot:  %s", k, c, hot[k])
		}
	}
}

// TestSnapshotCounters pins the accounting the benchmark record relies on:
// in a sweep of P points over W workloads, snapshot builds = W and snapshot
// hits = P - W, with or without concurrency.
func TestSnapshotCounters(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			r := NewParallelRunner(Budget{FastForward: 2000, Run: 4000}, workers)
			ws := []string{"gzip", "mcf", "vortex"}
			pols := []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER}

			var pts []point
			for _, name := range ws {
				w, ok := workloads.ByName(name)
				if !ok {
					t.Fatalf("workload %s missing", name)
				}
				for _, pol := range pols {
					for _, width := range []int{4, 8} {
						pts = append(pts, point{w, machine(width).WithPolicy(pol)})
					}
				}
			}
			if err := r.warm(context.Background(), pts); err != nil {
				t.Fatal(err)
			}

			st := r.CacheStats()
			if st.SnapshotBuilds != len(ws) {
				t.Errorf("SnapshotBuilds = %d, want %d (one per workload)", st.SnapshotBuilds, len(ws))
			}
			if want := len(pts) - len(ws); st.SnapshotHits != want {
				t.Errorf("SnapshotHits = %d, want %d (points - workloads)", st.SnapshotHits, want)
			}
			if st.SnapshotBytes == 0 {
				t.Error("SnapshotBytes = 0 with resident snapshots")
			}
			if st.Executed != len(pts) {
				t.Errorf("Executed = %d, want %d", st.Executed, len(pts))
			}
		})
	}
}

// TestSnapshotDisabled checks the toggle: with snapshots off no counters
// move and nothing is retained.
func TestSnapshotDisabled(t *testing.T) {
	r := NewParallelRunner(Budget{FastForward: 2000, Run: 4000}, 2)
	r.SetSnapshots(false)
	w, _ := workloads.ByName("gzip")
	r.Run(w, machine(4))
	r.Run(w, machine(4).WithPolicy(core.PolicyPRIRcCkpt))
	st := r.CacheStats()
	if st.SnapshotBuilds != 0 || st.SnapshotHits != 0 || st.SnapshotBytes != 0 {
		t.Errorf("snapshot counters moved while disabled: %+v", st)
	}
}

// TestSnapshotKeySharing checks the keying boundaries: width and policy
// share a snapshot (fast-forward state is policy-independent), while a
// different memory configuration or fast-forward budget must not.
func TestSnapshotKeySharing(t *testing.T) {
	r := NewParallelRunner(Budget{FastForward: 2000, Run: 4000}, 2)
	w, _ := workloads.ByName("gzip")

	r.Run(w, machine(4))
	r.Run(w, machine(8).WithPolicy(core.PolicyPRIPlusER))
	if st := r.CacheStats(); st.SnapshotBuilds != 1 || st.SnapshotHits != 1 {
		t.Errorf("width/policy points did not share one snapshot: %+v", st)
	}

	mshr := machine(4)
	mshr.Mem.MSHRs = 8
	r.Run(w, mshr)
	if st := r.CacheStats(); st.SnapshotBuilds != 2 {
		t.Errorf("different memsys config reused a snapshot: %+v", st)
	}

	r.WithBudget(Budget{FastForward: 1000}).Run(w, machine(4))
	if st := r.CacheStats(); st.SnapshotBuilds != 3 {
		t.Errorf("different fast-forward budget reused a snapshot: %+v", st)
	}
}

// TestSnapshotEvictionBound floods the cache with more keys than
// maxSnapshots (via distinct fast-forward budgets) and checks the resident
// set stays bounded while every run still succeeds.
func TestSnapshotEvictionBound(t *testing.T) {
	r := NewParallelRunner(Budget{FastForward: 1000, Run: 1000}, 2)
	w, _ := workloads.ByName("gzip")
	for i := 0; i < maxSnapshots+8; i++ {
		r.WithBudget(Budget{FastForward: uint64(1000 + i), Run: 1000}).Run(w, machine(4))
	}
	r.s.mu.Lock()
	n, bytes := len(r.s.snaps), r.s.snapBytes
	r.s.mu.Unlock()
	if n > maxSnapshots {
		t.Errorf("resident snapshots = %d, want <= %d", n, maxSnapshots)
	}
	if bytes == 0 {
		t.Error("snapBytes = 0 after eviction accounting")
	}
	st := r.CacheStats()
	if st.SnapshotBuilds != maxSnapshots+8 {
		t.Errorf("SnapshotBuilds = %d, want %d", st.SnapshotBuilds, maxSnapshots+8)
	}
}

// TestSnapshotGoldenFig8 regenerates the golden Figure 8 table with the
// snapshot cache explicitly enabled on a parallel runner and checks the
// pinned hash — snapshots must not perturb a single byte of any table.
func TestSnapshotGoldenFig8(t *testing.T) {
	r := NewParallelRunner(goldenBudget, 4)
	r.SetSnapshots(true)
	tbl, err := r.Fig8(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := sha(tbl.String()); got != goldenFig8Hash {
		t.Errorf("fig8 table with snapshots diverged from golden hash:\ngot  %s\nwant %s", got, goldenFig8Hash)
	}
	if st := r.CacheStats(); st.SnapshotHits == 0 {
		t.Errorf("golden fig8 sweep recorded no snapshot hits: %+v", st)
	}
}
