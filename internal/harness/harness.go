// Package harness drives the experiments that regenerate every table and
// figure in the paper's evaluation (Tables 1-2, Figures 1-2 and 8-12). Each
// experiment returns a stats.Table whose rows mirror the series the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package harness

import (
	"fmt"
	"io"

	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/ooo"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// Budget bounds one measurement run, mirroring the paper's fast-forward +
// measure methodology (scaled down from 400M+100M to simulator-friendly
// sizes; override with cmd/priexp flags).
type Budget struct {
	FastForward uint64
	Run         uint64
}

// DefaultBudget is used by the experiment drivers unless overridden.
var DefaultBudget = Budget{FastForward: 20_000, Run: 80_000}

// Result is everything the experiments need from one timing run.
type Result struct {
	Bench  string
	Config string
	Policy string

	IPC          float64
	Cycles       uint64
	Committed    uint64
	IntOccupancy float64
	FPOccupancy  float64

	// Register lifetime phases, averaged per released register (cycles),
	// for the class matching the benchmark suite.
	AllocToWrite  float64
	WriteToRead   float64
	ReadToRelease float64

	InlineFraction float64
	Mispredict     float64
	DL1Miss        float64
	L2Miss         float64
	Replays        uint64
}

type runKey struct {
	bench    string
	width    int
	policy   string
	prs      int
	inline   bool
	consv    bool
	delayed  bool
	mshrs    int
	prefetch bool
	budget   Budget
}

// Runner executes and caches timing runs; the same (benchmark, machine)
// point is shared by several figures, so caching roughly halves experiment
// time.
type Runner struct {
	Budget   Budget
	Progress io.Writer // optional per-run progress lines
	cache    map[runKey]*Result
}

// NewRunner returns a Runner with the given budget (zero fields take the
// defaults).
func NewRunner(b Budget) *Runner {
	if b.FastForward == 0 {
		b.FastForward = DefaultBudget.FastForward
	}
	if b.Run == 0 {
		b.Run = DefaultBudget.Run
	}
	return &Runner{Budget: b, cache: make(map[runKey]*Result)}
}

// Run simulates one benchmark on one machine configuration, memoized.
func (r *Runner) Run(w workloads.Workload, cfg ooo.Config) *Result {
	key := runKey{
		bench:    w.Name,
		width:    cfg.Width,
		policy:   cfg.Rename.Policy.Name(),
		prs:      cfg.Rename.IntPRs,
		inline:   cfg.InlineAtRename,
		consv:    cfg.ConservativeDisambiguation,
		delayed:  cfg.DelayedAllocation,
		mshrs:    cfg.Mem.MSHRs,
		prefetch: cfg.Mem.NextLinePrefetch,
		budget:   r.Budget,
	}
	if res, ok := r.cache[key]; ok {
		return res
	}
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "run %-9s %s %-14s prs=%d ... ", w.Name, cfg.Name, key.policy, key.prs)
	}
	p := ooo.New(cfg, w.Build(0))
	p.FastForward(r.Budget.FastForward)
	p.Run(r.Budget.Run)

	st := p.Stats()
	life := p.Renamer().IntStats()
	if w.Class == workloads.FP {
		life = p.Renamer().FPStats()
	}
	aw, wr, rr := life.AvgPhases()
	res := &Result{
		Bench:          w.Name,
		Config:         cfg.Name,
		Policy:         key.policy,
		IPC:            st.IPC(),
		Cycles:         st.Cycles,
		Committed:      st.Committed,
		IntOccupancy:   st.AvgIntOccupancy(),
		FPOccupancy:    st.AvgFPOccupancy(),
		AllocToWrite:   aw,
		WriteToRead:    wr,
		ReadToRelease:  rr,
		InlineFraction: st.InlineFraction(),
		Mispredict:     st.MispredictRate(),
		DL1Miss:        p.Mem().DL1.MissRate(),
		L2Miss:         p.Mem().L2.MissRate(),
		Replays:        st.Replays,
	}
	r.cache[key] = res
	if r.Progress != nil {
		fmt.Fprintf(r.Progress, "IPC %.3f\n", res.IPC)
	}
	return res
}

// machine returns the Table 1 configuration for a width.
func machine(width int) ooo.Config {
	if width == 8 {
		return ooo.Width8()
	}
	return ooo.Width4()
}

// suite returns the workloads of one class.
func suite(c workloads.Class) []workloads.Workload {
	if c == workloads.FP {
		return workloads.FloatingPoint()
	}
	return workloads.Integer()
}

// mean is the arithmetic mean the paper uses for its averages.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Table1 renders the machine configurations (static; the paper's Table 1).
func Table1() *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: machine configurations",
		Columns: []string{"parameter", "4-wide", "8-wide"},
	}
	c4, c8 := ooo.Width4(), ooo.Width8()
	row := func(name string, v4, v8 any) { t.AddRow(name, fmt.Sprint(v4), fmt.Sprint(v8)) }
	row("fetch/issue/commit width", c4.Width, c8.Width)
	row("ROB entries", c4.ROBSize, c8.ROBSize)
	row("LSQ entries", c4.LSQSize, c8.LSQSize)
	row("scheduler entries", c4.SchedSize, c8.SchedSize)
	row("int physical registers", c4.Rename.IntPRs, c8.Rename.IntPRs)
	row("fp physical registers", c4.Rename.FPPRs, c8.Rename.FPPRs)
	row("PRI narrow bits (int)", c4.Rename.IntNarrowBits, c8.Rename.IntNarrowBits)
	row("PRI fp inlining", "all-zero/all-one patterns", "all-zero/all-one patterns")
	row("branch predictor", "bimodal4k/gshare4k + selector4k", "same")
	row("RAS / BTB", "16 / 1k 4-way", "same")
	row("IL1", "32KB 2-way 32B, 2cyc", "same")
	row("DL1", "32KB 4-way 16B, 2cyc", "same")
	row("L2", "512KB 4-way 64B, 12cyc", "same")
	row("memory latency", c4.Mem.MemLatency, c8.Mem.MemLatency)
	row("select-to-execute depth", c4.SchedToExec, c8.SchedToExec)
	return t
}

// Table2 reproduces the paper's Table 2: baseline IPC for every benchmark
// on both machine widths.
func (r *Runner) Table2() *stats.Table {
	t := &stats.Table{
		Title:   "Table 2: benchmark programs and baseline IPC",
		Columns: []string{"bench", "class", "IPC(4w)", "paper(4w)", "IPC(8w)", "paper(8w)"},
	}
	for _, w := range workloads.All() {
		r4 := r.Run(w, machine(4))
		r8 := r.Run(w, machine(8))
		t.AddRow(w.Name, w.Class.String(),
			stats.F(r4.IPC, 2), stats.F(w.PaperIPC4, 2),
			stats.F(r8.IPC, 2), stats.F(w.PaperIPC8, 2))
	}
	return t
}

// Fig1 reproduces Figure 1: average register lifetime split into the three
// phases, per integer benchmark, on the baseline 4- and 8-wide machines.
func (r *Runner) Fig1() *stats.Table {
	t := &stats.Table{
		Title: "Figure 1: average register lifetime (cycles) split by phase, baseline",
		Columns: []string{"bench",
			"alloc->wr(4w)", "wr->rd(4w)", "rd->rel(4w)", "total(4w)",
			"alloc->wr(8w)", "wr->rd(8w)", "rd->rel(8w)", "total(8w)"},
	}
	for _, w := range suite(workloads.Int) {
		r4 := r.Run(w, machine(4))
		r8 := r.Run(w, machine(8))
		t.AddRow(w.Name,
			stats.F(r4.AllocToWrite, 1), stats.F(r4.WriteToRead, 1), stats.F(r4.ReadToRelease, 1),
			stats.F(r4.AllocToWrite+r4.WriteToRead+r4.ReadToRelease, 1),
			stats.F(r8.AllocToWrite, 1), stats.F(r8.WriteToRead, 1), stats.F(r8.ReadToRelease, 1),
			stats.F(r8.AllocToWrite+r8.WriteToRead+r8.ReadToRelease, 1))
	}
	return t
}

// Fig2 reproduces Figure 2: the cumulative distribution of operand
// significance — integer operand widths and FP exponent/significand widths —
// measured over the functional instruction stream.
func (r *Runner) Fig2() (*stats.Table, *stats.Table) {
	intT := &stats.Table{
		Title:   "Figure 2 (top): cumulative % of integer operands representable in N bits",
		Columns: []string{"bench", "<=4", "<=7", "<=8", "<=10", "<=12", "<=16", "<=24", "<=32", "<=48", "<=64"},
	}
	widths := []int{4, 7, 8, 10, 12, 16, 24, 32, 48, 64}
	for _, w := range suite(workloads.Int) {
		m := emu.New(w.Build(0))
		m.Run(r.Budget.FastForward)
		s := stats.Analyze(m, r.Budget.Run)
		row := []string{w.Name}
		for _, n := range widths {
			row = append(row, stats.Pct(s.IntFracWithin(n)))
		}
		intT.AddRow(row...)
	}
	fpT := &stats.Table{
		Title:   "Figure 2 (bottom): FP operand field significance",
		Columns: []string{"bench", "trivial(all 0/1)", "exp<=1b", "exp<=4b", "exp<=8b", "sig=0b", "sig<=16b", "sig<=32b"},
	}
	for _, w := range suite(workloads.FP) {
		m := emu.New(w.Build(0))
		m.Run(r.Budget.FastForward)
		s := stats.Analyze(m, r.Budget.Run)
		fpT.AddRow(w.Name,
			stats.Pct(s.FPTrivialFrac()),
			stats.Pct(s.ExpBits.CumulativeFrac(1)),
			stats.Pct(s.ExpBits.CumulativeFrac(4)),
			stats.Pct(s.ExpBits.CumulativeFrac(8)),
			stats.Pct(s.SigBits.CumulativeFrac(0)),
			stats.Pct(s.SigBits.CumulativeFrac(16)),
			stats.Pct(s.SigBits.CumulativeFrac(32)))
	}
	return intT, fpT
}

// Fig8 reproduces Figure 8: lifetime reduction under PRI and PRI+ER versus
// the baseline, integer benchmarks, both widths.
func (r *Runner) Fig8() *stats.Table {
	t := &stats.Table{
		Title: "Figure 8: avg register lifetime (cycles): base vs PRI(rc+ckpt) vs PRI+ER",
		Columns: []string{"bench",
			"base(4w)", "pri(4w)", "pri+er(4w)",
			"base(8w)", "pri(8w)", "pri+er(8w)"},
	}
	total := func(res *Result) string {
		return stats.F(res.AllocToWrite+res.WriteToRead+res.ReadToRelease, 1)
	}
	for _, w := range suite(workloads.Int) {
		row := []string{w.Name}
		for _, width := range []int{4, 8} {
			cfg := machine(width)
			row = append(row,
				total(r.Run(w, cfg.WithPolicy(core.PolicyBase))),
				total(r.Run(w, cfg.WithPolicy(core.PolicyPRIRcCkpt))),
				total(r.Run(w, cfg.WithPolicy(core.PolicyPRIPlusER))))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig9PRs is the physical register sweep of Figure 9.
var Fig9PRs = []int{40, 48, 56, 64, 72, 80, 96}

// Fig9 reproduces Figure 9: baseline speedup versus register file size,
// normalized to 40 registers, for every benchmark at the given width.
func (r *Runner) Fig9(width int) *stats.Table {
	cols := []string{"bench"}
	for _, n := range Fig9PRs {
		cols = append(cols, fmt.Sprintf("PR=%d", n))
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 9: register file sensitivity, %d-wide (speedup vs PR=40)", width),
		Columns: cols,
	}
	for _, w := range workloads.All() {
		base := r.Run(w, machine(width).WithPRs(40))
		row := []string{w.Name}
		for _, n := range Fig9PRs {
			res := r.Run(w, machine(width).WithPRs(n))
			row = append(row, stats.F(res.IPC/base.IPC, 2))
		}
		t.AddRow(row...)
	}
	return t
}

// speedupTable renders Figures 10 and 12: per-benchmark IPC speedup of each
// scheme over the baseline, plus the arithmetic mean row.
func (r *Runner) speedupTable(class workloads.Class, width int, title string) *stats.Table {
	t := &stats.Table{
		Title: title,
		Columns: []string{"bench", "ER",
			"PRI-rc-ckpt", "PRI-rc-lazy", "PRI-ideal-ckpt", "PRI-ideal-lazy",
			"PRI+ER", "InfPR"},
	}
	sums := make([][]float64, len(core.AllPolicies))
	for _, w := range suite(class) {
		cfg := machine(width)
		base := r.Run(w, cfg.WithPolicy(core.PolicyBase))
		row := []string{w.Name}
		for i, pol := range core.AllPolicies {
			res := r.Run(w, cfg.WithPolicy(pol))
			sp := res.IPC / base.IPC
			sums[i] = append(sums[i], sp)
			row = append(row, stats.F(sp, 3))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for i := range core.AllPolicies {
		avg = append(avg, stats.F(mean(sums[i]), 3))
	}
	t.AddRow(avg...)
	return t
}

// Fig10 reproduces Figure 10: integer speedups for all seven schemes.
func (r *Runner) Fig10(width int) *stats.Table {
	return r.speedupTable(workloads.Int, width,
		fmt.Sprintf("Figure 10: PRI speedup, integer benchmarks, %d-wide (IPC / base IPC)", width))
}

// Fig12 reproduces Figure 12: floating-point speedups for all seven schemes.
func (r *Runner) Fig12(width int) *stats.Table {
	return r.speedupTable(workloads.FP, width,
		fmt.Sprintf("Figure 12: PRI speedup, floating point benchmarks, %d-wide (IPC / base IPC)", width))
}

// Fig11 reproduces Figure 11: average physical register file occupancy for
// base, ER, PRI, and PRI+ER on the integer benchmarks.
func (r *Runner) Fig11(width int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 11: avg integer PRF occupancy, %d-wide", width),
		Columns: []string{"bench", "base", "ER", "PRI", "PRI+ER"},
	}
	pols := []core.Policy{core.PolicyBase, core.PolicyER, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER}
	for _, w := range suite(workloads.Int) {
		row := []string{w.Name}
		for _, pol := range pols {
			res := r.Run(w, machine(width).WithPolicy(pol))
			row = append(row, stats.F(res.IntOccupancy, 1))
		}
		t.AddRow(row...)
	}
	return t
}

// AblationRenameInline compares PRI with and without the Section 6
// future-work extension (rename-time inlining of narrow load-immediates).
func (r *Runner) AblationRenameInline(width int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: rename-time inlining extension, %d-wide", width),
		Columns: []string{"bench", "PRI IPC", "PRI+renameInline IPC", "gain"},
	}
	for _, w := range suite(workloads.Int) {
		cfg := machine(width).WithPolicy(core.PolicyPRIRcCkpt)
		basePRI := r.Run(w, cfg)
		cfg.InlineAtRename = true
		ext := r.Run(w, cfg)
		t.AddRow(w.Name, stats.F(basePRI.IPC, 3), stats.F(ext.IPC, 3),
			stats.F(ext.IPC/basePRI.IPC, 3))
	}
	return t
}

// AblationDelayedAllocation explores the paper's Section 6 virtual-physical
// direction: baseline vs delayed register allocation vs delayed allocation
// combined with PRI, at the Table 1 register file size.
func (r *Runner) AblationDelayedAllocation(width int) *stats.Table {
	// A 40-register file keeps the writeback gate engaged so the
	// PRI interaction is visible (at 64 registers the gate rarely binds).
	const prs = 40
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: virtual-physical delayed allocation, %d-wide, %d PRs", width, prs),
		Columns: []string{"bench", "base IPC", "delayed IPC", "delayed+PRI IPC"},
	}
	for _, w := range suite(workloads.Int) {
		base := r.Run(w, machine(width).WithPRs(prs))
		cfgD := machine(width).WithPRs(prs)
		cfgD.DelayedAllocation = true
		delayed := r.Run(w, cfgD)
		cfgDP := machine(width).WithPolicy(core.PolicyPRIRcLazy).WithPRs(prs)
		cfgDP.DelayedAllocation = true
		both := r.Run(w, cfgDP)
		t.AddRow(w.Name, stats.F(base.IPC, 3), stats.F(delayed.IPC, 3), stats.F(both.IPC, 3))
	}
	return t
}

// AblationMSHR bounds memory-level parallelism: the default model overlaps
// misses without limit (as sim-outorder does); this table shows how much of
// the memory-bound benchmarks' throughput that assumption is worth.
func (r *Runner) AblationMSHR(width int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: MSHR-bounded miss overlap, %d-wide baseline", width),
		Columns: []string{"bench", "unlimited IPC", "8 MSHRs", "2 MSHRs"},
	}
	for _, w := range suite(workloads.Int) {
		unlimited := r.Run(w, machine(width))
		cfg8 := machine(width)
		cfg8.Mem.MSHRs = 8
		m8 := r.Run(w, cfg8)
		cfg2 := machine(width)
		cfg2.Mem.MSHRs = 2
		m2 := r.Run(w, cfg2)
		t.AddRow(w.Name, stats.F(unlimited.IPC, 3), stats.F(m8.IPC, 3), stats.F(m2.IPC, 3))
	}
	return t
}

// AblationPrefetch adds an idealized next-line data prefetcher to the
// baseline: it shows how much of the streaming benchmarks' miss cost the
// Table 1 machine (which has none) leaves on the table.
func (r *Runner) AblationPrefetch(width int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: next-line data prefetch, %d-wide baseline", width),
		Columns: []string{"bench", "no-prefetch IPC", "prefetch IPC", "gain"},
	}
	for _, w := range suite(workloads.Int) {
		base := r.Run(w, machine(width))
		cfgP := machine(width)
		cfgP.Mem.NextLinePrefetch = true
		pf := r.Run(w, cfgP)
		t.AddRow(w.Name, stats.F(base.IPC, 3), stats.F(pf.IPC, 3), stats.F(pf.IPC/base.IPC, 3))
	}
	return t
}

// AblationDisambiguation compares oracle and conservative memory
// disambiguation on the baseline machine (a documented model choice).
func (r *Runner) AblationDisambiguation(width int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: memory disambiguation, %d-wide baseline", width),
		Columns: []string{"bench", "oracle IPC", "conservative IPC", "ratio"},
	}
	for _, w := range suite(workloads.Int) {
		oracle := r.Run(w, machine(width))
		cfg := machine(width)
		cfg.ConservativeDisambiguation = true
		cfg.Name = cfg.Name + "-consv"
		cons := r.Run(w, cfg)
		t.AddRow(w.Name, stats.F(oracle.IPC, 3), stats.F(cons.IPC, 3),
			stats.F(cons.IPC/oracle.IPC, 3))
	}
	return t
}
