// Package harness drives the experiments that regenerate every table and
// figure in the paper's evaluation (Tables 1-2, Figures 1-2 and 8-12). Each
// experiment returns a stats.Table whose rows mirror the series the paper
// plots; EXPERIMENTS.md records the paper-vs-measured comparison.
//
// The run matrix behind those tables — 27 workloads x 8 release policies x
// 2 machine widths x a register-count axis — is embarrassingly parallel, so
// a Runner executes timing runs on a bounded worker pool: every figure
// driver submits its whole matrix up front, the pool simulates points
// concurrently, and the driver assembles rows serially from the completed
// set, so tables are byte-identical to a single-worker run while wall-clock
// scales with cores. Concurrent requests for the same point are deduplicated
// singleflight-style (each point simulates exactly once per Runner), and
// every run observes context cancellation between instruction chunks.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/ooo"
	"prisim/internal/stats"
	"prisim/internal/workloads"
)

// Budget bounds one measurement run, mirroring the paper's fast-forward +
// measure methodology (scaled down from 400M+100M to simulator-friendly
// sizes; override with cmd/priexp flags).
type Budget struct {
	FastForward uint64
	Run         uint64
}

// DefaultBudget is used by the experiment drivers unless overridden.
var DefaultBudget = Budget{FastForward: 20_000, Run: 80_000}

// orDefault fills zero fields from DefaultBudget.
func (b Budget) orDefault() Budget {
	if b.FastForward == 0 {
		b.FastForward = DefaultBudget.FastForward
	}
	if b.Run == 0 {
		b.Run = DefaultBudget.Run
	}
	return b
}

// Result is everything the experiments need from one timing run.
type Result struct {
	Bench  string
	Config string
	Policy string

	IPC          float64
	Cycles       uint64
	Committed    uint64
	IntOccupancy float64
	FPOccupancy  float64

	// Register lifetime phases, averaged per released register (cycles),
	// for the class matching the benchmark suite.
	AllocToWrite  float64
	WriteToRead   float64
	ReadToRelease float64

	InlineFraction float64
	Mispredict     float64
	DL1Miss        float64
	L2Miss         float64
	Replays        uint64
	BranchResolved uint64

	// PRI activity counters for the dominant register class.
	InlinedResults uint64
	WAWSuppressed  uint64
	DeferredFrees  uint64
	EarlyFrees     uint64
}

type runKey struct {
	bench    string
	width    int
	policy   string
	prs      int
	inline   bool
	consv    bool
	delayed  bool
	mshrs    int
	prefetch bool
	budget   Budget
}

// entry is one singleflight cache slot: the first requester simulates, every
// concurrent requester for the same key blocks on done and shares the result.
type entry struct {
	done chan struct{}
	res  *Result
	err  error
}

// shared is the Runner state common to every budget view: the cache, the
// worker pool, and the progress counters. Budget-scoped views created with
// WithBudget alias it, so deduplication spans all of them.
type shared struct {
	sem chan struct{} // bounded worker pool

	mu         sync.Mutex
	cache      map[runKey]*entry      // guarded by mu
	progress   io.Writer              // guarded by mu
	onProgress func(done, total int)  // guarded by mu
	submitted  int                    // guarded by mu
	completed  int                    // guarded by mu
	hits       int                    // guarded by mu; requests served by an already-completed cache entry
	coalesced  int                    // guarded by mu; requests that joined another caller's in-flight run

	// Fast-forward snapshot cache (see snapshot.go).
	snaps      map[snapKey]*snapEntry // guarded by mu
	snapsOff   bool                   // guarded by mu
	snapClock  uint64                 // guarded by mu; LRU clock
	snapBuilds int                    // guarded by mu; fast-forwards executed to fill the cache
	snapHits   int                    // guarded by mu; runs constructed from a cached snapshot
	snapBytes  uint64                 // guarded by mu; resident bytes of cached warm states
}

// CacheStats is a snapshot of the Runner's memoization counters, spanning
// every budget/progress view of one shared cache.
type CacheStats struct {
	Executed  int // simulations actually performed
	Hits      int // requests answered from a completed cache entry
	Coalesced int // requests that waited on another caller's in-flight run

	// Fast-forward snapshot cache counters (see snapshot.go).
	SnapshotBuilds int    // fast-forwards executed to fill the snapshot cache
	SnapshotHits   int    // runs constructed from a cached warm state instead of replaying
	SnapshotBytes  uint64 // resident bytes of cached warm states
}

// viewState is the per-view progress accounting behind ProgressView: done
// counts the view's requests that have resolved (by its own flight, by
// joining another flight, or — for requests made before the point was
// cached — never; completed-entry hits resolve instantly and are not
// counted), submitted counts requests that found no completed entry.
type viewState struct {
	mu        sync.Mutex
	hook      func(done, total int) // guarded by mu
	done      int                   // guarded by mu
	submitted int                   // guarded by mu
}

// Runner executes timing runs on a bounded worker pool and memoizes them;
// the same (benchmark, machine) point is shared by several figures, and
// concurrent requests for one point collapse into a single simulation.
// A Runner is safe for use from multiple goroutines.
type Runner struct {
	Budget Budget
	s      *shared
	view   *viewState // nil unless created by ProgressView
}

// NewRunner returns a Runner with the given budget (zero fields take the
// defaults) and a worker pool sized by GOMAXPROCS.
func NewRunner(b Budget) *Runner { return NewParallelRunner(b, 0) }

// NewParallelRunner returns a Runner whose pool admits at most workers
// concurrent simulations; workers <= 0 selects GOMAXPROCS. workers == 1
// reproduces the serial execution order exactly.
func NewParallelRunner(b Budget, workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		Budget: b.orDefault(),
		s: &shared{
			sem:   make(chan struct{}, workers),
			cache: make(map[runKey]*entry),
			snaps: make(map[snapKey]*snapEntry),
		},
	}
}

// WithBudget returns a view of the Runner that simulates at budget b (zero
// fields fall back to the receiver's budget) while sharing the receiver's
// cache, worker pool, and progress hooks. The budget is part of the cache
// key, so views never alias each other's results.
func (r *Runner) WithBudget(b Budget) *Runner {
	if b.FastForward == 0 {
		b.FastForward = r.Budget.FastForward
	}
	if b.Run == 0 {
		b.Run = r.Budget.Run
	}
	return &Runner{Budget: b, s: r.s, view: r.view}
}

// ProgressView returns a view of the Runner that reports per-view progress
// to fn while sharing the receiver's cache, worker pool, and global progress
// hooks. fn is called after each of the view's requests resolves, with the
// number resolved and the number submitted by this view so far; requests
// answered instantly from a completed cache entry do not fire it. Calls are
// serialized; fn must be fast and must not call back into the Runner. The
// view survives WithBudget, so one view can track a whole experiment.
func (r *Runner) ProgressView(fn func(done, total int)) *Runner {
	return &Runner{Budget: r.Budget, s: r.s, view: &viewState{hook: fn}}
}

// CacheStats reports the memoization counters accumulated across every view
// of this Runner's shared cache.
func (r *Runner) CacheStats() CacheStats {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return CacheStats{
		Executed:       r.s.completed,
		Hits:           r.s.hits,
		Coalesced:      r.s.coalesced,
		SnapshotBuilds: r.s.snapBuilds,
		SnapshotHits:   r.s.snapHits,
		SnapshotBytes:  r.s.snapBytes,
	}
}

// viewSubmit records one not-instantly-resolvable request against the view,
// at most once per RunCtx call.
func (r *Runner) viewSubmit(counted *bool) {
	if r.view == nil || *counted {
		return
	}
	*counted = true
	r.view.mu.Lock()
	r.view.submitted++
	r.view.mu.Unlock()
}

// viewDone marks one of the view's requests resolved and fires the hook.
// The hook runs under the view lock so reported (done, total) pairs are
// monotonic.
func (r *Runner) viewDone(counted bool) {
	if r.view == nil || !counted {
		return
	}
	r.view.mu.Lock()
	r.view.done++
	if r.view.hook != nil {
		r.view.hook(r.view.done, r.view.submitted)
	}
	r.view.mu.Unlock()
}

// SetProgress directs a one-line-per-completed-run log to w (nil disables).
func (r *Runner) SetProgress(w io.Writer) {
	r.s.mu.Lock()
	r.s.progress = w
	r.s.mu.Unlock()
}

// OnProgress registers fn to be called after every completed run with the
// number of runs finished and the number submitted so far. Calls are
// serialized; fn must not call back into the Runner.
func (r *Runner) OnProgress(fn func(done, total int)) {
	r.s.mu.Lock()
	r.s.onProgress = fn
	r.s.mu.Unlock()
}

// RunsExecuted reports how many simulations this Runner (including all
// budget views) has actually executed — cache hits and deduplicated
// concurrent requests do not count.
func (r *Runner) RunsExecuted() int {
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	return r.s.completed
}

func (r *Runner) key(w workloads.Workload, cfg ooo.Config) runKey {
	return runKey{
		bench:    w.Name,
		width:    cfg.Width,
		policy:   cfg.Rename.Policy.Name(),
		prs:      cfg.Rename.IntPRs,
		inline:   cfg.InlineAtRename,
		consv:    cfg.ConservativeDisambiguation,
		delayed:  cfg.DelayedAllocation,
		mshrs:    cfg.Mem.MSHRs,
		prefetch: cfg.Mem.NextLinePrefetch,
		budget:   r.Budget,
	}
}

// Run simulates one benchmark on one machine configuration, memoized. It is
// the context-free form of RunCtx and never fails.
func (r *Runner) Run(w workloads.Workload, cfg ooo.Config) *Result {
	//lint:ignore ctxcheck Run is the documented context-free convenience form; RunCtx is the context-threading API
	res, err := r.RunCtx(context.Background(), w, cfg)
	if err != nil {
		// Unreachable: a background context cannot be cancelled, and RunCtx
		// retries flights that a sibling's cancelled context tore down.
		panic("harness: Run failed: " + err.Error())
	}
	return res
}

// RunCtx simulates one benchmark on one machine configuration, memoized and
// deduplicated: concurrent calls for the same point block on one simulation
// and share its result. The run is bounded by the worker pool and aborts
// between instruction chunks when ctx is cancelled; a cancelled flight is
// evicted so later calls retry it.
func (r *Runner) RunCtx(ctx context.Context, w workloads.Workload, cfg ooo.Config) (*Result, error) {
	key := r.key(w, cfg)
	counted := false // view accounting: at most one submit per call
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.s.mu.Lock()
		if e, ok := r.s.cache[key]; ok {
			// Distinguish a completed entry (an instant cache hit) from a
			// flight we are about to join.
			select {
			case <-e.done:
				if e.err == nil {
					r.s.hits++
					r.s.mu.Unlock()
					return e.res, nil
				}
				// The owning flight was cancelled (and evicted); retry
				// under our own context.
				r.s.mu.Unlock()
				continue
			default:
			}
			r.s.coalesced++
			r.s.mu.Unlock()
			r.viewSubmit(&counted)
			select {
			case <-e.done:
				if e.err == nil {
					r.viewDone(counted)
					return e.res, nil
				}
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		e := &entry{done: make(chan struct{})}
		r.s.cache[key] = e
		r.s.submitted++
		r.s.mu.Unlock()
		r.viewSubmit(&counted)

		e.res, e.err = r.simulate(ctx, w, cfg)

		r.s.mu.Lock()
		var hook func(done, total int)
		var done, total int
		if e.err != nil {
			delete(r.s.cache, key)
			r.s.submitted--
		} else {
			r.s.completed++
			if r.s.progress != nil {
				fmt.Fprintf(r.s.progress, "run %-9s %s %-14s prs=%-3d IPC %.3f\n",
					w.Name, cfg.Name, key.policy, key.prs, e.res.IPC)
			}
			hook, done, total = r.s.onProgress, r.s.completed, r.s.submitted
		}
		r.s.mu.Unlock()
		close(e.done)
		if hook != nil {
			hook(done, total)
		}
		if e.err == nil {
			r.viewDone(counted)
		}
		return e.res, e.err
	}
}

// ctxChunk is how many instructions execute between context checks.
const ctxChunk = 16 * 1024

// simulate performs one timing run inside a worker-pool slot. The workload's
// fast-forward state comes from the snapshot cache when available — one
// functional fast-forward per workload serves the whole sweep — and is
// replayed inline otherwise; results are byte-identical either way.
// warmFor runs before the slot is acquired: a caller waiting on another
// flight's snapshot build must not occupy a worker.
func (r *Runner) simulate(ctx context.Context, w workloads.Workload, cfg ooo.Config) (*Result, error) {
	warm, err := r.warmFor(ctx, w, cfg)
	if err != nil {
		return nil, err
	}

	select {
	case r.s.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-r.s.sem }()

	var p *ooo.Pipeline
	if warm != nil {
		p = ooo.NewFromWarm(cfg, warm)
	} else {
		p = ooo.New(cfg, w.Build(0))
		if err := runChunked(ctx, p.FastForward, r.Budget.FastForward); err != nil {
			return nil, err
		}
	}
	if err := runChunked(ctx, p.Run, r.Budget.Run); err != nil {
		return nil, err
	}
	res := buildResult(p, w.Class == workloads.FP)
	res.Bench = w.Name
	res.Config = cfg.Name
	res.Policy = cfg.Rename.Policy.Name()
	return res, nil
}

// runChunked drives a resumable budgeted phase (FastForward or Run) in
// slices, checking ctx between slices so long runs cancel promptly. It
// accounts the instructions each slice actually retired — the commit stage
// can overshoot a slice quota by up to width-1 — so the run stops at the
// same cycle boundary a single phase(n) call would. A slice that falls
// short of its quota means the program halted, abandoning the rest.
func runChunked(ctx context.Context, phase func(uint64) uint64, n uint64) error {
	return runChunkedCheck(ctx, phase, n, nil)
}

// runChunkedCheck is runChunked with an optional between-chunk check (the
// program-sandbox memory cap); a non-nil error from check aborts the run.
func runChunkedCheck(ctx context.Context, phase func(uint64) uint64, n uint64, check func() error) error {
	for n > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		c := uint64(ctxChunk)
		if n < c {
			c = n
		}
		got := phase(c)
		if got < c || got >= n {
			break
		}
		n -= got
	}
	if check != nil {
		return check()
	}
	return nil
}

// buildResult snapshots a finished pipeline into a Result, reporting the
// lifetime and PRI counters of the fp or integer register class.
func buildResult(p *ooo.Pipeline, fp bool) *Result {
	st := p.Stats()
	life := p.Renamer().IntStats()
	if fp {
		life = p.Renamer().FPStats()
	}
	aw, wr, rr := life.AvgPhases()
	return &Result{
		IPC:            st.IPC(),
		Cycles:         st.Cycles,
		Committed:      st.Committed,
		IntOccupancy:   st.AvgIntOccupancy(),
		FPOccupancy:    st.AvgFPOccupancy(),
		AllocToWrite:   aw,
		WriteToRead:    wr,
		ReadToRelease:  rr,
		InlineFraction: st.InlineFraction(),
		Mispredict:     st.MispredictRate(),
		DL1Miss:        p.Mem().DL1.MissRate(),
		L2Miss:         p.Mem().L2.MissRate(),
		Replays:        st.Replays,
		BranchResolved: st.BranchResolved,
		InlinedResults: life.InlinedResults,
		WAWSuppressed:  life.WAWSuppressed,
		DeferredFrees:  life.DeferredFrees,
		EarlyFrees:     life.EarlyFrees,
	}
}

// ErrMemLimit aborts a program run whose simulated machine footprint
// exceeded the caller's memory cap (see RunProgram's memLimit).
var ErrMemLimit = errors.New("simulated memory limit exceeded")

// RunProgram runs an arbitrary assembled program through the timing
// pipeline, uncached (the caller owns the program, so there is no key to
// memoize under). The budget is used verbatim — FastForward 0 skips nothing
// and Run bounds committed instructions, stopping early if the program
// halts. It honours ctx between instruction chunks, optionally streams an
// O3PipeView trace to pipeview, and returns the run's Result alongside the
// program's console output. memLimit > 0 caps the simulated machine's
// resident footprint (checked between chunks, so a run can overshoot by at
// most one chunk's worth of page touches); exceeding it fails the run with
// an error wrapping ErrMemLimit.
func RunProgram(ctx context.Context, cfg ooo.Config, prog *asm.Program, fp bool, b Budget, memLimit uint64, pipeview io.Writer) (*Result, []byte, error) {
	p := ooo.New(cfg, prog)
	if pipeview != nil {
		p.SetPipeView(pipeview)
	}
	var check func() error
	if memLimit > 0 {
		check = func() error {
			if fb := p.Machine().FootprintBytes(); fb > memLimit {
				return fmt.Errorf("%w: footprint %d bytes > limit %d", ErrMemLimit, fb, memLimit)
			}
			return nil
		}
	}
	if err := runChunkedCheck(ctx, p.FastForward, b.FastForward, check); err != nil {
		return nil, nil, err
	}
	if err := runChunkedCheck(ctx, p.Run, b.Run, check); err != nil {
		return nil, nil, err
	}
	if pipeview != nil {
		p.FlushPipeView()
	}
	res := buildResult(p, fp)
	res.Config = cfg.Name
	res.Policy = cfg.Rename.Policy.Name()
	return res, p.Machine().Output(), nil
}

// point is one (workload, machine) cell of an experiment's run matrix.
type point struct {
	w   workloads.Workload
	cfg ooo.Config
}

// warm submits a whole run matrix to the worker pool and blocks until every
// point has simulated (duplicates collapse via the singleflight cache).
// Afterwards, RunCtx for any submitted point returns instantly, so drivers
// can assemble rows serially and deterministically.
//
// Submission is grouped by workload: every point of one workload shares a
// fast-forward snapshot, so clustering them lets the first point's build
// serve all its siblings the moment it completes. The snapshot singleflight
// guarantees each workload fast-forwards exactly once per sweep regardless
// of scheduling; the grouping just keeps same-snapshot points adjacent.
func (r *Runner) warm(ctx context.Context, pts []point) error {
	order := make(map[string]int, len(pts))
	groups := make([][]point, 0, len(pts))
	for _, pt := range pts {
		i, ok := order[pt.w.Name]
		if !ok {
			i = len(groups)
			order[pt.w.Name] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], pt)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, group := range groups {
		for _, pt := range group {
			wg.Add(1)
			go func(pt point) {
				defer wg.Done()
				if _, err := r.RunCtx(ctx, pt.w, pt.cfg); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(pt)
		}
	}
	wg.Wait()
	return firstErr
}

// forEach runs fn(i) for i in [0, n) concurrently, bounded by the worker
// pool, and returns the first error. It backs the functional-emulation
// experiments that bypass the timing-run cache.
func (r *Runner) forEach(ctx context.Context, n int, fn func(i int) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case r.s.sem <- struct{}{}:
			case <-ctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = ctx.Err()
				}
				mu.Unlock()
				return
			}
			defer func() { <-r.s.sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// machine returns the Table 1 configuration for a width.
func machine(width int) ooo.Config {
	if width == 8 {
		return ooo.Width8()
	}
	return ooo.Width4()
}

// suite returns the workloads of one class.
func suite(c workloads.Class) []workloads.Workload {
	if c == workloads.FP {
		return workloads.FloatingPoint()
	}
	return workloads.Integer()
}

// mean is the arithmetic mean the paper uses for its averages.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}

// Table1 renders the machine configurations (static; the paper's Table 1).
func Table1() *stats.Table {
	t := &stats.Table{
		Title:   "Table 1: machine configurations",
		Columns: []string{"parameter", "4-wide", "8-wide"},
	}
	c4, c8 := ooo.Width4(), ooo.Width8()
	row := func(name string, v4, v8 any) { t.AddRow(name, fmt.Sprint(v4), fmt.Sprint(v8)) }
	row("fetch/issue/commit width", c4.Width, c8.Width)
	row("ROB entries", c4.ROBSize, c8.ROBSize)
	row("LSQ entries", c4.LSQSize, c8.LSQSize)
	row("scheduler entries", c4.SchedSize, c8.SchedSize)
	row("int physical registers", c4.Rename.IntPRs, c8.Rename.IntPRs)
	row("fp physical registers", c4.Rename.FPPRs, c8.Rename.FPPRs)
	row("PRI narrow bits (int)", c4.Rename.IntNarrowBits, c8.Rename.IntNarrowBits)
	row("PRI fp inlining", "all-zero/all-one patterns", "all-zero/all-one patterns")
	row("branch predictor", "bimodal4k/gshare4k + selector4k", "same")
	row("RAS / BTB", "16 / 1k 4-way", "same")
	row("IL1", "32KB 2-way 32B, 2cyc", "same")
	row("DL1", "32KB 4-way 16B, 2cyc", "same")
	row("L2", "512KB 4-way 64B, 12cyc", "same")
	row("memory latency", c4.Mem.MemLatency, c8.Mem.MemLatency)
	row("select-to-execute depth", c4.SchedToExec, c8.SchedToExec)
	return t
}

// Table2 reproduces the paper's Table 2: baseline IPC for every benchmark
// on both machine widths.
func (r *Runner) Table2(ctx context.Context) (*stats.Table, error) {
	var pts []point
	for _, w := range workloads.All() {
		pts = append(pts, point{w, machine(4)}, point{w, machine(8)})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   "Table 2: benchmark programs and baseline IPC",
		Columns: []string{"bench", "class", "IPC(4w)", "paper(4w)", "IPC(8w)", "paper(8w)"},
	}
	for _, w := range workloads.All() {
		r4, err := r.RunCtx(ctx, w, machine(4))
		if err != nil {
			return nil, err
		}
		r8, err := r.RunCtx(ctx, w, machine(8))
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, w.Class.String(),
			stats.F(r4.IPC, 2), stats.F(w.PaperIPC4, 2),
			stats.F(r8.IPC, 2), stats.F(w.PaperIPC8, 2))
	}
	return t, nil
}

// Fig1 reproduces Figure 1: average register lifetime split into the three
// phases, per integer benchmark, on the baseline 4- and 8-wide machines.
func (r *Runner) Fig1(ctx context.Context) (*stats.Table, error) {
	var pts []point
	for _, w := range suite(workloads.Int) {
		pts = append(pts, point{w, machine(4)}, point{w, machine(8)})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: "Figure 1: average register lifetime (cycles) split by phase, baseline",
		Columns: []string{"bench",
			"alloc->wr(4w)", "wr->rd(4w)", "rd->rel(4w)", "total(4w)",
			"alloc->wr(8w)", "wr->rd(8w)", "rd->rel(8w)", "total(8w)"},
	}
	for _, w := range suite(workloads.Int) {
		r4, err := r.RunCtx(ctx, w, machine(4))
		if err != nil {
			return nil, err
		}
		r8, err := r.RunCtx(ctx, w, machine(8))
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name,
			stats.F(r4.AllocToWrite, 1), stats.F(r4.WriteToRead, 1), stats.F(r4.ReadToRelease, 1),
			stats.F(r4.AllocToWrite+r4.WriteToRead+r4.ReadToRelease, 1),
			stats.F(r8.AllocToWrite, 1), stats.F(r8.WriteToRead, 1), stats.F(r8.ReadToRelease, 1),
			stats.F(r8.AllocToWrite+r8.WriteToRead+r8.ReadToRelease, 1))
	}
	return t, nil
}

// Fig2 reproduces Figure 2: the cumulative distribution of operand
// significance — integer operand widths and FP exponent/significand widths —
// measured over the functional instruction stream. The per-benchmark
// analyses are independent, so they fan out over the worker pool.
func (r *Runner) Fig2(ctx context.Context) (*stats.Table, *stats.Table, error) {
	analyze := func(ws []workloads.Workload) ([]*stats.Significance, error) {
		sigs := make([]*stats.Significance, len(ws))
		err := r.forEach(ctx, len(ws), func(i int) error {
			m := emu.New(ws[i].Build(0))
			m.Run(r.Budget.FastForward)
			sigs[i] = stats.Analyze(m, r.Budget.Run)
			return nil
		})
		return sigs, err
	}

	intT := &stats.Table{
		Title:   "Figure 2 (top): cumulative % of integer operands representable in N bits",
		Columns: []string{"bench", "<=4", "<=7", "<=8", "<=10", "<=12", "<=16", "<=24", "<=32", "<=48", "<=64"},
	}
	widths := []int{4, 7, 8, 10, 12, 16, 24, 32, 48, 64}
	intWs := suite(workloads.Int)
	intSigs, err := analyze(intWs)
	if err != nil {
		return nil, nil, err
	}
	for i, w := range intWs {
		row := []string{w.Name}
		for _, n := range widths {
			row = append(row, stats.Pct(intSigs[i].IntFracWithin(n)))
		}
		intT.AddRow(row...)
	}

	fpT := &stats.Table{
		Title:   "Figure 2 (bottom): FP operand field significance",
		Columns: []string{"bench", "trivial(all 0/1)", "exp<=1b", "exp<=4b", "exp<=8b", "sig=0b", "sig<=16b", "sig<=32b"},
	}
	fpWs := suite(workloads.FP)
	fpSigs, err := analyze(fpWs)
	if err != nil {
		return nil, nil, err
	}
	for i, w := range fpWs {
		s := fpSigs[i]
		fpT.AddRow(w.Name,
			stats.Pct(s.FPTrivialFrac()),
			stats.Pct(s.ExpBits.CumulativeFrac(1)),
			stats.Pct(s.ExpBits.CumulativeFrac(4)),
			stats.Pct(s.ExpBits.CumulativeFrac(8)),
			stats.Pct(s.SigBits.CumulativeFrac(0)),
			stats.Pct(s.SigBits.CumulativeFrac(16)),
			stats.Pct(s.SigBits.CumulativeFrac(32)))
	}
	return intT, fpT, nil
}

// Fig8 reproduces Figure 8: lifetime reduction under PRI and PRI+ER versus
// the baseline, integer benchmarks, both widths.
func (r *Runner) Fig8(ctx context.Context) (*stats.Table, error) {
	pols := []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER}
	var pts []point
	for _, w := range suite(workloads.Int) {
		for _, width := range []int{4, 8} {
			for _, pol := range pols {
				pts = append(pts, point{w, machine(width).WithPolicy(pol)})
			}
		}
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: "Figure 8: avg register lifetime (cycles): base vs PRI(rc+ckpt) vs PRI+ER",
		Columns: []string{"bench",
			"base(4w)", "pri(4w)", "pri+er(4w)",
			"base(8w)", "pri(8w)", "pri+er(8w)"},
	}
	total := func(res *Result) string {
		return stats.F(res.AllocToWrite+res.WriteToRead+res.ReadToRelease, 1)
	}
	for _, w := range suite(workloads.Int) {
		row := []string{w.Name}
		for _, width := range []int{4, 8} {
			for _, pol := range pols {
				res, err := r.RunCtx(ctx, w, machine(width).WithPolicy(pol))
				if err != nil {
					return nil, err
				}
				row = append(row, total(res))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig9PRs is the physical register sweep of Figure 9.
var Fig9PRs = []int{40, 48, 56, 64, 72, 80, 96}

// Fig9 reproduces Figure 9: baseline speedup versus register file size,
// normalized to 40 registers, for every benchmark at the given width.
func (r *Runner) Fig9(ctx context.Context, width int) (*stats.Table, error) {
	var pts []point
	for _, w := range workloads.All() {
		for _, n := range Fig9PRs {
			pts = append(pts, point{w, machine(width).WithPRs(n)})
		}
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	cols := []string{"bench"}
	for _, n := range Fig9PRs {
		cols = append(cols, fmt.Sprintf("PR=%d", n))
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 9: register file sensitivity, %d-wide (speedup vs PR=40)", width),
		Columns: cols,
	}
	for _, w := range workloads.All() {
		base, err := r.RunCtx(ctx, w, machine(width).WithPRs(40))
		if err != nil {
			return nil, err
		}
		row := []string{w.Name}
		for _, n := range Fig9PRs {
			res, err := r.RunCtx(ctx, w, machine(width).WithPRs(n))
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(res.IPC/base.IPC, 2))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// speedupTable renders Figures 10 and 12: per-benchmark IPC speedup of each
// scheme over the baseline, plus the arithmetic mean row.
func (r *Runner) speedupTable(ctx context.Context, class workloads.Class, width int, title string) (*stats.Table, error) {
	var pts []point
	for _, w := range suite(class) {
		pts = append(pts, point{w, machine(width).WithPolicy(core.PolicyBase)})
		for _, pol := range core.AllPolicies {
			pts = append(pts, point{w, machine(width).WithPolicy(pol)})
		}
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title: title,
		Columns: []string{"bench", "ER",
			"PRI-rc-ckpt", "PRI-rc-lazy", "PRI-ideal-ckpt", "PRI-ideal-lazy",
			"PRI+ER", "InfPR"},
	}
	sums := make([][]float64, len(core.AllPolicies))
	for _, w := range suite(class) {
		cfg := machine(width)
		base, err := r.RunCtx(ctx, w, cfg.WithPolicy(core.PolicyBase))
		if err != nil {
			return nil, err
		}
		row := []string{w.Name}
		for i, pol := range core.AllPolicies {
			res, err := r.RunCtx(ctx, w, cfg.WithPolicy(pol))
			if err != nil {
				return nil, err
			}
			sp := res.IPC / base.IPC
			sums[i] = append(sums[i], sp)
			row = append(row, stats.F(sp, 3))
		}
		t.AddRow(row...)
	}
	avg := []string{"average"}
	for i := range core.AllPolicies {
		avg = append(avg, stats.F(mean(sums[i]), 3))
	}
	t.AddRow(avg...)
	return t, nil
}

// Fig10 reproduces Figure 10: integer speedups for all seven schemes.
func (r *Runner) Fig10(ctx context.Context, width int) (*stats.Table, error) {
	return r.speedupTable(ctx, workloads.Int, width,
		fmt.Sprintf("Figure 10: PRI speedup, integer benchmarks, %d-wide (IPC / base IPC)", width))
}

// Fig12 reproduces Figure 12: floating-point speedups for all seven schemes.
func (r *Runner) Fig12(ctx context.Context, width int) (*stats.Table, error) {
	return r.speedupTable(ctx, workloads.FP, width,
		fmt.Sprintf("Figure 12: PRI speedup, floating point benchmarks, %d-wide (IPC / base IPC)", width))
}

// Fig11 reproduces Figure 11: average physical register file occupancy for
// base, ER, PRI, and PRI+ER on the integer benchmarks.
func (r *Runner) Fig11(ctx context.Context, width int) (*stats.Table, error) {
	pols := []core.Policy{core.PolicyBase, core.PolicyER, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER}
	var pts []point
	for _, w := range suite(workloads.Int) {
		for _, pol := range pols {
			pts = append(pts, point{w, machine(width).WithPolicy(pol)})
		}
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Figure 11: avg integer PRF occupancy, %d-wide", width),
		Columns: []string{"bench", "base", "ER", "PRI", "PRI+ER"},
	}
	for _, w := range suite(workloads.Int) {
		row := []string{w.Name}
		for _, pol := range pols {
			res, err := r.RunCtx(ctx, w, machine(width).WithPolicy(pol))
			if err != nil {
				return nil, err
			}
			row = append(row, stats.F(res.IntOccupancy, 1))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationRenameInline compares PRI with and without the Section 6
// future-work extension (rename-time inlining of narrow load-immediates).
func (r *Runner) AblationRenameInline(ctx context.Context, width int) (*stats.Table, error) {
	cfgs := func(width int) (ooo.Config, ooo.Config) {
		cfg := machine(width).WithPolicy(core.PolicyPRIRcCkpt)
		ext := cfg
		ext.InlineAtRename = true
		return cfg, ext
	}
	var pts []point
	for _, w := range suite(workloads.Int) {
		cfg, ext := cfgs(width)
		pts = append(pts, point{w, cfg}, point{w, ext})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: rename-time inlining extension, %d-wide", width),
		Columns: []string{"bench", "PRI IPC", "PRI+renameInline IPC", "gain"},
	}
	for _, w := range suite(workloads.Int) {
		cfg, extCfg := cfgs(width)
		basePRI, err := r.RunCtx(ctx, w, cfg)
		if err != nil {
			return nil, err
		}
		ext, err := r.RunCtx(ctx, w, extCfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, stats.F(basePRI.IPC, 3), stats.F(ext.IPC, 3),
			stats.F(ext.IPC/basePRI.IPC, 3))
	}
	return t, nil
}

// AblationDelayedAllocation explores the paper's Section 6 virtual-physical
// direction: baseline vs delayed register allocation vs delayed allocation
// combined with PRI, at the Table 1 register file size.
func (r *Runner) AblationDelayedAllocation(ctx context.Context, width int) (*stats.Table, error) {
	// A 40-register file keeps the writeback gate engaged so the
	// PRI interaction is visible (at 64 registers the gate rarely binds).
	const prs = 40
	cfgs := func(width int) (ooo.Config, ooo.Config, ooo.Config) {
		base := machine(width).WithPRs(prs)
		cfgD := machine(width).WithPRs(prs)
		cfgD.DelayedAllocation = true
		cfgDP := machine(width).WithPolicy(core.PolicyPRIRcLazy).WithPRs(prs)
		cfgDP.DelayedAllocation = true
		return base, cfgD, cfgDP
	}
	var pts []point
	for _, w := range suite(workloads.Int) {
		a, b, c := cfgs(width)
		pts = append(pts, point{w, a}, point{w, b}, point{w, c})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: virtual-physical delayed allocation, %d-wide, %d PRs", width, prs),
		Columns: []string{"bench", "base IPC", "delayed IPC", "delayed+PRI IPC"},
	}
	for _, w := range suite(workloads.Int) {
		cfgB, cfgD, cfgDP := cfgs(width)
		base, err := r.RunCtx(ctx, w, cfgB)
		if err != nil {
			return nil, err
		}
		delayed, err := r.RunCtx(ctx, w, cfgD)
		if err != nil {
			return nil, err
		}
		both, err := r.RunCtx(ctx, w, cfgDP)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, stats.F(base.IPC, 3), stats.F(delayed.IPC, 3), stats.F(both.IPC, 3))
	}
	return t, nil
}

// AblationMSHR bounds memory-level parallelism: the default model overlaps
// misses without limit (as sim-outorder does); this table shows how much of
// the memory-bound benchmarks' throughput that assumption is worth.
func (r *Runner) AblationMSHR(ctx context.Context, width int) (*stats.Table, error) {
	cfgs := func(width int) (ooo.Config, ooo.Config, ooo.Config) {
		cfg8 := machine(width)
		cfg8.Mem.MSHRs = 8
		cfg2 := machine(width)
		cfg2.Mem.MSHRs = 2
		return machine(width), cfg8, cfg2
	}
	var pts []point
	for _, w := range suite(workloads.Int) {
		a, b, c := cfgs(width)
		pts = append(pts, point{w, a}, point{w, b}, point{w, c})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: MSHR-bounded miss overlap, %d-wide baseline", width),
		Columns: []string{"bench", "unlimited IPC", "8 MSHRs", "2 MSHRs"},
	}
	for _, w := range suite(workloads.Int) {
		cfgU, cfg8, cfg2 := cfgs(width)
		unlimited, err := r.RunCtx(ctx, w, cfgU)
		if err != nil {
			return nil, err
		}
		m8, err := r.RunCtx(ctx, w, cfg8)
		if err != nil {
			return nil, err
		}
		m2, err := r.RunCtx(ctx, w, cfg2)
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, stats.F(unlimited.IPC, 3), stats.F(m8.IPC, 3), stats.F(m2.IPC, 3))
	}
	return t, nil
}

// AblationPrefetch adds an idealized next-line data prefetcher to the
// baseline: it shows how much of the streaming benchmarks' miss cost the
// Table 1 machine (which has none) leaves on the table.
func (r *Runner) AblationPrefetch(ctx context.Context, width int) (*stats.Table, error) {
	pfCfg := func(width int) ooo.Config {
		cfg := machine(width)
		cfg.Mem.NextLinePrefetch = true
		return cfg
	}
	var pts []point
	for _, w := range suite(workloads.Int) {
		pts = append(pts, point{w, machine(width)}, point{w, pfCfg(width)})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: next-line data prefetch, %d-wide baseline", width),
		Columns: []string{"bench", "no-prefetch IPC", "prefetch IPC", "gain"},
	}
	for _, w := range suite(workloads.Int) {
		base, err := r.RunCtx(ctx, w, machine(width))
		if err != nil {
			return nil, err
		}
		pf, err := r.RunCtx(ctx, w, pfCfg(width))
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, stats.F(base.IPC, 3), stats.F(pf.IPC, 3), stats.F(pf.IPC/base.IPC, 3))
	}
	return t, nil
}

// AblationDisambiguation compares oracle and conservative memory
// disambiguation on the baseline machine (a documented model choice).
func (r *Runner) AblationDisambiguation(ctx context.Context, width int) (*stats.Table, error) {
	consCfg := func(width int) ooo.Config {
		cfg := machine(width)
		cfg.ConservativeDisambiguation = true
		cfg.Name = cfg.Name + "-consv"
		return cfg
	}
	var pts []point
	for _, w := range suite(workloads.Int) {
		pts = append(pts, point{w, machine(width)}, point{w, consCfg(width)})
	}
	if err := r.warm(ctx, pts); err != nil {
		return nil, err
	}
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: memory disambiguation, %d-wide baseline", width),
		Columns: []string{"bench", "oracle IPC", "conservative IPC", "ratio"},
	}
	for _, w := range suite(workloads.Int) {
		oracle, err := r.RunCtx(ctx, w, machine(width))
		if err != nil {
			return nil, err
		}
		cons, err := r.RunCtx(ctx, w, consCfg(width))
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, stats.F(oracle.IPC, 3), stats.F(cons.IPC, 3),
			stats.F(cons.IPC/oracle.IPC, 3))
	}
	return t, nil
}
