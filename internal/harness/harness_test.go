package harness

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"prisim/internal/core"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

// tinyBudget keeps the unit tests fast; experiment shape is asserted, not
// paper-grade numbers.
var tinyBudget = Budget{FastForward: 500, Run: 4000}

var bg = context.Background()

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("gzip")
	a := r.Run(w, ooo.Width4())
	b := r.Run(w, ooo.Width4())
	if a != b {
		t.Error("identical runs not cached")
	}
	if got := r.RunsExecuted(); got != 1 {
		t.Errorf("RunsExecuted = %d after one unique point, want 1", got)
	}
	c := r.Run(w, ooo.Width4().WithPolicy(core.PolicyPRIRcCkpt))
	if c == a {
		t.Error("different policies shared a cache entry")
	}
	cons := ooo.Width4()
	cons.ConservativeDisambiguation = true
	if r.Run(w, cons) == a {
		t.Error("disambiguation modes shared a cache entry")
	}
}

func TestBudgetViewsShareCache(t *testing.T) {
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("gzip")
	a := r.Run(w, ooo.Width4())
	// Same budget through a view: must hit the same entry.
	if r.WithBudget(tinyBudget).Run(w, ooo.Width4()) != a {
		t.Error("same-budget view missed the shared cache")
	}
	// A different budget is a different point.
	b := r.WithBudget(Budget{FastForward: 500, Run: 2000}).Run(w, ooo.Width4())
	if b == a {
		t.Error("different budgets shared a cache entry")
	}
	if got := r.RunsExecuted(); got != 2 {
		t.Errorf("RunsExecuted = %d, want 2", got)
	}
}

// TestSingleflightDeduplication hammers one Runner with 16 goroutines all
// requesting the same small set of points and asserts each point simulated
// exactly once. Run under -race this also exercises the cache's locking.
func TestSingleflightDeduplication(t *testing.T) {
	r := NewParallelRunner(Budget{FastForward: 200, Run: 1000}, 4)
	w1, _ := workloads.ByName("gzip")
	w2, _ := workloads.ByName("mcf")
	cfgs := []ooo.Config{
		ooo.Width4(),
		ooo.Width4().WithPolicy(core.PolicyPRIRcCkpt),
		ooo.Width8(),
	}
	const goroutines = 16
	results := make([][]*Result, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, w := range []workloads.Workload{w1, w2} {
				for _, cfg := range cfgs {
					res, err := r.RunCtx(bg, w, cfg)
					if err != nil {
						t.Error(err)
						return
					}
					results[g] = append(results[g], res)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.RunsExecuted(); got != 6 {
		t.Errorf("RunsExecuted = %d for 6 unique points hammered by %d goroutines, want 6", got, goroutines)
	}
	// Every goroutine must have observed the identical shared results.
	for g := 1; g < goroutines; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d result %d not shared", g, i)
			}
		}
	}
}

func TestRunCtxCancellation(t *testing.T) {
	// Already-cancelled context: no simulation happens.
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("gzip")
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := r.RunCtx(ctx, w, ooo.Width4()); err != context.Canceled {
		t.Errorf("cancelled RunCtx error = %v", err)
	}
	if r.RunsExecuted() != 0 {
		t.Error("cancelled context still simulated")
	}

	// Mid-run cancellation: a budget far beyond the context deadline must
	// abort between chunks, and the point must remain retryable.
	big := NewRunner(Budget{FastForward: 100, Run: 50_000_000})
	ctx2, cancel2 := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel2()
	if _, err := big.RunCtx(ctx2, w, ooo.Width4()); err == nil {
		t.Fatal("mid-run cancellation did not surface")
	}
	// The cancelled flight was evicted; a fresh context retries cleanly.
	small := big.WithBudget(Budget{FastForward: 100, Run: 1000})
	if _, err := small.RunCtx(bg, w, ooo.Width4()); err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
}

// TestCancelledFlightEvictionWakesWaiter is the direct test of the
// singleflight eviction path: a waiter coalesced onto another caller's
// flight must, when that flight's owner is cancelled, observe the eviction,
// retry as the new owner under its own live context, and succeed — and the
// cancelled attempt must not be counted as executed.
func TestCancelledFlightEvictionWakesWaiter(t *testing.T) {
	r := NewParallelRunner(Budget{FastForward: 100, Run: 3_000_000}, 4)
	w, _ := workloads.ByName("gzip")
	cfg := ooo.Width4()

	ownerCtx, cancelOwner := context.WithCancel(bg)
	ownerErr := make(chan error, 1)
	go func() {
		_, err := r.RunCtx(ownerCtx, w, cfg)
		ownerErr <- err
	}()

	// Wait until the owner has installed its in-flight entry, then attach
	// a waiter with a context that stays live.
	key := r.key(w, cfg)
	for {
		r.s.mu.Lock()
		_, inFlight := r.s.cache[key]
		r.s.mu.Unlock()
		if inFlight {
			break
		}
		time.Sleep(time.Millisecond)
	}
	waiterRes := make(chan *Result, 1)
	waiterErr := make(chan error, 1)
	go func() {
		res, err := r.RunCtx(bg, w, cfg)
		waiterRes <- res
		waiterErr <- err
	}()
	// Give the waiter a moment to coalesce onto the flight, then kill the
	// owner mid-run.
	time.Sleep(10 * time.Millisecond)
	cancelOwner()

	if err := <-ownerErr; err != context.Canceled {
		t.Fatalf("owner error = %v, want context.Canceled", err)
	}
	select {
	case err := <-waiterErr:
		if err != nil {
			t.Fatalf("waiter failed after owner cancellation: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("waiter never woke after the owner's flight was evicted")
	}
	if res := <-waiterRes; res == nil || res.IPC <= 0 {
		t.Fatalf("waiter result = %+v", res)
	}
	// Only the waiter's retry executed; the cancelled flight was evicted
	// and must not be counted.
	if got := r.RunsExecuted(); got != 1 {
		t.Errorf("RunsExecuted = %d after cancel+retry, want 1", got)
	}
	// The cache now holds a completed entry: another request is a pure hit.
	if _, err := r.RunCtx(bg, w, cfg); err != nil {
		t.Fatal(err)
	}
	if cs := r.CacheStats(); cs.Hits < 1 || cs.Executed != 1 {
		t.Errorf("CacheStats = %+v, want >=1 hit and exactly 1 execution", cs)
	}
}

// TestProgressView asserts per-view progress accounting: the view counts
// its own resolved points, completed-entry cache hits fire nothing, and a
// second view is independent.
func TestProgressView(t *testing.T) {
	r := NewRunner(tinyBudget)
	w4, w8 := ooo.Width4(), ooo.Width8()
	w, _ := workloads.ByName("gzip")

	var mu sync.Mutex
	var got [][2]int
	v := r.ProgressView(func(done, total int) {
		mu.Lock()
		got = append(got, [2]int{done, total})
		mu.Unlock()
	})
	v.Run(w, w4)
	v.Run(w, w8)
	v.Run(w, w4) // completed-entry hit: no event
	if len(got) != 2 || got[0] != [2]int{1, 1} || got[1] != [2]int{2, 2} {
		t.Errorf("view progress events = %v, want [[1 1] [2 2]]", got)
	}
	// The budget view must keep reporting to the same hook.
	v.WithBudget(Budget{FastForward: 200, Run: 900}).Run(w, w4)
	if len(got) != 3 || got[2] != [2]int{3, 3} {
		t.Errorf("after budget view, events = %v", got)
	}
	// A fresh view starts from zero while sharing the cache (all hits: no
	// events).
	var other [][2]int
	v2 := r.ProgressView(func(done, total int) { other = append(other, [2]int{done, total}) })
	v2.Run(w, w4)
	if len(other) != 0 {
		t.Errorf("second view saw events for pure cache hits: %v", other)
	}
}

// TestParallelMatchesSerial asserts the headline property: a figure
// regenerated on a multi-worker pool is byte-identical to the single-worker
// (serial order) run.
func TestParallelMatchesSerial(t *testing.T) {
	b := Budget{FastForward: 300, Run: 1500}
	serial, err := NewParallelRunner(b, 1).Fig8(bg)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewParallelRunner(b, 8).Fig8(bg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel fig8 differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestProgressCallback(t *testing.T) {
	r := NewRunner(tinyBudget)
	var mu sync.Mutex
	var dones []int
	r.OnProgress(func(done, total int) {
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
	})
	w, _ := workloads.ByName("gzip")
	r.Run(w, ooo.Width4())
	r.Run(w, ooo.Width4()) // cache hit: no callback
	r.Run(w, ooo.Width8())
	if len(dones) != 2 {
		t.Fatalf("progress callback fired %d times, want 2", len(dones))
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("bzip2")
	res := r.Run(w, ooo.Width4())
	if res.IPC <= 0 || res.IPC > 4 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Error("empty run")
	}
	if res.IntOccupancy < 32 || res.IntOccupancy > 64 {
		t.Errorf("occupancy = %v", res.IntOccupancy)
	}
	if res.AllocToWrite+res.WriteToRead+res.ReadToRelease <= 0 {
		t.Error("no lifetime data")
	}
}

func TestRunProgram(t *testing.T) {
	w, _ := workloads.ByName("gzip")
	res, _, err := RunProgram(bg, ooo.Width4(), w.Build(0), false,
		Budget{FastForward: 100, Run: 2000}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Committed == 0 {
		t.Errorf("empty program run: %+v", res)
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"ROB", "512", "scheduler", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	r := NewRunner(tinyBudget)
	intT, fpT, err := r.Fig2(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(intT.Rows) != 13 || len(fpT.Rows) != 14 {
		t.Errorf("fig2 rows: %d int, %d fp", len(intT.Rows), len(fpT.Rows))
	}
	// The last integer column is <=64 bits: must be 100%.
	for _, row := range intT.Rows {
		if row[len(row)-1] != "100.0%" {
			t.Errorf("%s: <=64-bit fraction = %s", row[0], row[len(row)-1])
		}
	}
}

func TestSpeedupTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 500, Run: 2500})
	// Restrict to a subset by running the full Fig10 at a tiny budget.
	tb, err := r.Fig10(bg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 14 { // 13 benchmarks + average
		t.Fatalf("fig10 rows = %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "average" {
		t.Errorf("last row = %v", last[0])
	}
	if len(tb.Columns) != 8 {
		t.Errorf("fig10 columns = %d", len(tb.Columns))
	}
}

func TestFig9Normalization(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 200, Run: 1500})
	tb, err := r.Fig9(bg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 27 {
		t.Fatalf("fig9 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "1.00" {
			t.Errorf("%s: PR=40 column = %s, want 1.00", row[0], row[1])
		}
	}
}

func TestExperimentCancellationMidSweep(t *testing.T) {
	// A sweep large enough that cancellation lands mid-flight.
	r := NewRunner(Budget{FastForward: 2000, Run: 50_000})
	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := r.Fig8(ctx)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled Fig8 returned no error")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled Fig8 did not return")
	}
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil)")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestShapeChecksMostlyPass(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 4000, Run: 10000})
	checks, err := r.CheckShapes(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 15 {
		t.Fatalf("only %d shape checks", len(checks))
	}
	pass := 0
	for _, c := range checks {
		if c.Pass {
			pass++
		} else {
			t.Logf("shape check failed (may be budget noise): %s — %s", c.Name, c.Note)
		}
	}
	// At a reduced budget a couple of checks can be noisy, but the bulk
	// must hold or the model has regressed.
	if pass*4 < len(checks)*3 {
		t.Errorf("only %d/%d shape checks passed", pass, len(checks))
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 300, Run: 1200})
	var sb strings.Builder
	if err := r.WriteReport(bg, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "Figure 10", "Shape checklist", "checks passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
