package harness

import (
	"strings"
	"testing"

	"prisim/internal/core"
	"prisim/internal/ooo"
	"prisim/internal/workloads"
)

// tinyBudget keeps the unit tests fast; experiment shape is asserted, not
// paper-grade numbers.
var tinyBudget = Budget{FastForward: 500, Run: 4000}

func TestRunnerCaching(t *testing.T) {
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("gzip")
	a := r.Run(w, ooo.Width4())
	b := r.Run(w, ooo.Width4())
	if a != b {
		t.Error("identical runs not cached")
	}
	c := r.Run(w, ooo.Width4().WithPolicy(core.PolicyPRIRcCkpt))
	if c == a {
		t.Error("different policies shared a cache entry")
	}
	cons := ooo.Width4()
	cons.ConservativeDisambiguation = true
	if r.Run(w, cons) == a {
		t.Error("disambiguation modes shared a cache entry")
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	r := NewRunner(tinyBudget)
	w, _ := workloads.ByName("bzip2")
	res := r.Run(w, ooo.Width4())
	if res.IPC <= 0 || res.IPC > 4 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Error("empty run")
	}
	if res.IntOccupancy < 32 || res.IntOccupancy > 64 {
		t.Errorf("occupancy = %v", res.IntOccupancy)
	}
	if res.AllocToWrite+res.WriteToRead+res.ReadToRelease <= 0 {
		t.Error("no lifetime data")
	}
}

func TestTable1Static(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"ROB", "512", "scheduler", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	r := NewRunner(tinyBudget)
	intT, fpT := r.Fig2()
	if len(intT.Rows) != 13 || len(fpT.Rows) != 14 {
		t.Errorf("fig2 rows: %d int, %d fp", len(intT.Rows), len(fpT.Rows))
	}
	// The last integer column is <=64 bits: must be 100%.
	for _, row := range intT.Rows {
		if row[len(row)-1] != "100.0%" {
			t.Errorf("%s: <=64-bit fraction = %s", row[0], row[len(row)-1])
		}
	}
}

func TestSpeedupTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 500, Run: 2500})
	// Restrict to a subset by running the full Fig10 at a tiny budget.
	tb := r.Fig10(4)
	if len(tb.Rows) != 14 { // 13 benchmarks + average
		t.Fatalf("fig10 rows = %d", len(tb.Rows))
	}
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "average" {
		t.Errorf("last row = %v", last[0])
	}
	if len(tb.Columns) != 8 {
		t.Errorf("fig10 columns = %d", len(tb.Columns))
	}
}

func TestFig9Normalization(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 200, Run: 1500})
	tb := r.Fig9(4)
	if len(tb.Rows) != 27 {
		t.Fatalf("fig9 rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "1.00" {
			t.Errorf("%s: PR=40 column = %s, want 1.00", row[0], row[1])
		}
	}
}

func TestMeanHelper(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil)")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean wrong")
	}
}

func TestShapeChecksMostlyPass(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 4000, Run: 10000})
	checks := r.CheckShapes()
	if len(checks) < 15 {
		t.Fatalf("only %d shape checks", len(checks))
	}
	pass := 0
	for _, c := range checks {
		if c.Pass {
			pass++
		} else {
			t.Logf("shape check failed (may be budget noise): %s — %s", c.Name, c.Note)
		}
	}
	// At a reduced budget a couple of checks can be noisy, but the bulk
	// must hold or the model has regressed.
	if pass*4 < len(checks)*3 {
		t.Errorf("only %d/%d shape checks passed", pass, len(checks))
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	r := NewRunner(Budget{FastForward: 300, Run: 1200})
	var sb strings.Builder
	if err := r.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "Figure 10", "Shape checklist", "checks passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
