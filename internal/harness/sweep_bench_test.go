package harness

import (
	"context"
	"testing"

	"prisim/internal/core"
	"prisim/internal/workloads"
)

// sweepRunPerPoint is the measured budget per sweep point in
// BenchmarkSweepFig8Mix. Keep in sync with cmd/priexp's -timing sweep,
// which records the points/s floor this benchmark is gated against.
const sweepRunPerPoint = 8000

// sweepFig8MixPoints is the gate's fig8-shaped matrix: every integer
// workload at 8 policy points (4 rename policies × both widths), so one
// fast-forward snapshot per workload serves its 7 sibling points.
func sweepFig8MixPoints() []point {
	pols := []core.Policy{core.PolicyBase, core.PolicyER, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER}
	var pts []point
	for _, w := range suite(workloads.Int) {
		for _, width := range []int{4, 8} {
			for _, pol := range pols {
				pts = append(pts, point{w, machine(width).WithPolicy(pol)})
			}
		}
	}
	return pts
}

// BenchmarkSweepFig8Mix measures end-to-end sweep throughput — points per
// wall-clock second — of a cold fig8-mix sweep with the snapshot layer
// enabled. Each iteration builds a fresh Runner so every point's pipeline
// construction, snapshot build or clone, and measured run all land inside
// the timed region; nothing is served from a previous iteration's caches.
// CI gates the best of three iterations at a fraction of
// BENCH_harness.json's acceptance.sweep_points_per_sec_floor (make
// sweepgate, via cmd/benchgate).
func BenchmarkSweepFig8Mix(b *testing.B) {
	ctx := context.Background()
	pts := sweepFig8MixPoints()
	workloadCount := len(suite(workloads.Int))
	for i := 0; i < b.N; i++ {
		r := NewParallelRunner(Budget{FastForward: DefaultBudget.FastForward, Run: sweepRunPerPoint}, 0)
		if err := r.warm(ctx, pts); err != nil {
			b.Fatal(err)
		}
		if cs := r.CacheStats(); cs.SnapshotHits != len(pts)-workloadCount {
			b.Fatalf("snapshot hits = %d, want points-workloads = %d",
				cs.SnapshotHits, len(pts)-workloadCount)
		}
	}
	b.ReportMetric(float64(len(pts))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
}
