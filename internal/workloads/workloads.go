// Package workloads provides the 27 synthetic benchmark kernels standing in
// for the paper's SPEC2000 suite (13 integer runs including both vpr inputs,
// and 14 floating point). Each kernel implements the algorithmic idiom of
// its namesake — LZ77 hash chains for gzip, network-simplex arc scans for
// mcf, MD neighbor lists for ammp, shallow-water stencils for swim — with
// working-set sizes chosen to land in the same cache/memory regime, so the
// register-pressure and operand-width behaviour the paper measures is
// recreated rather than assumed.
//
// Kernels are deterministic (fixed xorshift seeds), self-checking (each
// stores a checksum at the "checksum" symbol before HALT), and scalable via
// the iteration parameter to Build.
package workloads

import (
	"fmt"
	"math"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// Class separates the paper's two benchmark suites.
type Class uint8

// Benchmark suite classes.
const (
	Int Class = iota
	FP
)

func (c Class) String() string {
	if c == FP {
		return "fp"
	}
	return "int"
}

// Workload is one synthetic benchmark.
type Workload struct {
	Name  string
	Class Class
	// What the kernel does and which SPEC2000 program it stands in for.
	Description string
	// PaperIPC4 and PaperIPC8 are the paper's Table 2 baseline IPCs, kept
	// for the paper-vs-measured comparison in EXPERIMENTS.md.
	PaperIPC4, PaperIPC8 float64
	// DefaultIters produces a dynamic instruction count comfortably above
	// the default measurement budget.
	DefaultIters int
	build        func(iters int) *asm.Program
}

// Build assembles the kernel with the given outer iteration count (0 uses
// DefaultIters).
func (w Workload) Build(iters int) *asm.Program {
	if iters <= 0 {
		iters = w.DefaultIters
	}
	return w.build(iters)
}

var registry []Workload

func register(w Workload) {
	for _, r := range registry {
		if r.Name == w.Name {
			panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
		}
	}
	registry = append(registry, w)
}

// All returns every workload, integer suite first, in the paper's order.
func All() []Workload { return append([]Workload(nil), registry...) }

// Integer returns the 13 integer workloads.
func Integer() []Workload { return filter(Int) }

// FloatingPoint returns the 14 floating-point workloads.
func FloatingPoint() []Workload { return filter(FP) }

func filter(c Class) []Workload {
	var out []Workload
	for _, w := range registry {
		if w.Class == c {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (Workload, bool) {
	for _, w := range registry {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// xorshift is the deterministic generator used for all synthetic data.
type xorshift uint64

func newRand(seed uint64) *xorshift {
	x := xorshift(seed | 1)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

func (x *xorshift) float(lo, hi float64) float64 {
	return lo + (hi-lo)*float64(x.next()%(1<<24))/float64(1<<24)
}

// randWords fills a slice with bounded random values.
func randWords(r *xorshift, n int, mod uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		v := r.next()
		if mod != 0 {
			v %= mod
		}
		out[i] = v
	}
	return out
}

// randFloats generates values in [lo, hi) with the given fraction of exact
// zeroes — SPEC2000 fp operands are roughly half zero (the paper's Figure
// 2), and that sparsity is what FP inlining exploits.
func randFloats(r *xorshift, n int, lo, hi, zeroFrac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if float64(r.next()%1000)/1000 < zeroFrac {
			continue
		}
		out[i] = r.float(lo, hi)
	}
	return out
}

// permutationRing writes a single-cycle pointer ring with the given byte
// stride between successive elements: ring[i] holds the address of the next
// element. Chasing it serializes on memory latency when the stride defeats
// the caches.
func permutationRing(base uint64, n, idxStride int) []uint64 {
	ring := make([]uint64, n)
	for i := 0; i < n; i++ {
		next := (i + idxStride) % n
		ring[i] = base + 8*uint64(next)
	}
	return ring
}

// kernel is the shared scaffolding: prologue that loads the iteration count
// into iterReg, an outer loop label, and an epilogue that stores checksumReg
// to the "checksum" symbol and halts.
type kernel struct {
	b        *asm.Builder
	iters    int
	checksum isa.Reg
	iterReg  isa.Reg
}

// spice emits a short biased conditional over v — the value-dependent
// branches that pepper real compiled code every few instructions. Each one
// costs a rename-map checkpoint, which is what gives the paper's release
// schemes their distinct pin dynamics; kernels sprinkle these through their
// unrolled windows to match real branch density (~1 per 6 instructions).
// The branch is taken when v's three low bits are all zero (biased ~7:1
// not-taken but data-dependent, so it mispredicts at realistic rates),
// and the taken side folds v into the checksum.
func (k *kernel) spice(v isa.Reg, label string) {
	b := k.b
	b.RI(isa.OpANDI, isa.IntReg(28), v, 7)
	b.Bnez(isa.IntReg(28), label)
	b.RR(isa.OpADD, k.checksum, k.checksum, v)
	b.Label(label)
}

// Conventional registers shared by all kernels.
var (
	rIter  = isa.IntReg(25) // outer-loop downcounter
	rSum   = isa.IntReg(24) // running checksum
	rBaseA = isa.IntReg(23)
	rBaseB = isa.IntReg(22)
	rBaseC = isa.IntReg(21)
)

func newKernel(iters int) *kernel {
	return &kernel{b: asm.NewBuilder(), iters: iters, checksum: rSum, iterReg: rIter}
}

// begin emits the prologue. Data must be declared before calling; kernel-
// specific setup (base address loads) goes between begin and loop.
func (k *kernel) begin() {
	b := k.b
	b.Space("checksum", 8)
	b.Label("main")
	b.Li(k.iterReg, int64(k.iters))
	b.Li(k.checksum, 0)
}

// loop marks the top of the outer loop.
func (k *kernel) loop() { k.b.Label("outer") }

// end emits the outer-loop back edge and the checksum epilogue.
func (k *kernel) end() *asm.Program {
	b := k.b
	b.RI(isa.OpADDI, k.iterReg, k.iterReg, -1)
	b.Bnez(k.iterReg, "outer")
	tmp := isa.IntReg(1)
	b.La(tmp, "checksum")
	b.Store(isa.OpSTQ, k.checksum, tmp, 0)
	b.Halt()
	return b.MustFinish()
}

// Checksum reads the kernel's stored checksum from a finished machine's
// memory (for self-check tests).
func Checksum(prog *asm.Program, read func(addr uint64) uint64) uint64 {
	return read(prog.Symbols["checksum"])
}

func fbits(v float64) uint64 { return math.Float64bits(v) }
