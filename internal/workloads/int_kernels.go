package workloads

import (
	"fmt"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// Short aliases for the opcodes the kernels lean on.
const (
	opADD  = isa.OpADD
	opSUB  = isa.OpSUB
	opMUL  = isa.OpMUL
	opAND  = isa.OpAND
	opOR   = isa.OpOR
	opXOR  = isa.OpXOR
	opSLL  = isa.OpSLL
	opSRL  = isa.OpSRL
	opADDI = isa.OpADDI
	opANDI = isa.OpANDI
	opORI  = isa.OpORI
	opXORI = isa.OpXORI
	opSLLI = isa.OpSLLI
	opSRLI = isa.OpSRLI
	opSRAI = isa.OpSRAI
	opSLT  = isa.OpSLT
	opSLTU = isa.OpSLTU
	opLDQ  = isa.OpLDQ
	opLDL  = isa.OpLDL
	opLDB  = isa.OpLDB
	opLDBU = isa.OpLDBU
	opSTQ  = isa.OpSTQ
	opSTL  = isa.OpSTL
	opSTB  = isa.OpSTB
	opFLD  = isa.OpFLD
	opFST  = isa.OpFST
	opBEQ  = isa.OpBEQ
	opBNE  = isa.OpBNE
	opBLT  = isa.OpBLT
	opBGE  = isa.OpBGE
	opBLTU = isa.OpBLTU
)

func r(i int) isa.Reg { return isa.IntReg(i) }
func f(i int) isa.Reg { return isa.FPReg(i) }

// The kernels below mimic -O4 compiled code: hot inner loops are unrolled
// with rotated register windows, so a value's destination register is not
// rewritten again for 40+ dynamic instructions. That register-reuse
// distance is what lets retire-time inlining pass its WAW check (the
// paper's Figure 7) on real SPEC binaries, and the synthetic kernels must
// reproduce it to reproduce the paper's effect.

func init() {
	register(Workload{
		Name: "bzip2", Class: Int, PaperIPC4: 1.62, PaperIPC8: 1.67,
		Description:  "run-length + frequency-table byte compressor over a 192KB block, 4x unrolled (stands in for bzip2's BWT/MTF passes)",
		DefaultIters: 600, build: buildBzip2,
	})
}

func buildBzip2(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xB21F)
	n := 192 << 10
	data := make([]byte, n)
	var cur byte
	run := 0
	for i := range data {
		if run == 0 {
			cur = byte(rng.next() % 96) // text-like alphabet: narrow symbols
			run = 1 + rng.intn(6)
		}
		data[i] = cur
		run--
	}
	b.Bytes("block", data)
	b.Space("freq", 1024)
	k.begin()
	b.La(rBaseA, "block")
	b.La(rBaseB, "freq")
	k.loop()
	// 1KB chunk selected by the outer counter; 4 bytes per inner pass,
	// each byte through its own register window.
	b.RI(opANDI, r(1), rIter, 127)
	b.RI(opSLLI, r(1), r(1), 10)
	b.RR(opADD, r(1), rBaseA, r(1)) // p
	b.Li(r(2), 256)                 // groups of 4: narrow downcounter
	b.Li(r(3), 0)                   // previous symbol
	b.Label("inner")
	for u := 0; u < 4; u++ {
		w := 4 + 4*u // window: w..w+3
		b.Load(opLDBU, r(w), r(1), int64(u))
		b.RR(opSUB, r(w+1), r(w), r(3)) // delta to previous symbol: narrow
		b.RR(opADD, rSum, rSum, r(w+1))
		// Frequency bump: narrow counters in memory.
		b.RI(opSLLI, r(w+2), r(w), 2)
		b.RR(opADD, r(w+2), rBaseB, r(w+2))
		b.Load(opLDL, r(w+3), r(w+2), 0)
		b.RI(opADDI, r(w+3), r(w+3), 1)
		b.Store(opSTL, r(w+3), r(w+2), 0)
		k.spice(r(w+1), fmt.Sprintf("zA%d", u))
		k.spice(r(w+3), fmt.Sprintf("zB%d", u))
		b.Mov(r(3), r(w))
	}
	b.RR(opADD, rSum, rSum, r(7))
	b.RR(opADD, rSum, rSum, r(19))
	b.RI(opADDI, r(1), r(1), 4)
	b.RI(opADDI, r(2), r(2), -1)
	b.Bnez(r(2), "inner")
	return k.end()
}

func init() {
	register(Workload{
		Name: "crafty", Class: Int, PaperIPC4: 1.35, PaperIPC8: 1.40,
		Description:  "bitboard move generation: De Bruijn LSB extraction and attack-table lookups, three bits in flight (stands in for crafty)",
		DefaultIters: 12000, build: buildCrafty,
	})
}

func buildCrafty(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xC4AF)
	b.Words("attacks", randWords(rng, 64, 0))
	b.Words("mobility", randWords(rng, 64, 28)) // small mobility scores
	k.begin()
	b.La(rBaseA, "attacks")
	b.La(rBaseB, "mobility")
	b.Li(r(19), 285870213051386505) // De Bruijn multiplier 0x03F79D71B4CA8B09
	b.Li(r(18), -7046029254386353131)
	b.Li(r(20), -81986143110479856) // occupancy bitboard
	b.Li(r(17), 0)
	k.loop()
	// Evolve the board (wide values).
	b.RR(opXOR, r(20), r(20), r(18))
	b.RR(opXOR, r(20), r(20), r(17)) // feedback from the last attack mask
	b.RI(opSLLI, r(1), r(20), 13)
	b.RR(opXOR, r(20), r(20), r(1))
	b.RI(opSRLI, r(1), r(20), 7)
	b.RR(opXOR, r(20), r(20), r(1))
	b.Mov(r(2), r(20))
	// Pop three bits per pass, each through its own register window; the
	// square indices are 6-bit narrow values with long lifetimes.
	b.Label("bits")
	b.Beqz(r(2), "done")
	for u := 0; u < 3; u++ {
		w := 3 + 5*u // window: w..w+4
		b.RR(opSUB, r(w), isa.RZero, r(2))
		b.RR(opAND, r(w), r(w), r(2)) // isolated LSB
		b.RR(opMUL, r(w+1), r(w), r(19))
		b.RI(opSRLI, r(w+1), r(w+1), 58) // square index: narrow
		b.RI(opSLLI, r(w+2), r(w+1), 3)
		b.RR(opADD, r(w+2), rBaseA, r(w+2))
		b.Load(opLDQ, r(w+3), r(w+2), 0) // attack mask: wide
		b.Mov(r(17), r(w+3))
		// Second-level mobility lookup chained through the mask.
		b.RI(opANDI, r(w+4), r(w+3), 63)
		b.RI(opSLLI, r(w+4), r(w+4), 3)
		b.RR(opADD, r(w+4), rBaseB, r(w+4))
		b.Load(opLDQ, r(w+4), r(w+4), 0) // mobility score: narrow
		b.RR(opXOR, r(2), r(2), r(w))    // clear LSB
		b.RR(opADD, rSum, rSum, r(w+4))
		b.RR(opXOR, rSum, rSum, r(w+3))
		b.RR(opADD, rSum, rSum, r(w+1))
		k.spice(r(w+1), fmt.Sprintf("cf%d", u))
		if u < 2 {
			b.Beqz(r(2), "done")
		}
	}
	b.Jmp("bits")
	b.Label("done")
	return k.end()
}

func init() {
	register(Workload{
		Name: "eon", Class: Int, PaperIPC4: 1.81, PaperIPC8: 2.11,
		Description:  "fixed-point ray/sphere intersection pairs with high ILP (stands in for eon's probabilistic ray tracer)",
		DefaultIters: 40000, build: buildEon,
	})
}

func buildEon(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xE0FF)
	b.Words("spheres", randWords(rng, 4*64, 1<<18))
	k.begin()
	b.La(rBaseA, "spheres")
	b.Li(r(19), 0x10000) // ray origin components
	b.Li(r(18), 0x08000)
	k.loop()
	// Two spheres per pass, independent register windows (w..w+7).
	b.RI(opANDI, r(1), rIter, 31)
	b.RI(opSLLI, r(1), r(1), 6)
	b.RR(opADD, r(1), rBaseA, r(1))
	for u := 0; u < 2; u++ {
		w := 2 + 8*u
		off := int64(32 * u)
		b.Load(opLDQ, r(w), r(1), off)
		b.Load(opLDQ, r(w+1), r(1), off+8)
		b.Load(opLDQ, r(w+2), r(1), off+24)
		b.RR(opSUB, r(w+3), r(w), r(19))
		b.RR(opSUB, r(w+4), r(w+1), r(18))
		b.RR(opMUL, r(w+5), r(w+3), r(w+3))
		b.RR(opMUL, r(w+6), r(w+4), r(w+4))
		b.RR(opADD, r(w+5), r(w+5), r(w+6))
		b.RR(opMUL, r(w+7), r(w+2), r(w+2))
		b.RI(opSRAI, r(w+5), r(w+5), 26) // quantized distance: narrow
		b.RI(opSRAI, r(w+7), r(w+7), 26)
		b.RR(opSLT, r(w+6), r(w+5), r(w+7)) // hit flag: narrow, long-lived
		k.spice(r(w+5), fmt.Sprintf("eo%d", u))
	}
	b.RR(opADD, rSum, rSum, r(8))  // window 0 hit flag
	b.RR(opADD, rSum, rSum, r(16)) // window 1 hit flag
	b.RR(opADD, rSum, rSum, r(7))
	b.Br(opBLT, r(7), r(15), "miss")
	b.RI(opADDI, rSum, rSum, 3)
	b.Label("miss")
	return k.end()
}

func init() {
	register(Workload{
		Name: "gap", Class: Int, PaperIPC4: 1.55, PaperIPC8: 1.59,
		Description:  "arbitrary-precision arithmetic: carry-propagating multi-limb adds over 64KB bignums, 2x unrolled (stands in for gap)",
		DefaultIters: 3000, build: buildGap,
	})
}

func buildGap(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x6A9)
	limbs := 1024
	b.Words("bigA", randWords(rng, limbs, 0))
	b.Words("bigB", randWords(rng, limbs, 0))
	b.Space("bigC", uint64(8*limbs))
	k.begin()
	b.La(rBaseA, "bigA")
	b.La(rBaseB, "bigB")
	b.La(rBaseC, "bigC")
	b.Li(r(18), 37) // multiplier digit: narrow, loop-invariant
	k.loop()
	// C = A + B*digit, two limbs per pass with rotated windows; the carry bits
	// are 1-bit values that live across the whole window.
	b.Mov(r(1), rBaseA)
	b.Mov(r(2), rBaseB)
	b.Mov(r(3), rBaseC)
	b.Li(r(4), int64(limbs/2)) // pair count: narrow downcounter
	b.Li(r(5), 0)              // carry
	b.Label("addloop")
	for u := 0; u < 2; u++ {
		w := 6 + 6*u
		off := int64(8 * u)
		b.Load(opLDQ, r(w), r(1), off)
		b.Load(opLDQ, r(w+1), r(2), off)
		b.RR(opMUL, r(w+1), r(w+1), r(18)) // scale B by the digit
		b.RR(opADD, r(w+2), r(w), r(w+1))
		b.RR(opSLTU, r(w+3), r(w+2), r(w)) // carry out: narrow
		b.RR(opADD, r(w+4), r(w+2), r(5))
		b.RR(opSLTU, r(w+5), r(w+4), r(w+2))
		b.RR(opOR, r(5), r(w+3), r(w+5))
		b.Store(opSTQ, r(w+4), r(3), off)
		k.spice(r(w+4), fmt.Sprintf("gp%d", u))
	}
	b.RR(opADD, rSum, rSum, r(5))
	b.RI(opADDI, r(1), r(1), 16)
	b.RI(opADDI, r(2), r(2), 16)
	b.RI(opADDI, r(3), r(3), 16)
	b.RR(opADD, r(18), r(18), r(5)) // next digit depends on the carry
	b.RI(opADDI, r(4), r(4), -1)
	b.Bnez(r(4), "addloop")
	b.RR(opADD, rSum, rSum, r(16))
	return k.end()
}

func init() {
	register(Workload{
		Name: "gcc", Class: Int, PaperIPC4: 1.16, PaperIPC8: 1.23,
		Description:  "pointer-heavy IR walk: explicit-stack traversal of a 2MB expression tree with per-kind dispatch (stands in for gcc)",
		DefaultIters: 2500, build: buildGcc,
	})
}

func buildGcc(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x6CC)
	// Nodes: kind(8) left(8) right(8) val(8) = 32 bytes; 64K nodes = 2MB.
	nNodes := 64 << 10
	base := uint64(asm.DefaultDataBase)
	nodes := make([]uint64, 4*nNodes)
	addrOf := func(i int) uint64 { return base + uint64(32*i) }
	hot := 1 << 10 // 32KB hot subtree absorbs most pointers
	pick := func() int {
		if rng.intn(100) < 85 {
			return rng.intn(hot)
		}
		return rng.intn(nNodes)
	}
	for i := 0; i < nNodes; i++ {
		// Kind mix skewed like real IR: mostly leaves and unary nodes,
		// keeping the dispatch branches predictable.
		kind := uint64(3)
		switch p := rng.intn(100); {
		case p < 10:
			kind = 0
		case p < 30:
			kind = 1
		case p < 45:
			kind = 2
		}
		nodes[4*i] = kind
		nodes[4*i+1] = addrOf(pick())
		nodes[4*i+2] = addrOf(pick())
		nodes[4*i+3] = rng.next() % 100 // narrow payloads
	}
	b.Words("nodes", nodes)
	b.Space("stack", 8*4096)
	k.begin()
	b.La(rBaseA, "nodes")
	b.La(rBaseB, "stack")
	k.loop()
	// Seed the stack with one node chosen by the counter; walk 64 steps.
	// The walk alternates between two register windows, so kinds, depths,
	// and payloads survive across two dispatch rounds.
	b.Li(r(2), 0) // stack depth: narrow
	for sSeed := 0; sSeed < 6; sSeed++ {
		b.RI(opANDI, r(1), rIter, 0x3FF)
		b.RI(opADDI, r(1), r(1), int64(sSeed*97))
		b.RI(opSLLI, r(1), r(1), 5)
		b.RR(opADD, r(1), rBaseA, r(1))
		b.RI(opSLLI, r(17), r(2), 3)
		b.RR(opADD, r(17), rBaseB, r(17))
		b.Store(opSTQ, r(1), r(17), 0)
		b.RI(opADDI, r(2), r(2), 1)
	}
	b.Li(r(3), 48) // step budget: narrow
	for u := 0; u < 2; u++ {
		w := 4 + 7*u // window w..w+6
		lbl := fmt.Sprintf("walk%d", u)
		nxt := fmt.Sprintf("walk%d", 1-u)
		b.Label(lbl)
		b.Beqz(r(2), "wdone")
		b.Beqz(r(3), "wdone")
		b.RI(opADDI, r(3), r(3), -1)
		b.RI(opADDI, r(2), r(2), -1)
		b.RI(opSLLI, r(w), r(2), 3)
		b.RR(opADD, r(w), rBaseB, r(w))
		b.Load(opLDQ, r(w+1), r(w), 0)   // node pointer
		b.Load(opLDQ, r(w+2), r(w+1), 0) // kind: narrow
		b.Load(opLDQ, r(w+3), r(w+1), 24)
		b.RR(opADD, rSum, rSum, r(w+3))
		b.RI(isa.OpSLTI, r(w+4), r(w+2), 2)
		b.Beqz(r(w+4), "hi"+lbl)
		// Kind 0/1: push the left child.
		b.Load(opLDQ, r(w+5), r(w+1), 8)
		b.RI(opSLLI, r(w+6), r(2), 3)
		b.RR(opADD, r(w+6), rBaseB, r(w+6))
		b.Store(opSTQ, r(w+5), r(w+6), 0)
		b.RI(opADDI, r(2), r(2), 1)
		b.Bnez(r(w+2), nxt) // kind 1: left only
		b.Label("hi" + lbl)
		// Kind 0 or 2: push the right child (kind 3 is a leaf).
		b.Li(r(w+4), 3)
		b.Br(opBEQ, r(w+2), r(w+4), nxt)
		b.Load(opLDQ, r(w+5), r(w+1), 16)
		b.RI(opSLLI, r(w+6), r(2), 3)
		b.RR(opADD, r(w+6), rBaseB, r(w+6))
		b.Store(opSTQ, r(w+5), r(w+6), 0)
		b.RI(opADDI, r(2), r(2), 1)
		b.Jmp(nxt)
	}
	b.Label("wdone")
	return k.end()
}

func init() {
	register(Workload{
		Name: "gzip", Class: Int, PaperIPC4: 1.51, PaperIPC8: 1.54,
		Description:  "LZ77 hash-chain match search over a 64KB window with straight-line match scoring (stands in for gzip's deflate loop)",
		DefaultIters: 25000, build: buildGzip,
	})
}

func buildGzip(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x6219)
	win := 64 << 10
	data := make([]byte, win)
	for i := range data {
		if i > 64 && rng.intn(4) == 0 {
			data[i] = data[i-rng.intn(60)-1]
		} else {
			data[i] = byte('a' + rng.intn(26))
		}
	}
	b.Bytes("window", data)
	b.Words("heads", make([]uint64, 8192))
	k.begin()
	b.La(rBaseA, "window")
	b.La(rBaseB, "heads")
	b.Li(r(20), 8191)
	k.loop()
	// Position from counter.
	b.Li(r(1), 0xFFF0)
	b.RR(opAND, r(1), rIter, r(1))
	b.RR(opADD, r(1), rBaseA, r(1)) // p
	// hash = bytes[0..2] mixed down to 13 bits; each byte in its own
	// register (narrow, long-lived).
	b.Load(opLDBU, r(2), r(1), 0)
	b.Load(opLDBU, r(3), r(1), 1)
	b.Load(opLDBU, r(4), r(1), 2)
	b.RI(opSLLI, r(5), r(2), 5)
	b.RR(opXOR, r(5), r(5), r(3))
	b.RI(opSLLI, r(6), r(5), 5)
	b.RR(opXOR, r(6), r(6), r(4))
	b.RR(opAND, r(7), r(6), r(20)) // hash: 13 bits
	b.RI(opSLLI, r(8), r(7), 3)
	b.RR(opADD, r(8), rBaseB, r(8))
	b.Load(opLDQ, r(9), r(8), 0) // previous position with this hash
	b.Store(opSTQ, r(1), r(8), 0)
	b.Beqz(r(9), "nomatch")
	// Straight-line match scoring: four byte pairs, each pair in its own
	// register window (narrow byte values, long reuse distance).
	b.Li(r(10), 0) // match length: narrow
	for u := 0; u < 4; u++ {
		w := 11 + 2*u
		b.Load(opLDBU, r(w), r(1), int64(3+u))
		b.Load(opLDBU, r(w+1), r(9), int64(3+u))
		b.RR(isa.OpSEQ, r(19), r(w), r(w+1))
		b.RR(opADD, r(10), r(10), r(19))
		k.spice(r(w), fmt.Sprintf("gz%d", u))
	}
	b.RR(opADD, rSum, rSum, r(10))
	b.RR(opADD, rSum, rSum, r(12))
	b.Label("nomatch")
	b.RR(opADD, rSum, rSum, r(2))
	b.RR(opADD, rSum, rSum, r(3))
	b.RR(opADD, rSum, rSum, r(4))
	return k.end()
}

func init() {
	register(Workload{
		Name: "mcf", Class: Int, PaperIPC4: 0.36, PaperIPC8: 0.37,
		Description:  "network-simplex pricing sweep: streaming arc scan with data-dependent node-potential loads over a 6MB graph, 2x unrolled (stands in for mcf)",
		DefaultIters: 1200, build: buildMcf,
	})
}

func buildMcf(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x3CF)
	nNodes := 64 << 10 // 512KB of node potentials: the L2 half-holds them
	nArcs := 128 << 10 // 4MB of arcs (cost, head, tail, flow)
	nodeBase := uint64(asm.DefaultDataBase)
	b.Words("nodes", randWords(rng, nNodes, 500)) // small potentials: narrow
	arcs := make([]uint64, 4*nArcs)
	for i := 0; i < nArcs; i++ {
		arcs[4*i] = rng.next() % 100 // cost: narrow
		arcs[4*i+1] = nodeBase + 8*uint64(rng.intn(nNodes))
		arcs[4*i+2] = nodeBase + 8*uint64(rng.intn(nNodes))
		arcs[4*i+3] = rng.next() % 64
	}
	b.Words("arcs", arcs)
	k.begin()
	b.La(rBaseA, "arcs")
	k.loop()
	// Scan a 256-arc slice chosen by the counter, two arcs per pass with
	// rotated windows.
	b.RI(opANDI, r(1), rIter, 511)
	b.RI(opSLLI, r(1), r(1), 13)
	b.RR(opADD, r(1), rBaseA, r(1))
	b.Li(r(2), 128)
	b.Label("arc")
	for u := 0; u < 2; u++ {
		w := 3 + 8*u
		off := int64(32 * u)
		b.Load(opLDQ, r(w), r(1), off) // cost: narrow
		b.Load(opLDQ, r(w+1), r(1), off+8)
		b.Load(opLDQ, r(w+2), r(1), off+16)
		b.Load(opLDQ, r(w+3), r(w+1), 0)    // head potential: random 2MB miss
		b.Load(opLDQ, r(w+4), r(w+2), 0)    // tail potential: random 2MB miss
		b.RR(opSUB, r(w+5), r(w+3), r(w+4)) // potential difference: narrow
		b.RR(opSUB, r(w+6), r(w), r(w+5))   // reduced cost: narrow
		b.RI(opSRAI, r(w+7), r(w+6), 63)    // negative flag
		b.RR(opSUB, rSum, rSum, r(w+7))
		b.RR(opADD, rSum, rSum, r(w))
		k.spice(r(w), fmt.Sprintf("mA%d", u))
		k.spice(r(w+5), fmt.Sprintf("mB%d", u))
	}
	b.RI(opADDI, r(1), r(1), 64)
	b.RI(opADDI, r(2), r(2), -1)
	b.Bnez(r(2), "arc")
	return k.end()
}

func init() {
	register(Workload{
		Name: "parser", Class: Int, PaperIPC4: 0.98, PaperIPC8: 1.00,
		Description:  "dictionary lookup: hash probe plus linked-list walk with byte-wise key compares over a 4MB node pool (stands in for parser)",
		DefaultIters: 16000, build: buildParser,
	})
}

func buildParser(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x9A45E4)
	nBuckets := 1 << 10 // 8KB bucket table
	nNodes := 2 << 10   // 64KB node pool: warm, chains hit the DL1/L2
	bucketBase := uint64(asm.DefaultDataBase)
	nodeBase := bucketBase + uint64(8*nBuckets)
	nodes := make([]uint64, 4*nNodes)
	buckets := make([]uint64, nBuckets)
	for i := 0; i < nNodes; i++ {
		key := rng.next()
		bkt := int(key % uint64(nBuckets))
		nodes[4*i] = key
		nodes[4*i+1] = buckets[bkt]
		nodes[4*i+2] = key % 100 // narrow values
		buckets[bkt] = nodeBase + uint64(32*i)
	}
	b.Words("buckets", buckets)
	b.Words("nodes", nodes)
	k.begin()
	b.La(rBaseA, "buckets")
	b.Li(r(20), int64(nBuckets-1))
	k.loop()
	// Probe key from the counter via xorshift.
	b.Mov(r(1), rIter)
	b.RI(opSLLI, r(2), r(1), 13)
	b.RR(opXOR, r(1), r(1), r(2))
	b.RI(opSRLI, r(2), r(1), 7)
	b.RR(opXOR, r(1), r(1), r(2))
	b.RI(opSLLI, r(2), r(1), 17)
	b.RR(opXOR, r(1), r(1), r(2))
	b.RR(opAND, r(3), r(1), r(20))
	b.RI(opSLLI, r(4), r(3), 3)
	b.RR(opADD, r(4), rBaseA, r(4))
	b.Load(opLDQ, r(5), r(4), 0) // list head
	b.Li(r(6), 3)                // chase budget (two windows per round)
	for u := 0; u < 2; u++ {
		w := 7 + 6*u
		lbl := fmt.Sprintf("chase%d", u)
		nxt := fmt.Sprintf("chase%d", 1-u)
		b.Label(lbl)
		b.Beqz(r(5), "miss")
		if u == 0 {
			b.Beqz(r(6), "miss")
			b.RI(opADDI, r(6), r(6), -1)
		}
		b.Load(opLDQ, r(w), r(5), 0) // key
		b.Br(opBEQ, r(w), r(1), "found")
		// Byte-compare low bytes (narrow, window-local).
		b.RI(opANDI, r(w+1), r(w), 255)
		b.RI(opANDI, r(w+2), r(1), 255)
		b.RR(opSUB, r(w+3), r(w+1), r(w+2))
		b.RR(opADD, rSum, rSum, r(w+3))
		k.spice(r(w+1), fmt.Sprintf("pr%d", u))
		b.Load(opLDQ, r(5), r(5), 8) // next
		b.Jmp(nxt)
	}
	b.Label("found")
	b.Load(opLDQ, r(19), r(5), 16)
	b.RR(opADD, rSum, rSum, r(19))
	b.Label("miss")
	b.RI(opADDI, rSum, rSum, 1)
	return k.end()
}

func init() {
	register(Workload{
		Name: "perlbmk", Class: Int, PaperIPC4: 1.15, PaperIPC8: 1.21,
		Description:  "bytecode interpreter: dispatch loop with an operand stack, alternating register windows (stands in for perlbmk's run-time engine)",
		DefaultIters: 8000, build: buildPerlbmk,
	})
}

func buildPerlbmk(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x9E27)
	code := make([]byte, 16384)
	for i := range code {
		code[i] = byte(rng.intn(5))
	}
	b.Bytes("bytecode", code)
	b.Space("vstack", 8*256)
	k.begin()
	b.La(rBaseA, "bytecode")
	b.La(rBaseB, "vstack")
	b.Li(r(20), 8)  // stack depth: narrow
	b.Li(r(19), 53) // start-offset stride
	k.loop()
	b.RR(opMUL, r(1), rIter, r(19))
	b.RI(opANDI, r(1), r(1), 16383)
	b.Li(r(2), 24) // dispatch rounds: narrow downcounter
	for u := 0; u < 2; u++ {
		w := 3 + 8*u
		lbl := fmt.Sprintf("disp%d", u)
		nxt := fmt.Sprintf("disp%d", 1-u)
		b.Label(lbl)
		if u == 0 {
			b.Beqz(r(2), "pdone")
			b.RI(opADDI, r(2), r(2), -1)
		}
		b.RR(opADD, r(w), rBaseA, r(1))
		b.Load(opLDBU, r(w+1), r(w), 0) // opcode: narrow, long-lived
		b.RI(opADDI, r(1), r(1), 1)
		b.RI(opANDI, r(1), r(1), 16383)
		b.RI(isa.OpSLTI, r(w+2), r(w+1), 2)
		b.Bnez(r(w+2), "push"+lbl)
		b.RI(isa.OpSLTI, r(w+2), r(w+1), 4)
		b.Bnez(r(w+2), "arith"+lbl)
		// Op 4: fold top of stack into the checksum.
		b.RI(opSLLI, r(w+3), r(20), 3)
		b.RR(opADD, r(w+3), rBaseB, r(w+3))
		b.Load(opLDQ, r(w+4), r(w+3), 0)
		b.RR(opADD, rSum, rSum, r(w+4))
		b.Jmp(nxt)
		b.Label("push" + lbl) // ops 0,1: push a narrow value
		b.RR(opADD, r(w+3), r(w+1), r(2))
		b.RI(opADDI, r(20), r(20), 1)
		b.RI(opANDI, r(20), r(20), 127)
		b.RI(opSLLI, r(w+4), r(20), 3)
		b.RR(opADD, r(w+4), rBaseB, r(w+4))
		b.Store(opSTQ, r(w+3), r(w+4), 0)
		b.Jmp(nxt)
		b.Label("arith" + lbl) // ops 2,3: pop two, combine, push
		b.RI(opSLLI, r(w+3), r(20), 3)
		b.RR(opADD, r(w+3), rBaseB, r(w+3))
		b.Load(opLDQ, r(w+4), r(w+3), 0)
		b.Load(opLDQ, r(w+5), r(w+3), -8)
		b.RR(opADD, r(w+6), r(w+4), r(w+5))
		b.RI(opANDI, r(w+6), r(w+6), 127) // narrow result
		b.Store(opSTQ, r(w+6), r(w+3), -8)
		b.RI(opADDI, r(20), r(20), -1)
		b.RI(isa.OpSLTI, r(w+7), r(20), 8)
		b.Beqz(r(w+7), nxt)
		b.Li(r(20), 64)
		b.Jmp(nxt)
	}
	b.Label("pdone")
	return k.end()
}

func init() {
	register(Workload{
		Name: "twolf", Class: Int, PaperIPC4: 1.17, PaperIPC8: 1.22,
		Description:  "simulated-annealing placement: random cell-pair cost evaluation with ~50/50 accept branches, 2x unrolled (stands in for twolf)",
		DefaultIters: 25000, build: buildTwolf,
	})
}

func buildTwolf(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x2701F)
	nCells := 4 << 10                             // 32KB: DL1-competitive cell array
	b.Words("cells", randWords(rng, nCells, 400)) // small coordinates: narrow
	k.begin()
	b.La(rBaseA, "cells")
	b.Li(r(20), int64(nCells-1))
	b.Li(r(19), 0x5F4A7C15)
	b.Mov(r(18), rIter) // rng state
	k.loop()
	for u := 0; u < 2; u++ {
		w := 1 + 9*u
		b.RI(opSLLI, r(w), r(18), 13)
		b.RR(opXOR, r(18), r(18), r(w))
		b.RI(opSRLI, r(w), r(18), 7)
		b.RR(opXOR, r(18), r(18), r(w))
		b.RR(opMUL, r(w), r(18), r(19))
		b.RR(opAND, r(w+1), r(w), r(20))
		b.RI(opSRLI, r(w+2), r(w), 20)
		b.RR(opAND, r(w+2), r(w+2), r(20))
		b.RI(opSLLI, r(w+1), r(w+1), 3)
		b.RI(opSLLI, r(w+2), r(w+2), 3)
		b.RR(opADD, r(w+1), rBaseA, r(w+1))
		b.RR(opADD, r(w+2), rBaseA, r(w+2))
		b.Load(opLDQ, r(w+3), r(w+1), 0) // coordinates: narrow
		b.Load(opLDQ, r(w+4), r(w+2), 0)
		// Cost delta: |a-b|; accept about half the time.
		b.RR(opSUB, r(w+5), r(w+3), r(w+4))
		b.RI(opSRAI, r(w+6), r(w+5), 63)
		b.RR(opXOR, r(w+5), r(w+5), r(w+6))
		b.RR(opSUB, r(w+5), r(w+5), r(w+6))   // abs: narrow
		b.RI(isa.OpSLTI, r(w+7), r(w+5), 330) // accept ~87%: mostly predictable
		b.Beqz(r(w+7), fmt.Sprintf("rej%d", u))
		b.Store(opSTQ, r(w+4), r(w+1), 0) // swap on accept
		b.Store(opSTQ, r(w+3), r(w+2), 0)
		b.Label(fmt.Sprintf("rej%d", u))
		b.RR(opADD, rSum, rSum, r(w+5))
		k.spice(r(w+3), fmt.Sprintf("tw%d", u))
	}
	return k.end()
}

func init() {
	register(Workload{
		Name: "vortex", Class: Int, PaperIPC4: 1.40, PaperIPC8: 1.52,
		Description:  "object-store transactions: key hash, bucket insert, and rotated-register record copies (stands in for vortex)",
		DefaultIters: 30000, build: buildVortex,
	})
}

func buildVortex(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x04E7E)
	nBuckets := 4 << 10 // 32KB: cache-friendly index
	b.Words("vbuckets", make([]uint64, nBuckets))
	b.Words("records", randWords(rng, 4*1024, 200)) // 32KB of records: narrow fields
	b.Space("pool", 32*64)                          // hot transaction scratch slots
	k.begin()
	b.La(rBaseA, "vbuckets")
	b.La(rBaseB, "records")
	b.La(rBaseC, "pool")
	b.Li(r(20), int64(nBuckets-1))
	k.loop()
	// Pick a source record and hash its first word.
	b.RI(opANDI, r(1), rIter, 1023)
	b.RI(opSLLI, r(1), r(1), 5)
	b.RR(opADD, r(1), rBaseB, r(1))
	b.Load(opLDQ, r(2), r(1), 0)
	b.RI(opSRLI, r(3), r(2), 3)
	b.RR(opXOR, r(3), r(3), r(2))
	b.RR(opAND, r(4), r(3), r(20)) // bucket
	// Copy the 32-byte record through four distinct registers.
	b.RI(opANDI, r(5), rIter, 63)
	b.RI(opSLLI, r(5), r(5), 5)
	b.RR(opADD, r(5), rBaseC, r(5))
	for i := 0; i < 4; i++ {
		b.Load(opLDQ, r(6+i), r(1), int64(8*i)) // r6..r9: narrow fields
	}
	for i := 0; i < 4; i++ {
		b.Store(opSTQ, r(6+i), r(5), int64(8*i))
	}
	// Field validation: narrow compares with long-lived flags.
	k.spice(r(6), "vxA")
	k.spice(r(7), "vxB")
	k.spice(r(8), "vxC")
	b.RR(opSLT, r(10), r(6), r(7))
	b.RR(opSLT, r(11), r(8), r(9))
	b.RR(opADD, r(12), r(6), r(9))
	b.RR(opADD, rSum, rSum, r(10))
	b.RR(opADD, rSum, rSum, r(11))
	b.RR(opADD, rSum, rSum, r(12))
	// Insert: bucket -> slot; checksum the displaced pointer.
	b.RI(opSLLI, r(13), r(4), 3)
	b.RR(opADD, r(13), rBaseA, r(13))
	b.Load(opLDQ, r(14), r(13), 0)
	b.Store(opSTQ, r(5), r(13), 0)
	b.RR(opXOR, rSum, rSum, r(14))
	return k.end()
}

func init() {
	register(Workload{
		Name: "vpr", Class: Int, PaperIPC4: 1.36, PaperIPC8: 1.42,
		Description:  "maze-router wavefront relaxation on a cache-resident 64x64 grid with narrow routing costs (stands in for vpr, reduced input)",
		DefaultIters: 7000, build: func(n int) *asm.Program { return buildVpr(n, 64) },
	})
	register(Workload{
		Name: "vpr_ref", Class: Int, PaperIPC4: 0.63, PaperIPC8: 0.64,
		Description:  "the same router on a 1024x1024 grid (8MB) that defeats the L2, as with vpr's reference input",
		DefaultIters: 4000, build: func(n int) *asm.Program { return buildVpr(n, 1024) },
	})
}

func buildVpr(iters, dim int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x0B94)
	grid := make([]uint64, dim*dim)
	for i := range grid {
		grid[i] = 40 + rng.next()%32 // partially-converged costs: narrow
	}
	b.Words("grid", grid)
	k.begin()
	b.La(rBaseA, "grid")
	b.Li(r(20), int64(dim))
	b.Li(r(19), int64(dim*dim-1))
	b.Li(r(17), (128<<10)-1) // region size: 128K cells (1MB) beats the L2
	b.Mov(r(18), rIter)
	k.loop()
	// The router works region by region: the region base crawls with the
	// outer iteration, giving the reference grid L2-ish locality.
	b.RI(opSLLI, r(16), rIter, 7)
	b.RR(opAND, r(16), r(16), r(19))
	// Random walk: relax 16 cell pairs against two neighbours each, two
	// cells per pass through rotated windows.
	b.Li(r(1), 16)
	b.Label("cell")
	for u := 0; u < 2; u++ {
		w := 2 + 8*u
		b.RI(opSLLI, r(w), r(18), 13)
		b.RR(opXOR, r(18), r(18), r(w))
		b.RI(opSRLI, r(w), r(18), 7)
		b.RR(opXOR, r(18), r(18), r(w))
		b.RR(opAND, r(w), r(18), r(17)) // cell index within the work region
		b.RR(opADD, r(w), r(w), r(16))  // region base sweeps the grid
		b.RR(opAND, r(w), r(w), r(19))
		b.RI(opSLLI, r(w+1), r(w), 3)
		b.RR(opADD, r(w+1), rBaseA, r(w+1))
		b.Load(opLDQ, r(w+2), r(w+1), 0) // cost: narrow
		b.RI(opADDI, r(w+3), r(w), 1)
		b.RR(opAND, r(w+3), r(w+3), r(19))
		b.RI(opSLLI, r(w+3), r(w+3), 3)
		b.RR(opADD, r(w+3), rBaseA, r(w+3))
		b.Load(opLDQ, r(w+4), r(w+3), 0) // east neighbour: narrow
		b.RR(opADD, r(w+5), r(w), r(20))
		b.RR(opAND, r(w+5), r(w+5), r(19))
		b.RI(opSLLI, r(w+5), r(w+5), 3)
		b.RR(opADD, r(w+5), rBaseA, r(w+5))
		b.Load(opLDQ, r(w+6), r(w+5), 0) // south neighbour: narrow
		// new = min(east, south) + 1; relax if better.
		b.RR(opSLT, r(w+7), r(w+4), r(w+6))
		b.Bnez(r(w+7), fmt.Sprintf("p%d", u))
		b.Mov(r(w+4), r(w+6))
		b.Label(fmt.Sprintf("p%d", u))
		b.RI(opADDI, r(w+4), r(w+4), 3) // relax only on clear improvement
		b.RR(opSLT, r(w+7), r(w+4), r(w+2))
		b.Beqz(r(w+7), fmt.Sprintf("n%d", u))
		b.Store(opSTQ, r(w+4), r(w+1), 0)
		b.Label(fmt.Sprintf("n%d", u))
		b.RR(opADD, rSum, rSum, r(w+2))
		k.spice(r(w+2), fmt.Sprintf("vs%d", u))
	}
	b.RI(opADDI, r(1), r(1), -1)
	b.Bnez(r(1), "cell")
	return k.end()
}
