package workloads

import (
	"prisim/internal/asm"
	"prisim/internal/isa"
)

const (
	opFADD  = isa.OpFADD
	opFSUB  = isa.OpFSUB
	opFMUL  = isa.OpFMUL
	opFDIV  = isa.OpFDIV
	opFSQRT = isa.OpFSQRT
	opFCLT  = isa.OpFCLT
	opCVTFI = isa.OpCVTFI
	opCVTIF = isa.OpCVTIF
)

// fpEpilogue folds the f10 accumulator into the integer checksum at the end
// of each outer iteration.
func fpFold(b *asm.Builder) {
	b.R1(opCVTFI, r(9), f(10))
	b.RR(opADD, rSum, rSum, r(9))
}

func init() {
	register(Workload{
		Name: "ammp", Class: FP, PaperIPC4: 0.06, PaperIPC8: 0.06,
		Description:  "molecular-dynamics force walk: a serialized pointer chase through an 8MB cold neighbor list with an FP force term per link (stands in for ammp)",
		DefaultIters: 3000, build: buildAmmp,
	})
}

func buildAmmp(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xA339)
	n := 256 << 10 // 32B records: next, dx, dy, dz = 8MB
	base := uint64(asm.DefaultDataBase)
	recs := make([]uint64, 4*n)
	for i := 0; i < n; i++ {
		next := (i + 8191) % n // full-cycle, ~256KB jumps
		recs[4*i] = base + uint64(32*next)
		recs[4*i+1] = fbits(rng.float(-2, 2))
		if rng.intn(2) == 0 {
			recs[4*i+1] = 0
		}
		recs[4*i+2] = fbits(rng.float(-2, 2))
		recs[4*i+3] = 0 // planar system: dz is zero (FP-trivial operands)
	}
	b.Words("neigh", recs)
	k.begin()
	b.La(r(1), "neigh")
	k.loop()
	b.Li(r(2), 16) // links per outer iteration
	b.R1(opCVTIF, f(10), isa.RZero)
	b.Label("link")
	b.Load(opLDQ, r(1), r(1), 0) // serialized chase: cold miss
	b.Load(opFLD, f(1), r(1), 8)
	b.Load(opFLD, f(2), r(1), 16)
	b.Load(opFLD, f(3), r(1), 24)
	b.RR(opFMUL, f(4), f(1), f(1))
	b.RR(opFMUL, f(5), f(2), f(2))
	b.RR(opFADD, f(6), f(4), f(5))
	b.RR(opFADD, f(6), f(6), f(3))
	b.RR(opFADD, f(10), f(10), f(6))
	k.spice(r(2), "amS")
	b.RI(opADDI, r(2), r(2), -1)
	b.Bnez(r(2), "link")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "applu", Class: FP, PaperIPC4: 2.05, PaperIPC8: 2.20,
		Description:  "SSOR relaxation row sweeps over an L2-resident 192x192 grid with independent 5-point updates (stands in for applu)",
		DefaultIters: 3000, build: buildApplu,
	})
}

func buildApplu(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xAB01)
	dim := 96
	b.Floats("lugrid", randFloats(rng, dim*dim, -1, 1, 0.55))
	b.Floats("lucoef", []float64{0.25, 0.2, 0.2, 0.15, 0.15})
	k.begin()
	b.La(rBaseA, "lugrid")
	b.La(r(1), "lucoef")
	for i := 0; i < 5; i++ {
		b.Load(isa.OpFLD, f(20+i), r(1), int64(8*i))
	}
	b.Li(r(15), int64(dim))
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// Row chosen by counter (interior rows only).
	b.Li(r(2), int64(dim-2))
	b.RR(isa.OpREM, r(3), rIter, r(2))
	b.RI(opADDI, r(3), r(3), 1)
	b.RR(opMUL, r(4), r(3), r(15))
	b.RI(opSLLI, r(4), r(4), 3)
	b.RR(opADD, r(4), rBaseA, r(4)) // row base
	b.RI(opADDI, r(5), r(4), 8)     // p = &row[1]
	b.Li(r(6), int64(dim-2))
	b.Label("pt")
	// Address generation the way compiled Fortran does it: explicit
	// narrow index arithmetic per access, diluting FP register pressure.
	b.RI(opSLLI, r(7), r(6), 3)
	b.RR(opADD, r(8), r(5), r(7))
	b.RI(opADDI, r(9), r(8), -8)
	b.RI(opADDI, r(10), r(8), 8)
	b.Li(r(11), int64(8*dim))
	b.RR(opSUB, r(12), r(8), r(11))
	b.RR(opADD, r(13), r(8), r(11))
	b.Load(isa.OpFLD, f(1), r(8), 0)
	b.Load(isa.OpFLD, f(2), r(9), 0)
	b.Load(isa.OpFLD, f(3), r(10), 0)
	b.Load(isa.OpFLD, f(4), r(12), 0)
	b.Load(isa.OpFLD, f(5), r(13), 0)
	b.RR(opFMUL, f(1), f(1), f(20))
	b.RR(opFMUL, f(2), f(2), f(21))
	b.RR(opFMUL, f(3), f(3), f(22))
	b.RR(opFMUL, f(4), f(4), f(23))
	b.RR(opFMUL, f(5), f(5), f(24))
	b.RR(opFADD, f(6), f(1), f(2))
	b.RR(opFADD, f(7), f(3), f(4))
	b.RR(opFADD, f(6), f(6), f(7))
	b.RR(opFADD, f(6), f(6), f(5))
	b.Store(isa.OpFST, f(6), r(8), 0)
	b.RR(opADD, rSum, rSum, r(7)) // narrow byte-offset checksum
	k.spice(r(7), "apS")
	b.RI(opADDI, r(6), r(6), -1)
	b.Bnez(r(6), "pt")
	// Fold a sample of the freshly written row, off the critical path.
	b.Load(isa.OpFLD, f(10), r(5), 8)
	b.Load(isa.OpFLD, f(9), r(5), 64)
	b.RR(opFADD, f(10), f(10), f(9))
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "apsi", Class: FP, PaperIPC4: 1.37, PaperIPC8: 1.50,
		Description:  "pseudo-spectral column updates mixing stencil arithmetic with periodic square roots (stands in for apsi)",
		DefaultIters: 4000, build: buildApsi,
	})
}

func buildApsi(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xA951)
	n := 48 << 10 // 384KB column data
	b.Floats("apsidata", randFloats(rng, n, 0.1, 4, 0.25))
	k.begin()
	b.La(rBaseA, "apsidata")
	b.Li(r(15), int64(n-64))
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.RR(isa.OpREM, r(1), rIter, r(15))
	b.RI(opSLLI, r(1), r(1), 3)
	b.RR(opADD, r(1), rBaseA, r(1))
	b.Li(r(2), 16)
	b.Label("col")
	b.Load(isa.OpFLD, f(1), r(1), 0)
	b.Load(isa.OpFLD, f(2), r(1), 8)
	b.RR(opFMUL, f(3), f(1), f(2))
	b.RR(opFADD, f(4), f(1), f(2))
	b.RI(opANDI, r(3), r(2), 3)
	b.Bnez(r(3), "nosqrt")
	b.R1(opFSQRT, f(4), f(4)) // unpipelined 24-cycle root every 4th point
	b.Label("nosqrt")
	b.RR(opFADD, f(10), f(10), f(3))
	b.RR(opFADD, f(10), f(10), f(4))
	k.spice(r(2), "asS")
	b.RI(opADDI, r(1), r(1), 16)
	b.RI(opADDI, r(2), r(2), -1)
	b.Bnez(r(2), "col")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "art", Class: FP, PaperIPC4: 0.37, PaperIPC8: 0.38,
		Description:  "adaptive-resonance F1 scan: streaming weight MACs with random 2MB match lookups (stands in for art)",
		DefaultIters: 2500, build: buildArt,
	})
}

func buildArt(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xA47)
	nW := 256 << 10 // 2MB weights
	base := uint64(asm.DefaultDataBase)
	b.Floats("weights", randFloats(rng, nW, 0, 1, 0.5))
	idx := make([]uint64, 8192)
	for i := range idx {
		idx[i] = base + 8*uint64(rng.intn(nW))
	}
	b.Words("matchidx", idx)
	k.begin()
	b.La(rBaseA, "weights")
	b.La(rBaseB, "matchidx")
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// Stream a 64-element weight slice; every element also gathers a
	// random match weight (the cache-hostile part).
	b.RI(opANDI, r(1), rIter, 2047)
	b.RI(opSLLI, r(2), r(1), 9) // *512 bytes = 64 doubles
	b.RR(opADD, r(2), rBaseA, r(2))
	b.RI(opSLLI, r(3), r(1), 5) // 4 index words per slice
	b.RR(opADD, r(3), rBaseB, r(3))
	b.Li(r(4), 16)
	b.Label("scan")
	b.Load(isa.OpFLD, f(1), r(2), 0)
	b.Load(isa.OpFLD, f(2), r(2), 8)
	b.Load(isa.OpFLD, f(3), r(2), 16)
	b.Load(isa.OpFLD, f(4), r(2), 24)
	b.RR(opFADD, f(5), f(1), f(2))
	b.RR(opFADD, f(6), f(3), f(4))
	b.RR(opFADD, f(10), f(10), f(5))
	b.RR(opFADD, f(10), f(10), f(6))
	b.RI(opANDI, r(5), r(4), 3)
	b.RI(opSLLI, r(5), r(5), 3)
	b.RR(opADD, r(5), r(3), r(5))
	b.Load(opLDQ, r(6), r(5), 0)     // match pointer
	b.Load(isa.OpFLD, f(7), r(6), 0) // random gather: misses
	b.RR(opFADD, f(10), f(10), f(7))
	k.spice(r(4), "arS")
	b.RI(opADDI, r(2), r(2), 32)
	b.RI(opADDI, r(4), r(4), -1)
	b.Bnez(r(4), "scan")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "equake", Class: FP, PaperIPC4: 2.28, PaperIPC8: 2.38,
		Description:  "sparse matrix-vector rows: sequential values/indices with L2-resident x-vector gathers (stands in for equake)",
		DefaultIters: 6000, build: buildEquake,
	})
}

func buildEquake(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xE993)
	nX := 3 << 10  // 24KB x vector: mostly DL1-resident, as warmed equake is
	nnz := 4 << 10 // 32KB value + 32KB index streams: cache-warm rows
	xBase := uint64(asm.DefaultDataBase)
	b.Floats("xvec", randFloats(rng, nX, -1, 1, 0.55))
	vals := randFloats(rng, nnz, -1, 1, 0.5)
	b.Floats("avals", vals)
	cols := make([]uint64, nnz)
	for i := range cols {
		cols[i] = xBase + 8*uint64(rng.intn(nX))
	}
	b.Words("acols", cols)
	k.begin()
	b.La(rBaseA, "avals")
	b.La(rBaseB, "acols")
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// One 16-nonzero row per outer iteration.
	b.RI(opANDI, r(1), rIter, 255)
	b.RI(opSLLI, r(2), r(1), 7) // *128 bytes = 16 doubles
	b.RR(opADD, r(3), rBaseA, r(2))
	b.RR(opADD, r(4), rBaseB, r(2))
	b.Li(r(5), 16)
	b.Li(r(7), 0) // element index within the row: narrow
	b.Label("nz")
	b.RI(opSLLI, r(8), r(7), 3)
	b.RR(opADD, r(9), r(3), r(8))
	b.RR(opADD, r(10), r(4), r(8))
	b.Load(isa.OpFLD, f(1), r(9), 0)
	b.Load(opLDQ, r(6), r(10), 0)
	b.Load(isa.OpFLD, f(2), r(6), 0) // gather x[col]
	b.RR(opFMUL, f(3), f(1), f(2))
	b.RR(opFADD, f(10), f(10), f(3))
	b.RI(opANDI, r(11), r(6), 255) // narrow column tag
	b.RR(opADD, rSum, rSum, r(11))
	k.spice(r(11), "eqS")
	b.RI(opADDI, r(7), r(7), 1)
	b.RI(opADDI, r(5), r(5), -1)
	b.Bnez(r(5), "nz")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "facerec", Class: FP, PaperIPC4: 1.35, PaperIPC8: 1.41,
		Description:  "windowed image correlation: 16-tap dot products with four parallel accumulators over a 128KB image (stands in for facerec)",
		DefaultIters: 8000, build: buildFacerec,
	})
}

func buildFacerec(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xFACE)
	n := 4 << 10 // 32KB image: DL1-competitive
	b.Floats("image", randFloats(rng, n, 0, 1, 0.45))
	b.Floats("probe", randFloats(rng, 16, -1, 1, 0))
	k.begin()
	b.La(rBaseA, "image")
	b.La(r(1), "probe")
	for i := 0; i < 16; i++ {
		b.Load(isa.OpFLD, f(16+i), r(1), int64(8*i))
	}
	b.Li(r(15), int64(n-32))
	k.loop()
	b.RR(isa.OpREM, r(2), rIter, r(15))
	b.RI(opSLLI, r(2), r(2), 3)
	b.RR(opADD, r(2), rBaseA, r(2))
	// Four independent 4-tap partial sums, then combine.
	b.R1(opCVTIF, f(10), isa.RZero)
	for lane := 0; lane < 4; lane++ {
		b.R1(isa.OpFMOV, f(11+lane), f(10))
	}
	for tap := 0; tap < 16; tap++ {
		lane := tap % 4
		b.Load(isa.OpFLD, f(1+lane), r(2), int64(8*tap))
		b.RR(opFMUL, f(5+lane), f(1+lane), f(16+tap))
		b.RR(opFADD, f(11+lane), f(11+lane), f(5+lane))
	}
	b.RR(opFADD, f(11), f(11), f(12))
	b.RR(opFADD, f(13), f(13), f(14))
	b.RR(opFADD, f(10), f(11), f(13))
	k.spice(r(2), "fcS")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "fma3d", Class: FP, PaperIPC4: 1.91, PaperIPC8: 1.94,
		Description:  "finite-element updates: per-element stress/strain arithmetic streamed over a 1MB element array (stands in for fma3d)",
		DefaultIters: 6000, build: buildFma3d,
	})
}

func buildFma3d(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0xF3AD)
	nEl := 2 << 10 // 8 doubles each = 128KB: L2-hot elements
	b.Floats("elems", randFloats(rng, 8*nEl, -1, 1, 0.5))
	k.begin()
	b.La(rBaseA, "elems")
	b.Li(r(14), 4602678819172646912) // bits of 0.5
	b.Emit(isa.Inst{Op: isa.OpSTQ, Rd: r(14), Ra: isa.RSP, Imm: -8})
	b.Load(isa.OpFLD, f(20), isa.RSP, -8)
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.RI(opANDI, r(1), rIter, 255)
	b.RI(opSLLI, r(1), r(1), 6) // *64 bytes = one element
	b.RR(opADD, r(1), rBaseA, r(1))
	b.Li(r(2), 8) // elements per iteration
	b.Li(r(3), 0) // element cursor: narrow
	b.Label("el")
	b.RI(opSLLI, r(4), r(3), 6)
	b.RR(opADD, r(5), r(1), r(4))
	b.RI(opANDI, r(6), r(3), 63) // narrow element tag
	b.RR(opADD, rSum, rSum, r(6))
	b.Load(isa.OpFLD, f(1), r(5), 0)
	b.Load(isa.OpFLD, f(2), r(5), 8)
	b.Load(isa.OpFLD, f(3), r(5), 16)
	b.Load(isa.OpFLD, f(4), r(5), 24)
	b.Load(isa.OpFLD, f(5), r(5), 32)
	b.Load(isa.OpFLD, f(6), r(5), 40)
	b.RR(opFMUL, f(7), f(1), f(4))
	b.RR(opFMUL, f(8), f(2), f(5))
	b.RR(opFMUL, f(9), f(3), f(6))
	b.RR(opFADD, f(7), f(7), f(8))
	b.RR(opFADD, f(7), f(7), f(9))
	b.RR(opFMUL, f(7), f(7), f(20))
	b.Store(isa.OpFST, f(7), r(5), 48)
	b.RR(opFADD, f(10), f(10), f(7))
	k.spice(r(6), "fmS")
	b.RI(opADDI, r(3), r(3), 1)
	b.RI(opADDI, r(2), r(2), -1)
	b.Bnez(r(2), "el")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "galgel", Class: FP, PaperIPC4: 0.65, PaperIPC8: 0.66,
		Description:  "Galerkin elimination fragment: pivot reciprocals (unpipelined divides) feeding row updates over a 2MB matrix (stands in for galgel)",
		DefaultIters: 3000, build: buildGalgel,
	})
}

func buildGalgel(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x6A76E1)
	dim := 512 // 2MB matrix
	b.Floats("mat", randFloats(rng, dim*dim, 0.5, 2, 0))
	k.begin()
	b.La(rBaseA, "mat")
	b.Li(r(15), int64(dim))
	b.Li(r(14), 4607182418800017408) // bits of 1.0
	b.Emit(isa.Inst{Op: isa.OpSTQ, Rd: r(14), Ra: isa.RSP, Imm: -8})
	b.Load(isa.OpFLD, f(20), isa.RSP, -8)
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// Pivot row and column from the counter.
	b.RR(isa.OpREM, r(1), rIter, r(15))
	b.RR(opMUL, r(2), r(1), r(15))
	b.RR(opADD, r(2), r(2), r(1))
	b.RI(opSLLI, r(2), r(2), 3)
	b.RR(opADD, r(2), rBaseA, r(2)) // &a[k][k]
	b.Load(isa.OpFLD, f(1), r(2), 0)
	b.RR(opFDIV, f(2), f(20), f(1)) // pivot reciprocal: 12-cycle divide
	b.Li(r(3), 32)
	b.Mov(r(4), r(2))
	b.Label("row")
	b.Load(isa.OpFLD, f(3), r(4), 8)
	b.RR(opFMUL, f(4), f(3), f(2))
	b.RR(opFDIV, f(10), f(10), f(20)) // dependent divide chain drag
	b.RR(opFADD, f(10), f(10), f(4))
	b.Store(isa.OpFST, f(4), r(4), 8)
	k.spice(r(3), "glS")
	b.RI(opADDI, r(4), r(4), int64(8*dim)) // down the column: misses
	b.RI(opADDI, r(3), r(3), -1)
	b.Bnez(r(3), "row")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "lucas", Class: FP, PaperIPC4: 2.29, PaperIPC8: 2.43,
		Description:  "FFT butterfly passes over a 512KB complex array with fixed twiddles (stands in for lucas' Lucas-Lehmer FFT)",
		DefaultIters: 5000, build: buildLucas,
	})
}

func buildLucas(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x10CA5)
	n := 8 << 10 // complex pairs: 128KB
	b.Floats("signal", randFloats(rng, 2*n, -1, 1, 0.5))
	b.Floats("twiddle", []float64{0.92387953, 0.38268343})
	k.begin()
	b.La(rBaseA, "signal")
	b.La(r(1), "twiddle")
	b.Load(isa.OpFLD, f(20), r(1), 0) // wr
	b.Load(isa.OpFLD, f(21), r(1), 8) // wi
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// 16 butterflies at a counter-dependent offset, stride 256 bytes.
	b.RI(opANDI, r(2), rIter, 255)
	b.RI(opSLLI, r(2), r(2), 8)
	b.RR(opADD, r(2), rBaseA, r(2))
	b.Li(r(3), 16)
	b.Label("bfly")
	b.Load(isa.OpFLD, f(1), r(2), 0)   // ar
	b.Load(isa.OpFLD, f(2), r(2), 8)   // ai
	b.Load(isa.OpFLD, f(3), r(2), 128) // br
	b.Load(isa.OpFLD, f(4), r(2), 136) // bi
	// t = w*b (complex).
	b.RR(opFMUL, f(5), f(3), f(20))
	b.RR(opFMUL, f(6), f(4), f(21))
	b.RR(opFSUB, f(5), f(5), f(6)) // tr
	b.RR(opFMUL, f(6), f(3), f(21))
	b.RR(opFMUL, f(7), f(4), f(20))
	b.RR(opFADD, f(6), f(6), f(7)) // ti
	b.RR(opFADD, f(8), f(1), f(5))
	b.RR(opFADD, f(9), f(2), f(6))
	b.RR(opFSUB, f(11), f(1), f(5))
	b.RR(opFSUB, f(12), f(2), f(6))
	b.Store(isa.OpFST, f(8), r(2), 0)
	b.Store(isa.OpFST, f(9), r(2), 8)
	b.Store(isa.OpFST, f(11), r(2), 128)
	b.Store(isa.OpFST, f(12), r(2), 136)
	b.RR(opFADD, f(10), f(10), f(8))
	k.spice(r(3), "lcS")
	b.RI(opADDI, r(2), r(2), 16)
	b.RI(opADDI, r(3), r(3), -1)
	b.Bnez(r(3), "bfly")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "mesa", Class: FP, PaperIPC4: 1.97, PaperIPC8: 2.08,
		Description:  "vertex pipeline: 4x4 matrix transforms with clip tests over a 256KB vertex buffer (stands in for mesa)",
		DefaultIters: 8000, build: buildMesa,
	})
}

func buildMesa(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x3E5A)
	nV := 1 << 10 // 4 doubles per vertex: 32KB hot batch
	b.Floats("verts", randFloats(rng, 4*nV, -2, 2, 0.45))
	mat := make([]float64, 16)
	for i := range mat {
		mat[i] = rng.float(-1, 1)
	}
	b.Floats("xform", mat)
	k.begin()
	b.La(rBaseA, "verts")
	b.La(r(1), "xform")
	for i := 0; i < 16; i++ {
		b.Load(isa.OpFLD, f(16+i), r(1), int64(8*i))
	}
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.RI(opANDI, r(2), rIter, 511)
	b.RI(opSLLI, r(2), r(2), 5)
	b.RR(opADD, r(2), rBaseA, r(2))
	b.Li(r(3), 2) // vertices per iteration
	b.Label("vert")
	b.Load(isa.OpFLD, f(1), r(2), 0)
	b.Load(isa.OpFLD, f(2), r(2), 8)
	b.Load(isa.OpFLD, f(3), r(2), 16)
	b.Load(isa.OpFLD, f(4), r(2), 24)
	for row := 0; row < 4; row++ {
		m := 16 + 4*row
		b.RR(opFMUL, f(5), f(1), f(m))
		b.RR(opFMUL, f(6), f(2), f(m+1))
		b.RR(opFMUL, f(7), f(3), f(m+2))
		b.RR(opFMUL, f(8), f(4), f(m+3))
		b.RR(opFADD, f(5), f(5), f(6))
		b.RR(opFADD, f(7), f(7), f(8))
		b.RR(opFADD, f(11+row), f(5), f(7))
	}
	// Clip test: w component positive?
	b.RR(opFCLT, r(4), f(14), f(10)) // f10 is 0.0 here
	b.Bnez(r(4), "clip")
	b.Store(isa.OpFST, f(11), r(2), 0)
	b.Store(isa.OpFST, f(12), r(2), 8)
	b.Label("clip")
	b.RR(opFADD, f(10), f(10), f(11))
	k.spice(r(3), "msS")
	b.RI(opADDI, r(2), r(2), 32)
	b.RI(opADDI, r(3), r(3), -1)
	b.Bnez(r(3), "vert")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "mgrid", Class: FP, PaperIPC4: 1.54, PaperIPC8: 1.59,
		Description:  "multigrid smoother: 27-point stencil lines over a 512KB 3D grid (stands in for mgrid)",
		DefaultIters: 2500, build: buildMgrid,
	})
}

func buildMgrid(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x36121D)
	dim := 20 // 20^3 doubles = 64KB: blocked working set
	b.Floats("grid3", randFloats(rng, dim*dim*dim, -1, 1, 0.5))
	k.begin()
	b.La(rBaseA, "grid3")
	b.Li(r(15), int64(dim))
	b.Li(r(14), int64(dim*dim))
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	// Pick an interior line (i, j) from the counter; sweep k.
	b.Li(r(1), int64((dim-2)*(dim-2)))
	b.RR(isa.OpREM, r(2), rIter, r(1))
	b.Li(r(3), int64(dim-2))
	b.RR(isa.OpDIVU, r(4), r(2), r(3))
	b.RR(isa.OpREM, r(5), r(2), r(3))
	b.RI(opADDI, r(4), r(4), 1) // i
	b.RI(opADDI, r(5), r(5), 1) // j
	b.RR(opMUL, r(6), r(4), r(14))
	b.RR(opMUL, r(7), r(5), r(15))
	b.RR(opADD, r(6), r(6), r(7))
	b.RI(opADDI, r(6), r(6), 1)
	b.RI(opSLLI, r(6), r(6), 3)
	b.RR(opADD, r(6), rBaseA, r(6)) // &g[i][j][1]
	b.Li(r(8), int64(dim-2))
	b.Label("kline")
	// 9 taps (faces + center slice of the 27-point kernel).
	b.Load(isa.OpFLD, f(1), r(6), 0)
	b.Load(isa.OpFLD, f(2), r(6), -8)
	b.Load(isa.OpFLD, f(3), r(6), 8)
	b.Load(isa.OpFLD, f(4), r(6), int64(-8*dim))
	b.Load(isa.OpFLD, f(5), r(6), int64(8*dim))
	b.Load(isa.OpFLD, f(6), r(6), int64(-8*dim*dim))
	b.Load(isa.OpFLD, f(7), r(6), int64(8*dim*dim))
	b.Load(isa.OpFLD, f(8), r(6), int64(8*dim+8))
	b.Load(isa.OpFLD, f(9), r(6), int64(-8*dim-8))
	b.RR(opFADD, f(2), f(2), f(3))
	b.RR(opFADD, f(4), f(4), f(5))
	b.RR(opFADD, f(6), f(6), f(7))
	b.RR(opFADD, f(8), f(8), f(9))
	b.RR(opFADD, f(2), f(2), f(4))
	b.RR(opFADD, f(6), f(6), f(8))
	b.RR(opFADD, f(2), f(2), f(6))
	b.RR(opFADD, f(1), f(1), f(2))
	b.Store(isa.OpFST, f(1), r(6), 0)
	b.RR(opFADD, f(10), f(10), f(1))
	k.spice(r(8), "mgS")
	b.RI(opADDI, r(6), r(6), 8)
	b.RI(opADDI, r(8), r(8), -1)
	b.Bnez(r(8), "kline")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "sixtrack", Class: FP, PaperIPC4: 1.38, PaperIPC8: 1.44,
		Description:  "particle tracking: per-particle dependent polynomial phase-space maps over a 128KB bunch (stands in for sixtrack)",
		DefaultIters: 8000, build: buildSixtrack,
	})
}

func buildSixtrack(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x51C7)
	nP := 2 << 10 // x, px pairs: 32KB bunch
	b.Floats("bunch", randFloats(rng, 2*nP, -0.1, 0.1, 0.2))
	b.Floats("map6", []float64{0.999, 0.02, -0.3, 0.05, 1.0, 0.0})
	k.begin()
	b.La(rBaseA, "bunch")
	b.La(r(1), "map6")
	for i := 0; i < 4; i++ {
		b.Load(isa.OpFLD, f(20+i), r(1), int64(8*i))
	}
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.RI(opANDI, r(2), rIter, 511)
	b.RI(opSLLI, r(2), r(2), 4)
	b.RR(opADD, r(2), rBaseA, r(2))
	b.Li(r(3), 4) // particles per iteration
	b.Label("part")
	b.Load(isa.OpFLD, f(1), r(2), 0) // x
	b.Load(isa.OpFLD, f(2), r(2), 8) // px
	// Dependent map: x' = c0*x + c1*px; px' = c2*x'^3-ish + c3*px.
	b.RR(opFMUL, f(3), f(1), f(20))
	b.RR(opFMUL, f(4), f(2), f(21))
	b.RR(opFADD, f(3), f(3), f(4)) // x'
	b.RR(opFMUL, f(5), f(3), f(3))
	b.RR(opFMUL, f(5), f(5), f(3)) // x'^3
	b.RR(opFMUL, f(5), f(5), f(22))
	b.RR(opFMUL, f(6), f(2), f(23))
	b.RR(opFADD, f(6), f(5), f(6)) // px'
	b.Store(isa.OpFST, f(3), r(2), 0)
	b.Store(isa.OpFST, f(6), r(2), 8)
	b.RR(opFADD, f(10), f(10), f(3))
	k.spice(r(3), "sxS")
	b.RI(opADDI, r(2), r(2), 16)
	b.RI(opADDI, r(3), r(3), -1)
	b.Bnez(r(3), "part")
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "swim", Class: FP, PaperIPC4: 1.86, PaperIPC8: 1.99,
		Description:  "shallow-water stencil row sweeps over three 1.1MB grids with streaming misses and wide ILP (stands in for swim)",
		DefaultIters: 2500, build: buildSwim,
	})
}

func buildSwim(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x5319)
	dim := 96 // three grids, 72KB each: the L2 holds them all
	b.Floats("gu", randFloats(rng, dim*dim, -1, 1, 0.5))
	b.Floats("gv", randFloats(rng, dim*dim, -1, 1, 0.5))
	b.Floats("gp", randFloats(rng, dim*dim, 0, 2, 0.5))
	k.begin()
	b.La(rBaseA, "gu")
	b.La(rBaseB, "gv")
	b.La(rBaseC, "gp")
	b.Li(r(15), int64(dim))
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.Li(r(1), int64(dim-2))
	b.RR(isa.OpREM, r(2), rIter, r(1))
	b.RI(opADDI, r(2), r(2), 1)
	b.RR(opMUL, r(3), r(2), r(15))
	b.RI(opSLLI, r(3), r(3), 3)
	b.RI(opADDI, r(3), r(3), 8)
	b.RR(opADD, r(4), rBaseA, r(3)) // u row
	b.RR(opADD, r(5), rBaseB, r(3)) // v row
	b.RR(opADD, r(6), rBaseC, r(3)) // p row
	b.Li(r(7), int64(dim-2))
	b.Li(r(8), 0) // column index: narrow
	b.Label("sw")
	b.RI(opSLLI, r(9), r(8), 3)
	b.RR(opADD, r(10), r(4), r(9))
	b.RR(opADD, r(11), r(5), r(9))
	b.RR(opADD, r(12), r(6), r(9))
	b.RI(opADDI, r(13), r(12), 8)
	b.RI(opADDI, r(14), r(12), -8)
	b.Load(isa.OpFLD, f(1), r(10), 0)
	b.Load(isa.OpFLD, f(2), r(11), 0)
	b.Load(isa.OpFLD, f(3), r(13), 0)
	b.Load(isa.OpFLD, f(4), r(14), 0)
	b.Load(isa.OpFLD, f(5), r(12), int64(8*dim))
	b.Load(isa.OpFLD, f(6), r(12), int64(-8*dim))
	b.RR(opFSUB, f(7), f(3), f(4))
	b.RR(opFSUB, f(8), f(5), f(6))
	b.RR(opFADD, f(1), f(1), f(7))
	b.RR(opFADD, f(2), f(2), f(8))
	b.Store(isa.OpFST, f(1), r(10), 0)
	b.Store(isa.OpFST, f(2), r(11), 0)
	b.RR(opADD, rSum, rSum, r(8)) // narrow column checksum
	k.spice(r(8), "swS")
	b.RI(opADDI, r(8), r(8), 1)
	b.RI(opADDI, r(7), r(7), -1)
	b.Bnez(r(7), "sw")
	// Fold samples of the new row off the critical path.
	b.Load(isa.OpFLD, f(10), r(4), 0)
	b.Load(isa.OpFLD, f(9), r(5), 0)
	b.RR(opFADD, f(10), f(10), f(9))
	fpFold(b)
	return k.end()
}

func init() {
	register(Workload{
		Name: "wupwise", Class: FP, PaperIPC4: 1.83, PaperIPC8: 1.86,
		Description:  "lattice-QCD-like complex 2x2 matrix-vector products streamed over 2MB of sites (stands in for wupwise)",
		DefaultIters: 5000, build: buildWupwise,
	})
}

func buildWupwise(iters int) *asm.Program {
	k := newKernel(iters)
	b := k.b
	rng := newRand(0x4B15E)
	nSites := 4 << 10 // 8 doubles per site: 256KB lattice slab
	b.Floats("lattice", randFloats(rng, 8*nSites, -1, 1, 0.55))
	b.Floats("gauge", randFloats(rng, 8, -1, 1, 0))
	k.begin()
	b.La(rBaseA, "lattice")
	b.La(r(1), "gauge")
	for i := 0; i < 8; i++ {
		b.Load(isa.OpFLD, f(16+i), r(1), int64(8*i))
	}
	k.loop()
	b.R1(opCVTIF, f(10), isa.RZero)
	b.RI(opANDI, r(2), rIter, 1023)
	b.RI(opSLLI, r(2), r(2), 6)
	b.RR(opADD, r(2), rBaseA, r(2))
	b.Li(r(3), 4) // sites per iteration
	b.Li(r(4), 0) // site cursor: narrow
	b.Label("site")
	b.RI(opSLLI, r(5), r(4), 6)
	b.RR(opADD, r(6), r(2), r(5))
	b.RI(opANDI, r(7), r(4), 127)
	b.RR(opADD, rSum, rSum, r(7))
	b.Load(isa.OpFLD, f(1), r(6), 0) // v0.re
	b.Load(isa.OpFLD, f(2), r(6), 8) // v0.im
	b.Load(isa.OpFLD, f(3), r(6), 16)
	b.Load(isa.OpFLD, f(4), r(6), 24)
	// (m00*v0 + m01*v1) complex for both output components.
	b.RR(opFMUL, f(5), f(1), f(16))
	b.RR(opFMUL, f(6), f(2), f(17))
	b.RR(opFSUB, f(5), f(5), f(6))
	b.RR(opFMUL, f(6), f(3), f(18))
	b.RR(opFMUL, f(7), f(4), f(19))
	b.RR(opFSUB, f(6), f(6), f(7))
	b.RR(opFADD, f(5), f(5), f(6)) // out0.re
	b.RR(opFMUL, f(8), f(1), f(20))
	b.RR(opFMUL, f(9), f(2), f(21))
	b.RR(opFADD, f(8), f(8), f(9))
	b.RR(opFMUL, f(9), f(3), f(22))
	b.RR(opFMUL, f(11), f(4), f(23))
	b.RR(opFADD, f(9), f(9), f(11))
	b.RR(opFADD, f(8), f(8), f(9)) // out1.re
	b.Store(isa.OpFST, f(5), r(6), 32)
	b.Store(isa.OpFST, f(8), r(6), 40)
	b.RR(opFADD, f(10), f(10), f(5))
	k.spice(r(7), "wwS")
	b.RI(opADDI, r(4), r(4), 1)
	b.RI(opADDI, r(3), r(3), -1)
	b.Bnez(r(3), "site")
	fpFold(b)
	return k.end()
}
