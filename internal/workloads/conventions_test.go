package workloads

import (
	"testing"

	"prisim/internal/emu"
	"prisim/internal/isa"
	"prisim/internal/stats"
)

// TestKernelsRespectRegisterConventions statically checks every kernel's
// dynamic stream: the stack pointer and link register are never clobbered
// (no kernel makes calls), and every loop terminates back at the outer
// label (implied by the halting test elsewhere). Catches register-window
// arithmetic slips in the builders.
func TestKernelsRespectRegisterConventions(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := emu.New(w.Build(3))
			for i := 0; i < 300_000 && !m.Halted(); i++ {
				in := m.PeekInst()
				if d, ok := in.Dest(); ok {
					if d == isa.RSP || d == isa.RLR {
						t.Fatalf("%s writes %s at pc %#x: %v", w.Name, d, m.PC, in)
					}
				}
				m.Step()
			}
		})
	}
}

// TestKernelNarrownessBands: each suite's operand-width profile must stay
// inside the calibrated bands DESIGN.md documents, so workload edits that
// silently destroy the paper's Figure 2 shape fail loudly.
func TestKernelNarrownessBands(t *testing.T) {
	for _, w := range Integer() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := emu.New(w.Build(0))
			m.Run(5000)
			s := stats.Analyze(m, 25000)
			frac := s.IntFracWithin(10)
			// Paper band: 23%..82% of operands within 10 bits. Allow a
			// little slack below for the bitboard-style outliers.
			if frac < 0.15 || frac > 0.95 {
				t.Errorf("%s: %.1f%% of operands within 10 bits, outside the calibrated band",
					w.Name, 100*frac)
			}
		})
	}
	for _, w := range FloatingPoint() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			m := emu.New(w.Build(0))
			m.Run(5000)
			s := stats.Analyze(m, 25000)
			if s.FPOperands == 0 {
				t.Fatalf("%s: no fp operands observed", w.Name)
			}
			// Every fp kernel must supply some trivially-inlinable patterns.
			if s.FPTrivialFrac() < 0.005 {
				t.Errorf("%s: only %.2f%% trivial fp operands", w.Name, 100*s.FPTrivialFrac())
			}
		})
	}
}

// TestKernelWorkingSetsDeclared: every kernel's data image must stay within
// the region its masks address — a mask larger than the backing array would
// silently read zeroes and distort the workload.
func TestKernelMemoryStaysInDeclaredData(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(2)
			// Find the end of declared data (segments plus zeroed Space is
			// not recorded in segments, so use the symbol map's maximum
			// plus a generous slab).
			var hi uint64
			for _, seg := range prog.Data {
				if end := seg.Base + uint64(len(seg.Bytes)); end > hi {
					hi = end
				}
			}
			hi += 32 << 20 // Space() regions are zeroed but legitimate
			m := emu.New(prog)
			for i := 0; i < 200_000 && !m.Halted(); i++ {
				info := m.Step()
				if info.IsMem && info.MemAddr != 0 {
					if info.MemAddr < 0x10000 {
						t.Fatalf("%s touches low memory %#x", w.Name, info.MemAddr)
					}
					if info.MemAddr > hi && info.MemAddr < 0x7FFF_0000 {
						t.Fatalf("%s touches %#x beyond declared data (%#x)", w.Name, info.MemAddr, hi)
					}
				}
			}
		})
	}
}
