package workloads

import (
	"testing"

	"prisim/internal/emu"
	"prisim/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	if got := len(Integer()); got != 13 {
		t.Errorf("integer suite has %d workloads, want 13", got)
	}
	if got := len(FloatingPoint()); got != 14 {
		t.Errorf("fp suite has %d workloads, want 14", got)
	}
	names := map[string]bool{}
	for _, w := range All() {
		if w.Name == "" || w.Description == "" || w.build == nil {
			t.Errorf("workload %+v incomplete", w.Name)
		}
		if w.PaperIPC4 <= 0 || w.PaperIPC8 <= 0 {
			t.Errorf("%s missing paper IPC reference", w.Name)
		}
		if w.DefaultIters <= 0 {
			t.Errorf("%s missing default iterations", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"bzip2", "mcf", "vpr", "vpr_ref", "ammp", "swim", "wupwise"} {
		if !names[want] {
			t.Errorf("missing workload %q", want)
		}
	}
	if _, ok := ByName("mcf"); !ok {
		t.Error("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName found a ghost")
	}
}

// TestKernelsRunAndSelfCheck functionally executes every kernel at a small
// scale: it must halt, store a checksum, and be deterministic.
func TestKernelsRunAndSelfCheck(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			run := func() (uint64, uint64) {
				prog := w.Build(30)
				m := emu.New(prog)
				n := m.Run(30_000_000)
				if !m.Halted() {
					t.Fatalf("%s did not halt in 30M instructions", w.Name)
				}
				return Checksum(prog, m.Mem.ReadU64), n
			}
			c1, n1 := run()
			c2, n2 := run()
			if c1 != c2 || n1 != n2 {
				t.Errorf("%s nondeterministic: (%#x,%d) vs (%#x,%d)", w.Name, c1, n1, c2, n2)
			}
			if n1 < 500 {
				t.Errorf("%s ran only %d instructions at scale 30", w.Name, n1)
			}
		})
	}
}

// TestKernelInstructionMix checks each kernel exercises the features its
// description claims: loads, branches, and (for fp kernels) FP arithmetic.
func TestKernelInstructionMix(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(5)
			m := emu.New(prog)
			var loads, stores, branches, fpOps, total uint64
			for !m.Halted() && total < 2_000_000 {
				info := m.Step()
				total++
				op := info.Inst.Op
				switch {
				case op.IsLoad():
					loads++
				case op.IsStore():
					stores++
				case op.IsBranch():
					branches++
				}
				if op.Class() == isa.FUFPAdd || op.Class() == isa.FUFPMulDiv {
					fpOps++
				}
			}
			if loads == 0 || branches == 0 {
				t.Errorf("%s: no loads (%d) or branches (%d)", w.Name, loads, branches)
			}
			if w.Class == FP && fpOps*10 < total {
				t.Errorf("%s: only %d/%d fp ops", w.Name, fpOps, total)
			}
			if stores == 0 {
				t.Errorf("%s: no stores", w.Name)
			}
		})
	}
}

// TestDefaultScaleBudget ensures the default iteration count provides
// enough dynamic instructions for the measurement runs (>= 500k).
func TestDefaultScaleBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			prog := w.Build(0)
			m := emu.New(prog)
			n := m.Run(500_000)
			if m.Halted() && n < 500_000 {
				t.Errorf("%s halted after only %d instructions at default scale", w.Name, n)
			}
		})
	}
}

func TestRandHelpers(t *testing.T) {
	r := newRand(42)
	if r.intn(10) < 0 || r.intn(10) >= 10 {
		t.Error("intn out of range")
	}
	v := r.float(1, 2)
	if v < 1 || v >= 2 {
		t.Errorf("float out of range: %v", v)
	}
	fs := randFloats(newRand(7), 1000, -1, 1, 0.5)
	zeros := 0
	for _, f := range fs {
		if f == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Errorf("zero fraction off: %d/1000", zeros)
	}
	ring := permutationRing(0x1000, 16, 3)
	seen := map[uint64]bool{}
	addr := uint64(0x1000)
	for i := 0; i < 16; i++ {
		next := ring[(addr-0x1000)/8]
		if seen[next] {
			t.Fatal("ring not a single cycle")
		}
		seen[next] = true
		addr = next
	}
}
