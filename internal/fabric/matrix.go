package fabric

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"prisim"
	"prisim/internal/stats"
	"prisim/prisimclient"
)

// NormalizeMatrix fills a matrix's defaulted dimensions with their explicit
// values: widths [4], phys_regs [0] (machine default), and the universal
// measurement-budget defaults. Content hashing, expansion, and durable
// records all operate on the normalized form, so a spec and its
// explicit-default spelling are the same matrix.
func NormalizeMatrix(m prisimclient.Matrix) prisimclient.Matrix {
	if len(m.Widths) == 0 {
		m.Widths = []int{4}
	}
	if len(m.PhysRegs) == 0 {
		m.PhysRegs = []int{0}
	}
	if m.FastForward == 0 {
		m.FastForward = prisim.DefaultFastForward
	}
	if m.Run == 0 {
		m.Run = prisim.DefaultRun
	}
	return m
}

// MatrixID derives a matrix's durable identity: "mx-" plus the leading hex
// of the SHA-256 digest of (kernel version, normalized spec). Identical
// specs — submitted by any client, before or after a coordinator restart —
// collapse onto one ID, which is what lets duplicate submissions coalesce
// instead of recomputing.
func MatrixID(kernelVersion string, m prisimclient.Matrix) string {
	m = NormalizeMatrix(m)
	h := sha256.New()
	fmt.Fprintf(h, "prisim-matrix-v1\nkernel=%s\n", kernelVersion)
	for _, b := range m.Benchmarks {
		fmt.Fprintf(h, "bench=%s\n", b)
	}
	for _, p := range m.Policies {
		fmt.Fprintf(h, "policy=%s\n", p)
	}
	for _, w := range m.Widths {
		fmt.Fprintf(h, "width=%d\n", w)
	}
	for _, n := range m.PhysRegs {
		fmt.Fprintf(h, "phys_regs=%d\n", n)
	}
	fmt.Fprintf(h, "fast_forward=%d\nrun=%d\n", m.FastForward, m.Run)
	return "mx-" + hex.EncodeToString(h.Sum(nil))[:16]
}

// Expand expands a matrix into its simulate points in canonical order —
// width-major, then phys-regs, benchmark, policy — each carrying an
// explicit budget and its content-hash CacheKey. The order is part of the
// wire contract: tables assemble rows and columns from the same iteration,
// so a fabric run and a single-node run produce byte-identical output.
func Expand(kernelVersion string, m prisimclient.Matrix) []prisimclient.JobRequest {
	m = NormalizeMatrix(m)
	out := make([]prisimclient.JobRequest, 0, len(m.Widths)*len(m.PhysRegs)*len(m.Benchmarks)*len(m.Policies))
	for _, width := range m.Widths {
		for _, prs := range m.PhysRegs {
			for _, bench := range m.Benchmarks {
				for _, pol := range m.Policies {
					req := prisimclient.JobRequest{
						Kind:        prisimclient.KindSimulate,
						Benchmark:   bench,
						Width:       width,
						Policy:      pol,
						PhysRegs:    prs,
						FastForward: m.FastForward,
						Run:         m.Run,
					}
					req.CacheKey = prisimclient.CacheKeyFor(kernelVersion, req)
					out = append(out, req)
				}
			}
		}
	}
	return out
}

// ValidateMatrix checks the spec's shape and its benchmark/policy names
// against the engine's lists, so a bad matrix fails at submit rather than
// inside a worker.
func ValidateMatrix(m prisimclient.Matrix) error {
	if err := m.Validate(); err != nil {
		return err
	}
	known := make(map[string]bool)
	for _, b := range prisim.Benchmarks() {
		known[b.Name] = true
	}
	for _, b := range m.Benchmarks {
		if !known[b] {
			return fmt.Errorf("unknown benchmark %q", b)
		}
	}
	pols := make(map[string]bool)
	for _, p := range prisim.Policies() {
		pols[string(p)] = true
	}
	for _, p := range m.Policies {
		if !pols[p] {
			return fmt.Errorf("unknown policy %q", p)
		}
	}
	return nil
}

// matrixMetrics are the per-point values a matrix table reports, one table
// block per metric: IPC (the headline comparison) and total register
// lifetime (the paper's Figure 8 axis).
var matrixMetrics = []struct {
	name string
	cell func(prisim.Result) string
}{
	{"IPC", func(r prisim.Result) string { return stats.F(r.IPC, 3) }},
	{"avg register lifetime (cycles)", func(r prisim.Result) string {
		return stats.F(r.AllocToWrite+r.WriteToRead+r.ReadToRelease, 1)
	}},
}

// AssembleTables renders a matrix's experiment tables — one table per
// (metric, width, phys-regs) combination, benchmarks as rows and policies
// as columns — from per-point results looked up by cache key. Assembly is
// a pure function of (spec, results): the coordinator uses it over its
// store, and the byte-identity tests use it over direct Engine runs.
func AssembleTables(kernelVersion string, m prisimclient.Matrix, get func(cacheKey string) (prisim.Result, bool)) ([]prisim.Table, error) {
	m = NormalizeMatrix(m)
	var tables []prisim.Table
	for _, metric := range matrixMetrics {
		for _, width := range m.Widths {
			for _, prs := range m.PhysRegs {
				prsLabel := "default"
				if prs != 0 {
					prsLabel = fmt.Sprintf("%d", prs)
				}
				t := prisim.Table{
					Title:   fmt.Sprintf("Fabric matrix: %s by policy (width %d, PRs %s, ff %d, run %d)", metric.name, width, prsLabel, m.FastForward, m.Run),
					Columns: append([]string{"bench"}, m.Policies...),
				}
				for _, bench := range m.Benchmarks {
					row := []string{bench}
					for _, pol := range m.Policies {
						req := prisimclient.JobRequest{
							Kind: prisimclient.KindSimulate, Benchmark: bench,
							Width: width, Policy: pol, PhysRegs: prs,
							FastForward: m.FastForward, Run: m.Run,
						}
						key := prisimclient.CacheKeyFor(kernelVersion, req)
						res, ok := get(key)
						if !ok {
							return nil, fmt.Errorf("missing result for point %s/%s width=%d prs=%d (key %.12s...)", bench, pol, width, prs, key)
						}
						row = append(row, metric.cell(res))
					}
					t.Rows = append(t.Rows, row)
				}
				tables = append(tables, t)
			}
		}
	}
	return tables, nil
}
