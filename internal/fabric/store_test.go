package fabric

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"prisim"
	"prisim/prisimclient"
)

func testEntry(key, by string) Entry {
	return Entry{
		Key:        key,
		Kernel:     prisim.Version,
		ComputedBy: by,
		Created:    time.Unix(1700000000, 0).UTC(),
		Request:    prisimclient.JobRequest{Kind: prisimclient.KindSimulate, Benchmark: "gzip", Policy: "er"},
		Result:     prisim.Result{Benchmark: "gzip", IPC: 1.25, Committed: 1500},
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testEntry("k1", "w1")
	if err := s.Put(want); err != nil {
		t.Fatal(err)
	}
	if err := s.PutMatrix("mx-1", prisimclient.Matrix{Benchmarks: []string{"gzip"}, Policies: []string{"er"}}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkMatrixDone("mx-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, ok := s2.Get("k1")
	if !ok {
		t.Fatal("entry k1 lost across reopen")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("entry changed across reopen:\n got %+v\nwant %+v", got, want)
	}
	mats := s2.Matrices()
	if len(mats) != 1 || mats[0].ID != "mx-1" || !mats[0].Done {
		t.Errorf("matrices after reopen = %+v, want one done mx-1", mats)
	}
}

func TestStoreFirstWriteWins(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	first := testEntry("k", "w1")
	second := testEntry("k", "w2")
	if err := s.Put(first); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(second); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("k")
	if got.ComputedBy != "w1" {
		t.Errorf("ComputedBy = %q, want first writer w1", got.ComputedBy)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStoreRepairsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.log")
	s, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry("k1", "w1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testEntry("k2", "w1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, incomplete final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"result","entry":{"key":"k3","ker`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Errorf("Len after torn-tail repair = %d, want 2", s2.Len())
	}
	if _, ok := s2.Get("k3"); ok {
		t.Error("torn entry k3 should not have been replayed")
	}
	// The truncated log must accept clean appends and survive another cycle.
	if err := s2.Put(testEntry("k4", "w2")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Errorf("Len after repair+append+reopen = %d, want 3", s3.Len())
	}
}

func TestStoreHitMissCounters(t *testing.T) {
	s, err := OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	s.Get("absent")
	if err := s.Put(testEntry("k", "w1")); err != nil {
		t.Fatal(err)
	}
	s.Get("k")
	entries, hits, misses := s.Stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Errorf("Stats = (%d, %d, %d), want (1, 1, 1)", entries, hits, misses)
	}
}

func TestMatrixIDIsContentDerived(t *testing.T) {
	a := prisimclient.Matrix{Benchmarks: []string{"gzip"}, Policies: []string{"base", "er"}}
	b := prisimclient.Matrix{Benchmarks: []string{"gzip"}, Policies: []string{"base", "er"}, Widths: []int{4}}
	if MatrixID("v1", a) != MatrixID("v1", b) {
		t.Error("explicit-default spelling must hash identically to the defaulted spec")
	}
	c := prisimclient.Matrix{Benchmarks: []string{"gzip"}, Policies: []string{"er", "base"}}
	if MatrixID("v1", a) == MatrixID("v1", c) {
		t.Error("different policy order is a different matrix (column order matters)")
	}
	if MatrixID("v1", a) == MatrixID("v2", a) {
		t.Error("kernel version must be folded into the matrix identity")
	}
}

func TestExpandKeysMatchClientHash(t *testing.T) {
	m := NormalizeMatrix(prisimclient.Matrix{
		Benchmarks: []string{"gzip", "mcf"}, Policies: []string{"base", "er"},
		FastForward: 300, Run: 1500,
	})
	reqs := Expand(prisim.Version, m)
	if len(reqs) != 4 {
		t.Fatalf("expanded %d points, want 4", len(reqs))
	}
	seen := map[string]bool{}
	for _, r := range reqs {
		if r.CacheKey != prisimclient.CacheKeyFor(prisim.Version, r) {
			t.Errorf("point %s/%s carries a key that does not match CacheKeyFor", r.Benchmark, r.Policy)
		}
		if seen[r.CacheKey] {
			t.Errorf("duplicate cache key for %s/%s", r.Benchmark, r.Policy)
		}
		seen[r.CacheKey] = true
	}
}
