// Package fabric is the distributed experiment fabric: a coordinator that
// expands experiment matrices into content-addressed simulation points,
// serves warm points at memory speed from a durable append-only result
// store, and shards cold points across a registered pool of worker prisimd
// daemons (reusing prisimclient as the worker transport) with idle-node
// fan-out and retry-with-backoff on worker failure.
//
// Everything hangs off the determinism guarantee prilint enforces: a
// simulation is a pure function of (kernel version, workload, policy,
// params), so a result keyed by the SHA-256 of those inputs is valid
// forever, coalesces duplicate work across nodes and restarts, and lets a
// fabric-computed table be byte-identical to a single-node Engine run.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"prisim"
	"prisim/prisimclient"
)

// Errors surfaced by coordinator methods (the HTTP layer maps them).
var (
	ErrNoSuchMatrix    = errors.New("no such matrix")
	ErrMatrixNotDone   = errors.New("matrix is not done")
	ErrVersionSkew     = errors.New("worker kernel version skew")
	ErrTooManyPoints   = errors.New("matrix exceeds the point limit")
	ErrNoSuchWorker    = errors.New("no such worker")
	errCoordinatorDown = errors.New("coordinator is shut down")
)

// Config sizes a Coordinator. Store is required; the zero value of every
// other field selects a sane default.
type Config struct {
	// Store is the durable content-addressed result store (required). The
	// coordinator replays its matrix records at startup and resumes any
	// that never finished.
	Store *Store
	// NodeID identifies this coordinator in ComputedBy stamps for locally
	// executed points. Default "coordinator".
	NodeID string
	// KernelVersion overrides the build version folded into content hashes
	// (tests); default prisim.Version.
	KernelVersion string
	// LocalSlots bounds points the coordinator executes on its own engine
	// when no worker is free (or none is registered). 0 disables local
	// execution: cold points wait for a worker.
	LocalSlots int
	// Engine overrides the local-execution engine (tests); normally nil,
	// building one sized to LocalSlots.
	Engine *prisim.Engine
	// WorkerSlots bounds concurrent points dispatched to one worker;
	// <= 0 selects 4 (half a default worker's queue depth, so dispatch
	// backpressure stays rare).
	WorkerSlots int
	// MaxAttempts bounds how often one point is dispatched before the
	// matrices waiting on it fail; <= 0 selects 4.
	MaxAttempts int
	// RetryBackoff is the base delay before a failed point re-enters the
	// queue (doubled per attempt, capped at 5s); <= 0 selects 200ms.
	RetryBackoff time.Duration
	// PointTimeout bounds one dispatch (submit + wait + fetch); <= 0
	// selects 5m.
	PointTimeout time.Duration
	// MaxPoints bounds one matrix's expansion; <= 0 selects 4096.
	MaxPoints int
	// Logger receives coordinator logs; nil discards them.
	Logger *log.Logger
}

// worker is one registered prisimd daemon. All fields are mutated only
// under the coordinator's mu.
type worker struct {
	id         string
	url        string
	client     *prisimclient.Client
	version    string
	registered time.Time

	inflight    int
	completed   uint64
	failures    uint64
	consecFails int
	lastErr     string
	unhealthyAt time.Time // non-zero while quarantined
}

// flight is one cold point being computed (or queued to be). Duplicate
// requests for the key — from other matrices, other clients, other nodes —
// subscribe as waiters instead of spawning another run. All fields are
// mutated only under the coordinator's mu.
type flight struct {
	key     string
	req     prisimclient.JobRequest
	owner   *matrixRun // the matrix whose submission created the flight
	waiters []*matrixRun
	queued  bool

	attempts   int
	lastWorker string
	lastErr    string
}

// matrixRun is the in-memory lifecycle of one submitted matrix. All fields
// are mutated only under the coordinator's mu.
type matrixRun struct {
	id      string
	spec    prisimclient.Matrix // normalized
	reqs    []prisimclient.JobRequest
	created time.Time

	state      prisimclient.JobState
	errMsg     string
	finished   time.Time
	results    map[string]prisim.Result
	computedBy map[string]string
	doneCount  int
	hits       int
	executed   int
	coalesced  int
	tables     []prisim.Table
	doneCh     chan struct{}
}

// Coordinator owns the worker registry, the matrix registry, the per-point
// flight table, and the dispatch queue. Create one with New and stop it
// with Close. A Coordinator is safe for concurrent use.
type Coordinator struct {
	cfg    Config
	store  *Store
	engine *prisim.Engine // local execution; nil when LocalSlots == 0
	kernel string
	nodeID string

	rootCtx  context.Context
	rootStop context.CancelFunc
	wg       sync.WaitGroup

	mu            sync.Mutex
	cond          *sync.Cond // paired with mu; pending/capacity changes
	workers       map[string]*worker
	workerOrder   []string
	nextWorkerID  uint64
	rr            int               // round-robin start for worker picking
	affinity      map[string]string // guarded by mu; workload affinity: snapshot key -> last worker id
	flights       map[string]*flight
	pending       []*flight
	matrices      map[string]*matrixRun
	matrixOrder   []string
	localInflight int
	dispatched    uint64 // total worker dispatches since creation
	closed        bool
}

// New builds a Coordinator over cfg.Store, replays the store's matrix
// records (resuming any unfinished matrix), and starts the dispatch loop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("fabric: Config.Store is required")
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "coordinator"
	}
	if cfg.KernelVersion == "" {
		cfg.KernelVersion = prisim.Version
	}
	if cfg.WorkerSlots <= 0 {
		cfg.WorkerSlots = 4
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 200 * time.Millisecond
	}
	if cfg.PointTimeout <= 0 {
		cfg.PointTimeout = 5 * time.Minute
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 4096
	}
	engine := cfg.Engine
	if engine == nil && cfg.LocalSlots > 0 {
		engine = prisim.NewEngine(prisim.WithParallelism(cfg.LocalSlots))
	}
	//lint:ignore ctxcheck the coordinator owns this lifecycle root: every dispatch context derives from it and Close cancels it
	ctx, stop := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:      cfg,
		store:    cfg.Store,
		engine:   engine,
		kernel:   cfg.KernelVersion,
		nodeID:   cfg.NodeID,
		rootCtx:  ctx,
		rootStop: stop,
		workers:  make(map[string]*worker),
		affinity: make(map[string]string),
		flights:  make(map[string]*flight),
		matrices: make(map[string]*matrixRun),
	}
	c.cond = sync.NewCond(&c.mu)

	// Resume: every recorded matrix re-attaches to the store. Finished ones
	// complete instantly from warm results; unfinished ones re-enter the
	// queue with only their missing points cold.
	c.mu.Lock()
	for _, rec := range c.store.Matrices() {
		mr, err := c.buildRunLocked(rec.Spec, rec.Created)
		if err != nil {
			c.mu.Unlock()
			stop()
			return nil, fmt.Errorf("fabric: replaying matrix %s: %w", rec.ID, err)
		}
		if mr.id != rec.ID {
			c.logf("matrix=%s replay: spec now hashes to %s (kernel %s); resubmitting under the new identity", rec.ID, mr.id, c.kernel)
		}
		c.attachLocked(mr)
	}
	c.mu.Unlock()

	c.wg.Add(2)
	go c.schedule()
	go c.tick()
	return c, nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logger != nil {
		c.cfg.Logger.Printf(format, args...)
	}
}

// Close stops the dispatch loop and abandons in-flight dispatches. Durable
// state is already on disk: reopening a coordinator over the same store
// resumes every unfinished matrix.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.rootStop()
	c.cond.Broadcast()
	c.wg.Wait()
}

// Dispatched reports how many point dispatches went to workers since
// creation (the zero-dispatch warm-path assertions hang off this).
func (c *Coordinator) Dispatched() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dispatched
}

// KernelVersion reports the version folded into this coordinator's hashes.
func (c *Coordinator) KernelVersion() string { return c.kernel }

// --- Matrix lifecycle ---

// SubmitMatrix validates and registers a matrix, serving warm points from
// the store immediately and queueing cold ones. Matrix identity is
// content-derived: an identical spec returns the existing matrix (created
// reports false) without recomputing anything.
func (c *Coordinator) SubmitMatrix(spec prisimclient.Matrix) (st prisimclient.MatrixStatus, created bool, err error) {
	if err := ValidateMatrix(spec); err != nil {
		return prisimclient.MatrixStatus{}, false, err
	}
	spec = NormalizeMatrix(spec)
	points := len(spec.Benchmarks) * len(spec.Policies) * len(spec.Widths) * len(spec.PhysRegs)
	if points > c.cfg.MaxPoints {
		return prisimclient.MatrixStatus{}, false, fmt.Errorf("%w: %d > %d", ErrTooManyPoints, points, c.cfg.MaxPoints)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return prisimclient.MatrixStatus{}, false, errCoordinatorDown
	}
	id := MatrixID(c.kernel, spec)
	if mr, ok := c.matrices[id]; ok {
		return c.statusLocked(mr), false, nil
	}
	now := time.Now()
	// Durability first: the submission record hits the log before any point
	// dispatches, so a crash at any later moment can resume the matrix.
	if err := c.store.PutMatrix(id, spec, now); err != nil {
		return prisimclient.MatrixStatus{}, false, err
	}
	mr, err := c.buildRunLocked(spec, now)
	if err != nil {
		return prisimclient.MatrixStatus{}, false, err
	}
	c.attachLocked(mr)
	c.logf("matrix=%s points=%d hits=%d cold=%d", mr.id, len(mr.reqs), mr.hits, len(mr.reqs)-mr.doneCount)
	return c.statusLocked(mr), true, nil
}

// buildRunLocked constructs the in-memory run for a normalized spec.
func (c *Coordinator) buildRunLocked(spec prisimclient.Matrix, created time.Time) (*matrixRun, error) {
	spec = NormalizeMatrix(spec)
	if err := ValidateMatrix(spec); err != nil {
		return nil, err
	}
	return &matrixRun{
		id:         MatrixID(c.kernel, spec),
		spec:       spec,
		reqs:       Expand(c.kernel, spec),
		created:    created,
		state:      prisimclient.StateRunning,
		results:    make(map[string]prisim.Result),
		computedBy: make(map[string]string),
		doneCh:     make(chan struct{}),
	}, nil
}

// attachLocked registers the run and resolves each of its points: store
// hit, join of an existing flight, or a fresh flight on the queue.
func (c *Coordinator) attachLocked(mr *matrixRun) {
	c.matrices[mr.id] = mr
	c.matrixOrder = append(c.matrixOrder, mr.id)
	for _, req := range mr.reqs {
		key := req.CacheKey
		if _, dup := mr.results[key]; dup {
			// A degenerate spec can name one point twice; count it once.
			continue
		}
		if e, ok := c.store.Get(key); ok {
			c.recordPointLocked(mr, key, e.Result, e.ComputedBy, srcStore)
			continue
		}
		if f, ok := c.flights[key]; ok {
			f.waiters = append(f.waiters, mr)
			mr.coalesced++
			continue
		}
		f := &flight{key: key, req: req, owner: mr, waiters: []*matrixRun{mr}, queued: true}
		c.flights[key] = f
		c.pending = append(c.pending, f)
	}
	// An all-warm matrix already completed inside the last recordPointLocked.
	c.cond.Broadcast()
}

// uniquePoints counts the distinct cache keys a run expands to.
func (c *Coordinator) uniquePoints(mr *matrixRun) int {
	seen := make(map[string]bool, len(mr.reqs))
	for _, r := range mr.reqs {
		seen[r.CacheKey] = true
	}
	return len(seen)
}

// pointSource says how a point reached a matrix.
type pointSource int

const (
	srcStore pointSource = iota // warm in the durable store
	srcExec                     // computed by a flight this matrix owns
	srcJoin                     // computed by a flight another matrix owns
)

// recordPointLocked folds one resolved point into a run and completes the
// run when it was the last.
func (c *Coordinator) recordPointLocked(mr *matrixRun, key string, res prisim.Result, by string, src pointSource) {
	if mr.state.Terminal() {
		return
	}
	if _, ok := mr.results[key]; ok {
		return
	}
	mr.results[key] = res
	mr.computedBy[key] = by
	mr.doneCount++
	switch src {
	case srcStore:
		mr.hits++
	case srcExec:
		mr.executed++
	case srcJoin:
		// Counted in coalesced at attach time.
	}
	if mr.doneCount == c.uniquePoints(mr) {
		c.finishRunLocked(mr)
	}
}

// finishRunLocked assembles the run's tables and marks it done — durably,
// so a restart replays it as completed.
func (c *Coordinator) finishRunLocked(mr *matrixRun) {
	tables, err := AssembleTables(c.kernel, mr.spec, func(key string) (prisim.Result, bool) {
		r, ok := mr.results[key]
		return r, ok
	})
	if err != nil {
		c.failRunLocked(mr, fmt.Sprintf("assembling tables: %v", err))
		return
	}
	mr.tables = tables
	mr.state = prisimclient.StateDone
	mr.finished = time.Now()
	close(mr.doneCh)
	if err := c.store.MarkMatrixDone(mr.id); err != nil {
		c.logf("matrix=%s done-marker append failed: %v", mr.id, err)
	}
	c.logf("matrix=%s state=done hits=%d executed=%d coalesced=%d latency=%s",
		mr.id, mr.hits, mr.executed, mr.coalesced, mr.finished.Sub(mr.created).Round(time.Millisecond))
}

// failRunLocked resolves a run as failed.
func (c *Coordinator) failRunLocked(mr *matrixRun, msg string) {
	if mr.state.Terminal() {
		return
	}
	mr.state = prisimclient.StateFailed
	mr.errMsg = msg
	mr.finished = time.Now()
	close(mr.doneCh)
	c.logf("matrix=%s state=failed error=%q", mr.id, msg)
}

// statusLocked snapshots a run as its wire status.
func (c *Coordinator) statusLocked(mr *matrixRun) prisimclient.MatrixStatus {
	return prisimclient.MatrixStatus{
		ID:            mr.id,
		Spec:          mr.spec,
		State:         mr.state,
		Error:         mr.errMsg,
		Points:        c.uniquePoints(mr),
		Done:          mr.doneCount,
		StoreHits:     mr.hits,
		Executed:      mr.executed,
		Coalesced:     mr.coalesced,
		KernelVersion: c.kernel,
		Created:       mr.created,
		Finished:      mr.finished,
	}
}

// MatrixStatus fetches one matrix's status.
func (c *Coordinator) MatrixStatus(id string) (prisimclient.MatrixStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mr, ok := c.matrices[id]
	if !ok {
		return prisimclient.MatrixStatus{}, fmt.Errorf("%w: %s", ErrNoSuchMatrix, id)
	}
	return c.statusLocked(mr), nil
}

// Matrices lists every tracked matrix's status, oldest first.
func (c *Coordinator) Matrices() []prisimclient.MatrixStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]prisimclient.MatrixStatus, 0, len(c.matrixOrder))
	for _, id := range c.matrixOrder {
		out = append(out, c.statusLocked(c.matrices[id]))
	}
	return out
}

// MatrixResult returns a finished matrix's tables and per-point results.
// It fails with ErrMatrixNotDone while points are outstanding and with the
// run's error once failed.
func (c *Coordinator) MatrixResult(id string) (prisimclient.MatrixResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mr, ok := c.matrices[id]
	if !ok {
		return prisimclient.MatrixResult{}, fmt.Errorf("%w: %s", ErrNoSuchMatrix, id)
	}
	switch mr.state {
	case prisimclient.StateDone:
	case prisimclient.StateFailed:
		return prisimclient.MatrixResult{}, fmt.Errorf("matrix failed: %s", mr.errMsg)
	default:
		return prisimclient.MatrixResult{}, fmt.Errorf("%w: %d/%d points resolved", ErrMatrixNotDone, mr.doneCount, c.uniquePoints(mr))
	}
	res := prisimclient.MatrixResult{ID: mr.id, KernelVersion: c.kernel, Tables: mr.tables}
	seen := make(map[string]bool, len(mr.reqs))
	for _, req := range mr.reqs {
		if seen[req.CacheKey] {
			continue
		}
		seen[req.CacheKey] = true
		res.Points = append(res.Points, prisimclient.PointResult{
			CacheKey:   req.CacheKey,
			Request:    req,
			Result:     mr.results[req.CacheKey],
			ComputedBy: mr.computedBy[req.CacheKey],
		})
	}
	return res, nil
}

// WaitMatrix blocks until the matrix reaches a terminal state and returns
// its final status.
func (c *Coordinator) WaitMatrix(ctx context.Context, id string) (prisimclient.MatrixStatus, error) {
	c.mu.Lock()
	mr, ok := c.matrices[id]
	if !ok {
		c.mu.Unlock()
		return prisimclient.MatrixStatus{}, fmt.Errorf("%w: %s", ErrNoSuchMatrix, id)
	}
	ch := mr.doneCh
	c.mu.Unlock()
	select {
	case <-ch:
		return c.MatrixStatus(id)
	case <-ctx.Done():
		return prisimclient.MatrixStatus{}, ctx.Err()
	}
}

// --- Worker registry ---

// workerCooldown is how long an unhealthy worker sits out before the
// scheduler tries it again.
const workerCooldown = 15 * time.Second

// RegisterWorker probes the daemon at url, refuses kernel-version skew
// (its results would hash under different keys than this coordinator
// computes), and adds it to the pool. Re-registering a known URL refreshes
// it and clears any unhealthy quarantine.
func (c *Coordinator) RegisterWorker(ctx context.Context, url string) (prisimclient.WorkerInfo, error) {
	url = strings.TrimRight(url, "/")
	client := prisimclient.NewClient(url)
	ver, err := client.Version(ctx)
	if err != nil {
		return prisimclient.WorkerInfo{}, fmt.Errorf("worker %s unreachable: %w", url, err)
	}
	if ver != c.kernel {
		return prisimclient.WorkerInfo{}, fmt.Errorf("%w: worker %s runs %s, coordinator runs %s", ErrVersionSkew, url, ver, c.kernel)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return prisimclient.WorkerInfo{}, errCoordinatorDown
	}
	for _, w := range c.workers {
		if w.url == url {
			w.version = ver
			w.consecFails = 0
			w.unhealthyAt = time.Time{}
			w.lastErr = ""
			c.cond.Broadcast()
			c.logf("worker=%s re-registered url=%s version=%s", w.id, url, ver)
			return c.workerInfoLocked(w), nil
		}
	}
	c.nextWorkerID++
	w := &worker{
		id:         fmt.Sprintf("w%d", c.nextWorkerID),
		url:        url,
		client:     client,
		version:    ver,
		registered: time.Now(),
	}
	c.workers[w.id] = w
	c.workerOrder = append(c.workerOrder, w.id)
	c.cond.Broadcast()
	c.logf("worker=%s registered url=%s version=%s", w.id, url, ver)
	return c.workerInfoLocked(w), nil
}

// DeregisterWorker removes a worker from the pool. In-flight dispatches to
// it finish (or fail and re-queue) on their own.
func (c *Coordinator) DeregisterWorker(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[id]; !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchWorker, id)
	}
	delete(c.workers, id)
	for i, wid := range c.workerOrder {
		if wid == id {
			c.workerOrder = append(c.workerOrder[:i], c.workerOrder[i+1:]...)
			break
		}
	}
	c.logf("worker=%s deregistered", id)
	return nil
}

// Workers lists the pool.
func (c *Coordinator) Workers() []prisimclient.WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]prisimclient.WorkerInfo, 0, len(c.workerOrder))
	for _, id := range c.workerOrder {
		out = append(out, c.workerInfoLocked(c.workers[id]))
	}
	return out
}

func (c *Coordinator) workerInfoLocked(w *worker) prisimclient.WorkerInfo {
	return prisimclient.WorkerInfo{
		ID:         w.id,
		URL:        w.url,
		Version:    w.version,
		Healthy:    w.unhealthyAt.IsZero(),
		InFlight:   w.inflight,
		Completed:  w.completed,
		Failures:   w.failures,
		Registered: w.registered,
		LastError:  w.lastErr,
	}
}
