// Integration tests for the experiment fabric: coordinator + worker
// daemons wired over real HTTP (httptest), a durable store on disk, and
// the byte-identity contract against direct Engine runs. The package is
// external (fabric_test) because the worker side is internal/service,
// which itself imports fabric.
package fabric_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"prisim"
	"prisim/internal/fabric"
	"prisim/internal/service"
	"prisim/prisimclient"
)

var bg = context.Background()

// tiny keeps test simulations fast; shape is asserted, not paper numbers.
const (
	tinyFF  = 300
	tinyRun = 1500
)

// tinyMatrix is the canonical 2x2 test spec (4 points).
func tinyMatrix() prisimclient.Matrix {
	return prisimclient.Matrix{
		Benchmarks:  []string{"gzip", "mcf"},
		Policies:    []string{"base", "er"},
		FastForward: tinyFF,
		Run:         tinyRun,
	}
}

// bootWorker starts a real worker daemon (service.Server over httptest)
// named node and returns its URL.
func bootWorker(t *testing.T, node string) string {
	t.Helper()
	srv := service.New(service.Config{Workers: 2, NodeID: node})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		ts.Close()
	})
	return ts.URL
}

// optionsFor mirrors the worker-side request mapping for direct Engine
// reference runs.
func optionsFor(req prisimclient.JobRequest) prisim.Options {
	return prisim.Options{
		Benchmark:         req.Benchmark,
		Width:             req.Width,
		Policy:            prisim.Policy(req.Policy),
		PhysRegs:          req.PhysRegs,
		RenameInline:      req.RenameInline,
		DelayedAllocation: req.DelayedAllocation,
		FastForward:       req.FastForward,
		Run:               req.Run,
	}
}

// tablesText renders tables the way clients consume them.
func tablesText(tables []prisim.Table) string {
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestFabricByteIdenticalAndWarmRestart is the flagship acceptance test:
// a matrix sharded across two worker daemons must render byte-identically
// to direct single-node Engine runs; and after a coordinator restart over
// the same store, resubmitting the matrix must serve entirely from the
// durable store with zero worker dispatches.
func TestFabricByteIdenticalAndWarmRestart(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.log")
	st, err := fabric.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fabric.New(fabric.Config{Store: st, WorkerSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, url := range []string{bootWorker(t, "node-a"), bootWorker(t, "node-b")} {
		if _, err := coord.RegisterWorker(bg, url); err != nil {
			t.Fatal(err)
		}
	}

	spec := tinyMatrix()
	status, created, err := coord.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first submission must create the matrix")
	}
	ctx, cancel := context.WithTimeout(bg, 60*time.Second)
	defer cancel()
	final, err := coord.WaitMatrix(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("matrix state = %s (%s)", final.State, final.Error)
	}
	if final.Executed != final.Points || final.StoreHits != 0 {
		t.Errorf("cold run: executed=%d hits=%d, want executed=%d hits=0", final.Executed, final.StoreHits, final.Points)
	}

	res, err := coord.MatrixResult(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if !strings.HasPrefix(p.ComputedBy, "node-") {
			t.Errorf("point %s/%s computed by %q, want a worker node", p.Request.Benchmark, p.Request.Policy, p.ComputedBy)
		}
	}

	// Byte-identity: assemble the same tables from direct Engine runs.
	eng := prisim.NewEngine()
	direct := make(map[string]prisim.Result)
	for _, req := range fabric.Expand(prisim.Version, spec) {
		r, err := eng.Simulate(bg, optionsFor(req))
		if err != nil {
			t.Fatal(err)
		}
		direct[req.CacheKey] = r
	}
	want, err := fabric.AssembleTables(prisim.Version, spec, func(key string) (prisim.Result, bool) {
		r, ok := direct[key]
		return r, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, wantTxt := tablesText(res.Tables), tablesText(want); got != wantTxt {
		t.Errorf("fabric tables differ from single-node Engine tables:\n--- fabric ---\n%s--- direct ---\n%s", got, wantTxt)
	}

	// Duplicate submission coalesces onto the existing matrix.
	dup, created, err := coord.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created || dup.ID != status.ID {
		t.Errorf("duplicate submission: created=%t id=%s, want coalesced onto %s", created, dup.ID, status.ID)
	}

	// Restart: a fresh coordinator over the same store, with NO workers and
	// no local slots, must complete the replayed matrix and serve a
	// resubmission entirely from the store.
	coord.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := fabric.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	coord2, err := fabric.New(fabric.Config{Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()

	warm, created, err := coord2.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Error("resubmission after restart must coalesce onto the replayed matrix")
	}
	if warm.State != prisimclient.StateDone {
		t.Fatalf("replayed matrix state = %s (%s), want done with no workers attached", warm.State, warm.Error)
	}
	if warm.StoreHits != warm.Points || warm.Executed != 0 {
		t.Errorf("warm run: hits=%d executed=%d, want hits=%d executed=0", warm.StoreHits, warm.Executed, warm.Points)
	}
	if n := coord2.Dispatched(); n != 0 {
		t.Errorf("warm coordinator dispatched %d points to workers, want 0", n)
	}
	res2, err := coord2.MatrixResult(warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := tablesText(res2.Tables); got != tablesText(want) {
		t.Error("store-served tables differ from the original run")
	}
}

// TestWorkerCrashRedispatch kills a worker mid-point (a fake daemon whose
// job API errors) and asserts the coordinator re-dispatches the point to a
// healthy worker and still completes the matrix.
func TestWorkerCrashRedispatch(t *testing.T) {
	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fabric.New(fabric.Config{
		Store:        st,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// The crashing worker: version and submit behave, everything after dies.
	var jobN int
	crashy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasSuffix(r.URL.Path, "/version"):
			json.NewEncoder(w).Encode(map[string]string{"version": prisim.Version})
		case r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/jobs"):
			jobN++
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(prisimclient.Job{ID: fmt.Sprintf("job-%d", jobN), State: prisimclient.StateQueued})
		default:
			http.Error(w, "worker crashed", http.StatusInternalServerError)
		}
	}))
	defer crashy.Close()
	if _, err := coord.RegisterWorker(bg, crashy.URL); err != nil {
		t.Fatal(err)
	}

	spec := prisimclient.Matrix{
		Benchmarks: []string{"gzip"}, Policies: []string{"base"},
		FastForward: tinyFF, Run: tinyRun,
	}
	status, _, err := coord.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the crashy worker has demonstrably failed the point, then
	// bring up a real worker for the re-dispatch.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ws := coord.Workers()
		if len(ws) == 1 && ws[0].Failures > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crashy worker never recorded a failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := coord.RegisterWorker(bg, bootWorker(t, "node-healthy")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(bg, 60*time.Second)
	defer cancel()
	final, err := coord.WaitMatrix(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("matrix state = %s (%s), want done after re-dispatch", final.State, final.Error)
	}
	if final.Executed != 1 {
		t.Errorf("executed = %d, want 1", final.Executed)
	}
	res, err := coord.MatrixResult(status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if by := res.Points[0].ComputedBy; by != "node-healthy" {
		t.Errorf("point computed by %q, want the healthy worker node-healthy", by)
	}
}

// TestCoordinatorRestartResumesInFlightMatrix stops the coordinator after
// some (but not all) points landed in the store and asserts a fresh
// coordinator over the same store finishes the matrix, executing only the
// missing points.
func TestCoordinatorRestartResumesInFlightMatrix(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "results.log")
	st, err := fabric.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	workerURL := bootWorker(t, "node-a")
	coord, err := fabric.New(fabric.Config{Store: st, WorkerSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.RegisterWorker(bg, workerURL); err != nil {
		t.Fatal(err)
	}
	spec := tinyMatrix()
	status, _, err := coord.SubmitMatrix(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let at least one point land durably, then kill the coordinator.
	deadline := time.Now().Add(30 * time.Second)
	for st.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no point ever landed in the store")
		}
		time.Sleep(5 * time.Millisecond)
	}
	coord.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := fabric.OpenStore(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	preDone := st2.Len()
	if preDone == 0 {
		t.Fatal("durable store lost the completed points")
	}
	coord2, err := fabric.New(fabric.Config{Store: st2, WorkerSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if _, err := coord2.RegisterWorker(bg, workerURL); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 60*time.Second)
	defer cancel()
	final, err := coord2.WaitMatrix(ctx, status.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != prisimclient.StateDone {
		t.Fatalf("resumed matrix state = %s (%s)", final.State, final.Error)
	}
	if final.StoreHits < preDone {
		t.Errorf("resumed matrix hits = %d, want >= %d pre-crash points served warm", final.StoreHits, preDone)
	}
	if final.StoreHits+final.Executed != final.Points {
		t.Errorf("hits(%d) + executed(%d) != points(%d)", final.StoreHits, final.Executed, final.Points)
	}
}

// TestOverlappingMatricesCoalescePoints submits two matrices sharing a
// point while the coordinator has no capacity, and asserts the shared
// point runs once: the second matrix joins the first's in-flight point
// instead of spawning its own.
func TestOverlappingMatricesCoalescePoints(t *testing.T) {
	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	// No workers, no local slots: nothing can execute until we add capacity,
	// so both submissions observe the shared point as in-flight.
	coord, err := fabric.New(fabric.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	a := prisimclient.Matrix{
		Benchmarks: []string{"gzip"}, Policies: []string{"base", "er"},
		FastForward: tinyFF, Run: tinyRun,
	}
	b := prisimclient.Matrix{
		Benchmarks: []string{"gzip"}, Policies: []string{"er", "infpr"},
		FastForward: tinyFF, Run: tinyRun,
	}
	stA, _, err := coord.SubmitMatrix(a)
	if err != nil {
		t.Fatal(err)
	}
	stB, _, err := coord.SubmitMatrix(b)
	if err != nil {
		t.Fatal(err)
	}
	if stB.Coalesced != 1 {
		t.Fatalf("matrix B coalesced = %d, want 1 (the shared gzip/er point)", stB.Coalesced)
	}

	if _, err := coord.RegisterWorker(bg, bootWorker(t, "node-a")); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 60*time.Second)
	defer cancel()
	for _, id := range []string{stA.ID, stB.ID} {
		final, err := coord.WaitMatrix(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != prisimclient.StateDone {
			t.Fatalf("matrix %s state = %s (%s)", id, final.State, final.Error)
		}
	}
	finalA, _ := coord.MatrixStatus(stA.ID)
	finalB, _ := coord.MatrixStatus(stB.ID)
	if finalA.Executed != 2 {
		t.Errorf("matrix A executed = %d, want 2", finalA.Executed)
	}
	if finalB.Executed != 1 || finalB.Coalesced != 1 || finalB.StoreHits != 0 {
		t.Errorf("matrix B executed=%d coalesced=%d hits=%d, want 1/1/0", finalB.Executed, finalB.Coalesced, finalB.StoreHits)
	}
	// Three unique points total across both matrices.
	if n := st.Len(); n != 3 {
		t.Errorf("store holds %d entries, want 3 unique points", n)
	}
}

// TestRegisterWorkerRefusesVersionSkew pins the coordinator's kernel
// guard: a worker running a different build must be refused, because its
// results would hash under different content keys.
func TestRegisterWorkerRefusesVersionSkew(t *testing.T) {
	st, err := fabric.OpenStore("")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := fabric.New(fabric.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	stale := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"version": "v0.0.0-stale"})
	}))
	defer stale.Close()
	if _, err := coord.RegisterWorker(bg, stale.URL); err == nil {
		t.Fatal("registering a version-skewed worker must fail")
	}
}
