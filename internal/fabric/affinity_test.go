package fabric

import (
	"testing"

	"prisim/prisimclient"
)

// affinityCoord builds the minimal Coordinator state pickWorkerLocked needs.
func affinityCoord(slots int, ids ...string) *Coordinator {
	c := &Coordinator{
		cfg:      Config{WorkerSlots: slots},
		workers:  make(map[string]*worker),
		affinity: make(map[string]string),
	}
	for _, id := range ids {
		c.workers[id] = &worker{id: id}
		c.workerOrder = append(c.workerOrder, id)
	}
	return c
}

func pointFor(bench string) *flight {
	return &flight{req: prisimclient.JobRequest{Benchmark: bench, FastForward: 20_000, Run: 1000}}
}

// TestWorkloadAffinityStickiness checks the snapshot-reuse hint: once a
// workload has run on a node, later points of that workload keep landing
// there (the node's engine holds the warm fast-forward state), while other
// workloads still round-robin onto other nodes.
func TestWorkloadAffinityStickiness(t *testing.T) {
	c := affinityCoord(2, "node-a", "node-b", "node-c")

	first := c.pickWorkerLocked(pointFor("gzip"))
	if first == nil {
		t.Fatal("no worker picked")
	}
	for i := 0; i < 4; i++ {
		if w := c.pickWorkerLocked(pointFor("gzip")); w != first {
			t.Fatalf("pick %d for gzip landed on %s, want affinity node %s", i, w.id, first.id)
		}
	}
	// A different workload must not pile onto the affinity node while other
	// nodes are idle.
	if w := c.pickWorkerLocked(pointFor("mcf")); w == first {
		t.Errorf("mcf landed on gzip's affinity node %s with idle nodes available", first.id)
	}
	// A different fast-forward budget is a different snapshot, so it carries
	// no affinity with the base workload's node.
	other := &flight{req: prisimclient.JobRequest{Benchmark: "gzip", FastForward: 5000, Run: 1000}}
	if k := affinityKey(other.req); k == affinityKey(pointFor("gzip").req) {
		t.Errorf("distinct fast-forward budgets share affinity key %q", k)
	}
}

// TestWorkloadAffinitySpill checks that a saturated or failed affinity node
// does not capture the workload forever: the point spills to another node
// and the affinity follows it.
func TestWorkloadAffinitySpill(t *testing.T) {
	c := affinityCoord(1, "node-a", "node-b")

	first := c.pickWorkerLocked(pointFor("gzip"))
	first.inflight = 1 // saturate the affinity node
	spill := c.pickWorkerLocked(pointFor("gzip"))
	if spill == nil || spill == first {
		t.Fatalf("saturated affinity node was not spilled (got %v)", spill)
	}
	if got := c.affinity[affinityKey(pointFor("gzip").req)]; got != spill.id {
		t.Errorf("affinity after spill = %q, want %q", got, spill.id)
	}

	// A retried point avoids the node that just failed it, even when that
	// node holds the affinity.
	f := pointFor("gzip")
	f.lastWorker = spill.id
	first.inflight = 0
	if w := c.pickWorkerLocked(f); w == nil || w.id == spill.id {
		t.Errorf("retry was sent back to the failing affinity node %s", spill.id)
	}
}

// TestWorkloadAffinityProbeDoesNotAdvance checks the capacity probe
// (advance=false) neither claims round-robin position nor records affinity.
func TestWorkloadAffinityProbeDoesNotAdvance(t *testing.T) {
	c := affinityCoord(1, "node-a", "node-b")
	f := pointFor("gzip")
	if w := c.pickWorkerAtLocked(f, false); w == nil {
		t.Fatal("probe found no worker")
	}
	if len(c.affinity) != 0 {
		t.Errorf("capacity probe recorded affinity %v", c.affinity)
	}
	if c.rr != 0 {
		t.Errorf("capacity probe advanced round-robin to %d", c.rr)
	}
	// A deregistered affinity node must not wedge picking.
	c.affinity[affinityKey(f.req)] = "node-gone"
	if w := c.pickWorkerLocked(f); w == nil {
		t.Error("stale affinity to a deregistered node blocked picking")
	}
}
