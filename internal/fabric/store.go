package fabric

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"prisim"
	"prisim/prisimclient"
)

// Entry is one durable simulation result, addressed by its content hash
// (prisimclient.CacheKeyFor). Because prilint's determinism analyzer
// guarantees a result is a pure function of the hashed inputs, an entry
// never expires and never needs invalidation.
type Entry struct {
	Key        string                  `json:"key"`
	Kernel     string                  `json:"kernel"`
	ComputedBy string                  `json:"computed_by,omitempty"`
	Created    time.Time               `json:"created"`
	Request    prisimclient.JobRequest `json:"request"`
	Result     prisim.Result           `json:"result"`

	// Output is the console output of a program job ("prisim-prog-v1"
	// keys); empty for simulate points. It is part of the deterministic
	// outcome, so it is stored and replayed like the Result. The field is
	// additive: v1 logs without it decode with Output nil.
	Output []byte `json:"output,omitempty"`
}

// MatrixRecord is one durable matrix submission: replayed on restart so an
// in-flight matrix survives a coordinator crash and resumes where the
// result log left off.
type MatrixRecord struct {
	ID      string              `json:"id"`
	Spec    prisimclient.Matrix `json:"spec"`
	Created time.Time           `json:"created"`

	// Done is reconstructed from a later matrix_done record, not stored on
	// the submission record itself (the log is append-only).
	Done bool `json:"-"`
}

// record is one line of the store's append-only log.
type record struct {
	Type     string        `json:"type"` // "result", "matrix", or "matrix_done"
	Entry    *Entry        `json:"entry,omitempty"`
	Matrix   *MatrixRecord `json:"matrix,omitempty"`
	MatrixID string        `json:"matrix_id,omitempty"`
}

// Store is the fabric's durable content-addressed result store: an
// append-only JSON-lines log on disk plus an in-memory index, replayed on
// open. Appends are whole-line writes; a torn final line (crash mid-append)
// is repaired by truncating to the last complete record on the next open.
// A Store is safe for concurrent use.
type Store struct {
	mu sync.Mutex

	f    *os.File                 // guarded by mu; nil = memory-only store
	path string                   // "" = memory-only
	ents map[string]Entry         // guarded by mu; by cache key
	mats map[string]*MatrixRecord // guarded by mu; by matrix ID
	mord []string                 // guarded by mu; matrix insertion order

	hits   uint64 // guarded by mu
	misses uint64 // guarded by mu
}

// OpenStore opens (creating if absent) the store log at path and replays it
// into memory. path "" selects a memory-only store: same semantics, nothing
// survives the process — useful for tests and for coordinators explicitly
// run without durability.
//
//prisim:locked — the store is under construction and unshared until return.
func OpenStore(path string) (*Store, error) {
	s := &Store{
		path: path,
		ents: make(map[string]Entry),
		mats: make(map[string]*MatrixRecord),
	}
	if path == "" {
		return s, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fabric store: %w", err)
	}
	good, err := s.replayLocked(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Repair a torn tail: drop everything after the last complete record so
	// the next append starts on a clean line boundary.
	if fi, err := f.Stat(); err == nil && fi.Size() > good {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("fabric store: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("fabric store: %w", err)
	}
	s.f = f
	return s, nil
}

// replayLocked loads every complete record and returns the byte offset of
// the end of the last good line. Only OpenStore calls it, before the store
// is shared.
func (s *Store) replayLocked(f *os.File) (int64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	var good int64
	for sc.Scan() {
		line := sc.Bytes()
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// Incomplete or corrupt line — stop here; the caller truncates.
			return good, nil
		}
		good += int64(len(line)) + 1 // line + newline
		s.applyLocked(rec)
	}
	if err := sc.Err(); err != nil {
		return good, fmt.Errorf("fabric store: replay: %w", err)
	}
	return good, nil
}

// applyLocked folds one record into the in-memory index (first write wins
// for results: entries are immutable by construction). Only replayLocked
// calls it, before the store is shared.
func (s *Store) applyLocked(rec record) {
	switch rec.Type {
	case "result":
		if rec.Entry != nil {
			if _, ok := s.ents[rec.Entry.Key]; !ok {
				s.ents[rec.Entry.Key] = *rec.Entry
			}
		}
	case "matrix":
		if rec.Matrix != nil {
			if _, ok := s.mats[rec.Matrix.ID]; !ok {
				m := *rec.Matrix
				s.mats[m.ID] = &m
				s.mord = append(s.mord, m.ID)
			}
		}
	case "matrix_done":
		if m, ok := s.mats[rec.MatrixID]; ok {
			m.Done = true
		}
	}
}

// appendLocked writes one record to the log. Callers hold s.mu.
func (s *Store) appendLocked(rec record) error {
	if s.f == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := s.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("fabric store: append: %w", err)
	}
	return nil
}

// Get returns the entry for key, counting a hit or miss.
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.ents[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return e, ok
}

// Put durably records one result. Re-putting an existing key is a no-op —
// results are content-addressed, so the first entry is as good as any.
func (s *Store) Put(e Entry) error {
	if e.Key == "" {
		return fmt.Errorf("fabric store: entry has no key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.ents[e.Key]; ok {
		return nil
	}
	if err := s.appendLocked(record{Type: "result", Entry: &e}); err != nil {
		return err
	}
	s.ents[e.Key] = e
	return nil
}

// PutMatrix durably records a matrix submission (before any of its points
// dispatch, so a crash can always resume it). Known IDs are a no-op.
func (s *Store) PutMatrix(id string, spec prisimclient.Matrix, created time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.mats[id]; ok {
		return nil
	}
	m := &MatrixRecord{ID: id, Spec: spec, Created: created}
	if err := s.appendLocked(record{Type: "matrix", Matrix: m}); err != nil {
		return err
	}
	s.mats[id] = m
	s.mord = append(s.mord, id)
	return nil
}

// MarkMatrixDone durably records that every point of the matrix is in the
// result log, so a restart replays it as completed instead of resuming it.
func (s *Store) MarkMatrixDone(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.mats[id]
	if !ok || m.Done {
		return nil
	}
	if err := s.appendLocked(record{Type: "matrix_done", MatrixID: id}); err != nil {
		return err
	}
	m.Done = true
	return nil
}

// Matrices snapshots every recorded matrix in submission order.
func (s *Store) Matrices() []MatrixRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MatrixRecord, 0, len(s.mord))
	for _, id := range s.mord {
		out = append(out, *s.mats[id])
	}
	return out
}

// Len reports how many results the store holds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ents)
}

// Stats reports the store's size and lookup counters.
func (s *Store) Stats() (entries int, hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ents), s.hits, s.misses
}

// Path reports the backing log file ("" for a memory-only store).
func (s *Store) Path() string { return s.path }

// Close releases the log file. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}
