package fabric

import (
	"context"
	"errors"
	"fmt"
	"time"

	"prisim"
	"prisim/prisimclient"
)

// schedule is the dispatch loop: it sleeps on the condition variable until
// a cold point is queued AND capacity exists somewhere (a healthy worker
// with a free slot, or a free local slot), then fans the point out. Workers
// are preferred over local slots — the coordinator's cycles belong to the
// control plane — and a retried point prefers a different worker than the
// one that just failed it.
func (c *Coordinator) schedule() {
	defer c.wg.Done()
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for !c.closed && !c.dispatchableLocked() {
			c.cond.Wait()
		}
		if c.closed {
			return
		}
		// Walk the queue once; anything undispatchable right now stays put.
		var rest []*flight
		for i := 0; i < len(c.pending); i++ {
			f := c.pending[i]
			if w := c.pickWorkerLocked(f); w != nil {
				f.queued = false
				w.inflight++
				c.dispatched++
				c.wg.Add(1)
				go c.execOnWorker(w, f)
				continue
			}
			if c.engine != nil && c.localInflight < c.cfg.LocalSlots {
				f.queued = false
				c.localInflight++
				c.wg.Add(1)
				go c.execLocal(f)
				continue
			}
			rest = append(rest, f)
		}
		c.pending = rest
		if len(c.pending) > 0 {
			// Out of capacity — wait for an exec to finish or a tick.
			c.cond.Wait()
		}
	}
}

// tick periodically wakes the scheduler so quarantined workers get retried
// once their cooldown lapses even when no other event fires.
func (c *Coordinator) tick() {
	defer c.wg.Done()
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.rootCtx.Done():
			return
		case <-t.C:
			c.cond.Broadcast()
		}
	}
}

// dispatchableLocked reports whether any queued point could dispatch now.
func (c *Coordinator) dispatchableLocked() bool {
	if len(c.pending) == 0 {
		return false
	}
	if c.engine != nil && c.localInflight < c.cfg.LocalSlots {
		return true
	}
	for _, f := range c.pending {
		if c.pickableWorkerLocked(f) {
			return true
		}
	}
	return false
}

func (c *Coordinator) pickableWorkerLocked(f *flight) bool {
	return c.pickWorkerAtLocked(f, false) != nil
}

// affinityKey identifies the fast-forward snapshot a point's run clones on
// a worker: benchmark plus fast-forward budget (the axes a worker engine
// keys its warm-state cache by that matrices commonly vary).
func affinityKey(req prisimclient.JobRequest) string {
	return fmt.Sprintf("%s|ff=%d", req.Benchmark, req.FastForward)
}

// pickWorkerLocked selects a worker for f, preferring (a) the worker that
// last ran this point's workload — its engine already holds the warm
// fast-forward snapshot, so the run clones instead of replaying — then
// (b) healthy workers with free slots on a round-robin, avoiding (c) the
// node that just failed the point (the idle-node fan-out rule).
// Quarantined workers become eligible again after workerCooldown. The
// chosen worker is recorded as the workload's new affinity.
func (c *Coordinator) pickWorkerLocked(f *flight) *worker {
	w := c.pickWorkerAtLocked(f, true)
	if w != nil {
		c.affinity[affinityKey(f.req)] = w.id
	}
	return w
}

func (c *Coordinator) pickWorkerAtLocked(f *flight, advance bool) *worker {
	n := len(c.workerOrder)
	if n == 0 {
		return nil
	}
	now := time.Now()
	eligible := func(w *worker) bool {
		return w.inflight < c.cfg.WorkerSlots &&
			(w.unhealthyAt.IsZero() || now.Sub(w.unhealthyAt) >= workerCooldown)
	}
	// Workload affinity first: reusing the node that already fast-forwarded
	// this workload turns the run's warm-up into a snapshot clone.
	if id, ok := c.affinity[affinityKey(f.req)]; ok {
		if w := c.workers[id]; w != nil && eligible(w) && w.id != f.lastWorker {
			return w
		}
	}
	var fallback *worker // eligible but same node as the last failure
	for i := 0; i < n; i++ {
		w := c.workers[c.workerOrder[(c.rr+i)%n]]
		if !eligible(w) {
			continue
		}
		if w.id == f.lastWorker {
			if fallback == nil {
				fallback = w
			}
			continue
		}
		if advance {
			c.rr = (c.rr + i + 1) % n
		}
		return w
	}
	return fallback
}

// execOnWorker runs one point on a worker daemon: submit (with 429/503
// retry honoring the server's Retry-After), wait for the terminal state,
// fetch the result. Success lands in the store and resolves every waiting
// matrix; failure re-queues the point with exponential backoff or fails
// its matrices after MaxAttempts.
func (c *Coordinator) execOnWorker(w *worker, f *flight) {
	defer c.wg.Done()
	ctx, cancel := context.WithTimeout(c.rootCtx, c.cfg.PointTimeout)
	defer cancel()
	res, by, err := runPoint(ctx, w.client, f.req)

	c.mu.Lock()
	w.inflight--
	if err != nil {
		w.failures++
		w.consecFails++
		w.lastErr = err.Error()
		if w.consecFails >= 3 && w.unhealthyAt.IsZero() {
			w.unhealthyAt = time.Now()
			c.logf("worker=%s quarantined after %d consecutive failures: %v", w.id, w.consecFails, err)
		}
		c.pointFailedLocked(f, w.id, err)
		c.mu.Unlock()
		return
	}
	w.completed++
	w.consecFails = 0
	w.lastErr = ""
	if by == "" {
		by = w.id
	}
	c.mu.Unlock()

	c.pointDone(f, res, by)
}

// execLocal runs one point on the coordinator's own engine.
func (c *Coordinator) execLocal(f *flight) {
	defer c.wg.Done()
	ctx, cancel := context.WithTimeout(c.rootCtx, c.cfg.PointTimeout)
	defer cancel()
	res, err := c.engine.Simulate(ctx, optionsForPoint(f.req))

	c.mu.Lock()
	c.localInflight--
	if err != nil {
		c.pointFailedLocked(f, c.nodeID, err)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	c.pointDone(f, res, c.nodeID)
}

// pointDone persists a computed result and resolves its flight. The store
// append happens outside c.mu (lock order: c.mu is never held across
// store.mu acquisition from exec goroutines).
func (c *Coordinator) pointDone(f *flight, res prisim.Result, by string) {
	if err := c.store.Put(Entry{
		Key:        f.key,
		Kernel:     c.kernel,
		ComputedBy: by,
		Created:    time.Now(),
		Request:    f.req,
		Result:     res,
	}); err != nil {
		c.logf("point=%.12s store append failed: %v", f.key, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flights, f.key)
	for i, mr := range f.waiters {
		src := srcJoin
		if i == 0 && mr == f.owner {
			src = srcExec
		}
		c.recordPointLocked(mr, f.key, res, by, src)
	}
	c.cond.Broadcast()
}

// pointFailedLocked re-queues a failed point with exponential backoff, or —
// once attempts are exhausted — fails every matrix waiting on it. Callers
// hold c.mu.
func (c *Coordinator) pointFailedLocked(f *flight, nodeID string, err error) {
	f.attempts++
	f.lastWorker = nodeID
	f.lastErr = err.Error()
	if c.closed {
		return
	}
	if f.attempts >= c.cfg.MaxAttempts {
		delete(c.flights, f.key)
		c.logf("point=%.12s failed after %d attempts: %v", f.key, f.attempts, err)
		for _, mr := range f.waiters {
			c.failRunLocked(mr, fmt.Sprintf("point %s/%s (key %.12s...) failed after %d attempts: %v",
				f.req.Benchmark, f.req.Policy, f.key, f.attempts, err))
		}
		return
	}
	backoff := c.cfg.RetryBackoff << (f.attempts - 1)
	if max := 5 * time.Second; backoff > max {
		backoff = max
	}
	c.logf("point=%.12s attempt=%d node=%s error=%v; retrying in %s", f.key, f.attempts, nodeID, err, backoff)
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case <-c.rootCtx.Done():
			return
		case <-time.After(backoff):
		}
		c.mu.Lock()
		if !c.closed && !f.queued {
			f.queued = true
			c.pending = append(c.pending, f)
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}()
}

// runPoint drives one point through a worker's job API: submit, wait,
// fetch. Queue-full backpressure retries with the server's suggested
// delay until the point context expires.
func runPoint(ctx context.Context, client *prisimclient.Client, req prisimclient.JobRequest) (prisim.Result, string, error) {
	var job *prisimclient.Job
	for {
		var err error
		job, err = client.Submit(ctx, req)
		if err == nil {
			break
		}
		var apiErr *prisimclient.APIError
		retryable := errors.Is(err, prisimclient.ErrQueueFull) ||
			(errors.As(err, &apiErr) && apiErr.StatusCode == 503)
		if !retryable {
			return prisim.Result{}, "", fmt.Errorf("submit: %w", err)
		}
		delay := 100 * time.Millisecond
		if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
			delay = apiErr.RetryAfter
		}
		select {
		case <-ctx.Done():
			return prisim.Result{}, "", fmt.Errorf("submit: %w", ctx.Err())
		case <-time.After(delay):
		}
	}
	done, err := client.Wait(ctx, job.ID, 50*time.Millisecond)
	if err != nil {
		return prisim.Result{}, "", fmt.Errorf("wait %s: %w", job.ID, err)
	}
	if done.State != prisimclient.StateDone {
		return prisim.Result{}, "", fmt.Errorf("job %s finished %s: %s", job.ID, done.State, done.Error)
	}
	jr, err := client.Result(ctx, job.ID)
	if err != nil {
		return prisim.Result{}, "", fmt.Errorf("result %s: %w", job.ID, err)
	}
	if jr.Result == nil {
		return prisim.Result{}, "", fmt.Errorf("job %s: done without a simulate result", job.ID)
	}
	return *jr.Result, jr.ComputedBy, nil
}

// optionsForPoint maps a fully explicit point request onto engine options.
func optionsForPoint(req prisimclient.JobRequest) prisim.Options {
	return prisim.Options{
		Benchmark:         req.Benchmark,
		Width:             req.Width,
		Policy:            prisim.Policy(req.Policy),
		PhysRegs:          req.PhysRegs,
		RenameInline:      req.RenameInline,
		DelayedAllocation: req.DelayedAllocation,
		FastForward:       req.FastForward,
		Run:               req.Run,
	}
}
