package isa

import "math/bits"

// Value utilities shared by the significance-compression machinery (the
// heart of physical register inlining) and by the operand-significance
// analysis that reproduces the paper's Figure 2.

// SignificantBits returns the minimum number of bits needed to represent v
// as a two's-complement signed integer, including the sign bit. Zero and -1
// need 1 bit; 1 needs 2 bits (01); -2 needs 2 bits (10).
func SignificantBits(v uint64) int {
	if v>>63 != 0 {
		v = ^v // count leading ones by counting leading zeros of the complement
	}
	return 65 - bits.LeadingZeros64(v)
}

// FitsSigned reports whether v, interpreted as a two's-complement signed
// integer, can be represented in n bits. This is the paper's integer
// narrowness test: all high-order 64-n bits equal the n'th bit.
func FitsSigned(v uint64, n int) bool {
	if n >= 64 {
		return true
	}
	if n <= 0 {
		return false
	}
	return SignificantBits(v) <= n
}

// SignExtend returns v's low n bits sign-extended to 64 bits; it models the
// sign-extension hardware between the payload RAM and the ALU input.
func SignExtend(v uint64, n int) uint64 {
	if n >= 64 {
		return v
	}
	shift := uint(64 - n)
	return uint64(int64(v<<shift) >> shift)
}

// FPTrivial reports whether the 64-bit floating-point bit pattern is all
// zeroes or all ones — the paper's FP inlining condition. (All-zeroes is
// +0.0; all-ones is a particular NaN, but the test is on the raw pattern.)
func FPTrivial(v uint64) bool { return v == 0 || v == ^uint64(0) }

// FPExponentBits returns the number of significant bits in the 11-bit
// binary64 exponent field, counting the minimum width that can represent
// the field if its upper bits are all zeroes or all ones (the paper's
// Figure 2 treats exponents of all zeroes/ones as 0 extra bits; here a
// field whose high bits are a sign-like run compresses to the run break).
func FPExponentBits(v uint64) int {
	exp := (v >> 52) & 0x7FF
	if exp == 0 || exp == 0x7FF {
		return 0
	}
	// Width under the all-zero/all-one high-bit compression used by
	// significance compression schemes, over the 11-bit field: complement
	// a leading run of ones, then count the remaining width plus the run
	// marker bit.
	if exp>>10 != 0 {
		exp = ^exp & 0x7FF
	}
	n := bits.Len16(uint16(exp)) + 1
	if n > 11 {
		n = 11
	}
	return n
}

// FPSignificandBits returns the number of significant low-order bits in the
// 52-bit binary64 fraction field: trailing zeroes compress away, so the
// width is the position of the highest set bit counted from bit 51 downward
// (mantissas are left-aligned: fewer significant bits means more trailing
// zeroes). An all-zero fraction returns 0.
func FPSignificandBits(v uint64) int {
	frac := v & (1<<52 - 1)
	if frac == 0 {
		return 0
	}
	return 52 - bits.TrailingZeros64(frac)
}
