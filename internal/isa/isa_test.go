package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{RZero, "zero"}, {RSP, "sp"}, {RLR, "lr"},
		{IntReg(7), "r7"}, {FPReg(0), "f0"}, {FPReg(31), "f31"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", c.r, got, c.want)
		}
		back, err := ParseReg(c.want)
		if err != nil || back != c.r {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", c.want, back, err, c.r)
		}
	}
}

func TestParseRegErrors(t *testing.T) {
	for _, s := range []string{"", "r", "r32", "f32", "x3", "r-1", "r1x", "f100"} {
		if r, err := ParseReg(s); err == nil {
			t.Errorf("ParseReg(%q) = %v, want error", s, r)
		}
	}
}

func TestRegClassification(t *testing.T) {
	if !FPReg(3).IsFP() || IntReg(3).IsFP() {
		t.Fatal("IsFP misclassifies")
	}
	if FPReg(3).Index() != 3 || IntReg(3).Index() != 3 {
		t.Fatal("Index wrong")
	}
	if !RZero.IsZero() || IntReg(1).IsZero() {
		t.Fatal("IsZero wrong")
	}
	if Reg(64).Valid() {
		t.Fatal("Reg(64) should be invalid")
	}
}

func TestOpTableComplete(t *testing.T) {
	for _, op := range AllOps() {
		if op.Name() == "" || op.Name() == "op?" {
			t.Errorf("op %d has no name", op)
		}
		if op.Latency() < 1 {
			t.Errorf("%s has latency %d", op, op.Latency())
		}
		got, ok := OpByName(op.Name())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.Name(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName accepted bogus mnemonic")
	}
}

func TestOpPredicatesConsistent(t *testing.T) {
	for _, op := range AllOps() {
		if op.IsLoad() && op.IsStore() {
			t.Errorf("%s both load and store", op)
		}
		if op.IsMem() != (op.IsLoad() || op.IsStore()) {
			t.Errorf("%s IsMem inconsistent", op)
		}
		if op.IsBranch() && op.IsJump() {
			t.Errorf("%s both branch and jump", op)
		}
		if op.IsLoad() && !op.WritesRd() {
			t.Errorf("load %s does not write rd", op)
		}
		if op.IsStore() && op.WritesRd() {
			t.Errorf("store %s writes rd", op)
		}
		if op.IsMem() && op.Class() != FUMem {
			t.Errorf("%s is mem but class %v", op, op.Class())
		}
	}
}

// sampleInst builds a representative valid instruction for each op.
func sampleInst(op Op) Inst {
	in := Inst{Op: op}
	pick := func(fp bool, i int) Reg {
		if fp {
			return FPReg(i)
		}
		return IntReg(i)
	}
	switch op.Format() {
	case FmtR:
		in.Ra = pick(op.RaIsFP(), 1)
		in.Rb = pick(op.RbIsFP(), 2)
		in.Rd = pick(op.RdIsFP(), 3)
	case FmtI, FmtLS:
		in.Ra = IntReg(4)
		in.Rd = pick(op.RdIsFP(), 5)
		if op.ImmZeroExtended() {
			in.Imm = 0xFEDC
		} else {
			in.Imm = -12
		}
	case FmtB:
		in.Ra = IntReg(6)
		in.Rb = IntReg(7)
		in.Imm = -3
	case FmtJ:
		in.Imm = 0x123456
		if op == OpJAL {
			in.Rd = RLR // implicit link destination, set by Decode
		}
	}
	return in
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	for _, op := range AllOps() {
		in := sampleInst(op)
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", op, err)
		}
		back := Decode(w)
		if back != in {
			t.Errorf("%s: round trip %+v -> %#x -> %+v", op, in, w, back)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	ops := AllOps()
	f := func(opIdx uint8, ra, rb, rd uint8, imm int16, j uint32) bool {
		op := ops[int(opIdx)%len(ops)]
		in := Inst{Op: op}
		pick := func(fp bool, i uint8) Reg {
			if fp {
				return FPReg(int(i) % NumFPRegs)
			}
			return IntReg(int(i) % NumIntRegs)
		}
		switch op.Format() {
		case FmtR:
			in.Ra = pick(op.RaIsFP(), ra)
			in.Rb = pick(op.RbIsFP(), rb)
			in.Rd = pick(op.RdIsFP(), rd)
		case FmtI, FmtLS:
			in.Ra = pick(false, ra)
			in.Rd = pick(op.RdIsFP(), rd)
			if op.ImmZeroExtended() {
				in.Imm = int64(uint16(imm))
			} else {
				in.Imm = int64(imm)
			}
		case FmtB:
			in.Ra = pick(false, ra)
			in.Rb = pick(false, rb)
			in.Imm = int64(imm)
		case FmtJ:
			in.Imm = int64(j & (1<<26 - 1))
			if op == OpJAL {
				in.Rd = RLR
			}
		}
		w, err := in.Encode()
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	if _, err := (Inst{Op: OpADDI, Rd: IntReg(1), Ra: IntReg(2), Imm: 40000}).Encode(); err == nil {
		t.Error("oversized immediate encoded")
	}
	if _, err := (Inst{Op: OpBEQ, Ra: IntReg(1), Rb: IntReg(2), Imm: -40000}).Encode(); err == nil {
		t.Error("oversized displacement encoded")
	}
	if _, err := (Inst{Op: OpJ, Imm: 1 << 26}).Encode(); err == nil {
		t.Error("oversized jump target encoded")
	}
	if _, err := (Inst{Op: OpFADD, Rd: IntReg(1), Ra: FPReg(2), Rb: FPReg(3)}).Encode(); err == nil {
		t.Error("wrong-file register encoded")
	}
}

func TestDecodeInvalid(t *testing.T) {
	if in := Decode(0xFFFFFFFF); in.Op != OpInvalid {
		t.Errorf("Decode garbage = %v, want invalid", in.Op)
	}
}

func TestDestAndSources(t *testing.T) {
	add := Inst{Op: OpADD, Rd: IntReg(3), Ra: IntReg(1), Rb: IntReg(2)}
	if d, ok := add.Dest(); !ok || d != IntReg(3) {
		t.Errorf("add dest = %v %v", d, ok)
	}
	srcs := add.Sources(nil)
	if len(srcs) != 2 || srcs[0] != IntReg(1) || srcs[1] != IntReg(2) {
		t.Errorf("add sources = %v", srcs)
	}

	// Writes to zero register have no destination.
	addz := Inst{Op: OpADD, Rd: RZero, Ra: IntReg(1), Rb: IntReg(2)}
	if _, ok := addz.Dest(); ok {
		t.Error("write to zero register reported as destination")
	}

	// Zero-register sources are omitted.
	addz2 := Inst{Op: OpADD, Rd: IntReg(3), Ra: RZero, Rb: IntReg(2)}
	if got := addz2.Sources(nil); len(got) != 1 || got[0] != IntReg(2) {
		t.Errorf("sources with zero ra = %v", got)
	}

	// Stores read their data register.
	st := Inst{Op: OpSTQ, Rd: IntReg(5), Ra: IntReg(6), Imm: 8}
	if _, ok := st.Dest(); ok {
		t.Error("store has a destination")
	}
	s := st.Sources(nil)
	if len(s) != 2 || s[0] != IntReg(6) || s[1] != IntReg(5) {
		t.Errorf("store sources = %v", s)
	}

	// FP ops report FP registers.
	fadd := Inst{Op: OpFADD, Rd: FPReg(1), Ra: FPReg(2), Rb: FPReg(3)}
	if d, ok := fadd.Dest(); !ok || !d.IsFP() {
		t.Errorf("fadd dest = %v %v", d, ok)
	}
}

func TestBranchTarget(t *testing.T) {
	b := Inst{Op: OpBEQ, Ra: IntReg(1), Rb: IntReg(2), Imm: 3}
	if got := b.BranchTarget(0x1000); got != 0x1000+4+12 {
		t.Errorf("branch target = %#x", got)
	}
	bneg := Inst{Op: OpBNE, Ra: IntReg(1), Rb: IntReg(2), Imm: -2}
	if got := bneg.BranchTarget(0x1000); got != 0x1000+4-8 {
		t.Errorf("backward branch target = %#x", got)
	}
	j := Inst{Op: OpJ, Imm: 0x400}
	if got := j.BranchTarget(0x1000); got != 0x1000 {
		t.Errorf("jump target = %#x, want 0x1000", got)
	}
}

func TestIsReturn(t *testing.T) {
	if !(Inst{Op: OpJR, Ra: RLR}).IsReturn() {
		t.Error("jr lr not a return")
	}
	if (Inst{Op: OpJR, Ra: IntReg(5)}).IsReturn() {
		t.Error("jr r5 reported as return")
	}
}

func TestDisassemblyStrings(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: IntReg(3), Ra: IntReg(1), Rb: IntReg(2)}, "add r3, r1, r2"},
		{Inst{Op: OpADDI, Rd: IntReg(3), Ra: IntReg(1), Imm: -5}, "addi r3, r1, -5"},
		{Inst{Op: OpLDQ, Rd: IntReg(3), Ra: RSP, Imm: 16}, "ldq r3, 16(sp)"},
		{Inst{Op: OpBEQ, Ra: IntReg(1), Rb: RZero, Imm: 4}, "beq r1, zero, 4"},
		{Inst{Op: OpJR, Ra: RLR}, "jr lr"},
		{Inst{Op: OpNOP}, "nop"},
		{Inst{Op: OpLUI, Rd: IntReg(2), Imm: 7}, "lui r2, 7"},
		{Inst{Op: OpFMOV, Rd: FPReg(1), Ra: FPReg(2)}, "fmov f1, f2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestSignificantBits(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 1}, {^uint64(0), 1}, {1, 2}, {2, 3}, {3, 3}, {4, 4},
		{0x7F, 8}, {0x80, 9},
		{0xFFFFFFFFFFFFFFFE, 2}, {0xFFFFFFFFFFFFFFFD, 3}, {0xFFFFFFFFFFFFFF80, 8}, {0xFFFFFFFFFFFFFF7F, 9},
		{1 << 62, 64}, {uint64(1) << 63, 64},
	}
	for _, c := range cases {
		if got := SignificantBits(c.v); got != c.want {
			t.Errorf("SignificantBits(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestFitsSignedMatchesSignExtend(t *testing.T) {
	f := func(v uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		fits := FitsSigned(v, n)
		// The definitive check: v survives truncation+sign-extension iff it fits.
		return fits == (SignExtend(v, n) == v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
	if FitsSigned(5, 0) {
		t.Error("FitsSigned(_, 0) should be false")
	}
	if !FitsSigned(1<<63, 64) {
		t.Error("everything fits in 64 bits")
	}
}

func TestSignExtend(t *testing.T) {
	if got := SignExtend(0x7F, 7); got != ^uint64(0) {
		t.Errorf("SignExtend(0x7F, 7) = %#x, want all ones", got)
	}
	if got := SignExtend(0x3F, 7); got != 0x3F {
		t.Errorf("SignExtend(0x3F, 7) = %#x", got)
	}
	if got := SignExtend(0xFFFF, 64); got != 0xFFFF {
		t.Errorf("SignExtend full width = %#x", got)
	}
}

func TestFPTrivial(t *testing.T) {
	if !FPTrivial(0) || !FPTrivial(^uint64(0)) {
		t.Error("all-zero / all-one patterns are trivial")
	}
	if FPTrivial(math.Float64bits(1.0)) {
		t.Error("1.0 is not trivial")
	}
}

func TestFPFieldBits(t *testing.T) {
	if FPExponentBits(0) != 0 {
		t.Error("zero exponent should be 0 bits")
	}
	if FPSignificandBits(0) != 0 {
		t.Error("zero fraction should be 0 bits")
	}
	one := math.Float64bits(1.0) // exponent 0x3FF, fraction 0
	if FPSignificandBits(one) != 0 {
		t.Errorf("1.0 fraction bits = %d", FPSignificandBits(one))
	}
	if b := FPExponentBits(one); b <= 0 || b > 11 {
		t.Errorf("1.0 exponent bits = %d", b)
	}
	half := math.Float64bits(1.5) // fraction 0x8000000000000
	if got := FPSignificandBits(half); got != 1 {
		t.Errorf("1.5 significand bits = %d, want 1", got)
	}
	pi := math.Float64bits(math.Pi)
	if got := FPSignificandBits(pi); got <= 40 {
		t.Errorf("pi significand bits = %d, want near 52", got)
	}
}

func TestFUClassString(t *testing.T) {
	for c := FUClass(0); c < NumFUClasses; c++ {
		if c.String() == "fu?" {
			t.Errorf("class %d has no name", c)
		}
	}
}
