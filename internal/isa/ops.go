package isa

import "fmt"

// Op identifies a PRISC-64 operation.
type Op uint8

// The complete PRISC-64 opcode set.
const (
	// OpInvalid is the zero Op; decoding garbage yields it.
	OpInvalid Op = iota

	// Integer register-register arithmetic and logic.
	OpADD
	OpSUB
	OpMUL
	OpDIV  // signed quotient; divide by zero yields 0 (no traps)
	OpDIVU // unsigned quotient
	OpREM  // signed remainder; x%0 == x
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLL // shift amount is rb&63
	OpSRL
	OpSRA
	OpSLT  // rd = (ra < rb) signed ? 1 : 0
	OpSLTU // unsigned compare
	OpSEQ  // rd = (ra == rb) ? 1 : 0

	// Integer immediate forms (imm16 sign-extended unless noted).
	OpADDI
	OpANDI // imm zero-extended
	OpORI  // imm zero-extended
	OpXORI // imm zero-extended
	OpSLLI // shift amount imm&63
	OpSRLI
	OpSRAI
	OpSLTI
	OpLUI // rd = imm16 << 16 (sign-extended to 64 bits)

	// Loads and stores. Rd is the data register; the effective address is
	// ra + imm16.
	OpLDQ  // 64-bit load
	OpLDL  // 32-bit load, sign-extended
	OpLDB  // 8-bit load, sign-extended
	OpLDBU // 8-bit load, zero-extended
	OpSTQ  // 64-bit store
	OpSTL  // 32-bit store
	OpSTB  // 8-bit store
	OpFLD  // 64-bit FP load
	OpFST  // 64-bit FP store

	// Compare-and-branch; target is PC + 4 + disp*4.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU

	// Jumps. J/JAL carry a 26-bit word-granular region target; JR/JALR
	// jump through a register. JAL writes LR; JALR writes rd (conventionally
	// LR). JR lr is the conventional function return and pops the RAS.
	OpJ
	OpJAL
	OpJR
	OpJALR

	// Floating point (IEEE-754 binary64 carried in 64-bit registers).
	OpFADD
	OpFSUB
	OpFMUL
	OpFDIV
	OpFSQRT
	OpFMOV
	OpFNEG
	OpFABS
	OpFMIN
	OpFMAX
	OpCVTIF // fd = float64(int64(ra)); integer source
	OpCVTFI // rd = int64(trunc(fa)); integer destination
	OpFCLT  // rd = (fa < fb) ? 1 : 0 (integer destination)
	OpFCLE
	OpFCEQ

	// Conditional moves (Alpha-style): rd = cond(ra) ? rb : rd. The old rd
	// is a source, which is why compilers love them: branches become
	// dataflow.
	OpCMOVEQ // move rb into rd when ra == 0
	OpCMOVNE // move rb into rd when ra != 0

	// Miscellaneous.
	OpNOP
	OpHALT // stop the program
	OpPUTC // write low byte of ra to the emulator's output buffer

	numOps
)

// NumOps is the number of defined operations (for table-driven tests).
const NumOps = int(numOps)

// Format describes how an instruction's operand fields are laid out.
type Format uint8

// Instruction formats.
const (
	FmtR  Format = iota // op rd, ra, rb (funct-encoded under primary 0/1)
	FmtI                // op rd, ra, imm16
	FmtLS               // op rd, imm16(ra)
	FmtB                // op ra, rb, disp16
	FmtJ                // op target26
)

// FUClass names the functional-unit pool an operation issues to.
type FUClass uint8

// Functional-unit classes. Branches and jumps resolve on the integer ALUs.
const (
	FUIntALU FUClass = iota
	FUIntMulDiv
	FUMem
	FUFPAdd // FP add/sub/convert/compare/move
	FUFPMulDiv
	NumFUClasses = 5
)

func (c FUClass) String() string {
	switch c {
	case FUIntALU:
		return "ialu"
	case FUIntMulDiv:
		return "imuldiv"
	case FUMem:
		return "mem"
	case FUFPAdd:
		return "fpadd"
	case FUFPMulDiv:
		return "fpmuldiv"
	}
	return "fu?"
}

type opFlags uint16

const (
	flagLoad opFlags = 1 << iota
	flagStore
	flagBranch // conditional branch
	flagJump   // unconditional control transfer
	flagCall   // pushes return address (RAS push)
	flagReturn // JR through LR (RAS pop)
	flagReadsRa
	flagReadsRb
	flagReadsRdData // stores read the data register held in the rd field
	flagWritesRd
	flagRaFP
	flagRbFP
	flagRdFP
	flagUnpipelined // occupies its FU for the full latency
)

type opInfo struct {
	name    string
	format  Format
	class   FUClass
	latency int // scheduling latency in cycles (loads add cache time)
	flags   opFlags
	primary uint32 // 6-bit primary opcode
	funct   uint32 // 6-bit funct for FmtR under primary 0 (int) / 1 (fp)
}

const (
	latALU    = 1
	latMul    = 3
	latDiv    = 20
	latFPAdd  = 2
	latFPMul  = 4
	latFPDiv  = 12
	latFPSqrt = 24
	latAgen   = 1 // address generation; cache latency is added by the memory system
)

// rr/ri/etc build the common flag sets.
const (
	rrFlags = flagReadsRa | flagReadsRb | flagWritesRd
	riFlags = flagReadsRa | flagWritesRd
	ldFlags = flagLoad | flagReadsRa | flagWritesRd
	stFlags = flagStore | flagReadsRa | flagReadsRdData
	brFlags = flagBranch | flagReadsRa | flagReadsRb
	fpRR    = rrFlags | flagRaFP | flagRbFP | flagRdFP
	fpR1    = riFlags | flagRaFP | flagRdFP
)

var opTable = [numOps]opInfo{
	OpInvalid: {name: "invalid", format: FmtR, class: FUIntALU, latency: 1, primary: 63, funct: 63},

	OpADD:  {name: "add", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 0},
	OpSUB:  {name: "sub", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 1},
	OpMUL:  {name: "mul", format: FmtR, class: FUIntMulDiv, latency: latMul, flags: rrFlags, primary: 0, funct: 2},
	OpDIV:  {name: "div", format: FmtR, class: FUIntMulDiv, latency: latDiv, flags: rrFlags | flagUnpipelined, primary: 0, funct: 3},
	OpDIVU: {name: "divu", format: FmtR, class: FUIntMulDiv, latency: latDiv, flags: rrFlags | flagUnpipelined, primary: 0, funct: 4},
	OpREM:  {name: "rem", format: FmtR, class: FUIntMulDiv, latency: latDiv, flags: rrFlags | flagUnpipelined, primary: 0, funct: 5},
	OpAND:  {name: "and", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 6},
	OpOR:   {name: "or", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 7},
	OpXOR:  {name: "xor", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 8},
	OpNOR:  {name: "nor", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 9},
	OpSLL:  {name: "sll", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 10},
	OpSRL:  {name: "srl", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 11},
	OpSRA:  {name: "sra", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 12},
	OpSLT:  {name: "slt", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 13},
	OpSLTU: {name: "sltu", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 14},
	OpSEQ:  {name: "seq", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags, primary: 0, funct: 15},

	OpADDI: {name: "addi", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 2},
	OpANDI: {name: "andi", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 3},
	OpORI:  {name: "ori", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 4},
	OpXORI: {name: "xori", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 5},
	OpSLLI: {name: "slli", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 6},
	OpSRLI: {name: "srli", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 7},
	OpSRAI: {name: "srai", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 8},
	OpSLTI: {name: "slti", format: FmtI, class: FUIntALU, latency: latALU, flags: riFlags, primary: 9},
	OpLUI:  {name: "lui", format: FmtI, class: FUIntALU, latency: latALU, flags: flagWritesRd, primary: 10},

	OpLDQ:  {name: "ldq", format: FmtLS, class: FUMem, latency: latAgen, flags: ldFlags, primary: 12},
	OpLDL:  {name: "ldl", format: FmtLS, class: FUMem, latency: latAgen, flags: ldFlags, primary: 13},
	OpLDB:  {name: "ldb", format: FmtLS, class: FUMem, latency: latAgen, flags: ldFlags, primary: 14},
	OpLDBU: {name: "ldbu", format: FmtLS, class: FUMem, latency: latAgen, flags: ldFlags, primary: 15},
	OpSTQ:  {name: "stq", format: FmtLS, class: FUMem, latency: latAgen, flags: stFlags, primary: 16},
	OpSTL:  {name: "stl", format: FmtLS, class: FUMem, latency: latAgen, flags: stFlags, primary: 17},
	OpSTB:  {name: "stb", format: FmtLS, class: FUMem, latency: latAgen, flags: stFlags, primary: 18},
	OpFLD:  {name: "fld", format: FmtLS, class: FUMem, latency: latAgen, flags: ldFlags | flagRdFP, primary: 19},
	OpFST:  {name: "fst", format: FmtLS, class: FUMem, latency: latAgen, flags: stFlags | flagRdFP, primary: 20},

	OpBEQ:  {name: "beq", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 24},
	OpBNE:  {name: "bne", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 25},
	OpBLT:  {name: "blt", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 26},
	OpBGE:  {name: "bge", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 27},
	OpBLTU: {name: "bltu", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 28},
	OpBGEU: {name: "bgeu", format: FmtB, class: FUIntALU, latency: latALU, flags: brFlags, primary: 29},

	OpJ:    {name: "j", format: FmtJ, class: FUIntALU, latency: latALU, flags: flagJump, primary: 32},
	OpJAL:  {name: "jal", format: FmtJ, class: FUIntALU, latency: latALU, flags: flagJump | flagCall | flagWritesRd, primary: 33},
	OpJR:   {name: "jr", format: FmtR, class: FUIntALU, latency: latALU, flags: flagJump | flagReadsRa, primary: 0, funct: 16},
	OpJALR: {name: "jalr", format: FmtR, class: FUIntALU, latency: latALU, flags: flagJump | flagCall | flagReadsRa | flagWritesRd, primary: 0, funct: 17},

	OpFADD:  {name: "fadd", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpRR, primary: 1, funct: 0},
	OpFSUB:  {name: "fsub", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpRR, primary: 1, funct: 1},
	OpFMUL:  {name: "fmul", format: FmtR, class: FUFPMulDiv, latency: latFPMul, flags: fpRR, primary: 1, funct: 2},
	OpFDIV:  {name: "fdiv", format: FmtR, class: FUFPMulDiv, latency: latFPDiv, flags: fpRR | flagUnpipelined, primary: 1, funct: 3},
	OpFSQRT: {name: "fsqrt", format: FmtR, class: FUFPMulDiv, latency: latFPSqrt, flags: fpR1 | flagUnpipelined, primary: 1, funct: 4},
	OpFMOV:  {name: "fmov", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpR1, primary: 1, funct: 5},
	OpFNEG:  {name: "fneg", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpR1, primary: 1, funct: 6},
	OpFABS:  {name: "fabs", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpR1, primary: 1, funct: 7},
	OpFMIN:  {name: "fmin", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpRR, primary: 1, funct: 8},
	OpFMAX:  {name: "fmax", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: fpRR, primary: 1, funct: 9},
	OpCVTIF: {name: "cvtif", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: riFlags | flagRdFP, primary: 1, funct: 10},
	OpCVTFI: {name: "cvtfi", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: riFlags | flagRaFP, primary: 1, funct: 11},
	OpFCLT:  {name: "fclt", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: rrFlags | flagRaFP | flagRbFP, primary: 1, funct: 12},
	OpFCLE:  {name: "fcle", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: rrFlags | flagRaFP | flagRbFP, primary: 1, funct: 13},
	OpFCEQ:  {name: "fceq", format: FmtR, class: FUFPAdd, latency: latFPAdd, flags: rrFlags | flagRaFP | flagRbFP, primary: 1, funct: 14},

	OpCMOVEQ: {name: "cmoveq", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags | flagReadsRdData, primary: 0, funct: 20},
	OpCMOVNE: {name: "cmovne", format: FmtR, class: FUIntALU, latency: latALU, flags: rrFlags | flagReadsRdData, primary: 0, funct: 21},

	OpNOP:  {name: "nop", format: FmtR, class: FUIntALU, latency: latALU, primary: 0, funct: 62},
	OpHALT: {name: "halt", format: FmtR, class: FUIntALU, latency: latALU, primary: 0, funct: 63},
	OpPUTC: {name: "putc", format: FmtR, class: FUIntALU, latency: latALU, flags: flagReadsRa, primary: 0, funct: 61},
}

// Name returns the assembly mnemonic.
func (op Op) Name() string {
	if int(op) >= NumOps {
		return "op?"
	}
	return opTable[op].name
}

func (op Op) String() string { return op.Name() }

// Format returns the instruction format of op.
func (op Op) Format() Format { return opTable[op].format }

// Class returns the functional-unit class op issues to.
func (op Op) Class() FUClass { return opTable[op].class }

// Latency returns the fixed scheduling latency in cycles. Loads report only
// address generation; the memory system adds cache access time.
func (op Op) Latency() int { return opTable[op].latency }

// Unpipelined reports whether op monopolizes its functional unit for its
// whole latency (divides and square roots).
func (op Op) Unpipelined() bool { return opTable[op].flags&flagUnpipelined != 0 }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return opTable[op].flags&flagLoad != 0 }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return opTable[op].flags&flagStore != 0 }

// IsMem reports whether op is a load or store.
func (op Op) IsMem() bool { return opTable[op].flags&(flagLoad|flagStore) != 0 }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return opTable[op].flags&flagBranch != 0 }

// IsJump reports whether op is an unconditional control transfer.
func (op Op) IsJump() bool { return opTable[op].flags&flagJump != 0 }

// IsCall reports whether op pushes a return address (JAL, JALR).
func (op Op) IsCall() bool { return opTable[op].flags&flagCall != 0 }

// IsControl reports whether op changes control flow.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() }

// IsIndirect reports whether op's target comes from a register.
func (op Op) IsIndirect() bool { return op == OpJR || op == OpJALR }

// WritesRd reports whether op produces a register result.
func (op Op) WritesRd() bool { return opTable[op].flags&flagWritesRd != 0 }

// RdIsFP reports whether the rd field names a floating-point register.
func (op Op) RdIsFP() bool { return opTable[op].flags&flagRdFP != 0 }

// RaIsFP reports whether the ra field names a floating-point register.
func (op Op) RaIsFP() bool { return opTable[op].flags&flagRaFP != 0 }

// RbIsFP reports whether the rb field names a floating-point register.
func (op Op) RbIsFP() bool { return opTable[op].flags&flagRbFP != 0 }

// ImmZeroExtended reports whether op's 16-bit immediate is zero-extended
// (the bitwise logical immediates); all other immediates sign-extend.
func (op Op) ImmZeroExtended() bool {
	return op == OpANDI || op == OpORI || op == OpXORI
}

func (op Op) readsRa() bool     { return opTable[op].flags&flagReadsRa != 0 }
func (op Op) readsRb() bool     { return opTable[op].flags&flagReadsRb != 0 }
func (op Op) readsRdData() bool { return opTable[op].flags&flagReadsRdData != 0 }

// opByName maps mnemonics to operations for the assembler.
var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(1); op < numOps; op++ {
		m[opTable[op].name] = op
	}
	return m
}()

// OpByName looks up an operation by its assembly mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

// AllOps returns every defined operation (excluding OpInvalid), for
// table-driven tests.
func AllOps() []Op {
	ops := make([]Op, 0, NumOps-1)
	for op := Op(1); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

func init() {
	// Guard against encoding collisions when the table is edited.
	seen := make(map[uint32]Op)
	for op := Op(1); op < numOps; op++ {
		info := opTable[op]
		if info.name == "" {
			panic(fmt.Sprintf("isa: op %d has no table entry", op))
		}
		key := info.primary << 6
		if info.primary == 0 || info.primary == 1 {
			key |= info.funct
		}
		if prev, dup := seen[key]; dup {
			panic(fmt.Sprintf("isa: encoding collision between %s and %s", opTable[prev].name, info.name))
		}
		seen[key] = op
	}
}
