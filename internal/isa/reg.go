// Package isa defines PRISC-64, the 64-bit load/store RISC instruction set
// used by the simulator. PRISC-64 is deliberately Alpha/MIPS-flavoured: 32
// integer registers (r0 hardwired to zero), 32 floating-point registers,
// fixed 32-bit instruction encodings, and compare-and-branch control flow.
//
// The package provides the register model, opcode table (with execution
// latencies and functional-unit classes), binary encode/decode, and a
// disassembler. Higher layers build on it: internal/asm assembles programs,
// internal/emu executes them, and internal/ooo times them.
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architected register file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumArchRegs is the total number of renamed architected registers
	// (integer and floating point are renamed in separate spaces).
	NumArchRegs = NumIntRegs + NumFPRegs
)

// Reg identifies an architected register. Values 0..31 are integer registers
// (R0 is hardwired to zero); 32..63 are floating-point registers.
type Reg uint8

// Well-known registers. The software ABI used by the assembler and the
// workload kernels reserves SP for the stack, LR for call return addresses,
// and R0 as the constant zero.
const (
	RZero Reg = 0  // hardwired zero
	RLR   Reg = 30 // link register (written by JAL/JALR)
	RSP   Reg = 29 // stack pointer by convention
)

// F0 is the first floating-point register; F(i) = F0 + i.
const F0 Reg = NumIntRegs

// IntReg returns the i'th integer register.
func IntReg(i int) Reg {
	if i < 0 || i >= NumIntRegs {
		panic(fmt.Sprintf("isa: integer register index %d out of range", i))
	}
	return Reg(i)
}

// FPReg returns the i'th floating-point register.
func FPReg(i int) Reg {
	if i < 0 || i >= NumFPRegs {
		panic(fmt.Sprintf("isa: fp register index %d out of range", i))
	}
	return F0 + Reg(i)
}

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= F0 && r < F0+NumFPRegs }

// IsZero reports whether r is the hardwired integer zero register.
func (r Reg) IsZero() bool { return r == RZero }

// Index returns the register's index within its own file (0..31).
func (r Reg) Index() int {
	if r.IsFP() {
		return int(r - F0)
	}
	return int(r)
}

// Valid reports whether r names an architected register.
func (r Reg) Valid() bool { return int(r) < NumArchRegs }

// String renders the conventional assembly name (r7, f12, sp, lr, zero).
func (r Reg) String() string {
	switch {
	case r == RZero:
		return "zero"
	case r == RSP:
		return "sp"
	case r == RLR:
		return "lr"
	case r.IsFP():
		return fmt.Sprintf("f%d", r.Index())
	case int(r) < NumIntRegs:
		return fmt.Sprintf("r%d", int(r))
	default:
		return fmt.Sprintf("reg?%d", int(r))
	}
}

// ParseReg parses an assembly register name ("r4", "f9", "sp", "lr",
// "zero"). It is the inverse of Reg.String.
func ParseReg(s string) (Reg, error) {
	switch s {
	case "zero":
		return RZero, nil
	case "sp":
		return RSP, nil
	case "lr":
		return RLR, nil
	}
	if len(s) >= 2 && (s[0] == 'r' || s[0] == 'f') {
		n := 0
		for _, c := range s[1:] {
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("isa: bad register %q", s)
			}
			n = n*10 + int(c-'0')
			if n >= NumIntRegs {
				return 0, fmt.Errorf("isa: register %q out of range", s)
			}
		}
		if s[0] == 'f' {
			return FPReg(n), nil
		}
		return IntReg(n), nil
	}
	return 0, fmt.Errorf("isa: bad register %q", s)
}
