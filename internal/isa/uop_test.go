package isa

import "testing"

// TestUopMetadataMatchesOpTable checks, for a representative encoding of
// every operation, that the precomputed Uop fields agree with the opcode
// predicates and the per-instruction Dest/Sources derivation they replace.
func TestUopMetadataMatchesOpTable(t *testing.T) {
	for _, op := range AllOps() {
		in := sampleInst(op)
		u := MakeUop(in)
		if u.Inst != in {
			t.Errorf("%s: uop holds %v, want %v", op, u.Inst, in)
		}
		if u.Class != op.Class() || int(u.Lat) != op.Latency() {
			t.Errorf("%s: class/lat = %v/%d, want %v/%d", op, u.Class, u.Lat, op.Class(), op.Latency())
		}
		checks := []struct {
			name string
			flag UopFlag
			want bool
		}{
			{"load", UopLoad, op.IsLoad()},
			{"store", UopStore, op.IsStore()},
			{"mem", UopMem, op.IsMem()},
			{"branch", UopBranch, op.IsBranch()},
			{"jump", UopJump, op.IsJump()},
			{"control", UopControl, op.IsControl()},
			{"indirect", UopIndirect, op.IsIndirect()},
			{"unpipelined", UopUnpipelined, op.Unpipelined()},
			{"ckpt", UopTakesCkpt, op.IsBranch() || op.IsIndirect()},
			{"halt", UopHalt, op == OpHALT},
		}
		for _, c := range checks {
			if got := u.Flags&c.flag != 0; got != c.want {
				t.Errorf("%s: flag %s = %v, want %v", op, c.name, got, c.want)
			}
		}
		var srcs [3]Reg
		want := in.Sources(srcs[:0])
		if int(u.NSrc) != len(want) {
			t.Errorf("%s: nsrc = %d, want %d", op, u.NSrc, len(want))
		} else {
			for i, a := range want {
				if u.Srcs[i] != a {
					t.Errorf("%s: src %d = %s, want %s", op, i, u.Srcs[i], a)
				}
			}
		}
		d, hasDest := in.Dest()
		if got := u.Flags&UopHasDest != 0; got != hasDest {
			t.Errorf("%s: hasDest = %v, want %v", op, got, hasDest)
		} else if hasDest && u.Dest != d {
			t.Errorf("%s: dest = %s, want %s", op, u.Dest, d)
		}
	}
}

// TestUopImmLoad pins the rename-time inlining candidates: constant
// materializations from no register inputs and nothing else.
func TestUopImmLoad(t *testing.T) {
	cases := []struct {
		in   Inst
		want bool
	}{
		{Inst{Op: OpADDI, Rd: IntReg(3), Ra: RZero, Imm: 5}, true},
		{Inst{Op: OpORI, Rd: IntReg(3), Ra: RZero, Imm: 5}, true},
		{Inst{Op: OpLUI, Rd: IntReg(3), Imm: 5}, true},
		{Inst{Op: OpADDI, Rd: IntReg(3), Ra: IntReg(1), Imm: 5}, false},
		{Inst{Op: OpADD, Rd: IntReg(3), Ra: IntReg(1), Rb: IntReg(2)}, false},
	}
	for _, c := range cases {
		if got := MakeUop(c.in).Flags&UopImmLoad != 0; got != c.want {
			t.Errorf("%v: immLoad = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestDecodeUopMatchesDecode checks the one-shot decode path against the
// two-step Decode+MakeUop composition over the whole primary/funct space.
func TestDecodeUopMatchesDecode(t *testing.T) {
	for _, op := range AllOps() {
		w, err := sampleInst(op).Encode()
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if got, want := DecodeUop(w), MakeUop(Decode(w)); got != want {
			t.Errorf("%s: DecodeUop = %+v, want %+v", op, got, want)
		}
	}
}
