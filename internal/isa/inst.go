package isa

import "fmt"

// Inst is a decoded PRISC-64 instruction. Register fields hold architected
// register names in the unified 0..63 space (FP registers already offset by
// F0), so downstream consumers never need to consult the opcode to know
// which file an operand lives in.
//
// Imm holds, depending on format: the sign-extended 16-bit immediate (FmtI,
// FmtLS), the branch displacement in instructions (FmtB), or the 26-bit
// word-granular jump region target (FmtJ).
type Inst struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int64
}

// Dest returns the destination register and whether the instruction writes
// one. Writes to the integer zero register are reported as no destination.
func (in Inst) Dest() (Reg, bool) {
	if !in.Op.WritesRd() || in.Rd == RZero {
		return 0, false
	}
	return in.Rd, true
}

// Sources appends the architected source registers of the instruction to dst
// and returns the extended slice. The hardwired zero register is omitted:
// it is always ready and never renamed. Stores contribute their data
// register; branches both comparands; JR/JALR the target register.
func (in Inst) Sources(dst []Reg) []Reg {
	if in.Op.readsRa() && in.Ra != RZero {
		dst = append(dst, in.Ra)
	}
	if in.Op.readsRb() && in.Rb != RZero {
		dst = append(dst, in.Rb)
	}
	if in.Op.readsRdData() && in.Rd != RZero {
		dst = append(dst, in.Rd)
	}
	return dst
}

// BranchTarget returns the target of a direct branch or jump located at pc.
// It panics for indirect jumps, whose target comes from a register.
func (in Inst) BranchTarget(pc uint64) uint64 {
	switch in.Op.Format() {
	case FmtB:
		return pc + 4 + uint64(in.Imm)*4
	case FmtJ:
		// MIPS-style region jump: top bits of PC+4, replaced low 28 bits.
		return (pc+4)&^uint64(1<<28-1) | uint64(in.Imm)<<2
	}
	panic(fmt.Sprintf("isa: BranchTarget on %s", in.Op))
}

// IsReturn reports whether the instruction is the conventional function
// return (jr lr), which pops the return-address stack.
func (in Inst) IsReturn() bool { return in.Op == OpJR && in.Ra == RLR }

const (
	immMin = -(1 << 15)
	immMax = 1<<15 - 1
)

// Encode packs the instruction into its 32-bit binary form. It returns an
// error when an operand does not fit its field, so the assembler can report
// range problems at build time.
func (in Inst) Encode() (uint32, error) {
	info := opTable[in.Op]
	w := info.primary << 26
	regField := func(r Reg, fp bool, what string) (uint32, error) {
		if !r.Valid() {
			return 0, fmt.Errorf("isa: %s: invalid %s register %d", in.Op, what, r)
		}
		if r.IsFP() != fp {
			return 0, fmt.Errorf("isa: %s: %s register %s is in the wrong file", in.Op, what, r)
		}
		return uint32(r.Index()), nil
	}
	switch info.format {
	case FmtR:
		ra, err := regField(in.Ra, in.Op.RaIsFP(), "ra")
		if err != nil {
			return 0, err
		}
		rb, err := regField(in.Rb, in.Op.RbIsFP(), "rb")
		if err != nil {
			return 0, err
		}
		rd, err := regField(in.Rd, in.Op.RdIsFP(), "rd")
		if err != nil {
			return 0, err
		}
		w |= ra<<21 | rb<<16 | rd<<11 | info.funct
	case FmtI, FmtLS:
		ra, err := regField(in.Ra, false, "ra")
		if err != nil {
			return 0, err
		}
		rd, err := regField(in.Rd, in.Op.RdIsFP(), "rd")
		if err != nil {
			return 0, err
		}
		lo, hi := int64(immMin), int64(immMax)
		if in.Op.ImmZeroExtended() {
			lo, hi = 0, 0xFFFF
		}
		if in.Imm < lo || in.Imm > hi {
			return 0, fmt.Errorf("isa: %s: immediate %d out of 16-bit range", in.Op, in.Imm)
		}
		w |= ra<<21 | rd<<16 | uint32(uint16(in.Imm))
	case FmtB:
		ra, err := regField(in.Ra, false, "ra")
		if err != nil {
			return 0, err
		}
		rb, err := regField(in.Rb, false, "rb")
		if err != nil {
			return 0, err
		}
		if in.Imm < immMin || in.Imm > immMax {
			return 0, fmt.Errorf("isa: %s: displacement %d out of 16-bit range", in.Op, in.Imm)
		}
		w |= ra<<21 | rb<<16 | uint32(uint16(in.Imm))
	case FmtJ:
		if in.Imm < 0 || in.Imm >= 1<<26 {
			return 0, fmt.Errorf("isa: %s: target %d out of 26-bit range", in.Op, in.Imm)
		}
		w |= uint32(in.Imm)
	}
	return w, nil
}

// decodeTable maps (primary<<6 | funct-if-primary-0-or-1) to Op. A flat
// dense array: the key space is 12 bits, so one indexed load replaces the
// map probe (and its hash) the decoder used to pay on every fetch.
// Unpopulated entries hold OpInvalid, which is exactly the desired decode
// for unrecognized encodings.
var decodeTable = func() [1 << 12]Op {
	var t [1 << 12]Op
	for op := Op(1); op < numOps; op++ {
		info := opTable[op]
		key := info.primary << 6
		if info.primary <= 1 {
			key |= info.funct
		}
		t[key] = op
	}
	return t
}()

// Decode unpacks a 32-bit instruction word. Unrecognized encodings decode to
// OpInvalid rather than failing, matching hardware behaviour when fetch runs
// down a wrong path into non-code bytes.
func Decode(w uint32) Inst {
	primary := w >> 26
	key := primary << 6
	if primary <= 1 {
		key |= w & 63
	}
	op := decodeTable[key]
	if op == OpInvalid {
		return Inst{Op: OpInvalid}
	}
	in := Inst{Op: op}
	reg := func(field uint32, fp bool) Reg {
		if fp {
			return FPReg(int(field & 31))
		}
		return IntReg(int(field & 31))
	}
	switch op.Format() {
	case FmtR:
		in.Ra = reg(w>>21, op.RaIsFP())
		in.Rb = reg(w>>16, op.RbIsFP())
		in.Rd = reg(w>>11, op.RdIsFP())
	case FmtI, FmtLS:
		in.Ra = reg(w>>21, false)
		in.Rd = reg(w>>16, op.RdIsFP())
		if op.ImmZeroExtended() {
			in.Imm = int64(uint16(w))
		} else {
			in.Imm = int64(int16(w))
		}
	case FmtB:
		in.Ra = reg(w>>21, false)
		in.Rb = reg(w>>16, false)
		in.Imm = int64(int16(w))
	case FmtJ:
		in.Imm = int64(w & (1<<26 - 1))
		if op == OpJAL {
			in.Rd = RLR // the link register is an implicit destination
		}
	}
	return in
}

// String disassembles the instruction in conventional syntax.
func (in Inst) String() string {
	switch in.Op.Format() {
	case FmtR:
		switch {
		case in.Op == OpNOP || in.Op == OpHALT:
			return in.Op.Name()
		case in.Op == OpPUTC:
			return fmt.Sprintf("%s %s", in.Op, in.Ra)
		case in.Op == OpJR:
			return fmt.Sprintf("%s %s", in.Op, in.Ra)
		case in.Op == OpJALR:
			return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Ra)
		case in.Op == OpFSQRT || in.Op == OpFMOV || in.Op == OpFNEG || in.Op == OpFABS ||
			in.Op == OpCVTIF || in.Op == OpCVTFI:
			return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Ra)
		default:
			return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Ra, in.Rb)
		}
	case FmtI:
		if in.Op == OpLUI {
			return fmt.Sprintf("%s %s, %d", in.Op, in.Rd, in.Imm)
		}
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case FmtLS:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Ra)
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Ra, in.Rb, in.Imm)
	case FmtJ:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Imm<<2)
	}
	return in.Op.Name()
}
