package isa

// UopFlag is one precomputed instruction property. The timing pipeline tests
// these bits off a single load instead of re-deriving each property from the
// opcode table on every dynamic instance of the instruction.
type UopFlag uint16

// Uop flags.
const (
	UopLoad UopFlag = 1 << iota
	UopStore
	UopMem     // load or store
	UopBranch  // conditional branch
	UopJump    // unconditional control transfer
	UopControl // branch or jump
	UopIndirect
	UopUnpipelined
	UopHasDest // writes an architected register other than the zero register
	UopTakesCkpt
	UopImmLoad // materializes a constant from no register inputs
	UopHalt
)

// Uop is one decoded static instruction plus everything the scheduler needs
// to know about it: functional-unit class, nominal latency, the precomputed
// source-register list, and the destination. A Uop is immutable once built —
// the decoded-uop cache decodes each static instruction exactly once and
// every dynamic fetch shares the result.
type Uop struct {
	Inst  Inst
	Class FUClass
	Lat   uint8 // nominal scheduling latency (loads add cache time)
	NSrc  uint8
	Flags UopFlag
	Srcs  [3]Reg // architected sources, zero register omitted
	Dest  Reg    // valid only when UopHasDest is set
}

// MakeUop derives the scheduling metadata for a decoded instruction.
func MakeUop(in Inst) Uop {
	op := in.Op
	u := Uop{
		Inst:  in,
		Class: op.Class(),
		Lat:   uint8(op.Latency()),
	}
	var srcs [3]Reg
	for _, a := range in.Sources(srcs[:0]) {
		u.Srcs[u.NSrc] = a
		u.NSrc++
	}
	if d, ok := in.Dest(); ok {
		u.Dest = d
		u.Flags |= UopHasDest
	}
	if op.IsLoad() {
		u.Flags |= UopLoad | UopMem
	}
	if op.IsStore() {
		u.Flags |= UopStore | UopMem
	}
	if op.IsBranch() {
		u.Flags |= UopBranch | UopControl | UopTakesCkpt
	}
	if op.IsJump() {
		u.Flags |= UopJump | UopControl
	}
	if op.IsIndirect() {
		u.Flags |= UopIndirect | UopTakesCkpt
	}
	if op.Unpipelined() {
		u.Flags |= UopUnpipelined
	}
	if op == OpHALT {
		u.Flags |= UopHalt
	}
	// Rename-time inlining candidates: a load-immediate whose value comes
	// from no register inputs (addi/ori rd, zero, imm and lui).
	switch op {
	case OpADDI, OpORI:
		if in.Ra == RZero {
			u.Flags |= UopImmLoad
		}
	case OpLUI:
		u.Flags |= UopImmLoad
	}
	return u
}

// DecodeUop decodes a 32-bit instruction word straight to a Uop.
func DecodeUop(w uint32) Uop { return MakeUop(Decode(w)) }
