package memsys

import (
	"reflect"
	"testing"
)

func checkFields(t *testing.T, what string, v any, handled []string) {
	t.Helper()
	typ := reflect.TypeOf(v)
	got := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		got[typ.Field(i).Name] = true
	}
	for _, f := range handled {
		if !got[f] {
			t.Errorf("%s: handled field %q no longer exists; update Clone and this list", what, f)
		}
		delete(got, f)
	}
	for f := range got {
		t.Errorf("%s: new field %q is not handled by Clone — update Clone, then add it here", what, f)
	}
}

// TestCacheCloneCompleteness pins the field set Cache.Clone handles.
func TestCacheCloneCompleteness(t *testing.T) {
	checkFields(t, "memsys.Cache", Cache{}, []string{
		"cfg", "sets", "lineBits", "clock", // by-value via *c
		"lines",                            // deep-copied
		"Accesses", "Misses", "Writebacks", // statistics, by value
	})
}

// TestHierarchyCloneCompleteness pins the field set Hierarchy.Clone handles.
func TestHierarchyCloneCompleteness(t *testing.T) {
	checkFields(t, "memsys.Hierarchy", Hierarchy{}, []string{
		"IL1", "DL1", "L2", // per-level Cache.Clone
		"cfg",                     // by value
		"mshrs",                   // mshrFile.clone
		"MSHRWaits", "Prefetches", // statistics, by value
	})
	checkFields(t, "memsys.mshrFile", mshrFile{}, []string{"busyUntil"})
}

// stream drives a deterministic mixed access pattern through h.
func stream(h *Hierarchy, seed uint64, n int) {
	x := seed
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := (x % (1 << 20)) &^ 7
		switch x >> 61 {
		case 0:
			h.InstFetch(addr)
		case 1:
			h.Data(addr, true)
		case 2:
			h.DataAt(addr, false, uint64(i))
		default:
			h.Data(addr, false)
		}
	}
}

func hierFingerprint(h *Hierarchy) [5]uint64 {
	var sum [5]uint64
	for i, c := range []*Cache{h.IL1, h.DL1, h.L2} {
		for _, ln := range c.lines {
			v := ln.tag*3 + ln.lru*7
			if ln.valid {
				v++
			}
			if ln.dirty {
				v += 2
			}
			sum[i] = sum[i]*31 + v
		}
		sum[i] += c.clock*5 + c.Accesses*11 + c.Misses*13 + c.Writebacks*17
	}
	if h.mshrs != nil {
		for _, b := range h.mshrs.busyUntil {
			sum[3] = sum[3]*31 + b
		}
	}
	sum[4] = h.MSHRWaits*3 + h.Prefetches
	return sum
}

// TestHierarchyCloneMatchesAndDiverges checks a clone starts identical,
// stays isolated, and continues exactly like a directly warmed hierarchy.
func TestHierarchyCloneMatchesAndDiverges(t *testing.T) {
	cfg := Default()
	cfg.MSHRs = 4
	cfg.NextLinePrefetch = true

	warm := New(cfg)
	stream(warm, 1, 4000)

	ref := New(cfg)
	stream(ref, 1, 4000)

	c := warm.Clone()
	if hierFingerprint(c) != hierFingerprint(warm) {
		t.Fatal("clone state differs from source immediately after Clone")
	}

	before := hierFingerprint(warm)
	stream(c, 2, 2000)
	if hierFingerprint(warm) != before {
		t.Fatal("driving the clone mutated the source hierarchy")
	}

	stream(ref, 2, 2000)
	if hierFingerprint(c) != hierFingerprint(ref) {
		t.Fatal("clone behaved differently from an equivalently warmed hierarchy")
	}
}
