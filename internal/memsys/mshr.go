package memsys

// MSHR modeling: by default the hierarchy is a pure latency probe with
// unlimited memory-level parallelism, as in sim-outorder. Setting
// Config.MSHRs bounds the number of overlapping data-side misses, the way
// real miss-status holding registers do: a miss that finds every MSHR busy
// is delayed until the oldest outstanding miss retires. The bound applies
// to accesses that leave the DL1 (L2 hits and memory accesses alike).
//
// The model is intentionally simple — a ring of busy-until timestamps — but
// it captures the first-order effect the ablation cares about: how much of
// the simulated machines' speedup comes from unbounded MLP.

// mshrFile tracks when each outstanding miss completes.
type mshrFile struct {
	busyUntil []uint64
}

func newMSHRFile(n int) *mshrFile {
	if n <= 0 {
		return nil
	}
	return &mshrFile{busyUntil: make([]uint64, n)}
}

// clone deep-copies the MSHR occupancy (nil stays nil: unlimited MLP).
func (m *mshrFile) clone() *mshrFile {
	if m == nil {
		return nil
	}
	return &mshrFile{busyUntil: append([]uint64(nil), m.busyUntil...)}
}

// admit finds the earliest cycle at or after now when a new miss can begin,
// books the entry through start+latency, and returns the start cycle.
func (m *mshrFile) admit(now uint64, latency int) uint64 {
	best := 0
	for i, b := range m.busyUntil {
		if b < m.busyUntil[best] {
			best = i
		}
	}
	start := now
	if m.busyUntil[best] > start {
		start = m.busyUntil[best]
	}
	m.busyUntil[best] = start + uint64(latency)
	return start
}

// DataAt probes the data side like Data, but charges MSHR occupancy when a
// bound is configured: the returned latency includes any wait for a free
// miss register. now is the current cycle.
func (h *Hierarchy) DataAt(addr uint64, write bool, now uint64) int {
	lat := h.cfg.DL1.Latency
	hit, _ := h.DL1.probe(addr, write)
	if hit {
		return lat
	}
	missLat := h.cfg.L2.Latency
	hit2, _ := h.L2.probe(addr, false)
	if h.cfg.NextLinePrefetch {
		h.prefetchNextLine(addr)
	}
	if !hit2 {
		missLat += h.cfg.MemLatency
	}
	if h.mshrs == nil {
		return lat + missLat
	}
	start := h.mshrs.admit(now, missLat)
	h.MSHRWaits += start - now
	return lat + int(start-now) + missLat
}
