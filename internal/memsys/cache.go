// Package memsys models the memory hierarchy of the paper's Table 1: split
// 32KB first-level instruction (2-way, 32B lines) and data (4-way, 16B
// lines) caches with 2-cycle latency, a unified 512KB 4-way 64B-line L2 at
// 12 cycles, and 150-cycle main memory.
//
// The model is a latency probe, as in SimpleScalar's sim-outorder: each
// access walks the hierarchy, updates contents and LRU state, and returns
// the total load-to-use latency. Values never live here — the functional
// emulator owns them; this package only decides how long they take.
//
// Latencies are deterministic: contents and LRU state are a pure function
// of the access stream, with no wall-clock, global randomness, or map-order
// dependence.
//
//prisim:deterministic
package memsys

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Config describes the full hierarchy.
type Config struct {
	IL1        CacheConfig
	DL1        CacheConfig
	L2         CacheConfig
	MemLatency int
	// MSHRs bounds overlapping data-side misses (0 = unlimited, the
	// default latency-probe behaviour). See mshr.go.
	MSHRs int
	// NextLinePrefetch enables a simple tagged next-line prefetcher on the
	// data side: every demand miss also fills the following line into the
	// DL1 and L2 (no timing charge — an idealized streaming prefetcher).
	NextLinePrefetch bool
}

// Default is the paper's Table 1 memory system.
func Default() Config {
	return Config{
		IL1:        CacheConfig{Name: "il1", SizeBytes: 32 << 10, LineBytes: 32, Ways: 2, Latency: 2},
		DL1:        CacheConfig{Name: "dl1", SizeBytes: 32 << 10, LineBytes: 16, Ways: 4, Latency: 2},
		L2:         CacheConfig{Name: "ul2", SizeBytes: 512 << 10, LineBytes: 64, Ways: 4, Latency: 12},
		MemLatency: 150,
	}
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
	lru   uint64
}

// Cache is one set-associative level with true-LRU replacement, write-back
// and write-allocate policy.
type Cache struct {
	cfg      CacheConfig
	sets     int
	lineBits uint
	lines    []line // sets × ways
	clock    uint64

	Accesses   uint64
	Misses     uint64
	Writebacks uint64
}

// NewCache builds a cache; the geometry must divide evenly into power-of-two
// sets.
func NewCache(cfg CacheConfig) *Cache {
	sets := cfg.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memsys: %s: %d sets is not a power of two", cfg.Name, sets))
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		panic(fmt.Sprintf("memsys: %s: line size %d not a power of two", cfg.Name, cfg.LineBytes))
	}
	lineBits := uint(0)
	for 1<<lineBits < cfg.LineBytes {
		lineBits++
	}
	return &Cache{cfg: cfg, sets: sets, lineBits: lineBits, lines: make([]line, sets*cfg.Ways)}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// probe looks up addr; on miss it installs the line (evicting LRU) and
// reports whether a dirty line was written back. Returns hit.
func (c *Cache) probe(addr uint64, write bool) (hit, writeback bool) {
	c.Accesses++
	blk := addr >> c.lineBits
	set := int(blk & uint64(c.sets-1))
	tag := blk >> uint(setBits(c.sets))
	base := set * c.cfg.Ways
	c.clock++
	victim := base
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			ln.lru = c.clock
			if write {
				ln.dirty = true
			}
			return true, false
		}
		if !ln.valid {
			victim = base + w
		} else if c.lines[victim].valid && ln.lru < c.lines[victim].lru {
			victim = base + w
		}
	}
	c.Misses++
	v := &c.lines[victim]
	writeback = v.valid && v.dirty
	if writeback {
		c.Writebacks++
	}
	*v = line{valid: true, tag: tag, lru: c.clock, dirty: write}
	return false, writeback
}

// Clone returns an independent deep copy of the cache: geometry, contents,
// LRU state, and statistics. Clone never mutates the receiver.
//
// Every Cache field must be handled here; TestCacheCloneCompleteness fails
// when the struct gains a field Clone does not copy.
func (c *Cache) Clone() *Cache {
	cp := *c
	cp.lines = append([]line(nil), c.lines...)
	return &cp
}

// FootprintBytes approximates the resident bytes of the cache's tag array.
func (c *Cache) FootprintBytes() uint64 { return uint64(len(c.lines)) * 32 }

// Contains reports whether addr currently hits without touching LRU or
// statistics (for tests).
func (c *Cache) Contains(addr uint64) bool {
	blk := addr >> c.lineBits
	set := int(blk & uint64(c.sets-1))
	tag := blk >> uint(setBits(c.sets))
	for w := 0; w < c.cfg.Ways; w++ {
		ln := c.lines[set*c.cfg.Ways+w]
		if ln.valid && ln.tag == tag {
			return true
		}
	}
	return false
}

// MissRate returns misses/accesses (0 when idle).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

func setBits(sets int) int {
	b := 0
	for 1<<b < sets {
		b++
	}
	return b
}

// Hierarchy composes the three levels and main memory.
type Hierarchy struct {
	IL1   *Cache
	DL1   *Cache
	L2    *Cache
	cfg   Config
	mshrs *mshrFile
	// MSHRWaits accumulates cycles misses spent waiting for a free MSHR.
	MSHRWaits uint64
	// Prefetches counts next-line prefetch fills (see NextLinePrefetch).
	Prefetches uint64
}

// New builds the hierarchy from cfg.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		IL1:   NewCache(cfg.IL1),
		DL1:   NewCache(cfg.DL1),
		L2:    NewCache(cfg.L2),
		cfg:   cfg,
		mshrs: newMSHRFile(cfg.MSHRs),
	}
}

// Clone returns an independent deep copy of the hierarchy: every level's
// contents and LRU state, MSHR occupancy, and statistics. Clone never
// mutates the receiver, so concurrent clones of one warm hierarchy are safe
// provided nothing is accessing it.
//
// Every Hierarchy field must be handled here; TestHierarchyCloneCompleteness
// fails when the struct gains a field Clone does not copy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := *h
	c.IL1 = h.IL1.Clone()
	c.DL1 = h.DL1.Clone()
	c.L2 = h.L2.Clone()
	c.mshrs = h.mshrs.clone()
	return &c
}

// FootprintBytes approximates the resident bytes of the hierarchy's tag and
// MSHR arrays.
func (h *Hierarchy) FootprintBytes() uint64 {
	b := h.IL1.FootprintBytes() + h.DL1.FootprintBytes() + h.L2.FootprintBytes()
	if h.mshrs != nil {
		b += uint64(len(h.mshrs.busyUntil)) * 8
	}
	return b
}

// InstFetch probes the instruction side for addr and returns the fetch
// latency in cycles.
func (h *Hierarchy) InstFetch(addr uint64) int {
	return h.access(h.IL1, addr, false)
}

// Data probes the data side for addr (write=true for stores) and returns the
// access latency in cycles.
func (h *Hierarchy) Data(addr uint64, write bool) int {
	return h.access(h.DL1, addr, write)
}

func (h *Hierarchy) access(l1 *Cache, addr uint64, write bool) int {
	lat := l1.cfg.Latency
	hit, _ := l1.probe(addr, write)
	if hit {
		return lat
	}
	lat += h.L2.cfg.Latency
	// The L1 fill is a read from L2's point of view; dirtiness stays in L1.
	hit2, _ := h.L2.probe(addr, false)
	if h.cfg.NextLinePrefetch && l1 == h.DL1 {
		h.prefetchNextLine(addr)
	}
	if hit2 {
		return lat
	}
	return lat + h.cfg.MemLatency
}

// prefetchNextLine fills addr's successor line into DL1 and L2 without a
// timing charge; Prefetches counts the fills issued.
func (h *Hierarchy) prefetchNextLine(addr uint64) {
	next := (addr | uint64(h.DL1.cfg.LineBytes-1)) + 1
	if h.DL1.Contains(next) {
		return
	}
	h.Prefetches++
	// Fills bypass the demand statistics: undo the probe accounting so
	// miss rates keep meaning "demand misses".
	h.DL1.probe(next, false)
	h.DL1.Accesses--
	h.DL1.Misses--
	if !h.L2.Contains(next) {
		h.L2.probe(next, false)
		h.L2.Accesses--
		h.L2.Misses--
	}
}

// DL1Latency returns the data-side hit latency — the load latency the
// scheduler speculates on.
func (h *Hierarchy) DL1Latency() int { return h.cfg.DL1.Latency }
