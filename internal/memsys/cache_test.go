package memsys

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometry(t *testing.T) {
	cfg := Default()
	if cfg.IL1.Sets() != 512 { // 32KB / (32B * 2)
		t.Errorf("il1 sets = %d", cfg.IL1.Sets())
	}
	if cfg.DL1.Sets() != 512 { // 32KB / (16B * 4)
		t.Errorf("dl1 sets = %d", cfg.DL1.Sets())
	}
	if cfg.L2.Sets() != 2048 { // 512KB / (64B * 4)
		t.Errorf("l2 sets = %d", cfg.L2.Sets())
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := New(Default())
	lat := h.Data(0x1000, false)
	want := 2 + 12 + 150
	if lat != want {
		t.Errorf("cold access latency = %d, want %d", lat, want)
	}
	if lat := h.Data(0x1000, false); lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	// Same 64B L2 line but different 16B DL1 line: DL1 miss, L2 hit.
	if lat := h.Data(0x1010, false); lat != 2+12 {
		t.Errorf("L2 hit latency = %d, want 14", lat)
	}
}

func TestInstVsDataSidesShareL2(t *testing.T) {
	h := New(Default())
	h.Data(0x8000, false) // fills L2
	lat := h.InstFetch(0x8000)
	if lat != 2+12 {
		t.Errorf("ifetch after data fill = %d, want 14", lat)
	}
}

func TestSpatialLocalityWithinLine(t *testing.T) {
	h := New(Default())
	h.Data(0x2000, false)
	for off := uint64(1); off < 16; off++ {
		if lat := h.Data(0x2000+off, false); lat != 2 {
			t.Errorf("offset %d latency = %d, want 2", off, lat)
		}
	}
	if lat := h.Data(0x2010, false); lat == 2 {
		t.Error("next line should miss in DL1")
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := CacheConfig{Name: "t", SizeBytes: 256, LineBytes: 16, Ways: 2, Latency: 1}
	c := NewCache(cfg) // 8 sets, 2 ways
	// Three lines mapping to set 0: strides of sets*line = 128 bytes.
	a, b, d := uint64(0), uint64(128), uint64(256)
	c.probe(a, false)
	c.probe(b, false)
	c.probe(a, false) // a most recent
	c.probe(d, false) // evicts b
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("LRU eviction picked the wrong victim")
	}
}

func TestWritebackAccounting(t *testing.T) {
	cfg := CacheConfig{Name: "t", SizeBytes: 64, LineBytes: 16, Ways: 1, Latency: 1}
	c := NewCache(cfg) // 4 sets, direct mapped
	c.probe(0, true)   // dirty
	_, wb := c.probe(64, false)
	if !wb || c.Writebacks != 1 {
		t.Errorf("dirty eviction not counted: wb=%v count=%d", wb, c.Writebacks)
	}
	_, wb = c.probe(128, false)
	if wb {
		t.Error("clean eviction reported writeback")
	}
}

func TestMissRate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "t", SizeBytes: 1024, LineBytes: 16, Ways: 1, Latency: 1})
	if c.MissRate() != 0 {
		t.Error("idle miss rate nonzero")
	}
	c.probe(0, false)
	c.probe(0, false)
	if got := c.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two sets did not panic")
		}
	}()
	NewCache(CacheConfig{Name: "bad", SizeBytes: 3000, LineBytes: 16, Ways: 1, Latency: 1})
}

func TestHitAfterFillProperty(t *testing.T) {
	// Property: immediately re-probing any address hits.
	h := New(Default())
	f := func(addr uint64) bool {
		h.Data(addr, false)
		return h.Data(addr, false) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsVsOverflows(t *testing.T) {
	// A working set that fits in DL1 has a near-zero steady-state miss
	// rate; one that overflows it misses every line on each pass.
	h := New(Default())
	small := 16 << 10 // 16KB < 32KB
	for pass := 0; pass < 4; pass++ {
		for a := 0; a < small; a += 16 {
			h.Data(uint64(a), false)
		}
	}
	dl1MissSmall := h.DL1.Misses

	h2 := New(Default())
	big := 256 << 10
	for pass := 0; pass < 4; pass++ {
		for a := 0; a < big; a += 16 {
			h2.Data(uint64(a), false)
		}
	}
	// Small set: only compulsory misses (1 pass worth). Big set: misses on
	// every pass.
	if dl1MissSmall > uint64(small/16+64) {
		t.Errorf("small working set missed %d times", dl1MissSmall)
	}
	if h2.DL1.Misses < uint64(3*big/16) {
		t.Errorf("big working set only missed %d times", h2.DL1.Misses)
	}
}

func TestMSHRUnlimitedByDefault(t *testing.T) {
	h := New(Default())
	// Two back-to-back misses at the same cycle both take the raw latency.
	a := h.DataAt(0x100000, false, 10)
	b := h.DataAt(0x200000, false, 10)
	if a != b || h.MSHRWaits != 0 {
		t.Errorf("unlimited MSHRs: %d vs %d, waits %d", a, b, h.MSHRWaits)
	}
}

func TestMSHRBoundSerializesMisses(t *testing.T) {
	cfg := Default()
	cfg.MSHRs = 1
	h := New(cfg)
	first := h.DataAt(0x100000, false, 100) // memory miss: 12+150 behind the DL1
	second := h.DataAt(0x200000, false, 100)
	if second <= first {
		t.Errorf("second miss (%d) not delayed behind first (%d)", second, first)
	}
	if h.MSHRWaits == 0 {
		t.Error("no MSHR wait recorded")
	}
	// A DL1 hit is never charged.
	h.DataAt(0x100000, false, 101)
	if lat := h.DataAt(0x100000, false, 102); lat != 2 {
		t.Errorf("hit latency %d", lat)
	}
}

func TestMSHRFreesOverTime(t *testing.T) {
	cfg := Default()
	cfg.MSHRs = 2
	h := New(cfg)
	h.DataAt(0x100000, false, 0)
	h.DataAt(0x200000, false, 0)
	// Much later, the registers are free again: no extra wait.
	lat := h.DataAt(0x300000, false, 100000)
	if lat != 2+12+150 {
		t.Errorf("late miss latency %d", lat)
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := Default()
	cfg.NextLinePrefetch = true
	h := New(cfg)
	h.Data(0x10000, false) // miss: also prefetches 0x10010
	if h.Prefetches == 0 {
		t.Fatal("no prefetch issued")
	}
	if lat := h.Data(0x10010, false); lat != 2 {
		t.Errorf("next line latency %d, want DL1 hit", lat)
	}
	// Demand miss statistics exclude the prefetch fills.
	if h.DL1.Accesses != 2 || h.DL1.Misses != 1 {
		t.Errorf("demand stats polluted: %d accesses, %d misses", h.DL1.Accesses, h.DL1.Misses)
	}
	// Prefetching never fires on the instruction side.
	h2 := New(cfg)
	h2.InstFetch(0x20000)
	if h2.Prefetches != 0 {
		t.Error("instruction fetch triggered data prefetch")
	}
}

func TestPrefetchHelpsStreaming(t *testing.T) {
	run := func(pf bool) uint64 {
		cfg := Default()
		cfg.NextLinePrefetch = pf
		h := New(cfg)
		for a := uint64(0); a < 1<<16; a += 8 {
			h.Data(a, false)
		}
		return h.DL1.Misses
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("prefetch did not reduce demand misses: %d vs %d", with, without)
	}
}
