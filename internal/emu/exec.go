package emu

import (
	"math"

	"prisim/internal/isa"
)

// Step executes one instruction and returns what happened. Executing while
// halted returns the last state unchanged (Halted set).
func (m *Machine) Step() StepInfo {
	var info StepInfo
	m.StepInto(&info)
	return info
}

// StepInto executes one instruction, writing what happened into *info (the
// timing model passes the dynamic instruction's own slot, avoiding a
// round-trip copy of the report on every fetch). The static instruction is
// taken from the decoded-uop cache, not re-decoded.
//
//prisim:hotpath
func (m *Machine) StepInto(info *StepInfo) {
	if m.halted {
		*info = StepInfo{Seq: m.seq, PC: m.PC, NextPC: m.PC, Halted: true}
		return
	}
	pc := m.PC
	u := m.UopAt(pc)
	in := u.Inst
	if m.recording {
		m.frames = append(m.frames, frame{
			pc:        pc,
			undoStart: len(m.undos),
			outLen:    len(m.output),
			halted:    m.halted,
		})
	}
	m.seq++
	*info = StepInfo{Seq: m.seq, PC: pc, Inst: in, Uop: u}
	next := pc + 4

	ra, rb := m.regs[in.Ra], m.regs[in.Rb]
	//lint:ignore hotpathalloc non-escaping closure: captured only within this frame, so it never reaches the heap
	setInt := func(v uint64) {
		m.writeReg(in.Rd, v)
		info.HasResult, info.Result = in.Rd != isa.RZero, v
	}
	//lint:ignore hotpathalloc non-escaping closure: captured only within this frame, so it never reaches the heap
	setFP := func(v float64) {
		bits := math.Float64bits(v)
		m.writeReg(in.Rd, bits)
		info.HasResult, info.Result = true, bits
	}
	fa, fb := math.Float64frombits(ra), math.Float64frombits(rb)

	switch in.Op {
	case isa.OpADD:
		setInt(ra + rb)
	case isa.OpSUB:
		setInt(ra - rb)
	case isa.OpMUL:
		setInt(ra * rb)
	case isa.OpDIV:
		setInt(uint64(divS(int64(ra), int64(rb))))
	case isa.OpDIVU:
		if rb == 0 {
			setInt(0)
		} else {
			setInt(ra / rb)
		}
	case isa.OpREM:
		setInt(uint64(remS(int64(ra), int64(rb))))
	case isa.OpAND:
		setInt(ra & rb)
	case isa.OpOR:
		setInt(ra | rb)
	case isa.OpXOR:
		setInt(ra ^ rb)
	case isa.OpNOR:
		setInt(^(ra | rb))
	case isa.OpSLL:
		setInt(ra << (rb & 63))
	case isa.OpSRL:
		setInt(ra >> (rb & 63))
	case isa.OpSRA:
		setInt(uint64(int64(ra) >> (rb & 63)))
	case isa.OpSLT:
		setInt(b2u(int64(ra) < int64(rb)))
	case isa.OpSLTU:
		setInt(b2u(ra < rb))
	case isa.OpSEQ:
		setInt(b2u(ra == rb))
	case isa.OpCMOVEQ:
		if ra == 0 {
			setInt(rb)
		} else {
			setInt(m.regs[in.Rd]) // keep the old value; still a write
		}
	case isa.OpCMOVNE:
		if ra != 0 {
			setInt(rb)
		} else {
			setInt(m.regs[in.Rd])
		}

	case isa.OpADDI:
		setInt(ra + uint64(in.Imm))
	case isa.OpANDI:
		setInt(ra & uint64(uint16(in.Imm)))
	case isa.OpORI:
		setInt(ra | uint64(uint16(in.Imm)))
	case isa.OpXORI:
		setInt(ra ^ uint64(uint16(in.Imm)))
	case isa.OpSLLI:
		setInt(ra << (uint64(in.Imm) & 63))
	case isa.OpSRLI:
		setInt(ra >> (uint64(in.Imm) & 63))
	case isa.OpSRAI:
		setInt(uint64(int64(ra) >> (uint64(in.Imm) & 63)))
	case isa.OpSLTI:
		setInt(b2u(int64(ra) < in.Imm))
	case isa.OpLUI:
		setInt(uint64(in.Imm << 16))

	case isa.OpLDQ, isa.OpLDL, isa.OpLDB, isa.OpLDBU, isa.OpFLD:
		addr := ra + uint64(in.Imm)
		info.IsMem, info.MemAddr = true, addr
		switch in.Op {
		case isa.OpLDQ, isa.OpFLD:
			info.MemSize = 8
			setInt(m.Mem.ReadU64(addr))
		case isa.OpLDL:
			info.MemSize = 4
			setInt(uint64(int64(int32(m.Mem.ReadU32(addr)))))
		case isa.OpLDB:
			info.MemSize = 1
			setInt(uint64(int64(int8(m.Mem.ReadU8(addr)))))
		case isa.OpLDBU:
			info.MemSize = 1
			setInt(uint64(m.Mem.ReadU8(addr)))
		}
	case isa.OpSTQ, isa.OpSTL, isa.OpSTB, isa.OpFST:
		addr := ra + uint64(in.Imm)
		data := m.regs[in.Rd]
		info.IsMem, info.MemAddr = true, addr
		switch in.Op {
		case isa.OpSTQ, isa.OpFST:
			info.MemSize = 8
		case isa.OpSTL:
			info.MemSize = 4
		case isa.OpSTB:
			info.MemSize = 1
		}
		m.writeMem(addr, info.MemSize, data)

	case isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU:
		var taken bool
		switch in.Op {
		case isa.OpBEQ:
			taken = ra == rb
		case isa.OpBNE:
			taken = ra != rb
		case isa.OpBLT:
			taken = int64(ra) < int64(rb)
		case isa.OpBGE:
			taken = int64(ra) >= int64(rb)
		case isa.OpBLTU:
			taken = ra < rb
		case isa.OpBGEU:
			taken = ra >= rb
		}
		info.Taken = taken
		if taken {
			next = in.BranchTarget(pc)
		}

	case isa.OpJ:
		info.Taken = true
		next = in.BranchTarget(pc)
	case isa.OpJAL:
		info.Taken = true
		m.writeReg(isa.RLR, pc+4)
		info.HasResult, info.Result = true, pc+4
		next = in.BranchTarget(pc)
	case isa.OpJR:
		info.Taken = true
		next = ra &^ 3
	case isa.OpJALR:
		info.Taken = true
		setInt(pc + 4)
		next = ra &^ 3

	case isa.OpFADD:
		setFP(fa + fb)
	case isa.OpFSUB:
		setFP(fa - fb)
	case isa.OpFMUL:
		setFP(fa * fb)
	case isa.OpFDIV:
		setFP(fa / fb)
	case isa.OpFSQRT:
		setFP(math.Sqrt(fa))
	case isa.OpFMOV:
		m.writeReg(in.Rd, ra)
		info.HasResult, info.Result = true, ra
	case isa.OpFNEG:
		bits := ra ^ (1 << 63)
		m.writeReg(in.Rd, bits)
		info.HasResult, info.Result = true, bits
	case isa.OpFABS:
		bits := ra &^ (1 << 63)
		m.writeReg(in.Rd, bits)
		info.HasResult, info.Result = true, bits
	case isa.OpFMIN:
		setFP(math.Min(fa, fb))
	case isa.OpFMAX:
		setFP(math.Max(fa, fb))
	case isa.OpCVTIF:
		setFP(float64(int64(ra)))
	case isa.OpCVTFI:
		setInt(uint64(f2i(fa)))
	case isa.OpFCLT:
		setInt(b2u(fa < fb))
	case isa.OpFCLE:
		setInt(b2u(fa <= fb))
	case isa.OpFCEQ:
		setInt(b2u(fa == fb))

	case isa.OpPUTC:
		m.output = append(m.output, byte(ra))
	case isa.OpHALT:
		m.halted = true
		info.Halted = true
		next = pc
	case isa.OpNOP, isa.OpInvalid:
		// Invalid encodings execute as no-ops: wrong-path fetch can run
		// into data, and hardware would squash before architectural effect.
	}

	m.PC = next
	info.NextPC = next
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// divS is signed division without traps: x/0 = 0, MinInt64 / -1 = MinInt64.
func divS(x, y int64) int64 {
	if y == 0 {
		return 0
	}
	if x == math.MinInt64 && y == -1 {
		return math.MinInt64
	}
	return x / y
}

// remS is signed remainder without traps: x%0 = x, MinInt64 % -1 = 0.
func remS(x, y int64) int64 {
	if y == 0 {
		return x
	}
	if x == math.MinInt64 && y == -1 {
		return 0
	}
	return x % y
}

// f2i converts float64 to int64 with saturating, NaN-safe semantics.
func f2i(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}
