// Package emu implements the PRISC-64 functional emulator: sparse memory,
// architected register state, single-instruction execution, and an undo log
// that supports precise rollback to any earlier instruction boundary.
//
// The undo log is what lets the timing simulator (internal/ooo) execute
// down mispredicted paths: wrong-path instructions run against real
// architected state, and when the mispredicted branch resolves the machine
// is rolled back to the branch boundary, exactly as a hardware checkpoint
// recovery would.
//
// The package promises deterministic execution: architected state is a pure
// function of the program, with no wall-clock, global randomness, or
// map-order dependence.
//
//prisim:deterministic
package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// tlbSize is the size of the direct-mapped page-translation cache that
// fronts the page map. Simulated workloads touch a handful of hot pages
// (stack, globals, the current working set), so even a small cache turns
// nearly every access into two compares instead of a map probe.
const tlbSize = 64

type tlbEntry struct {
	pn uint64
	p  *page // nil = invalid slot
	ro bool  // page is snapshot-shared: reads may use p, writes must COW via ensureSlow
}

// Memory is a sparse, paged, little-endian 64-bit address space. Unmapped
// locations read as zero; writes allocate pages on demand.
//
// Clone produces copy-on-write snapshots: the clone and the receiver share
// every resident page, and the first write either side makes to a shared
// page copies it first. Cloning therefore costs O(resident pages) map work,
// and a clone's memory cost is O(pages it actually touches), not O(its
// footprint) — the property the experiment harness relies on to stamp out
// one warm fast-forward image across a whole sweep.
type Memory struct {
	pages map[uint64]*page
	// shared marks pages co-owned with a snapshot or clone. A shared page is
	// never written in place by anyone — writers copy it into a private page
	// and drop the mark — so concurrent clones may read shared pages freely.
	shared    map[uint64]struct{}
	tlb       [tlbSize]tlbEntry // direct-mapped translation cache
	cowCopies uint64            // shared pages privatized by a write
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

//prisim:hotpath
func (m *Memory) lookup(pn uint64) *page {
	e := &m.tlb[pn%tlbSize]
	if e.pn == pn && e.p != nil {
		return e.p
	}
	p := m.pages[pn]
	if p != nil {
		_, ro := m.shared[pn]
		e.pn, e.p, e.ro = pn, p, ro
	}
	return p
}

// ensure returns a writable page, allocating or copy-on-write-privatizing it
// as needed. The TLB fast path only serves entries already known writable.
//
//prisim:hotpath
func (m *Memory) ensure(pn uint64) *page {
	e := &m.tlb[pn%tlbSize]
	if e.pn == pn && e.p != nil && !e.ro {
		return e.p
	}
	return m.ensureSlow(pn)
}

// ensureSlow is the TLB-miss half of ensure: demand-allocate an absent page,
// or privatize a snapshot-shared one before its first write.
func (m *Memory) ensureSlow(pn uint64) *page {
	p := m.pages[pn]
	if p == nil {
		p = new(page)
		m.pages[pn] = p
	} else if _, ro := m.shared[pn]; ro {
		cp := new(page)
		*cp = *p
		m.pages[pn] = cp
		delete(m.shared, pn)
		m.cowCopies++
		p = cp
	}
	m.tlb[pn%tlbSize] = tlbEntry{pn: pn, p: p}
	return p
}

// Clone returns a copy-on-write snapshot of the address space: both sides
// keep reading the shared pages, and whichever side writes a shared page
// first copies it privately. Cloning a Memory whose pages are all already
// shared (one produced by Clone, or one that has been cloned before) does
// not mutate the receiver, so concurrent Clone calls on a frozen snapshot
// are safe; first-time clones mutate the receiver's bookkeeping and must be
// serialized by the caller.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:  make(map[uint64]*page, len(m.pages)),
		shared: make(map[uint64]struct{}, len(m.pages)),
	}
	// shared only ever holds resident pages, so equal sizes mean every page
	// is already shared and the receiver needs no bookkeeping writes.
	frozen := len(m.shared) == len(m.pages)
	if !frozen && m.shared == nil {
		m.shared = make(map[uint64]struct{}, len(m.pages))
	}
	//lint:ignore determinism the range only copies page pointers into fresh maps; the result is independent of iteration order
	for pn, p := range m.pages {
		c.pages[pn] = p
		c.shared[pn] = struct{}{}
		if !frozen {
			m.shared[pn] = struct{}{}
		}
	}
	if !frozen {
		// Cached-writable TLB entries would bypass the new COW barrier.
		m.tlb = [tlbSize]tlbEntry{}
	}
	return c
}

// CowCopies returns how many shared pages this Memory has privatized —
// the clone's real memory cost, in pages, beyond the shared image.
func (m *Memory) CowCopies() uint64 { return m.cowCopies }

// SharedPages returns the number of resident pages still co-owned with a
// snapshot or clone.
func (m *Memory) SharedPages() int { return len(m.shared) }

// FootprintBytes returns the resident page bytes reachable from this
// Memory, counting shared pages at full size.
func (m *Memory) FootprintBytes() uint64 { return uint64(len(m.pages)) * pageSize }

// Read fills buf from memory at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn, off := addr>>pageShift, addr&pageMask
		n := copy(buf, func() []byte {
			if p := m.lookup(pn); p != nil {
				return p[off:]
			}
			return zeroPage[off:]
		}())
		addr += uint64(n)
		buf = buf[n:]
	}
}

var zeroPage page

// Write copies buf into memory at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn, off := addr>>pageShift, addr&pageMask
		n := copy(m.ensure(pn)[off:], buf)
		addr += uint64(n)
		buf = buf[n:]
	}
}

// ReadU64 reads a 64-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) ReadU64(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		if p := m.lookup(addr >> pageShift); p != nil {
			return binary.LittleEndian.Uint64(p[addr&pageMask:])
		}
		return 0
	}
	var buf [8]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// ReadU32 reads a 32-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) ReadU32(addr uint64) uint32 {
	if addr&pageMask <= pageSize-4 {
		if p := m.lookup(addr >> pageShift); p != nil {
			return binary.LittleEndian.Uint32(p[addr&pageMask:])
		}
		return 0
	}
	var buf [4]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// ReadU8 reads one byte.
//
//prisim:hotpath
func (m *Memory) ReadU8(addr uint64) byte {
	if p := m.lookup(addr >> pageShift); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// WriteU64 writes a 64-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) WriteU64(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.ensure(addr >> pageShift)[addr&pageMask:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteU32 writes a 32-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) WriteU32(addr uint64, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.ensure(addr >> pageShift)[addr&pageMask:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteU8 writes one byte.
//
//prisim:hotpath
func (m *Memory) WriteU8(addr uint64, v byte) {
	m.ensure(addr >> pageShift)[addr&pageMask] = v
}

// Pages returns the number of resident pages (for tests and footprint stats).
func (m *Memory) Pages() int { return len(m.pages) }
