// Package emu implements the PRISC-64 functional emulator: sparse memory,
// architected register state, single-instruction execution, and an undo log
// that supports precise rollback to any earlier instruction boundary.
//
// The undo log is what lets the timing simulator (internal/ooo) execute
// down mispredicted paths: wrong-path instructions run against real
// architected state, and when the mispredicted branch resolves the machine
// is rolled back to the branch boundary, exactly as a hardware checkpoint
// recovery would.
//
// The package promises deterministic execution: architected state is a pure
// function of the program, with no wall-clock, global randomness, or
// map-order dependence.
//
//prisim:deterministic
package emu

import "encoding/binary"

const (
	pageShift = 12
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

type page [pageSize]byte

// tlbSize is the size of the direct-mapped page-translation cache that
// fronts the page map. Simulated workloads touch a handful of hot pages
// (stack, globals, the current working set), so even a small cache turns
// nearly every access into two compares instead of a map probe.
const tlbSize = 64

type tlbEntry struct {
	pn uint64
	p  *page // nil = invalid slot
}

// Memory is a sparse, paged, little-endian 64-bit address space. Unmapped
// locations read as zero; writes allocate pages on demand.
type Memory struct {
	pages map[uint64]*page
	tlb   [tlbSize]tlbEntry // direct-mapped translation cache
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

//prisim:hotpath
func (m *Memory) lookup(pn uint64) *page {
	e := &m.tlb[pn%tlbSize]
	if e.pn == pn && e.p != nil {
		return e.p
	}
	p := m.pages[pn]
	if p != nil {
		e.pn, e.p = pn, p
	}
	return p
}

//prisim:hotpath
func (m *Memory) ensure(pn uint64) *page {
	if p := m.lookup(pn); p != nil {
		return p
	}
	//lint:ignore hotpathalloc demand paging: each page allocates exactly once, then every access hits the TLB/map
	p := new(page)
	m.pages[pn] = p
	e := &m.tlb[pn%tlbSize]
	e.pn, e.p = pn, p
	return p
}

// Read fills buf from memory at addr.
func (m *Memory) Read(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn, off := addr>>pageShift, addr&pageMask
		n := copy(buf, func() []byte {
			if p := m.lookup(pn); p != nil {
				return p[off:]
			}
			return zeroPage[off:]
		}())
		addr += uint64(n)
		buf = buf[n:]
	}
}

var zeroPage page

// Write copies buf into memory at addr.
func (m *Memory) Write(addr uint64, buf []byte) {
	for len(buf) > 0 {
		pn, off := addr>>pageShift, addr&pageMask
		n := copy(m.ensure(pn)[off:], buf)
		addr += uint64(n)
		buf = buf[n:]
	}
}

// ReadU64 reads a 64-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) ReadU64(addr uint64) uint64 {
	if addr&pageMask <= pageSize-8 {
		if p := m.lookup(addr >> pageShift); p != nil {
			return binary.LittleEndian.Uint64(p[addr&pageMask:])
		}
		return 0
	}
	var buf [8]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// ReadU32 reads a 32-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) ReadU32(addr uint64) uint32 {
	if addr&pageMask <= pageSize-4 {
		if p := m.lookup(addr >> pageShift); p != nil {
			return binary.LittleEndian.Uint32(p[addr&pageMask:])
		}
		return 0
	}
	var buf [4]byte
	m.Read(addr, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// ReadU8 reads one byte.
//
//prisim:hotpath
func (m *Memory) ReadU8(addr uint64) byte {
	if p := m.lookup(addr >> pageShift); p != nil {
		return p[addr&pageMask]
	}
	return 0
}

// WriteU64 writes a 64-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) WriteU64(addr uint64, v uint64) {
	if addr&pageMask <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.ensure(addr >> pageShift)[addr&pageMask:], v)
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteU32 writes a 32-bit little-endian value.
//
//prisim:hotpath
func (m *Memory) WriteU32(addr uint64, v uint32) {
	if addr&pageMask <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.ensure(addr >> pageShift)[addr&pageMask:], v)
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	m.Write(addr, buf[:])
}

// WriteU8 writes one byte.
//
//prisim:hotpath
func (m *Memory) WriteU8(addr uint64, v byte) {
	m.ensure(addr >> pageShift)[addr&pageMask] = v
}

// Pages returns the number of resident pages (for tests and footprint stats).
func (m *Memory) Pages() int { return len(m.pages) }
