package emu

import (
	"testing"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// loopProgram builds a program whose 4-instruction loop body executes trips
// times: dynamic instruction count scales with trips, static count does not.
func loopProgram(t *testing.T, trips int64) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	b.Li(isa.IntReg(1), trips)
	b.Li(isa.IntReg(2), 0)
	b.Label("loop")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), 3)
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	return b.MustFinish()
}

// TestUopCacheDecodesOnce is the decode-once contract: executing a loop body
// hundreds of times decodes each static instruction exactly once, and a
// rollback-free re-run of already-seen PCs decodes nothing new.
func TestUopCacheDecodesOnce(t *testing.T) {
	prog := loopProgram(t, 500)
	m := New(prog)
	ran := m.Run(0)
	if ran < 1000 {
		t.Fatalf("loop ran only %d instructions", ran)
	}
	static := uint64(len(prog.Code))
	got := m.StaticDecodes()
	if got > static {
		t.Errorf("decoded %d static instructions, program has only %d", got, static)
	}
	if got == 0 || got >= ran {
		t.Errorf("decodes = %d, want once-per-static (0 < decodes <= %d << %d dynamic)", got, static, ran)
	}

	// Re-walking the same PCs must hit the cache: peek at every text address.
	before := m.StaticDecodes()
	for pc := prog.CodeBase; pc < prog.CodeBase+4*uint64(len(prog.Code)); pc += 4 {
		m.SetPC(pc)
		m.PeekInst()
	}
	after := m.StaticDecodes()
	if after != before && after != static {
		t.Errorf("re-peek decoded new entries beyond the text segment: %d -> %d (static %d)", before, after, static)
	}
	if after != static {
		t.Errorf("full text walk left %d of %d entries undecoded", static-after, static)
	}
}

// TestUopCacheDisabledMatchesEnabled runs the same program with the cache on
// and off and demands identical architected outcomes and step reports.
func TestUopCacheDisabledMatchesEnabled(t *testing.T) {
	prog := loopProgram(t, 50)
	a, b := New(prog), New(prog)
	b.SetUopCache(false)
	for !a.Halted() || !b.Halted() {
		ia, ib := a.Step(), b.Step()
		ia.Uop, ib.Uop = nil, nil // pointers differ by construction
		if ia != ib {
			t.Fatalf("step diverged:\ncached:   %+v\nuncached: %+v", ia, ib)
		}
	}
	if b.StaticDecodes() != 0 {
		t.Errorf("disabled cache still filled %d entries", b.StaticDecodes())
	}
	for r := 0; r < isa.NumArchRegs; r++ {
		if a.Reg(isa.Reg(r)) != b.Reg(isa.Reg(r)) {
			t.Errorf("%s = %#x cached, %#x uncached", isa.Reg(r), a.Reg(isa.Reg(r)), b.Reg(isa.Reg(r)))
		}
	}
}

// TestUopOutOfTextScratch pins the wrong-path contract: fetching from a data
// address decodes through the scratch slot (no cache fill, no panic), and
// garbage bytes execute as the invalid no-op.
func TestUopOutOfTextScratch(t *testing.T) {
	prog := loopProgram(t, 1)
	m := New(prog)
	m.Mem.WriteU32(0x9000_0000, 0xFFFF_FFFF)
	m.SetPC(0x9000_0000)
	u := m.PeekUop()
	if u.Inst.Op != isa.OpInvalid {
		t.Errorf("garbage decoded to %v", u.Inst)
	}
	if m.StaticDecodes() != 0 {
		t.Errorf("out-of-text peek filled the cache (%d entries)", m.StaticDecodes())
	}
	info := m.Step()
	if info.Inst.Op != isa.OpInvalid || m.Halted() {
		t.Errorf("invalid step: %+v halted=%v", info, m.Halted())
	}
}
