package emu

import (
	"math"
	"testing"
	"testing/quick"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, src string) *Machine {
	t.Helper()
	m := New(mustAssemble(t, src))
	if n := m.Run(1_000_000); n == 1_000_000 {
		t.Fatal("program did not halt")
	}
	return m
}

func TestArithmeticProgram(t *testing.T) {
	m := run(t, `
.text
main:
  li   r1, 6
  li   r2, 7
  mul  r3, r1, r2      ; 42
  sub  r4, r3, r1      ; 36
  div  r5, r4, r2      ; 5
  rem  r6, r4, r2      ; 1
  slt  r7, r1, r2      ; 1
  sltu r8, r2, r1      ; 0
  halt
`)
	want := map[int]uint64{3: 42, 4: 36, 5: 5, 6: 1, 7: 1, 8: 0}
	for r, v := range want {
		if got := m.Reg(isa.IntReg(r)); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
.text
main:
  li   r1, 99
  add  zero, r1, r1
  addi zero, r1, 5
  add  r2, zero, zero
  halt
`)
	if m.Reg(isa.RZero) != 0 || m.Reg(isa.IntReg(2)) != 0 {
		t.Error("zero register was written")
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	if divS(5, 0) != 0 || divS(math.MinInt64, -1) != math.MinInt64 {
		t.Error("divS edge cases")
	}
	if remS(5, 0) != 5 || remS(math.MinInt64, -1) != 0 {
		t.Error("remS edge cases")
	}
	if f2i(math.NaN()) != 0 || f2i(1e300) != math.MaxInt64 || f2i(-1e300) != math.MinInt64 {
		t.Error("f2i edge cases")
	}
	if f2i(-2.9) != -2 {
		t.Error("f2i truncation")
	}
}

func TestLoadsStores(t *testing.T) {
	m := run(t, `
.data
src: .word 0x1122334455667788
dst: .space 32
.text
main:
  la   r1, src
  la   r2, dst
  ldq  r3, 0(r1)
  stq  r3, 0(r2)
  ldl  r4, 0(r1)       ; 0x55667788 sign-extended (positive)
  ldb  r5, 3(r1)       ; 0x55 sign-extended
  ldbu r6, 7(r1)       ; 0x11
  stb  r5, 8(r2)
  stl  r4, 16(r2)
  halt
`)
	if got := m.Reg(isa.IntReg(3)); got != 0x1122334455667788 {
		t.Errorf("ldq = %#x", got)
	}
	if got := m.Reg(isa.IntReg(4)); got != 0x55667788 {
		t.Errorf("ldl = %#x", got)
	}
	if got := m.Reg(isa.IntReg(5)); got != 0x55 {
		t.Errorf("ldb = %#x", got)
	}
	if got := m.Reg(isa.IntReg(6)); got != 0x11 {
		t.Errorf("ldbu = %#x", got)
	}
}

func TestSignExtendingLoads(t *testing.T) {
	m := run(t, `
.data
neg: .word 0xFFFFFFFFFFFFFF80
.text
main:
  la   r1, neg
  ldb  r2, 0(r1)
  ldbu r3, 0(r1)
  ldl  r4, 0(r1)
  halt
`)
	if got := int64(m.Reg(isa.IntReg(2))); got != -128 {
		t.Errorf("ldb = %d, want -128", got)
	}
	if got := m.Reg(isa.IntReg(3)); got != 0x80 {
		t.Errorf("ldbu = %#x", got)
	}
	if got := int64(m.Reg(isa.IntReg(4))); got != -128 {
		t.Errorf("ldl = %d", got)
	}
}

func TestControlFlowAndCalls(t *testing.T) {
	m := run(t, `
.text
main:
  li  r1, 0
  li  r2, 10
loop:
  jal addone
  addi r2, r2, -1
  bnez r2, loop
  j fin
addone:
  addi r1, r1, 1
  ret
fin:
  halt
`)
	if got := m.Reg(isa.IntReg(1)); got != 10 {
		t.Errorf("r1 = %d, want 10", got)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
.data
a: .float 2.0, 8.0
.text
main:
  la    r1, a
  fld   f1, 0(r1)
  fld   f2, 8(r1)
  fadd  f3, f1, f2    ; 10
  fmul  f4, f1, f2    ; 16
  fdiv  f5, f2, f1    ; 4
  fsqrt f6, f4        ; 4
  fneg  f7, f1        ; -2
  fabs  f8, f7        ; 2
  fclt  r2, f1, f2    ; 1
  cvtfi r3, f3        ; 10
  li    r4, 3
  cvtif f9, r4        ; 3.0
  fmin  f10, f1, f2
  fmax  f11, f1, f2
  fceq  r5, f10, f1   ; 1
  fcle  r6, f2, f11   ; 1
  halt
`)
	fp := func(i int) float64 { return math.Float64frombits(m.Reg(isa.FPReg(i))) }
	if fp(3) != 10 || fp(4) != 16 || fp(5) != 4 || fp(6) != 4 || fp(7) != -2 || fp(8) != 2 || fp(9) != 3 {
		t.Errorf("fp results: %v %v %v %v %v %v %v", fp(3), fp(4), fp(5), fp(6), fp(7), fp(8), fp(9))
	}
	if m.Reg(isa.IntReg(2)) != 1 || m.Reg(isa.IntReg(3)) != 10 || m.Reg(isa.IntReg(5)) != 1 || m.Reg(isa.IntReg(6)) != 1 {
		t.Error("fp compares/converts wrong")
	}
}

func TestPutcOutput(t *testing.T) {
	m := run(t, `
.text
main:
  li r1, 104
  putc r1
  li r1, 105
  putc r1
  halt
`)
	if string(m.Output()) != "hi" {
		t.Errorf("output = %q", m.Output())
	}
}

func TestLiExpansionValues(t *testing.T) {
	values := []int64{
		0, 1, -1, 100, -100, 32767, -32768, 32768, -32769,
		1 << 20, -(1 << 20), 1<<31 - 1, -(1 << 31), 1 << 31, 1 << 40,
		-(1 << 40), math.MaxInt64, math.MinInt64, 0x123456789ABCDEF0,
	}
	for _, v := range values {
		b := asm.NewBuilder()
		b.Li(isa.IntReg(1), v)
		b.Halt()
		m := New(b.MustFinish())
		m.Run(100)
		if got := int64(m.Reg(isa.IntReg(1))); got != v {
			t.Errorf("Li(%d) produced %d", v, got)
		}
	}
}

func TestLiExpansionQuick(t *testing.T) {
	f := func(v int64) bool {
		b := asm.NewBuilder()
		b.Li(isa.IntReg(1), v)
		b.Halt()
		m := New(b.MustFinish())
		m.Run(100)
		return int64(m.Reg(isa.IntReg(1))) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMemorySparseAndUnaligned(t *testing.T) {
	mem := NewMemory()
	if mem.ReadU64(0xDEAD0000) != 0 {
		t.Error("unmapped read not zero")
	}
	// Page-crossing write and read.
	addr := uint64(pageSize - 3)
	mem.WriteU64(addr, 0x0102030405060708)
	if got := mem.ReadU64(addr); got != 0x0102030405060708 {
		t.Errorf("page-crossing u64 = %#x", got)
	}
	mem.WriteU32(2*pageSize-2, 0xAABBCCDD)
	if got := mem.ReadU32(2*pageSize - 2); got != 0xAABBCCDD {
		t.Errorf("page-crossing u32 = %#x", got)
	}
	if mem.Pages() == 0 {
		t.Error("no pages allocated")
	}
}

func TestHaltedStepIsIdempotent(t *testing.T) {
	m := run(t, ".text\nmain:\n halt")
	pc := m.PC
	info := m.Step()
	if !info.Halted || m.PC != pc || m.Seq() != 1 {
		t.Error("step after halt changed state")
	}
}

func TestRollbackRestoresEverything(t *testing.T) {
	src := `
.data
buf: .space 64
.text
main:
  li   r1, 5
  la   r2, buf
  stq  r1, 0(r2)
  li   r3, 77
  putc r3
  stb  r3, 8(r2)
  addi r1, r1, 100
  halt
`
	m := New(mustAssemble(t, src))
	m.StartRecording()
	// Execute up to (not including) the first stq; snapshot; run to halt;
	// roll back; compare.
	var snapAt uint64
	for !m.Halted() {
		in := m.PeekInst()
		if in.Op == isa.OpSTQ && snapAt == 0 {
			snapAt = m.Seq()
		}
		m.Step()
	}
	if snapAt == 0 {
		t.Fatal("no stq found")
	}
	bufAddr := mustAssemble(t, src).Symbols["buf"]
	if m.Mem.ReadU64(bufAddr) != 5 || len(m.Output()) != 1 {
		t.Fatal("pre-rollback state wrong")
	}
	m.Rollback(snapAt)
	if m.Halted() {
		t.Error("still halted after rollback")
	}
	if m.Mem.ReadU64(bufAddr) != 0 {
		t.Error("memory not rolled back")
	}
	if m.Mem.ReadU8(bufAddr+8) != 0 {
		t.Error("byte store not rolled back")
	}
	if len(m.Output()) != 0 {
		t.Error("output not rolled back")
	}
	if m.Reg(isa.IntReg(3)) != 0 {
		t.Error("r3 not rolled back")
	}
	if m.Seq() != snapAt {
		t.Errorf("seq = %d, want %d", m.Seq(), snapAt)
	}
	// Re-execution reaches the same final state.
	m.Run(0)
	if m.Mem.ReadU64(bufAddr) != 5 || m.Reg(isa.IntReg(1)) != 105 {
		t.Error("re-execution diverged")
	}
}

func TestRollbackQuickEquivalence(t *testing.T) {
	// Property: run K steps, record, run N more, roll back, re-run N:
	// final register state equals a straight-line run of K+N steps.
	src := `
.data
buf: .space 256
.text
main:
  la  r9, buf
  li  r1, 1
  li  r2, 0
  li  r8, 600      ; bounded trip count: the program always halts
loop:
  add  r2, r2, r1
  addi r1, r1, 3
  andi r3, r2, 31
  slli r4, r3, 3
  add  r5, r9, r4
  stq  r2, 0(r5)
  ldq  r6, 0(r5)
  xor  r7, r6, r1
  addi r8, r8, -1
  bnez r8, loop
  halt
`
	prog := mustAssemble(t, src)
	f := func(kRaw, nRaw uint16) bool {
		// k and n stay >= 1: Run(0) means "no limit", not "zero steps".
		k, n := uint64(kRaw%200)+1, uint64(nRaw%200)+1
		ref := New(prog)
		ref.Run(k + n)

		m := New(prog)
		m.Run(k)
		m.StartRecording()
		base := m.Seq()
		m.Run(n)
		m.Rollback(base)
		m.Run(n)
		for r := 0; r < isa.NumArchRegs; r++ {
			if m.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
				return false
			}
		}
		return m.PC == ref.PC && m.Seq() == ref.Seq()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReleaseUpToBoundsLog(t *testing.T) {
	src := `
.text
main:
  li r1, 0
  li r3, 100000
loop:
  addi r1, r1, 1
  slt  r2, r1, r3
  bnez r2, loop
  halt
`
	m := New(mustAssemble(t, src))
	m.StartRecording()
	for !m.Halted() {
		m.Step()
		if m.Seq() > 64 {
			m.ReleaseUpTo(m.Seq() - 64)
		}
	}
	if len(m.frames) > 100000 {
		t.Errorf("undo log grew unboundedly: %d frames", len(m.frames))
	}
	// Rollback within the retained window still works.
	target := m.Seq() - 10
	m.Rollback(target)
	if m.Seq() != target {
		t.Error("rollback after release failed")
	}
}

func TestRollbackPanicsOutsideWindow(t *testing.T) {
	m := New(mustAssemble(t, ".text\nmain:\n li r1, 1\n li r2, 2\n halt"))
	m.StartRecording()
	m.Run(0)
	for _, bad := range []uint64{m.Seq() + 1} {
		func() {
			defer func() { recover() }()
			m.Rollback(bad)
			t.Errorf("Rollback(%d) did not panic", bad)
		}()
	}
}

func TestStepInfoFields(t *testing.T) {
	m := New(mustAssemble(t, `
.data
w: .word 42
.text
main:
  la  r1, w
  ldq r2, 0(r1)
  beq r2, r2, target
  nop
target:
  halt
`))
	var load, branch StepInfo
	for !m.Halted() {
		info := m.Step()
		switch info.Inst.Op {
		case isa.OpLDQ:
			load = info
		case isa.OpBEQ:
			branch = info
		}
	}
	if !load.IsMem || load.MemSize != 8 || !load.HasResult || load.Result != 42 {
		t.Errorf("load info: %+v", load)
	}
	if !branch.Taken {
		t.Error("taken branch not reported")
	}
	if branch.NextPC != branch.Inst.BranchTarget(branch.PC) {
		t.Error("branch NextPC wrong")
	}
}

func TestJRAlignsTarget(t *testing.T) {
	// Indirect jumps mask the low two bits, as hardware does.
	m := run(t, `
.text
main:
  li   r2, 0
  jal  probe
  li   r2, 5         ; the masked jr must land exactly here
  halt
probe:
  addi r1, lr, 2     ; misaligned return pointer
  jr   r1
`)
	if m.Reg(isa.IntReg(2)) != 5 {
		t.Error("misaligned jr did not land on the aligned target")
	}
}

func TestPeekInstMatchesStep(t *testing.T) {
	prog := mustAssemble(t, `
.data
d: .word 3
.text
main:
  la  r1, d
  ldq r2, 0(r1)
  add r3, r2, r2
  halt
`)
	m := New(prog)
	for !m.Halted() {
		peeked := m.PeekInst()
		info := m.Step()
		if peeked != info.Inst {
			t.Fatalf("peek %v != step %v", peeked, info.Inst)
		}
	}
}

func TestOutputRollbackAcrossMultipleFrames(t *testing.T) {
	prog := mustAssemble(t, `
.text
main:
  li r1, 65
  putc r1
  putc r1
  putc r1
  halt
`)
	m := New(prog)
	m.StartRecording()
	m.Run(3) // li + two putc
	if string(m.Output()) != "AA" {
		t.Fatalf("output = %q", m.Output())
	}
	m.Rollback(2) // keep one putc
	if string(m.Output()) != "A" {
		t.Errorf("rolled-back output = %q", m.Output())
	}
	m.Run(0)
	if string(m.Output()) != "AAA" {
		t.Errorf("final output = %q", m.Output())
	}
}

func TestMemoryPagesAccounting(t *testing.T) {
	mem := NewMemory()
	if mem.Pages() != 0 {
		t.Error("fresh memory has pages")
	}
	mem.WriteU8(0, 1)
	mem.WriteU8(1<<20, 1)
	if mem.Pages() != 2 {
		t.Errorf("pages = %d, want 2", mem.Pages())
	}
	// Reads never allocate.
	mem.ReadU64(1 << 30)
	if mem.Pages() != 2 {
		t.Error("read allocated a page")
	}
}
