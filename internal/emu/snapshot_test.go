package emu

import (
	"bytes"
	"reflect"
	"testing"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// fieldNames enumerates a struct's fields by name so the completeness tests
// below fail loudly when state grows without Clone learning about it.
func fieldNames(t *testing.T, v any) map[string]bool {
	t.Helper()
	typ := reflect.TypeOf(v)
	out := make(map[string]bool, typ.NumField())
	for i := 0; i < typ.NumField(); i++ {
		out[typ.Field(i).Name] = true
	}
	return out
}

func wantFields(t *testing.T, what string, got map[string]bool, want []string) {
	t.Helper()
	for _, f := range want {
		if !got[f] {
			t.Errorf("%s: field %q listed as clone-handled no longer exists; update the list AND the Clone method", what, f)
		}
		delete(got, f)
	}
	for f := range got {
		t.Errorf("%s: new field %q is not handled by Clone — teach Clone (and the snapshot layer) about it, then add it here", what, f)
	}
}

// TestMemoryCloneCompleteness pins the exact field set Memory.Clone handles.
func TestMemoryCloneCompleteness(t *testing.T) {
	wantFields(t, "emu.Memory", fieldNames(t, Memory{}), []string{
		"pages",     // shared page-pointer map, copied per clone
		"shared",    // COW bookkeeping, rebuilt per clone
		"tlb",       // translation cache: clone starts cold (perf-only state)
		"cowCopies", // counter: clone starts at zero by design
	})
}

// TestMachineCloneCompleteness pins the exact field set Machine.Clone handles.
func TestMachineCloneCompleteness(t *testing.T) {
	wantFields(t, "emu.Machine", fieldNames(t, Machine{}), []string{
		"Mem", "PC", "regs", "halted", "seq", "output",
		"codeBase", "uops", "uopReady", "uopScratch", "decodes", "cacheOff",
		"recording", "frameBase", "frames", "undos",
	})
}

// TestMemoryCOW checks the copy-on-write protocol directly: clones share
// pages until first write, a write privatizes exactly the touched page, and
// neither side sees the other's writes.
func TestMemoryCOW(t *testing.T) {
	m := NewMemory()
	m.WriteU64(0x1000, 111)
	m.WriteU64(0x2000, 222)
	if m.Pages() != 2 {
		t.Fatalf("pages = %d, want 2", m.Pages())
	}

	c := m.Clone()
	if c.SharedPages() != 2 || m.SharedPages() != 2 {
		t.Fatalf("shared pages after clone: clone=%d parent=%d, want 2/2", c.SharedPages(), m.SharedPages())
	}

	// Reads on both sides see the snapshot and copy nothing.
	if got := c.ReadU64(0x1000); got != 111 {
		t.Fatalf("clone read = %d, want 111", got)
	}
	if c.CowCopies() != 0 {
		t.Fatalf("reads privatized %d pages, want 0", c.CowCopies())
	}

	// A clone write privatizes only the touched page and stays invisible to
	// the parent.
	c.WriteU64(0x1008, 333)
	if c.CowCopies() != 1 || c.SharedPages() != 1 {
		t.Fatalf("after clone write: cowCopies=%d shared=%d, want 1/1", c.CowCopies(), c.SharedPages())
	}
	if got := m.ReadU64(0x1008); got != 0 {
		t.Fatalf("parent sees clone's write: %d", got)
	}
	if got := c.ReadU64(0x1000); got != 111 {
		t.Fatalf("privatized page lost old data: %d", got)
	}

	// A parent write likewise copies rather than mutating the shared page.
	m.WriteU64(0x2008, 444)
	if got := c.ReadU64(0x2008); got != 0 {
		t.Fatalf("clone sees parent's post-clone write: %d", got)
	}

	// Writing a page that is no longer shared copies nothing further.
	c.WriteU64(0x1010, 555)
	if c.CowCopies() != 1 {
		t.Fatalf("write to private page copied again: cowCopies=%d", c.CowCopies())
	}
}

// TestMemoryCloneOfCloneIsFrozen checks that cloning an already-cloned
// Memory leaves the receiver untouched (the property that makes concurrent
// clone-from-snapshot race-free) and still isolates every side.
func TestMemoryCloneOfCloneIsFrozen(t *testing.T) {
	m := NewMemory()
	m.WriteU64(0x1000, 1)
	snap := m.Clone()
	if snap.SharedPages() != snap.Pages() {
		t.Fatalf("fresh clone not fully shared: %d/%d", snap.SharedPages(), snap.Pages())
	}
	a, b := snap.Clone(), snap.Clone()
	a.WriteU64(0x1000, 10)
	b.WriteU64(0x1000, 20)
	if snap.ReadU64(0x1000) != 1 || a.ReadU64(0x1000) != 10 || b.ReadU64(0x1000) != 20 {
		t.Fatalf("clone isolation broken: snap=%d a=%d b=%d",
			snap.ReadU64(0x1000), a.ReadU64(0x1000), b.ReadU64(0x1000))
	}
}

// TestMemoryCOWTLBBarrier regression-tests the subtle case: a page cached
// writable in the TLB before Clone must not remain writable after it.
func TestMemoryCOWTLBBarrier(t *testing.T) {
	m := NewMemory()
	m.WriteU64(0x3000, 7) // page now cached writable in the TLB
	c := m.Clone()
	m.WriteU64(0x3000, 8) // must COW, not write the shared page in place
	if got := c.ReadU64(0x3000); got != 7 {
		t.Fatalf("clone saw parent's in-place write through a stale TLB entry: %d", got)
	}
}

// machineState fingerprints everything architecturally visible.
func machineState(m *Machine) (regs [isa.NumArchRegs]uint64, pc, seq uint64, halted bool, out []byte) {
	for r := 0; r < isa.NumArchRegs; r++ {
		regs[r] = m.Reg(isa.Reg(r))
	}
	return regs, m.PC, m.Seq(), m.Halted(), m.Output()
}

// TestMachineCloneRunsIndependently runs a program to a midpoint, clones,
// and checks both sides finish identically and independently — including
// undo-log rollback on the clone, which writes memory through the COW
// barrier.
func TestMachineCloneRunsIndependently(t *testing.T) {
	prog := countdownProg(t)
	ref := New(prog)
	ref.Run(0) // to halt

	m := New(prog)
	m.Run(20)
	c := m.Clone()

	// The clone continues under a recording window with a rollback, the way
	// the timing model uses it on the wrong path.
	c.StartRecording()
	at := c.Seq()
	c.Run(10)
	c.Rollback(at)
	c.StopRecording()
	c.Run(0)

	cr, cpc, cseq, chalt, cout := machineState(c)
	rr, rpc, rseq, rhalt, rout := machineState(ref)
	if cr != rr || cpc != rpc || cseq != rseq || chalt != rhalt || !bytes.Equal(cout, rout) {
		t.Fatalf("clone finished differently from a straight run:\nclone pc=%#x seq=%d halted=%v out=%q\nref   pc=%#x seq=%d halted=%v out=%q",
			cpc, cseq, chalt, cout, rpc, rseq, rhalt, rout)
	}

	// The original is unaffected by the clone's run and still finishes right.
	m.Run(0)
	mr, mpc, mseq, mhalt, mout := machineState(m)
	if mr != rr || mpc != rpc || mseq != rseq || mhalt != rhalt || !bytes.Equal(mout, rout) {
		t.Fatalf("original diverged after its clone ran:\norig pc=%#x seq=%d out=%q\nref  pc=%#x seq=%d out=%q",
			mpc, mseq, mout, rpc, rseq, rout)
	}
}

// countdownProg builds a small loop that writes memory and prints, so clones
// exercise registers, memory, and output.
func countdownProg(t *testing.T) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(`
		ADDI r1, r0, 10
		ADDI r2, r0, 0x100
	loop:
		STQ  r1, 0(r2)
		LDQ  r3, 0(r2)
		ADDI r4, r3, 48
		PUTC r4
		ADDI r1, r1, -1
		BNE  r1, r0, loop
		HALT
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}
