package emu

import (
	"fmt"
	"unsafe"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// StepInfo reports everything the timing model needs to know about one
// functionally executed instruction.
type StepInfo struct {
	Seq    uint64 // 1-based dynamic instruction number
	PC     uint64
	NextPC uint64
	Inst   isa.Inst

	// Uop points at the decoded-uop cache entry for the executed static
	// instruction (or the machine's scratch slot for a PC outside the text
	// segment, valid only until the next such step). Consumers that keep it
	// must copy the Uop, not the pointer. Nil on a halted no-op step.
	Uop *isa.Uop

	Taken bool // branches and jumps: control transferred

	IsMem   bool
	MemAddr uint64
	MemSize uint8

	HasResult bool
	Result    uint64 // destination value (raw bits for FP)

	Halted bool
}

// undoKind discriminates undo-log entries.
type undoKind uint8

const (
	undoReg undoKind = iota
	undoMem
)

type undoEntry struct {
	kind undoKind
	reg  isa.Reg
	size uint8
	addr uint64
	old  uint64
}

// frame records per-instruction rollback state: the PC before the step and
// where this step's undo entries begin.
type frame struct {
	pc        uint64
	undoStart int
	outLen    int
	halted    bool
}

// Machine is the architected state of a PRISC-64 processor plus the rollback
// machinery. Register indices follow the unified isa.Reg space: 0..31
// integer (index 0 pinned to zero), 32..63 floating point (raw bits).
type Machine struct {
	Mem  *Memory
	PC   uint64
	regs [isa.NumArchRegs]uint64

	halted bool
	seq    uint64 // number of instructions executed so far
	output []byte

	// Decoded-uop cache: each static instruction in the text segment is
	// decoded exactly once, on first fetch, into an immutable isa.Uop shared
	// by every later dynamic fetch (the program is read-only text, so the
	// cache is never invalidated). PCs outside the text segment — wrong-path
	// fetch running into data — decode into the scratch slot each time.
	codeBase   uint64
	uops       []isa.Uop
	uopReady   []bool
	uopScratch isa.Uop
	decodes    uint64 // cached decode fills (test instrumentation)
	cacheOff   bool   // test hook: force the uncached decode path

	// Rollback support. Recording is enabled by StartRecording; frames[i]
	// describes instruction seq = frameBase+i+1.
	recording bool
	frameBase uint64
	frames    []frame
	undos     []undoEntry
}

// New returns a machine with prog loaded, PC at the entry point, and SP
// initialized to the standard stack top.
func New(prog *asm.Program) *Machine {
	m := &Machine{Mem: NewMemory()}
	buf := make([]byte, 4*len(prog.Code))
	for i, w := range prog.Code {
		buf[4*i] = byte(w)
		buf[4*i+1] = byte(w >> 8)
		buf[4*i+2] = byte(w >> 16)
		buf[4*i+3] = byte(w >> 24)
	}
	m.Mem.Write(prog.CodeBase, buf)
	for _, seg := range prog.Data {
		m.Mem.Write(seg.Base, seg.Bytes)
	}
	m.PC = prog.Entry
	m.regs[isa.RSP] = asm.DefaultStackTop
	m.codeBase = prog.CodeBase
	m.uops = make([]isa.Uop, len(prog.Code))
	m.uopReady = make([]bool, len(prog.Code))
	return m
}

// Clone returns an independent deep copy of the machine sharing memory
// pages copy-on-write with the receiver (see Memory.Clone). The clone
// executes, records, and rolls back on its own; nothing it does is visible
// to the receiver or to sibling clones. Cloning an already-cloned (frozen)
// machine does not mutate the receiver, so concurrent Clone calls on a
// snapshot produced by Clone are safe.
//
// Every Machine field must be handled here; TestMachineCloneCompleteness
// fails when the struct gains a field Clone does not copy.
func (m *Machine) Clone() *Machine {
	return &Machine{
		Mem:        m.Mem.Clone(),
		PC:         m.PC,
		regs:       m.regs,
		halted:     m.halted,
		seq:        m.seq,
		output:     append([]byte(nil), m.output...),
		codeBase:   m.codeBase,
		uops:       append([]isa.Uop(nil), m.uops...),
		uopReady:   append([]bool(nil), m.uopReady...),
		uopScratch: m.uopScratch,
		decodes:    m.decodes,
		cacheOff:   m.cacheOff,
		recording:  m.recording,
		frameBase:  m.frameBase,
		frames:     append([]frame(nil), m.frames...),
		undos:      append([]undoEntry(nil), m.undos...),
	}
}

// FootprintBytes approximates the resident bytes reachable from this
// machine: memory pages (shared pages counted at full size), the decoded-uop
// cache, and the rollback log.
func (m *Machine) FootprintBytes() uint64 {
	return m.Mem.FootprintBytes() +
		uint64(len(m.uops))*uint64(unsafe.Sizeof(isa.Uop{})) +
		uint64(len(m.uopReady)) +
		uint64(len(m.output)) +
		uint64(len(m.frames))*uint64(unsafe.Sizeof(frame{})) +
		uint64(len(m.undos))*uint64(unsafe.Sizeof(undoEntry{}))
}

// UopAt returns the decoded uop for the instruction at pc, filling the cache
// on first touch. The pointer stays valid for the machine's lifetime when pc
// is in the text segment; for out-of-segment PCs it names the per-machine
// scratch slot, overwritten by the next such call.
//
//prisim:hotpath
func (m *Machine) UopAt(pc uint64) *isa.Uop {
	if idx := (pc - m.codeBase) >> 2; idx < uint64(len(m.uops)) && pc&3 == 0 && !m.cacheOff {
		u := &m.uops[idx]
		if !m.uopReady[idx] {
			*u = isa.DecodeUop(m.Mem.ReadU32(pc))
			m.uopReady[idx] = true
			m.decodes++
		}
		return u
	}
	m.uopScratch = isa.DecodeUop(m.Mem.ReadU32(pc))
	return &m.uopScratch
}

// StaticDecodes returns how many distinct static instructions have been
// decoded into the uop cache — with the cache active this is bounded by the
// program's text size no matter how many dynamic instructions execute.
func (m *Machine) StaticDecodes() uint64 { return m.decodes }

// SetUopCache enables or disables the decoded-uop cache (enabled by default;
// the A/B switch exists for determinism tests, which demand byte-identical
// simulation either way).
func (m *Machine) SetUopCache(enabled bool) { m.cacheOff = !enabled }

// SetPC redirects execution. The timing model uses it to steer fetch down a
// predicted (possibly wrong) path and to re-point at the correct target
// after a rollback; it needs no undo logging because every Step frame
// records its own prior PC.
func (m *Machine) SetPC(pc uint64) { m.PC = pc }

// Reg returns the current value of an architected register.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// SetReg sets an architected register (test setup; not undo-logged).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r != isa.RZero {
		m.regs[r] = v
	}
}

// Halted reports whether the program has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Seq returns the number of instructions executed so far.
func (m *Machine) Seq() uint64 { return m.seq }

// Output returns the bytes written via PUTC.
func (m *Machine) Output() []byte { return m.output }

// Recording reports whether the undo log is active.
func (m *Machine) Recording() bool { return m.recording }

// StartRecording enables the undo log from the current point; Rollback may
// target any boundary at or after this point.
func (m *Machine) StartRecording() {
	m.recording = true
	m.frameBase = m.seq
	m.frames = m.frames[:0]
	m.undos = m.undos[:0]
}

// StopRecording disables the undo log and discards it.
func (m *Machine) StopRecording() {
	m.recording = false
	m.frames = m.frames[:0]
	m.undos = m.undos[:0]
}

// ReleaseUpTo discards rollback state for instructions with sequence number
// <= seq; after the call, Rollback can only target boundaries after seq.
// The timing model calls this as instructions commit.
func (m *Machine) ReleaseUpTo(seq uint64) {
	if !m.recording || seq <= m.frameBase {
		return
	}
	if seq > m.seq {
		seq = m.seq
	}
	drop := int(seq - m.frameBase)
	// Amortized compaction: only shift when at least half the log is dead.
	if drop < len(m.frames)/2 && drop < 4096 {
		return
	}
	undoDrop := len(m.undos)
	if drop < len(m.frames) {
		undoDrop = m.frames[drop].undoStart
	}
	m.frames = append(m.frames[:0], m.frames[drop:]...)
	m.undos = append(m.undos[:0], m.undos[undoDrop:]...)
	for i := range m.frames {
		m.frames[i].undoStart -= undoDrop
	}
	m.frameBase = seq
}

// Rollback restores the machine to the boundary just after instruction seq
// (seq = Seq() is a no-op; seq less than the last ReleaseUpTo panics, since
// that state has been discarded).
func (m *Machine) Rollback(seq uint64) {
	if !m.recording {
		panic("emu: Rollback without recording")
	}
	if seq > m.seq {
		panic(fmt.Sprintf("emu: Rollback(%d) is in the future (seq=%d)", seq, m.seq))
	}
	if seq < m.frameBase {
		panic(fmt.Sprintf("emu: Rollback(%d) older than retained history (base=%d)", seq, m.frameBase))
	}
	for m.seq > seq {
		f := m.frames[m.seq-m.frameBase-1]
		for i := len(m.undos) - 1; i >= f.undoStart; i-- {
			u := m.undos[i]
			switch u.kind {
			case undoReg:
				m.regs[u.reg] = u.old
			case undoMem:
				switch u.size {
				case 1:
					m.Mem.WriteU8(u.addr, byte(u.old))
				case 4:
					m.Mem.WriteU32(u.addr, uint32(u.old))
				default:
					m.Mem.WriteU64(u.addr, u.old)
				}
			}
		}
		m.undos = m.undos[:f.undoStart]
		m.PC = f.pc
		m.halted = f.halted
		m.output = m.output[:f.outLen]
		m.seq--
	}
	m.frames = m.frames[:m.seq-m.frameBase]
}

func (m *Machine) writeReg(r isa.Reg, v uint64) {
	if r == isa.RZero {
		return
	}
	if m.recording {
		m.undos = append(m.undos, undoEntry{kind: undoReg, reg: r, old: m.regs[r]})
	}
	m.regs[r] = v
}

func (m *Machine) writeMem(addr uint64, size uint8, v uint64) {
	if m.recording {
		var old uint64
		switch size {
		case 1:
			old = uint64(m.Mem.ReadU8(addr))
		case 4:
			old = uint64(m.Mem.ReadU32(addr))
		default:
			old = m.Mem.ReadU64(addr)
		}
		m.undos = append(m.undos, undoEntry{kind: undoMem, size: size, addr: addr, old: old})
	}
	switch size {
	case 1:
		m.Mem.WriteU8(addr, byte(v))
	case 4:
		m.Mem.WriteU32(addr, uint32(v))
	default:
		m.Mem.WriteU64(addr, v)
	}
}

// PeekInst returns the decoded instruction at the current PC without
// executing it, through the uop cache.
func (m *Machine) PeekInst() isa.Inst {
	return m.UopAt(m.PC).Inst
}

// PeekUop returns the decoded uop at the current PC without executing it.
func (m *Machine) PeekUop() *isa.Uop { return m.UopAt(m.PC) }

// Run executes until HALT or until limit instructions have run (0 = no
// limit). It returns the number of instructions executed.
func (m *Machine) Run(limit uint64) uint64 {
	n := uint64(0)
	for !m.halted && (limit == 0 || n < limit) {
		m.Step()
		n++
	}
	return n
}
