package emu

import (
	"testing"

	"prisim/internal/isa"
)

func TestConditionalMoves(t *testing.T) {
	m := run(t, `
.text
main:
  li r1, 0          ; condition false-y
  li r2, 1          ; condition truth-y
  li r3, 77         ; source value
  li r4, 10         ; destinations
  li r5, 20
  li r6, 30
  li r7, 40
  cmoveq r4, r1, r3 ; r1 == 0: moves -> 77
  cmoveq r5, r2, r3 ; r2 != 0: keeps 20
  cmovne r6, r1, r3 ; r1 == 0: keeps 30
  cmovne r7, r2, r3 ; r2 != 0: moves -> 77
  halt
`)
	want := map[int]uint64{4: 77, 5: 20, 6: 30, 7: 77}
	for r, v := range want {
		if got := m.Reg(isa.IntReg(r)); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestCMOVReadsOldDestination(t *testing.T) {
	// The old rd value is a real source: the decoded instruction must
	// report three source registers.
	in := isa.Inst{Op: isa.OpCMOVEQ, Rd: isa.IntReg(4), Ra: isa.IntReg(1), Rb: isa.IntReg(3)}
	srcs := in.Sources(nil)
	if len(srcs) != 3 {
		t.Fatalf("cmov sources = %v, want 3", srcs)
	}
	found := false
	for _, s := range srcs {
		if s == isa.IntReg(4) {
			found = true
		}
	}
	if !found {
		t.Error("cmov does not read its destination")
	}
}

func TestCMOVRoundTrip(t *testing.T) {
	for _, op := range []isa.Op{isa.OpCMOVEQ, isa.OpCMOVNE} {
		in := isa.Inst{Op: op, Rd: isa.IntReg(3), Ra: isa.IntReg(1), Rb: isa.IntReg(2)}
		w, err := in.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if back := isa.Decode(w); back != in {
			t.Errorf("%s round trip: %v -> %v", op, in, back)
		}
	}
}
