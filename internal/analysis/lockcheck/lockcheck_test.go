package lockcheck_test

import (
	"testing"

	"prisim/internal/analysis/analysistest"
	"prisim/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")
}
