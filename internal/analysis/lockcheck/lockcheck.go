// Package lockcheck verifies the repo's "guarded by mu" comments.
//
// A struct field whose doc or line comment contains "guarded by <name>"
// declares that every access goes through the named sibling mutex. The
// service layer (job tables, metrics counters, SSE subscriber maps) and the
// harness's singleflight cache live or die by these comments, and a comment
// is exactly the kind of invariant that rots: one new handler reading
// s.jobs without s.mu and the race detector only catches it if a test
// happens to collide.
//
// The analysis walks each function with a branch-sensitive held-lock set:
// x.mu.Lock()/RLock() adds "x.mu", Unlock()/RUnlock() removes it, branches
// merge by intersection, and loop bodies start from the loop entry state.
// An access to a guarded field is reported unless the matching mutex (same
// base path: the field s.jobs needs s.mu held) is in the set.
//
// Helper methods that document "caller holds the lock" are exempted two
// ways: a name ending in "Locked" (the repo's convention — viewLocked,
// publishLocked), or an explicit //prisim:locked directive in the doc
// comment. Function literals run on unknown goroutines/defer schedules, so
// their bodies start with no locks held — which is the truth for the `go`
// and `defer` cases that matter.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"prisim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "require the named mutex to be held when accessing 'guarded by mu' fields",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:    pass,
		guarded: make(map[types.Object]string),
	}
	c.collect()
	if len(c.guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") ||
				analysis.HasDirective(fd.Doc, "//prisim:locked") {
				continue // caller-holds-lock helper
			}
			c.walkStmts(fd.Body.List, held{})
		}
	}
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	guarded map[types.Object]string // field object -> guarding mutex field name
}

func (c *checker) collect() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardComment(field.Doc)
				if mu == "" {
					mu = guardComment(field.Comment)
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
						c.guarded[obj] = mu
					}
				}
			}
			return true
		})
	}
}

func guardComment(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
		return m[1]
	}
	return ""
}

// held is the set of mutex paths ("s.mu", "r.view.mu") currently locked.
type held map[string]bool

func (h held) clone() held {
	n := make(held, len(h))
	for k := range h {
		n[k] = true
	}
	return n
}

func (h held) intersect(o held) {
	for k := range h {
		if !o[k] {
			delete(h, k)
		}
	}
}

// walkStmts threads the held set through a statement list, mutating h in
// place, and reports whether the list always terminates enclosing flow.
func (c *checker) walkStmts(stmts []ast.Stmt, h held) bool {
	for _, s := range stmts {
		if c.walkStmt(s, h) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, h held) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(s.List, h)
	case *ast.ExprStmt:
		c.checkExpr(s.X, h)
		c.lockEffect(s.X, h)
		return isPanic(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			c.checkExpr(r, h)
			c.lockEffect(r, h)
		}
		for _, l := range s.Lhs {
			c.checkExpr(l, h)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, h)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, h)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, h)
		c.checkExpr(s.Value, h)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, h)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt:
		// defer x.mu.Unlock() runs at return: it neither releases now nor
		// changes any path we walk. Deferred closures run with an unknown
		// lock state; assume none held (checkExpr walks the body that way).
		for _, a := range s.Call.Args {
			c.checkExpr(a, h)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(fl.Body.List, held{})
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.checkExpr(a, h)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.walkStmts(fl.Body.List, held{})
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, h)
		}
		c.checkExpr(s.Cond, h)
		c.lockEffect(s.Cond, h)
		bh := h.clone()
		bodyTerm := c.walkStmts(s.Body.List, bh)
		eh := h.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(s.Else, eh)
		}
		switch {
		case bodyTerm && elseTerm:
			return true
		case bodyTerm:
			replace(h, eh)
		case elseTerm:
			replace(h, bh)
		default:
			bh.intersect(eh)
			replace(h, bh)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, h)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, h)
		}
		bh := h.clone()
		c.walkStmts(s.Body.List, bh)
		if s.Post != nil {
			c.walkStmt(s.Post, bh)
		}
		bh.intersect(h) // body may run zero times
		replace(h, bh)
	case *ast.RangeStmt:
		c.checkExpr(s.X, h)
		bh := h.clone()
		c.walkStmts(s.Body.List, bh)
		bh.intersect(h)
		replace(h, bh)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.multiway(s, h)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, h)
	}
	return false
}

// multiway handles switch/type-switch/select: each clause starts from the
// entry state; the post-state is the intersection of the non-terminating
// clauses (plus entry, when no default clause guarantees a clause runs).
func (c *checker) multiway(s ast.Stmt, h held) bool {
	var clauses []ast.Stmt
	hasDefault := false
	isSelect := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, h)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, h)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, h)
		}
		c.walkStmt(s.Assign, h)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
		isSelect = true
	}
	var outs []held
	allTerm := len(clauses) > 0
	for _, cl := range clauses {
		ch := h.clone()
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, x := range cl.List {
				c.checkExpr(x, ch)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.walkStmt(cl.Comm, ch)
			}
			body = cl.Body
		}
		if !c.walkStmts(body, ch) {
			allTerm = false
			outs = append(outs, ch)
		}
	}
	if len(outs) > 0 {
		m := outs[0]
		for _, o := range outs[1:] {
			m.intersect(o)
		}
		if !hasDefault && !isSelect {
			m.intersect(h) // a switch without default may run no clause
		}
		replace(h, m)
	}
	// A select without default blocks until a clause runs, so it terminates
	// when every clause does; a switch additionally needs a default.
	return allTerm && (hasDefault || isSelect)
}

func replace(dst, src held) {
	for k := range dst {
		delete(dst, k)
	}
	for k := range src {
		dst[k] = true
	}
}

// lockEffect applies x.mu.Lock()/Unlock() calls found in expr, in source
// order, to the held set.
func (c *checker) lockEffect(x ast.Expr, h held) {
	ast.Inspect(x, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path := analysis.ExprString(sel.X)
		switch sel.Sel.Name {
		case "Lock", "RLock":
			h[path] = true
		case "Unlock", "RUnlock":
			delete(h, path)
		}
		return true
	})
}

// checkExpr reports guarded-field accesses inside expr made without the
// guarding mutex held. Function-literal bodies are walked with no locks
// held (they run on unknown schedules).
func (c *checker) checkExpr(x ast.Expr, h held) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(n.Body.List, held{})
			return false
		case *ast.SelectorExpr:
			sel, ok := c.pass.TypesInfo.Selections[n]
			if !ok {
				return true
			}
			mu, ok := c.guarded[sel.Obj()]
			if !ok {
				return true
			}
			mutexPath := analysis.ExprString(n.X) + "." + mu
			if !h[mutexPath] {
				c.pass.Reportf(n.Pos(),
					"access to %s.%s without holding %s (field is guarded by %s)",
					analysis.ExprString(n.X), n.Sel.Name, mutexPath, mu)
			}
		}
		return true
	})
}

func isPanic(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "panic")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "panic")
	}
	return false
}
