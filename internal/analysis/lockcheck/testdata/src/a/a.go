// Package a is a lockcheck fixture: accesses to "guarded by mu" fields
// with and without the mutex held, across straight-line code, branches,
// defers, closures, and caller-holds-lock helpers.
package a

import "sync"

type server struct {
	mu      sync.Mutex
	jobs    map[string]int // guarded by mu
	running int            // guarded by mu
	done    chan struct{}  // not guarded
}

func (s *server) good(id string) int {
	s.mu.Lock()
	n := s.jobs[id]
	s.running++
	s.mu.Unlock()
	return n
}

func (s *server) deferred(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *server) bad(id string) int {
	return s.jobs[id] // want `access to s\.jobs without holding s\.mu`
}

func (s *server) afterUnlock() {
	s.mu.Lock()
	s.running++
	s.mu.Unlock()
	s.running-- // want `access to s\.running without holding s\.mu`
}

// branches: an early-unlock-return leaves the fallthrough path locked.
func (s *server) earlyReturn(id string) int {
	s.mu.Lock()
	if n, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return n
	}
	s.jobs[id] = 1
	s.mu.Unlock()
	return 1
}

// oneArmUnlocks merges branches by intersection: after the if, the lock
// state is uncertain, so the access is flagged.
func (s *server) oneArmUnlocks(flip bool) {
	s.mu.Lock()
	if flip {
		s.mu.Unlock()
	}
	s.running++ // want `access to s\.running without holding s\.mu`
	s.mu.Unlock()
}

// viewLocked's name suffix documents that the caller holds s.mu.
func (s *server) viewLocked() int { return s.running }

// snapshot documents the same contract with the directive form.
//
//prisim:locked mu
func (s *server) snapshot() int { return s.running }

// closures run on unknown schedules: the body starts with no locks held,
// so it must lock for itself even when created under the lock.
func (s *server) spawn() {
	s.mu.Lock()
	go func() {
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}()
	go func() {
		s.running-- // want `access to s\.running without holding s\.mu`
	}()
	s.mu.Unlock()
	<-s.done // unguarded field: never flagged
}
