package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// fakeAnalyzer reports one diagnostic per line listed in hits.
func fakeAnalyzer(name string, hits ...int) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "test analyzer",
		Run: func(p *Pass) (any, error) {
			f := p.Fset.File(p.Files[0].Pos())
			for _, line := range hits {
				p.Reportf(f.LineStart(line), "finding on line %d", line)
			}
			return nil, nil
		},
	}
}

func parseUnit(t *testing.T, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := types.NewPackage("fix", "fix")
	return &Unit{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: &types.Info{}}
}

func TestSuppression(t *testing.T) {
	const src = `package fix

var a = 1 //lint:ignore alpha trailing form suppresses its own line

//lint:ignore alpha comment-above form suppresses the next line
var b = 2

//lint:ignore alpha,beta a list suppresses several analyzers
var c = 3

//lint:ignore alpha
var d = 4 // no reason given: the directive is void

var e = 5 // unsuppressed
`
	// Line numbers: a=3, b=6, c=9, d=12(directive 11), e=14.
	alpha := fakeAnalyzer("alpha", 3, 6, 9, 12, 14)
	beta := fakeAnalyzer("beta", 9, 14)

	diags, err := Run([]*Unit{parseUnit(t, src)}, []*Analyzer{alpha, beta}, false)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer+":"+itoa(d.Pos.Line))
	}
	want := []string{"alpha:12", "alpha:14", "beta:14"}
	if len(got) != len(want) {
		t.Fatalf("surviving diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %s, want %s", i, got[i], want[i])
		}
	}

	// keepSuppressed retains everything for analysistest.
	all, err := Run([]*Unit{parseUnit(t, src)}, []*Analyzer{alpha, beta}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("keepSuppressed kept %d diagnostics, want 7", len(all))
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
	}{
		{"//lint:ignore alpha because reasons", []string{"alpha"}},
		{"//lint:ignore alpha,beta shared justification", []string{"alpha", "beta"}},
		{"//lint:ignore alpha", nil},  // reason mandatory
		{"// lint:ignore alpha x", nil}, // not a directive (space)
		{"//lint:ignored alpha x", nil},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if (c.names == nil) == ok {
			t.Errorf("parseIgnore(%q) ok = %v", c.text, ok)
			continue
		}
		if len(names) != len(c.names) {
			t.Errorf("parseIgnore(%q) = %v, want %v", c.text, names, c.names)
		}
	}
}

func TestDirectiveArgs(t *testing.T) {
	const src = `package fix

//prisim:locked mu
//prisim:hotpath
func f() {}
`
	u := parseUnit(t, src)
	fd := u.Files[0].Decls[0].(*ast.FuncDecl)
	if args, ok := DirectiveArgs(fd.Doc, "//prisim:locked"); !ok || args != "mu" {
		t.Errorf("locked args = %q, %v", args, ok)
	}
	if !HasDirective(fd.Doc, "//prisim:hotpath") {
		t.Error("hotpath directive not found")
	}
	if HasDirective(fd.Doc, "//prisim:hot") {
		t.Error("prefix must not match a longer directive name")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
