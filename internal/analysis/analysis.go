// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, carrying exactly the surface prilint's
// analyzers need: an Analyzer with a Run(*Pass) hook, a Pass holding one
// type-checked package, and positional diagnostics. The build image bakes in
// only the Go toolchain — no module proxy, no x/tools — so the framework is
// written against the standard library alone (go/ast, go/types, go/importer).
// The API deliberately mirrors the upstream names and shapes; if the x/tools
// dependency ever becomes available, each analyzer ports to the real
// multichecker by swapping this import.
//
// Conventions enforced across the tree (see DESIGN.md §11):
//
//   - //prisim:hotpath on a function: hotpathalloc forbids allocating
//     constructs inside it.
//   - //prisim:genlink on a struct field: genguard requires a dominating
//     generation check before any dereference through it.
//   - //prisim:genguard on a method: its truth implies the receiver's
//     genlink fields are live (e.g. srcOperand.producerLive).
//   - //prisim:deterministic in a package doc comment: determinism bans
//     wall-clock, global rand, and map iteration in that package.
//   - //prisim:locked <field> on a function (or a name ending in "Locked"):
//     lockcheck assumes the caller holds the named mutex.
//   - //lint:ignore <analyzers> <reason> on (or directly above) a line:
//     suppresses those analyzers' diagnostics there, reason mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one static check. Name doubles as the suppression key in
// //lint:ignore comments.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (any, error)
}

// A Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Unit is the slice of one loaded package an analysis pass runs over.
// internal/analysis/load produces these for real packages; analysistest
// builds them from testdata directories.
type Unit struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Run applies every analyzer to every unit and returns the surviving
// diagnostics sorted by position. Suppressed findings (//lint:ignore) are
// dropped unless keepSuppressed is set (analysistest keeps them so fixtures
// can assert on raw analyzer output).
func Run(units []*Unit, analyzers []*Analyzer, keepSuppressed bool) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, u := range units {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
				diags:     &diags,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Pkg.Path(), err)
			}
		}
		if !keepSuppressed {
			diags = filterSuppressed(u, diags)
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreKey locates one //lint:ignore comment: the named analyzer is
// suppressed on the comment's own line (trailing form) and on the line
// directly below it (comment-above form).
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

func filterSuppressed(u *Unit, diags []Diagnostic) []Diagnostic {
	ignores := make(map[ignoreKey]bool)
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				for _, n := range names {
					ignores[ignoreKey{pos.Filename, pos.Line, n}] = true
					ignores[ignoreKey{pos.Filename, pos.Line + 1, n}] = true
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept
}

// parseIgnore recognizes "//lint:ignore name1,name2 reason". A missing
// reason invalidates the directive: unexplained suppressions don't count.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//lint:ignore ")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // analyzer list + at least one word of reason
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// HasDirective reports whether the comment group contains the given
// directive comment (e.g. "//prisim:hotpath"), alone or followed by
// arguments.
func HasDirective(cg *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArgs(cg, directive)
	return ok
}

// DirectiveArgs returns the arguments of a directive comment in cg, and
// whether the directive is present at all ("//prisim:locked mu" yields
// "mu", true).
func DirectiveArgs(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, directive)
		if !ok {
			continue
		}
		if rest == "" {
			return "", true
		}
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsPkgFunc reports whether the called function is the named package-level
// function (e.g. pkgPath "time", name "Now"), resolved through the type
// checker so local shadowing and import renaming can't fool it.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := PkgFuncOf(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// PkgFuncOf resolves a call to the package-level *types.Func it invokes, or
// nil for builtins, method calls, and indirect calls.
func PkgFuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// ExprString renders an expression as compact source text, used by the
// analyzers to key guard/lock state by syntactic path (e.g. "s.producer",
// "p.prReaders[cl][pr]"). It intentionally covers only the shapes that
// appear in such paths; anything else renders as a unique placeholder so it
// never aliases a real path.
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ExprString(e.X) + "[" + ExprString(e.Index) + "]"
	case *ast.ParenExpr:
		return ExprString(e.X)
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + ExprString(e.X)
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return ExprString(e.X) + e.Op.String() + ExprString(e.Y)
	case *ast.CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = ExprString(a)
		}
		return ExprString(e.Fun) + "(" + strings.Join(args, ",") + ")"
	default:
		return fmt.Sprintf("<expr@%d>", e.Pos())
	}
}
