// Package load turns Go package patterns into type-checked analysis units
// without golang.org/x/tools/go/packages: it shells out to `go list` for
// module-aware package metadata and export-data paths, parses the target
// packages' sources, and type-checks them with the standard library's gc
// importer reading dependency export data straight from the build cache.
// This is the same pipeline go/packages uses, minus its driver protocol.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"prisim/internal/analysis"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportMap builds importPath -> export-data file for the patterns'
// transitive dependency closure. `go list -export` compiles anything stale,
// so the map is complete whenever the tree builds.
func exportMap(dir string, patterns []string) (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m, nil
}

// exportImporter resolves imports through build-cache export data. It
// wraps the stdlib gc importer's lookup mode and short-circuits "unsafe",
// which has no export file.
type exportImporter struct {
	gc      types.Importer
	exports map[string]string
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{exports: exports}
	ei.gc = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.Import(path)
}

// A Package is one type-checked target package.
type Package struct {
	ImportPath string
	Unit       *analysis.Unit
}

// Packages loads, parses, and type-checks every package matching patterns,
// rooted at dir (test files are not included; prilint checks shipped code).
func Packages(dir string, patterns ...string) ([]*Package, error) {
	targetArgs := append([]string{"list", "-e",
		"-json=ImportPath,Dir,Name,GoFiles,Error"}, patterns...)
	targets, err := goList(dir, targetArgs...)
	if err != nil {
		return nil, err
	}
	exports, err := exportMap(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("%s: %s", t.ImportPath, t.Error.Err)
		}
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(fset, t.ImportPath, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: t.ImportPath,
			Unit:       &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info},
		})
	}
	return out, nil
}

// Check type-checks one package's parsed files, populating the Info maps
// the analyzers rely on. It is shared with analysistest's fixture loader.
func Check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// StdImporter returns an importer for an ad-hoc file set (analysistest
// fixtures): it resolves the given import paths and their transitive
// dependencies through build-cache export data. dir anchors the `go list`
// invocation inside the module.
func StdImporter(fset *token.FileSet, dir string, imports []string) (types.Importer, error) {
	if len(imports) == 0 {
		return newExportImporter(fset, nil), nil
	}
	exports, err := exportMap(dir, imports)
	if err != nil {
		return nil, err
	}
	return newExportImporter(fset, exports), nil
}
