// Package analysistest runs one analyzer over small fixture packages and
// checks its diagnostics against // want comments, mirroring the upstream
// golang.org/x/tools/go/analysis/analysistest contract:
//
//	x := time.Now() // want `time\.Now`
//
// Each diagnostic must match exactly one unconsumed want regexp on its
// line, and every want must be consumed. Fixtures live in
// testdata/src/<pkg>/*.go — the testdata directory is invisible to the go
// tool, so deliberately-violating code never trips the real lint run.
// Suppression comments are NOT honored here (analyzers are tested raw);
// //lint:ignore handling has its own unit test in the analysis package.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"prisim/internal/analysis"
	"prisim/internal/analysis/load"
)

// Run applies a to each fixture package under testdata/src and reports any
// mismatch between diagnostics and want comments as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		runPkg(t, filepath.Join(testdata, "src", pkg), a)
	}
}

func runPkg(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				imports[p] = true
			}
		}
	}

	// Resolve fixture imports through the build cache; the test's working
	// directory (the analyzer's package dir) anchors go list in the module.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var imps []string
	for p := range imports {
		imps = append(imps, p)
	}
	imp, err := load.StdImporter(fset, cwd, imps)
	if err != nil {
		t.Fatalf("resolving fixture imports: %v", err)
	}
	pkg, info, err := load.Check(fset, files[0].Name.Name, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}

	unit := &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	diags, err := analysis.Run([]*analysis.Unit{unit}, []*analysis.Analyzer{a}, true)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, fset, files)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		if !consume(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: %s:%d: no diagnostic matching %q",
					a.Name, key.file, key.line, w.re.String())
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// quoted matches one Go string or backquote literal inside a want comment.
var quoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses the "// want" comments of every fixture file. A want
// applies to the source line the comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quoted.FindAllString(text, -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					key := posKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], &want{re: re})
				}
			}
		}
	}
	return wants
}

func consume(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.used && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}
