// Package b is a determinism fixture: it does NOT opt in, so nothing is
// flagged even though it uses the clock, global rand, and map iteration.
package b

import (
	"math/rand"
	"time"
)

func anything(m map[int]int) int {
	total := int(time.Now().UnixNano()) + rand.Intn(8)
	for k := range m {
		total += k
	}
	return total
}
