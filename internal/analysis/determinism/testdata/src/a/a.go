// Package a is a determinism fixture: it opts in, so wall-clock reads,
// global rand, and map iteration are all flagged.
//
//prisim:deterministic
package a

import (
	"math/rand"
	"time"
)

type sim struct {
	state   uint64
	latency map[uint64]int
	rng     *rand.Rand
}

func (s *sim) bad() {
	_ = time.Now()                  // want `time\.Now in a deterministic kernel package`
	_ = time.Since(time.Time{})     // want `time\.Since in a deterministic kernel package`
	s.state += uint64(rand.Intn(8)) // want `global rand\.Intn in a deterministic kernel package`
	for k := range s.latency {      // want `map iteration in a deterministic kernel package`
		s.state += k
	}
}

func (s *sim) good(keys []uint64) {
	// A caller-owned seeded source is deterministic.
	s.rng = rand.New(rand.NewSource(42))
	s.state += uint64(s.rng.Intn(8))
	// Duration arithmetic reads no clock.
	_ = 5 * time.Millisecond
	// Iterating a sorted slice of keys is the sanctioned pattern.
	for _, k := range keys {
		s.state += uint64(s.latency[k])
	}
}
