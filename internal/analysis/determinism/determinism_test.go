package determinism_test

import (
	"testing"

	"prisim/internal/analysis/analysistest"
	"prisim/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a", "b")
}
