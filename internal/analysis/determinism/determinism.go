// Package determinism protects the kernel's byte-identical guarantee.
//
// Packages that opt in with a //prisim:deterministic line in their package
// doc comment (internal/ooo, internal/emu, internal/bpred, internal/memsys)
// promise that simulation output is a pure function of program + config:
// the golden-hash tests pin their tables bit-for-bit. Three constructs break
// that silently, so they are banned here:
//
//   - wall-clock reads (time.Now, Since, and friends);
//   - the global math/rand functions, whose shared source makes results
//     depend on whatever else the process randomized (seeded *rand.Rand
//     values created via rand.New remain fine);
//   - ranging over a map, whose iteration order is randomized per run —
//     anything it feeds into simulation state diverges between processes.
package determinism

import (
	"go/ast"
	"go/types"

	"prisim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global rand, and map iteration in //prisim:deterministic packages",
	Run:  run,
}

// clockFuncs are the time functions that read the wall clock or schedule
// against it. Pure constructors/constants (time.Duration arithmetic,
// time.Unix on stored data) stay allowed.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand package-level functions that build a
// caller-owned, seedable source rather than touching the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !optedIn(pass.Files) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := analysis.PkgFuncOf(pass.TypesInfo, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if clockFuncs[fn.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s in a deterministic kernel package: simulated time must come from the cycle counter", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						pass.Reportf(n.Pos(),
							"global rand.%s in a deterministic kernel package: use a seeded *rand.Rand owned by the caller", fn.Name())
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"map iteration in a deterministic kernel package: order is randomized per run; iterate a sorted slice")
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// optedIn reports whether any file's package doc carries the
// //prisim:deterministic directive.
func optedIn(files []*ast.File) bool {
	for _, f := range files {
		if analysis.HasDirective(f.Doc, "//prisim:deterministic") {
			return true
		}
	}
	return false
}
