package ctxcheck_test

import (
	"testing"

	"prisim/internal/analysis/analysistest"
	"prisim/internal/analysis/ctxcheck"
)

func TestCtxcheck(t *testing.T) {
	analysistest.Run(t, "testdata", ctxcheck.Analyzer, "a", "b")
}
