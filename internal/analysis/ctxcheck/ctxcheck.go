// Package ctxcheck forbids minting root contexts in library code.
//
// context.Background() and context.TODO() inside a library package detach
// the work they govern from every caller's cancellation and deadline: a
// simulation kicked off under a request context would survive the request.
// Library code must thread contexts from parameters; only package main may
// create roots (and the rare library-owned lifecycle root must carry a
// //lint:ignore ctxcheck justification).
package ctxcheck

import (
	"go/ast"

	"prisim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "forbid context.Background/TODO in library packages; contexts must flow from parameters",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil // commands own their lifecycle roots
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, name := range [...]string{"Background", "TODO"} {
				if analysis.IsPkgFunc(pass.TypesInfo, call, "context", name) {
					pass.Reportf(call.Pos(),
						"context.%s() in library code: accept a context parameter instead", name)
				}
			}
			return true
		})
	}
	return nil, nil
}
