// Command b is a ctxcheck fixture: package main owns its lifecycle roots,
// so minting them is allowed.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx.Err()
	_ = context.TODO()
}
