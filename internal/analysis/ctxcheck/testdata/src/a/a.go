// Package a is a ctxcheck fixture: a library package must not mint root
// contexts.
package a

import "context"

func doWork(ctx context.Context) error { return ctx.Err() }

func bad() {
	_ = doWork(context.Background()) // want `context\.Background\(\) in library code`
	_ = doWork(context.TODO())       // want `context\.TODO\(\) in library code`
}

func good(ctx context.Context) {
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	_ = doWork(child)
}

// shadowed proves resolution goes through the type checker: this local
// "context" is not the stdlib package.
func shadowed() {
	context := fake{}
	_ = context.Background()
}

type fake struct{}

func (fake) Background() int { return 0 }
