package genguard_test

import (
	"testing"

	"prisim/internal/analysis/analysistest"
	"prisim/internal/analysis/genguard"
)

func TestGenguard(t *testing.T) {
	analysistest.Run(t, "testdata", genguard.Analyzer, "a")
}
