// Package a is a genguard fixture mirroring the kernel's recycled-object
// protocol: instructions live on a free list, generation-stamped links
// (events, waiters, producer pointers) may outlive them, and dereferencing
// a link without a generation check reads a recycled object's state.
package a

type inst struct {
	seq  uint64
	gen  uint32
	done bool
	val  uint64
}

func (d *inst) wake() {}

// event mimics the pipeline event wheel's payload.
type event struct {
	gen uint32
	seq uint64
	//prisim:genlink
	inst *inst
}

// operand mimics srcOperand's producer link.
type operand struct {
	//prisim:genlink
	producer *inst
	pgen     uint32
	ready    bool
}

// producerLive is the guard-method form of the generation check.
//
//prisim:genguard
func (o *operand) producerLive() bool {
	return o.producer != nil && o.producer.gen == o.pgen
}

// process is the sanctioned pattern: compare generations, skip stale.
func process(evs []event) {
	for i := range evs {
		ev := &evs[i]
		d := ev.inst
		if d.gen != ev.gen || d.done {
			continue
		}
		d.val++
		d.wake()
	}
}

// stale reproduces the PR 3 bug shape: dereferencing an event's inst
// without checking the generation reads whatever instruction now occupies
// the recycled slot.
func stale(ev event) uint64 {
	ev.inst.done = true // want `dereference of ev\.inst\.done through recycled link ev\.inst`
	return ev.inst.val  // want `dereference of ev\.inst\.val through recycled link ev\.inst`
}

// staleAlias: the alias is tracked, so hiding the link behind a local
// variable does not evade the check.
func staleAlias(ev event) uint64 {
	d := ev.inst
	return d.val // want `dereference of ev\.inst\.val through recycled link ev\.inst`
}

// guardMethod: a //prisim:genguard call dominates the dereference.
func guardMethod(o *operand, now uint64) {
	if o.producerLive() && !o.producer.done {
		o.producer.val = now
	}
}

// negGuard: the mismatch arm terminates, so the fall-through is guarded.
func negGuard(ev event) {
	if ev.inst.gen != ev.gen {
		return
	}
	ev.inst.done = true
}

// orChain mirrors the scheduler's select loop: the first mismatch test
// short-circuits the || chain, guarding the later operands and the body.
func orChain(evs []event) {
	for i := range evs {
		ev := &evs[i]
		d := ev.inst
		if d.gen != ev.gen || d.done || d.val == 0 {
			continue
		}
		d.wake()
	}
}

// reassigned: writing a new value into the alias kills its guard.
func reassigned(a, b event) {
	d := a.inst
	if d.gen != a.gen {
		return
	}
	d.done = true
	d = b.inst
	d.done = true // want `dereference of b\.inst\.done through recycled link b\.inst`
}

// passing a link along without dereferencing transfers responsibility to
// the callee and is always allowed; so is reading the gen tag itself.
func handoff(ev event) uint32 {
	sink(ev.inst)
	return ev.inst.gen
}

func sink(d *inst) { _ = d }

// ---- struct-of-arrays slot form ----
//
// The slab keeps hot instruction state in parallel arrays indexed by pool
// slot; links are (slot, gen) pairs and the generation lives in the slab's
// gen array. Indexing any slab array by a linked slot is a dereference;
// indexing the gen array is the tag check.

type slab struct {
	gen   []uint32
	flags []uint32
	val   []uint64
}

type pipe struct {
	slab slab
}

// wakeEvent mirrors the event wheel payload in slot form.
type wakeEvent struct {
	gen uint32
	//prisim:genlink
	slot int32
}

// slotOperand mirrors srcOperand: the producer link is a slot index.
type slotOperand struct {
	//prisim:genlink
	producer int32
	pgen     uint32
}

// slotLive is the guard-method form for slot links: the guarded link is an
// argument rather than a receiver field.
//
//prisim:genguard
func (p *pipe) slotLive(o *slotOperand) bool {
	return o.producer >= 0 && p.slab.gen[o.producer] == o.pgen
}

// slabGuarded is the sanctioned pattern: compare the slab's gen entry at
// the linked slot against the frozen tag, skip stale, then touch the other
// arrays freely.
func (p *pipe) slabGuarded(evs []wakeEvent) {
	for i := range evs {
		ev := &evs[i]
		s := ev.slot
		if p.slab.gen[s] != ev.gen || p.slab.flags[s] != 0 {
			continue
		}
		p.slab.val[s]++
	}
}

// slabStale is the slot-reuse regression: the slot may have been recycled
// (generation bumped, slot handed to a younger instruction) since the event
// was posted, so indexing the slab without the gen compare reads whichever
// instruction now owns the slot.
func (p *pipe) slabStale(ev wakeEvent) uint64 {
	p.slab.flags[ev.slot] = 1 // want `slab access p\.slab\.flags\[ev\.slot\] indexed by recycled slot link ev\.slot`
	return p.slab.val[ev.slot] // want `slab access p\.slab\.val\[ev\.slot\] indexed by recycled slot link ev\.slot`
}

// slabStaleAlias: copying the slot into a local does not evade the check.
func (p *pipe) slabStaleAlias(ev wakeEvent) uint64 {
	s := ev.slot
	return p.slab.val[s] // want `slab access p\.slab\.val\[s\] indexed by recycled slot link ev\.slot`
}

// slabNegGuard: the mismatch arm terminates, guarding the fall-through.
func (p *pipe) slabNegGuard(ev wakeEvent) {
	if p.slab.gen[ev.slot] != ev.gen {
		return
	}
	p.slab.val[ev.slot] = 1
}

// slotGuardMethod: a //prisim:genguard call guards the genlink fields of
// its arguments, not just its receiver.
func (p *pipe) slotGuardMethod(o *slotOperand) {
	if p.slotLive(o) {
		p.slab.val[o.producer]++
	}
}

// slotGuardMethodStale: without the guard call the argument's slot link is
// still a recycled reference.
func (p *pipe) slotGuardMethodStale(o *slotOperand) {
	p.slab.val[o.producer]++ // want `slab access p\.slab\.val\[o\.producer\] indexed by recycled slot link o\.producer`
}

// slabTagOnly: reading or comparing the gen array alone is always allowed.
func (p *pipe) slabTagOnly(ev wakeEvent) uint32 {
	return p.slab.gen[ev.slot]
}
