// Package a is a genguard fixture mirroring the kernel's recycled-object
// protocol: instructions live on a free list, generation-stamped links
// (events, waiters, producer pointers) may outlive them, and dereferencing
// a link without a generation check reads a recycled object's state.
package a

type inst struct {
	seq  uint64
	gen  uint32
	done bool
	val  uint64
}

func (d *inst) wake() {}

// event mimics the pipeline event wheel's payload.
type event struct {
	gen uint32
	seq uint64
	//prisim:genlink
	inst *inst
}

// operand mimics srcOperand's producer link.
type operand struct {
	//prisim:genlink
	producer *inst
	pgen     uint32
	ready    bool
}

// producerLive is the guard-method form of the generation check.
//
//prisim:genguard
func (o *operand) producerLive() bool {
	return o.producer != nil && o.producer.gen == o.pgen
}

// process is the sanctioned pattern: compare generations, skip stale.
func process(evs []event) {
	for i := range evs {
		ev := &evs[i]
		d := ev.inst
		if d.gen != ev.gen || d.done {
			continue
		}
		d.val++
		d.wake()
	}
}

// stale reproduces the PR 3 bug shape: dereferencing an event's inst
// without checking the generation reads whatever instruction now occupies
// the recycled slot.
func stale(ev event) uint64 {
	ev.inst.done = true // want `dereference of ev\.inst\.done through recycled link ev\.inst`
	return ev.inst.val  // want `dereference of ev\.inst\.val through recycled link ev\.inst`
}

// staleAlias: the alias is tracked, so hiding the link behind a local
// variable does not evade the check.
func staleAlias(ev event) uint64 {
	d := ev.inst
	return d.val // want `dereference of ev\.inst\.val through recycled link ev\.inst`
}

// guardMethod: a //prisim:genguard call dominates the dereference.
func guardMethod(o *operand, now uint64) {
	if o.producerLive() && !o.producer.done {
		o.producer.val = now
	}
}

// negGuard: the mismatch arm terminates, so the fall-through is guarded.
func negGuard(ev event) {
	if ev.inst.gen != ev.gen {
		return
	}
	ev.inst.done = true
}

// orChain mirrors the scheduler's select loop: the first mismatch test
// short-circuits the || chain, guarding the later operands and the body.
func orChain(evs []event) {
	for i := range evs {
		ev := &evs[i]
		d := ev.inst
		if d.gen != ev.gen || d.done || d.val == 0 {
			continue
		}
		d.wake()
	}
}

// reassigned: writing a new value into the alias kills its guard.
func reassigned(a, b event) {
	d := a.inst
	if d.gen != a.gen {
		return
	}
	d.done = true
	d = b.inst
	d.done = true // want `dereference of b\.inst\.done through recycled link b\.inst`
}

// passing a link along without dereferencing transfers responsibility to
// the callee and is always allowed; so is reading the gen tag itself.
func handoff(ev event) uint32 {
	sink(ev.inst)
	return ev.inst.gen
}

func sink(d *inst) { _ = d }
