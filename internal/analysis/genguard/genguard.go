// Package genguard enforces the kernel's recycled-object protocol.
//
// PR 3 made dynInst objects pool-recycled: commit and squash return an
// instruction to the free list and bump its generation counter, so any
// reference that outlives it — a queued event's inst, a producer's waiter
// entry, a ready-queue entry, a consumer's producer link — is detectably
// stale rather than safely dead. Dereferencing such a link without first
// comparing generations reads another instruction's state: the exact
// stale-physical-register hazard the paper's inlining scheme exists to
// avoid, reborn as a software bug that corrupts results silently.
//
// Struct fields that hold such links are annotated //prisim:genlink. Any
// dereference through one (field read past the pointer, method call on it,
// a read through a local alias of it) must be dominated by a generation
// check on the same link:
//
//	if d.gen != ev.gen { continue }   // comparison guard
//	if s.producerLive() { ... }       // a //prisim:genguard method
//
// Reading the link's own "gen" field is always allowed — it is the tag
// check itself — as is passing the pointer along without dereferencing it
// (responsibility transfers to the callee, whose own parameters are not
// tracked). The analysis is a conservative single pass over each function:
// guards established under a condition hold inside the guarded branch, and
// after an if/case whose failing branch terminates (return/continue/break/
// panic). It tracks simple aliases (d := ev.inst, s := &d.srcs[i]).
package genguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prisim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "genguard",
	Doc:  "require generation checks before dereferencing //prisim:genlink fields",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:   pass,
		links:  make(map[types.Object]bool),
		guards: make(map[types.Object]bool),
	}
	c.collect()
	if len(c.links) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				e := newEnv()
				c.walkStmts(fd.Body.List, e)
			}
		}
	}
	return nil, nil
}

type checker struct {
	pass   *analysis.Pass
	links  map[types.Object]bool // fields annotated //prisim:genlink
	guards map[types.Object]bool // methods annotated //prisim:genguard
}

// collect finds the annotated link fields and guard methods.
func (c *checker) collect() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if !analysis.HasDirective(field.Doc, "//prisim:genlink") &&
						!analysis.HasDirective(field.Comment, "//prisim:genlink") {
						continue
					}
					for _, name := range field.Names {
						if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
							c.links[obj] = true
						}
					}
				}
			case *ast.FuncDecl:
				if analysis.HasDirective(n.Doc, "//prisim:genguard") {
					if obj := c.pass.TypesInfo.Defs[n.Name]; obj != nil {
						c.guards[obj] = true
					}
				}
			}
			return true
		})
	}
}

// env is the abstract state at one program point: which link paths have a
// dominating generation check, and what link/base expression each local
// alias stands for.
type env struct {
	guarded map[string]bool
	alias   map[types.Object]string
}

func newEnv() *env {
	return &env{guarded: make(map[string]bool), alias: make(map[types.Object]string)}
}

func (e *env) clone() *env {
	n := newEnv()
	for k, v := range e.guarded {
		n.guarded[k] = v
	}
	for k, v := range e.alias {
		n.alias[k] = v
	}
	return n
}

// intersect keeps only facts present in both branches.
func (e *env) intersect(o *env) {
	for k := range e.guarded {
		if !o.guarded[k] {
			delete(e.guarded, k)
		}
	}
	for k, v := range e.alias {
		if o.alias[k] != v {
			delete(e.alias, k)
		}
	}
}

func (e *env) addGuards(paths []string) {
	for _, p := range paths {
		e.guarded[p] = true
	}
}

// invalidate drops guard facts reachable through ident path p after p is
// reassigned.
func (e *env) invalidate(p string) {
	for k := range e.guarded {
		if k == p || strings.HasPrefix(k, p+".") || strings.HasPrefix(k, p+"[") {
			delete(e.guarded, k)
		}
	}
}

// canonical renders expr as a path string with local aliases resolved, so
// "d.squashed" and "ev.inst.squashed" key the same guard when d := ev.inst.
func (c *checker) canonical(expr ast.Expr, e *env) string {
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
			if a, ok := e.alias[obj]; ok {
				return a
			}
		}
		return x.Name
	case *ast.SelectorExpr:
		return c.canonical(x.X, e) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return c.canonical(x.X, e) + "[" + analysis.ExprString(x.Index) + "]"
	case *ast.ParenExpr:
		return c.canonical(x.X, e)
	case *ast.StarExpr:
		return c.canonical(x.X, e)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.canonical(x.X, e)
		}
	}
	return analysis.ExprString(expr)
}

// linkPath reports whether expr denotes a tracked recycled-object link and
// returns its canonical path: a selection of a //prisim:genlink field, or a
// local alias of one.
func (c *checker) linkPath(expr ast.Expr, e *env) (string, bool) {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok && c.links[sel.Obj()] {
			return c.canonical(x, e), true
		}
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
			if a, ok := e.alias[obj]; ok && c.aliasIsLink(a) {
				return a, true
			}
		}
	case *ast.StarExpr:
		return c.linkPath(x.X, e)
	}
	return "", false
}

// aliasIsLink reports whether an alias target path ends in a genlink field
// selection (aliases of non-link bases, like s := &d.srcs[i], are tracked
// for canonicalization but are not themselves links).
func (c *checker) aliasIsLink(path string) bool {
	i := strings.LastIndexByte(path, '.')
	if i < 0 {
		return false
	}
	name := path[i+1:]
	for obj := range c.links {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// walkStmts walks a statement list, reporting unguarded dereferences and
// returning whether the list always terminates the enclosing flow.
func (c *checker) walkStmts(stmts []ast.Stmt, e *env) bool {
	for _, s := range stmts {
		if c.walkStmt(s, e) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, e *env) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.walkStmts(s.List, e)
	case *ast.ExprStmt:
		c.checkExpr(s.X, e)
		return isPanic(s.X)
	case *ast.AssignStmt:
		c.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, e)
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							c.bind(name, vs.Values[i], e, true)
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, e)
	case *ast.SendStmt:
		c.checkExpr(s.Chan, e)
		c.checkExpr(s.Value, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, e)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		c.checkExpr(call, newEnv()) // runs later: no current guards apply
	case *ast.IfStmt:
		return c.ifStmt(s, e)
	case *ast.SwitchStmt:
		return c.switchStmt(s, e)
	case *ast.TypeSwitchStmt:
		c.walkStmt(s.Assign, e)
		term := len(s.Body.List) > 0
		var outs []*env
		for _, cc := range s.Body.List {
			ce := e.clone()
			if !c.walkStmts(cc.(*ast.CaseClause).Body, ce) {
				term = false
				outs = append(outs, ce)
			}
		}
		c.mergeOuts(e, outs, true)
		return false && term
	case *ast.SelectStmt:
		allTerm := len(s.Body.List) > 0
		var outs []*env
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			ce := e.clone()
			if cc.Comm != nil {
				c.walkStmt(cc.Comm, ce)
			}
			if !c.walkStmts(cc.Body, ce) {
				allTerm = false
				outs = append(outs, ce)
			}
		}
		c.mergeOuts(e, outs, false)
		// A select blocks until one clause runs (default counts as a
		// clause), so it terminates when every clause does.
		return allTerm
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, e)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, e)
		}
		be := e.clone()
		c.walkStmts(s.Body.List, be)
		if s.Post != nil {
			c.walkStmt(s.Post, be)
		}
	case *ast.RangeStmt:
		c.checkExpr(s.X, e)
		be := e.clone()
		if s.Key != nil {
			if id, ok := s.Key.(*ast.Ident); ok {
				c.rebind(id, be)
			}
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok {
				c.rebind(id, be)
			}
		}
		c.walkStmts(s.Body.List, be)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, e)
	}
	return false
}

func (c *checker) ifStmt(s *ast.IfStmt, e *env) bool {
	if s.Init != nil {
		c.walkStmt(s.Init, e)
	}
	pos, neg := c.cond(s.Cond, e)
	be := e.clone()
	be.addGuards(pos)
	bodyTerm := c.walkStmts(s.Body.List, be)

	ee := e.clone()
	ee.addGuards(neg)
	elseTerm := false
	if s.Else != nil {
		elseTerm = c.walkStmt(s.Else, ee)
	}

	switch {
	case bodyTerm && elseTerm:
		return true
	case bodyTerm:
		*e = *ee
	case elseTerm:
		*e = *be
	default:
		be.intersect(ee)
		*e = *be
	}
	return false
}

// switchStmt handles condition switches (no tag): each case is an if/else
// chain, so a later case sees the negations of every earlier one.
func (c *checker) switchStmt(s *ast.SwitchStmt, e *env) bool {
	if s.Init != nil {
		c.walkStmt(s.Init, e)
	}
	if s.Tag != nil {
		// Value switch: no guard semantics, just check everything.
		c.checkExpr(s.Tag, e)
		var outs []*env
		hasDefault := false
		allTerm := true
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			ce := e.clone()
			for _, x := range cc.List {
				c.checkExpr(x, ce)
			}
			if !c.walkStmts(cc.Body, ce) {
				allTerm = false
				outs = append(outs, ce)
			}
		}
		c.mergeOuts(e, outs, !hasDefault)
		return allTerm && hasDefault
	}

	accNeg := e.clone()
	var outs []*env
	hasDefault := false
	allTerm := true
	for _, cl := range s.Body.List {
		cc := cl.(*ast.CaseClause)
		ce := accNeg.clone()
		if cc.List == nil {
			hasDefault = true
		}
		var pos []string
		for _, x := range cc.List {
			p, n := c.cond(x, ce)
			if len(cc.List) == 1 {
				pos = p
			}
			accNeg.addGuards(n)
		}
		ce.addGuards(pos)
		if !c.walkStmts(cc.Body, ce) {
			allTerm = false
			outs = append(outs, ce)
		}
	}
	if !hasDefault {
		outs = append(outs, accNeg)
		allTerm = false
	}
	c.mergeOuts(e, outs, false)
	return allTerm
}

// mergeOuts intersects the fall-through branch states into e.
func (c *checker) mergeOuts(e *env, outs []*env, includeEntry bool) {
	if len(outs) == 0 {
		return
	}
	m := outs[0]
	for _, o := range outs[1:] {
		m.intersect(o)
	}
	if includeEntry {
		m.intersect(e)
	}
	*e = *m
}

// cond analyzes a boolean condition: it checks dereferences inside it
// (under short-circuit semantics) and returns the guard paths established
// when it evaluates true (pos) and false (neg).
func (c *checker) cond(x ast.Expr, e *env) (pos, neg []string) {
	switch x := x.(type) {
	case *ast.ParenExpr:
		return c.cond(x.X, e)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			p, n := c.cond(x.X, e)
			return n, p
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			p1, _ := c.cond(x.X, e)
			ye := e.clone()
			ye.addGuards(p1)
			p2, _ := c.cond(x.Y, ye)
			return append(p1, p2...), nil
		case token.LOR:
			_, n1 := c.cond(x.X, e)
			ye := e.clone()
			ye.addGuards(n1)
			_, n2 := c.cond(x.Y, ye)
			return nil, append(n1, n2...)
		case token.EQL, token.NEQ:
			c.checkExpr(x.X, e)
			c.checkExpr(x.Y, e)
			var paths []string
			for _, side := range [...]ast.Expr{x.X, x.Y} {
				switch s := ast.Unparen(side).(type) {
				case *ast.SelectorExpr:
					// Pointer-link form: d.gen == ev.gen.
					if s.Sel.Name == "gen" {
						if p, ok := c.linkPath(s.X, e); ok {
							paths = append(paths, p)
						}
					}
				case *ast.IndexExpr:
					// Slot-link form: slab.gen[s] == e.gen. Comparing the
					// generation array entry at the linked slot guards the
					// slot for every other slab array.
					if isGenArray(s.X) {
						if p, ok := c.linkPath(s.Index, e); ok {
							paths = append(paths, p)
						}
					}
				}
			}
			if x.Op == token.EQL {
				return paths, nil
			}
			return nil, paths
		}
	case *ast.CallExpr:
		if paths := c.guardCall(x, e); paths != nil {
			return paths, nil
		}
	}
	c.checkExpr(x, e)
	return nil, nil
}

// guardCall recognizes calls to //prisim:genguard methods and returns the
// link paths their truth validates: every genlink field of the receiver,
// every argument that is itself a link, and every genlink field of struct
// (or pointer-to-struct) arguments — so p.producerLive(so) guards both the
// receiver's links and so's producer slot.
func (c *checker) guardCall(call *ast.CallExpr, e *env) []string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || !c.guards[fn] {
		return nil
	}
	var paths []string
	paths = append(paths, c.linkFieldPaths(c.canonical(sel.X, e), c.pass.TypesInfo.TypeOf(sel.X))...)
	for _, arg := range call.Args {
		if p, ok := c.linkPath(arg, e); ok {
			paths = append(paths, p)
			continue
		}
		paths = append(paths, c.linkFieldPaths(c.canonical(arg, e), c.pass.TypesInfo.TypeOf(arg))...)
	}
	return paths
}

// linkFieldPaths returns base-prefixed paths for every genlink field of t
// (pointers deref'd), or nil if t is not a struct or has none.
func (c *checker) linkFieldPaths(base string, t types.Type) []string {
	if t == nil {
		return nil
	}
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	var paths []string
	for i := 0; i < st.NumFields(); i++ {
		if c.links[st.Field(i)] {
			paths = append(paths, base+"."+st.Field(i).Name())
		}
	}
	return paths
}

// assign checks an assignment's expressions, updates aliases for pointer
// copies of links and bases, and invalidates guards on overwritten paths.
func (c *checker) assign(s *ast.AssignStmt, e *env) {
	for _, r := range s.Rhs {
		c.checkExpr(r, e)
	}
	for _, l := range s.Lhs {
		// Writing through a link is a dereference too (ev.inst.done = true);
		// writing the link field itself (x.producer = p) is not, and
		// checkExpr naturally distinguishes them.
		if _, isIdent := l.(*ast.Ident); !isIdent {
			c.checkExpr(l, e)
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				c.bind(id, s.Rhs[i], e, s.Tok == token.DEFINE)
			} else {
				e.invalidate(c.canonical(l, e))
			}
		}
	} else {
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
				c.rebind(id, e)
			}
		}
	}
}

// bind records what a variable now stands for: an alias if the RHS is a
// link or an address-of path, untracked otherwise. Either way any guard
// facts about the old binding die.
func (c *checker) bind(id *ast.Ident, rhs ast.Expr, e *env, define bool) {
	e.invalidate(id.Name)
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	delete(e.alias, obj)
	switch r := ast.Unparen(rhs).(type) {
	case *ast.SelectorExpr:
		if _, isLink := c.linkPath(r, e); isLink {
			e.alias[obj] = c.canonical(r, e)
		}
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			e.alias[obj] = c.canonical(r.X, e)
		}
	}
}

// rebind invalidates a variable with an unknown new value.
func (c *checker) rebind(id *ast.Ident, e *env) {
	e.invalidate(id.Name)
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		delete(e.alias, obj)
	} else if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
		delete(e.alias, obj)
	}
}

// checkExpr reports any dereference through an unguarded link inside expr.
func (c *checker) checkExpr(x ast.Expr, e *env) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.walkStmts(n.Body.List, newEnv())
			return false
		case *ast.SelectorExpr:
			base := ast.Unparen(n.X)
			if path, ok := c.linkPath(base, e); ok {
				if n.Sel.Name != "gen" && !e.guarded[path] {
					c.pass.Reportf(n.Pos(),
						"dereference of %s.%s through recycled link %s without a dominating generation check (compare .gen or use a //prisim:genguard method)",
						path, n.Sel.Name, path)
				}
			}
		case *ast.IndexExpr:
			// Slot-link form: indexing any slab array by a linked slot is a
			// dereference of recycled state, except the gen array itself —
			// that read is the tag check.
			if path, ok := c.linkPath(n.Index, e); ok {
				if !isGenArray(n.X) && !e.guarded[path] {
					c.pass.Reportf(n.Pos(),
						"slab access %s indexed by recycled slot link %s without a dominating generation check (compare the gen array or use a //prisim:genguard method)",
						analysis.ExprString(n), path)
				}
			}
		}
		return true
	})
}

// isGenArray reports whether expr denotes a generation-tag array (a field or
// variable named gen): indexing it by a slot link is the tag check itself,
// and comparing the element against a frozen generation guards the slot.
func isGenArray(expr ast.Expr) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name == "gen"
	case *ast.Ident:
		return x.Name == "gen"
	}
	return false
}

// isPanic reports whether the expression statement is a call that cannot
// return (panic or a *panic* helper).
func isPanic(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "panic")
	case *ast.SelectorExpr:
		return strings.Contains(strings.ToLower(fun.Sel.Name), "panic")
	}
	return false
}
