// Package a is a hotpathalloc fixture: one annotated function per
// forbidden construct, plus sanctioned patterns that must stay silent.
package a

import "fmt"

type ring struct {
	buf  []uint64
	head int
	any  interface{}
}

//prisim:hotpath
func literals() {
	_ = map[int]int{}    // want `map literal allocates`
	_ = []int{1, 2}      // want `slice literal allocates`
	_ = &ring{}          // want `&composite literal escapes`
	_ = make([]int, 8)   // want `make allocates`
	_ = new(ring)        // want `new allocates`
	_ = func() int { return 0 } // want `closure in a hot path`
}

//prisim:hotpath
func formatting(v uint64) {
	fmt.Println(v) // want `fmt\.Println allocates`
}

//prisim:hotpath
func freshAppend() []uint64 {
	var out []uint64
	out = append(out, 1) // want `append to out, which starts empty`
	return out
}

//prisim:hotpath
func boxing(r *ring, v uint64) {
	r.any = v      // want `assignment boxes uint64 into an interface`
	sink(v)        // want `argument boxes uint64 into an interface`
	_ = string(b)  // want `string/\[\]byte conversion copies`
}

var b []byte

func sink(v any) { _ = v }

// recycled appends into persistent backing and passes pointers: the
// sanctioned hot-path patterns, none flagged.
//
//prisim:hotpath
func recycled(r *ring, v uint64) {
	r.buf = append(r.buf, v)
	r.buf = r.buf[:0]
	r.any = r // pointers box without allocating
	if v > 1<<40 {
		panic("implausible") // cold failure path: arguments exempt
	}
}

// unannotated may allocate freely.
func unannotated() []uint64 {
	out := make([]uint64, 0, 8)
	return append(out, 1)
}
