// Package hotpathalloc keeps annotated steady-state code allocation-free.
//
// The PR 3 kernel rewrite got the simulator to ~0.009 allocs/instr by
// recycling every per-instruction object; one stray literal or boxing
// conversion in the cycle loop silently erodes the 3.6–10× speedup. A
// function marked //prisim:hotpath in its doc comment may not contain:
//
//   - map or slice composite literals, or &T{...} (heap escape);
//   - make/new calls;
//   - append to a slice that starts empty in this call (growing a fresh
//     slice allocates every invocation; append into recycled backing
//     arrays — x = append(x, ...) on a struct field or reslice — is the
//     sanctioned pattern and is not flagged);
//   - fmt.* / log.* calls;
//   - closures (func literals capture and usually escape);
//   - interface boxing of non-pointer values (any-typed arguments,
//     interface conversions and assignments) — the container/heap mistake;
//   - string<->[]byte conversions.
//
// The check is intraprocedural: annotate the callee too if it must stay
// clean. Cold sub-paths inside a hot function (free-list refill, demand
// paging) carry //lint:ignore hotpathalloc justifications. Arguments being
// passed to panic (and *panic* helpers) are exempt — a panicking cycle loop
// has no steady state to protect.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"prisim/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocating constructs in //prisim:hotpath functions",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !analysis.HasDirective(fd.Doc, "//prisim:hotpath") {
				continue
			}
			c := &checker{pass: pass}
			c.fresh = c.freshSlices(fd.Body)
			c.walk(fd.Body)
		}
	}
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	fresh map[types.Object]bool // locals that start as empty slices
}

// freshSlices collects local slice variables declared with no initial
// backing array (`var x []T`). Appending to one inside a hot function grows
// a new array on every call.
func (c *checker) freshSlices(body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						fresh[obj] = true
					}
				}
			}
		}
		return true
	})
	return fresh
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			if t := c.pass.TypesInfo.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					c.pass.Reportf(n.Pos(), "map literal allocates in a hot path")
				case *types.Slice:
					c.pass.Reportf(n.Pos(), "slice literal allocates in a hot path")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "&composite literal escapes to the heap in a hot path")
				}
			}
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure in a hot path: func literals capture and allocate")
			return false // its body is not hot-path steady state
		case *ast.CallExpr:
			return c.call(n)
		case *ast.AssignStmt:
			c.assignBoxing(n)
		}
		return true
	})
}

// call checks one call expression; the return value tells ast.Inspect
// whether to descend into the arguments.
func (c *checker) call(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "make":
				c.pass.Reportf(call.Pos(), "make allocates in a hot path")
			case "new":
				c.pass.Reportf(call.Pos(), "new allocates in a hot path")
			case "append":
				c.appendCheck(call)
			case "panic":
				return false // a panicking hot path is already dead
			}
			return true
		}
	}

	// Conversions: T(x).
	if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return true
	}

	// Ordinary and method calls.
	if fn := analysis.PkgFuncOf(c.pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			c.pass.Reportf(call.Pos(), "%s.%s allocates (formatting) in a hot path", fn.Pkg().Name(), fn.Name())
			return true
		}
		if strings.Contains(strings.ToLower(fn.Name()), "panic") {
			return false // failure path, not steady state
		}
	}
	if sig, ok := c.pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok {
		c.argBoxing(call, sig)
	}
	return true
}

// appendCheck flags append whose base slice provably starts empty each
// call — growth is then a guaranteed steady-state allocation.
func (c *checker) appendCheck(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.fresh[obj] {
		c.pass.Reportf(call.Pos(),
			"append to %s, which starts empty in this call: every invocation allocates; reuse a recycled backing array", id.Name)
	}
}

// conversion flags string<->[]byte copies and interface-boxing conversions.
func (c *checker) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	if (isString(tu) && isByteSlice(su)) || (isByteSlice(tu) && isString(su)) {
		c.pass.Reportf(call.Pos(), "string/[]byte conversion copies in a hot path")
		return
	}
	c.boxing(call.Pos(), target, src, "interface conversion")
}

// argBoxing flags concrete non-pointer values passed as interface-typed
// (including variadic ...any) parameters: each one escapes to the heap.
func (c *checker) argBoxing(call *ast.CallExpr, sig *types.Signature) {
	if call.Ellipsis.IsValid() {
		return // spreading an existing slice boxes nothing new
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		c.boxing(arg.Pos(), pt, c.pass.TypesInfo.TypeOf(arg), "argument")
	}
}

// assignBoxing flags assignments that store a concrete non-pointer value
// into an interface-typed location.
func (c *checker) assignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		c.boxing(as.Rhs[i].Pos(), c.pass.TypesInfo.TypeOf(lhs),
			c.pass.TypesInfo.TypeOf(as.Rhs[i]), "assignment")
	}
}

// boxing reports a concrete value crossing into an interface type.
// Pointer-shaped values (pointers, channels, maps, funcs) box without
// allocating and constants box to static data, so only variable value
// kinds are flagged.
func (c *checker) boxing(pos token.Pos, target, src types.Type, what string) {
	if target == nil || src == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	if types.IsInterface(src) {
		return
	}
	switch su := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Basic:
		if su.Info()&types.IsUntyped != 0 {
			return // nil, or a constant materialized at compile time
		}
	}
	c.pass.Reportf(pos, "%s boxes %s into an interface (allocates) in a hot path", what, src)
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0 && b.Info()&types.IsUntyped == 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
