package hotpathalloc_test

import (
	"testing"

	"prisim/internal/analysis/analysistest"
	"prisim/internal/analysis/hotpathalloc"
)

func TestHotpathalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
