package fuzzprog

import (
	"testing"

	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
	"prisim/internal/ooo"
)

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog := Generate(Config{Seed: seed})
		m := emu.New(prog)
		n := m.Run(3_000_000)
		if !m.Halted() {
			t.Fatalf("seed %d: did not halt in %d instructions", seed, n)
		}
		if n < 100 {
			t.Errorf("seed %d: suspiciously short (%d instructions)", seed, n)
		}
	}
}

func TestGeneratedProgramsDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Code) != len(b.Code) {
		t.Fatal("same seed, different code size")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("same seed, instruction %d differs", i)
		}
	}
}

// TestDifferentialTimingVsFunctional is the fuzzing half of the master
// correctness property: for many random programs and every release policy,
// a full out-of-order run (wrong paths, replays, early frees, recoveries)
// must finish with architected state identical to functional execution.
func TestDifferentialTimingVsFunctional(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	policies := append([]core.Policy{core.PolicyBase}, core.AllPolicies...)
	for _, seed := range seeds {
		prog := Generate(Config{Seed: seed})
		ref := emu.New(prog)
		ref.Run(3_000_000)
		if !ref.Halted() {
			t.Fatalf("seed %d did not halt", seed)
		}
		for _, pol := range policies {
			cfg := ooo.Width4().WithPolicy(pol).WithPRs(48) // tight file: stress frees
			p := ooo.New(cfg, prog)
			p.Run(5_000_000)
			m := p.Machine()
			if !m.Halted() {
				t.Fatalf("seed %d/%s: pipeline did not finish", seed, pol.Name())
			}
			for r := 0; r < isa.NumArchRegs; r++ {
				if m.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
					t.Errorf("seed %d/%s: %s = %#x, want %#x",
						seed, pol.Name(), isa.Reg(r), m.Reg(isa.Reg(r)), ref.Reg(isa.Reg(r)))
				}
			}
			if got, want := m.Mem.ReadU64(prog.Symbols["scratch"]), ref.Mem.ReadU64(prog.Symbols["scratch"]); got != want {
				t.Errorf("seed %d/%s: checksum %#x, want %#x", seed, pol.Name(), got, want)
			}
			p.Renamer().CheckInvariants()
		}
	}
}

// TestDifferentialWidth8 repeats the differential check on the 8-wide
// machine with the rename-inline extension enabled.
func TestDifferentialWidth8(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		prog := Generate(Config{Seed: seed, BodyLen: 90})
		ref := emu.New(prog)
		ref.Run(3_000_000)
		cfg := ooo.Width8().WithPolicy(core.PolicyPRIPlusER)
		cfg.InlineAtRename = true
		p := ooo.New(cfg, prog)
		p.Run(5_000_000)
		for r := 0; r < isa.NumArchRegs; r++ {
			if p.Machine().Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
				t.Errorf("seed %d: %s diverged", seed, isa.Reg(r))
			}
		}
	}
}
