// Package fuzzprog generates random — but well-formed and terminating —
// PRISC-64 programs for differential testing: every generated program halts
// within a bounded instruction count, so the timing pipeline can be checked
// bit-for-bit against pure functional execution across random control flow,
// memory traffic, and operand mixes.
//
// The generator builds structured code: a fixed-trip outer loop whose body
// is a random mix of straight-line arithmetic, loads/stores into a private
// arena, short data-dependent forward branches, counted inner loops, and
// calls to a small set of generated leaf functions. Unstructured jumps are
// never emitted, which is what guarantees termination.
package fuzzprog

import (
	"math/rand"

	"prisim/internal/asm"
	"prisim/internal/isa"
)

// Config bounds the generated program.
type Config struct {
	Seed       int64
	OuterTrips int // outer loop iterations (default 40)
	BodyLen    int // approximate statements per body (default 60)
	Funcs      int // leaf functions (default 3)
}

// Generate builds a random program from cfg.
func Generate(cfg Config) *asm.Program {
	if cfg.OuterTrips <= 0 {
		cfg.OuterTrips = 40
	}
	if cfg.BodyLen <= 0 {
		cfg.BodyLen = 60
	}
	if cfg.Funcs <= 0 {
		cfg.Funcs = 3
	}
	g := &gen{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		b:   asm.NewBuilder(),
		cfg: cfg,
	}
	return g.program()
}

type gen struct {
	rng    *rand.Rand
	b      *asm.Builder
	cfg    Config
	labels int
	arena  uint64
	// scratchBase shifts the scratch register window: 0 selects the main
	// body's r1..r14, 9 selects the leaf-function window r10..r14.
	scratchBase int
}

// Register roles: r1..r15 scratch, r16 arena base, r17 outer counter,
// r18 checksum. f1..f12 fp scratch. Leaf functions only touch r10..r15 and
// f8..f12, so caller state in low registers survives calls.
func (g *gen) program() *asm.Program {
	b := g.b
	words := make([]uint64, 512)
	for i := range words {
		words[i] = g.rng.Uint64() >> uint(g.rng.Intn(56))
	}
	g.arena = b.Words("arena", words)
	b.Space("scratch", 4096)

	b.Label("main")
	b.La(isa.IntReg(16), "arena")
	b.Li(isa.IntReg(17), int64(g.cfg.OuterTrips))
	b.Li(isa.IntReg(18), 0)
	// Seed fp registers from the arena so fp ops have varied inputs.
	for i := 1; i <= 6; i++ {
		b.Load(isa.OpFLD, isa.FPReg(i), isa.IntReg(16), int64(8*i))
	}
	b.Label("outer")
	g.body(g.cfg.BodyLen, true)
	b.RI(isa.OpADDI, isa.IntReg(17), isa.IntReg(17), -1)
	b.Bnez(isa.IntReg(17), "outer")
	// Store the checksum where tests can read it.
	b.La(isa.IntReg(1), "scratch")
	b.Store(isa.OpSTQ, isa.IntReg(18), isa.IntReg(1), 0)
	b.Halt()

	for fn := 0; fn < g.cfg.Funcs; fn++ {
		b.Label(fname(fn))
		g.leafBody()
		b.Ret()
	}
	return b.MustFinish()
}

func fname(i int) string { return "fn" + string(rune('a'+i)) }

func (g *gen) newLabel() string {
	g.labels++
	return "L" + itoa(g.labels)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func (g *gen) scratch() isa.Reg { return g.pick() }

// body emits roughly n random statements; calls are only emitted at the
// top level (allowCalls) so leaf functions stay leaves.
func (g *gen) body(n int, allowCalls bool) {
	for i := 0; i < n; i++ {
		switch k := g.rng.Intn(20); {
		case k < 8:
			g.arith()
		case k < 11:
			g.memOp()
		case k < 13:
			g.fpOp()
		case k < 15:
			g.forwardBranch()
		case k < 17:
			g.innerLoop()
		default:
			if allowCalls && g.cfg.Funcs > 0 {
				g.b.Call(fname(g.rng.Intn(g.cfg.Funcs)))
			} else {
				g.arith()
			}
		}
	}
	// Fold some state into the checksum.
	g.b.RR(isa.OpADD, isa.IntReg(18), isa.IntReg(18), g.scratch())
}

// leafBody is a short call-free body using only the callee register range.
func (g *gen) leafBody() {
	old := g.scratchBase
	g.scratchBase = 9 // r10..r15
	defer func() { g.scratchBase = old }()
	g.body(6+g.rng.Intn(8), false)
}

func (g *gen) arith() {
	b := g.b
	rd, ra, rb := g.pick(), g.pick(), g.pick()
	ops := []isa.Op{isa.OpADD, isa.OpSUB, isa.OpMUL, isa.OpAND, isa.OpOR,
		isa.OpXOR, isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpSLT, isa.OpSLTU,
		isa.OpSEQ, isa.OpNOR, isa.OpDIV, isa.OpDIVU, isa.OpREM}
	if g.rng.Intn(3) == 0 {
		iops := []isa.Op{isa.OpADDI, isa.OpANDI, isa.OpORI, isa.OpXORI,
			isa.OpSLLI, isa.OpSRLI, isa.OpSRAI, isa.OpSLTI}
		op := iops[g.rng.Intn(len(iops))]
		imm := int64(g.rng.Intn(256))
		if op == isa.OpADDI || op == isa.OpSLTI {
			imm -= 128
		}
		if op == isa.OpSLLI || op == isa.OpSRLI || op == isa.OpSRAI {
			imm = int64(g.rng.Intn(63))
		}
		b.RI(op, rd, ra, imm)
		return
	}
	b.RR(ops[g.rng.Intn(len(ops))], rd, ra, rb)
}

func (g *gen) memOp() {
	b := g.b
	// Addresses are arena-relative with a bounded random offset, so all
	// traffic stays inside the private arena.
	off := int64(8 * g.rng.Intn(500))
	data := g.pick()
	if g.rng.Intn(2) == 0 {
		lops := []isa.Op{isa.OpLDQ, isa.OpLDL, isa.OpLDB, isa.OpLDBU}
		b.Load(lops[g.rng.Intn(len(lops))], data, isa.IntReg(16), off)
	} else {
		sops := []isa.Op{isa.OpSTQ, isa.OpSTL, isa.OpSTB}
		b.Store(sops[g.rng.Intn(len(sops))], data, isa.IntReg(16), off)
	}
}

func (g *gen) fpOp() {
	b := g.b
	fd, fa, fb := g.fpick(), g.fpick(), g.fpick()
	switch g.rng.Intn(6) {
	case 0:
		b.RR(isa.OpFADD, fd, fa, fb)
	case 1:
		b.RR(isa.OpFSUB, fd, fa, fb)
	case 2:
		b.RR(isa.OpFMUL, fd, fa, fb)
	case 3:
		b.R1(isa.OpFABS, fd, fa) // keeps values finite-ish
	case 4:
		b.R1(isa.OpCVTIF, fd, g.pick())
	case 5:
		b.RR(isa.OpFMIN, fd, fa, fb)
	}
}

// forwardBranch emits a compare over live registers that skips a short
// random straight-line block — always forward, so always terminating.
func (g *gen) forwardBranch() {
	b := g.b
	l := g.newLabel()
	ops := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE, isa.OpBLTU, isa.OpBGEU}
	b.Br(ops[g.rng.Intn(len(ops))], g.pick(), g.pick(), l)
	for i, n := 0, 1+g.rng.Intn(4); i < n; i++ {
		g.arith()
	}
	b.Label(l)
}

// innerLoop emits a short counted loop over a dedicated counter register.
func (g *gen) innerLoop() {
	b := g.b
	l := g.newLabel()
	counter := isa.IntReg(15) // dedicated; bodies may read it but clobbering is harmless
	b.Li(counter, int64(2+g.rng.Intn(6)))
	b.Label(l)
	for i, n := 0, 2+g.rng.Intn(5); i < n; i++ {
		if g.rng.Intn(3) == 0 {
			g.memOp()
		} else {
			g.arith()
		}
	}
	b.RI(isa.OpADDI, counter, counter, -1)
	b.Bnez(counter, l)
}

// pick selects a scratch register from the current window.
func (g *gen) pick() isa.Reg {
	base := g.scratchBase
	if base == 0 {
		return isa.IntReg(1 + g.rng.Intn(14)) // r1..r14 (r15 is the inner counter)
	}
	return isa.IntReg(base + 1 + g.rng.Intn(5)) // r10..r14
}

func (g *gen) fpick() isa.Reg {
	if g.scratchBase != 0 {
		return isa.FPReg(8 + g.rng.Intn(5))
	}
	return isa.FPReg(1 + g.rng.Intn(12))
}
