package ooo

import (
	"testing"

	"prisim/internal/core"
	"prisim/internal/workloads"
)

// Kernel microbenchmarks: steady-state cost of the simulation loop itself.
// Pipelines are constructed outside the timed region (and replaced off the
// clock when a program halts), so ns/op and allocs/op describe the per-cycle
// hot path, not setup. Run with -benchmem; the recycling kernel should hold
// steady-state allocs near zero.

const benchChunk = 5000 // committed instructions per iteration

// benchRun drives one pipeline configuration for b.N*benchChunk instructions.
func benchRun(b *testing.B, mk func() *Pipeline) {
	b.Helper()
	p := mk()
	p.FastForward(2000) // past init code, caches warm
	b.ReportAllocs()
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		n := p.Run(benchChunk)
		total += n
		if n < benchChunk { // program halted: replace off the clock
			b.StopTimer()
			p = mk()
			p.FastForward(2000)
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instr/s")
	b.ReportMetric(float64(total)/float64(b.N), "instr/op")
}

func benchWorkload(b *testing.B, name string, cfg Config) {
	w, ok := workloads.ByName(name)
	if !ok {
		b.Fatalf("unknown workload %q", name)
	}
	prog := w.Build(0)
	benchRun(b, func() *Pipeline { return New(cfg, prog) })
}

// BenchmarkKernelSteadyState is the headline number: committed instructions
// per second of wall clock on the baseline 4-wide machine, past warmup.
func BenchmarkKernelSteadyState(b *testing.B) {
	benchWorkload(b, "gzip", Width4())
}

// BenchmarkKernelFig8Mix cycles the paper's Figure 8 policy mix (base, PRI,
// PRI+ER) over integer workloads — the run matrix the experiment harness
// spends almost all of its time in.
func BenchmarkKernelFig8Mix(b *testing.B) {
	for _, pol := range []core.Policy{core.PolicyBase, core.PolicyPRIRcCkpt, core.PolicyPRIPlusER} {
		b.Run(pol.Name(), func(b *testing.B) {
			benchWorkload(b, "mcf", Width4().WithPolicy(pol))
		})
	}
}

// BenchmarkKernelSquashHeavy stresses recovery: the data-dependent branch
// pattern of the shared test program defeats the predictor often, so squash,
// rollback, and (with recycling) the free-list return path dominate.
func BenchmarkKernelSquashHeavy(b *testing.B) {
	prog := buildTest(b)
	benchRun(b, func() *Pipeline { return New(Width4(), prog) })
}

// BenchmarkKernelMemBound exercises the event path for long-latency loads
// (far-future completions land in the wheel's overflow list).
func BenchmarkKernelMemBound(b *testing.B) {
	benchWorkload(b, "mcf", Width8())
}
