package ooo

import (
	"testing"

	"prisim/internal/asm"
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

// testProgram builds a program exercising branches, calls, loads, stores,
// narrow and wide values, FP, and a data-dependent branch pattern that
// defeats the predictor often enough to exercise recovery.
const testProgram = `
.data
buf:   .space 8192
vec:   .float 1.5, 2.5, 0.0, -3.25
.text
main:
  la   r9, buf
  la   r10, vec
  li   r1, 0          ; i
  li   r2, 500        ; trip count
  li   r4, 0          ; checksum
loop:
  andi r5, r1, 1023
  slli r6, r5, 3
  add  r7, r9, r6
  stq  r4, 0(r7)      ; store checksum
  ldq  r8, 0(r7)      ; load it back (forwarding)
  mul  r11, r8, r5
  add  r4, r4, r11
  xori r12, r1, 0x55
  andi r12, r12, 7
  beqz r12, skip      ; data-dependent branch
  addi r4, r4, 3
skip:
  jal  fpwork
  addi r1, r1, 1
  bne  r1, r2, loop
  la   r7, buf
  stq  r4, 0(r7)
  halt
fpwork:
  fld  f1, 0(r10)
  fld  f2, 8(r10)
  fadd f3, f1, f2
  fld  f4, 16(r10)    ; 0.0: trivially narrow
  fadd f5, f3, f4
  fst  f5, 24(r10)
  ret
`

func buildTest(t testing.TB) *asm.Program {
	p, err := asm.Assemble(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func smallCfg(w int) Config {
	cfg := Width4()
	if w == 8 {
		cfg = Width8()
	}
	return cfg
}

// runToHalt runs the pipeline until HALT commits.
func runToHalt(t testing.TB, cfg Config, prog *asm.Program) *Pipeline {
	p := New(cfg, prog)
	p.Run(1_000_000)
	if !p.done {
		t.Fatalf("%s: program did not complete (committed %d)", cfg.Name, p.stats.Committed)
	}
	return p
}

// TestArchitecturalEquivalence is the master correctness check: for every
// release policy, a full timing simulation (wrong-path execution, rollback,
// squash, early frees) must leave the architected state identical to a pure
// functional run.
func TestArchitecturalEquivalence(t *testing.T) {
	prog := buildTest(t)
	ref := emu.New(prog)
	ref.Run(0)

	policies := append([]core.Policy{core.PolicyBase}, core.AllPolicies...)
	for _, w := range []int{4, 8} {
		for _, pol := range policies {
			cfg := smallCfg(w).WithPolicy(pol)
			p := runToHalt(t, cfg, prog)
			m := p.Machine()
			for r := 0; r < isa.NumArchRegs; r++ {
				if m.Reg(isa.Reg(r)) != ref.Reg(isa.Reg(r)) {
					t.Errorf("w%d/%s: %s = %#x, want %#x",
						w, pol.Name(), isa.Reg(r), m.Reg(isa.Reg(r)), ref.Reg(isa.Reg(r)))
				}
			}
			bufAddr := prog.Symbols["buf"]
			if got, want := m.Mem.ReadU64(bufAddr), ref.Mem.ReadU64(bufAddr); got != want {
				t.Errorf("w%d/%s: checksum = %#x, want %#x", w, pol.Name(), got, want)
			}
			if p.stats.Committed != ref.Seq() {
				t.Errorf("w%d/%s: committed %d, functional ran %d",
					w, pol.Name(), p.stats.Committed, ref.Seq())
			}
			p.Renamer().CheckInvariants()
		}
	}
}

func TestPipelineMakesProgress(t *testing.T) {
	prog := buildTest(t)
	p := runToHalt(t, Width4(), prog)
	st := p.Stats()
	if st.IPC() <= 0.3 || st.IPC() > 4.0 {
		t.Errorf("suspicious IPC %.2f", st.IPC())
	}
	if st.BranchResolved == 0 || st.BranchMispredicted == 0 {
		t.Errorf("no branch activity: resolved=%d mispred=%d", st.BranchResolved, st.BranchMispredicted)
	}
	if st.Squashed == 0 {
		t.Error("no squashes despite mispredictions")
	}
}

func TestPRIImprovesRegisterPressure(t *testing.T) {
	// A long dependence-free stream of narrow results under a tiny
	// register file: PRI should beat base IPC and lower occupancy.
	b := asm.NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 100)
	b.Label("loop")
	for i := 2; i < 26; i++ {
		b.RI(isa.OpANDI, isa.IntReg(i), isa.IntReg(i), 15) // narrow results
	}
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	prog := b.MustFinish()

	cfg := Width4().WithPRs(40)
	base := runToHalt(t, cfg.WithPolicy(core.PolicyBase), prog)
	pri := runToHalt(t, cfg.WithPolicy(core.PolicyPRIRcCkpt), prog)

	if pri.Stats().IPC() < base.Stats().IPC() {
		t.Errorf("PRI IPC %.3f < base %.3f", pri.Stats().IPC(), base.Stats().IPC())
	}
	if pri.Stats().AvgIntOccupancy() >= base.Stats().AvgIntOccupancy() {
		t.Errorf("PRI occupancy %.1f >= base %.1f",
			pri.Stats().AvgIntOccupancy(), base.Stats().AvgIntOccupancy())
	}
	if pri.Stats().RetireInlines == 0 {
		t.Error("PRI never inlined anything")
	}
	if pri.Stats().SrcInlineReads == 0 {
		t.Error("no source operands read from inlined entries")
	}
}

func TestInfiniteRegistersAreUpperBound(t *testing.T) {
	prog := buildTest(t)
	cfg := Width4().WithPRs(40)
	base := runToHalt(t, cfg.WithPolicy(core.PolicyBase), prog)
	inf := runToHalt(t, cfg.WithPolicy(core.PolicyInfinite), prog)
	if inf.Stats().IPC()+1e-9 < base.Stats().IPC() {
		t.Errorf("infinite PRF IPC %.3f < base %.3f", inf.Stats().IPC(), base.Stats().IPC())
	}
}

func TestLoadMissCausesReplay(t *testing.T) {
	// Pointer-chase across a working set far larger than DL1+L2 so loads
	// miss; dependents scheduled speculatively must replay.
	b := asm.NewBuilder()
	n := 1 << 17 // 128K entries * 8B = 1MB, twice the L2
	ring := make([]uint64, n)
	base := uint64(asm.DefaultDataBase)
	for i := range ring {
		// Additive-stride permutation: 513 is coprime to n, and 513*8 =
		// 4104-byte jumps defeat every cache level.
		ring[i] = base + 8*((uint64(i)+513)%uint64(n))
	}
	b.Words("ring", ring)
	b.Label("main")
	b.La(isa.IntReg(1), "ring")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 2000) // iterations
	b.Label("loop")
	b.Load(isa.OpLDQ, isa.IntReg(1), isa.IntReg(1), 0)
	b.RR(isa.OpADD, isa.IntReg(3), isa.IntReg(1), isa.IntReg(2)) // dependent op
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	prog := b.MustFinish()

	p := runToHalt(t, Width4(), prog)
	if p.Stats().Replays == 0 {
		t.Error("no replays despite guaranteed load misses")
	}
	if p.Stats().IPC() > 0.5 {
		t.Errorf("IPC %.2f too high for a miss-bound chase", p.Stats().IPC())
	}
	if p.Mem().DL1.MissRate() < 0.5 {
		t.Errorf("DL1 miss rate %.2f too low", p.Mem().DL1.MissRate())
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	prog := buildTest(t)
	p := runToHalt(t, Width4(), prog)
	if p.Stats().LoadForwards == 0 {
		t.Error("no store-to-load forwarding in a program that stores then loads")
	}
}

func TestConservativeDisambiguationSlower(t *testing.T) {
	prog := buildTest(t)
	cfg := Width4()
	oracle := runToHalt(t, cfg, prog)
	cfg.ConservativeDisambiguation = true
	cons := runToHalt(t, cfg, prog)
	if cons.Stats().IPC() > oracle.Stats().IPC()+1e-9 {
		t.Errorf("conservative disambiguation faster (%.3f) than oracle (%.3f)",
			cons.Stats().IPC(), oracle.Stats().IPC())
	}
	// And it must still be architecturally correct.
	if cons.Machine().Reg(isa.IntReg(4)) != oracle.Machine().Reg(isa.IntReg(4)) {
		t.Error("conservative mode diverged")
	}
}

func TestInlineAtRenameExtension(t *testing.T) {
	// A loop full of load-immediates: rename-time inlining should fire.
	b := asm.NewBuilder()
	b.Label("main")
	b.RI(isa.OpADDI, isa.IntReg(1), isa.RZero, 200)
	b.Label("loop")
	for i := 2; i < 10; i++ {
		b.RI(isa.OpADDI, isa.IntReg(i), isa.RZero, int64(i)) // immediate loads
	}
	b.RI(isa.OpADDI, isa.IntReg(1), isa.IntReg(1), -1)
	b.Bnez(isa.IntReg(1), "loop")
	b.Halt()
	prog := b.MustFinish()

	cfg := Width4().WithPolicy(core.PolicyPRIRcCkpt)
	cfg.InlineAtRename = true
	p := runToHalt(t, cfg, prog)
	if p.Stats().RenameInlines == 0 {
		t.Error("rename-time inlining never fired")
	}
	// Architectural correctness.
	ref := emu.New(prog)
	ref.Run(0)
	for i := 2; i < 10; i++ {
		if p.Machine().Reg(isa.IntReg(i)) != ref.Reg(isa.IntReg(i)) {
			t.Errorf("r%d diverged", i)
		}
	}
}

func TestIdealFixupFires(t *testing.T) {
	// Load-miss-delayed consumers whose other operand is inlined: the
	// ideal scheme should convert them (the paper's Figure 6 scenario).
	b := asm.NewBuilder()
	n := 1 << 15
	ring := make([]uint64, n)
	base := uint64(asm.DefaultDataBase)
	for i := range ring {
		ring[i] = base + (uint64(i)*4112)%(uint64(n)*8)&^7
	}
	b.Words("ring", ring)
	b.Label("main")
	b.La(isa.IntReg(1), "ring")
	b.RI(isa.OpADDI, isa.IntReg(2), isa.RZero, 1500)
	b.Label("loop")
	b.Load(isa.OpLDQ, isa.IntReg(1), isa.IntReg(1), 0)           // misses
	b.RI(isa.OpANDI, isa.IntReg(4), isa.IntReg(2), 7)            // narrow producer
	b.RR(isa.OpADD, isa.IntReg(5), isa.IntReg(1), isa.IntReg(4)) // consumer of both
	b.RI(isa.OpADDI, isa.IntReg(2), isa.IntReg(2), -1)
	b.Bnez(isa.IntReg(2), "loop")
	b.Halt()
	prog := b.MustFinish()

	p := runToHalt(t, Width4().WithPolicy(core.PolicyPRIIdealLazy), prog)
	if p.Stats().IdealFixups == 0 {
		t.Error("ideal payload fix-up never fired")
	}
	p.Renamer().CheckInvariants()
}

func TestWatchdogPanicsOnDeadlock(t *testing.T) {
	// Sanity-check the watchdog plumbing by making it impossibly tight.
	prog := buildTest(t)
	cfg := Width4()
	cfg.WatchdogCycles = 1
	defer func() {
		if recover() == nil {
			t.Error("watchdog did not fire")
		}
	}()
	p := New(cfg, prog)
	p.Run(10_000)
}

func TestRunBudgetStopsEarly(t *testing.T) {
	prog := buildTest(t)
	p := New(Width4(), prog)
	n := p.Run(100)
	if n < 100 || n > 100+uint64(p.cfg.Width) {
		t.Errorf("ran %d instructions, want ~100", n)
	}
	if p.done {
		t.Error("done after partial run")
	}
}

func TestFastForwardSkipsTiming(t *testing.T) {
	prog := buildTest(t)
	p := New(Width4(), prog)
	ff := p.FastForward(1000)
	if ff != 1000 {
		t.Fatalf("fast-forwarded %d", ff)
	}
	if p.Stats().Cycles != 0 {
		t.Error("fast-forward consumed cycles")
	}
	p.Run(1_000_000)
	ref := emu.New(prog)
	ref.Run(0)
	if p.Machine().Reg(isa.IntReg(4)) != ref.Reg(isa.IntReg(4)) {
		t.Error("fast-forward + run diverged from functional execution")
	}
}

func TestSchedulerSizeMatters(t *testing.T) {
	// The miss-bound chase benefits from a big window; a tiny scheduler
	// should not be faster than a large one.
	prog := buildTest(t)
	small := Width4()
	small.SchedSize = 4
	big := Width4()
	big.SchedSize = 256
	ps := runToHalt(t, small, prog)
	pb := runToHalt(t, big, prog)
	if ps.Stats().IPC() > pb.Stats().IPC()*1.05 {
		t.Errorf("4-entry scheduler (%.3f) beat 256-entry (%.3f)",
			ps.Stats().IPC(), pb.Stats().IPC())
	}
}

func TestOccupancyWithinBounds(t *testing.T) {
	prog := buildTest(t)
	p := runToHalt(t, Width4(), prog)
	occ := p.Stats().AvgIntOccupancy()
	if occ < 32 || occ > 64 {
		t.Errorf("average int occupancy %.1f outside [32,64]", occ)
	}
}

func TestStatsDerived(t *testing.T) {
	s := Stats{Cycles: 100, Committed: 150, IntOccupancySum: 4000,
		BranchResolved: 10, BranchMispredicted: 2, SrcPRReads: 30, SrcInlineReads: 10}
	if s.IPC() != 1.5 || s.AvgIntOccupancy() != 40 || s.MispredictRate() != 0.2 {
		t.Error("derived stats wrong")
	}
	if s.InlineFraction() != 0.25 {
		t.Errorf("inline fraction = %v", s.InlineFraction())
	}
	var z Stats
	if z.IPC() != 0 || z.AvgIntOccupancy() != 0 || z.MispredictRate() != 0 || z.InlineFraction() != 0 || z.AvgFPOccupancy() != 0 {
		t.Error("zero stats not zero")
	}
}
