package ooo

import (
	"prisim/internal/core"
	"prisim/internal/emu"
	"prisim/internal/isa"
)

// readyEnt is one selectable instruction in the ready queue. seq and gen are
// frozen at push: seq keeps the heap order stable even if the slot is
// recycled while queued, and gen lets select discard such stale entries.
type readyEnt struct {
	seq uint64
	//prisim:genlink
	slot int32
	gen  uint32
}

// readyQueue orders selectable instructions oldest first. It is a plain
// binary min-heap over readyEnt — no interface boxing, no allocation in
// steady state (container/heap's any-typed Push boxed every element).
type readyQueue []readyEnt

//prisim:hotpath
func (q *readyQueue) pushEnt(e readyEnt) {
	h := append(*q, e)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

//prisim:hotpath
func (q *readyQueue) pop() readyEnt {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = readyEnt{}
	h = h[:n]
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < n && h[l].seq < h[s].seq {
			s = l
		}
		if r := 2*i + 2; r < n && h[r].seq < h[s].seq {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	*q = h
	return top
}

// pushReady queues slot s for selection with its current seq and gen frozen.
//
//prisim:hotpath
func (p *Pipeline) pushReady(s int32) {
	p.readyQ.pushEnt(readyEnt{seq: p.slab.seq[s], gen: p.slab.gen[s], slot: s})
}

// schedule is the Sched stage: select up to Width ready instructions,
// oldest first, subject to functional unit availability. Scheduling is
// speculative: dependents are woken assuming nominal latencies and repaired
// by replay if a load misses.
//
// A scheduler entry is freed at select; an instruction that replays
// re-enters its entry (re-entry is never blocked, mirroring designs that
// reserve issued entries until latency confirmation).
//
//prisim:hotpath
func (p *Pipeline) schedule() {
	issued := 0
	stash := p.schedStash[:0]
	for issued < p.cfg.Width && len(p.readyQ) > 0 {
		e := p.readyQ.pop()
		s := e.slot
		if p.slab.gen[s] != e.gen {
			continue // slot recycled since push; entry is stale
		}
		f := p.slab.flags[s]
		if f&(fSquashed|fIssued) != 0 || f&fInSched == 0 {
			continue
		}
		d := &p.slab.data[s]
		// Queue stage: an instruction renamed at cycle t is selectable at
		// t+2 (Rename | Queue | Sched).
		if d.renameCycle+2 > p.now {
			stash = append(stash, e)
			continue
		}
		cl := d.uop.Class
		unit := -1
		for u, busyUntil := range p.fu[cl] {
			if busyUntil <= p.now {
				unit = u
				break
			}
		}
		if unit < 0 {
			stash = append(stash, e)
			continue
		}
		lat := uint64(p.specLatency(&d.uop))
		if d.uop.Flags&isa.UopUnpipelined != 0 {
			p.fu[cl][unit] = p.now + lat
		} else {
			p.fu[cl][unit] = p.now + 1
		}
		p.slab.flags[s] |= fIssued
		p.schedCount--
		issued++
		d.execStart = p.now + uint64(p.cfg.SchedToExec)
		p.post(d.execStart, evExecStart, s, 0)
		// Speculative wakeup at select + nominal latency, batched into the
		// target bucket in one append.
		p.postWaiters(p.now+lat, d.waiters)
		d.waiters = d.waiters[:0]
	}
	for _, e := range stash {
		p.readyQ.pushEnt(e)
	}
	for i := range stash {
		stash[i] = readyEnt{}
	}
	p.schedStash = stash[:0]
}

// specLatency is the scheduler's assumed latency: the uop's nominal latency,
// plus the first-level hit time for loads.
//
//prisim:hotpath
func (p *Pipeline) specLatency(u *isa.Uop) int {
	lat := int(u.Lat)
	if u.Flags&isa.UopLoad != 0 {
		lat += p.mem.DL1Latency()
	}
	return lat
}

func (p *Pipeline) schedInsert(s int32) {
	p.slab.flags[s] |= fInSched
	p.slab.flags[s] &^= fIssued
	p.schedCount++
	d := &p.slab.data[s]
	nr := int32(0)
	for i := 0; i < int(d.uop.NSrc); i++ {
		if !d.srcs[i].ready {
			nr++
		}
	}
	p.slab.notReady[s] = nr
	if nr == 0 {
		p.pushReady(s)
	}
}

// linkOperand decides how a renamed PR operand learns of its readiness.
func (p *Pipeline) linkOperand(s int32, i int, producer int32) {
	so := &p.slab.data[s].srcs[i]
	pf := instFlag(0)
	if producer != noSlot {
		pf = p.slab.flags[producer]
	}
	switch {
	case producer == noSlot || pf&fCompleted != 0:
		so.ready = true
	case pf&fExecuted != 0:
		if p.slab.readyCycle[producer] <= p.now {
			so.ready = true
		} else {
			p.post(p.slab.readyCycle[producer], evWake, s, i)
		}
	case pf&fIssued != 0:
		pd := &p.slab.data[producer]
		wakeAt := pd.execStart - uint64(p.cfg.SchedToExec) + uint64(p.specLatency(&pd.uop))
		if wakeAt <= p.now {
			so.ready = true
		} else {
			p.post(wakeAt, evWake, s, i)
		}
	default:
		p.addWaiter(producer, waiter{inst: s, gen: p.slab.gen[s], seq: p.slab.seq[s], srcIdx: int32(i)})
	}
}

// post schedules an event targeting a live slot.
//
//prisim:hotpath
func (p *Pipeline) post(cycle uint64, kind eventKind, s int32, srcIdx int) {
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.wheel.add(p.now, cycle, event{kind: kind, srcIdx: int8(srcIdx), gen: p.slab.gen[s], seq: p.slab.seq[s], inst: s})
}

// postWaiter schedules a wakeup for a registered waiter, carrying the
// generation and sequence number frozen at registration so a recycled
// waiter is skipped without ever being dereferenced.
//
//prisim:hotpath
func (p *Pipeline) postWaiter(cycle uint64, w waiter) {
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.wheel.add(p.now, cycle, event{kind: evWake, srcIdx: int8(w.srcIdx), gen: w.gen, seq: w.seq, inst: w.inst})
}

// postWaiters schedules wakeups for a producer's whole waiter list at one
// cycle, batching the bucket append instead of re-resolving the wheel slot
// per waiter.
//
//prisim:hotpath
func (p *Pipeline) postWaiters(cycle uint64, ws []waiter) {
	if len(ws) == 0 {
		return
	}
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.wheel.addWakeBatch(p.now, cycle, ws)
}

//prisim:hotpath
func (p *Pipeline) processEvents() {
	evs := p.wheel.due(p.now)
	if len(evs) == 0 {
		return
	}
	for i := range evs {
		ev := &evs[i]
		s := ev.inst
		if p.slab.gen[s] != ev.gen || p.slab.flags[s]&fSquashed != 0 {
			continue
		}
		switch ev.kind {
		case evWake:
			if ev.srcIdx < 0 {
				p.wakeMem(s)
			} else {
				p.wake(s, int(ev.srcIdx))
			}
		case evExecStart:
			p.execStart(s)
		case evComplete:
			p.complete(s)
		case evRetire:
			p.retire(s)
		}
	}
	p.wheel.reset(p.now)
}

//prisim:hotpath
func (p *Pipeline) wake(s int32, i int) {
	so := &p.slab.data[s].srcs[i]
	if so.ready {
		return
	}
	so.ready = true
	p.operandBecameReady(s)
}

// wakeMem clears a load's memory-ordering wait.
func (p *Pipeline) wakeMem(s int32) {
	if p.slab.flags[s]&fMemWait == 0 {
		return
	}
	p.slab.flags[s] &^= fMemWait
	p.operandBecameReady(s)
}

//prisim:hotpath
func (p *Pipeline) operandBecameReady(s int32) {
	p.slab.notReady[s]--
	if p.slab.notReady[s] < 0 {
		panicf("ooo: %s notReady underflow", p.instString(s))
	}
	f := p.slab.flags[s]
	if p.slab.notReady[s] == 0 && f&fInSched != 0 && f&(fIssued|fSquashed) == 0 {
		p.pushReady(s)
	}
}

// execStart is the execute check at the end of the Disp/RF stages: with
// speculative scheduling, operands that were woken speculatively may not
// actually be there (a producing load missed). Such instructions replay.
//
//prisim:hotpath
func (p *Pipeline) execStart(s int32) {
	f := p.slab.flags[s]
	if f&fIssued == 0 || f&fExecuted != 0 {
		return
	}
	d := &p.slab.data[s]
	replayNeeded := false
	for i := 0; i < int(d.uop.NSrc); i++ {
		so := &d.srcs[i]
		if so.op.Kind != core.OperandPR || so.released {
			continue
		}
		if p.producerLive(so) && !p.resultAvailableBy(so.producer, p.now) {
			replayNeeded = true
			so.ready = false
			p.relinkForReplay(s, i)
		}
	}
	if replayNeeded {
		p.replay(s)
		return
	}
	// Loads: memory ordering against older stores in the LSQ.
	if d.uop.Flags&isa.UopLoad != 0 {
		if blocker := p.loadBlocker(s); blocker != noSlot {
			p.slab.flags[s] |= fMemWait
			p.addWaiter(blocker, waiter{inst: s, gen: p.slab.gen[s], seq: p.slab.seq[s], srcIdx: -1})
			p.stats.LoadConflictReplays++
			p.replay(s)
			return
		}
	}

	// Operands are read here (register read / bypass): release reader
	// references so PRI's reference-counted frees can drain.
	for i := 0; i < int(d.uop.NSrc); i++ {
		p.releaseSrc(s, i, true)
	}
	p.slab.flags[s] |= fExecuted
	p.slab.flags[s] &^= fInSched

	rc := p.now + uint64(p.actualLatency(s))
	p.slab.readyCycle[s] = rc
	p.post(rc, evComplete, s, 0)
	// Anyone who registered while this instruction was in flight (replay
	// paths, blocked loads) is woken at true readiness. Memory waiters on
	// a store can go as soon as the address is generated (next cycle).
	memWaiters := 0
	for _, w := range d.waiters {
		if w.srcIdx < 0 {
			p.postWaiter(p.now+1, w)
			memWaiters++
		}
	}
	if memWaiters == 0 {
		p.postWaiters(rc, d.waiters)
	} else {
		for _, w := range d.waiters {
			if w.srcIdx >= 0 {
				p.postWaiter(rc, w)
			}
		}
	}
	d.waiters = d.waiters[:0]
}

// relinkForReplay re-arms operand i's wakeup for the producer's actual
// completion.
//
//prisim:hotpath
func (p *Pipeline) relinkForReplay(s int32, i int) {
	so := &p.slab.data[s].srcs[i]
	producer := so.producer
	switch {
	case !p.producerLive(so) || p.slab.flags[producer]&fCompleted != 0:
		so.ready = true
	case p.slab.flags[producer]&fExecuted != 0:
		p.post(p.slab.readyCycle[producer], evWake, s, i)
	default:
		// The producer itself replayed; wait for its next issue.
		p.addWaiter(producer, waiter{inst: s, gen: p.slab.gen[s], seq: p.slab.seq[s], srcIdx: int32(i)})
	}
}

func (p *Pipeline) replay(s int32) {
	p.slab.flags[s] &^= fIssued
	p.stats.Replays++
	p.schedCount++
	d := &p.slab.data[s]
	nr := int32(0)
	for i := 0; i < int(d.uop.NSrc); i++ {
		if !d.srcs[i].ready {
			nr++
		}
	}
	if p.slab.flags[s]&fMemWait != 0 {
		nr++
	}
	p.slab.notReady[s] = nr
	if nr == 0 {
		p.pushReady(s)
	}
}

// loadBlocker returns an older store the load must wait for, or noSlot if
// the load may proceed. With oracle disambiguation (the default) a load
// waits only for the youngest overlapping store that has not yet executed;
// the conservative mode waits for any older store with an unresolved
// address.
func (p *Pipeline) loadBlocker(s int32) int32 {
	seq := p.slab.seq[s]
	d := &p.slab.data[s]
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		o := p.lsq[idx]
		od := &p.slab.data[o]
		if p.slab.seq[o] >= seq || od.uop.Flags&isa.UopStore == 0 {
			continue
		}
		if p.cfg.ConservativeDisambiguation && p.slab.flags[o]&fExecuted == 0 {
			return o
		}
		if overlaps(&od.info, &d.info) {
			if p.slab.flags[o]&fExecuted == 0 {
				return o
			}
			return noSlot // forwarded from the closest matching store
		}
	}
	return noSlot
}

// forwardedFrom reports whether an executed older store overlaps the load
// (store-to-load forwarding: the access never goes to the cache).
func (p *Pipeline) forwardedFrom(s int32) bool {
	seq := p.slab.seq[s]
	d := &p.slab.data[s]
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		o := p.lsq[idx]
		od := &p.slab.data[o]
		if p.slab.seq[o] >= seq || od.uop.Flags&isa.UopStore == 0 {
			continue
		}
		if overlaps(&od.info, &d.info) {
			return true
		}
	}
	return false
}

func overlaps(a, b *emu.StepInfo) bool {
	return a.MemAddr < b.MemAddr+uint64(b.MemSize) && b.MemAddr < a.MemAddr+uint64(a.MemSize)
}

// actualLatency resolves the instruction's true execution latency, probing
// the data cache for loads.
func (p *Pipeline) actualLatency(s int32) int {
	d := &p.slab.data[s]
	switch {
	case d.uop.Flags&isa.UopLoad != 0:
		if p.forwardedFrom(s) {
			p.stats.LoadForwards++
			return 1 + p.mem.DL1Latency()
		}
		return 1 + p.mem.DataAt(d.info.MemAddr, false, p.now)
	case d.uop.Flags&isa.UopStore != 0:
		return 1 // address generation; the write happens at commit
	default:
		return int(d.uop.Lat)
	}
}

// complete marks the result available and resolves control instructions.
//
//prisim:hotpath
func (p *Pipeline) complete(s int32) {
	p.slab.flags[s] |= fCompleted
	p.slab.completeCycle[s] = p.now
	f := p.slab.flags[s]
	if f&fIsCtrl != 0 && f&fResolved == 0 {
		p.slab.flags[s] |= fResolved
		p.stats.BranchResolved++
		if f&fMispredict != 0 {
			p.stats.BranchMispredicted++
			p.recover(s)
		}
	}
	p.post(p.now+1, evRetire, s, 0)
}

// retire is the writeback stage: the result reaches the register file and
// the PRI narrowness/inline logic runs.
//
// Under DelayedAllocation, writeback is where the physical register is
// actually bound, so it stalls while every physical register holds a live
// value — except for the ROB head, which owns the reserved register that
// guarantees forward progress.
//
//prisim:hotpath
func (p *Pipeline) retire(s int32) {
	d := &p.slab.data[s]
	hasDest := p.slab.flags[s]&fHasDest != 0
	if p.cfg.DelayedAllocation && hasDest && d.alloc.PR >= 0 && p.robPeek() != s {
		// PRI composition: the significance and WAW checks run in the same
		// writeback stage as binding, so a result that will inline into
		// the map (and therefore never occupy a register) skips the gate.
		if !p.ren.WouldInline(d.alloc, d.info.Result) {
			fp := d.alloc.Arch.IsFP()
			cap := p.cfg.Rename.IntPRs
			if fp {
				cap = p.cfg.Rename.FPPRs
			}
			if p.ren.WrittenLive(fp) >= cap {
				p.stats.WritebackStalls++
				p.post(p.now+1, evRetire, s, 0)
				return
			}
		}
	}
	p.slab.flags[s] |= fRetired
	if hasDest {
		p.stats.RetireLagSum += p.renameCursor - p.slab.seq[s]
		p.stats.RetireLagCount++
		out := p.ren.WriteResult(d.alloc, d.info.Result, p.now)
		if out.Inlined {
			p.stats.RetireInlines++
		}
		if out.Freed {
			p.stats.EarlyFreesAtRetire++
		}
	}
}
