package ooo

import (
	"prisim/internal/core"
	"prisim/internal/emu"
)

// readyEnt is one selectable instruction in the ready queue. seq and gen are
// frozen at push: seq keeps the heap order stable even if the instruction is
// recycled while queued, and gen lets select discard such stale entries.
type readyEnt struct {
	seq uint64
	gen uint32
	//prisim:genlink
	d *dynInst
}

// readyQueue orders selectable instructions oldest first. It is a plain
// binary min-heap over readyEnt — no interface boxing, no allocation in
// steady state (container/heap's any-typed Push boxed every element).
type readyQueue []readyEnt

//prisim:hotpath
func (q *readyQueue) push(d *dynInst) { q.pushEnt(readyEnt{seq: d.seq, gen: d.gen, d: d}) }

//prisim:hotpath
func (q *readyQueue) pushEnt(e readyEnt) {
	h := append(*q, e)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	*q = h
}

//prisim:hotpath
func (q *readyQueue) pop() readyEnt {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = readyEnt{}
	h = h[:n]
	for i := 0; ; {
		s := i
		if l := 2*i + 1; l < n && h[l].seq < h[s].seq {
			s = l
		}
		if r := 2*i + 2; r < n && h[r].seq < h[s].seq {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	*q = h
	return top
}

// schedule is the Sched stage: select up to Width ready instructions,
// oldest first, subject to functional unit availability. Scheduling is
// speculative: dependents are woken assuming nominal latencies and repaired
// by replay if a load misses.
//
// A scheduler entry is freed at select; an instruction that replays
// re-enters its entry (re-entry is never blocked, mirroring designs that
// reserve issued entries until latency confirmation).
//
//prisim:hotpath
func (p *Pipeline) schedule() {
	issued := 0
	stash := p.schedStash[:0]
	for issued < p.cfg.Width && len(p.readyQ) > 0 {
		e := p.readyQ.pop()
		d := e.d
		if d.gen != e.gen || d.squashed || d.issued || !d.inSched {
			continue
		}
		// Queue stage: an instruction renamed at cycle t is selectable at
		// t+2 (Rename | Queue | Sched).
		if d.renameCycle+2 > p.now {
			stash = append(stash, e)
			continue
		}
		cl := d.inst.Op.Class()
		unit := -1
		for u, busyUntil := range p.fu[cl] {
			if busyUntil <= p.now {
				unit = u
				break
			}
		}
		if unit < 0 {
			stash = append(stash, e)
			continue
		}
		if d.inst.Op.Unpipelined() {
			p.fu[cl][unit] = p.now + uint64(p.specLatency(d))
		} else {
			p.fu[cl][unit] = p.now + 1
		}
		d.issued = true
		p.schedCount--
		issued++
		d.execStart = p.now + uint64(p.cfg.SchedToExec)
		p.post(d.execStart, evExecStart, d, 0)
		// Speculative wakeup at select + nominal latency.
		wakeAt := p.now + uint64(p.specLatency(d))
		for _, w := range d.waiters {
			p.postWaiter(wakeAt, w)
		}
		d.waiters = d.waiters[:0]
	}
	for _, e := range stash {
		p.readyQ.pushEnt(e)
	}
	for i := range stash {
		stash[i] = readyEnt{}
	}
	p.schedStash = stash[:0]
}

// specLatency is the scheduler's assumed latency: the opcode latency, plus
// the first-level hit time for loads.
func (p *Pipeline) specLatency(d *dynInst) int {
	lat := d.inst.Op.Latency()
	if d.inst.Op.IsLoad() {
		lat += p.mem.DL1Latency()
	}
	return lat
}

func (p *Pipeline) schedInsert(d *dynInst) {
	d.inSched = true
	d.issued = false
	p.schedCount++
	d.notReady = 0
	for i := 0; i < d.nsrc; i++ {
		if !d.srcs[i].ready {
			d.notReady++
		}
	}
	if d.notReady == 0 {
		p.readyQ.push(d)
	}
}

// linkOperand decides how a renamed PR operand learns of its readiness.
func (p *Pipeline) linkOperand(d *dynInst, i int, producer *dynInst) {
	s := &d.srcs[i]
	switch {
	case producer == nil || producer.completed:
		s.ready = true
	case producer.executed:
		if producer.readyCycle <= p.now {
			s.ready = true
		} else {
			p.post(producer.readyCycle, evWake, d, i)
		}
	case producer.issued:
		wakeAt := producer.execStart - uint64(p.cfg.SchedToExec) + uint64(p.specLatency(producer))
		if wakeAt <= p.now {
			s.ready = true
		} else {
			p.post(wakeAt, evWake, d, i)
		}
	default:
		producer.addWaiter(waiter{inst: d, gen: d.gen, seq: d.seq, srcIdx: i})
	}
}

// post schedules an event targeting a live instruction.
//
//prisim:hotpath
func (p *Pipeline) post(cycle uint64, kind eventKind, d *dynInst, srcIdx int) {
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.wheel.add(p.now, cycle, event{kind: kind, srcIdx: srcIdx, gen: d.gen, seq: d.seq, inst: d})
}

// postWaiter schedules a wakeup for a registered waiter, carrying the
// generation and sequence number frozen at registration so a recycled
// waiter is skipped without ever being dereferenced.
//
//prisim:hotpath
func (p *Pipeline) postWaiter(cycle uint64, w waiter) {
	if cycle <= p.now {
		cycle = p.now + 1
	}
	p.wheel.add(p.now, cycle, event{kind: evWake, srcIdx: w.srcIdx, gen: w.gen, seq: w.seq, inst: w.inst})
}

//prisim:hotpath
func (p *Pipeline) processEvents() {
	evs := p.wheel.due(p.now)
	if len(evs) == 0 {
		return
	}
	for i := range evs {
		ev := &evs[i]
		d := ev.inst
		if d.gen != ev.gen || d.squashed {
			continue
		}
		switch ev.kind {
		case evWake:
			if ev.srcIdx < 0 {
				p.wakeMem(d)
			} else {
				p.wake(d, ev.srcIdx)
			}
		case evExecStart:
			p.execStart(d)
		case evComplete:
			p.complete(d)
		case evRetire:
			p.retire(d)
		}
	}
	p.wheel.reset(p.now)
}

//prisim:hotpath
func (p *Pipeline) wake(d *dynInst, i int) {
	s := &d.srcs[i]
	if s.ready {
		return
	}
	s.ready = true
	p.operandBecameReady(d)
}

// wakeMem clears a load's memory-ordering wait.
func (p *Pipeline) wakeMem(d *dynInst) {
	if !d.memWait {
		return
	}
	d.memWait = false
	p.operandBecameReady(d)
}

//prisim:hotpath
func (p *Pipeline) operandBecameReady(d *dynInst) {
	d.notReady--
	if d.notReady < 0 {
		panicf("ooo: %v notReady underflow", d)
	}
	if d.notReady == 0 && d.inSched && !d.issued && !d.squashed {
		p.readyQ.push(d)
	}
}

// execStart is the execute check at the end of the Disp/RF stages: with
// speculative scheduling, operands that were woken speculatively may not
// actually be there (a producing load missed). Such instructions replay.
//
//prisim:hotpath
func (p *Pipeline) execStart(d *dynInst) {
	if !d.issued || d.executed {
		return
	}
	replayNeeded := false
	for i := 0; i < d.nsrc; i++ {
		s := &d.srcs[i]
		if s.op.Kind != core.OperandPR || s.released {
			continue
		}
		if s.producerLive() && !s.producer.resultAvailableBy(p.now) {
			replayNeeded = true
			s.ready = false
			p.relinkForReplay(d, i)
		}
	}
	if replayNeeded {
		p.replay(d)
		return
	}
	// Loads: memory ordering against older stores in the LSQ.
	if d.inst.Op.IsLoad() {
		if blocker := p.loadBlocker(d); blocker != nil {
			d.memWait = true
			blocker.addWaiter(waiter{inst: d, gen: d.gen, seq: d.seq, srcIdx: -1})
			p.stats.LoadConflictReplays++
			p.replay(d)
			return
		}
	}

	// Operands are read here (register read / bypass): release reader
	// references so PRI's reference-counted frees can drain.
	for i := 0; i < d.nsrc; i++ {
		p.releaseSrc(d, i, true)
	}
	d.executed = true
	d.inSched = false

	lat := p.actualLatency(d)
	d.readyCycle = p.now + uint64(lat)
	p.post(d.readyCycle, evComplete, d, 0)
	// Anyone who registered while this instruction was in flight (replay
	// paths, blocked loads) is woken at true readiness. Memory waiters on
	// a store can go as soon as the address is generated (next cycle).
	for _, w := range d.waiters {
		if w.srcIdx < 0 {
			p.postWaiter(p.now+1, w)
		} else {
			p.postWaiter(d.readyCycle, w)
		}
	}
	d.waiters = d.waiters[:0]
}

// relinkForReplay re-arms operand i's wakeup for the producer's actual
// completion.
//
//prisim:hotpath
func (p *Pipeline) relinkForReplay(d *dynInst, i int) {
	s := &d.srcs[i]
	producer := s.producer
	switch {
	case !s.producerLive() || producer.completed:
		s.ready = true
	case producer.executed:
		p.post(producer.readyCycle, evWake, d, i)
	default:
		// The producer itself replayed; wait for its next issue.
		producer.addWaiter(waiter{inst: d, gen: d.gen, seq: d.seq, srcIdx: i})
	}
}

func (p *Pipeline) replay(d *dynInst) {
	d.issued = false
	d.replays++
	p.stats.Replays++
	p.schedCount++
	d.notReady = 0
	for i := 0; i < d.nsrc; i++ {
		if !d.srcs[i].ready {
			d.notReady++
		}
	}
	if d.memWait {
		d.notReady++
	}
	if d.notReady == 0 {
		p.readyQ.push(d)
	}
}

// loadBlocker returns an older store the load must wait for, or nil if the
// load may proceed. With oracle disambiguation (the default) a load waits
// only for the youngest overlapping store that has not yet executed; the
// conservative mode waits for any older store with an unresolved address.
func (p *Pipeline) loadBlocker(d *dynInst) *dynInst {
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		s := p.lsq[idx]
		if s.seq >= d.seq || !s.inst.Op.IsStore() {
			continue
		}
		if p.cfg.ConservativeDisambiguation && !s.executed {
			return s
		}
		if overlaps(&s.info, &d.info) {
			if !s.executed {
				return s
			}
			return nil // forwarded from the closest matching store
		}
	}
	return nil
}

// forwardedFrom reports whether an executed older store overlaps the load
// (store-to-load forwarding: the access never goes to the cache).
func (p *Pipeline) forwardedFrom(d *dynInst) bool {
	for idx := len(p.lsq) - 1; idx >= p.lsqHead; idx-- {
		s := p.lsq[idx]
		if s.seq >= d.seq || !s.inst.Op.IsStore() {
			continue
		}
		if overlaps(&s.info, &d.info) {
			return true
		}
	}
	return false
}

func overlaps(a, b *emu.StepInfo) bool {
	return a.MemAddr < b.MemAddr+uint64(b.MemSize) && b.MemAddr < a.MemAddr+uint64(a.MemSize)
}

// actualLatency resolves the instruction's true execution latency, probing
// the data cache for loads.
func (p *Pipeline) actualLatency(d *dynInst) int {
	op := d.inst.Op
	switch {
	case op.IsLoad():
		if p.forwardedFrom(d) {
			p.stats.LoadForwards++
			return 1 + p.mem.DL1Latency()
		}
		return 1 + p.mem.DataAt(d.info.MemAddr, false, p.now)
	case op.IsStore():
		return 1 // address generation; the write happens at commit
	default:
		return op.Latency()
	}
}

// complete marks the result available and resolves control instructions.
//
//prisim:hotpath
func (p *Pipeline) complete(d *dynInst) {
	d.completed = true
	d.completeCycle = p.now
	if d.isCtrl && !d.resolved {
		d.resolved = true
		p.stats.BranchResolved++
		if d.mispredict {
			p.stats.BranchMispredicted++
			p.recover(d)
		}
	}
	p.post(p.now+1, evRetire, d, 0)
}

// retire is the writeback stage: the result reaches the register file and
// the PRI narrowness/inline logic runs.
//
// Under DelayedAllocation, writeback is where the physical register is
// actually bound, so it stalls while every physical register holds a live
// value — except for the ROB head, which owns the reserved register that
// guarantees forward progress.
//
//prisim:hotpath
func (p *Pipeline) retire(d *dynInst) {
	if p.cfg.DelayedAllocation && d.hasDest && d.alloc.PR >= 0 && p.robPeek() != d {
		// PRI composition: the significance and WAW checks run in the same
		// writeback stage as binding, so a result that will inline into
		// the map (and therefore never occupy a register) skips the gate.
		if !p.ren.WouldInline(d.alloc, d.info.Result) {
			fp := d.alloc.Arch.IsFP()
			cap := p.cfg.Rename.IntPRs
			if fp {
				cap = p.cfg.Rename.FPPRs
			}
			if p.ren.WrittenLive(fp) >= cap {
				p.stats.WritebackStalls++
				p.post(p.now+1, evRetire, d, 0)
				return
			}
		}
	}
	d.retired = true
	if d.hasDest {
		p.stats.RetireLagSum += p.renameCursor - d.seq
		p.stats.RetireLagCount++
	}
	if d.hasDest {
		out := p.ren.WriteResult(d.alloc, d.info.Result, p.now)
		if out.Inlined {
			p.stats.RetireInlines++
		}
		if out.Freed {
			p.stats.EarlyFreesAtRetire++
		}
	}
}
